package qurator

// This file is the benchmark harness for the paper's evaluation artifacts
// (see DESIGN.md's experiment index): one benchmark per figure plus the
// ablations. Absolute numbers depend on the synthetic substrate; the
// shapes they demonstrate (who wins, what reduces what) are asserted by
// the test suites and recorded in EXPERIMENTS.md.
//
// Run with:
//
//	go test -bench=. -benchmem .

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"qurator/internal/annotstore"
	"qurator/internal/condition"
	"qurator/internal/evidence"
	"qurator/internal/ispider"
	"qurator/internal/ontology"
	"qurator/internal/ops"
	"qurator/internal/provenance"
	"qurator/internal/qa"
	"qurator/internal/qcache"
	"qurator/internal/qvlang"
	"qurator/internal/rdf"
	"qurator/internal/sparql"
	"qurator/internal/stream"
	"qurator/internal/telemetry"
)

// benchWorld builds the default (paper-scale) world once per test binary.
var benchWorld = sync.OnceValues(func() (*ispider.World, error) {
	return ispider.BuildWorld(ispider.DefaultWorldParams())
})

func mustWorld(b *testing.B) *ispider.World {
	b.Helper()
	w, err := benchWorld()
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkFigure1HostWorkflow regenerates Figure 1: the plain ISPIDER
// analysis (Pedro → Imprint → GOA) with no quality processing.
func BenchmarkFigure1HostWorkflow(b *testing.B) {
	w := mustWorld(b)
	b.ReportAllocs()
	b.ResetTimer()
	var out *ispider.RunOutput
	for i := 0; i < b.N; i++ {
		var err error
		out, err = ispider.RunBaseline(w)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	total := 0
	for _, n := range out.TermCounts {
		total += n
	}
	b.ReportMetric(float64(len(out.Entries)), "identifications")
	b.ReportMetric(float64(total), "GO-occurrences")
}

// BenchmarkFigure3QualityProcess regenerates the Figure 3 pattern: the
// full annotate → enrich → assert → act process over a 100-item set,
// using the in-memory operator semantics.
func BenchmarkFigure3QualityProcess(b *testing.B) {
	items := make([]evidence.Item, 100)
	for i := range items {
		items[i] = rdf.IRI(fmt.Sprintf("urn:lsid:bench.org:item:%d", i))
	}
	cache := annotstore.New("cache", false)
	process := &ops.Process{
		Annotators: []ops.Annotator{ops.AnnotatorFunc{
			ClassIRI: ontology.ImprintOutputAnnotation,
			Types:    []rdf.Term{ontology.HitRatio, ontology.Coverage},
			Fn: func(items []evidence.Item, repo annotstore.Store) error {
				for i, it := range items {
					v := float64(i%10) / 10
					if err := repo.Put(annotstore.Annotation{Item: it, Type: ontology.HitRatio, Value: evidence.Float(v)}); err != nil {
						return err
					}
					if err := repo.Put(annotstore.Annotation{Item: it, Type: ontology.Coverage, Value: evidence.Float(v)}); err != nil {
						return err
					}
				}
				return nil
			},
		}},
		AnnotateTo: cache,
		Enrichment: &ops.DataEnrichment{Sources: []ops.EvidenceSource{
			{Type: ontology.HitRatio, Repository: cache},
			{Type: ontology.Coverage, Repository: cache},
		}},
		Assertions: []ops.QualityAssertion{
			qa.NewUniversalPIScore(qvlang.TagKeyFor("HR_MC")),
			qa.NewPIScoreClassifier(),
		},
		FilterStep: &ops.Filter{
			Cond: condition.MustParse("ScoreClass in q:high, q:mid"),
			Vars: condition.Bindings{"ScoreClass": ontology.PIScoreClassification},
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache.Clear()
		if _, _, err := process.Run(items); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6CompileEmbed regenerates Figure 6: compiling the §5.1
// view and embedding it into the host workflow (the static targeting
// step, not the enactment).
func BenchmarkFigure6CompileEmbed(b *testing.B) {
	w := mustWorld(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ispider.BuildPipeline(w, ""); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6EmbeddedEnactment enacts the embedded workflow — the
// quality overhead added to one full analysis run.
func BenchmarkFigure6EmbeddedEnactment(b *testing.B) {
	w := mustWorld(b)
	p, err := ispider.BuildPipeline(w, "")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7Significance regenerates the Figure 7 experiment:
// baseline run + quality-filtered run + ratio ranking.
func BenchmarkFigure7Significance(b *testing.B) {
	w := mustWorld(b)
	b.ReportAllocs()
	b.ResetTimer()
	var res *ispider.Figure7Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = ispider.RunFigure7(w)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(res.TotalOriginal), "occ-original")
	b.ReportMetric(float64(res.TotalFiltered), "occ-filtered")
	b.ReportMetric(res.RankDisplacement, "rank-shift")
}

// BenchmarkAblationAnnotationCaching is ablation A1: the §4 trade-off
// between computing annotations on the fly each run and reading
// pre-computed annotations from a persistent repository.
func BenchmarkAblationAnnotationCaching(b *testing.B) {
	items := make([]evidence.Item, 200)
	for i := range items {
		items[i] = rdf.IRI(fmt.Sprintf("urn:lsid:bench.org:item:%d", i))
	}
	annotate := func(repo annotstore.Store) error {
		for i, it := range items {
			v := float64(i%100) / 100
			if err := repo.Put(annotstore.Annotation{Item: it, Type: ontology.HitRatio, Value: evidence.Float(v)}); err != nil {
				return err
			}
			if err := repo.Put(annotstore.Annotation{Item: it, Type: ontology.Coverage, Value: evidence.Float(v)}); err != nil {
				return err
			}
		}
		return nil
	}
	enrich := func(repo annotstore.Store) error {
		m := evidence.NewMap(items...)
		de := &ops.DataEnrichment{Sources: []ops.EvidenceSource{
			{Type: ontology.HitRatio, Repository: repo},
			{Type: ontology.Coverage, Repository: repo},
		}}
		_, err := de.Enrich(m)
		return err
	}

	b.Run("on-the-fly", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cache := annotstore.New("cache", false)
			if err := annotate(cache); err != nil {
				b.Fatal(err)
			}
			if err := enrich(cache); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		persistent := annotstore.New("default", true)
		if err := annotate(persistent); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := enrich(persistent); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationQAChoice is ablation A2: alternative QAs over the same
// evidence, with precision/recall reported as metrics.
func BenchmarkAblationQAChoice(b *testing.B) {
	w := mustWorld(b)
	b.ReportAllocs()
	b.ResetTimer()
	var rows []ispider.PRStats
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = ispider.RunQAComparison(w)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, r := range rows {
		if r.Name == "classifier class=high" {
			b.ReportMetric(r.Precision, "precision-high")
			b.ReportMetric(r.Recall, "recall-high")
		}
	}
}

// BenchmarkAblationThresholdSweep is ablation A3: the condition sweep.
func BenchmarkAblationThresholdSweep(b *testing.B) {
	w := mustWorld(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ispider.RunThresholdSweep(w, []int{1, 3, 5, 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLearnedQA is ablation A4: training the stump-tree QA
// on half the spots and evaluating it against the hand-built classifier
// on the other half (the paper's future-work item (ii) exercised).
func BenchmarkAblationLearnedQA(b *testing.B) {
	w := mustWorld(b)
	b.ReportAllocs()
	b.ResetTimer()
	var res *ispider.LearnedQAResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = ispider.RunLearnedQA(w)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(res.Learned.Precision, "learned-precision")
	b.ReportMetric(res.HandBuilt.Precision, "hand-precision")
}

// BenchmarkAblationContamination is ablation A5: the quality view's
// precision/recall across increasing contamination levels.
func BenchmarkAblationContamination(b *testing.B) {
	params := ispider.DefaultWorldParams()
	params.DBSize, params.SpotCount = 60, 6
	b.ReportAllocs()
	b.ResetTimer()
	var points []ispider.ContaminationPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = ispider.RunContaminationSweep(params, []int{0, 2, 4})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	last := points[len(points)-1]
	b.ReportMetric(last.Filtered.Precision, "precision-heavy")
	b.ReportMetric(last.Filtered.Recall, "recall-heavy")
}

// BenchmarkStreamEnactment measures continuous enactment throughput
// (internal/stream): items flow through windowed quality processing and
// the items/s metric shows how window size and worker-pool parallelism
// trade latency against throughput.
func BenchmarkStreamEnactment(b *testing.B) {
	for _, window := range []int{64, 256} {
		for _, par := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("window=%d/parallelism=%d", window, par), func(b *testing.B) {
				f := New()
				if err := f.DeployStandardLibrary(); err != nil {
					b.Fatal(err)
				}
				compiled, err := f.CompileViewForStream([]byte(PaperViewXML))
				if err != nil {
					b.Fatal(err)
				}
				e, err := stream.New(compiled, stream.Config{Window: window, Parallelism: par})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				in := make(chan stream.Item, par)
				results := make(chan stream.WindowResult, par)
				done := make(chan error, 1)
				go func() { done <- e.Run(context.Background(), in, results) }()
				go func() {
					defer close(in)
					for i := 0; i < b.N; i++ {
						frac := 0.15 + 0.8*float64(i%window)/float64(window)
						in <- stream.Item{
							ID: rdf.IRI(fmt.Sprintf("urn:lsid:bench.org:stream:%d", i)),
							Evidence: map[evidence.Key]evidence.Value{
								ontology.HitRatio:      evidence.Float(frac),
								ontology.Coverage:      evidence.Float(frac),
								ontology.Masses:        evidence.Int(int64(10 + i%7)),
								ontology.PeptidesCount: evidence.Int(8),
							},
						}
					}
				}()
				decided := 0
				for r := range results {
					decided += len(r.Decisions)
				}
				if err := <-done; err != nil {
					b.Fatal(err)
				}
				if decided != b.N {
					b.Fatalf("decided %d of %d items", decided, b.N)
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "items/s")
			})
		}
	}
	// CI's bench smoke run doubles as the exposition check: after the
	// stream metrics have been exercised, the registry must still render
	// valid Prometheus text.
	var buf bytes.Buffer
	if err := telemetry.Default.WriteProm(&buf); err != nil {
		b.Fatalf("WriteProm: %v", err)
	}
	if err := telemetry.ValidateExposition(&buf); err != nil {
		b.Fatalf("/metrics exposition malformed: %v", err)
	}
}

// sparqlBenchLog builds the provenance log for the query-engine benchmark
// once per binary: 100k runs (10k under -short), ~14 triples per run, in
// the paper's exploration-loop shape.
var sparqlBenchLog = sync.OnceValue(func() *provenance.Log {
	n := 100000
	if testing.Short() {
		n = 10000
	}
	l := provenance.NewLog()
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		l.Record(provenance.Record{
			View:      fmt.Sprintf("view-%d", i%7),
			Started:   base.Add(time.Duration(i) * time.Second),
			Duration:  time.Duration(1+i%250) * time.Millisecond,
			InputSize: 50 + i%400,
			Outputs:   map[string]int{"accept": i % 40, "review": i % 11},
			Conditions: map[string]string{
				"accept": fmt.Sprintf("ScoreClass in q:high; threshold=%d", i%5),
			},
		})
	}
	return l
})

// BenchmarkSPARQLProvenance measures the metadata-plane query engine over
// a 100k-run provenance log (10k under -short). The clone-materialize
// sub-benchmark is the seed Log.Query path: a deep per-query copy of the
// graph feeding the materializing evaluator. The snapshot-stream
// sub-benchmark is the production path: an O(1) copy-on-write snapshot
// feeding the streaming, cardinality-planned evaluator. Compare ns/op —
// the acceptance bar is a ≥10x gap.
func BenchmarkSPARQLProvenance(b *testing.B) {
	log := sparqlBenchLog()
	graph := log.Graph()
	query := fmt.Sprintf(
		`SELECT ?run ?name ?size WHERE { ?run <%susedView> "view-3" . ?run <%sproducedOutput> ?o . ?o <%soutputName> ?name . ?o <%soutputSize> ?size . }`,
		ontology.QuratorNS, ontology.QuratorNS, ontology.QuratorNS, ontology.QuratorNS)

	want, err := log.Query(query)
	if err != nil {
		b.Fatal(err)
	}
	wantRows := len(want.Bindings)
	if wantRows == 0 {
		b.Fatal("benchmark query returned no rows")
	}

	b.Run("clone-materialize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g := rdf.NewGraph()
			for _, t := range graph.Triples() {
				g.MustAdd(t)
			}
			res, err := sparql.ExecBaseline(g.Snapshot(), query)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Bindings) != wantRows {
				b.Fatalf("rows = %d, want %d", len(res.Bindings), wantRows)
			}
		}
		b.ReportMetric(float64(wantRows), "rows")
	})
	b.Run("snapshot-stream", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := log.Query(query)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Bindings) != wantRows {
				b.Fatalf("rows = %d, want %d", len(res.Bindings), wantRows)
			}
		}
		b.ReportMetric(float64(wantRows), "rows")
	})
}

// BenchmarkViewCompilation measures the pure view-compilation cost
// (parse + resolve + compile) with pre-deployed services.
func BenchmarkViewCompilation(b *testing.B) {
	f := New()
	if err := f.DeployStandardLibrary(); err != nil {
		b.Fatal(err)
	}
	if err := f.DeployAnnotator("ImprintOutputAnnotator", ops.AnnotatorFunc{
		ClassIRI: ontology.ImprintOutputAnnotation,
		Fn:       func([]evidence.Item, annotstore.Store) error { return nil },
	}); err != nil {
		b.Fatal(err)
	}
	src := []byte(PaperViewXML)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.CompileView(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDataPlane measures the enactment data plane over the Figure-7
// pipeline: serial invocation vs shard-parallel fan-out vs fan-out plus
// the content-addressed response cache. Each sub-benchmark enacts the full
// embedded workflow; cached runs report their hit rate, and the exposition
// check keeps the shard/cache counters valid on /metrics.
func BenchmarkDataPlane(b *testing.B) {
	w := mustWorld(b)
	for _, cfg := range []struct {
		name  string
		shard int
		cache bool
	}{
		{"serial", 0, false},
		{"shard2", 2, false},
		{"shard4", 4, false},
		{"shard4cache", 4, true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var cache *qcache.Cache
			if cfg.cache {
				cache = qcache.New(qcache.Options{Name: "bench-" + cfg.name})
			}
			p, err := ispider.BuildPipelineWith(w, ispider.PipelineOptions{
				ShardSize: cfg.shard,
				Cache:     cache,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := p.Compiled.SetFilterCondition("filter top k score", "ScoreClass in q:high"); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var out *ispider.RunOutput
			for i := 0; i < b.N; i++ {
				out, err = p.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(out.Accepted.Len()), "accepted")
			if cache != nil {
				s := cache.Stats()
				if total := s.Hits + s.Misses; total > 0 {
					b.ReportMetric(100*float64(s.Hits)/float64(total), "hit%")
				}
			}
			var buf bytes.Buffer
			if err := telemetry.Default.WriteProm(&buf); err != nil {
				b.Fatalf("WriteProm: %v", err)
			}
			if err := telemetry.ValidateExposition(&buf); err != nil {
				b.Fatalf("/metrics exposition malformed: %v", err)
			}
		})
	}
}
