package qurator

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"qurator/internal/resilience"
	"qurator/internal/resilience/chaos"
)

// TestFullyDistributedDeploymentUnderChaos is TestFullyDistributedDeployment
// with the fabric made hostile: every HTTP call between the client and the
// server crosses a fault-injecting transport (25% outright transport
// errors, 50% added latency), then a hard outage, then a heal. The run
// must keep producing correct decisions for the items it can still reach,
// quarantine the rest, and the circuit breakers must open during the
// outage and recover through half-open afterwards.
//
// All randomness is seeded and the breaker clock is injected, so the
// scenario replays exactly (including under -race — only invariants that
// hold for every interleaving are asserted while chaos is active).
func TestFullyDistributedDeploymentUnderChaos(t *testing.T) {
	server, items := deployTestWorld(t)
	srv := httptest.NewServer(server.Handler())
	defer srv.Close()

	strong := make(map[Item]bool, len(items))
	for i, it := range items {
		strong[it] = i%2 == 0
	}

	// chaosOn gates injection so the heal phase is genuinely clean.
	var chaosOn atomic.Bool
	chaosOn.Store(true)
	chaosT := chaos.New(nil, chaos.Config{
		Seed:        42,
		ErrorRate:   0.25,
		LatencyRate: 0.5,
		Latency:     time.Millisecond,
		Match:       func(*http.Request) bool { return chaosOn.Load() },
	})

	// Manual breaker clock: open breakers stay open until the test says
	// time passed, whatever the wall clock does.
	var clock atomic.Int64
	now := func() time.Time { return time.Unix(0, clock.Load()) }

	client := New()
	client.SetResilience(Resilience{
		Transport: resilience.Policy{
			MaxAttempts:      4,
			BaseBackoff:      time.Millisecond,
			MaxBackoff:       4 * time.Millisecond,
			RetryBudgetBurst: 256, // budget starvation is transport_test's concern
			Breaker: resilience.BreakerConfig{
				FailureThreshold: 3,
				Cooldown:         time.Second,
			},
			Seed: 42,
		}.WithClock(now),
		BaseTransport: chaosT,
		RetryAttempts: 4,
		RetryBackoff:  time.Millisecond,
		Degraded:      DegradeQuarantine,
	})

	if _, err := client.Scavenge(context.Background(), srv.URL); err != nil {
		t.Fatalf("Scavenge through chaos: %v", err)
	}
	if _, err := client.ScavengeRepositories(context.Background(), srv.URL); err != nil {
		t.Fatalf("ScavengeRepositories through chaos: %v", err)
	}

	// Phase 1 — flaky fabric: the run must complete, and whatever it
	// accepts must be genuinely strong. Items the fabric lost are parked
	// on the quarantine output with a degraded-evidence marker, never
	// silently accepted.
	out, err := client.ExecuteView(context.Background(), []byte(PaperViewXML), items)
	if err != nil {
		t.Fatalf("chaotic ExecuteView: %v", err)
	}
	accepted, quarantined := out["filter_top_k_score:accepted"], out[QuarantineOutput]
	if accepted == nil || quarantined == nil {
		t.Fatalf("outputs missing under quarantine policy: %v", keysOf(out))
	}
	for _, it := range accepted.Items() {
		if !strong[it] {
			t.Errorf("flaky run accepted weak item %v", it)
		}
		if quarantined.HasItem(it) {
			t.Errorf("%v both accepted and quarantined", it)
		}
	}
	for _, it := range quarantined.Items() {
		if !quarantined.Has(it, DegradedEvidence) {
			t.Errorf("quarantined %v lacks the degraded-evidence marker", it)
		}
	}
	if quarantined.Len() == 0 && accepted.Len() != 5 {
		t.Errorf("clean pass accepted %d items, want 5", accepted.Len())
	}
	if st := chaosT.Stats(); st.Errors == 0 || st.Delays == 0 {
		t.Fatalf("chaos injected nothing (stats %+v) — the test is not testing", st)
	}

	// Phase 2 — hard outage: every decision degrades to quarantine and
	// the per-endpoint breakers trip open.
	chaosT.SetDown(true)
	out, err = client.ExecuteView(context.Background(), []byte(PaperViewXML), items)
	if err != nil {
		t.Fatalf("ExecuteView during outage: %v", err)
	}
	if n := out["filter_top_k_score:accepted"].Len(); n != 0 {
		t.Errorf("outage run accepted %d items, want 0", n)
	}
	if q := out[QuarantineOutput]; q.Len() != len(items) {
		t.Errorf("outage run quarantined %d items, want all %d", q.Len(), len(items))
	}
	rt := client.TransportFor(srv.URL)
	if rt == nil {
		t.Fatal("no resilient transport recorded for the scavenged host")
	}
	openEndpoints := 0
	for _, state := range rt.BreakerStates() {
		if state == resilience.Open {
			openEndpoints++
		}
	}
	if openEndpoints == 0 {
		t.Fatalf("no breaker opened during the outage: %v", rt.BreakerStates())
	}

	// Phase 3 — heal: chaos off, cooldown elapses, the next calls are
	// half-open probes that succeed and close the breakers; the view is
	// back to full, exact decisions.
	chaosT.SetDown(false)
	chaosOn.Store(false)
	clock.Add(int64(2 * time.Second)) // past the breaker cooldown

	out, err = client.ExecuteView(context.Background(), []byte(PaperViewXML), items)
	if err != nil {
		t.Fatalf("ExecuteView after heal: %v", err)
	}
	accepted = out["filter_top_k_score:accepted"]
	if accepted.Len() != 5 {
		t.Errorf("healed run accepted %d items, want the 5 strong ones", accepted.Len())
	}
	for _, it := range accepted.Items() {
		if !strong[it] {
			t.Errorf("healed run accepted weak item %v", it)
		}
	}
	if q := out[QuarantineOutput]; q.Len() != 0 {
		t.Errorf("healed run still quarantines %d items", q.Len())
	}
	for key, state := range rt.BreakerStates() {
		if state != resilience.Closed {
			t.Errorf("breaker %s is %v after heal, want closed", key, state)
		}
	}
}

func keysOf(out map[string]*Map) []string {
	names := make([]string, 0, len(out))
	for name := range out {
		names = append(names, name)
	}
	return names
}
