package main

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"qurator/internal/qcube"
	"qurator/internal/sparql"
	"qurator/internal/telemetry"
)

// The cube experiment measures the daQ quality cube's pre-aggregated
// rollups against the representation they summarise: raw daq:Observation
// facts in an RDF graph sliced by a SPARQL scan, with the aggregate
// folded caller-side. An equivalence tripwire asserts that every cube
// slice matches the scan's count/sum/min/max before the speedup is
// reported.

// cubeQueryRun is the measured outcome for one slice shape.
type cubeQueryRun struct {
	Name  string `json:"name"`
	Count int64  `json:"count"`
	// CubeUS is the rollup path: O(windows) merge, no graph touch.
	CubeUS float64 `json:"cube_us"`
	// SPARQLUS is the baseline: pattern-match the full graph, fold rows.
	SPARQLUS float64 `json:"sparql_us"`
	Speedup  float64 `json:"speedup"`
}

// cubeRecord is the BENCH_cube.json schema.
type cubeRecord struct {
	Experiment   string         `json:"experiment"`
	Observations int            `json:"observations"`
	Triples      int            `json:"triples"`
	WindowMS     int64          `json:"window_ms"`
	Repeats      int            `json:"repeats"`
	Queries      []cubeQueryRun `json:"queries"`
	// MinSpeedup/MeanSpeedup summarize cube-vs-scan across slice shapes.
	MinSpeedup  float64                    `json:"min_speedup"`
	MeanSpeedup float64                    `json:"mean_speedup"`
	Equivalent  bool                       `json:"equivalent"`
	Metrics     []telemetry.MetricSnapshot `json:"metrics"`
}

var cubeT0 = time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)

// genCubeObservations emits n quality observations across a
// metrics × sources grid, spread over a day — the shape a long-lived
// Qurator deployment accumulates from annotation traffic.
func genCubeObservations(n, nMetrics, nSources int, spread time.Duration, seed int64) []qcube.Observation {
	rng := rand.New(rand.NewSource(seed))
	obs := make([]qcube.Observation, n)
	for i := range obs {
		obs[i] = qcube.Observation{
			Metric:     fmt.Sprintf("http://qurator.org/iq#Metric%d", rng.Intn(nMetrics)),
			ComputedOn: fmt.Sprintf("urn:lsid:qurator:source:%d", rng.Intn(nSources)),
			Agent:      "http://qurator.org/iq#ImprintAnnotation",
			Value:      rng.Float64(),
			At:         cubeT0.Add(time.Duration(rng.Int63n(int64(spread)))),
		}
	}
	return obs
}

// scanAgg folds a SPARQL row set into count/sum/min/max — the caller-side
// aggregation the cube's rollups make unnecessary.
func scanAgg(res *sparql.Result, q qcube.SliceQuery) (qcube.Agg, error) {
	var a qcube.Agg
	for _, b := range res.Bindings {
		o, err := qcube.FromTerms(q.Metric, q.Source, b["value"], b["ts"])
		if err != nil {
			return a, err
		}
		if a.Count == 0 || o.Value < a.Min {
			a.Min = o.Value
		}
		if a.Count == 0 || o.Value > a.Max {
			a.Max = o.Value
		}
		a.Count++
		a.Sum += o.Value
	}
	return a, nil
}

func cubeAggEqual(a, b qcube.Agg) bool {
	const eps = 1e-9
	return a.Count == b.Count &&
		math.Abs(a.Sum-b.Sum) < eps*(1+math.Abs(a.Sum)) &&
		math.Abs(a.Min-b.Min) < eps && math.Abs(a.Max-b.Max) < eps
}

func measureCube(n, repeats int) (*cubeRecord, error) {
	if repeats < 1 {
		repeats = 1
	}
	const window = time.Minute
	obs := genCubeObservations(n, 4, 20, 24*time.Hour, 2006)
	cube := qcube.New(window)
	for _, o := range obs {
		cube.Observe(o)
	}
	graph, err := qcube.ObservationsToGraph(obs)
	if err != nil {
		return nil, err
	}
	record := &cubeRecord{
		Experiment:   "cube",
		Observations: n,
		Triples:      graph.Len(),
		WindowMS:     window.Milliseconds(),
		Repeats:      repeats,
		Equivalent:   true,
	}

	// Window-aligned bounds make the cube's bucket-granular range and the
	// scan's raw-timestamp FILTER select identical observations.
	metric := obs[0].Metric
	source := obs[0].ComputedOn
	queries := []struct {
		name string
		q    qcube.SliceQuery
	}{
		{"metric-all-time", qcube.SliceQuery{Metric: metric}},
		{"metric-range", qcube.SliceQuery{
			Metric: metric,
			From:   cubeT0.Add(2 * time.Hour).Truncate(window),
			To:     cubeT0.Add(20 * time.Hour).Truncate(window),
		}},
		{"cell-all-time", qcube.SliceQuery{Metric: metric, Source: source}},
		{"cell-range", qcube.SliceQuery{
			Metric: metric, Source: source,
			From: cubeT0.Add(2 * time.Hour).Truncate(window),
			To:   cubeT0.Add(20 * time.Hour).Truncate(window),
		}},
	}

	for _, qc := range queries {
		run := cubeQueryRun{Name: qc.name}
		var slice qcube.SliceResult

		cubeUS, err := timeBest(repeats, func() error {
			slice = cube.Slice(qc.q)
			return nil
		})
		if err != nil {
			return nil, err
		}
		run.CubeUS = cubeUS * 1000 // timeBest reports ms

		query := qcube.SliceSPARQL(qc.q)
		var scan qcube.Agg
		sparqlUS, err := timeBest(repeats, func() error {
			res, err := sparql.Exec(graph, query)
			if err != nil {
				return err
			}
			scan, err = scanAgg(res, qc.q)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("query %s: %w", qc.name, err)
		}
		run.SPARQLUS = sparqlUS * 1000

		if !cubeAggEqual(slice.Agg, scan) {
			record.Equivalent = false
		}
		if slice.Agg.Count == 0 {
			return nil, fmt.Errorf("query %s: degenerate slice selected nothing", qc.name)
		}
		run.Count = slice.Agg.Count
		if run.CubeUS > 0 {
			run.Speedup = run.SPARQLUS / run.CubeUS
		}
		record.Queries = append(record.Queries, run)
	}

	for i, qr := range record.Queries {
		if i == 0 || qr.Speedup < record.MinSpeedup {
			record.MinSpeedup = qr.Speedup
		}
		record.MeanSpeedup += qr.Speedup
	}
	record.MeanSpeedup /= float64(len(record.Queries))
	record.Metrics = telemetry.Default.Snapshot()
	return record, nil
}

func runCube(n, repeats int, benchOut string) {
	record, err := measureCube(n, repeats)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Quality cube — pre-aggregated rollups vs SPARQL scan (%d observations, %d triples)\n",
		record.Observations, record.Triples)
	fmt.Printf("%-16s %8s %12s %14s %9s\n", "slice", "count", "cube µs", "sparql µs", "speedup")
	for _, qr := range record.Queries {
		fmt.Printf("%-16s %8d %12.1f %14.1f %8.1fx\n",
			qr.Name, qr.Count, qr.CubeUS, qr.SPARQLUS, qr.Speedup)
	}
	if !record.Equivalent {
		fatal(fmt.Errorf("cube slices diverged from the SPARQL scan aggregates"))
	}
	fmt.Println("all slices identical to the scan baseline")
	if benchOut == "" {
		fmt.Println()
		return
	}
	if err := writeJSON(benchOut, record); err != nil {
		fatal(err)
	}
	fmt.Printf("benchmark record written to %s\n\n", benchOut)
}
