package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestCubeRecordSchema runs the cube experiment over a small observation
// set and checks the BENCH_cube.json record is well-formed: the
// equivalence tripwire holds, every slice shape selected something,
// timings are sane, and the on-disk record round-trips strictly. It
// asserts only a conservative speedup floor (>1x over a tiny set) — the
// ≥10x headline claim is the CI durability job's full-size run.
func TestCubeRecordSchema(t *testing.T) {
	record, err := measureCube(5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !record.Equivalent {
		t.Fatal("cube slices diverged from the SPARQL scan aggregates")
	}
	if record.Experiment != "cube" {
		t.Fatalf("experiment = %q", record.Experiment)
	}
	if record.Observations != 5000 || record.Triples < record.Observations {
		t.Fatalf("observations = %d, triples = %d", record.Observations, record.Triples)
	}
	if len(record.Queries) != 4 {
		t.Fatalf("%d queries, want 4", len(record.Queries))
	}
	for _, qr := range record.Queries {
		if qr.Count == 0 {
			t.Errorf("slice %s selected nothing — the world no longer exercises it", qr.Name)
		}
		if qr.CubeUS < 0 || qr.SPARQLUS < 0 {
			t.Errorf("slice %s: negative wall-clock", qr.Name)
		}
		if qr.Speedup <= 0 {
			t.Errorf("slice %s: speedup = %f", qr.Name, qr.Speedup)
		}
	}
	// Conservative floor: reading a rollup must not be slower than
	// scanning the raw observation graph, even at small scale.
	if record.MinSpeedup < 1 {
		t.Errorf("min speedup = %.2f, want >= 1", record.MinSpeedup)
	}

	path := filepath.Join(t.TempDir(), "BENCH_cube.json")
	if err := writeJSON(path, record); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var back cubeRecord
	if err := dec.Decode(&back); err != nil {
		t.Fatalf("strict decode of %s: %v", path, err)
	}
	if back.Experiment != record.Experiment || len(back.Queries) != len(record.Queries) {
		t.Fatal("record did not round-trip")
	}
}
