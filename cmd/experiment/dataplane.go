package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"qurator/internal/ispider"
	"qurator/internal/qcache"
	"qurator/internal/telemetry"
)

// The data-plane experiment compares serial, sharded and sharded+cached
// enactment of the §5.1 view embedded in the Figure-1 host workflow, over
// one identical world. It is the Figure-7 wall-clock story re-told along
// the shard-count axis, with a built-in tripwire: any configuration whose
// outputs are not bit-identical to the serial run fails the experiment.

// dataPlaneConfig is one point on the shard/cache grid.
type dataPlaneConfig struct {
	Name        string `json:"name"`
	ShardSize   int    `json:"shardSize"`
	MaxInflight int    `json:"maxInflight"`
	Cache       bool   `json:"cache"`
}

// dataPlaneRun is the measured outcome for one configuration.
type dataPlaneRun struct {
	dataPlaneConfig
	// RunsMS are per-repeat wall-clock times, in run order: with a cache,
	// the first entry is the cold run and the rest are warm.
	RunsMS []float64 `json:"runs_ms"`
	BestMS float64   `json:"best_ms"`
	MeanMS float64   `json:"mean_ms"`
	// CacheHits/CacheMisses total over all repeats (zero without -cache).
	CacheHits   uint64 `json:"cacheHits"`
	CacheMisses uint64 `json:"cacheMisses"`
	// Accepted is the number of identifications surviving the view —
	// identical across configurations by construction.
	Accepted int `json:"accepted"`
}

// dataPlaneRecord is the BENCH_dataplane.json schema.
type dataPlaneRecord struct {
	Experiment string                     `json:"experiment"`
	World      ispider.WorldParams        `json:"world"`
	Repeats    int                        `json:"repeats"`
	Configs    []dataPlaneRun             `json:"configs"`
	Equivalent bool                       `json:"equivalent"`
	Metrics    []telemetry.MetricSnapshot `json:"metrics"`
}

func dataPlaneGrid() []dataPlaneConfig {
	return []dataPlaneConfig{
		{Name: "serial"},
		{Name: "shard2", ShardSize: 2},
		{Name: "shard4", ShardSize: 4},
		{Name: "shard8", ShardSize: 8},
		{Name: "shard4+cache", ShardSize: 4, Cache: true},
	}
}

// fingerprint canonically encodes one run's outputs: the accepted
// annotation map plus the GO-term counts.
func fingerprint(out *ispider.RunOutput) (string, error) {
	var b bytes.Buffer
	if err := out.Accepted.WriteCanonical(&b); err != nil {
		return "", err
	}
	terms := make([]string, 0, len(out.TermCounts))
	for t := range out.TermCounts {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	for _, t := range terms {
		fmt.Fprintf(&b, "%s=%d;", t, out.TermCounts[t])
	}
	return b.String(), nil
}

// measureDataPlane runs the full grid and assembles the benchmark record.
func measureDataPlane(world *ispider.World, repeats int) (*dataPlaneRecord, error) {
	if repeats < 1 {
		repeats = 1
	}
	record := &dataPlaneRecord{
		Experiment: "dataplane",
		World:      world.Params,
		Repeats:    repeats,
		Equivalent: true,
	}
	var serialPrint string
	for _, cfg := range dataPlaneGrid() {
		var cache *qcache.Cache
		if cfg.Cache {
			cache = qcache.New(qcache.Options{Name: "exp-" + cfg.Name})
		}
		p, err := ispider.BuildPipelineWith(world, ispider.PipelineOptions{
			ShardSize:   cfg.ShardSize,
			MaxInflight: cfg.MaxInflight,
			Cache:       cache,
		})
		if err != nil {
			return nil, err
		}
		// The distribution-relative condition, as in the Figure 6/7 runs.
		if err := p.Compiled.SetFilterCondition("filter top k score", "ScoreClass in q:high"); err != nil {
			return nil, err
		}
		run := dataPlaneRun{dataPlaneConfig: cfg, RunsMS: make([]float64, 0, repeats)}
		for r := 0; r < repeats; r++ {
			start := time.Now()
			out, err := p.Run(context.Background())
			if err != nil {
				return nil, fmt.Errorf("config %s run %d: %w", cfg.Name, r, err)
			}
			ms := float64(time.Since(start).Microseconds()) / 1000
			run.RunsMS = append(run.RunsMS, ms)
			print, err := fingerprint(out)
			if err != nil {
				return nil, err
			}
			if serialPrint == "" {
				serialPrint = print
			} else if print != serialPrint {
				record.Equivalent = false
			}
			run.Accepted = out.Accepted.Len()
		}
		run.BestMS = run.RunsMS[0]
		for _, ms := range run.RunsMS {
			if ms < run.BestMS {
				run.BestMS = ms
			}
			run.MeanMS += ms
		}
		run.MeanMS /= float64(len(run.RunsMS))
		if cache != nil {
			s := cache.Stats()
			run.CacheHits, run.CacheMisses = s.Hits, s.Misses
		}
		record.Configs = append(record.Configs, run)
	}
	record.Metrics = telemetry.Default.Snapshot()
	return record, nil
}

func writeDataPlaneRecord(path string, record *dataPlaneRecord) error {
	data, err := json.MarshalIndent(record, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func runDataPlane(world *ispider.World, benchOut string, repeats int) {
	record, err := measureDataPlane(world, repeats)
	if err != nil {
		fatal(err)
	}
	fmt.Println("Data plane — shard-parallel invocation and response caching (§5.1 view over the Figure-1 world)")
	fmt.Printf("%-14s %8s %8s %6s %10s %10s %9s\n",
		"config", "best ms", "mean ms", "kept", "hits", "misses", "hit rate")
	for _, run := range record.Configs {
		rate := "-"
		if run.CacheHits+run.CacheMisses > 0 {
			rate = fmt.Sprintf("%.0f%%", 100*float64(run.CacheHits)/float64(run.CacheHits+run.CacheMisses))
		}
		fmt.Printf("%-14s %8.2f %8.2f %6d %10d %10d %9s\n",
			run.Name, run.BestMS, run.MeanMS, run.Accepted, run.CacheHits, run.CacheMisses, rate)
	}
	if !record.Equivalent {
		fatal(fmt.Errorf("data-plane outputs diverged from the serial enactment"))
	}
	fmt.Println("all configurations bit-identical to serial enactment")
	if benchOut == "" {
		fmt.Println()
		return
	}
	if err := writeDataPlaneRecord(benchOut, record); err != nil {
		fatal(err)
	}
	fmt.Printf("benchmark record written to %s\n\n", benchOut)
}
