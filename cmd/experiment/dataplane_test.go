package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"qurator/internal/ispider"
)

func smallWorld(t *testing.T) *ispider.World {
	t.Helper()
	params := ispider.DefaultWorldParams()
	params.SpotCount = 4
	params.DBSize = 40
	world, err := ispider.BuildWorld(params)
	if err != nil {
		t.Fatal(err)
	}
	return world
}

// TestDataPlaneRecordSchema runs the grid over a small world and checks
// the BENCH_dataplane.json record is well-formed: every field the bench
// trajectory consumes is present, no unknown fields sneak in, and the
// equivalence tripwire reports bit-identical outputs.
func TestDataPlaneRecordSchema(t *testing.T) {
	world := smallWorld(t)
	record, err := measureDataPlane(world, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !record.Equivalent {
		t.Fatal("sharded/cached configurations diverged from serial enactment")
	}
	if record.Experiment != "dataplane" {
		t.Fatalf("experiment = %q", record.Experiment)
	}
	if len(record.Configs) != len(dataPlaneGrid()) {
		t.Fatalf("%d configs, want %d", len(record.Configs), len(dataPlaneGrid()))
	}
	var sawSerial, sawSharded, sawCached bool
	for _, run := range record.Configs {
		if len(run.RunsMS) != record.Repeats {
			t.Errorf("config %s: %d runs, want %d", run.Name, len(run.RunsMS), record.Repeats)
		}
		for _, ms := range run.RunsMS {
			if ms < 0 {
				t.Errorf("config %s: negative wall-clock %f", run.Name, ms)
			}
		}
		if run.BestMS > run.MeanMS {
			t.Errorf("config %s: best %f > mean %f", run.Name, run.BestMS, run.MeanMS)
		}
		if run.Accepted != record.Configs[0].Accepted {
			t.Errorf("config %s accepted %d items, serial accepted %d",
				run.Name, run.Accepted, record.Configs[0].Accepted)
		}
		switch {
		case run.ShardSize == 0 && !run.Cache:
			sawSerial = true
		case run.Cache:
			sawCached = true
			if run.CacheHits == 0 {
				t.Errorf("config %s: repeated runs produced no cache hits", run.Name)
			}
		case run.ShardSize > 1:
			sawSharded = true
		}
	}
	if !sawSerial || !sawSharded || !sawCached {
		t.Fatalf("grid must cover serial, sharded and cached configurations: %+v", record.Configs)
	}

	// The on-disk record round-trips strictly: unknown fields in the file
	// (schema drift) fail the decode.
	path := filepath.Join(t.TempDir(), "BENCH_dataplane.json")
	if err := writeDataPlaneRecord(path, record); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var back dataPlaneRecord
	if err := dec.Decode(&back); err != nil {
		t.Fatalf("strict decode of %s: %v", path, err)
	}
	if back.Experiment != record.Experiment || len(back.Configs) != len(record.Configs) {
		t.Fatal("record did not round-trip")
	}
}
