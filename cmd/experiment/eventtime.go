package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"qurator/internal/annotstore"
	"qurator/internal/binding"
	"qurator/internal/compiler"
	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/ops"
	"qurator/internal/qa"
	"qurator/internal/qvlang"
	"qurator/internal/rdf"
	"qurator/internal/services"
	"qurator/internal/stream"
	"qurator/internal/telemetry"
)

// The event-time experiment checks the streaming layer's three contracts:
//
//  1. Equivalence tripwire — on an in-order feed with zero allowed
//     lateness, event-time tumbling windows spanning exactly W items must
//     produce BIT-IDENTICAL decisions to W-item count windows. The two
//     windowing families share one decide path; this is the law that
//     keeps them honest.
//  2. Out-of-order handling — a feed with one straggler held back past
//     the watermark must produce a superseding late re-emission that
//     carries the straggler's decision and the q:Supersedes key of the
//     emission it revises.
//  3. Drift alerting — an injected quality degradation (every item weak
//     from a chosen index on) must raise a drift alert within a bounded
//     number of windows of the injection.

// etRecord is the BENCH_eventtime.json schema.
type etRecord struct {
	Experiment  string `json:"experiment"`
	Items       int    `json:"items"`
	CountWindow int    `json:"countWindow"`
	SpacingMS   int64  `json:"spacing_ms"`
	// Equivalence tripwire (in-order feed, zero lateness).
	Equivalent bool `json:"equivalent"`
	Windows    int  `json:"windows"`
	// Out-of-order feed.
	Superseded  int  `json:"supersededEmissions"`
	LateDecided bool `json:"lateItemDecided"`
	// Drift detection.
	DriftInjectedAtWindow int  `json:"driftInjectedAtWindow"`
	DriftAlertWindow      int  `json:"driftAlertWindow"`
	DriftLagWindows       int  `json:"driftLagWindows"`
	DriftMaxLag           int  `json:"driftMaxLag"`
	DriftAlerted          bool `json:"driftAlerted"`

	Metrics []telemetry.MetricSnapshot `json:"metrics"`
}

// etMaxDriftLag is the acceptance bound: a collapse of the accept rate
// must be flagged within this many windows of the injection.
const etMaxDriftLag = 6

func etItemIRI(i int) evidence.Item {
	return rdf.IRI(fmt.Sprintf("urn:lsid:qurator.org:et:%d", i))
}

func etItemIndex(it evidence.Item) int {
	s := it.Value()
	n, err := strconv.Atoi(s[strings.LastIndex(s, ":")+1:])
	if err != nil {
		panic(err)
	}
	return n
}

// etCompile builds the paper view over a deterministic identity
// annotator: evidence is a pure function of the item index, so two
// enactments of the same item always decide identically — the ground the
// equivalence tripwire stands on. Items for which weak(i) holds get
// evidence the view's filter rejects.
func etCompile(weak func(i int) bool) (*compiler.Compiled, error) {
	model := ontology.NewIQModel()
	repos := annotstore.NewRegistry()
	local := services.NewRegistry()
	local.Add(&services.AnnotatorService{
		ServiceName: "ImprintOutputAnnotator",
		Annotator: ops.AnnotatorFunc{
			ClassIRI: ontology.ImprintOutputAnnotation,
			Types: []rdf.Term{
				ontology.HitRatio, ontology.Coverage, ontology.Masses, ontology.PeptidesCount,
			},
			Fn: func(items []evidence.Item, repo annotstore.Store) error {
				for _, it := range items {
					i := etItemIndex(it)
					hr, mc := 0.9, 0.8
					if weak(i) {
						hr, mc = 0.15, 0.1
					}
					puts := []annotstore.Annotation{
						{Item: it, Type: ontology.HitRatio, Value: evidence.Float(hr)},
						{Item: it, Type: ontology.Coverage, Value: evidence.Float(mc)},
						{Item: it, Type: ontology.Masses, Value: evidence.Int(int64(10 + i%7))},
						{Item: it, Type: ontology.PeptidesCount, Value: evidence.Int(8)},
					}
					for _, a := range puts {
						a.Source = ontology.ImprintOutputAnnotation
						if err := repo.Put(a); err != nil {
							return err
						}
					}
				}
				return nil
			},
		},
		Repositories: repos,
	})
	local.Add(&services.AssertionService{
		ServiceName: "HR_MC_score",
		QA:          qa.NewUniversalPIScore(qvlang.TagKeyFor("HR_MC")),
	})
	local.Add(&services.AssertionService{
		ServiceName: "HR_score",
		QA:          qa.NewHRScore(qvlang.TagKeyFor("HR")),
	})
	local.Add(&services.AssertionService{
		ServiceName: "PIScoreClassifier",
		QA:          qa.NewPIScoreClassifier(),
	})
	bindings := binding.NewRegistry(model)
	bindings.MustBind(binding.Binding{Concept: ontology.ImprintOutputAnnotation, Kind: binding.ServiceResource, Locator: "local:ImprintOutputAnnotator"})
	bindings.MustBind(binding.Binding{Concept: ontology.UniversalPIScore2, Kind: binding.ServiceResource, Locator: "local:HR_MC_score"})
	bindings.MustBind(binding.Binding{Concept: ontology.HRScoreAssertion, Kind: binding.ServiceResource, Locator: "local:HR_score"})
	bindings.MustBind(binding.Binding{Concept: ontology.PIScoreClassifier, Kind: binding.ServiceResource, Locator: "local:PIScoreClassifier"})
	c := &compiler.Compiler{
		Bindings:     bindings,
		Resolver:     &binding.Resolver{Local: local},
		Repositories: repos,
	}
	v, err := qvlang.Parse([]byte(qvlang.PaperViewXML))
	if err != nil {
		return nil, err
	}
	r, err := qvlang.Resolve(v, model)
	if err != nil {
		return nil, err
	}
	return c.Compile(r)
}

// etStream enacts one stream to completion and returns its windows.
func etStream(weak func(i int) bool, cfg stream.Config, items []stream.Item) ([]stream.WindowResult, error) {
	c, err := etCompile(weak)
	if err != nil {
		return nil, err
	}
	e, err := stream.New(c, cfg)
	if err != nil {
		return nil, err
	}
	in := make(chan stream.Item)
	out := make(chan stream.WindowResult, 16)
	go func() {
		defer close(in)
		for _, it := range items {
			in <- it
		}
	}()
	var results []stream.WindowResult
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for res := range out {
			results = append(results, res)
		}
	}()
	err = e.Run(context.Background(), in, out)
	<-collected
	return results, err
}

// etFeed renders items 0..n-1 with event time i*spacing, in the given
// order (nil = in order).
func etFeed(n int, spacing time.Duration, order []int) []stream.Item {
	if order == nil {
		order = make([]int, n)
		for i := range order {
			order[i] = i
		}
	}
	items := make([]stream.Item, 0, len(order))
	for _, i := range order {
		items = append(items, stream.Item{
			ID: etItemIRI(i),
			Evidence: map[evidence.Key]evidence.Value{
				ontology.ObservedAt: evidence.Int(int64(i) * spacing.Milliseconds()),
			},
		})
	}
	return items
}

func measureEventTime(items, window int, spacing time.Duration) (*etRecord, error) {
	weakOdd := func(i int) bool { return i%2 == 1 }
	record := &etRecord{
		Experiment:  "eventtime",
		Items:       items,
		CountWindow: window,
		SpacingMS:   spacing.Milliseconds(),
		DriftMaxLag: etMaxDriftLag,
	}

	// 1. Equivalence: count windows of W items vs event-time tumbling
	// windows of W*spacing, over the identical in-order feed.
	feed := etFeed(items, spacing, nil)
	countRes, err := etStream(weakOdd, stream.Config{Window: window}, feed)
	if err != nil {
		return nil, fmt.Errorf("eventtime: count stream: %w", err)
	}
	eventRes, err := etStream(weakOdd, stream.Config{
		EventTimeKey:   ontology.ObservedAt,
		WindowDuration: time.Duration(window) * spacing,
	}, feed)
	if err != nil {
		return nil, fmt.Errorf("eventtime: event stream: %w", err)
	}
	record.Windows = len(countRes)
	record.Equivalent = len(countRes) == len(eventRes)
	for i := 0; record.Equivalent && i < len(countRes); i++ {
		a, err := json.Marshal(countRes[i].Decisions)
		if err != nil {
			return nil, err
		}
		b, err := json.Marshal(eventRes[i].Decisions)
		if err != nil {
			return nil, err
		}
		if string(a) != string(b) || countRes[i].Size != eventRes[i].Size {
			record.Equivalent = false
		}
	}

	// 2. Out-of-order: hold one early item back to the end of the feed.
	// Its window fires without it; the straggler must come back as a
	// superseding re-emission that decides it.
	const held = 3
	order := make([]int, 0, items)
	for i := 0; i < items; i++ {
		if i != held {
			order = append(order, i)
		}
	}
	order = append(order, held)
	lateRes, err := etStream(weakOdd, stream.Config{
		EventTimeKey:    ontology.ObservedAt,
		WindowDuration:  time.Duration(window) * spacing,
		AllowedLateness: time.Hour,
	}, etFeed(items, spacing, order))
	if err != nil {
		return nil, fmt.Errorf("eventtime: out-of-order stream: %w", err)
	}
	for _, res := range lateRes {
		if res.Late && res.Supersedes != "" {
			record.Superseded++
			for _, d := range res.Decisions {
				if d.Item == etItemIRI(held).Value() {
					record.LateDecided = true
				}
			}
		}
	}

	// 3. Drift: healthy windows, then every item weak — the accept rate
	// collapses from 50% to 0 and the detector must flag it promptly.
	injectAt := 2 * 8 // windows of healthy baseline (2x the warm-up)
	degradeFrom := injectAt * window
	driftItems := 2 * degradeFrom
	record.DriftInjectedAtWindow = injectAt
	record.DriftAlertWindow = -1
	driftCfg := stream.Config{
		EventTimeKey:   ontology.ObservedAt,
		WindowDuration: time.Duration(window) * spacing,
		Drift: &stream.DriftConfig{
			// The injected degradation collapses the accept rate; evidence
			// means wobble window-to-window by construction (Masses cycles
			// with period 7 against 8-item windows), so only the accept-rate
			// track is the experiment's signal.
			OnAlert: func(a stream.Alert) {
				if a.Metric == stream.AcceptRateMetric && !record.DriftAlerted {
					record.DriftAlerted = true
					record.DriftAlertWindow = a.Window
				}
			},
		},
	}
	weakDegraded := func(i int) bool { return i%2 == 1 || i >= degradeFrom }
	if _, err := etStream(weakDegraded, driftCfg, etFeed(driftItems, spacing, nil)); err != nil {
		return nil, fmt.Errorf("eventtime: drift stream: %w", err)
	}
	if record.DriftAlerted {
		record.DriftLagWindows = record.DriftAlertWindow - record.DriftInjectedAtWindow
	}
	record.Metrics = telemetry.Default.Snapshot()
	return record, nil
}

func runEventTime(items, window int, spacing time.Duration, benchOut string) {
	record, err := measureEventTime(items, window, spacing)
	if err != nil {
		fatal(err)
	}
	fmt.Println("Event-time streaming — equivalence, late data, drift detection")
	fmt.Printf("feed: %d items spaced %v apart, %d-item windows (%v)\n",
		record.Items, spacing, record.CountWindow, time.Duration(record.CountWindow)*spacing)
	if !record.Equivalent {
		fatal(fmt.Errorf("eventtime: event-time windows diverged from count windows on an in-order feed"))
	}
	fmt.Printf("equivalence: %d windows bit-identical between count and event-time enactment\n",
		record.Windows)
	if record.Superseded == 0 || !record.LateDecided {
		fatal(fmt.Errorf("eventtime: straggler produced no superseding re-emission (superseded=%d, decided=%v)",
			record.Superseded, record.LateDecided))
	}
	fmt.Printf("late data: %d superseding re-emission(s), straggler decided on replay\n", record.Superseded)
	if !record.DriftAlerted || record.DriftLagWindows > record.DriftMaxLag {
		fatal(fmt.Errorf("eventtime: drift alert missing or slow (alerted=%v window=%d lag=%d max=%d)",
			record.DriftAlerted, record.DriftAlertWindow, record.DriftLagWindows, record.DriftMaxLag))
	}
	fmt.Printf("drift: degradation injected at window %d, alerted at window %d (lag %d ≤ %d)\n",
		record.DriftInjectedAtWindow, record.DriftAlertWindow, record.DriftLagWindows, record.DriftMaxLag)
	if benchOut == "" {
		fmt.Println()
		return
	}
	data, err := json.MarshalIndent(record, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(benchOut, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchmark record written to %s\n\n", benchOut)
}
