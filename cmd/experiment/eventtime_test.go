package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestEventTimeRecordSchema runs the event-time experiment at a reduced
// scale and checks BENCH_eventtime.json is well-formed: the equivalence
// tripwire holds, the straggler superseded its window, the drift alert
// landed within the bound, the drift metrics are in the snapshot, and
// the on-disk record round-trips strictly.
func TestEventTimeRecordSchema(t *testing.T) {
	const items, window = 32, 4
	record, err := measureEventTime(items, window, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if record.Experiment != "eventtime" || record.Items != items || record.CountWindow != window {
		t.Fatalf("header = %q/%d/%d", record.Experiment, record.Items, record.CountWindow)
	}
	if !record.Equivalent {
		t.Fatal("event-time windows diverged from count windows on an in-order feed")
	}
	if record.Windows != items/window {
		t.Errorf("windows = %d, want %d", record.Windows, items/window)
	}
	if record.Superseded < 1 || !record.LateDecided {
		t.Fatalf("late data: superseded=%d decided=%v, want a superseding re-emission deciding the straggler",
			record.Superseded, record.LateDecided)
	}
	if !record.DriftAlerted {
		t.Fatal("injected degradation raised no drift alert")
	}
	if record.DriftLagWindows < 0 || record.DriftLagWindows > record.DriftMaxLag {
		t.Errorf("drift lag = %d windows, want within [0, %d]", record.DriftLagWindows, record.DriftMaxLag)
	}
	var sawScore, sawAlerts bool
	for _, m := range record.Metrics {
		switch m.Name {
		case "qurator_stream_drift_score":
			sawScore = true
		case "qurator_stream_drift_alerts_total":
			sawAlerts = true
		}
	}
	if !sawScore || !sawAlerts {
		t.Errorf("drift metrics missing from snapshot: score=%v alerts=%v", sawScore, sawAlerts)
	}

	path := filepath.Join(t.TempDir(), "BENCH_eventtime.json")
	data, err := json.MarshalIndent(record, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var back etRecord
	if err := dec.Decode(&back); err != nil {
		t.Fatalf("record does not round-trip strictly: %v", err)
	}
	if back.Superseded != record.Superseded || back.DriftAlertWindow != record.DriftAlertWindow {
		t.Error("record fields lost in the round-trip")
	}
}
