// Command experiment regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index) from the synthetic world:
//
//	experiment -fig 1        # Figure 1: host workflow enactment summary
//	experiment -fig 6        # Figure 6: compiled + embedded workflow structure
//	experiment -fig 7        # Figure 7: GO-term significance ranking (default)
//	experiment -ablation qa  # A2: QA choice precision/recall
//	experiment -ablation threshold  # A3: filter-threshold sweep
//	experiment -dataplane    # serial vs sharded vs cached enactment
//	experiment -sparql       # metadata-plane query engine: clone vs snapshot
//	experiment -cube         # quality cube: rollup slices vs SPARQL scans
//	experiment -mqo          # view-fleet MQO: independent vs merged shared-prefix enactment
//	experiment -eventtime    # event-time streaming: equivalence, late data, drift alerting
//	experiment -all          # everything
//
// Flags -seed, -spots, -db resize the world. The Figure-7 run also
// writes a benchmark record (per-phase wall-clock + a process metrics
// snapshot) to -bench-out, seeding the bench trajectory.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"qurator/internal/ispider"
	"qurator/internal/telemetry"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (1, 6 or 7)")
	ablation := flag.String("ablation", "", "ablation to run: qa | threshold")
	all := flag.Bool("all", false, "run every experiment")
	seed := flag.Int64("seed", 2006, "world seed")
	spots := flag.Int("spots", 10, "number of protein spots")
	dbSize := flag.Int("db", 120, "reference database size")
	benchOut := flag.String("bench-out", "BENCH_fig7.json",
		"write the Figure-7 benchmark record (timings + metrics) here; empty = off")
	dataplane := flag.Bool("dataplane", false,
		"run the data-plane experiment: serial vs sharded vs cached enactment of the quality view")
	dataplaneOut := flag.String("dataplane-out", "BENCH_dataplane.json",
		"write the data-plane benchmark record here; empty = off")
	repeats := flag.Int("repeats", 3, "repeats per data-plane configuration")
	sparqlRun := flag.Bool("sparql", false,
		"run the metadata-plane query experiment: clone-per-query vs snapshot + streaming evaluation")
	sparqlRuns := flag.Int("sparql-runs", 20000, "provenance runs in the SPARQL experiment's log")
	sparqlOut := flag.String("sparql-out", "BENCH_sparql.json",
		"write the SPARQL benchmark record here; empty = off")
	cubeRun := flag.Bool("cube", false,
		"run the quality-cube experiment: pre-aggregated rollup slices vs SPARQL scans over raw daQ observations")
	cubeObs := flag.Int("cube-obs", 100_000, "observations in the cube experiment")
	cubeOut := flag.String("cube-out", "BENCH_cube.json",
		"write the cube benchmark record here; empty = off")
	mqoRun := flag.Bool("mqo", false,
		"run the multi-query-optimization experiment: independent view-fleet enactment vs one merged shared-prefix plan")
	mqoViews := flag.Int("mqo-views", 100, "fleet size in the MQO experiment")
	mqoFamilies := flag.Int("mqo-families", 20, "shared QA families in the MQO experiment")
	mqoItems := flag.Int("mqo-items", 24, "data-set size in the MQO experiment")
	mqoLatency := flag.Duration("mqo-latency", 2*time.Millisecond,
		"simulated per-invocation quality-service latency in the MQO experiment")
	mqoOut := flag.String("mqo-out", "BENCH_mqo.json",
		"write the MQO benchmark record here; empty = off")
	etRun := flag.Bool("eventtime", false,
		"run the event-time streaming experiment: count/event-time equivalence, late-data supersession, drift-alert latency")
	etItems := flag.Int("eventtime-items", 64, "items in the event-time equivalence feed")
	etWindow := flag.Int("eventtime-window", 8, "window size (items) in the event-time experiment")
	etSpacing := flag.Duration("eventtime-spacing", 10*time.Millisecond,
		"event-time spacing between consecutive items")
	etOut := flag.String("eventtime-out", "BENCH_eventtime.json",
		"write the event-time benchmark record here; empty = off")
	flag.Parse()

	params := ispider.DefaultWorldParams()
	params.Seed = *seed
	params.SpotCount = *spots
	params.DBSize = *dbSize
	world, err := ispider.BuildWorld(params)
	if err != nil {
		fatal(err)
	}

	if *all {
		runFigure1(world)
		runFigure6(world)
		runFigure7(world, *benchOut)
		runDataPlane(world, *dataplaneOut, *repeats)
		runSPARQL(*sparqlRuns, *repeats, *sparqlOut)
		runCube(*cubeObs, *repeats, *cubeOut)
		runMQO(*mqoViews, *mqoFamilies, *mqoItems, *mqoLatency, *repeats, *mqoOut)
		runEventTime(*etItems, *etWindow, *etSpacing, *etOut)
		runQAAblation(world)
		runThresholdAblation(world)
		runLearnedAblation(world)
		runContaminationAblation(params)
		return
	}
	switch {
	case *dataplane:
		runDataPlane(world, *dataplaneOut, *repeats)
	case *sparqlRun:
		runSPARQL(*sparqlRuns, *repeats, *sparqlOut)
	case *cubeRun:
		runCube(*cubeObs, *repeats, *cubeOut)
	case *mqoRun:
		runMQO(*mqoViews, *mqoFamilies, *mqoItems, *mqoLatency, *repeats, *mqoOut)
	case *etRun:
		runEventTime(*etItems, *etWindow, *etSpacing, *etOut)
	case *fig == 1:
		runFigure1(world)
	case *fig == 6:
		runFigure6(world)
	case *fig == 7 || (*fig == 0 && *ablation == ""):
		runFigure7(world, *benchOut)
	case *ablation == "qa":
		runQAAblation(world)
	case *ablation == "threshold":
		runThresholdAblation(world)
	case *ablation == "learned":
		runLearnedAblation(world)
	case *ablation == "contamination":
		runContaminationAblation(params)
	default:
		fmt.Fprintln(os.Stderr, "experiment: unknown selection")
		flag.Usage()
		os.Exit(2)
	}
}

func runFigure1(world *ispider.World) {
	out, err := ispider.RunBaseline(world)
	if err != nil {
		fatal(err)
	}
	fmt.Println("Figure 1 — ISPIDER analysis workflow (no quality processing)")
	fmt.Printf("spots analysed:        %d\n", world.Params.SpotCount)
	fmt.Printf("reference DB size:     %d proteins\n", world.Params.DBSize)
	fmt.Printf("identifications:       %d ranked protein IDs\n", len(out.Entries))
	totalTerms := 0
	for _, n := range out.TermCounts {
		totalTerms += n
	}
	fmt.Printf("GO-term occurrences:   %d over %d distinct terms\n", totalTerms, len(out.TermCounts))
	fmt.Println("\ntop GO terms by raw frequency (the pareto view):")
	ranking := ispider.TermRanking(out.TermCounts)
	for i, term := range ranking {
		if i >= 10 {
			break
		}
		fmt.Printf("  %2d. %-14s %4d occurrences\n", i+1, term, out.TermCounts[term])
	}
	fmt.Println()
}

func runFigure6(world *ispider.World) {
	p, err := ispider.BuildPipeline(world, "")
	if err != nil {
		fatal(err)
	}
	fmt.Println("Figure 6 — compiled quality workflow, embedded in the host")
	fmt.Print(p.Compiled.Describe())
	fmt.Println("\nhost workflow after embedding:")
	fmt.Printf("  processors: %v\n", p.Host.Processors())
	for _, l := range p.Host.DataLinks() {
		fmt.Printf("  link: %s\n", l)
	}
	// Prove the embedding runs, using the distribution-relative condition
	// (the §5.1 default's absolute HR_MC > 20 threshold is calibrated to
	// the authors' lab, not this synthetic world).
	if err := p.Compiled.SetFilterCondition("filter top k score", "ScoreClass in q:high"); err != nil {
		fatal(err)
	}
	out, err := p.Run(context.Background())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nenactment (condition: ScoreClass in q:high): %d identifications in, %d accepted\n\n",
		len(out.Entries), out.Accepted.Len())
}

func runFigure7(world *ispider.World, benchOut string) {
	res, timings, err := ispider.RunFigure7Timed(world)
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Format())
	fmt.Println()
	if benchOut == "" {
		return
	}
	if err := writeBench(benchOut, world, res, timings); err != nil {
		fatal(err)
	}
	fmt.Printf("benchmark record written to %s\n\n", benchOut)
}

// writeBench records the Figure-7 run for the bench trajectory: world
// parameters, per-phase wall-clock, headline result numbers, and the
// process metrics snapshot (processor durations, service counters) the
// run accumulated.
func writeBench(path string, world *ispider.World, res *ispider.Figure7Result, t *ispider.Figure7Timings) error {
	record := struct {
		Experiment string              `json:"experiment"`
		World      ispider.WorldParams `json:"world"`
		PhasesMS   map[string]float64  `json:"phases_ms"`
		Result     struct {
			IdentificationsOriginal int     `json:"identificationsOriginal"`
			IdentificationsKept     int     `json:"identificationsKept"`
			TotalOriginal           int     `json:"termOccurrencesOriginal"`
			TotalFiltered           int     `json:"termOccurrencesFiltered"`
			RankDisplacement        float64 `json:"rankDisplacement"`
		} `json:"result"`
		Metrics []telemetry.MetricSnapshot `json:"metrics"`
	}{
		Experiment: "figure7",
		World:      world.Params,
		PhasesMS: map[string]float64{
			"baseline":          float64(t.Baseline.Microseconds()) / 1000,
			"quality_enactment": float64(t.QualityEnactment.Microseconds()) / 1000,
			"ranking":           float64(t.Ranking.Microseconds()) / 1000,
		},
		Metrics: telemetry.Default.Snapshot(),
	}
	record.Result.IdentificationsOriginal = res.IdentificationsOriginal
	record.Result.IdentificationsKept = res.IdentificationsKept
	record.Result.TotalOriginal = res.TotalOriginal
	record.Result.TotalFiltered = res.TotalFiltered
	record.Result.RankDisplacement = res.RankDisplacement
	data, err := json.MarshalIndent(record, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func runQAAblation(world *ispider.World) {
	rows, err := ispider.RunQAComparison(world)
	if err != nil {
		fatal(err)
	}
	fmt.Print(ispider.FormatPRTable(
		"Ablation A2 — alternative quality assertions over the same evidence", rows))
	fmt.Println()
}

func runThresholdAblation(world *ispider.World) {
	points, err := ispider.RunThresholdSweep(world, []int{1, 2, 3, 5, 8, 10})
	if err != nil {
		fatal(err)
	}
	stats := make([]ispider.PRStats, len(points))
	for i, p := range points {
		stats[i] = p.PRStats
	}
	fmt.Print(ispider.FormatPRTable(
		"Ablation A3 — filter-threshold sweep (score cuts and top-k per spot)", stats))
	fmt.Println()
}

func runLearnedAblation(world *ispider.World) {
	res, err := ispider.RunLearnedQA(world)
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Format())
	fmt.Println()
}

func runContaminationAblation(params ispider.WorldParams) {
	points, err := ispider.RunContaminationSweep(params, []int{0, 1, 2, 4, 6})
	if err != nil {
		fatal(err)
	}
	fmt.Print(ispider.FormatContamination(points))
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiment:", err)
	os.Exit(1)
}
