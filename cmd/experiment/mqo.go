package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"qurator/internal/annotstore"
	"qurator/internal/binding"
	"qurator/internal/compiler"
	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/ops"
	"qurator/internal/qvlang"
	"qurator/internal/rdf"
	"qurator/internal/services"
	"qurator/internal/telemetry"
)

// The MQO experiment measures workflow-level common-subexpression
// elimination (compiler.MergeViews): a fleet of views drawn from a small
// pool of QA families — the paper's §7 observation that views are
// reusable quality knowledge, so registered views overlap heavily — is
// enacted first independently (N full enactments) and then as ONE merged
// plan in which each shared annotator/enrichment/QA prefix runs once.
// Every quality service carries a fixed simulated latency, standing in
// for the network round-trip that dominates real enactments. The built-in
// tripwire re-checks the MQO contract: every view's merged outputs must
// be bit-identical to its independent enactment.

// mqoRecord is the BENCH_mqo.json schema.
type mqoRecord struct {
	Experiment string `json:"experiment"`
	// Views is the fleet size; QAFamilies the size of the shared QA pool
	// each view draws from (plus one private QA per view).
	Views      int `json:"views"`
	QAFamilies int `json:"qaFamilies"`
	Items      int `json:"items"`
	// SharedFraction is the fraction of each view's quality-service
	// processors that at least one sibling also uses.
	SharedFraction float64 `json:"sharedFraction"`
	LatencyMS      float64 `json:"latency_ms"`
	Repeats        int     `json:"repeats"`
	// SharedPrefixes / SavedPerEnactment come from the merged plan: how
	// many quality processors serve ≥ 2 views, and how many invocations
	// one merged enactment avoids versus independent enactment.
	SharedPrefixes    int `json:"sharedPrefixes"`
	SavedPerEnactment int `json:"savedPerEnactment"`
	// IndependentRunsMS / MergedRunsMS are per-repeat wall-clock times of
	// the full fleet: all views independently vs the one merged plan.
	IndependentRunsMS []float64 `json:"independent_runs_ms"`
	MergedRunsMS      []float64 `json:"merged_runs_ms"`
	IndependentBestMS float64   `json:"independent_best_ms"`
	MergedBestMS      float64   `json:"merged_best_ms"`
	// Ratio = merged best / independent best; MaxRatio is the acceptance
	// ceiling the experiment enforces.
	Ratio    float64 `json:"ratio"`
	MaxRatio float64 `json:"maxRatio"`
	// Equivalent reports the bit-identity tripwire: every view's merged
	// outputs matched its independent enactment, every repeat.
	Equivalent bool                       `json:"equivalent"`
	Metrics    []telemetry.MetricSnapshot `json:"metrics"`
}

// mqoMaxRatio is the acceptance ceiling: a merged fleet enactment must
// cost at most this fraction of enacting every view independently.
const mqoMaxRatio = 0.35

// synQA is a synthetic scoring QA with simulated service latency: one
// fixed delay per invocation (the network round-trip), then a
// deterministic per-item score derived from the HitRatio evidence.
type synQA struct {
	class rdf.Term
	tag   rdf.Term
	gain  float64
	delay time.Duration
}

func (s *synQA) Class() rdf.Term      { return s.class }
func (s *synQA) Requires() []rdf.Term { return []rdf.Term{ontology.HitRatio} }
func (s *synQA) Provides() []rdf.Term { return []rdf.Term{s.tag} }
func (s *synQA) ItemWise() bool       { return true }
func (s *synQA) Assert(m *evidence.Map) error {
	time.Sleep(s.delay)
	for _, it := range m.Items() {
		hr, ok := m.Get(it, ontology.HitRatio).AsFloat()
		if !ok {
			return fmt.Errorf("mqo: item %v lacks HitRatio", it)
		}
		m.Set(it, s.tag, evidence.Float(math.Round(100*hr)+s.gain))
	}
	return nil
}

// mqoFleet is the compiled synthetic view fleet.
type mqoFleet struct {
	views    []*compiler.Compiled
	families int
	// sharedFraction: shared quality procs per view / total per view.
	sharedFraction float64
}

// buildMQOFleet compiles viewCount views over one service stack: a single
// shared annotator, `families` shared QA services (each view declares
// four of them, round-robin), and one private QA per view. With four of
// five QAs (plus annotator and enrichment) common to many views, ~86% of
// each view's quality structure is shared — the "80% shared" fleet shape
// of the acceptance scenario.
func buildMQOFleet(viewCount, families int, delay time.Duration) (*mqoFleet, error) {
	model := ontology.NewIQModel()
	synAnnotation := ontology.Q("SynAnnotation")
	model.MustDefineClass(synAnnotation, ontology.AnnotationFunction)

	repos := annotstore.NewRegistry()
	local := services.NewRegistry()
	local.Add(&services.AnnotatorService{
		ServiceName: "SynAnnotator",
		Annotator: ops.AnnotatorFunc{
			ClassIRI: synAnnotation,
			Types:    []rdf.Term{ontology.HitRatio},
			Fn: func(items []evidence.Item, repo annotstore.Store) error {
				time.Sleep(delay)
				for _, it := range items {
					idx := mqoItemIndex(it)
					if err := repo.Put(annotstore.Annotation{
						Item:   it,
						Type:   ontology.HitRatio,
						Value:  evidence.Float(float64(idx%10+1) / 10),
						Source: synAnnotation,
					}); err != nil {
						return err
					}
				}
				return nil
			},
		},
		Repositories: repos,
	})
	bindings := binding.NewRegistry(model)
	bindings.MustBind(binding.Binding{
		Concept: synAnnotation, Kind: binding.ServiceResource, Locator: "local:SynAnnotator",
	})
	addQA := func(name, tagName string, gain float64) {
		concept := ontology.Q(name)
		model.MustDefineClass(concept, ontology.QualityAssertion)
		local.Add(&services.AssertionService{
			ServiceName: name,
			QA: &synQA{
				class: concept,
				tag:   qvlang.TagKeyFor(tagName),
				gain:  gain,
				delay: delay,
			},
		})
		bindings.MustBind(binding.Binding{
			Concept: concept, Kind: binding.ServiceResource, Locator: "local:" + name,
		})
	}
	for f := 0; f < families; f++ {
		addQA(fmt.Sprintf("SynQA%02d", f), fmt.Sprintf("T%02d", f), float64(f))
	}
	for i := 0; i < viewCount; i++ {
		addQA(fmt.Sprintf("PrivQA%03d", i), fmt.Sprintf("P%03d", i), 100+float64(i))
	}

	comp := &compiler.Compiler{
		Bindings:     bindings,
		Resolver:     &binding.Resolver{Local: local},
		Repositories: repos,
	}
	fleet := &mqoFleet{families: families}
	const sharedPerView = 4
	for i := 0; i < viewCount; i++ {
		var qas strings.Builder
		for s := 0; s < sharedPerView; s++ {
			f := (i + s) % families
			fmt.Fprintf(&qas, qaFragment, fmt.Sprintf("SynQA%02d", f), fmt.Sprintf("T%02d", f))
		}
		fmt.Fprintf(&qas, qaFragment, fmt.Sprintf("PrivQA%03d", i), fmt.Sprintf("P%03d", i))
		threshold := 25 + (i*7)%50
		xml := fmt.Sprintf(mqoViewXML, fmt.Sprintf("mqo-view-%03d", i), qas.String(),
			fmt.Sprintf("T%02d", i%families), threshold)
		v, err := qvlang.Parse([]byte(xml))
		if err != nil {
			return nil, fmt.Errorf("mqo: view %d: %w", i, err)
		}
		r, err := qvlang.Resolve(v, model)
		if err != nil {
			return nil, fmt.Errorf("mqo: view %d: %w", i, err)
		}
		c, err := comp.Compile(r)
		if err != nil {
			return nil, fmt.Errorf("mqo: view %d: %w", i, err)
		}
		fleet.views = append(fleet.views, c)
	}
	// Per view: 1 annotator + 1 enrichment + 4 shared QAs are shared; the
	// private QA is not. (Consolidations are per-view plumbing, actions
	// are per-view by design — neither is a quality service.)
	fleet.sharedFraction = float64(2+sharedPerView) / float64(2+sharedPerView+1)
	return fleet, nil
}

const mqoViewXML = `<QualityView name="%s">
  <Annotator servicename="SynAnnotator" servicetype="q:SynAnnotation">
    <variables repositoryRef="cache" persistent="false">
      <var evidence="q:HitRatio"/>
    </variables>
  </Annotator>
%s  <action name="keep scored">
    <filter>
      <condition>%s &gt; %d</condition>
    </filter>
  </action>
</QualityView>`

const qaFragment = `  <QualityAssertion servicename="%s" servicetype="q:%[1]s"
                    tagname="%s" tagsyntype="q:score">
    <variables repositoryRef="cache">
      <var variablename="hr" evidence="q:HitRatio"/>
    </variables>
  </QualityAssertion>
`

func mqoItem(i int) evidence.Item {
	return rdf.IRI(fmt.Sprintf("urn:lsid:qurator.org:mqo:%d", i))
}

func mqoItemIndex(it evidence.Item) int {
	s := it.Value()
	var idx int
	fmt.Sscanf(s[strings.LastIndex(s, ":")+1:], "%d", &idx)
	return idx
}

// viewFingerprint canonically encodes one view's outputs, sorted by
// output name — the bit-identity tripwire's unit of comparison.
func viewFingerprint(outputs map[string]*evidence.Map) (string, error) {
	names := make([]string, 0, len(outputs))
	for name := range outputs {
		names = append(names, name)
	}
	sort.Strings(names)
	var b bytes.Buffer
	for _, name := range names {
		fmt.Fprintf(&b, "%s:", name)
		if err := outputs[name].WriteCanonical(&b); err != nil {
			return "", err
		}
	}
	return b.String(), nil
}

// measureMQO enacts the fleet independently and merged, repeats times
// each, checking bit-identity on every repeat.
func measureMQO(viewCount, families, items int, delay time.Duration, repeats int) (*mqoRecord, error) {
	if repeats < 1 {
		repeats = 1
	}
	fleet, err := buildMQOFleet(viewCount, families, delay)
	if err != nil {
		return nil, err
	}
	mv, err := compiler.MergeViews(fleet.views...)
	if err != nil {
		return nil, err
	}
	record := &mqoRecord{
		Experiment:        "mqo",
		Views:             viewCount,
		QAFamilies:        families,
		Items:             items,
		SharedFraction:    fleet.sharedFraction,
		LatencyMS:         float64(delay.Microseconds()) / 1000,
		Repeats:           repeats,
		SharedPrefixes:    mv.SharedPrefixes(),
		SavedPerEnactment: mv.SavedPerEnactment(),
		MaxRatio:          mqoMaxRatio,
		Equivalent:        true,
	}
	data := make([]evidence.Item, items)
	for i := range data {
		data[i] = mqoItem(i)
	}
	ctx := context.Background()

	independent := make(map[string]string, viewCount)
	for r := 0; r < repeats; r++ {
		start := time.Now()
		for _, v := range fleet.views {
			out, err := v.Run(ctx, data)
			if err != nil {
				return nil, fmt.Errorf("mqo: independent %s: %w", v.Name(), err)
			}
			print, err := viewFingerprint(out)
			if err != nil {
				return nil, err
			}
			if prev, ok := independent[v.Name()]; ok && prev != print {
				return nil, fmt.Errorf("mqo: independent enactment of %s is not deterministic", v.Name())
			}
			independent[v.Name()] = print
		}
		record.IndependentRunsMS = append(record.IndependentRunsMS,
			float64(time.Since(start).Microseconds())/1000)
	}

	for r := 0; r < repeats; r++ {
		start := time.Now()
		results, err := mv.Enact(ctx, data)
		if err != nil {
			return nil, fmt.Errorf("mqo: merged enactment: %w", err)
		}
		record.MergedRunsMS = append(record.MergedRunsMS,
			float64(time.Since(start).Microseconds())/1000)
		for name, vr := range results {
			if vr.Err != nil {
				return nil, fmt.Errorf("mqo: merged view %s: %w", name, vr.Err)
			}
			print, err := viewFingerprint(vr.Outputs)
			if err != nil {
				return nil, err
			}
			if print != independent[name] {
				record.Equivalent = false
			}
		}
	}

	best := func(runs []float64) float64 {
		b := runs[0]
		for _, v := range runs[1:] {
			if v < b {
				b = v
			}
		}
		return b
	}
	record.IndependentBestMS = best(record.IndependentRunsMS)
	record.MergedBestMS = best(record.MergedRunsMS)
	record.Ratio = record.MergedBestMS / record.IndependentBestMS
	record.Metrics = telemetry.Default.Snapshot()
	return record, nil
}

func writeMQORecord(path string, record *mqoRecord) error {
	data, err := json.MarshalIndent(record, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func runMQO(viewCount, families, items int, latency time.Duration, repeats int, benchOut string) {
	record, err := measureMQO(viewCount, families, items, latency, repeats)
	if err != nil {
		fatal(err)
	}
	fmt.Println("Multi-query optimization — shared-prefix enactment of a view fleet (compiler.MergeViews)")
	fmt.Printf("fleet: %d views over %d QA families (+1 private QA each), %.0f%% shared structure, %gms service latency\n",
		record.Views, record.QAFamilies, 100*record.SharedFraction, record.LatencyMS)
	fmt.Printf("merged plan: %d shared prefixes, %d invocations saved per enactment\n",
		record.SharedPrefixes, record.SavedPerEnactment)
	fmt.Printf("%-22s %12s %12s\n", "strategy", "best ms", "mean ms")
	mean := func(runs []float64) float64 {
		var s float64
		for _, v := range runs {
			s += v
		}
		return s / float64(len(runs))
	}
	fmt.Printf("%-22s %12.1f %12.1f\n", "independent fleet", record.IndependentBestMS, mean(record.IndependentRunsMS))
	fmt.Printf("%-22s %12.1f %12.1f\n", "merged (MQO)", record.MergedBestMS, mean(record.MergedRunsMS))
	fmt.Printf("ratio merged/independent = %.3f (ceiling %.2f)\n", record.Ratio, record.MaxRatio)
	if !record.Equivalent {
		fatal(fmt.Errorf("mqo: merged outputs diverged from independent enactment"))
	}
	fmt.Println("all views bit-identical to independent enactment")
	if record.Ratio > record.MaxRatio {
		fatal(fmt.Errorf("mqo: merged enactment cost %.3f of independent, above the %.2f ceiling",
			record.Ratio, record.MaxRatio))
	}
	if benchOut == "" {
		fmt.Println()
		return
	}
	if err := writeMQORecord(benchOut, record); err != nil {
		fatal(err)
	}
	fmt.Printf("benchmark record written to %s\n\n", benchOut)
}
