package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestMQORecordSchema runs the MQO experiment over a scaled-down fleet
// and checks the BENCH_mqo.json record is well-formed: the bit-identity
// tripwire holds, the merged plan deduplicates what the fleet shape
// predicts, the dedup metrics are present, and the on-disk record
// round-trips strictly. The ≤0.35 cost-ratio ceiling is asserted by the
// full-size CI run (runMQO fatals above it); at test scale we only
// require the merged fleet to be strictly cheaper.
func TestMQORecordSchema(t *testing.T) {
	const views, families, items = 12, 4, 8
	record, err := measureMQO(views, families, items, time.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !record.Equivalent {
		t.Fatal("merged outputs diverged from independent enactment")
	}
	if record.Experiment != "mqo" || record.Views != views || record.QAFamilies != families {
		t.Fatalf("header = %q/%d/%d", record.Experiment, record.Views, record.QAFamilies)
	}
	// Plan shape: per view 1 annotator + 1 enrichment + 4 shared QAs + 1
	// private QA = 7 quality processors; merged = 1 + 1 + families shared
	// QAs + views private QAs.
	wantSaved := 7*views - (2 + families + views)
	if record.SavedPerEnactment != wantSaved {
		t.Errorf("savedPerEnactment = %d, want %d", record.SavedPerEnactment, wantSaved)
	}
	// Shared prefixes: annotator + enrichment + every family QA (each
	// family serves ≥ 2 views at this fleet shape).
	if record.SharedPrefixes != 2+families {
		t.Errorf("sharedPrefixes = %d, want %d", record.SharedPrefixes, 2+families)
	}
	if record.MergedBestMS <= 0 || record.IndependentBestMS <= 0 {
		t.Fatalf("timings = %f / %f", record.MergedBestMS, record.IndependentBestMS)
	}
	if record.Ratio >= 1 {
		t.Errorf("ratio = %.3f, want < 1 even at test scale", record.Ratio)
	}
	var sawGauge, sawCounter bool
	for _, m := range record.Metrics {
		switch m.Name {
		case "qurator_mqo_shared_prefixes":
			sawGauge = true
		case "qurator_mqo_invocations_saved_total":
			sawCounter = true
		}
	}
	if !sawGauge || !sawCounter {
		t.Errorf("MQO metrics missing from snapshot: gauge=%v counter=%v", sawGauge, sawCounter)
	}

	path := filepath.Join(t.TempDir(), "BENCH_mqo.json")
	if err := writeMQORecord(path, record); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var back mqoRecord
	if err := dec.Decode(&back); err != nil {
		t.Fatalf("record does not round-trip strictly: %v", err)
	}
	if back.SavedPerEnactment != record.SavedPerEnactment || back.Ratio != record.Ratio {
		t.Error("record fields lost in the round-trip")
	}
}
