package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"qurator/internal/ontology"
	"qurator/internal/provenance"
	"qurator/internal/rdf"
	"qurator/internal/sparql"
	"qurator/internal/telemetry"
)

// The SPARQL experiment measures the metadata-plane query engine against
// the seed implementation it replaced: a deep graph copy per query (the
// old provenance.Log.Query behaviour) feeding the materializing
// evaluator, versus an O(1) copy-on-write snapshot feeding the streaming
// cardinality-planned evaluator. An equivalence tripwire asserts both
// engines return identical sorted rows on every query.

// sparqlQueryRun is the measured outcome for one query.
type sparqlQueryRun struct {
	Name  string `json:"name"`
	Query string `json:"query"`
	Rows  int    `json:"rows"`
	// CloneMS is the seed path: deep copy + materializing evaluator.
	CloneMS float64 `json:"clone_ms"`
	// SnapshotMS isolates the snapshot win: O(1) snapshot + materializing
	// evaluator.
	SnapshotMS float64 `json:"snapshot_ms"`
	// StreamMS is the production path: O(1) snapshot + streaming evaluator.
	StreamMS float64 `json:"stream_ms"`
	// Speedup is CloneMS / StreamMS.
	Speedup float64 `json:"speedup"`
}

// sparqlRecord is the BENCH_sparql.json schema.
type sparqlRecord struct {
	Experiment string           `json:"experiment"`
	Runs       int              `json:"runs"`
	Triples    int              `json:"triples"`
	Repeats    int              `json:"repeats"`
	Queries    []sparqlQueryRun `json:"queries"`
	// MinSpeedup/MeanSpeedup summarize clone-vs-stream across queries.
	MinSpeedup  float64                    `json:"min_speedup"`
	MeanSpeedup float64                    `json:"mean_speedup"`
	Equivalent  bool                       `json:"equivalent"`
	Metrics     []telemetry.MetricSnapshot `json:"metrics"`
}

// buildProvenanceWorld records n synthetic runs in the paper's
// exploration-loop shape: a handful of views re-run with evolving
// conditions, each run carrying output and condition nodes.
func buildProvenanceWorld(n int) *provenance.Log {
	l := provenance.NewLog()
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		l.Record(provenance.Record{
			View:      fmt.Sprintf("view-%d", i%7),
			Started:   base.Add(time.Duration(i) * time.Second),
			Duration:  time.Duration(1+i%250) * time.Millisecond,
			InputSize: 50 + i%400,
			Outputs: map[string]int{
				"accept": i % 40,
				"review": i % 11,
			},
			Conditions: map[string]string{
				"accept": fmt.Sprintf("ScoreClass in q:high; threshold=%d", i%5),
			},
		})
	}
	return l
}

func sparqlQueries() []sparqlQueryRun {
	q := func(local string) string { return ontology.QuratorNS + local }
	return []sparqlQueryRun{
		{
			Name: "runs-of-view",
			Query: fmt.Sprintf(
				`SELECT ?run ?n WHERE { ?run <%s> "view-3" . ?run <%s> ?n . }`,
				q("usedView"), q("inputSize")),
		},
		{
			Name: "outputs-join",
			Query: fmt.Sprintf(
				`SELECT ?run ?name ?size WHERE { ?run <%s> "view-1" . ?run <%s> ?o . ?o <%s> ?name . ?o <%s> ?size . FILTER (?size > 30) }`,
				q("usedView"), q("producedOutput"), q("outputName"), q("outputSize")),
		},
		{
			Name: "slow-runs",
			Query: fmt.Sprintf(
				`SELECT DISTINCT ?run WHERE { ?run <%s> ?d . FILTER (?d > 240) } ORDER BY ?run LIMIT 50`,
				q("durationMillis")),
		},
		{
			Name: "condition-provenance",
			Query: fmt.Sprintf(
				`SELECT ?run ?expr WHERE { ?run <%s> ?c . ?c <%s> "accept" . ?c <%s> ?expr . ?run <%s> "view-2" . }`,
				q("usedCondition"), q("conditionAction"), q("conditionExpression"), q("usedView")),
		},
	}
}

// deepCopy replicates the seed's Clone: a fresh graph populated triple by
// triple from a sorted dump — the per-query cost the snapshot removed.
func deepCopy(g *rdf.Graph) *rdf.Graph {
	out := rdf.NewGraph()
	for _, t := range g.Triples() {
		out.MustAdd(t)
	}
	return out
}

func timeBest(repeats int, f func() error) (float64, error) {
	best := -1.0
	for r := 0; r < repeats; r++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		if best < 0 || ms < best {
			best = ms
		}
	}
	return best, nil
}

func rowKeys(res *sparql.Result) []string {
	out := make([]string, len(res.Bindings))
	var key []byte
	for i, b := range res.Bindings {
		key = key[:0]
		for _, v := range res.Vars {
			key = b[v].AppendKey(key)
			key = append(key, 0)
		}
		out[i] = string(key)
	}
	sort.Strings(out)
	return out
}

func measureSPARQL(runs, repeats int) (*sparqlRecord, error) {
	if repeats < 1 {
		repeats = 1
	}
	log := buildProvenanceWorld(runs)
	graph := log.Graph()
	record := &sparqlRecord{
		Experiment: "sparql",
		Runs:       runs,
		Triples:    graph.Len(),
		Repeats:    repeats,
		Equivalent: true,
	}

	for _, qr := range sparqlQueries() {
		var cloneRes, streamRes *sparql.Result
		var err error

		qr.CloneMS, err = timeBest(repeats, func() error {
			g := deepCopy(graph)
			cloneRes, err = sparql.ExecBaseline(g.Snapshot(), qr.Query)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("query %s (clone): %w", qr.Name, err)
		}
		qr.SnapshotMS, err = timeBest(repeats, func() error {
			_, err := sparql.ExecBaseline(log.Snapshot(), qr.Query)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("query %s (snapshot): %w", qr.Name, err)
		}
		qr.StreamMS, err = timeBest(repeats, func() error {
			streamRes, err = log.Query(qr.Query)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("query %s (stream): %w", qr.Name, err)
		}

		// Equivalence tripwire: the engines must agree row for row.
		cloneKeys, streamKeys := rowKeys(cloneRes), rowKeys(streamRes)
		if len(cloneKeys) != len(streamKeys) {
			record.Equivalent = false
		} else {
			for i := range cloneKeys {
				if cloneKeys[i] != streamKeys[i] {
					record.Equivalent = false
					break
				}
			}
		}

		qr.Rows = len(streamRes.Bindings)
		if qr.StreamMS > 0 {
			qr.Speedup = qr.CloneMS / qr.StreamMS
		}
		record.Queries = append(record.Queries, qr)
	}

	for i, qr := range record.Queries {
		if i == 0 || qr.Speedup < record.MinSpeedup {
			record.MinSpeedup = qr.Speedup
		}
		record.MeanSpeedup += qr.Speedup
	}
	record.MeanSpeedup /= float64(len(record.Queries))
	record.Metrics = telemetry.Default.Snapshot()
	return record, nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func runSPARQL(runs, repeats int, benchOut string) {
	record, err := measureSPARQL(runs, repeats)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Metadata-plane query engine — clone+materialize vs snapshot+stream (%d runs, %d triples)\n",
		record.Runs, record.Triples)
	fmt.Printf("%-22s %6s %12s %12s %12s %9s\n",
		"query", "rows", "clone ms", "snapshot ms", "stream ms", "speedup")
	for _, qr := range record.Queries {
		fmt.Printf("%-22s %6d %12.2f %12.2f %12.2f %8.1fx\n",
			qr.Name, qr.Rows, qr.CloneMS, qr.SnapshotMS, qr.StreamMS, qr.Speedup)
	}
	if !record.Equivalent {
		fatal(fmt.Errorf("streaming evaluator diverged from the materializing baseline"))
	}
	fmt.Println("all queries identical across evaluators")
	if benchOut == "" {
		fmt.Println()
		return
	}
	if err := writeJSON(benchOut, record); err != nil {
		fatal(err)
	}
	fmt.Printf("benchmark record written to %s\n\n", benchOut)
}
