package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestSPARQLRecordSchema runs the query experiment over a small provenance
// log and checks the BENCH_sparql.json record is well-formed: the
// equivalence tripwire holds, every query ran, timings are sane, and the
// on-disk record round-trips strictly. It asserts only a conservative
// speedup floor (>1x minimum over a tiny log) — the ≥10x headline claim is
// BenchmarkSPARQLProvenance's job, over a 100k-run log.
func TestSPARQLRecordSchema(t *testing.T) {
	record, err := measureSPARQL(1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !record.Equivalent {
		t.Fatal("streaming evaluator diverged from the materializing baseline")
	}
	if record.Experiment != "sparql" {
		t.Fatalf("experiment = %q", record.Experiment)
	}
	if record.Runs != 1000 || record.Triples < record.Runs {
		t.Fatalf("runs = %d, triples = %d", record.Runs, record.Triples)
	}
	if len(record.Queries) != len(sparqlQueries()) {
		t.Fatalf("%d queries, want %d", len(record.Queries), len(sparqlQueries()))
	}
	for _, qr := range record.Queries {
		if qr.Rows == 0 {
			t.Errorf("query %s returned no rows — the world no longer exercises it", qr.Name)
		}
		if qr.CloneMS < 0 || qr.SnapshotMS < 0 || qr.StreamMS < 0 {
			t.Errorf("query %s: negative wall-clock", qr.Name)
		}
		if qr.Speedup <= 0 {
			t.Errorf("query %s: speedup = %f", qr.Name, qr.Speedup)
		}
	}
	// Conservative floor: even on a small log, skipping the deep copy and
	// planning by cardinality must not be slower than clone+materialize.
	if record.MinSpeedup < 1 {
		t.Errorf("min speedup = %.2f, want >= 1", record.MinSpeedup)
	}

	path := filepath.Join(t.TempDir(), "BENCH_sparql.json")
	if err := writeJSON(path, record); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var back sparqlRecord
	if err := dec.Decode(&back); err != nil {
		t.Fatalf("strict decode of %s: %v", path, err)
	}
	if back.Experiment != record.Experiment || len(back.Queries) != len(record.Queries) {
		t.Fatal("record did not round-trip")
	}
}
