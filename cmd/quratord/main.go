// Command quratord hosts the Qurator service fabric over HTTP: the
// standard QA library (and, with -with-demo-annotator, a synthetic
// annotator) are deployed at /services/<name>, with the service list at
// /services for scavengers (paper §5's deployment surface).
//
// Usage:
//
//	quratord [-addr :9090] [-with-demo-annotator]
//	         [-data-dir dir] [-fsync always|interval|never]
//	         [-retries n] [-proc-timeout d] [-degraded mode]
//	         [-shard-size n] [-max-inflight n] [-cache] [-cache-entries n] [-cache-ttl d]
//	         [-cluster] [-node-id id] [-advertise url] [-cluster-seeds urls]
//	         [-heartbeat-interval d] [-drain-timeout d] [-scavenge-peers]
//	         [-admit-rate r] [-admit-burst n] [-admit-max-inflight n]
//	         [-drift] [-drift-alpha a] [-drift-threshold h] [-drift-min-windows n]
//	         [-drift-tighten-action name] [-drift-tighten-condition expr]
//	         [-flake-rate p] [-flake-latency d] [-debug-addr :6060]
//	quratord -check-exposition FILE
//
// -drift runs an EWMA+CUSUM quality-drift detector over every stream
// enacted at /stream/enact (accept rate plus each evidence/tag mean, per
// window); detector state is served at GET /stream/drift and alerts land
// on /metrics as qurator_stream_drift_alerts_total. With
// -drift-tighten-action/-condition the first alert of a stream applies
// the given filter condition to the view — thresholds auto-tighten when
// a source degrades.
//
// -cluster turns the process into one member of an enactment fleet (see
// internal/cluster): it joins through -cluster-seeds, heartbeats its
// peers, and owns a consistent-hash partition of /stream/enact work —
// requests for partitions it does not own are proxied to their owner,
// and every emitted window is journaled and replicated so a failover
// replays decisions instead of re-emitting them. GET /cluster reports
// membership and ring state (?key=K resolves an owner); GET /readyz is
// the fleet-facing readiness probe (non-200 while joining or draining,
// with per-check detail), while GET /healthz stays pure process
// liveness. On SIGTERM a fleet member deregisters from the ring first,
// then drains for at most -drain-timeout. The -admit-* flags put
// per-tenant token-bucket admission control in front of /stream/enact:
// shed requests answer 429 with a Retry-After hint.
//
// -data-dir turns on the durable metadata plane: the "default" annotation
// repository and the provenance log are backed by WAL-plus-segment stores
// under the directory, so a restarted quratord serves the same metadata
// it shut down with. -fsync picks the WAL durability policy. On SIGINT or
// SIGTERM the server drains in-flight requests, then flushes and closes
// the stores before exiting.
//
// GET /cube serves the daQ-style quality cube: rollups of every numeric
// annotation by metric, source and time window (?metric=, ?source=,
// ?from=, ?to= select a slice).
// The -retries/-proc-timeout/-degraded flags make the views enacted at
// /stream/enact fault-tolerant (see qurator.Resilience); the -flake-*
// flags do the opposite — they turn this instance into a deliberately
// unreliable host for demonstrating a resilient client. The
// -shard-size/-cache flags configure the enactment data plane
// (qurator.DataPlane): shard fan-out and cache hit/miss counters land on
// /metrics.
//
// Observability: GET /metrics serves the process registry in Prometheus
// text format (processor durations, breaker states, retry counters,
// stream window metrics, injected-fault counters); GET /debug/enactments
// serves recent enactment span trees as JSON (?fleet=1 assembles them
// across ring members, see internal/cluster); GET /debug/traces/<id>
// serves this node's raw span fragment of one distributed trace; in
// cluster mode GET /cluster/metrics federates every member's /metrics
// into one exposition. -check-exposition lints a captured exposition
// file and exits. -debug-addr starts a second listener with
// net/http/pprof profiles.
//
// A second machine (or a second process) can then do:
//
//	f := qurator.New()
//	f.Scavenge(ctx, "http://host:9090")
//
// POST /stream/enact?view=paper enacts a quality view continuously over
// an NDJSON item stream (see internal/stream): decisions flush back
// window by window while the request body is still being produced.
// ?views=a,b,c enacts several views as ONE merged plan — shared
// annotator/enrichment/QA prefixes run once per window (multi-query
// optimization) and each view's decisions arrive as its own
// view-attributed window records.
//
// POST /query runs SPARQL over the metadata plane: run provenance
// ({"target":"provenance"}) or an annotation repository
// ({"target":"annotations:default"}). Queries evaluate against O(1)
// copy-on-write snapshots, so even slow exploratory queries never stall
// enactments writing provenance or annotations; latency and snapshot age
// land on /metrics.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"qurator"
	"qurator/internal/annotstore"
	"qurator/internal/cluster"
	"qurator/internal/compiler"
	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/rdf"
	"qurator/internal/stream"
	"qurator/internal/telemetry"
)

// Chaos self-description: when this instance is deliberately flaky, the
// injected faults show up on /metrics, so a resilience demo's server and
// client tell one story.
var (
	chaosFaults = telemetry.Default.Counter(
		"qurator_chaos_injected_faults_total",
		"Requests answered 503 by the -flake-rate fault injector.")
	chaosRate = telemetry.Default.Gauge(
		"qurator_chaos_flake_rate",
		"Configured -flake-rate probability (0 = fault injection off).")
)

func main() {
	addr := flag.String("addr", ":9090", "listen address")
	withDemo := flag.Bool("with-demo-annotator", false,
		"also deploy a demo annotator producing synthetic HR/MC evidence")
	retries := flag.Int("retries", 0,
		"re-invoke a failed quality service up to N times during enactment (0 = off)")
	retryBackoff := flag.Duration("retry-backoff", 50*time.Millisecond,
		"initial sleep between service retries")
	procTimeout := flag.Duration("proc-timeout", 0,
		"per-service invocation deadline inside enacted views (0 = none)")
	degraded := flag.String("degraded", "off",
		"on service failure during /stream/enact: off (abort the window), fail-closed, fail-open, or quarantine")
	shardSize := flag.Int("shard-size", 0,
		"split item-scoped service invocations inside enacted views into shards of at most N items (0 = serial)")
	maxInflight := flag.Int("max-inflight", 0,
		"concurrent shard invocations per processor (0 = GOMAXPROCS)")
	useCache := flag.Bool("cache", false,
		"memoise pure service responses content-addressed across enactments and stream windows")
	cacheEntries := flag.Int("cache-entries", 0, "response-cache LRU bound (0 = 4096)")
	cacheTTL := flag.Duration("cache-ttl", 0, "response-cache entry expiry (0 = none)")
	flakeRate := flag.Float64("flake-rate", 0,
		"probability in [0,1] that a request is answered 503 — simulate an unreliable host for resilience demos")
	flakeLatency := flag.Duration("flake-latency", 0,
		"extra delay added to flaked requests before the 503")
	flakeSeed := flag.Int64("flake-seed", 1, "seed for the flake RNG")
	debugAddr := flag.String("debug-addr", "",
		"serve net/http/pprof profiles on this second address (empty = off)")
	dataDir := flag.String("data-dir", "",
		"persist annotations and provenance in this directory (empty = memory only)")
	fsync := flag.String("fsync", "interval",
		"WAL durability with -data-dir: always, interval or never")
	clusterMode := flag.Bool("cluster", false,
		"join an enactment fleet: partition /stream/enact by view across members")
	nodeID := flag.String("node-id", "",
		"stable fleet identity (default: the advertise address)")
	advertise := flag.String("advertise", "",
		"base URL peers reach this node at (default: http://<addr>)")
	clusterSeeds := flag.String("cluster-seeds", "",
		"comma-separated peer base URLs to join the fleet through")
	heartbeatInterval := flag.Duration("heartbeat-interval", 500*time.Millisecond,
		"fleet heartbeat probe period")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second,
		"bound on draining in-flight requests at shutdown")
	scavengePeers := flag.Bool("scavenge-peers", false,
		"import the deployed services of every fleet peer as it is learned")
	admitRate := flag.Float64("admit-rate", 0,
		"admission control: stream enactments per second per tenant (0 = off)")
	admitBurst := flag.Int("admit-burst", 0,
		"admission control: token-bucket burst size (0 = rate rounded up)")
	admitMaxInflight := flag.Int("admit-max-inflight", 0,
		"admission control: concurrent enactment streams before shedding (0 = unbounded)")
	checkExposition := flag.String("check-exposition", "",
		"validate FILE as Prometheus text exposition and exit — lint a captured /metrics or /cluster/metrics snapshot")
	driftOn := flag.Bool("drift", false,
		"run an EWMA+CUSUM quality-drift detector over every enacted stream; state at GET /stream/drift")
	driftAlpha := flag.Float64("drift-alpha", 0,
		"drift baseline EWMA smoothing factor (0 = default 0.1)")
	driftH := flag.Float64("drift-threshold", 0,
		"drift CUSUM alarm threshold in baseline standard deviations (0 = default 5)")
	driftMinWindows := flag.Int("drift-min-windows", 0,
		"windows of baseline warm-up before drift alerts (0 = default 8)")
	driftTightenAction := flag.String("drift-tighten-action", "",
		"filter action to tighten on the first drift alert of a stream (empty = observe only)")
	driftTightenCond := flag.String("drift-tighten-condition", "",
		"replacement filter condition -drift-tighten-action applies")
	flag.Parse()

	// Lint mode: no server, just the exposition validator over a file.
	if *checkExposition != "" {
		in, err := os.Open(*checkExposition)
		if err != nil {
			log.Fatalf("quratord: %v", err)
		}
		defer in.Close()
		if err := telemetry.ValidateExposition(in); err != nil {
			log.Fatalf("quratord: %s: %v", *checkExposition, err)
		}
		fmt.Printf("quratord: %s is a valid exposition\n", *checkExposition)
		return
	}

	mode, err := qurator.ParseDegradedMode(*degraded)
	if err != nil {
		log.Fatalf("quratord: %v", err)
	}

	f := qurator.New()
	if *dataDir != "" {
		start := time.Now()
		if err := f.EnablePersistence(qurator.Persistence{Dir: *dataDir, Fsync: *fsync}); err != nil {
			log.Fatalf("quratord: %v", err)
		}
		log.Printf("quratord: durable metadata plane in %s (fsync=%s, recovered in %s)",
			*dataDir, *fsync, time.Since(start).Round(time.Millisecond))
	}
	if err := f.DeployStandardLibrary(); err != nil {
		log.Fatalf("quratord: %v", err)
	}
	if *retries > 0 || *procTimeout > 0 || mode != qurator.DegradeOff {
		f.SetResilience(qurator.Resilience{
			RetryAttempts:    *retries + 1,
			RetryBackoff:     *retryBackoff,
			ProcessorTimeout: *procTimeout,
			Degraded:         mode,
		})
	}
	if *shardSize > 0 || *useCache {
		f.SetDataPlane(qurator.DataPlane{
			ShardSize:    *shardSize,
			MaxInflight:  *maxInflight,
			Cache:        *useCache,
			CacheEntries: *cacheEntries,
			CacheTTL:     *cacheTTL,
		})
	}
	if *withDemo {
		if err := f.DeployAnnotator("ImprintOutputAnnotator", demoAnnotator{}); err != nil {
			log.Fatalf("quratord: %v", err)
		}
	}

	// Fleet membership: the node owns a partition of /stream/enact and
	// journals every emitted window for failover replay. The journal is
	// provenance-backed, so with -data-dir it survives restarts.
	var node *cluster.Node
	if *clusterMode {
		self := cluster.NodeInfo{ID: *nodeID, Addr: *advertise}
		if self.Addr == "" {
			host := *addr
			if strings.HasPrefix(host, ":") {
				host = "127.0.0.1" + host
			}
			self.Addr = "http://" + host
		}
		if self.ID == "" {
			self.ID = strings.TrimPrefix(strings.TrimPrefix(self.Addr, "http://"), "https://")
		}
		cfg := cluster.Config{
			Self:              self,
			Seeds:             splitCSV(*clusterSeeds),
			HeartbeatInterval: *heartbeatInterval,
			Logf:              log.Printf,
		}
		if *scavengePeers {
			cfg.Discover = func(ctx context.Context, baseURL string) error {
				n, err := f.Scavenge(ctx, baseURL)
				if err != nil {
					return err
				}
				log.Printf("quratord: scavenged %d services from fleet peer %s", n, baseURL)
				return nil
			}
		}
		var err error
		if node, err = cluster.NewNode(cfg); err != nil {
			log.Fatalf("quratord: %v", err)
		}
		node.AttachJournal(cluster.NewJournal(f.Provenance))
	}

	// Streaming enactment, innermost-out: drift detection, journaled
	// windows, then fleet routing, then admission control at the front
	// door.
	var streamOpts []stream.HandlerOption
	var driftReg *stream.DriftRegistry
	if *driftOn {
		driftReg = stream.NewDriftRegistry()
		streamOpts = append(streamOpts, stream.WithDrift(stream.DriftConfig{
			Alpha:      *driftAlpha,
			H:          *driftH,
			MinWindows: *driftMinWindows,
			Registry:   driftReg,
		}))
		if *driftTightenAction != "" {
			streamOpts = append(streamOpts,
				stream.WithAutoTighten(*driftTightenAction, *driftTightenCond))
			log.Printf("quratord: drift alerts tighten action %q to %q",
				*driftTightenAction, *driftTightenCond)
		}
	}
	var streamH http.Handler
	if node != nil {
		streamH = node.EnactHandler(stream.Handler(streamCompiler(f),
			append(streamOpts, stream.WithJournal(node.Journal()))...))
	} else {
		streamH = stream.Handler(streamCompiler(f), streamOpts...)
	}
	if *admitRate > 0 || *admitMaxInflight > 0 {
		adm := cluster.NewAdmission(cluster.AdmissionConfig{
			RatePerTenant: *admitRate,
			Burst:         float64(*admitBurst),
			MaxInflight:   *admitMaxInflight,
		})
		streamH = adm.Wrap("/stream/enact", streamH)
		log.Printf("quratord: admission control on /stream/enact (rate=%g/s burst=%d max-inflight=%d)",
			*admitRate, *admitBurst, *admitMaxInflight)
	}

	// Readiness is distinct from liveness: /healthz answers "is the
	// process up" (keep restarting me if not), /readyz answers "should
	// the fleet route work here" (joining and draining nodes say no).
	ready := cluster.NewReadiness()
	if *dataDir != "" {
		ready.Add("metadata", f.FlushMetadata)
	}
	if node != nil {
		ready.Add("cluster", node.ReadinessCheck)
	}
	ready.Add("breakers", func() error {
		var open []string
		for ep, st := range f.BreakerStates() {
			if st == "open" {
				open = append(open, ep)
			}
		}
		if len(open) > 0 {
			sort.Strings(open)
			return fmt.Errorf("open breakers: %s", strings.Join(open, ", "))
		}
		return nil
	})

	mux := http.NewServeMux()
	mux.Handle("/services", f.Handler())
	mux.Handle("/services/", f.Handler())
	mux.Handle("/repositories", f.Handler())
	mux.Handle("/repositories/", f.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("GET /readyz", ready.Handler())
	// The name this process signs its span fragments with: the fleet ID
	// in cluster mode, the node-id flag or listen address otherwise.
	nodeName := *nodeID
	if node != nil {
		nodeName = node.Self().ID
	} else if nodeName == "" {
		nodeName = strings.TrimPrefix(*addr, ":")
	}
	if node != nil {
		mux.Handle("/cluster", node.Handler())
		mux.Handle("/cluster/", node.Handler())
		// Exact pattern beats the /cluster/ subtree: the federated view
		// of every member's /metrics, summed where summing is sound.
		mux.Handle("GET /cluster/metrics", node.MetricsHandler(telemetry.Default))
	}
	mux.Handle("/stream/enact", streamH)
	if driftReg != nil {
		mux.Handle("GET /stream/drift", driftReg.Handler())
	}
	mux.Handle("POST /query", f.QueryHandler())
	mux.Handle("GET /cube", f.CubeHandler())
	mux.Handle("GET /metrics", telemetry.Default.Handler())
	mux.Handle("GET /debug/enactments", cluster.FleetDebugHandler(node, telemetry.DefaultRecorder, nodeName))
	mux.Handle("GET /debug/traces/", telemetry.FragmentsHandler(telemetry.DefaultRecorder, nodeName))

	var handler http.Handler = mux
	chaosRate.Set(*flakeRate)
	if *flakeRate > 0 {
		handler = flaky(handler, *flakeRate, *flakeLatency, *flakeSeed)
		log.Printf("quratord: flaking %.0f%% of requests (latency %s)", *flakeRate*100, *flakeLatency)
	}

	if *debugAddr != "" {
		go func() {
			dm := http.NewServeMux()
			dm.HandleFunc("/debug/pprof/", pprof.Index)
			dm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			dm.HandleFunc("/debug/pprof/profile", pprof.Profile)
			dm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			dm.HandleFunc("/debug/pprof/trace", pprof.Trace)
			log.Printf("quratord: serving pprof on %s", *debugAddr)
			log.Fatal(http.ListenAndServe(*debugAddr, dm))
		}()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("quratord: serving Qurator services on %s", *addr)

	// Graceful shutdown: on SIGINT/SIGTERM a fleet member first leaves
	// the ring (peers reroute new streams at once), then the server stops
	// accepting connections and drains in-flight enactments for at most
	// -drain-timeout, then the durable stores flush and close — a clean
	// restart recovers from segments, not a WAL replay of everything
	// since boot.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	if node != nil {
		// Start after the listener is up: joining invites peers to probe
		// this node back immediately.
		if err := node.Start(ctx); err != nil {
			log.Fatalf("quratord: %v", err)
		}
		log.Printf("quratord: fleet node %s advertising %s (seeds: %s)",
			node.Self().ID, node.Self().Addr, *clusterSeeds)
	}
	select {
	case err := <-errCh:
		log.Fatalf("quratord: %v", err)
	case <-ctx.Done():
	}
	stop()
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if node != nil {
		log.Printf("quratord: leaving the fleet ring")
		node.Leave(drainCtx)
	}
	log.Printf("quratord: shutting down, draining in-flight requests")
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("quratord: drain: %v", err)
	}
	if err := f.CloseMetadata(); err != nil {
		log.Printf("quratord: closing metadata stores: %v", err)
	} else if *dataDir != "" {
		log.Printf("quratord: metadata stores flushed and closed")
	}
}

// splitCSV parses a comma-separated flag into its non-empty elements.
func splitCSV(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// flaky answers a seeded fraction of requests with 503 Service
// Unavailable (a retryable status for resilient clients), optionally
// after a delay — the server side of a fault-tolerance demo. /healthz
// and the observability endpoints are spared so liveness checks and the
// chaos counters themselves stay honest.
func flaky(h http.Handler, rate float64, latency time.Duration, seed int64) http.Handler {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	spared := map[string]bool{
		"/healthz": true, "/readyz": true,
		"/metrics": true, "/cluster/metrics": true,
		"/debug/enactments": true,
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		flake := rng.Float64() < rate
		mu.Unlock()
		if flake && !spared[r.URL.Path] && !strings.HasPrefix(r.URL.Path, "/debug/traces") {
			chaosFaults.Inc()
			time.Sleep(latency)
			http.Error(w, "quratord: injected flake", http.StatusServiceUnavailable)
			return
		}
		h.ServeHTTP(w, r)
	})
}

// streamCompiler resolves ?view= names for /stream/enact: the built-in
// §5.1 view by its aliases, otherwise the framework's shared-view
// library. Unbound annotator classes are stubbed so evidence can arrive
// inline with the streamed items.
func streamCompiler(f *qurator.Framework) stream.CompileFunc {
	return func(view string) (*compiler.Compiled, error) {
		switch view {
		case "paper", "protein-id-quality":
			return f.CompileViewForStream([]byte(qurator.PaperViewXML))
		}
		entry, ok := f.Library.Get(view)
		if !ok {
			return nil, fmt.Errorf("unknown view (try \"paper\" or a library view name)")
		}
		return f.CompileViewForStream([]byte(entry.ViewXML))
	}
}

// demoAnnotator fabricates evidence deterministically from the item URI
// so remote demos work without a proteomics pipeline: the evidence value
// is derived from a hash of the accession.
type demoAnnotator struct{}

func (demoAnnotator) Class() rdf.Term { return ontology.ImprintOutputAnnotation }

func (demoAnnotator) Provides() []rdf.Term {
	return []rdf.Term{ontology.HitRatio, ontology.Coverage, ontology.Masses, ontology.PeptidesCount}
}

func (demoAnnotator) Annotate(items []evidence.Item, repo annotstore.Store) error {
	for _, it := range items {
		h := fnv32(it.Value())
		hr := float64(h%100) / 100
		mc := float64((h/100)%100) / 100
		for _, a := range []annotstore.Annotation{
			{Item: it, Type: ontology.HitRatio, Value: evidence.Float(hr)},
			{Item: it, Type: ontology.Coverage, Value: evidence.Float(mc)},
			{Item: it, Type: ontology.Masses, Value: evidence.Int(int64(h % 40))},
			{Item: it, Type: ontology.PeptidesCount, Value: evidence.Int(int64(h % 12))},
		} {
			a.Source = ontology.ImprintOutputAnnotation
			if err := repo.Put(a); err != nil {
				return err
			}
		}
	}
	return nil
}

func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
