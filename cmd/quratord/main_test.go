package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"qurator/internal/cluster"
)

// buildQuratord compiles the daemon once per test binary and returns the
// executable path.
func buildQuratord(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "quratord")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// freePort reserves an ephemeral TCP port and releases it for the daemon.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startDaemon launches quratord and waits for /healthz to come up.
func startDaemon(t *testing.T, bin, addr string, extra ...string) *exec.Cmd {
	t.Helper()
	args := append([]string{"-addr", addr}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		res, err := http.Get(base + "/healthz")
		if err == nil {
			res.Body.Close()
			if res.StatusCode == http.StatusOK {
				return cmd
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	cmd.Process.Kill()
	cmd.Wait()
	t.Fatalf("quratord on %s never became healthy", addr)
	return nil
}

// stopDaemon sends SIGTERM and waits for the graceful-shutdown path —
// the flush that makes the restart test meaningful.
func stopDaemon(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("quratord exit after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatal("quratord did not exit within 15s of SIGTERM")
	}
}

// clusterStatus decodes the slice of GET /cluster this test cares about.
type clusterStatus struct {
	State       string   `json:"state"`
	RingMembers []string `json:"ringMembers"`
	Owner       *struct {
		Node string `json:"node"`
		Addr string `json:"addr"`
	} `json:"owner"`
}

func getClusterStatus(t *testing.T, base, key string) clusterStatus {
	t.Helper()
	u := base + "/cluster"
	if key != "" {
		u += "?key=" + url.QueryEscape(key)
	}
	res, err := http.Get(u)
	if err != nil {
		t.Fatalf("GET /cluster: %v", err)
	}
	defer res.Body.Close()
	var st clusterStatus
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		t.Fatalf("decode /cluster: %v", err)
	}
	return st
}

// TestClusterSIGKILLExactlyOnce is the acceptance scenario end to end,
// against real processes: a 3-node fleet enacts a paced stream, the node
// owning the partition is SIGKILLed mid-window, and the fleet-aware
// client still delivers every item's decision exactly once, in order.
func TestClusterSIGKILLExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a 3-daemon fleet; skipped in -short")
	}
	bin := buildQuratord(t)

	type daemon struct {
		id   string
		base string
		cmd  *exec.Cmd
	}
	var fleet []*daemon
	var seed string
	for i := 1; i <= 3; i++ {
		addr := freePort(t)
		d := &daemon{id: fmt.Sprintf("n%d", i), base: "http://" + addr}
		args := []string{
			"-cluster", "-node-id", d.id, "-advertise", d.base,
			"-heartbeat-interval", "100ms", "-drain-timeout", "5s",
			"-with-demo-annotator",
			"-data-dir", t.TempDir(), "-fsync", "never",
		}
		if seed == "" {
			seed = d.base
		} else {
			args = append(args, "-cluster-seeds", seed)
		}
		d.cmd = startDaemon(t, bin, addr, args...)
		fleet = append(fleet, d)
	}
	alive := map[string]bool{"n1": true, "n2": true, "n3": true}
	defer func() {
		for _, d := range fleet {
			if alive[d.id] {
				stopDaemon(t, d.cmd)
			}
		}
	}()

	// Fleet convergence: every node sees a 3-member ring.
	waitDeadline := time.Now().Add(10 * time.Second)
	for _, d := range fleet {
		for {
			if len(getClusterStatus(t, d.base, "").RingMembers) == 3 {
				break
			}
			if time.Now().After(waitDeadline) {
				t.Fatalf("%s never saw a 3-member ring", d.id)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}

	// Resolve who owns the "paper" partition; the ring answer is the
	// same on every node.
	st := getClusterStatus(t, fleet[0].base, "paper")
	if st.Owner == nil {
		t.Fatal("no owner resolved for key paper")
	}
	var owner *daemon
	var nodes []string
	for _, d := range fleet {
		nodes = append(nodes, d.base)
		if d.id == st.Owner.Node {
			owner = d
		}
	}
	if owner == nil {
		t.Fatalf("owner %s is not in the fleet", st.Owner.Node)
	}
	t.Logf("owner of paper partition: %s (%s)", owner.id, owner.base)

	const items = 80
	lines := make([]string, items)
	for i := range lines {
		lines[i] = fmt.Sprintf(`{"item":"urn:lsid:test.org:hit:%03d"}`, i)
	}
	c := &cluster.StreamClient{
		Nodes:        nodes,
		View:         "paper",
		Window:       8,
		Pace:         25 * time.Millisecond,
		MaxAttempts:  30,
		RetryBackoff: 100 * time.Millisecond,
		Logf:         t.Logf,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	type outcome struct {
		res *cluster.EnactResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := c.Enact(ctx, lines)
		done <- outcome{res, err}
	}()

	// SIGKILL the owner while the stream is mid-flight: 80 items at 25ms
	// pace keep the stream open for ~2s, so 600ms in it is mid-window.
	time.Sleep(600 * time.Millisecond)
	if err := owner.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	owner.cmd.Wait()
	alive[owner.id] = false
	t.Logf("SIGKILLed %s mid-stream", owner.id)

	out := <-done
	if out.err != nil {
		t.Fatalf("fleet client: %v", out.err)
	}
	if got := len(out.res.Decisions); got != items {
		t.Fatalf("delivered %d decisions for %d items", got, items)
	}
	seen := make(map[string]int, items)
	for _, d := range out.res.Decisions {
		seen[d.Item]++
	}
	for i := 0; i < items; i++ {
		item := fmt.Sprintf("urn:lsid:test.org:hit:%03d", i)
		if seen[item] != 1 {
			t.Fatalf("item %d decided %d times; want exactly once", i, seen[item])
		}
	}
	for i, d := range out.res.Decisions {
		if want := fmt.Sprintf("urn:lsid:test.org:hit:%03d", i); d.Item != want {
			t.Fatalf("decision %d is for %s; want %s (in-order delivery)", i, d.Item, want)
		}
	}
	if out.res.Resumes == 0 {
		t.Fatal("stream completed without a single resume despite the SIGKILL")
	}
	t.Logf("delivered %d decisions over %d windows (%d replayed, %d resumes, %d shed)",
		len(out.res.Decisions), out.res.Windows, out.res.Replayed, out.res.Resumes, out.res.Shed)

	// The survivors shed the corpse: both converge on a 2-member ring.
	shrinkDeadline := time.Now().Add(10 * time.Second)
	for _, d := range fleet {
		if !alive[d.id] {
			continue
		}
		for {
			if len(getClusterStatus(t, d.base, "").RingMembers) == 2 {
				break
			}
			if time.Now().After(shrinkDeadline) {
				t.Fatalf("%s never shed the killed node from its ring", d.id)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
}

// TestAdmissionFlagSheds429 boots one daemon with a 1-token admission
// bucket and checks the second enactment is shed with an honest
// Retry-After.
func TestAdmissionFlagSheds429(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon; skipped in -short")
	}
	bin := buildQuratord(t)
	addr := freePort(t)
	cmd := startDaemon(t, bin, addr,
		"-with-demo-annotator", "-admit-rate", "0.01", "-admit-burst", "1")
	defer stopDaemon(t, cmd)
	base := "http://" + addr

	enact := func() *http.Response {
		res, err := http.Post(base+"/stream/enact?view=paper&window=1",
			"application/x-ndjson", strings.NewReader(`{"item":"urn:lsid:test.org:hit:0"}`+"\n"))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := enact()
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("first enactment: %d, want 200", res.StatusCode)
	}
	res = enact()
	defer res.Body.Close()
	body, _ := io.ReadAll(res.Body)
	if res.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second enactment: %d %s, want 429", res.StatusCode, body)
	}
	ra, err := strconv.Atoi(res.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("429 Retry-After = %q, want an integer ≥ 1", res.Header.Get("Retry-After"))
	}

	// /readyz stays 200 under shedding — overload is not unreadiness.
	rz, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rzBody, _ := io.ReadAll(rz.Body)
	rz.Body.Close()
	if rz.StatusCode != http.StatusOK {
		t.Fatalf("/readyz under shedding: %d %s", rz.StatusCode, rzBody)
	}
}

// TestRestartPreservesMetadata drives the full durability story over
// HTTP: annotate a running daemon, SIGTERM it, restart on the same
// -data-dir, and read the annotation back from the recovered store.
func TestRestartPreservesMetadata(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon; skipped in -short")
	}
	bin := buildQuratord(t)
	dataDir := t.TempDir()

	const (
		item   = "urn:lsid:test:e2e:1"
		typ    = "http://qurator.org/iq#HitRatio"
		source = "http://qurator.org/iq#ImprintAnnotation"
	)

	addr := freePort(t)
	cmd := startDaemon(t, bin, addr, "-data-dir", dataDir, "-fsync", "never")
	base := "http://" + addr

	body := fmt.Sprintf(
		`<Annotations><annotation item=%q type=%q kind="float" value="0.77" source=%q/></Annotations>`,
		item, typ, source)
	res, err := http.Post(base+"/repositories/default/annotations", "application/xml",
		strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("POST annotations: %d %s", res.StatusCode, out)
	}

	// The cube observed the numeric annotation while the daemon ran.
	res, err = http.Get(base + "/cube?metric=" + url.QueryEscape(typ))
	if err != nil {
		t.Fatal(err)
	}
	cubeOut, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK || !strings.Contains(string(cubeOut), `"count": 1`) {
		t.Fatalf("GET /cube: %d %s", res.StatusCode, cubeOut)
	}

	stopDaemon(t, cmd)

	// Restart on the same directory: the annotation must come back.
	addr2 := freePort(t)
	cmd2 := startDaemon(t, bin, addr2, "-data-dir", dataDir, "-fsync", "never")
	defer stopDaemon(t, cmd2)

	getURL := "http://" + addr2 + "/repositories/default/annotation?item=" +
		url.QueryEscape(item) + "&type=" + url.QueryEscape(typ)
	res, err = http.Get(getURL)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET annotation after restart: %d %s", res.StatusCode, got)
	}
	s := string(got)
	if !strings.Contains(s, "0.77") || !strings.Contains(s, item) {
		t.Fatalf("recovered annotation = %s, want value 0.77 for %s", s, item)
	}

	// The full graph (computedBy source triple included) also came back.
	res, err = http.Get("http://" + addr2 + "/repositories/default/graph")
	if err != nil {
		t.Fatal(err)
	}
	graph, _ := io.ReadAll(res.Body)
	res.Body.Close()
	// The dump uses prefixed Turtle, so match the local name.
	if res.StatusCode != http.StatusOK ||
		!strings.Contains(string(graph), "computedBy") ||
		!strings.Contains(string(graph), "ImprintAnnotation") {
		t.Fatalf("recovered graph lost the annotation source: %d\n%s", res.StatusCode, graph)
	}
}
