package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildQuratord compiles the daemon once per test binary and returns the
// executable path.
func buildQuratord(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "quratord")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// freePort reserves an ephemeral TCP port and releases it for the daemon.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startDaemon launches quratord and waits for /healthz to come up.
func startDaemon(t *testing.T, bin, addr string, extra ...string) *exec.Cmd {
	t.Helper()
	args := append([]string{"-addr", addr}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		res, err := http.Get(base + "/healthz")
		if err == nil {
			res.Body.Close()
			if res.StatusCode == http.StatusOK {
				return cmd
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	cmd.Process.Kill()
	cmd.Wait()
	t.Fatalf("quratord on %s never became healthy", addr)
	return nil
}

// stopDaemon sends SIGTERM and waits for the graceful-shutdown path —
// the flush that makes the restart test meaningful.
func stopDaemon(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("quratord exit after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatal("quratord did not exit within 15s of SIGTERM")
	}
}

// TestRestartPreservesMetadata drives the full durability story over
// HTTP: annotate a running daemon, SIGTERM it, restart on the same
// -data-dir, and read the annotation back from the recovered store.
func TestRestartPreservesMetadata(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon; skipped in -short")
	}
	bin := buildQuratord(t)
	dataDir := t.TempDir()

	const (
		item   = "urn:lsid:test:e2e:1"
		typ    = "http://qurator.org/iq#HitRatio"
		source = "http://qurator.org/iq#ImprintAnnotation"
	)

	addr := freePort(t)
	cmd := startDaemon(t, bin, addr, "-data-dir", dataDir, "-fsync", "never")
	base := "http://" + addr

	body := fmt.Sprintf(
		`<Annotations><annotation item=%q type=%q kind="float" value="0.77" source=%q/></Annotations>`,
		item, typ, source)
	res, err := http.Post(base+"/repositories/default/annotations", "application/xml",
		strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("POST annotations: %d %s", res.StatusCode, out)
	}

	// The cube observed the numeric annotation while the daemon ran.
	res, err = http.Get(base + "/cube?metric=" + url.QueryEscape(typ))
	if err != nil {
		t.Fatal(err)
	}
	cubeOut, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK || !strings.Contains(string(cubeOut), `"count": 1`) {
		t.Fatalf("GET /cube: %d %s", res.StatusCode, cubeOut)
	}

	stopDaemon(t, cmd)

	// Restart on the same directory: the annotation must come back.
	addr2 := freePort(t)
	cmd2 := startDaemon(t, bin, addr2, "-data-dir", dataDir, "-fsync", "never")
	defer stopDaemon(t, cmd2)

	getURL := "http://" + addr2 + "/repositories/default/annotation?item=" +
		url.QueryEscape(item) + "&type=" + url.QueryEscape(typ)
	res, err = http.Get(getURL)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET annotation after restart: %d %s", res.StatusCode, got)
	}
	s := string(got)
	if !strings.Contains(s, "0.77") || !strings.Contains(s, item) {
		t.Fatalf("recovered annotation = %s, want value 0.77 for %s", s, item)
	}

	// The full graph (computedBy source triple included) also came back.
	res, err = http.Get("http://" + addr2 + "/repositories/default/graph")
	if err != nil {
		t.Fatal(err)
	}
	graph, _ := io.ReadAll(res.Body)
	res.Body.Close()
	// The dump uses prefixed Turtle, so match the local name.
	if res.StatusCode != http.StatusOK ||
		!strings.Contains(string(graph), "computedBy") ||
		!strings.Contains(string(graph), "ImprintAnnotation") {
		t.Fatalf("recovered graph lost the annotation source: %d\n%s", res.StatusCode, graph)
	}
}
