// Command qvc is the quality-view compiler: it parses and validates a
// quality-view XML document against the IQ model, compiles it into a
// quality workflow, and prints the resulting structure (processors, data
// links, control links) — the §6.1 compilation made inspectable.
//
// Usage:
//
//	qvc [-paper] [view.xml]
//
// With -paper (or no file), the paper's §5.1 view is compiled. Operator
// classes are bound against the standard QA library plus a stub annotator
// for any annotation classes the view declares.
package main

import (
	"flag"
	"fmt"
	"os"

	"qurator"
	"qurator/internal/annotstore"
	"qurator/internal/evidence"
	"qurator/internal/ops"
	"qurator/internal/qvlang"
	"qurator/internal/rdf"
)

func main() {
	paper := flag.Bool("paper", false, "compile the paper's §5.1 view")
	dot := flag.Bool("dot", false, "emit the compiled workflow as Graphviz DOT")
	flag.Parse()

	var src []byte
	switch {
	case *paper || flag.NArg() == 0:
		src = []byte(qurator.PaperViewXML)
		fmt.Fprintln(os.Stderr, "qvc: compiling the built-in §5.1 paper view")
	default:
		var err error
		src, err = os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
	}

	f := qurator.New()
	if err := f.DeployStandardLibrary(); err != nil {
		fatal(err)
	}

	// Bind any annotator classes the view declares to no-op stubs so the
	// compilation (a static operation) can proceed without the run-time
	// data source.
	view, err := qvlang.Parse(src)
	if err != nil {
		fatal(err)
	}
	resolved, err := qvlang.Resolve(view, f.Model)
	if err != nil {
		fatal(err)
	}
	for _, ann := range resolved.Annotators {
		types := make([]rdf.Term, len(ann.Provides))
		for i, p := range ann.Provides {
			types[i] = p.Evidence
		}
		stub := ops.AnnotatorFunc{
			ClassIRI: ann.Type,
			Types:    types,
			Fn: func([]evidence.Item, annotstore.Store) error {
				return nil
			},
		}
		if err := f.DeployAnnotator("stub:"+ann.Decl.ServiceName, stub); err != nil {
			fatal(err)
		}
	}

	compiled, err := f.CompileView(src)
	if err != nil {
		fatal(err)
	}
	if *dot {
		fmt.Print(compiled.Workflow.ToDOT())
		return
	}
	fmt.Print(compiled.Describe())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qvc:", err)
	os.Exit(1)
}
