// Command qvrun executes a quality view against a data set supplied as a
// CSV file of inline evidence, or — with -stream — continuously against
// an unbounded NDJSON item stream on stdin. It is the fastest way to
// observe a view's effect on real data without writing an annotator.
//
// Usage:
//
//	qvrun -view view.xml -data items.csv [-condition "expr"]
//	qvrun -stream [-view view.xml] [-window 64] [-slide n] [-parallelism p] [-skip-failed] < items.ndjson
//
// With -data-dir the "default" annotation repository and the provenance
// log persist in that directory across invocations: long-lived evidence
// written by one run is readable by the next, and run provenance
// accumulates. -fsync picks the WAL durability policy (always, interval,
// never).
//
// Resilience flags (both modes): -retries N re-invokes a failed quality
// service, -proc-timeout bounds each invocation, and -degraded selects
// what happens when a service stays down — "fail-closed" rejects the
// affected items, "fail-open" accepts them, "quarantine" parks them on a
// dedicated output, and "off" (default) aborts the run.
//
// With -scavenge URL the view is enacted through a remote quratord's
// services and annotation repositories instead of the local standard
// library — every annotation write, enrichment read and QA invocation
// then crosses HTTP through the resilient client.
//
// The CSV's first column is the item URI; the header names the remaining
// columns with evidence q-names (e.g. q:HitRatio). Values parse as
// numbers when possible, strings otherwise. -condition overrides the
// first filter action's condition before running — the paper's
// explore-by-editing loop from the command line.
//
// In -stream mode each stdin line is one item ({"item": uri, "evidence":
// {...}}); decisions are written as NDJSON the moment their window
// resolves, so qvrun composes with pipes over live feeds.
//
// -telemetry dumps the enactment's span tree(s) and a metrics snapshot
// as one JSON document on stderr after the run, keeping stdout clean for
// the data results. The root trace ID in the dump matches the q:traceID
// recorded in the run's RDF provenance.
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"time"

	"qurator"
	"qurator/internal/annotstore"
	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/qvlang"
	"qurator/internal/stream"
	"qurator/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is main with its environment made explicit, so exit codes and
// usage behaviour are testable.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("qvrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	viewPath := fs.String("view", "", "quality-view XML file (default: the paper's §5.1 view)")
	dataPath := fs.String("data", "", "CSV data set: item URI column + evidence columns (required unless -stream)")
	override := fs.String("condition", "", "override the first filter action's condition")
	streaming := fs.Bool("stream", false, "read NDJSON items from stdin and enact continuously")
	window := fs.Int("window", 64, "streaming: count-based window size")
	slide := fs.Int("slide", 0, "streaming: items per window fire (default: window, i.e. tumbling)")
	parallelism := fs.Int("parallelism", 1, "streaming: concurrent window enactments")
	skipFailed := fs.Bool("skip-failed", false, "streaming: report failed windows and keep going instead of stopping")
	scavenge := fs.String("scavenge", "", "base URL of a remote Qurator host: enact through its services and repositories instead of the local standard library")
	retries := fs.Int("retries", 0, "re-invoke a failed quality service up to N times (0 = off)")
	retryBackoff := fs.Duration("retry-backoff", 50*time.Millisecond, "initial sleep between service retries")
	procTimeout := fs.Duration("proc-timeout", 0, "per-service invocation deadline (0 = none)")
	degraded := fs.String("degraded", "off", "on service failure: off (abort), fail-closed, fail-open, or quarantine")
	shardSize := fs.Int("shard-size", 0, "split item-scoped service invocations into shards of at most N items, invoked concurrently (0 = serial)")
	maxInflight := fs.Int("max-inflight", 0, "concurrent shard invocations per processor (0 = GOMAXPROCS)")
	useCache := fs.Bool("cache", false, "memoise pure service responses (QAs, filter/split) content-addressed across runs and windows")
	cacheEntries := fs.Int("cache-entries", 0, "response-cache LRU bound (0 = 4096)")
	cacheTTL := fs.Duration("cache-ttl", 0, "response-cache entry expiry (0 = none)")
	withTelemetry := fs.Bool("telemetry", false, "dump span tree + metrics snapshot as JSON on stderr after the run")
	dataDir := fs.String("data-dir", "", "persist annotations and provenance in this directory across runs (empty = memory only)")
	fsyncPolicy := fs.String("fsync", "interval", "WAL durability with -data-dir: always, interval or never")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	usage := func(err error) int {
		fmt.Fprintln(stderr, "qvrun:", err)
		fs.Usage()
		return 2
	}

	if !*streaming && *dataPath == "" {
		return usage(fmt.Errorf("-data is required (or use -stream)"))
	}
	src := []byte(qurator.PaperViewXML)
	if *viewPath != "" {
		var err error
		src, err = os.ReadFile(*viewPath)
		if err != nil {
			return usage(fmt.Errorf("view file: %w", err))
		}
	}

	mode, err := qurator.ParseDegradedMode(*degraded)
	if err != nil {
		return usage(err)
	}

	f := qurator.New()
	if *dataDir != "" {
		// Durable metadata plane: evidence computed by one run (e.g.
		// curation credibility) is already in the repository for the
		// next, and every run's provenance accumulates queryably.
		if err := f.EnablePersistence(qurator.Persistence{Dir: *dataDir, Fsync: *fsyncPolicy}); err != nil {
			return fail(stderr, err)
		}
		defer func() {
			if err := f.CloseMetadata(); err != nil {
				fmt.Fprintln(stderr, "qvrun: closing metadata stores:", err)
			}
		}()
	}
	if *scavenge == "" {
		if err := f.DeployStandardLibrary(); err != nil {
			return fail(stderr, err)
		}
	}
	if *retries > 0 || *procTimeout > 0 || mode != qurator.DegradeOff {
		f.SetResilience(qurator.Resilience{
			RetryAttempts:    *retries + 1, // N retries = N+1 attempts
			RetryBackoff:     *retryBackoff,
			ProcessorTimeout: *procTimeout,
			Degraded:         mode,
		})
	}
	if *shardSize > 0 || *useCache {
		f.SetDataPlane(qurator.DataPlane{
			ShardSize:    *shardSize,
			MaxInflight:  *maxInflight,
			Cache:        *useCache,
			CacheEntries: *cacheEntries,
			CacheTTL:     *cacheTTL,
		})
	}
	if *scavenge != "" {
		// Resilience is installed above, so the scavenged proxies get the
		// retrying, breaker-guarded HTTP client.
		if _, err := f.Scavenge(context.Background(), *scavenge); err != nil {
			return fail(stderr, fmt.Errorf("scavenge %s: %w", *scavenge, err))
		}
		if _, err := f.ScavengeRepositories(context.Background(), *scavenge); err != nil {
			return fail(stderr, fmt.Errorf("scavenge repositories %s: %w", *scavenge, err))
		}
	}

	// A private recorder keeps the dump scoped to exactly this run's
	// traces (the metrics snapshot is process-wide by design).
	ctx := context.Background()
	var recorder *telemetry.Recorder
	if *withTelemetry {
		recorder = telemetry.NewRecorder(64)
		ctx = telemetry.WithRecorder(ctx, recorder)
	}

	if *streaming {
		code := runStream(ctx, f, src, stream.Config{
			Window:            *window,
			Slide:             *slide,
			Parallelism:       *parallelism,
			SkipFailedWindows: *skipFailed,
		}, *override, stdin, stdout, stderr)
		if recorder != nil {
			dumpTelemetry(stderr, recorder)
		}
		return code
	}

	items, err := loadCSV(f, *dataPath)
	if err != nil {
		if os.IsNotExist(err) {
			return usage(fmt.Errorf("data file: %w", err))
		}
		return fail(stderr, err)
	}

	// The CSV already materialises the evidence, so annotator classes in
	// the view resolve to no-ops.
	resolved, err := resolveView(f, src)
	if err != nil {
		return fail(stderr, err)
	}
	for _, ann := range resolved.Annotators {
		stubName := "csv-preloaded:" + ann.Decl.ServiceName
		if err := f.DeployAnnotator(stubName, noopAnnotator{class: ann.Type}); err != nil {
			return fail(stderr, err)
		}
	}

	compiled, err := f.CompileView(src)
	if err != nil {
		return fail(stderr, err)
	}
	if *override != "" {
		if len(resolved.Actions) == 0 || resolved.Actions[0].Filter == nil {
			return fail(stderr, fmt.Errorf("view has no filter action to override"))
		}
		if err := compiled.SetFilterCondition(resolved.Actions[0].Name, *override); err != nil {
			return fail(stderr, err)
		}
	}

	out, err := compiled.Run(ctx, items)
	if recorder != nil {
		dumpTelemetry(stderr, recorder)
	}
	if err != nil {
		return fail(stderr, err)
	}
	names := make([]string, 0, len(out))
	for name := range out {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := out[name]
		fmt.Fprintf(stdout, "output %s: %d of %d items\n", name, m.Len(), len(items))
		for _, it := range m.Items() {
			fmt.Fprintf(stdout, "  %s\n", it.Value())
		}
	}
	return 0
}

// dumpTelemetry writes the run's span trees plus a process metrics
// snapshot as one JSON document.
func dumpTelemetry(stderr io.Writer, rec *telemetry.Recorder) {
	enc := json.NewEncoder(stderr)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		Traces  []telemetry.TraceTree      `json:"traces"`
		Metrics []telemetry.MetricSnapshot `json:"metrics"`
	}{rec.Traces(0), telemetry.Default.Snapshot()})
}

// runStream enacts the view continuously over an NDJSON item stream:
// stdin lines in, decision lines out, window by window.
func runStream(ctx context.Context, f *qurator.Framework, viewXML []byte, cfg stream.Config, override string, stdin io.Reader, stdout, stderr io.Writer) int {
	compiled, err := f.CompileViewForStream(viewXML)
	if err != nil {
		return fail(stderr, err)
	}
	if override != "" {
		resolved, err := resolveView(f, viewXML)
		if err != nil {
			return fail(stderr, err)
		}
		if len(resolved.Actions) == 0 || resolved.Actions[0].Filter == nil {
			return fail(stderr, fmt.Errorf("view has no filter action to override"))
		}
		if err := compiled.SetFilterCondition(resolved.Actions[0].Name, override); err != nil {
			return fail(stderr, err)
		}
	}
	enactor, err := stream.New(compiled, cfg)
	if err != nil {
		return fail(stderr, err)
	}

	in := make(chan stream.Item, cfg.Parallelism)
	results := make(chan stream.WindowResult, cfg.Parallelism)
	readErr := make(chan error, 1)
	go func() { readErr <- stream.ReadItems(stdin, in) }()
	runErr := make(chan error, 1)
	go func() { runErr <- enactor.Run(ctx, in, results) }()

	writeError := stream.WriteResults(stdout, results, nil)
	code := 0
	if err := <-runErr; err != nil {
		code = fail(stderr, err)
	}
	go func() { // unblock the reader if the pipeline stopped early
		for range in {
		}
	}()
	if err := <-readErr; err != nil && code == 0 {
		code = fail(stderr, err)
	}
	if writeError != nil && code == 0 {
		code = fail(stderr, writeError)
	}
	return code
}

func resolveView(f *qurator.Framework, src []byte) (*qvlang.Resolved, error) {
	view, err := qvlang.Parse(src)
	if err != nil {
		return nil, err
	}
	return qvlang.Resolve(view, f.Model)
}

type noopAnnotator struct{ class evidence.Key }

func (a noopAnnotator) Class() evidence.Key      { return a.class }
func (a noopAnnotator) Provides() []evidence.Key { return nil }
func (a noopAnnotator) Annotate([]evidence.Item, annotstore.Store) error {
	return nil
}

// loadCSV reads the data set and preloads the cache repository with the
// inline evidence.
func loadCSV(f *qurator.Framework, path string) ([]qurator.Item, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	rows, err := csv.NewReader(file).ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("qvrun: CSV needs a header and at least one row")
	}
	header := rows[0]
	if len(header) < 2 {
		return nil, fmt.Errorf("qvrun: CSV needs an item column plus evidence columns")
	}
	cache, ok := f.Repository("cache")
	if !ok {
		return nil, fmt.Errorf("qvrun: framework has no cache repository")
	}
	var items []qurator.Item
	for lineNo, row := range rows[1:] {
		if len(row) != len(header) {
			return nil, fmt.Errorf("qvrun: row %d has %d fields, want %d", lineNo+2, len(row), len(header))
		}
		item := qurator.NewItem(row[0])
		items = append(items, item)
		for col := 1; col < len(row); col++ {
			if row[col] == "" {
				continue
			}
			var v evidence.Value
			if num, err := strconv.ParseFloat(row[col], 64); err == nil {
				v = evidence.Float(num)
			} else {
				v = evidence.String_(row[col])
			}
			a := qurator.Annotation{
				Item:  item,
				Type:  ontology.ExpandQName(header[col]),
				Value: v,
			}
			if err := cache.Put(a); err != nil {
				return nil, fmt.Errorf("qvrun: row %d column %q: %w", lineNo+2, header[col], err)
			}
		}
	}
	return items, nil
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "qvrun:", err)
	return 1
}
