// Command qvrun executes a quality view against a data set supplied as a
// CSV file of inline evidence. It is the fastest way to observe a view's
// effect on real data without writing an annotator.
//
// Usage:
//
//	qvrun -view view.xml -data items.csv [-condition "expr"]
//
// The CSV's first column is the item URI; the header names the remaining
// columns with evidence q-names (e.g. q:HitRatio). Values parse as
// numbers when possible, strings otherwise. -condition overrides the
// first filter action's condition before running — the paper's
// explore-by-editing loop from the command line.
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"

	"qurator"
	"qurator/internal/annotstore"
	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/qvlang"
)

func main() {
	viewPath := flag.String("view", "", "quality-view XML file (default: the paper's §5.1 view)")
	dataPath := flag.String("data", "", "CSV data set: item URI column + evidence columns (required)")
	override := flag.String("condition", "", "override the first filter action's condition")
	flag.Parse()

	if *dataPath == "" {
		fmt.Fprintln(os.Stderr, "qvrun: -data is required")
		flag.Usage()
		os.Exit(2)
	}
	src := []byte(qurator.PaperViewXML)
	if *viewPath != "" {
		var err error
		src, err = os.ReadFile(*viewPath)
		if err != nil {
			fatal(err)
		}
	}

	f := qurator.New()
	if err := f.DeployStandardLibrary(); err != nil {
		fatal(err)
	}
	items, err := loadCSV(f, *dataPath)
	if err != nil {
		fatal(err)
	}

	// The CSV already materialises the evidence, so annotator classes in
	// the view resolve to no-ops.
	view, err := qvlang.Parse(src)
	if err != nil {
		fatal(err)
	}
	resolved, err := qvlang.Resolve(view, f.Model)
	if err != nil {
		fatal(err)
	}
	for _, ann := range resolved.Annotators {
		stubName := "csv-preloaded:" + ann.Decl.ServiceName
		if err := f.DeployAnnotator(stubName, noopAnnotator{class: ann.Type}); err != nil {
			fatal(err)
		}
	}

	compiled, err := f.CompileView(src)
	if err != nil {
		fatal(err)
	}
	if *override != "" {
		if len(resolved.Actions) == 0 || resolved.Actions[0].Filter == nil {
			fatal(fmt.Errorf("view has no filter action to override"))
		}
		if err := compiled.SetFilterCondition(resolved.Actions[0].Name, *override); err != nil {
			fatal(err)
		}
	}

	out, err := compiled.Run(context.Background(), items)
	if err != nil {
		fatal(err)
	}
	names := make([]string, 0, len(out))
	for name := range out {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := out[name]
		fmt.Printf("output %s: %d of %d items\n", name, m.Len(), len(items))
		for _, it := range m.Items() {
			fmt.Printf("  %s\n", it.Value())
		}
	}
}

type noopAnnotator struct{ class evidence.Key }

func (a noopAnnotator) Class() evidence.Key      { return a.class }
func (a noopAnnotator) Provides() []evidence.Key { return nil }
func (a noopAnnotator) Annotate([]evidence.Item, annotstore.Store) error {
	return nil
}

// loadCSV reads the data set and preloads the cache repository with the
// inline evidence.
func loadCSV(f *qurator.Framework, path string) ([]qurator.Item, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	rows, err := csv.NewReader(file).ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("qvrun: CSV needs a header and at least one row")
	}
	header := rows[0]
	if len(header) < 2 {
		return nil, fmt.Errorf("qvrun: CSV needs an item column plus evidence columns")
	}
	cache, _ := f.Repository("cache")
	var items []qurator.Item
	for lineNo, row := range rows[1:] {
		if len(row) != len(header) {
			return nil, fmt.Errorf("qvrun: row %d has %d fields, want %d", lineNo+2, len(row), len(header))
		}
		item := qurator.NewItem(row[0])
		items = append(items, item)
		for col := 1; col < len(row); col++ {
			if row[col] == "" {
				continue
			}
			var v evidence.Value
			if num, err := strconv.ParseFloat(row[col], 64); err == nil {
				v = evidence.Float(num)
			} else {
				v = evidence.String_(row[col])
			}
			a := qurator.Annotation{
				Item:  item,
				Type:  ontology.ExpandQName(header[col]),
				Value: v,
			}
			if err := cache.Put(a); err != nil {
				return nil, fmt.Errorf("qvrun: row %d column %q: %w", lineNo+2, header[col], err)
			}
		}
	}
	return items, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qvrun:", err)
	os.Exit(1)
}
