package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qurator"
	"qurator/internal/evidence"
	"qurator/internal/ontology"
)

func writeCSV(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadCSV(t *testing.T) {
	f := qurator.New()
	path := writeCSV(t, "item,q:HitRatio,q:EvidenceCode\n"+
		"urn:lsid:x.org:ns:a,0.8,TAS\n"+
		"urn:lsid:x.org:ns:b,0.2,\n")
	items, err := loadCSV(f, path)
	if err != nil {
		t.Fatalf("loadCSV: %v", err)
	}
	if len(items) != 2 {
		t.Fatalf("items = %d", len(items))
	}
	cache, _ := f.Repository("cache")
	v, ok := cache.Get(items[0], ontology.HitRatio)
	if !ok || !v.Equal(evidence.Float(0.8)) {
		t.Errorf("HitRatio = %v, %v", v, ok)
	}
	// String evidence parses as string.
	v, ok = cache.Get(items[0], ontology.EvidenceCode)
	if !ok || v.AsString() != "TAS" {
		t.Errorf("EvidenceCode = %v, %v", v, ok)
	}
	// Empty cell stored nothing.
	if _, ok := cache.Get(items[1], ontology.EvidenceCode); ok {
		t.Error("empty cell should not annotate")
	}
}

func TestLoadCSVErrors(t *testing.T) {
	f := qurator.New()
	cases := []string{
		"",                         // no header
		"item,q:HitRatio\n",        // no rows
		"item\nurn:x\n",            // no evidence columns
		"item,q:HitRatio\nurn:x\n", // ragged row
	}
	for i, content := range cases {
		path := writeCSV(t, content)
		if _, err := loadCSV(f, path); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if _, err := loadCSV(f, filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Error("missing file should fail")
	}
}

func runQvrun(t *testing.T, stdin string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func writeStrongWeakCSV(t *testing.T) string {
	t.Helper()
	return writeCSV(t, "item,q:HitRatio,q:Coverage,q:Masses,q:PeptidesCount\n"+
		"urn:lsid:test.org:hit:0,0.9,0.8,12,8\n"+
		"urn:lsid:test.org:hit:1,0.15,0.1,11,8\n"+
		"urn:lsid:test.org:hit:2,0.9,0.8,12,8\n"+
		"urn:lsid:test.org:hit:3,0.15,0.1,11,8\n")
}

// Missing inputs must produce a non-zero exit and a usage message, not a
// bare error or — worse — a zero exit.
func TestMissingDataFlagFailsWithUsage(t *testing.T) {
	code, _, stderr := runQvrun(t, "")
	if code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "-data is required") || !strings.Contains(stderr, "Usage") {
		t.Errorf("stderr lacks error + usage:\n%s", stderr)
	}
}

func TestMissingDataFileFailsWithUsage(t *testing.T) {
	code, _, stderr := runQvrun(t, "", "-data", filepath.Join(t.TempDir(), "no-such.csv"))
	if code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "data file") || !strings.Contains(stderr, "Usage") {
		t.Errorf("stderr lacks error + usage:\n%s", stderr)
	}
}

func TestMissingViewFileFailsWithUsage(t *testing.T) {
	code, _, stderr := runQvrun(t, "",
		"-view", filepath.Join(t.TempDir(), "no-such.xml"),
		"-data", writeStrongWeakCSV(t))
	if code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "view file") || !strings.Contains(stderr, "Usage") {
		t.Errorf("stderr lacks error + usage:\n%s", stderr)
	}
}

func TestBadFlagFailsNonZero(t *testing.T) {
	code, _, _ := runQvrun(t, "", "-no-such-flag")
	if code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
}

func TestBatchRunAcceptsStrongItems(t *testing.T) {
	code, stdout, stderr := runQvrun(t, "", "-data", writeStrongWeakCSV(t))
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "hit:0") || !strings.Contains(stdout, "hit:2") {
		t.Errorf("strong items missing from output:\n%s", stdout)
	}
	if !strings.Contains(stdout, "2 of 4 items") {
		t.Errorf("expected 2 of 4 accepted:\n%s", stdout)
	}
}

func TestConditionOverride(t *testing.T) {
	code, stdout, stderr := runQvrun(t, "",
		"-data", writeStrongWeakCSV(t), "-condition", "HR_MC > 0")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "4 of 4 items") {
		t.Errorf("loosened condition should accept everything:\n%s", stdout)
	}
}

// TestStreamMode drives the NDJSON stdin mode end to end: items in,
// window-by-window decisions out.
func TestStreamMode(t *testing.T) {
	var in strings.Builder
	for i := 0; i < 8; i++ {
		hr, mc := "0.9", "0.8"
		if i%2 == 1 {
			hr, mc = "0.15", "0.1"
		}
		fmt.Fprintf(&in, `{"item":"urn:lsid:test.org:hit:%d","evidence":{"q:HitRatio":%s,"q:Coverage":%s,"q:Masses":12,"q:PeptidesCount":8}}%s`,
			i, hr, mc, "\n")
	}
	code, stdout, stderr := runQvrun(t, in.String(), "-stream", "-window", "4")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	// 8 decisions + 2 window summaries.
	if len(lines) != 10 {
		t.Fatalf("got %d NDJSON lines, want 10:\n%s", len(lines), stdout)
	}
	if !strings.Contains(stdout, `"window":1`) {
		t.Errorf("second window missing:\n%s", stdout)
	}
	// Strong items accepted (listed in an output), weak rejected.
	for _, line := range lines {
		if strings.Contains(line, "hit:0\"") && !strings.Contains(line, "accepted") {
			t.Errorf("strong item rejected: %s", line)
		}
		if strings.Contains(line, "hit:1\"") && strings.Contains(line, "accepted") {
			t.Errorf("weak item accepted: %s", line)
		}
	}
}

func TestStreamModeBadConfig(t *testing.T) {
	code, _, stderr := runQvrun(t, "", "-stream", "-window", "0")
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, "window") {
		t.Errorf("stderr = %s", stderr)
	}
}

func TestStreamModeMalformedInput(t *testing.T) {
	code, _, stderr := runQvrun(t, "not json\n", "-stream", "-window", "2")
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, "NDJSON") {
		t.Errorf("stderr = %s", stderr)
	}
}

// TestTelemetryDump checks -telemetry writes a JSON telemetry record to
// stderr: the run's span tree (rooted at the enactment span) plus a
// process metrics snapshot, without disturbing the stdout contract.
func TestTelemetryDump(t *testing.T) {
	code, stdout, stderr := runQvrun(t, "", "-data", writeStrongWeakCSV(t), "-telemetry")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "accepted") {
		t.Errorf("stdout lost the decision summary:\n%s", stdout)
	}
	var dump struct {
		Traces []struct {
			TraceID string `json:"traceID"`
			Root    *struct {
				Name     string            `json:"name"`
				Children []json.RawMessage `json:"children"`
			} `json:"root"`
		} `json:"traces"`
		Metrics []struct {
			Name string `json:"name"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(stderr), &dump); err != nil {
		t.Fatalf("stderr is not a JSON telemetry dump: %v\n%s", err, stderr)
	}
	if len(dump.Traces) != 1 {
		t.Fatalf("dump has %d traces, want 1", len(dump.Traces))
	}
	tr := dump.Traces[0]
	if tr.TraceID == "" || tr.Root == nil {
		t.Fatalf("trace incomplete: %+v", tr)
	}
	if !strings.HasPrefix(tr.Root.Name, "enact:") {
		t.Errorf("root span = %q, want enact:<view>", tr.Root.Name)
	}
	if len(tr.Root.Children) == 0 {
		t.Error("root span has no children")
	}
	found := false
	for _, m := range dump.Metrics {
		if m.Name == "qurator_processor_duration_seconds" {
			found = true
		}
	}
	if !found {
		t.Error("metrics snapshot lacks qurator_processor_duration_seconds")
	}
}

// TestTelemetryOffKeepsStderrQuiet: without -telemetry a clean batch run
// writes nothing to stderr.
func TestTelemetryOffKeepsStderrQuiet(t *testing.T) {
	code, _, stderr := runQvrun(t, "", "-data", writeStrongWeakCSV(t))
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if stderr != "" {
		t.Errorf("stderr not empty: %s", stderr)
	}
}

// TestDataDirPersistsAcrossRuns runs the same batch twice against one
// -data-dir and checks the second process sees the first's metadata: the
// provenance WAL/segment files exist and reopen cleanly.
func TestDataDirPersistsAcrossRuns(t *testing.T) {
	dir := t.TempDir()
	csvPath := writeStrongWeakCSV(t)
	for i := 0; i < 2; i++ {
		code, _, stderr := runQvrun(t, "", "-data", csvPath, "-data-dir", dir, "-fsync", "never")
		if code != 0 {
			t.Fatalf("run %d: exit = %d, stderr:\n%s", i, code, stderr)
		}
	}
	f := qurator.New()
	if err := f.EnablePersistence(qurator.Persistence{Dir: dir, Fsync: "never"}); err != nil {
		t.Fatal(err)
	}
	defer f.CloseMetadata()
	if n := f.Provenance.Len(); n != 2 {
		t.Fatalf("recovered %d provenance runs, want 2", n)
	}
}

func TestDataDirBadFsyncFails(t *testing.T) {
	code, _, stderr := runQvrun(t, "",
		"-data", writeStrongWeakCSV(t), "-data-dir", t.TempDir(), "-fsync", "sometimes")
	if code != 1 || !strings.Contains(stderr, "fsync") {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
}
