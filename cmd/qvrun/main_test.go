package main

import (
	"os"
	"path/filepath"
	"testing"

	"qurator"
	"qurator/internal/evidence"
	"qurator/internal/ontology"
)

func writeCSV(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadCSV(t *testing.T) {
	f := qurator.New()
	path := writeCSV(t, "item,q:HitRatio,q:EvidenceCode\n"+
		"urn:lsid:x.org:ns:a,0.8,TAS\n"+
		"urn:lsid:x.org:ns:b,0.2,\n")
	items, err := loadCSV(f, path)
	if err != nil {
		t.Fatalf("loadCSV: %v", err)
	}
	if len(items) != 2 {
		t.Fatalf("items = %d", len(items))
	}
	cache, _ := f.Repository("cache")
	v, ok := cache.Get(items[0], ontology.HitRatio)
	if !ok || !v.Equal(evidence.Float(0.8)) {
		t.Errorf("HitRatio = %v, %v", v, ok)
	}
	// String evidence parses as string.
	v, ok = cache.Get(items[0], ontology.EvidenceCode)
	if !ok || v.AsString() != "TAS" {
		t.Errorf("EvidenceCode = %v, %v", v, ok)
	}
	// Empty cell stored nothing.
	if _, ok := cache.Get(items[1], ontology.EvidenceCode); ok {
		t.Error("empty cell should not annotate")
	}
}

func TestLoadCSVErrors(t *testing.T) {
	f := qurator.New()
	cases := []string{
		"",                         // no header
		"item,q:HitRatio\n",        // no rows
		"item\nurn:x\n",            // no evidence columns
		"item,q:HitRatio\nurn:x\n", // ragged row
	}
	for i, content := range cases {
		path := writeCSV(t, content)
		if _, err := loadCSV(f, path); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if _, err := loadCSV(f, filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Error("missing file should fail")
	}
}
