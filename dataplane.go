package qurator

import (
	"time"

	"qurator/internal/qcache"
)

// DataPlane configures the enactment data plane: how service invocations
// shard over data items and whether pure-response invocations are served
// from a content-addressed cache. The zero value is today's behaviour —
// one whole-map envelope per invocation, no cache.
//
//   - Sharding: with ShardSize > 0, every invocation of an item-scoped
//     service (services.ScopeItem — QAs that declare ops.ItemWise,
//     enrichment, annotators, actions) is split into item shards of at
//     most ShardSize, fanned out over at most MaxInflight workers, and
//     merged in order. Collection-scoped services (e.g. the §5.1
//     statistical classifier) always receive the whole map, so sharded
//     enactment stays bit-identical to serial enactment.
//   - Caching: with Cache set, QA-assertion and filter/split-action
//     responses are memoised under digest(service, operation, config,
//     shard payload) with LRU+TTL bounds and singleflight coalescing.
//     Enrichment (reads mutable repositories) and annotators (write
//     them) are never cached.
type DataPlane struct {
	// ShardSize is the maximum items per shard (0 = no sharding).
	ShardSize int
	// MaxInflight bounds concurrent shard invocations per processor
	// (0 = GOMAXPROCS).
	MaxInflight int
	// Cache enables the content-addressed response cache.
	Cache bool
	// CacheEntries bounds the cache LRU (0 = 4096).
	CacheEntries int
	// CacheTTL expires cache entries (0 = no expiry).
	CacheTTL time.Duration
}

// CacheStats is a snapshot of the response cache's counters.
type CacheStats = qcache.Stats

// SetDataPlane installs a data-plane configuration: subsequent
// CompileView calls emit sharded (and, when enabled, cached) processors.
// Already-compiled views are unaffected. The cache is created here and
// shared by every view the framework compiles afterwards, so repeated
// runs and overlapping stream windows hit it across enactments.
func (f *Framework) SetDataPlane(d DataPlane) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dataplane = &d
	f.cache = nil
	if d.Cache {
		f.cache = qcache.New(qcache.Options{
			Name:       "dataplane",
			MaxEntries: d.CacheEntries,
			TTL:        d.CacheTTL,
		})
	}
}

// CacheStats snapshots the framework's response cache; ok is false when
// no cache is enabled.
func (f *Framework) CacheStats() (s CacheStats, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cache == nil {
		return CacheStats{}, false
	}
	return f.cache.Stats(), true
}
