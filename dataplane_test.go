package qurator

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"qurator/internal/stream"
)

func canonicalOutputs(t *testing.T, out map[string]*Map) map[string]string {
	t.Helper()
	enc := make(map[string]string, len(out))
	for name, m := range out {
		var b bytes.Buffer
		if err := m.WriteCanonical(&b); err != nil {
			t.Fatal(err)
		}
		enc[name] = b.String()
	}
	return enc
}

// TestDataPlaneEquivalence pins the framework-level guarantee: enacting
// the §5.1 view through SetDataPlane (any shard size, cache on or off)
// yields outputs bit-identical to the default serial enactment.
func TestDataPlaneEquivalence(t *testing.T) {
	serial, items := deployTestWorld(t)
	want, err := serial.ExecuteView(context.Background(), []byte(PaperViewXML), items)
	if err != nil {
		t.Fatal(err)
	}
	wantEnc := canonicalOutputs(t, want)

	for _, shardSize := range []int{1, 2, 3, 7, 100} {
		for _, cached := range []bool{false, true} {
			f, its := deployTestWorld(t)
			f.SetDataPlane(DataPlane{ShardSize: shardSize, MaxInflight: 3, Cache: cached})
			got, err := f.ExecuteView(context.Background(), []byte(PaperViewXML), its)
			if err != nil {
				t.Fatalf("shard=%d cache=%v: %v", shardSize, cached, err)
			}
			gotEnc := canonicalOutputs(t, got)
			if len(gotEnc) != len(wantEnc) {
				t.Fatalf("shard=%d cache=%v: %d outputs, want %d", shardSize, cached, len(gotEnc), len(wantEnc))
			}
			for name, enc := range wantEnc {
				if gotEnc[name] != enc {
					t.Errorf("shard=%d cache=%v: output %q diverged from serial enactment",
						shardSize, cached, name)
				}
			}
		}
	}
}

// TestFrameworkCacheStats re-runs one compiled view over the same data
// and checks the shared response cache reports the reuse.
func TestFrameworkCacheStats(t *testing.T) {
	f, items := deployTestWorld(t)
	if _, ok := f.CacheStats(); ok {
		t.Fatal("CacheStats should report no cache before SetDataPlane")
	}
	f.SetDataPlane(DataPlane{ShardSize: 2, Cache: true})
	compiled, err := f.CompileView([]byte(PaperViewXML))
	if err != nil {
		t.Fatal(err)
	}
	f.Repositories.ClearCaches()
	first, err := compiled.Run(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	s1, ok := f.CacheStats()
	if !ok {
		t.Fatal("CacheStats should report the data-plane cache")
	}
	if s1.Misses == 0 || s1.Entries == 0 {
		t.Fatalf("first run should populate the cache: %+v", s1)
	}
	second, err := compiled.Run(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := f.CacheStats()
	if s2.Hits == 0 {
		t.Fatalf("second identical run should hit: %+v", s2)
	}
	if s2.Misses != s1.Misses {
		t.Fatalf("second identical run missed: %d → %d misses", s1.Misses, s2.Misses)
	}
	firstEnc, secondEnc := canonicalOutputs(t, first), canonicalOutputs(t, second)
	for name, enc := range firstEnc {
		if secondEnc[name] != enc {
			t.Errorf("output %q changed between identical cached runs", name)
		}
	}
}

// streamDecisions enacts the paper view over the framework's test items
// as a sliding-window stream and returns item → joined outputs.
func streamDecisions(t *testing.T, f *Framework, items []Item) map[string]string {
	t.Helper()
	compiled, err := f.CompileViewForStream([]byte(PaperViewXML))
	if err != nil {
		t.Fatal(err)
	}
	e, err := stream.New(compiled, stream.Config{Window: 4, Slide: 2})
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan stream.Item)
	out := make(chan stream.WindowResult)
	go func() {
		defer close(in)
		for _, it := range items {
			in <- stream.Item{ID: it}
		}
	}()
	done := make(chan error, 1)
	go func() { done <- e.Run(context.Background(), in, out) }()
	decisions := make(map[string]string)
	for r := range out {
		for _, d := range r.Decisions {
			decisions[d.Item] = strings.Join(d.Outputs, ",")
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("stream run: %v", err)
	}
	return decisions
}

// TestStreamSlidingWindowsHitCache: with sliding windows, consecutive
// windows share items whose evidence has not changed — per-item shards of
// the pure stages answer from the cache instead of re-invoking the
// service, and decisions stay identical to the uncached stream.
func TestStreamSlidingWindowsHitCache(t *testing.T) {
	plain, items := deployTestWorld(t)
	want := streamDecisions(t, plain, items)

	f, its := deployTestWorld(t)
	f.SetDataPlane(DataPlane{ShardSize: 1, Cache: true})
	got := streamDecisions(t, f, its)

	if len(got) != len(want) {
		t.Fatalf("decided %d items, want %d", len(got), len(want))
	}
	for item, outputs := range want {
		if got[item] != outputs {
			t.Errorf("item %s decided %q, want %q", item, got[item], outputs)
		}
	}
	s, ok := f.CacheStats()
	if !ok {
		t.Fatal("data-plane cache missing")
	}
	if s.Hits == 0 {
		t.Fatalf("overlapping windows produced no cache hits: %+v", s)
	}
}

// TestDataPlaneDefaultsAreSerial: a zero DataPlane (or none at all) keeps
// today's behaviour — no sharding, no cache.
func TestDataPlaneDefaultsAreSerial(t *testing.T) {
	f, items := deployTestWorld(t)
	f.SetDataPlane(DataPlane{})
	out, err := f.ExecuteView(context.Background(), []byte(PaperViewXML), items)
	if err != nil {
		t.Fatal(err)
	}
	if out["filter_top_k_score:accepted"] == nil {
		t.Fatalf("outputs = %v", out)
	}
	if _, ok := f.CacheStats(); ok {
		t.Fatal("zero DataPlane must not create a cache")
	}
}
