package qurator

import (
	"context"
	"net/http/httptest"
	"testing"

	"qurator/internal/ontology"
	"qurator/internal/qvlang"
)

// TestFullyDistributedDeployment exercises the complete Figure 5
// deployment across two nodes: the server hosts the annotator, the QA
// library AND the annotation repositories; the client scavenges both,
// compiles the paper view locally, and runs it — every annotation write,
// enrichment read and QA invocation crosses HTTP.
func TestFullyDistributedDeployment(t *testing.T) {
	server, items := deployTestWorld(t)
	srv := httptest.NewServer(server.Handler())
	defer srv.Close()

	client := New()
	nServices, err := client.Scavenge(context.Background(), srv.URL)
	if err != nil {
		t.Fatalf("Scavenge: %v", err)
	}
	nRepos, err := client.ScavengeRepositories(context.Background(), srv.URL)
	if err != nil {
		t.Fatalf("ScavengeRepositories: %v", err)
	}
	if nServices < 5 || nRepos != 2 {
		t.Fatalf("scavenged %d services, %d repositories", nServices, nRepos)
	}

	// The client's "cache" is now the server's cache; the remote
	// annotator (which writes into the server's registry under the
	// repositoryRef it receives) and the local enrichment step therefore
	// agree on where the evidence lives.
	out, err := client.ExecuteView(context.Background(), []byte(PaperViewXML), items)
	if err != nil {
		t.Fatalf("distributed ExecuteView: %v", err)
	}
	accepted := out["filter_top_k_score:accepted"]
	if accepted == nil || accepted.Len() != 5 {
		t.Fatalf("distributed run kept %v items, want 5", accepted)
	}
	for _, it := range accepted.Items() {
		if accepted.Class(it, ontology.PIScoreClassification).IsZero() {
			t.Errorf("%v lacks classification after distributed run", it)
		}
		if !accepted.Has(it, qvlang.TagKeyFor("HR_MC")) {
			t.Errorf("%v lacks score after distributed run", it)
		}
	}

	// The evidence physically lives on the server.
	serverCache, _ := server.Repository("cache")
	if serverCache.Len() == 0 {
		t.Error("annotations did not land in the server-side cache")
	}
	// ClearCaches on the client clears the remote per-run cache too.
	client.Repositories.ClearCaches()
	if serverCache.Len() != 0 {
		t.Error("client ClearCaches did not clear the remote cache")
	}
}
