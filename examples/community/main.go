// Community: the paper's two future-work directions working together.
// A "curator" peer (ii) LEARNS a quality assertion from their labelled
// example data instead of hand-coding it, wraps it in a quality view, and
// (iv) PUBLISHES the view to the community library with quality-dimension
// metadata. A "scientist" peer then discovers the view by asking "what can
// I run with the evidence I have?" and applies it to their own data.
//
//	go run ./examples/community
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"qurator"
	"qurator/internal/condition"
	"qurator/internal/evidence"
	"qurator/internal/library"
	"qurator/internal/ontology"
	"qurator/internal/qa"
	"qurator/internal/rdf"
)

const learnedViewXML = `<QualityView name="learned-pi-quality">
  <QualityAssertion servicename="LearnedPIQuality"
                    servicetype="q:LearnedPIQuality"
                    tagsemtype="q:LearnedPIClassification"
                    tagname="Verdict" tagsyntype="q:class">
    <variables repositoryRef="default">
      <var variablename="hr" evidence="q:HitRatio"/>
      <var variablename="mc" evidence="q:Coverage"/>
    </variables>
  </QualityAssertion>
  <action name="keep">
    <filter><condition>Verdict in q:high</condition></filter>
  </action>
</QualityView>`

func main() {
	f := qurator.New()

	// ---- curator: learn a QA from labelled examples --------------------
	// The curator has past identifications with known outcomes: good ones
	// had high HR and decent coverage.
	rng := rand.New(rand.NewSource(7))
	train := &qa.TrainingSet{
		Amap:     qurator.NewMap(),
		Features: []rdf.Term{ontology.HitRatio, ontology.Coverage},
	}
	for i := 0; i < 150; i++ {
		it := qurator.NewItem(fmt.Sprintf("urn:lsid:curator.org:example:%d", i))
		hr, mc := rng.Float64(), rng.Float64()
		train.Amap.Set(it, ontology.HitRatio, evidence.Float(hr))
		train.Amap.Set(it, ontology.Coverage, evidence.Float(mc))
		train.Examples = append(train.Examples, qa.Example{
			Item: it,
			Good: hr > 0.45 && mc > 0.25, // the curator's (implicit) truth
		})
	}
	// Extend the IQ model with the learned QA's classes, then induce it.
	learnedClass := qurator.Q("LearnedPIQuality")
	learnedModel := qurator.Q("LearnedPIClassification")
	f.Model.MustDefineClass(learnedClass, ontology.QualityAssertion)
	f.Model.MustDefineClass(learnedModel, ontology.ClassificationModel)
	tree, err := qa.LearnStumps(train, learnedClass, learnedModel,
		ontology.ClassHigh, ontology.ClassLow,
		condition.Bindings{"hr": ontology.HitRatio, "mc": ontology.Coverage},
		qa.StumpParams{MaxDepth: 3, MinLeaf: 5})
	if err != nil {
		log.Fatal(err)
	}
	acc, _ := qa.EvaluateClassifier(tree, train, ontology.ClassHigh)
	fmt.Printf("curator: learned a stump-tree QA from %d examples (training accuracy %.2f)\n",
		len(train.Examples), acc)

	// Deploy it and publish the view that uses it.
	if err := f.DeployAssertion("LearnedPIQuality", tree); err != nil {
		log.Fatal(err)
	}
	entry, err := f.PublishView(library.Entry{
		Name:        "learned-pi-quality",
		Author:      "curator@aberdeen",
		Description: "protein-ID acceptability model induced from 150 labelled identifications",
		Dimensions:  []rdf.Term{ontology.Accuracy},
		ViewXML:     learnedViewXML,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("curator: published %q (requires evidence: %v)\n",
		entry.Name, localNames(entry.RequiredEvidence))

	// ---- scientist: discover and apply ---------------------------------
	// The scientist has HitRatio and Coverage evidence for a fresh run.
	available := []rdf.Term{ontology.HitRatio, ontology.Coverage}
	applicable := f.FindApplicableViews(available)
	fmt.Printf("\nscientist: with evidence %v, applicable shared views: %v\n",
		localNames(available), entryNames(applicable))

	// Pre-seeded evidence is long-lived, so it goes to the persistent
	// "default" store (ExecuteView clears per-run caches before running).
	store, _ := f.Repository("default")
	var items []qurator.Item
	for i := 0; i < 8; i++ {
		it := qurator.NewItem(fmt.Sprintf("urn:lsid:scientist.org:hit:%d", i))
		items = append(items, it)
		hr, mc := rng.Float64(), rng.Float64()
		store.Put(qurator.Annotation{Item: it, Type: ontology.HitRatio, Value: evidence.Float(hr)})
		store.Put(qurator.Annotation{Item: it, Type: ontology.Coverage, Value: evidence.Float(mc)})
	}
	out, err := f.ExecuteSharedView(context.Background(), "learned-pi-quality", items)
	if err != nil {
		log.Fatal(err)
	}
	kept := out["keep:accepted"]
	fmt.Printf("scientist: the curator's learned lens kept %d of %d identifications:\n",
		kept.Len(), len(items))
	for _, it := range kept.Items() {
		hr, _ := kept.Get(it, ontology.HitRatio).AsFloat()
		mc, _ := kept.Get(it, ontology.Coverage).AsFloat()
		fmt.Printf("  %-8s HR=%.2f MC=%.2f\n", ontology.LocalName(it), hr, mc)
	}
}

func localNames(ts []rdf.Term) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = ontology.LocalName(t)
	}
	return out
}

func entryNames(es []*library.Entry) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.Name
	}
	return out
}
