// Credibility: the paper's second evidence style (§3) — long-lived
// annotations over a stable database. Curated functional annotations
// carry GO evidence codes (the reliability indicator validated by the
// paper's reference [16]) and the impact factor of the citing journal;
// the CurationCredibility QA combines them into a credibility score and a
// three-way classification.
//
// Unlike the per-run Imprint evidence, this evidence is persistent: it is
// computed once into a durable repository and re-used across process
// executions — the other half of §4's caching discussion.
//
//	go run ./examples/credibility
package main

import (
	"context"
	"fmt"
	"log"

	"qurator"
	"qurator/internal/evidence"
	"qurator/internal/ontology"
)

// curated is a miniature Uniprot-like table of curated annotations.
var curated = []struct {
	accession string
	code      string
	impact    float64 // 0 = no citation
}{
	{"P00001", "TAS", 9.2},
	{"P00002", "IDA", 4.5},
	{"P00003", "IMP", 2.1},
	{"P00004", "ISS", 6.0},
	{"P00005", "NAS", 1.2},
	{"P00006", "IEA", 0},
	{"P00007", "IEA", 0},
	{"P00008", "TAS", 0},
	{"P00009", "ND", 0.8},
	{"P00010", "IDA", 11.4},
}

const credibilityView = `<QualityView name="annotation-credibility">
  <QualityAssertion servicename="CurationCredibility"
                    servicetype="q:CurationCredibility"
                    tagsemtype="q:CredibilityClassification"
                    tagname="CredClass" tagsyntype="q:class">
    <variables repositoryRef="uniprot-credibility">
      <var variablename="code" evidence="q:EvidenceCode"/>
      <var variablename="impact" evidence="q:JournalImpactFactor"/>
    </variables>
  </QualityAssertion>
  <action name="triage">
    <splitter>
      <branch name="trusted"><condition>CredClass in q:credible</condition></branch>
      <branch name="review"><condition>CredClass in q:plausible</condition></branch>
    </splitter>
  </action>
</QualityView>`

func main() {
	f := qurator.New()
	if err := f.DeployStandardLibrary(); err != nil {
		log.Fatal(err)
	}

	// A persistent repository: this evidence is "long-lived, relative to
	// the execution of a query" (§4), so it is annotated once, up front —
	// there is no annotator in the view at all, only enrichment.
	repo := f.AddRepository("uniprot-credibility", true)
	var items []qurator.Item
	for _, row := range curated {
		item := qurator.NewItem("urn:lsid:uniprot.org:uniprot:" + row.accession)
		items = append(items, item)
		if err := repo.Put(qurator.Annotation{
			Item: item, Type: ontology.EvidenceCode,
			Value:       evidence.String_(row.code),
			EntityClass: ontology.CuratedAnnotationEntry,
		}); err != nil {
			log.Fatal(err)
		}
		if row.impact > 0 {
			if err := repo.Put(qurator.Annotation{
				Item: item, Type: ontology.JournalImpactFactor,
				Value: evidence.Float(row.impact),
			}); err != nil {
				log.Fatal(err)
			}
		}
	}

	out, err := f.ExecuteView(context.Background(), []byte(credibilityView), items)
	if err != nil {
		log.Fatal(err)
	}
	for _, group := range []string{"trusted", "review", "default"} {
		m := out["triage:"+group]
		fmt.Printf("%s (%d annotations):\n", group, m.Len())
		for _, item := range m.Items() {
			code := m.Get(item, ontology.EvidenceCode).AsString()
			impact, hasImpact := m.Get(item, ontology.JournalImpactFactor).AsFloat()
			cls := m.Class(item, ontology.CredibilityClass)
			if hasImpact {
				fmt.Printf("  %-10s code=%-4s impact=%5.1f -> %s\n",
					ontology.LocalName(item), code, impact, ontology.LocalName(cls))
			} else {
				fmt.Printf("  %-10s code=%-4s impact=  n/a -> %s\n",
					ontology.LocalName(item), code, ontology.LocalName(cls))
			}
		}
	}
}
