// Distributed: the paper's Figure 5 deployment split across two nodes.
// A "server" node (think: the Aberdeen lab's Qurator host) deploys the
// annotator, the QA library and the annotation repositories over HTTP; a
// "client" node scavenges both — Taverna's scavenger step — and then
// compiles and runs the §5.1 quality view locally, with every annotation
// write, enrichment read and QA invocation crossing the wire.
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"qurator"
	"qurator/internal/annotstore"
	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/ops"
	"qurator/internal/rdf"
)

func main() {
	// ----- the server node -----
	server := qurator.New()
	if err := server.DeployStandardLibrary(); err != nil {
		log.Fatal(err)
	}
	// The server's annotator knows the lab's measurement quality.
	quality := map[string]float64{"a": 0.95, "b": 0.75, "c": 0.45, "d": 0.2, "e": 0.05}
	err := server.DeployAnnotator("ImprintOutputAnnotator", ops.AnnotatorFunc{
		ClassIRI: ontology.ImprintOutputAnnotation,
		Types:    []rdf.Term{ontology.HitRatio, ontology.Coverage, ontology.Masses, ontology.PeptidesCount},
		Fn: func(items []evidence.Item, repo annotstore.Store) error {
			for _, it := range items {
				s := quality[ontology.LocalName(it)]
				for _, a := range []qurator.Annotation{
					{Item: it, Type: ontology.HitRatio, Value: evidence.Float(s)},
					{Item: it, Type: ontology.Coverage, Value: evidence.Float(s * 0.8)},
					{Item: it, Type: ontology.Masses, Value: evidence.Int(15)},
					{Item: it, Type: ontology.PeptidesCount, Value: evidence.Int(6)},
				} {
					if err := repo.Put(a); err != nil {
						return err
					}
				}
			}
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(server.Handler())
	defer srv.Close()
	fmt.Printf("server node listening at %s\n", srv.URL)

	// ----- the client node -----
	client := qurator.New()
	nSvc, err := client.Scavenge(context.Background(), srv.URL)
	if err != nil {
		log.Fatal(err)
	}
	nRepo, err := client.ScavengeRepositories(context.Background(), srv.URL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client scavenged %d services and %d repositories\n", nSvc, nRepo)

	var items []qurator.Item
	for _, name := range []string{"a", "b", "c", "d", "e"} {
		items = append(items, qurator.NewItem("urn:lsid:example.org:spot:"+name))
	}
	out, err := client.ExecuteView(context.Background(), []byte(qurator.PaperViewXML), items)
	if err != nil {
		log.Fatal(err)
	}
	accepted := out["filter_top_k_score:accepted"]
	fmt.Printf("\nquality view (run on the client, computed on the server) kept %d of %d items:\n",
		accepted.Len(), len(items))
	for _, it := range accepted.Items() {
		score, _ := accepted.Get(it, qurator.Q("tag/HR_MC")).AsFloat()
		cls := accepted.Class(it, ontology.PIScoreClassification)
		fmt.Printf("  %-4s HR_MC=%5.1f class=%s\n",
			ontology.LocalName(it), score, ontology.LocalName(cls))
	}

	// The evidence physically lives on the server node.
	cache, _ := server.Repository("cache")
	fmt.Printf("\nserver-side cache holds %d annotations (written remotely)\n", cache.Len())
}
