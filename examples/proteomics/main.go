// Proteomics: the paper's running example end to end — the ISPIDER
// analysis workflow (Figure 1) with the §5.1 quality view compiled and
// embedded (Figure 6), culminating in the Figure 7 comparison of GO-term
// rankings with and without quality filtering.
//
//	go run ./examples/proteomics
package main

import (
	"context"
	"fmt"
	"log"

	"qurator/internal/ispider"
	"qurator/internal/ontology"
)

func main() {
	// Build the synthetic world: reference protein DB, 10 gel spots with
	// known true proteins + contaminants, noisy spectra, synthetic GOA.
	world, err := ispider.BuildWorld(ispider.DefaultWorldParams())
	if err != nil {
		log.Fatal(err)
	}

	// The original analysis: peak lists → Imprint → GOA, no quality
	// processing. False positives pollute the GO-term profile.
	baseline, err := ispider.RunBaseline(world)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: %d identifications from %d spots\n",
		len(baseline.Entries), world.Params.SpotCount)

	// Wire the quality framework around it: deploy services, compile the
	// §5.1 view, embed it between ProteinIdentification and GOARetrieval.
	pipeline, err := ispider.BuildPipeline(world, "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nembedded host workflow (Figure 6):")
	fmt.Printf("  processors: %v\n", pipeline.Host.Processors())

	// Keep only top-quality identifications (the §6.3 setting: score
	// above avg + stddev, i.e. class q:high).
	if err := pipeline.Compiled.SetFilterCondition("filter top k score", "ScoreClass in q:high"); err != nil {
		log.Fatal(err)
	}
	filtered, err := pipeline.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquality view kept %d of %d identifications\n",
		filtered.Accepted.Len(), len(filtered.Entries))
	truePositives := 0
	for _, item := range filtered.Accepted.Items() {
		spot, acc, _, err := ispider.ParseHitItem(item)
		if err != nil {
			log.Fatal(err)
		}
		if world.Truth(spot)[acc] {
			truePositives++
		}
	}
	fmt.Printf("of which %d are ground-truth proteins (precision %.2f)\n",
		truePositives, float64(truePositives)/float64(filtered.Accepted.Len()))

	// A peek at the survivors' evidence: the quality lens's annotations.
	fmt.Println("\nsample of surviving identifications:")
	for i, item := range filtered.Accepted.Items() {
		if i >= 5 {
			break
		}
		spot, acc, rank, _ := ispider.ParseHitItem(item)
		hr, _ := filtered.Accepted.Get(item, ontology.HitRatio).AsFloat()
		mc, _ := filtered.Accepted.Get(item, ontology.Coverage).AsFloat()
		fmt.Printf("  %s %s (rank %d): HR=%.2f MC=%.2f truth=%v\n",
			spot, acc, rank, hr, mc, world.Truth(spot)[acc])
	}

	// Figure 7: the GO-term significance ranking.
	fig7 := ispider.BuildFigure7(baseline, filtered)
	fmt.Println()
	fmt.Print(fig7.Format())
}
