// Quickstart: the smallest end-to-end tour of the Qurator public API.
//
// We have a collection of data items with two numeric quality-evidence
// values each. We (1) deploy an annotator that computes the evidence,
// (2) compile the paper's §5.1 quality view, (3) run it, and (4) edit the
// action condition and run again — the framework's core loop.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"qurator"
	"qurator/internal/annotstore"
	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/ops"
	"qurator/internal/rdf"
)

func main() {
	f := qurator.New()

	// 1. Deploy the standard QA library (the paper's score QAs and the
	// three-way classifier) and a toy annotator. The annotator plays the
	// role of Imprint's output capture: it attaches Hit Ratio and Mass
	// Coverage evidence to each item.
	if err := f.DeployStandardLibrary(); err != nil {
		log.Fatal(err)
	}
	quality := map[string]float64{
		"alpha": 0.92, "beta": 0.85, "gamma": 0.55, "delta": 0.30,
		"epsilon": 0.12, "zeta": 0.08,
	}
	err := f.DeployAnnotator("ImprintOutputAnnotator", ops.AnnotatorFunc{
		ClassIRI: ontology.ImprintOutputAnnotation,
		Types:    []rdf.Term{ontology.HitRatio, ontology.Coverage, ontology.Masses, ontology.PeptidesCount},
		Fn: func(items []evidence.Item, repo annotstore.Store) error {
			for _, item := range items {
				name := ontology.LocalName(item)
				s := quality[name]
				for _, a := range []qurator.Annotation{
					{Item: item, Type: ontology.HitRatio, Value: evidence.Float(s)},
					{Item: item, Type: ontology.Coverage, Value: evidence.Float(s * 0.9)},
					{Item: item, Type: ontology.Masses, Value: evidence.Int(20)},
					{Item: item, Type: ontology.PeptidesCount, Value: evidence.Int(7)},
				} {
					if err := repo.Put(a); err != nil {
						return err
					}
				}
			}
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. The data set: items identified by LSID-style URIs.
	var items []qurator.Item
	for _, name := range []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"} {
		items = append(items, qurator.NewItem("urn:lsid:example.org:demo:"+name))
	}

	// 3. Compile and run the paper's quality view.
	compiled, err := f.CompileView([]byte(qurator.PaperViewXML))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compiled quality workflow:")
	fmt.Println(compiled.Describe())

	f.Repositories.ClearCaches()
	out, err := compiled.Run(context.Background(), items)
	if err != nil {
		log.Fatal(err)
	}
	report := func(label string, out map[string]*qurator.Map) {
		accepted := out["filter_top_k_score:accepted"]
		fmt.Printf("%s: kept %d of %d items:\n", label, accepted.Len(), len(items))
		for _, item := range accepted.Items() {
			cls := accepted.Class(item, ontology.PIScoreClassification)
			score, _ := accepted.Get(item, qurator.Q("tag/HR_MC")).AsFloat()
			fmt.Printf("  %-10s class=%-5s HR_MC=%.1f\n",
				ontology.LocalName(item), ontology.LocalName(cls), score)
		}
	}
	report("\ndefault condition (ScoreClass in q:high, q:mid and HR_MC > 20)", out)

	// 4. Explore: edit the condition and re-run — no recompilation, no
	// re-annotation, just a different lens over the same evidence.
	if err := compiled.SetFilterCondition("filter top k score", "ScoreClass in q:high"); err != nil {
		log.Fatal(err)
	}
	out, err = compiled.Run(context.Background(), items)
	if err != nil {
		log.Fatal(err)
	}
	report("\nstricter condition (ScoreClass in q:high)", out)
}
