// Threshold exploration: the paper's central usability claim made
// concrete — "users may now experiment with different filtering
// conditions" (§4) and "repeatedly observe the effect of alternative
// criteria" (§1.1). The expensive steps (identification, annotation, QA
// computation) run once; only the cheap action condition changes between
// runs, sweeping a threshold and printing the kept-count / precision
// trade-off curve.
//
//	go run ./examples/threshold-explore
package main

import (
	"context"
	"fmt"
	"log"

	"qurator/internal/ispider"
	"qurator/internal/provenance"
)

func main() {
	params := ispider.DefaultWorldParams()
	world, err := ispider.BuildWorld(params)
	if err != nil {
		log.Fatal(err)
	}
	pipeline, err := ispider.BuildPipeline(world, "")
	if err != nil {
		log.Fatal(err)
	}
	// Record every run so the exploration history itself is queryable.
	plog := provenance.NewLog()
	pipeline.Compiled.Provenance = plog

	conditions := []string{
		"ScoreClass in q:high, q:mid",
		"ScoreClass in q:high",
		"ScoreClass in q:high and HR_MC > 5",
		"ScoreClass in q:high and HR_MC > 10",
		"ScoreClass in q:high and HR_MC > 15",
		"HR_MC > 20",
		"HR > 30 or HR_MC > 15",
	}

	fmt.Println("condition sweep over one identification run:")
	fmt.Printf("%-42s %6s %6s %10s\n", "condition", "kept", "TP", "precision")
	for _, cond := range conditions {
		if err := pipeline.Compiled.SetFilterCondition("filter top k score", cond); err != nil {
			log.Fatal(err)
		}
		out, err := pipeline.Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		tp := 0
		for _, item := range out.Accepted.Items() {
			spot, acc, _, err := ispider.ParseHitItem(item)
			if err != nil {
				log.Fatal(err)
			}
			if world.Truth(spot)[acc] {
				tp++
			}
		}
		precision := 0.0
		if out.Accepted.Len() > 0 {
			precision = float64(tp) / float64(out.Accepted.Len())
		}
		fmt.Printf("%-42s %6d %6d %10.3f\n", cond, out.Accepted.Len(), tp, precision)
	}
	fmt.Println("\n(the QAs were computed once per run; only the filter condition changed)")

	// The exploration history is itself metadata: ask the provenance log
	// which runs kept at most 15 identifications.
	res, err := plog.Query(`PREFIX q: <http://qurator.org/iq#>
		SELECT ?expr ?size WHERE {
			?run a q:QualityProcessRun .
			?run q:usedCondition ?c . ?c q:conditionExpression ?expr .
			?run q:producedOutput ?o . ?o q:outputSize ?size .
			FILTER (?size <= 15)
		} ORDER BY ?size`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprovenance: %d recorded runs; conditions that kept ≤ 15 identifications:\n", plog.Len())
	for _, b := range res.Bindings {
		size, _ := b["size"].Int()
		fmt.Printf("  kept %3d  %s\n", size, b["expr"].Value())
	}
}
