module qurator

go 1.22
