// Package annotstore implements Qurator's quality-annotation repositories
// (paper §3, §5): RDF-backed stores that maintain the mapping from data
// items to quality-evidence annotations and serve them back by
// (data, evidence type) key.
//
// Annotations are encoded as the paper's Figure 2 graph shape:
//
//	<item>  rdf:type           <DataEntity subclass>
//	<item>  q:containsEvidence <evidence node>
//	<node>  rdf:type           <QualityEvidence subclass>
//	<node>  q:evidenceValue    "literal value"
//	<node>  q:computedBy       <AnnotationFunction subclass>
//
// Repositories come in two flavours reflecting §4's discussion: persistent
// stores for long-lived evidence (e.g. curation credibility for a stable
// database) and per-run caches for evidence whose scope is a single
// process execution (e.g. Imprint's Hit Ratio). Both expose the same API;
// the Registry keys them by the names that quality views reference
// (repositoryRef="cache").
package annotstore

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"qurator/internal/evidence"
	"qurator/internal/mstore"
	"qurator/internal/ontology"
	"qurator/internal/rdf"
	"qurator/internal/sparql"
)

// Annotation is one quality-evidence statement about a data item.
type Annotation struct {
	// Item is the annotated data item (LSID-wrapped URI).
	Item evidence.Item
	// Type is the QualityEvidence subclass of the annotation,
	// e.g. q:HitRatio.
	Type rdf.Term
	// Value is the evidence value.
	Value evidence.Value
	// Source optionally names the AnnotationFunction class that computed
	// the value.
	Source rdf.Term
	// EntityClass optionally types the item as a DataEntity subclass
	// (e.g. q:ImprintHitEntry).
	EntityClass rdf.Term
}

// Store is the common read/write API all annotation repositories expose
// (paper §5: "all of these repositories are accessed through the same
// read/write API"). Local in-memory repositories and remote HTTP-backed
// ones implement it interchangeably.
type Store interface {
	// Name is the repository name referenced by quality views.
	Name() string
	// Persistent reports whether the store is long-lived (vs. a per-run
	// cache cleared between process executions).
	Persistent() bool
	// Put stores (or overwrites) an annotation.
	Put(a Annotation) error
	// Get retrieves the annotation value for (item, type).
	Get(item evidence.Item, typ rdf.Term) (evidence.Value, bool)
	// Enrich fills the map with stored values of the requested types for
	// every item, returning the number of values added.
	Enrich(m *evidence.Map, types []rdf.Term) int
	// Items returns all annotated items, sorted.
	Items() []evidence.Item
	// Len returns the number of (item, type) annotations stored.
	Len() int
	// Clear removes every annotation.
	Clear()
	// Query runs a SPARQL query against the annotation graph.
	Query(query string) (*sparql.Result, error)
}

// Repository is an in-memory annotation store. All methods are safe for
// concurrent use. Attaching a durable backend with Persist makes every
// mutation WAL-committed before it becomes visible; the read paths are
// unchanged either way.
type Repository struct {
	name       string
	persistent bool

	mu    sync.RWMutex
	graph *rdf.Graph
	// model, when set, validates evidence types against the IQ ontology.
	model *ontology.Ontology
	// store, when set, is the durable backend; graph aliases store.Graph()
	// so reads stay lock-free while writes go through the WAL.
	store *mstore.Store
	// observer, when set, is invoked (under the write lock) for every
	// successful Put — the quality cube's feed.
	observer func(Annotation, time.Time)
	// lastErr records a store write failure on a path whose signature
	// cannot return it (ExpireBefore); see Err.
	lastErr error
}

// New returns an empty repository. persistent records the §4 distinction
// between long-lived stores and per-run caches (a cache is expected to be
// Cleared between process executions); it also gates Registry.ClearCaches.
func New(name string, persistent bool) *Repository {
	return &Repository{name: name, persistent: persistent, graph: rdf.NewGraph()}
}

// WithModel attaches an IQ ontology used to validate evidence types on
// writes: the annotation type must be a subclass of q:QualityEvidence.
func (r *Repository) WithModel(m *ontology.Ontology) *Repository {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.model = m
	return r
}

// Name returns the repository name used in quality-view references.
func (r *Repository) Name() string { return r.name }

// Persistent reports whether the repository is long-lived (vs. a per-run
// cache).
func (r *Repository) Persistent() bool { return r.persistent }

// evidenceNode derives the deterministic IRI of the evidence node for an
// (item, type) pair, so that re-annotation overwrites rather than
// accumulates.
func evidenceNode(item evidence.Item, typ rdf.Term) rdf.Term {
	return rdf.IRI(item.Value() + "#evidence-" + ontology.LocalName(typ))
}

// Put stores (or overwrites) an annotation.
func (r *Repository) Put(a Annotation) error {
	if !a.Item.IsIRI() || a.Item.Value() == "" {
		return fmt.Errorf("annotstore: annotation item must be a non-empty IRI, got %v", a.Item)
	}
	if !a.Type.IsIRI() || a.Type.Value() == "" {
		return fmt.Errorf("annotstore: annotation type must be a non-empty IRI, got %v", a.Type)
	}
	if a.Value.IsNull() {
		return fmt.Errorf("annotstore: null value for %v / %v", a.Item, a.Type)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.model != nil && !r.model.IsSubClassOf(a.Type, ontology.QualityEvidence) {
		return fmt.Errorf("annotstore: %v is not a QualityEvidence subclass in the IQ model", a.Type)
	}

	node := evidenceNode(a.Item, a.Type)
	at := nowUTC()
	// Overwrite any previous value/source statements for this node.
	dels := r.graph.Match(node, rdf.Term{}, rdf.Term{})
	typeIRI := rdf.IRI(rdf.RDFType)
	adds := []rdf.Triple{
		rdf.T(a.Item, ontology.ContainsEvidence, node),
		rdf.T(node, typeIRI, a.Type),
		rdf.T(node, ontology.EvidenceValue, a.Value.ToTerm()),
		stampTriple(node, at),
	}
	if !a.Source.IsZero() {
		adds = append(adds, rdf.T(node, ontology.ComputedBy, a.Source))
	}
	if !a.EntityClass.IsZero() {
		adds = append(adds, rdf.T(a.Item, typeIRI, a.EntityClass))
	}
	if err := r.applyLocked(dels, adds); err != nil {
		return err
	}
	if r.observer != nil {
		r.observer(a, at)
	}
	return nil
}

// applyLocked is the single mutation choke point: deletes first, then
// adds, through the durable store when one is attached (WAL-committed
// before the graph changes) or straight into the graph otherwise. The
// caller holds the write lock.
func (r *Repository) applyLocked(dels, adds []rdf.Triple) error {
	if r.store != nil {
		return r.store.Apply(adds, dels)
	}
	for _, t := range dels {
		r.graph.Remove(t)
	}
	_, err := r.graph.AddBatch(adds)
	return err
}

// PutAll stores a batch of annotations, stopping at the first error.
func (r *Repository) PutAll(as []Annotation) error {
	for _, a := range as {
		if err := r.Put(a); err != nil {
			return err
		}
	}
	return nil
}

// Get retrieves the annotation value for (item, type); the boolean
// reports presence.
func (r *Repository) Get(item evidence.Item, typ rdf.Term) (evidence.Value, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	node := evidenceNode(item, typ)
	if !r.graph.Has(rdf.T(item, ontology.ContainsEvidence, node)) {
		return evidence.Null, false
	}
	val := r.graph.FirstObject(node, ontology.EvidenceValue)
	if val.IsZero() {
		return evidence.Null, false
	}
	return evidence.FromTerm(val), true
}

// Source returns the AnnotationFunction recorded for (item, type), or a
// zero Term.
func (r *Repository) Source(item evidence.Item, typ rdf.Term) rdf.Term {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.graph.FirstObject(evidenceNode(item, typ), ontology.ComputedBy)
}

// Enrich fills the annotation map with stored values of the requested
// evidence types for every item in the map — the Data Enrichment operator
// of §4.1 performs exactly this repository lookup keyed on d ∈ D, e ∈ E.
// It returns the number of values added.
func (r *Repository) Enrich(m *evidence.Map, types []rdf.Term) int {
	n := 0
	for _, item := range m.Items() {
		for _, typ := range types {
			if v, ok := r.Get(item, typ); ok {
				m.Set(item, typ, v)
				n++
			}
		}
	}
	return n
}

// Items returns all annotated items, sorted.
func (r *Repository) Items() []evidence.Item {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.graph.Subjects(ontology.ContainsEvidence, rdf.Term{})
}

// TypesOf returns the evidence types stored for an item, sorted.
func (r *Repository) TypesOf(item evidence.Item) []rdf.Term {
	r.mu.RLock()
	defer r.mu.RUnlock()
	seen := map[rdf.Term]struct{}{}
	for _, node := range r.graph.Objects(item, ontology.ContainsEvidence) {
		typ := r.graph.FirstObject(node, rdf.IRI(rdf.RDFType))
		if !typ.IsZero() {
			seen[typ] = struct{}{}
		}
	}
	out := make([]rdf.Term, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return rdf.CompareTerms(out[i], out[j]) < 0 })
	return out
}

// Len returns the number of (item, type) annotations stored.
func (r *Repository) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.graph.Count(rdf.Term{}, ontology.ContainsEvidence, rdf.Term{})
}

// Clear removes every annotation; used between runs on cache repositories.
// With a durable backend the clear is WAL-logged like any other mutation
// (a store write failure is recorded in Err).
func (r *Repository) Clear() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.store != nil {
		if err := r.store.Clear(); err != nil {
			r.lastErr = err
		}
		return
	}
	r.graph.Clear()
}

// Query runs a SPARQL query against the annotation graph — the paper's
// primary access path (§5). Evaluation runs over an O(1) snapshot, so an
// arbitrarily long query never blocks writers (Put/Clear/Load).
func (r *Repository) Query(query string) (*sparql.Result, error) {
	return sparql.Exec(r.Snapshot(), query)
}

// Snapshot returns an immutable O(1) view of the annotation graph. The
// repository lock is held only long enough to read the graph pointer
// (Load swaps it); snapshot reads themselves are lock-free.
func (r *Repository) Snapshot() *rdf.Snapshot {
	r.mu.RLock()
	g := r.graph
	r.mu.RUnlock()
	return g.Snapshot()
}

// Graph returns a snapshot copy of the underlying RDF graph.
func (r *Repository) Graph() *rdf.Graph {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.graph.Clone()
}

// WriteTurtle dumps the annotation graph in human-readable Turtle with
// the Qurator prefix declared.
func (r *Repository) WriteTurtle(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return rdf.WriteTurtle(w, r.graph, map[string]string{"q": ontology.QuratorNS})
}

// Save writes the repository to an N-Triples file.
func (r *Repository) Save(path string) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return rdf.SaveFile(path, r.graph)
}

// Load replaces the repository contents from an N-Triples file. With a
// durable backend the replacement is logged as a clear plus a bulk add,
// so it survives a restart like any other write.
func (r *Repository) Load(path string) error {
	g, err := rdf.LoadFile(path)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.store == nil {
		r.graph = g
		return nil
	}
	if err := r.store.Clear(); err != nil {
		return err
	}
	_, err = r.store.AddBatch(g.Triples())
	return err
}

// Registry maps the repository names referenced by quality views
// (repositoryRef attributes) to stores.
type Registry struct {
	mu    sync.RWMutex
	repos map[string]Store
}

// NewRegistry returns a registry pre-populated with a persistent "default"
// repository and a per-run "cache" repository — the two roles §4
// distinguishes.
func NewRegistry() *Registry {
	reg := &Registry{repos: make(map[string]Store)}
	reg.Add(New("default", true))
	reg.Add(New("cache", false))
	return reg
}

// Add registers a store under its name, replacing any previous one.
func (reg *Registry) Add(r Store) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	reg.repos[r.Name()] = r
}

// Get looks up a store by name.
func (reg *Registry) Get(name string) (Store, bool) {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	r, ok := reg.repos[name]
	return r, ok
}

// MustGet is Get that panics when the repository is unknown.
func (reg *Registry) MustGet(name string) Store {
	r, ok := reg.Get(name)
	if !ok {
		panic(fmt.Sprintf("annotstore: unknown repository %q", name))
	}
	return r
}

// Names returns the registered repository names, sorted.
func (reg *Registry) Names() []string {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	names := make([]string, 0, len(reg.repos))
	for n := range reg.repos {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ClearCaches clears every non-persistent repository — invoked between
// quality-process executions, since cache annotations are only valid for
// a single run (paper §4 / §5.1 persistent="false").
func (reg *Registry) ClearCaches() {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	for _, r := range reg.repos {
		if !r.Persistent() {
			r.Clear()
		}
	}
}
