package annotstore

import (
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"qurator/internal/evidence"
	"qurator/internal/lsid"
	"qurator/internal/ontology"
	"qurator/internal/rdf"
)

func protein(acc string) evidence.Item {
	return rdf.IRI(lsid.MustWrap("uniprot.org", "uniprot", acc))
}

func TestPutGetRoundTrip(t *testing.T) {
	r := New("cache", false)
	p := protein("P30089")
	err := r.Put(Annotation{
		Item:        p,
		Type:        ontology.HitRatio,
		Value:       evidence.Float(0.82),
		Source:      ontology.ImprintOutputAnnotation,
		EntityClass: ontology.ImprintHitEntry,
	})
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	v, ok := r.Get(p, ontology.HitRatio)
	if !ok || !v.Equal(evidence.Float(0.82)) {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	if src := r.Source(p, ontology.HitRatio); src != ontology.ImprintOutputAnnotation {
		t.Errorf("Source = %v", src)
	}
	if _, ok := r.Get(p, ontology.MassCoverage); ok {
		t.Error("absent type should not be found")
	}
	if _, ok := r.Get(protein("P99999"), ontology.HitRatio); ok {
		t.Error("absent item should not be found")
	}
}

func TestPutOverwrites(t *testing.T) {
	r := New("cache", false)
	p := protein("P30089")
	for _, val := range []float64{0.1, 0.5, 0.9} {
		if err := r.Put(Annotation{Item: p, Type: ontology.HitRatio, Value: evidence.Float(val)}); err != nil {
			t.Fatal(err)
		}
	}
	v, ok := r.Get(p, ontology.HitRatio)
	if !ok || !v.Equal(evidence.Float(0.9)) {
		t.Fatalf("Get after overwrite = %v", v)
	}
	if n := r.Len(); n != 1 {
		t.Errorf("Len = %d, want 1 (overwrite must not accumulate)", n)
	}
}

func TestPutValidation(t *testing.T) {
	r := New("cache", false)
	p := protein("P1")
	bad := []Annotation{
		{},
		{Item: rdf.Literal("x"), Type: ontology.HitRatio, Value: evidence.Float(1)},
		{Item: p, Type: rdf.Literal("t"), Value: evidence.Float(1)},
		{Item: p, Type: ontology.HitRatio, Value: evidence.Null},
	}
	for i, a := range bad {
		if err := r.Put(a); err == nil {
			t.Errorf("case %d: Put should fail", i)
		}
	}
}

func TestModelValidation(t *testing.T) {
	r := New("cache", false).WithModel(ontology.NewIQModel())
	p := protein("P1")
	if err := r.Put(Annotation{Item: p, Type: ontology.HitRatio, Value: evidence.Float(1)}); err != nil {
		t.Errorf("valid evidence type rejected: %v", err)
	}
	if err := r.Put(Annotation{Item: p, Type: rdf.IRI("urn:not-evidence"), Value: evidence.Float(1)}); err == nil {
		t.Error("non-QualityEvidence type should be rejected under a model")
	}
}

func TestEnrichFillsAnnotationMap(t *testing.T) {
	r := New("cache", false)
	items := []evidence.Item{protein("P1"), protein("P2"), protein("P3")}
	for i, it := range items {
		if err := r.Put(Annotation{Item: it, Type: ontology.HitRatio, Value: evidence.Float(float64(i + 1))}); err != nil {
			t.Fatal(err)
		}
	}
	// P2 also has MC; P3 has none requested.
	if err := r.Put(Annotation{Item: items[1], Type: ontology.MassCoverage, Value: evidence.Float(0.5)}); err != nil {
		t.Fatal(err)
	}

	m := evidence.NewMap(items...)
	m.AddItem(protein("P-unknown"))
	n := r.Enrich(m, []rdf.Term{ontology.HitRatio, ontology.MassCoverage})
	if n != 4 {
		t.Errorf("Enrich added %d values, want 4", n)
	}
	if !m.Get(items[0], ontology.HitRatio).Equal(evidence.Float(1)) {
		t.Error("P1 HitRatio missing after Enrich")
	}
	if !m.Get(items[1], ontology.MassCoverage).Equal(evidence.Float(0.5)) {
		t.Error("P2 MassCoverage missing after Enrich")
	}
	if m.Has(protein("P-unknown"), ontology.HitRatio) {
		t.Error("unknown item should stay null")
	}
}

func TestItemsAndTypesOf(t *testing.T) {
	r := New("cache", false)
	p1, p2 := protein("P1"), protein("P2")
	r.Put(Annotation{Item: p1, Type: ontology.HitRatio, Value: evidence.Float(1)})
	r.Put(Annotation{Item: p1, Type: ontology.MassCoverage, Value: evidence.Float(2)})
	r.Put(Annotation{Item: p2, Type: ontology.HitRatio, Value: evidence.Float(3)})
	if got := r.Items(); !reflect.DeepEqual(got, []evidence.Item{p1, p2}) {
		t.Errorf("Items = %v", got)
	}
	if got := r.TypesOf(p1); len(got) != 2 {
		t.Errorf("TypesOf(p1) = %v", got)
	}
	if got := r.TypesOf(p2); !reflect.DeepEqual(got, []rdf.Term{ontology.HitRatio}) {
		t.Errorf("TypesOf(p2) = %v", got)
	}
}

func TestSPARQLAccessPath(t *testing.T) {
	// The paper's §5 access: SPARQL over the annotation graph.
	r := New("cache", false)
	p := protein("P30089")
	r.Put(Annotation{Item: p, Type: ontology.HitRatio, Value: evidence.Float(0.82)})
	res, err := r.Query(fmt.Sprintf(
		"PREFIX q: <%s>\nSELECT ?v WHERE { <%s> q:containsEvidence ?n . ?n a q:HitRatio . ?n q:evidenceValue ?v . }",
		ontology.QuratorNS, p.Value()))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(res.Bindings) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Bindings))
	}
	if f, ok := res.Bindings[0]["v"].Float(); !ok || f != 0.82 {
		t.Errorf("value = %v", res.Bindings[0]["v"])
	}
}

func TestSaveLoad(t *testing.T) {
	r := New("persist", true)
	p := protein("P1")
	r.Put(Annotation{Item: p, Type: ontology.EvidenceCode, Value: evidence.String_("TAS")})
	path := filepath.Join(t.TempDir(), "annotations.nt")
	if err := r.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	r2 := New("persist", true)
	if err := r2.Load(path); err != nil {
		t.Fatalf("Load: %v", err)
	}
	v, ok := r2.Get(p, ontology.EvidenceCode)
	if !ok || v.AsString() != "TAS" {
		t.Errorf("after Load: %v, %v", v, ok)
	}
}

func TestClear(t *testing.T) {
	r := New("cache", false)
	r.Put(Annotation{Item: protein("P1"), Type: ontology.HitRatio, Value: evidence.Float(1)})
	r.Clear()
	if r.Len() != 0 || len(r.Items()) != 0 {
		t.Error("Clear should empty the repository")
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	if _, ok := reg.Get("cache"); !ok {
		t.Fatal("registry should pre-register cache")
	}
	if _, ok := reg.Get("default"); !ok {
		t.Fatal("registry should pre-register default")
	}
	custom := New("uniprot-credibility", true)
	reg.Add(custom)
	if got := reg.MustGet("uniprot-credibility"); got != custom {
		t.Error("Add/MustGet mismatch")
	}
	if _, ok := reg.Get("nope"); ok {
		t.Error("unknown name should miss")
	}
	want := []string{"cache", "default", "uniprot-credibility"}
	if got := reg.Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("Names = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustGet of unknown repo should panic")
		}
	}()
	reg.MustGet("nope")
}

func TestClearCachesLeavesPersistent(t *testing.T) {
	reg := NewRegistry()
	cache := reg.MustGet("cache")
	def := reg.MustGet("default")
	p := protein("P1")
	cache.Put(Annotation{Item: p, Type: ontology.HitRatio, Value: evidence.Float(1)})
	def.Put(Annotation{Item: p, Type: ontology.EvidenceCode, Value: evidence.String_("TAS")})
	reg.ClearCaches()
	if cache.Len() != 0 {
		t.Error("cache should be cleared")
	}
	if def.Len() != 1 {
		t.Error("persistent repository should survive ClearCaches")
	}
}

func TestConcurrentPutGet(t *testing.T) {
	r := New("cache", false)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				p := protein(fmt.Sprintf("P%d-%d", w, i))
				if err := r.Put(Annotation{Item: p, Type: ontology.HitRatio, Value: evidence.Float(float64(i))}); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if _, ok := r.Get(p, ontology.HitRatio); !ok {
					t.Error("Get after Put failed")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Errorf("Len = %d, want 800", r.Len())
	}
}

func BenchmarkPut(b *testing.B) {
	r := New("cache", false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Put(Annotation{
			Item:  protein(fmt.Sprintf("P%d", i%1000)),
			Type:  ontology.HitRatio,
			Value: evidence.Float(float64(i)),
		})
	}
}

func BenchmarkEnrich(b *testing.B) {
	r := New("cache", false)
	items := make([]evidence.Item, 100)
	for i := range items {
		items[i] = protein(fmt.Sprintf("P%d", i))
		r.Put(Annotation{Item: items[i], Type: ontology.HitRatio, Value: evidence.Float(float64(i))})
		r.Put(Annotation{Item: items[i], Type: ontology.MassCoverage, Value: evidence.Float(float64(i) / 2)})
	}
	types := []rdf.Term{ontology.HitRatio, ontology.MassCoverage}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := evidence.NewMap(items...)
		r.Enrich(m, types)
	}
}
