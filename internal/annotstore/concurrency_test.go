package annotstore

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/rdf"
)

func fillRepo(t testing.TB, r *Repository, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := r.Put(Annotation{
			Item:  evidence.Item(rdf.IRI(fmt.Sprintf("urn:item:%d", i))),
			Type:  ontology.Q("HitRatio"),
			Value: evidence.Float(float64(i) / float64(n)),
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestQueryDoesNotBlockWriters proves the snapshot semantics
// deterministically: a writer completes while a snapshot read is parked
// mid-iteration. Under the old design (Query evaluating under RLock) the
// writer could not proceed until the query finished.
func TestQueryDoesNotBlockWriters(t *testing.T) {
	r := New("default", true)
	fillRepo(t, r, 200)

	snap := r.Snapshot()
	readerEntered := make(chan struct{})
	release := make(chan struct{})
	writerDone := make(chan struct{})

	go func() {
		first := true
		snap.ForEachMatch(rdf.Term{}, rdf.Term{}, rdf.Term{}, func(rdf.Triple) bool {
			if first {
				first = false
				close(readerEntered)
				<-release // simulate a long-running query mid-stream
			}
			return true
		})
	}()

	<-readerEntered
	go func() {
		err := r.Put(Annotation{
			Item:  evidence.Item(rdf.IRI("urn:item:while-reading")),
			Type:  ontology.Q("HitRatio"),
			Value: evidence.Float(0.5),
		})
		if err != nil {
			t.Error(err)
		}
		close(writerDone)
	}()

	select {
	case <-writerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("writer blocked by an in-flight snapshot read")
	}
	close(release)
}

// TestConcurrentQueryAndPut hammers Query and Put concurrently under the
// race detector: queries must always see a consistent graph and writers
// must keep making progress.
func TestConcurrentQueryAndPut(t *testing.T) {
	r := New("default", true)
	fillRepo(t, r, 100)

	const writers, readers = 3, 3
	var wg sync.WaitGroup
	stop := make(chan struct{})
	written := make([]int, writers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				err := r.Put(Annotation{
					Item:  evidence.Item(rdf.IRI(fmt.Sprintf("urn:item:w%d-%d", w, i))),
					Type:  ontology.Q("HitRatio"),
					Value: evidence.Float(0.1),
				})
				if err != nil {
					t.Error(err)
					return
				}
				written[w]++
			}
		}(w)
	}

	query := fmt.Sprintf(
		"SELECT ?item ?v WHERE { ?item <%s> ?n . ?n <%s> ?v . }",
		ontology.ContainsEvidence.Value(), ontology.EvidenceValue.Value())
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 30; j++ {
				res, err := r.Query(query)
				if err != nil {
					t.Error(err)
					return
				}
				if len(res.Bindings) < 100 {
					t.Errorf("query saw %d rows, want >= 100", len(res.Bindings))
					return
				}
			}
		}()
	}

	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	for w, n := range written {
		if n == 0 {
			t.Errorf("writer %d made no progress while queries ran", w)
		}
	}
}
