package annotstore

import (
	"sync"
	"time"

	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/rdf"
)

// This file adds annotation freshness to the repositories, making §4's
// lifetime discussion operational: long-lived evidence ("a measure of
// credibility of a functional annotation ... is bound to be long-lived")
// still goes stale eventually — the underlying database gets re-curated —
// so persistent stores record when each annotation was computed and can
// expire entries older than a bound.

// recordedAt is the property carrying an annotation node's timestamp.
var recordedAt = ontology.Q("recordedAt")

// clock is swappable for tests.
var (
	clockMu sync.RWMutex
	clock   = time.Now
)

// SetClock overrides the time source (tests only); it returns a restore
// function.
func SetClock(now func() time.Time) func() {
	clockMu.Lock()
	clock = now
	clockMu.Unlock()
	return func() {
		clockMu.Lock()
		clock = time.Now
		clockMu.Unlock()
	}
}

func nowUTC() time.Time {
	clockMu.RLock()
	defer clockMu.RUnlock()
	return clock().UTC()
}

// stampTriple is the statement recording an evidence node's write time;
// Put folds it into the same durable batch as the annotation itself.
func stampTriple(node rdf.Term, at time.Time) rdf.Triple {
	return rdf.T(node, recordedAt, rdf.Literal(at.Format(time.RFC3339Nano)))
}

// RecordedAt returns when the (item, type) annotation was written; the
// zero time when the annotation (or its stamp) is absent.
func (r *Repository) RecordedAt(item evidence.Item, typ rdf.Term) time.Time {
	r.mu.RLock()
	defer r.mu.RUnlock()
	lit := r.graph.FirstObject(evidenceNode(item, typ), recordedAt)
	if lit.IsZero() {
		return time.Time{}
	}
	t, err := time.Parse(time.RFC3339Nano, lit.Value())
	if err != nil {
		return time.Time{}
	}
	return t
}

// ExpireBefore removes every annotation recorded strictly before the
// cutoff, returning the number removed. Unstamped annotations are treated
// as infinitely old and removed too.
func (r *Repository) ExpireBefore(cutoff time.Time) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	type target struct {
		item, node rdf.Term
	}
	var victims []target
	for _, t := range r.graph.Match(rdf.Term{}, ontology.ContainsEvidence, rdf.Term{}) {
		node := t.Object
		stale := true
		if lit := r.graph.FirstObject(node, recordedAt); !lit.IsZero() {
			if at, err := time.Parse(time.RFC3339Nano, lit.Value()); err == nil && !at.Before(cutoff) {
				stale = false
			}
		}
		if stale {
			victims = append(victims, target{t.Subject, node})
		}
	}
	var dels []rdf.Triple
	for _, v := range victims {
		dels = append(dels, r.graph.Match(v.node, rdf.Term{}, rdf.Term{})...)
		dels = append(dels, rdf.T(v.item, ontology.ContainsEvidence, v.node))
	}
	if err := r.applyLocked(dels, nil); err != nil {
		r.lastErr = err
		return 0
	}
	return len(victims)
}
