package annotstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"qurator/internal/evidence"
	"qurator/internal/ontology"
)

func TestRecordedAtStampsWrites(t *testing.T) {
	fixed := time.Date(2006, 9, 12, 10, 0, 0, 0, time.UTC)
	restore := SetClock(func() time.Time { return fixed })
	defer restore()

	r := New("default", true)
	p := protein("P1")
	if err := r.Put(Annotation{Item: p, Type: ontology.EvidenceCode, Value: evidence.String_("TAS")}); err != nil {
		t.Fatal(err)
	}
	if got := r.RecordedAt(p, ontology.EvidenceCode); !got.Equal(fixed) {
		t.Errorf("RecordedAt = %v, want %v", got, fixed)
	}
	if got := r.RecordedAt(p, ontology.HitRatio); !got.IsZero() {
		t.Errorf("absent annotation RecordedAt = %v, want zero", got)
	}
	// Overwriting refreshes the stamp.
	later := fixed.Add(time.Hour)
	SetClock(func() time.Time { return later })
	if err := r.Put(Annotation{Item: p, Type: ontology.EvidenceCode, Value: evidence.String_("IDA")}); err != nil {
		t.Fatal(err)
	}
	if got := r.RecordedAt(p, ontology.EvidenceCode); !got.Equal(later) {
		t.Errorf("RecordedAt after overwrite = %v, want %v", got, later)
	}
}

func TestExpireBefore(t *testing.T) {
	base := time.Date(2006, 9, 12, 10, 0, 0, 0, time.UTC)
	restore := SetClock(func() time.Time { return base })
	defer restore()

	r := New("default", true)
	old := protein("OLD")
	if err := r.Put(Annotation{Item: old, Type: ontology.EvidenceCode, Value: evidence.String_("TAS")}); err != nil {
		t.Fatal(err)
	}
	SetClock(func() time.Time { return base.Add(48 * time.Hour) })
	fresh := protein("FRESH")
	if err := r.Put(Annotation{Item: fresh, Type: ontology.EvidenceCode, Value: evidence.String_("IDA")}); err != nil {
		t.Fatal(err)
	}

	removed := r.ExpireBefore(base.Add(24 * time.Hour))
	if removed != 1 {
		t.Fatalf("ExpireBefore removed %d, want 1", removed)
	}
	if _, ok := r.Get(old, ontology.EvidenceCode); ok {
		t.Error("stale annotation should be gone")
	}
	if v, ok := r.Get(fresh, ontology.EvidenceCode); !ok || v.AsString() != "IDA" {
		t.Error("fresh annotation should survive")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
	// Idempotent on a fresh store.
	if removed := r.ExpireBefore(base.Add(24 * time.Hour)); removed != 0 {
		t.Errorf("second expiry removed %d", removed)
	}
}

func TestExpireBeforeTreatsUnstampedAsStale(t *testing.T) {
	// Annotations loaded from a pre-freshness snapshot have no stamp; a
	// conservative expiry removes them. Simulate by stripping the stamp
	// statements from a file snapshot and reloading.
	r := New("default", true)
	p := protein("P1")
	if err := r.Put(Annotation{Item: p, Type: ontology.EvidenceCode, Value: evidence.String_("TAS")}); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.nt")
	if err := r.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var kept []string
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.Contains(line, "recordedAt") {
			kept = append(kept, line)
		}
	}
	if err := os.WriteFile(path, []byte(strings.Join(kept, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	r2 := New("default", true)
	if err := r2.Load(path); err != nil {
		t.Fatal(err)
	}
	if removed := r2.ExpireBefore(time.Now()); removed != 1 {
		t.Errorf("unstamped annotation should expire, removed %d", removed)
	}
}
