package annotstore

import (
	"fmt"
	"time"

	"qurator/internal/mstore"
)

// This file attaches the durable metadata plane (internal/mstore) to a
// repository: once Persist is called, every mutation — Put, Clear, Load,
// ExpireBefore — is committed to a write-ahead log before it becomes
// visible, and Open-time recovery rebuilds the annotation graph exactly
// as it stood at the last committed batch. Read paths are untouched: the
// repository's graph pointer aliases the store's copy-on-write graph, so
// Get/Query/Snapshot stay lock-free.

// Persist opens (or creates) a durable backend in dir and routes all
// subsequent mutations through it. Annotations recovered from dir become
// visible immediately; annotations already in memory are folded into the
// store. Calling Persist twice is an error.
func (r *Repository) Persist(dir string, opts mstore.Options) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.store != nil {
		return fmt.Errorf("annotstore: repository %q is already persistent", r.name)
	}
	if opts.Name == "" {
		opts.Name = "annot-" + r.name
	}
	st, err := mstore.Open(dir, opts)
	if err != nil {
		return err
	}
	if r.graph.Len() > 0 {
		// Pre-Persist writes happened in memory only; make them durable.
		if _, err := st.AddBatch(r.graph.Triples()); err != nil {
			st.Close()
			return err
		}
	}
	r.store = st
	r.graph = st.Graph()
	return nil
}

// Durable reports whether a backend is attached.
func (r *Repository) Durable() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.store != nil
}

// Flush checkpoints the durable backend (no-op without one).
func (r *Repository) Flush() error {
	r.mu.RLock()
	st := r.store
	r.mu.RUnlock()
	if st == nil {
		return nil
	}
	return st.Flush()
}

// CloseStore flushes and detaches the durable backend. The repository
// keeps its in-memory contents and keeps working non-durably.
func (r *Repository) CloseStore() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.store == nil {
		return nil
	}
	err := r.store.Close()
	r.store = nil
	return err
}

// StoreStats returns the backend's durability statistics (zero without
// one).
func (r *Repository) StoreStats() mstore.Stats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.store == nil {
		return mstore.Stats{}
	}
	return r.store.Stats()
}

// SetObserver registers a callback invoked for every successful Put with
// the annotation and its write timestamp — the quality cube's feed. The
// callback runs under the repository's write lock and must not call back
// into the repository. Passing nil removes the observer.
func (r *Repository) SetObserver(fn func(Annotation, time.Time)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.observer = fn
}

// Err returns the last store write failure from a path that cannot
// report one directly (ExpireBefore, Clear), and clears it.
func (r *Repository) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	err := r.lastErr
	r.lastErr = nil
	return err
}
