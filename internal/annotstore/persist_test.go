package annotstore

import (
	"path/filepath"
	"testing"
	"time"

	"qurator/internal/evidence"
	"qurator/internal/mstore"
	"qurator/internal/ontology"
	"qurator/internal/rdf"
)

func testStoreOpts() mstore.Options {
	return mstore.Options{Fsync: mstore.FsyncNever, NoBackground: true}
}

func reopen(t *testing.T, dir string) *Repository {
	t.Helper()
	r := New("default", true)
	if err := r.Persist(dir, testStoreOpts()); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestPersistPutGetAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	r := reopen(t, dir)
	item := rdf.IRI("urn:lsid:x:1")
	if err := r.Put(Annotation{Item: item, Type: ontology.Q("HitRatio"), Value: evidence.Float(0.5)}); err != nil {
		t.Fatal(err)
	}
	// Overwrite: the delete+add must land in one durable batch.
	if err := r.Put(Annotation{Item: item, Type: ontology.Q("HitRatio"), Value: evidence.Float(0.9)}); err != nil {
		t.Fatal(err)
	}
	if err := r.CloseStore(); err != nil {
		t.Fatal(err)
	}

	r2 := reopen(t, dir)
	defer r2.CloseStore()
	v, ok := r2.Get(item, ontology.Q("HitRatio"))
	if !ok {
		t.Fatal("annotation lost")
	}
	if f, _ := v.AsFloat(); f != 0.9 {
		t.Fatalf("recovered %v, want the overwritten 0.9", f)
	}
	if n := r2.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1 (overwrite must not duplicate)", n)
	}
}

func TestPersistClearAndExpire(t *testing.T) {
	dir := t.TempDir()
	restore := SetClock(func() time.Time { return time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC) })
	r := reopen(t, dir)
	for _, id := range []string{"a", "b", "c"} {
		if err := r.Put(Annotation{
			Item: rdf.IRI("urn:lsid:x:" + id), Type: ontology.Q("HitRatio"), Value: evidence.Float(0.5),
		}); err != nil {
			t.Fatal(err)
		}
	}
	restore()

	// Expire everything stamped before "now": all three.
	if n := r.ExpireBefore(time.Date(2026, 2, 1, 0, 0, 0, 0, time.UTC)); n != 3 {
		t.Fatalf("ExpireBefore removed %d, want 3", n)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if err := r.Put(Annotation{
		Item: rdf.IRI("urn:lsid:x:new"), Type: ontology.Q("HitRatio"), Value: evidence.Float(1),
	}); err != nil {
		t.Fatal(err)
	}
	r.CloseStore()

	r2 := reopen(t, dir)
	if r2.Len() != 1 {
		t.Fatalf("after expiry+restart Len = %d, want 1", r2.Len())
	}
	// And a durable Clear.
	r2.Clear()
	if err := r2.Err(); err != nil {
		t.Fatal(err)
	}
	r2.CloseStore()
	r3 := reopen(t, dir)
	defer r3.CloseStore()
	if r3.Len() != 0 {
		t.Fatalf("after Clear+restart Len = %d, want 0", r3.Len())
	}
}

func TestPersistLoadReplacesDurably(t *testing.T) {
	// Build an N-Triples file via a plain repository.
	src := New("src", true)
	if err := src.Put(Annotation{
		Item: rdf.IRI("urn:lsid:x:loaded"), Type: ontology.Q("MassCoverage"), Value: evidence.Float(0.7),
	}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "dump.nt")
	if err := src.Save(path); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	r := reopen(t, dir)
	if err := r.Put(Annotation{
		Item: rdf.IRI("urn:lsid:x:old"), Type: ontology.Q("HitRatio"), Value: evidence.Float(0.1),
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.Load(path); err != nil {
		t.Fatal(err)
	}
	r.CloseStore()

	r2 := reopen(t, dir)
	defer r2.CloseStore()
	if _, ok := r2.Get(rdf.IRI("urn:lsid:x:old"), ontology.Q("HitRatio")); ok {
		t.Fatal("pre-Load annotation survived the replacement")
	}
	if v, ok := r2.Get(rdf.IRI("urn:lsid:x:loaded"), ontology.Q("MassCoverage")); !ok {
		t.Fatal("loaded annotation lost across restart")
	} else if f, _ := v.AsFloat(); f != 0.7 {
		t.Fatalf("loaded value = %v", f)
	}
}

func TestPersistFoldsExistingContent(t *testing.T) {
	r := New("default", true)
	if err := r.Put(Annotation{
		Item: rdf.IRI("urn:lsid:x:pre"), Type: ontology.Q("HitRatio"), Value: evidence.Float(0.3),
	}); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := r.Persist(dir, testStoreOpts()); err != nil {
		t.Fatal(err)
	}
	if err := r.Persist(dir, testStoreOpts()); err == nil {
		t.Fatal("second Persist must fail")
	}
	r.CloseStore()

	r2 := reopen(t, dir)
	defer r2.CloseStore()
	if _, ok := r2.Get(rdf.IRI("urn:lsid:x:pre"), ontology.Q("HitRatio")); !ok {
		t.Fatal("pre-Persist annotation not folded into the store")
	}
}

func TestObserverFiresOnPut(t *testing.T) {
	r := New("default", true)
	var seen []Annotation
	r.SetObserver(func(a Annotation, at time.Time) {
		if at.IsZero() {
			t.Error("observer got zero timestamp")
		}
		seen = append(seen, a)
	})
	if err := r.Put(Annotation{
		Item: rdf.IRI("urn:lsid:x:1"), Type: ontology.Q("HitRatio"), Value: evidence.Float(0.5),
	}); err != nil {
		t.Fatal(err)
	}
	// Failed puts must not notify.
	if err := r.Put(Annotation{Item: rdf.IRI("urn:lsid:x:2"), Type: ontology.Q("HitRatio")}); err == nil {
		t.Fatal("want error for null value")
	}
	if len(seen) != 1 || seen[0].Type != ontology.Q("HitRatio") {
		t.Fatalf("observer saw %v", seen)
	}
	r.SetObserver(nil)
	if err := r.Put(Annotation{
		Item: rdf.IRI("urn:lsid:x:3"), Type: ontology.Q("HitRatio"), Value: evidence.Float(0.5),
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 {
		t.Fatal("removed observer still fired")
	}
}
