// Package binding implements Qurator's binding model (paper §3, §6): a
// semantic registry that associates concepts of the IQ ontology with
// concrete Service Resources or Data Resources through Binding objects,
// each carrying a locator whose interpretation depends on the resource
// kind (a service endpoint, an XPath, an SQL query, ...).
//
// The binding step "results in each Annotation and QA operator being
// mapped to a Web Service endpoint" — here, to a services.QualityService,
// resolved either from an in-process registry (locator "local:<name>") or
// from an HTTP host (locator "http://host/services/<name>").
package binding

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"qurator/internal/ontology"
	"qurator/internal/rdf"
	"qurator/internal/services"
)

// Kind distinguishes resource kinds.
type Kind string

// Resource kinds from the binding-model ontology.
const (
	// ServiceResource locates an executable operator implementation.
	ServiceResource Kind = "service"
	// DataResource locates data (the paper's resource locators for
	// DataEntity concepts: XPath expressions, SQL queries, ...).
	DataResource Kind = "data"
)

// Binding associates an IQ-model concept with a located resource.
type Binding struct {
	// Concept is the ontology class being bound (e.g. q:UniversalPIScore2).
	Concept rdf.Term
	// Kind is the resource kind.
	Kind Kind
	// Locator identifies the resource: "local:<service name>" for
	// in-process services, an HTTP endpoint for remote ones, or a
	// data-retrieval expression for data resources.
	Locator string
}

// Vocabulary of the binding-model ontology.
var (
	bindingClass  = ontology.Q("Binding")
	bindsConcept  = ontology.Q("bindsConcept")
	resourceKind  = ontology.Q("resourceKind")
	resourceLocat = ontology.Q("resourceLocator")
)

// Registry is the semantic binding registry. It optionally consults an IQ
// ontology so that a concept with no direct binding resolves through its
// superclasses (a user-specialised operator class inherits its parent's
// implementation until it gets its own).
type Registry struct {
	mu       sync.RWMutex
	bindings map[rdf.Term][]Binding
	model    *ontology.Ontology
}

// NewRegistry returns an empty binding registry.
func NewRegistry(model *ontology.Ontology) *Registry {
	return &Registry{bindings: make(map[rdf.Term][]Binding), model: model}
}

// Bind records a binding. Multiple bindings per concept are allowed
// (alternative deployments); resolution returns them in insertion order.
func (r *Registry) Bind(b Binding) error {
	if !b.Concept.IsIRI() {
		return fmt.Errorf("binding: concept must be an IRI, got %v", b.Concept)
	}
	if b.Kind != ServiceResource && b.Kind != DataResource {
		return fmt.Errorf("binding: unknown resource kind %q", b.Kind)
	}
	if b.Locator == "" {
		return fmt.Errorf("binding: empty locator for %v", b.Concept)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bindings[b.Concept] = append(r.bindings[b.Concept], b)
	return nil
}

// MustBind is Bind that panics on error.
func (r *Registry) MustBind(b Binding) {
	if err := r.Bind(b); err != nil {
		panic(err)
	}
}

// Resolve returns the bindings for a concept. When the concept has no
// direct binding and the registry has a model, superclass bindings are
// consulted (nearest first).
func (r *Registry) Resolve(concept rdf.Term) []Binding {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if bs := r.bindings[concept]; len(bs) > 0 {
		return append([]Binding(nil), bs...)
	}
	if r.model == nil {
		return nil
	}
	// Breadth-first up the taxonomy for the nearest bound ancestor.
	frontier := []rdf.Term{concept}
	seen := map[rdf.Term]bool{concept: true}
	for len(frontier) > 0 {
		var next []rdf.Term
		for _, c := range frontier {
			for _, sup := range r.model.DirectSuperclasses(c) {
				if seen[sup] {
					continue
				}
				seen[sup] = true
				next = append(next, sup)
			}
		}
		// Collect bindings at this level; deterministic order.
		sort.Slice(next, func(i, j int) bool { return rdf.CompareTerms(next[i], next[j]) < 0 })
		var found []Binding
		for _, c := range next {
			found = append(found, r.bindings[c]...)
		}
		if len(found) > 0 {
			return found
		}
		frontier = next
	}
	return nil
}

// ResolveService resolves a concept to exactly one service binding,
// preferring the first (primary) binding of ServiceResource kind.
func (r *Registry) ResolveService(concept rdf.Term) (Binding, error) {
	for _, b := range r.Resolve(concept) {
		if b.Kind == ServiceResource {
			return b, nil
		}
	}
	return Binding{}, fmt.Errorf("binding: no service binding for %v", concept)
}

// Concepts returns all bound concepts, sorted.
func (r *Registry) Concepts() []rdf.Term {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]rdf.Term, 0, len(r.bindings))
	for c := range r.bindings {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return rdf.CompareTerms(out[i], out[j]) < 0 })
	return out
}

// ToGraph serialises the registry as RDF (the binding ontology pattern:
// a Binding node linking a concept to a located resource).
func (r *Registry) ToGraph() *rdf.Graph {
	r.mu.RLock()
	defer r.mu.RUnlock()
	g := rdf.NewGraph()
	i := 0
	for _, concept := range sortedConcepts(r.bindings) {
		for _, b := range r.bindings[concept] {
			node := rdf.IRI(fmt.Sprintf("%sbinding/%d", ontology.QuratorNS, i))
			i++
			g.MustAdd(rdf.T(node, rdf.IRI(rdf.RDFType), bindingClass))
			g.MustAdd(rdf.T(node, bindsConcept, b.Concept))
			g.MustAdd(rdf.T(node, resourceKind, rdf.Literal(string(b.Kind))))
			g.MustAdd(rdf.T(node, resourceLocat, rdf.Literal(b.Locator)))
		}
	}
	return g
}

// FromGraph loads bindings serialised by ToGraph into a new registry.
func FromGraph(g *rdf.Graph, model *ontology.Ontology) (*Registry, error) {
	reg := NewRegistry(model)
	for _, t := range g.Match(rdf.Term{}, rdf.IRI(rdf.RDFType), bindingClass) {
		node := t.Subject
		concept := g.FirstObject(node, bindsConcept)
		kind := g.FirstObject(node, resourceKind)
		locator := g.FirstObject(node, resourceLocat)
		if concept.IsZero() || kind.IsZero() || locator.IsZero() {
			return nil, fmt.Errorf("binding: incomplete binding node %v", node)
		}
		if err := reg.Bind(Binding{
			Concept: concept,
			Kind:    Kind(kind.Value()),
			Locator: locator.Value(),
		}); err != nil {
			return nil, err
		}
	}
	return reg, nil
}

func sortedConcepts(m map[rdf.Term][]Binding) []rdf.Term {
	out := make([]rdf.Term, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return rdf.CompareTerms(out[i], out[j]) < 0 })
	return out
}

// Resolver turns service bindings into invocable services.
type Resolver struct {
	// Local resolves "local:<name>" locators.
	Local *services.Registry
	// NewClient builds a client for a remote base URL; defaults to
	// services.Client. Overridable for tests.
	NewClient func(baseURL string) *services.Client
}

// Service materialises the QualityService behind a binding.
func (r *Resolver) Service(b Binding) (services.QualityService, error) {
	if b.Kind != ServiceResource {
		return nil, fmt.Errorf("binding: %v is not a service binding", b.Concept)
	}
	switch {
	case strings.HasPrefix(b.Locator, "local:"):
		name := strings.TrimPrefix(b.Locator, "local:")
		if r.Local == nil {
			return nil, fmt.Errorf("binding: no local registry to resolve %q", b.Locator)
		}
		svc, ok := r.Local.Get(name)
		if !ok {
			return nil, fmt.Errorf("binding: local service %q not deployed", name)
		}
		return svc, nil
	case strings.HasPrefix(b.Locator, "http://") || strings.HasPrefix(b.Locator, "https://"):
		base, name, ok := splitEndpoint(b.Locator)
		if !ok {
			return nil, fmt.Errorf("binding: malformed service endpoint %q (want .../services/<name>)", b.Locator)
		}
		newClient := r.NewClient
		if newClient == nil {
			newClient = func(baseURL string) *services.Client { return &services.Client{BaseURL: baseURL} }
		}
		client := newClient(base)
		return &httpBound{client: client, name: name, typ: b.Concept.Value()}, nil
	default:
		return nil, fmt.Errorf("binding: unsupported locator scheme in %q", b.Locator)
	}
}

func splitEndpoint(locator string) (base, name string, ok bool) {
	const marker = "/services/"
	i := strings.LastIndex(locator, marker)
	if i < 0 {
		return "", "", false
	}
	base, name = locator[:i], locator[i+len(marker):]
	if base == "" || name == "" || strings.Contains(name, "/") {
		return "", "", false
	}
	return base, name, true
}

// httpBound invokes a remote service found via a binding locator.
type httpBound struct {
	client *services.Client
	name   string
	typ    string
}

// Describe implements services.QualityService.
func (h *httpBound) Describe() services.Info {
	return services.Info{Name: h.name, Type: h.typ}
}

// Invoke implements services.QualityService.
func (h *httpBound) Invoke(ctx context.Context, req *services.Envelope) (*services.Envelope, error) {
	return h.client.Invoke(ctx, h.name, req)
}
