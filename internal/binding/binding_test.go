package binding

import (
	"context"
	"net/http/httptest"
	"testing"

	"qurator/internal/ontology"
	"qurator/internal/qa"
	"qurator/internal/rdf"
	"qurator/internal/services"
)

func TestBindAndResolve(t *testing.T) {
	reg := NewRegistry(nil)
	reg.MustBind(Binding{Concept: ontology.UniversalPIScore2, Kind: ServiceResource, Locator: "local:HR_MC_score"})
	reg.MustBind(Binding{Concept: ontology.UniversalPIScore2, Kind: ServiceResource, Locator: "local:alt"})
	bs := reg.Resolve(ontology.UniversalPIScore2)
	if len(bs) != 2 || bs[0].Locator != "local:HR_MC_score" {
		t.Fatalf("Resolve = %v", bs)
	}
	b, err := reg.ResolveService(ontology.UniversalPIScore2)
	if err != nil || b.Locator != "local:HR_MC_score" {
		t.Errorf("ResolveService = %v, %v", b, err)
	}
	if _, err := reg.ResolveService(ontology.PIScoreClassifier); err == nil {
		t.Error("unbound concept should fail")
	}
	if got := reg.Concepts(); len(got) != 1 {
		t.Errorf("Concepts = %v", got)
	}
}

func TestBindValidation(t *testing.T) {
	reg := NewRegistry(nil)
	bad := []Binding{
		{Concept: rdf.Literal("x"), Kind: ServiceResource, Locator: "local:x"},
		{Concept: ontology.UniversalPIScore2, Kind: "weird", Locator: "local:x"},
		{Concept: ontology.UniversalPIScore2, Kind: ServiceResource, Locator: ""},
	}
	for i, b := range bad {
		if err := reg.Bind(b); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestSubsumptionFallback(t *testing.T) {
	// A user-specialised operator class inherits the superclass binding.
	model := ontology.NewIQModel()
	myQA := ontology.Q("MySpecialisedPIScore")
	model.MustDefineClass(myQA, ontology.UniversalPIScore2)
	reg := NewRegistry(model)
	reg.MustBind(Binding{Concept: ontology.UniversalPIScore2, Kind: ServiceResource, Locator: "local:parent"})

	b, err := reg.ResolveService(myQA)
	if err != nil {
		t.Fatalf("ResolveService via superclass: %v", err)
	}
	if b.Locator != "local:parent" {
		t.Errorf("Locator = %q", b.Locator)
	}
	// A direct binding takes precedence over the inherited one.
	reg.MustBind(Binding{Concept: myQA, Kind: ServiceResource, Locator: "local:own"})
	b, err = reg.ResolveService(myQA)
	if err != nil || b.Locator != "local:own" {
		t.Errorf("direct binding should win: %v, %v", b, err)
	}
	// Nearest ancestor wins over farther ones.
	reg2 := NewRegistry(model)
	reg2.MustBind(Binding{Concept: ontology.QualityAssertion, Kind: ServiceResource, Locator: "local:root"})
	reg2.MustBind(Binding{Concept: ontology.UniversalPIScore2, Kind: ServiceResource, Locator: "local:near"})
	b, err = reg2.ResolveService(myQA)
	if err != nil || b.Locator != "local:near" {
		t.Errorf("nearest ancestor should win: %v, %v", b, err)
	}
}

func TestGraphRoundTrip(t *testing.T) {
	reg := NewRegistry(nil)
	reg.MustBind(Binding{Concept: ontology.UniversalPIScore2, Kind: ServiceResource, Locator: "local:s"})
	reg.MustBind(Binding{Concept: ontology.ImprintHitEntry, Kind: DataResource, Locator: "sql:SELECT * FROM hits"})
	g := reg.ToGraph()
	back, err := FromGraph(g, nil)
	if err != nil {
		t.Fatalf("FromGraph: %v", err)
	}
	if len(back.Concepts()) != 2 {
		t.Fatalf("Concepts = %v", back.Concepts())
	}
	b, err := back.ResolveService(ontology.UniversalPIScore2)
	if err != nil || b.Locator != "local:s" {
		t.Errorf("service binding lost: %v, %v", b, err)
	}
	ds := back.Resolve(ontology.ImprintHitEntry)
	if len(ds) != 1 || ds[0].Kind != DataResource || ds[0].Locator != "sql:SELECT * FROM hits" {
		t.Errorf("data binding lost: %v", ds)
	}
}

func TestResolverLocal(t *testing.T) {
	local := services.NewRegistry()
	local.Add(&services.AssertionService{
		ServiceName: "HR_MC_score",
		QA:          qa.NewUniversalPIScore(ontology.Q("tag/s")),
	})
	r := &Resolver{Local: local}

	svc, err := r.Service(Binding{Concept: ontology.UniversalPIScore2, Kind: ServiceResource, Locator: "local:HR_MC_score"})
	if err != nil {
		t.Fatalf("Service: %v", err)
	}
	if svc.Describe().Name != "HR_MC_score" {
		t.Errorf("resolved wrong service: %v", svc.Describe())
	}
	if _, err := r.Service(Binding{Kind: ServiceResource, Locator: "local:ghost"}); err == nil {
		t.Error("undeployed local service should fail")
	}
	if _, err := r.Service(Binding{Kind: DataResource, Locator: "local:x"}); err == nil {
		t.Error("data binding should not resolve to a service")
	}
	if _, err := r.Service(Binding{Kind: ServiceResource, Locator: "ftp://weird"}); err == nil {
		t.Error("unsupported scheme should fail")
	}
}

func TestResolverHTTP(t *testing.T) {
	remote := services.NewRegistry()
	remote.Add(&services.AssertionService{
		ServiceName: "HR_MC_score",
		QA:          qa.NewUniversalPIScore(ontology.Q("tag/s")),
	})
	srv := httptest.NewServer(services.Handler(remote))
	defer srv.Close()

	r := &Resolver{}
	svc, err := r.Service(Binding{
		Concept: ontology.UniversalPIScore2,
		Kind:    ServiceResource,
		Locator: srv.URL + "/services/HR_MC_score",
	})
	if err != nil {
		t.Fatalf("Service: %v", err)
	}
	env := services.NewEnvelope(nil)
	if _, err := svc.Invoke(context.Background(), env); err != nil {
		t.Fatalf("remote invoke via binding: %v", err)
	}
	// Malformed endpoints are rejected.
	bad := []string{
		srv.URL,                   // no /services/
		srv.URL + "/services/",    // empty name
		srv.URL + "/services/a/b", // nested name
		"http:///services/x",      // empty base... actually base "http://" non-empty
	}
	for _, loc := range bad[:3] {
		if _, err := r.Service(Binding{Kind: ServiceResource, Locator: loc}); err == nil {
			t.Errorf("locator %q should be rejected", loc)
		}
	}
}
