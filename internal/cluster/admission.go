package cluster

import (
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"

	"qurator/internal/telemetry"
)

// Admission metrics.
var (
	admissionShed = telemetry.Default.CounterVec(
		"qurator_admission_shed_total",
		"Requests answered 429, by endpoint and reason (rate or queue-depth).",
		"endpoint", "reason")
	admissionAdmitted = telemetry.Default.CounterVec(
		"qurator_admission_admitted_total",
		"Requests admitted past admission control.",
		"endpoint")
	admissionInflight = telemetry.Default.GaugeVec(
		"qurator_admission_inflight",
		"Admitted requests currently in flight.",
		"endpoint")
)

// TenantHeader names the caller for per-tenant rate limiting; absent,
// all anonymous traffic shares one bucket.
const TenantHeader = "X-Qurator-Tenant"

// TokenBucket is a lazily-refilled rate limiter: capacity tokens, rate
// tokens/second, refilled on demand from the elapsed time — no ticker
// goroutine per tenant.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // capacity
	tokens float64
	last   time.Time
	now    func() time.Time
}

// NewTokenBucket builds a bucket holding burst tokens refilled at rate
// per second, starting full. A nil now uses the wall clock; tests inject
// a fake for deterministic refill math.
func NewTokenBucket(rate, burst float64, now func() time.Time) *TokenBucket {
	if now == nil {
		now = time.Now
	}
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst, last: now(), now: now}
}

// Take attempts to consume one token. When the bucket is empty it
// reports how long until the next token accrues — the Retry-After hint.
func (b *TokenBucket) Take() (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens = math.Min(b.burst, b.tokens+elapsed*b.rate)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	if b.rate <= 0 {
		return false, time.Hour // a zero-rate bucket never refills
	}
	need := 1 - b.tokens
	return false, time.Duration(need / b.rate * float64(time.Second))
}

// AdmissionConfig parameterises the fleet's front door.
type AdmissionConfig struct {
	// RatePerTenant is the sustained admitted requests/second per tenant
	// (identified by the X-Qurator-Tenant header). ≤ 0 disables rate
	// limiting.
	RatePerTenant float64
	// Burst is the per-tenant bucket capacity (default: max(1, rate)).
	Burst float64
	// MaxInflight sheds load by queue depth: more than this many
	// admitted requests concurrently in one endpoint answers 429.
	// ≤ 0 disables depth shedding.
	MaxInflight int
	// RetryAfterFloor is the minimum Retry-After advertised on a shed
	// (default 1s) — a zero hint would invite an immediate, equally
	// doomed retry.
	RetryAfterFloor time.Duration
	// Now injects a clock for tests.
	Now func() time.Time
}

// Admission is the shared admission controller quratord wraps around
// /stream/enact and /services/*: overload answers an honest 429 with a
// Retry-After the resilient client transport already honours, instead of
// queueing until something times out.
type Admission struct {
	cfg AdmissionConfig

	mu       sync.Mutex
	buckets  map[string]*TokenBucket
	inflight map[string]int
}

// NewAdmission builds an admission controller.
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.Burst <= 0 {
		cfg.Burst = math.Max(1, cfg.RatePerTenant)
	}
	if cfg.RetryAfterFloor <= 0 {
		cfg.RetryAfterFloor = time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Admission{
		cfg:      cfg,
		buckets:  make(map[string]*TokenBucket),
		inflight: make(map[string]int),
	}
}

// Wrap gates next behind admission control, accounting under the given
// endpoint label.
func (a *Admission) Wrap(endpoint string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ok, retryAfter, reason := a.admit(endpoint, r.Header.Get(TenantHeader)); !ok {
			admissionShed.With(endpoint, reason).Inc()
			w.Header().Set("Retry-After", fmt.Sprintf("%d", int(math.Ceil(retryAfter.Seconds()))))
			http.Error(w, "qurator: overloaded ("+reason+"), retry later", http.StatusTooManyRequests)
			return
		}
		admissionAdmitted.With(endpoint).Inc()
		defer a.release(endpoint)
		next.ServeHTTP(w, r)
	})
}

// admit applies depth shedding then the tenant bucket, reserving an
// inflight slot on success.
func (a *Admission) admit(endpoint, tenant string) (ok bool, retryAfter time.Duration, reason string) {
	if tenant == "" {
		tenant = "anonymous"
	}
	a.mu.Lock()
	if a.cfg.MaxInflight > 0 && a.inflight[endpoint] >= a.cfg.MaxInflight {
		a.mu.Unlock()
		return false, a.cfg.RetryAfterFloor, "queue-depth"
	}
	var b *TokenBucket
	if a.cfg.RatePerTenant > 0 {
		var found bool
		if b, found = a.buckets[tenant]; !found {
			b = NewTokenBucket(a.cfg.RatePerTenant, a.cfg.Burst, a.cfg.Now)
			a.buckets[tenant] = b
		}
	}
	if b != nil {
		if took, wait := b.Take(); !took {
			a.mu.Unlock()
			if wait < a.cfg.RetryAfterFloor {
				wait = a.cfg.RetryAfterFloor
			}
			return false, wait, "rate"
		}
	}
	a.inflight[endpoint]++
	depth := a.inflight[endpoint]
	a.mu.Unlock()
	admissionInflight.With(endpoint).Set(float64(depth))
	return true, 0, ""
}

func (a *Admission) release(endpoint string) {
	a.mu.Lock()
	a.inflight[endpoint]--
	depth := a.inflight[endpoint]
	a.mu.Unlock()
	admissionInflight.With(endpoint).Set(float64(depth))
}
