package cluster

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qurator/internal/resilience"
)

// fakeClock is a manually-advanced clock for deterministic refill math.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func TestTokenBucketRefillMath(t *testing.T) {
	clk := newFakeClock()
	b := NewTokenBucket(2, 2, clk.now) // 2 tokens/s, burst 2, starts full

	for i := 0; i < 2; i++ {
		if ok, _ := b.Take(); !ok {
			t.Fatalf("take %d: bucket should start with %d tokens", i, 2)
		}
	}
	ok, wait := b.Take()
	if ok {
		t.Fatalf("third take should fail on an empty bucket")
	}
	if wait != 500*time.Millisecond {
		t.Fatalf("retry hint = %v; want 500ms (1 token at 2 tokens/s)", wait)
	}

	clk.advance(500 * time.Millisecond)
	if ok, _ := b.Take(); !ok {
		t.Fatalf("after 500ms at 2/s exactly one token should have accrued")
	}
	if ok, _ := b.Take(); ok {
		t.Fatalf("the refilled token was already spent")
	}

	// Refill is capped at burst: a long idle does not bank unlimited
	// tokens.
	clk.advance(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := b.Take(); !ok {
			t.Fatalf("take %d after idle: want burst tokens back", i)
		}
	}
	if ok, _ := b.Take(); ok {
		t.Fatalf("idle refill exceeded burst capacity")
	}
}

func TestAdmissionRateShedsPerTenant(t *testing.T) {
	clk := newFakeClock()
	a := NewAdmission(AdmissionConfig{RatePerTenant: 1, Burst: 1, Now: clk.now})
	h := a.Wrap("test", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))

	do := func(tenant string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/stream/enact", nil)
		if tenant != "" {
			req.Header.Set(TenantHeader, tenant)
		}
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		return rr
	}

	if rr := do("alice"); rr.Code != http.StatusOK {
		t.Fatalf("first request: %d, want 200", rr.Code)
	}
	rr := do("alice")
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("second request inside the same second: %d, want 429", rr.Code)
	}
	secs, err := strconv.Atoi(rr.Header().Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q; want an integer ≥ 1", rr.Header().Get("Retry-After"))
	}
	// Another tenant has its own bucket.
	if rr := do("bob"); rr.Code != http.StatusOK {
		t.Fatalf("other tenant shed alongside alice: %d", rr.Code)
	}
	// ...and alice recovers once her bucket refills.
	clk.advance(time.Duration(secs) * time.Second)
	if rr := do("alice"); rr.Code != http.StatusOK {
		t.Fatalf("after Retry-After elapsed: %d, want 200", rr.Code)
	}
}

func TestAdmissionQueueDepthSheds(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInflight: 1})
	release := make(chan struct{})
	entered := make(chan struct{})
	var enteredOnce sync.Once
	h := a.Wrap("test", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		enteredOnce.Do(func() { close(entered) })
		<-release
		w.WriteHeader(http.StatusOK)
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	errc := make(chan error, 1)
	go func() {
		resp, err := http.Get(srv.URL)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-entered // the slot is occupied

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-depth request: %d, want 429", resp.StatusCode)
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q; want an integer ≥ 1", resp.Header.Get("Retry-After"))
	}

	close(release)
	if err := <-errc; err != nil {
		t.Fatalf("occupying request failed: %v", err)
	}
	// Slot freed: admitted again.
	resp2, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("after release: %d, want 200", resp2.StatusCode)
	}
}

// TestResilientClientRidesOutShedding is the end-to-end admission story:
// an overloaded node answers 429 + Retry-After, and the existing
// resilience.Transport (which honours Retry-After as a backoff floor)
// retries and completes once capacity returns — the caller sees one slow
// success, never an error.
func TestResilientClientRidesOutShedding(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInflight: 1})
	var sheds atomic.Int64
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "enacted")
	})
	wrapped := a.Wrap("test", inner)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := httptest.NewRecorder()
		wrapped.ServeHTTP(rec, r)
		if rec.Code == http.StatusTooManyRequests {
			sheds.Add(1)
		}
		for k, vs := range rec.Header() {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(rec.Code)
		w.Write(rec.Body.Bytes())
	}))
	defer srv.Close()

	// Occupy the single slot for a while, then free it.
	release := make(chan struct{})
	occupied := make(chan struct{})
	go func() {
		a.admit("test", "occupier")
		close(occupied)
		<-release
		a.release("test")
	}()
	<-occupied
	go func() {
		time.Sleep(300 * time.Millisecond)
		close(release)
	}()

	client := &http.Client{Transport: resilience.NewTransport(nil, resilience.Policy{
		MaxAttempts: 4,
		BaseBackoff: 50 * time.Millisecond,
	})}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("resilient client should have outlasted the shedding: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || string(body) != "enacted" {
		t.Fatalf("got %d %q; want 200 \"enacted\"", resp.StatusCode, body)
	}
	if sheds.Load() == 0 {
		t.Fatalf("the test never actually shed — the slot was free too early")
	}
}
