package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"qurator/internal/provenance"
	"qurator/internal/stream"
)

// lateWire is the union of the decision and summary NDJSON lines a raw
// /stream/enact response interleaves.
type lateWire struct {
	Item       string `json:"item"`
	Decided    *int   `json:"decided"`
	Late       bool   `json:"late"`
	Supersedes string `json:"supersedes"`
	Replayed   bool   `json:"replayed"`
	Error      string `json:"error"`
}

func enactRaw(t *testing.T, url, body string) (decisions []lateWire, summaries []lateWire) {
	t.Helper()
	resp, err := http.Post(url, "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var l lateWire
		if err := dec.Decode(&l); err != nil {
			t.Fatal(err)
		}
		if l.Error != "" {
			t.Fatalf("stream error record: %s", l.Error)
		}
		if l.Decided != nil {
			summaries = append(summaries, l)
		} else {
			decisions = append(decisions, l)
		}
	}
	return decisions, summaries
}

// TestLateReEmissionSupersedesAcrossNodeDeath extends the chaos suite to
// the late-data path: an evicted item re-arrives after its window's
// emission, producing a superseding re-emission whose q:Supersedes link
// must (a) land in the provenance-backed journal, (b) replicate to the
// peers, and (c) replay exactly-once — same key, no new journal entries —
// when the whole stream is re-sent to a survivor after the owner is
// killed.
func TestLateReEmissionSupersedesAcrossNodeDeath(t *testing.T) {
	logs := map[string]*provenance.Log{}
	inner := func(n *Node, mux *http.ServeMux) {
		l := provenance.NewLog() // durable-plane stand-in: graph-backed, no disk
		logs[n.Self().ID] = l
		n.AttachJournal(NewJournal(l))
		h := stream.Handler(paperCompiler(nil), stream.WithJournal(n.Journal()))
		mux.Handle("/stream/enact", n.EnactHandler(h))
	}
	n1 := startMember(t, "n1", nil, inner)
	n2 := startMember(t, "n2", []string{n1.srv.URL}, inner)
	n3 := startMember(t, "n3", []string{n1.srv.URL}, inner)
	fleet := map[string]*testMember{"n1": n1, "n2": n2, "n3": n3}
	waitFor(t, 5*time.Second, "fleet of 3", func() bool {
		return n1.node.Ring().Len() == 3 && n2.node.Ring().Len() == 3 && n3.node.Ring().Len() == 3
	})
	ownerID := n1.node.Ring().Owner("paper")
	owner := fleet[ownerID]
	t.Logf("late-chaos: %s owns the stream", ownerID)

	// Items 0..3 in 2-item tumbling windows, then item 0 re-arrives after
	// its window fired and evicted it: the windower must route it to the
	// retained window as a superseding late re-emission. (StreamClient's
	// per-item accounting assumes no re-decisions, so this drives the
	// endpoint raw.)
	var body strings.Builder
	for i := 0; i < 4; i++ {
		fmt.Fprintf(&body, "{\"item\":%q}\n", hit(i).Value())
	}
	fmt.Fprintf(&body, "{\"item\":%q}\n", hit(0).Value())
	enactURL := func(m *testMember) string { return m.srv.URL + "/stream/enact?view=paper&window=2" }

	decisions, summaries := enactRaw(t, enactURL(n1), body.String())
	if len(summaries) != 3 {
		t.Fatalf("got %d window summaries, want 3 (two windows + one late re-emission)", len(summaries))
	}
	re := summaries[2]
	if !re.Late || re.Supersedes == "" {
		t.Fatalf("third summary = %+v, want a late re-emission carrying its q:Supersedes key", re)
	}
	if len(decisions) != 6 {
		t.Fatalf("got %d decisions, want 6 (4 originals + 2 revised)", len(decisions))
	}

	// The supersession link must be queryable on the owner's provenance
	// log AND on every peer the journal replicated to.
	findLink := func(l *provenance.Log) (string, string) {
		for _, k := range l.EmissionKeys() {
			if old, ok := l.Superseded(k); ok {
				return k, old
			}
		}
		return "", ""
	}
	var newKey string
	for id, l := range logs {
		nk, old := findLink(l)
		if nk == "" || old != re.Supersedes {
			t.Fatalf("%s provenance lacks the q:Supersedes link (new %q, old %q, want old %q)",
				id, nk, old, re.Supersedes)
		}
		if newKey == "" {
			newKey = nk
		} else if nk != newKey {
			t.Fatalf("%s replicated a different re-emission key: %q vs %q", id, nk, newKey)
		}
	}
	if owner.node.Journal().Len() != 3 {
		t.Fatalf("owner journal holds %d entries, want 3", owner.node.Journal().Len())
	}

	// Kill the owner outright and let the survivors converge.
	owner.node.Stop()
	owner.srv.Close()
	t.Logf("late-chaos: %s killed", ownerID)
	var survivors []*testMember
	for id, m := range fleet {
		if id != ownerID {
			survivors = append(survivors, m)
		}
	}
	for _, m := range survivors {
		m := m
		waitFor(t, 5*time.Second, m.node.Self().ID+" shrinking to 2-node ring", func() bool {
			return m.node.Ring().Len() == 2 && m.node.Ring().Owner("paper") != ownerID
		})
	}

	// Replay the whole stream — late re-arrival included — at a survivor.
	// Every window, the superseding re-emission included, must answer from
	// the replicated journal: identical decisions, replayed summaries, no
	// journal growth.
	before := []int{survivors[0].node.Journal().Len(), survivors[1].node.Journal().Len()}
	dec2, sum2 := enactRaw(t, enactURL(survivors[0]), body.String())
	if len(sum2) != 3 {
		t.Fatalf("replay produced %d summaries, want 3", len(sum2))
	}
	for i, s := range sum2 {
		if !s.Replayed {
			t.Fatalf("replay summary %d = %+v, want it answered from the journal", i, s)
		}
	}
	if sum2[2].Supersedes != re.Supersedes {
		t.Fatalf("replayed re-emission supersedes %q, want %q", sum2[2].Supersedes, re.Supersedes)
	}
	if len(dec2) != len(decisions) {
		t.Fatalf("replay delivered %d decisions, want %d", len(dec2), len(decisions))
	}
	for i := range dec2 {
		if dec2[i].Item != decisions[i].Item {
			t.Fatalf("replay decision %d diverged: %q vs %q", i, dec2[i].Item, decisions[i].Item)
		}
	}
	if got := []int{survivors[0].node.Journal().Len(), survivors[1].node.Journal().Len()}; got[0] != before[0] || got[1] != before[1] {
		t.Fatalf("replay grew the survivors' journals: %v -> %v", before, got)
	}
}
