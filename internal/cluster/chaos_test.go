package cluster

import (
	"context"
	"testing"
	"time"
)

// TestNodeDeathMidStreamDeliversEveryDecisionExactlyOnce is the PR's
// acceptance scenario: a 3-node fleet enacts a windowed stream; the node
// that owns the stream is killed abruptly (connections severed, server
// gone — the in-process equivalent of SIGKILL) while it is inside a
// window; the survivors detect the death, rebalance the ring, and the
// client's replay completes the stream with every item decided exactly
// once.
//
// Determinism: the owner's annotator is gated to freeze at the first
// item of the second window, so the kill always lands mid-window — no
// sleep-and-hope timing.
func TestNodeDeathMidStreamDeliversEveryDecisionExactlyOnce(t *testing.T) {
	const (
		items  = 40
		window = 4
	)

	// Boot the first two nodes, compute who will own the "paper"
	// partition once all three IDs are on the ring, and arm the gate on
	// that node only.
	ids := []string{"n1", "n2", "n3"}
	ownerID := NewRing(ids, DefaultVirtualNodes).Owner("paper")
	gate := newAnnotGate(window) // first item of window 1

	gateFor := func(id string) *annotGate {
		if id == ownerID {
			return gate
		}
		return nil
	}
	n1 := startMember(t, "n1", nil, streamInner(gateFor("n1")))
	n2 := startMember(t, "n2", []string{n1.srv.URL}, streamInner(gateFor("n2")))
	n3 := startMember(t, "n3", []string{n1.srv.URL}, streamInner(gateFor("n3")))
	fleet := map[string]*testMember{"n1": n1, "n2": n2, "n3": n3}
	waitFor(t, 5*time.Second, "fleet of 3", func() bool {
		return n1.node.Ring().Len() == 3 && n2.node.Ring().Len() == 3 && n3.node.Ring().Len() == 3
	})
	owner := fleet[ownerID]
	t.Logf("chaos: %s owns the stream; it will die mid-window", ownerID)

	lines := hitLines(items)
	client := &StreamClient{
		Nodes:        []string{n1.srv.URL, n2.srv.URL, n3.srv.URL},
		View:         "paper",
		Window:       window,
		Pace:         time.Millisecond,
		MaxAttempts:  20,
		RetryBackoff: 50 * time.Millisecond,
		Logf:         t.Logf,
	}

	type outcome struct {
		res *EnactResult
		err error
	}
	done := make(chan outcome, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	go func() {
		res, err := client.Enact(ctx, lines)
		done <- outcome{res, err}
	}()

	// The owner is now provably inside window 1's enactment. Kill it:
	// sever every open connection (mid-stream bytes stop dead), refuse
	// new ones, and only then let the frozen handler unwind into the
	// closed socket.
	select {
	case <-gate.Reached:
	case <-ctx.Done():
		t.Fatal("the stream never reached the gated window")
	}
	owner.srv.CloseClientConnections()
	owner.node.Stop()
	close(gate.Release)
	owner.srv.Close()
	t.Logf("chaos: %s killed", ownerID)

	out := <-done
	if out.err != nil {
		t.Fatalf("stream did not survive the node death: %v (result so far: %+v)", out.err, out.res)
	}
	assertExactlyOnce(t, out.res.Decisions, items)
	if out.res.Resumes == 0 {
		t.Fatalf("the client never resumed — the kill did not actually interrupt the stream")
	}
	t.Logf("chaos: stream completed with %d windows, %d replayed, %d resumes, %d shed",
		out.res.Windows, out.res.Replayed, out.res.Resumes, out.res.Shed)

	// The survivors must have converged on a 2-node ring with a new
	// owner for the partition.
	survivors := []*testMember{}
	for id, m := range fleet {
		if id != ownerID {
			survivors = append(survivors, m)
		}
	}
	for _, m := range survivors {
		m := m
		waitFor(t, 5*time.Second, m.node.Self().ID+" shrinking to 2-node ring", func() bool {
			return m.node.Ring().Len() == 2
		})
		if newOwner := m.node.Ring().Owner("paper"); newOwner == ownerID {
			t.Fatalf("%s still routes the partition to the dead node", m.node.Self().ID)
		}
	}

	// Exactly-once, round two: replaying the ENTIRE stream now answers
	// every window from the replicated journal — nothing is re-enacted,
	// no journal entry is added, and the decisions match run one.
	before := []int{survivors[0].node.Journal().Len(), survivors[1].node.Journal().Len()}
	client2 := &StreamClient{
		Nodes:        []string{survivors[0].srv.URL, survivors[1].srv.URL},
		View:         "paper",
		Window:       window,
		MaxAttempts:  10,
		RetryBackoff: 50 * time.Millisecond,
	}
	res2, err := client2.Enact(ctx, lines)
	if err != nil {
		t.Fatalf("full replay run: %v", err)
	}
	assertExactlyOnce(t, res2.Decisions, items)
	if res2.Replayed != res2.Windows {
		t.Fatalf("replay run re-enacted %d of %d windows; the journal should have answered all of them",
			res2.Windows-res2.Replayed, res2.Windows)
	}
	for i := range out.res.Decisions {
		if out.res.Decisions[i].Item != res2.Decisions[i].Item {
			t.Fatalf("decision %d diverged between runs: %q vs %q",
				i, out.res.Decisions[i].Item, res2.Decisions[i].Item)
		}
	}
	if got := []int{survivors[0].node.Journal().Len(), survivors[1].node.Journal().Len()}; got[0] != before[0] || got[1] != before[1] {
		t.Fatalf("replay run grew the journals: %v -> %v", before, got)
	}
}
