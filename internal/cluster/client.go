package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"qurator/internal/stream"
	"qurator/internal/telemetry"
)

// StreamClient is a fleet-aware streaming enactment client with resume:
// it feeds items to one node, consumes the interleaved decision/summary
// NDJSON, and — when the connection dies mid-stream or the node sheds it
// with 429 — replays the not-yet-summarised tail of the input at the
// next node. Decisions are acknowledged only at window-summary
// granularity (a summary line means every decision of that window
// arrived), and unacknowledged decisions are discarded before a resume,
// so each item's decision is delivered to the caller exactly once: the
// server's emission journal deduplicates the enactment, the client's
// summary accounting deduplicates the delivery.
//
// Resume arithmetic assumes tumbling windows (every item is decided by
// exactly one window, in arrival order) — the fleet's partitioned
// enactment mode. Sliding windows re-decide context items and cannot be
// resumed by suffix replay.
type StreamClient struct {
	// Nodes are the fleet base URLs tried in round-robin order.
	Nodes []string
	// View names the quality view to enact (required).
	View string
	// Window is the tumbling window size (default 64).
	Window int
	// Partial, when "drop", suppresses the final short window.
	Partial string
	// Tenant stamps requests for per-tenant admission control.
	Tenant string
	// HTTPClient performs the requests (default http.DefaultClient; give
	// it no overall timeout — streams are long-lived).
	HTTPClient *http.Client
	// Pace inserts a delay before each item line is sent — test hooks
	// use it to hold a stream open long enough to kill a node under it.
	Pace time.Duration
	// MaxAttempts bounds connection attempts, including resumes and
	// 429-backoff retries (default 8).
	MaxAttempts int
	// RetryBackoff is the pause between attempts when the server gave no
	// Retry-After hint (default 250ms).
	RetryBackoff time.Duration
	// Logf receives resume events (default: discard).
	Logf func(format string, args ...any)
}

// EnactResult is the outcome of one fully-delivered stream.
type EnactResult struct {
	// TraceID identifies the enactment's distributed trace: the client
	// roots it and every node the stream touches (resumes included)
	// records its spans under it — GET /debug/traces/<id> on any fleet
	// node finds this node's fragment.
	TraceID string
	// Decisions holds exactly one decision per input item, in item order.
	Decisions []stream.Decision
	// Windows is the number of window summaries received (replays
	// included, re-received windows not double counted).
	Windows int
	// Replayed counts windows answered from a node's emission journal.
	Replayed int
	// Resumes counts mid-stream failovers to another node.
	Resumes int
	// Shed counts 429 responses backed off from.
	Shed int
}

// wireSummary is the window-summary NDJSON line (see stream.WriteResults);
// a line is a summary iff it has "decided" and no "item".
type wireSummary struct {
	Window   int    `json:"window"`
	Size     int    `json:"size"`
	Decided  int    `json:"decided"`
	Partial  bool   `json:"partial"`
	Failed   bool   `json:"failed"`
	Replayed bool   `json:"replayed"`
	Error    string `json:"error"`
}

// Enact streams the NDJSON item lines through the fleet until every
// item's decision is delivered, resuming across node failures.
func (c *StreamClient) Enact(ctx context.Context, lines []string) (res *EnactResult, err error) {
	if c.View == "" {
		return nil, fmt.Errorf("cluster: StreamClient needs a View")
	}
	if len(c.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: StreamClient needs at least one node")
	}
	// The client roots the enactment's distributed trace: every attempt
	// (resumes at other nodes included) carries the same traceparent, so
	// a failover shows up as two server spans under one trace instead of
	// two unrelated traces.
	ctx, span := telemetry.StartSpan(ctx, "client:stream")
	span.SetAttr("view", c.View)
	defer func() { span.EndErr(err) }()
	window := c.Window
	if window <= 0 {
		window = 64
	}
	maxAttempts := c.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 8
	}
	backoff := c.RetryBackoff
	if backoff <= 0 {
		backoff = 250 * time.Millisecond
	}
	client := c.HTTPClient
	if client == nil {
		client = http.DefaultClient
	}
	logf := c.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	res = &EnactResult{TraceID: span.TraceID}
	acked := 0 // items whose window summary arrived; the resume offset
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if acked >= len(lines) {
			break
		}
		node := strings.TrimSuffix(c.Nodes[attempt%len(c.Nodes)], "/")
		gained, retryAfter, err := c.streamOnce(ctx, client, node, window, lines[acked:], res, logf)
		acked += gained
		if err == nil && acked >= len(lines) {
			return res, nil
		}
		if ctx.Err() != nil {
			return res, ctx.Err()
		}
		if retryAfter > 0 {
			res.Shed++
			logf("cluster: client shed by %s, retrying after %s", node, retryAfter)
			select {
			case <-time.After(retryAfter):
			case <-ctx.Done():
				return res, ctx.Err()
			}
			continue
		}
		if err != nil {
			res.Resumes++
			logf("cluster: client resuming after %s failed at item %d/%d: %v",
				node, acked, len(lines), err)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return res, ctx.Err()
			}
			continue
		}
		// Clean end of stream but items unaccounted for. With dropped
		// partials that is the caller's configuration, not a failure;
		// otherwise treat it like a truncation — a proxy hop may have
		// terminated the response cleanly over a dead upstream — and
		// resume elsewhere.
		if c.Partial == "drop" {
			return res, nil
		}
		res.Resumes++
		logf("cluster: client resuming after %s ended early at item %d/%d", node, acked, len(lines))
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return res, ctx.Err()
		}
	}
	if acked >= len(lines) {
		return res, nil
	}
	return res, fmt.Errorf("cluster: gave up after %d attempts with %d of %d items undelivered",
		maxAttempts, len(lines)-acked, len(lines))
}

// streamOnce plays the remaining lines at one node, appending fully
// summarised windows to res. It returns how many items were acknowledged
// (windows fully summarised), a backoff hint when the node shed the
// request, and the error that ended the stream early (nil on clean end).
func (c *StreamClient) streamOnce(ctx context.Context, client *http.Client, node string,
	window int, lines []string, res *EnactResult, logf func(string, ...any)) (acked int, retryAfter time.Duration, err error) {

	q := url.Values{}
	q.Set("view", c.View)
	q.Set("window", strconv.Itoa(window))
	if c.Partial != "" {
		q.Set("partial", c.Partial)
	}
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		node+"/stream/enact?"+q.Encode(), pr)
	if err != nil {
		pw.Close()
		return 0, 0, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	if c.Tenant != "" {
		req.Header.Set(TenantHeader, c.Tenant)
	}
	telemetry.Inject(ctx, req.Header)

	// Producer: pace the items in so the response can interleave (and so
	// tests have a live stream to kill a node under).
	go func() {
		for _, line := range lines {
			if c.Pace > 0 {
				select {
				case <-time.After(c.Pace):
				case <-ctx.Done():
					pw.CloseWithError(ctx.Err())
					return
				}
			}
			if _, err := io.WriteString(pw, line+"\n"); err != nil {
				return // receiver gone; the read side reports the cause
			}
		}
		pw.Close()
	}()

	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusTooManyRequests {
		d := time.Second
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, perr := strconv.Atoi(s); perr == nil && secs > 0 {
				d = time.Duration(secs) * time.Second
			}
		}
		return 0, d, nil
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return 0, 0, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}

	// Consumer: buffer decisions until their window summary arrives, then
	// acknowledge the whole window at once. Decisions of a window whose
	// summary never arrives are discarded — the resume will get them
	// again (journal-replayed, not re-enacted).
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var pending []stream.Decision
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var probe map[string]json.RawMessage
		if err := json.Unmarshal([]byte(line), &probe); err != nil {
			return acked, 0, fmt.Errorf("cluster: bad NDJSON from %s: %w", node, err)
		}
		switch {
		case probe["item"] != nil:
			var d stream.Decision
			if err := json.Unmarshal([]byte(line), &d); err != nil {
				return acked, 0, err
			}
			pending = append(pending, d)
		case probe["decided"] != nil:
			var s wireSummary
			if err := json.Unmarshal([]byte(line), &s); err != nil {
				return acked, 0, err
			}
			logf("cluster: client summary from %s: window=%d size=%d decided=%d partial=%v replayed=%v failed=%v",
				node, s.Window, s.Size, s.Decided, s.Partial, s.Replayed, s.Failed)
			if s.Failed {
				return acked, 0, fmt.Errorf("cluster: window %d failed on %s: %s", s.Window, node, s.Error)
			}
			res.Decisions = append(res.Decisions, pending...)
			pending = pending[:0]
			res.Windows++
			if s.Replayed {
				res.Replayed++
			}
			acked += s.Decided
		case probe["error"] != nil:
			var msg string
			json.Unmarshal(probe["error"], &msg)
			return acked, 0, fmt.Errorf("cluster: stream error from %s: %s", node, msg)
		}
	}
	if err := sc.Err(); err != nil {
		return acked, 0, err
	}
	return acked, 0, nil
}
