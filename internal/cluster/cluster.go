// Package cluster turns N quratord processes into one enactment fleet.
// The paper's deployment story (§6) is a single service host; ROADMAP
// item 1 asks for the next order of magnitude — horizontal. This package
// supplies the four pieces:
//
//   - Membership: HTTP heartbeat probes with jitter drive each peer
//     through alive → suspect → dead; probe outcomes feed a
//     resilience.Breaker per peer, so "is this node healthy" and "should
//     I route work to it" are the same circuit-breaker question the
//     service fabric already answers for QA services.
//   - Partitioning: a consistent-hash ring (virtual nodes, deterministic
//     from the live member set — see Ring) assigns every stream
//     partition key and library view a single owning node.
//   - Forwarding: work that lands on the wrong node is transparently
//     proxied to its owner, with a hop header for loop protection
//     (a request forwarded once is served where it lands, even if ring
//     views disagree mid-rebalance).
//   - Failover: every emitted stream window is journaled under a
//     content-addressed idempotency key (the qcache fingerprint) in the
//     durable provenance log and replicated to peers BEFORE its
//     decisions reach the client. When a node dies mid-stream, the
//     client replays undelivered items at the new owner; journaled
//     windows answer from the journal (at-most-once enactment), fresh
//     windows enact normally (at-least-once delivery) — together,
//     exactly-once decision emission.
//
// Admission control (per-tenant token buckets, queue-depth load
// shedding, 429 + Retry-After) lives in this package too: the fleet's
// front door degrades predictably instead of falling over.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qurator/internal/resilience"
	"qurator/internal/telemetry"
)

// Cluster metrics, labelled by node ID so in-process fleets (tests, the
// examples) stay distinguishable on one registry.
var (
	clusterMembers = telemetry.Default.GaugeVec(
		"qurator_cluster_members",
		"Known fleet members by liveness status (self counts as alive).",
		"node", "status")
	clusterRingVersion = telemetry.Default.GaugeVec(
		"qurator_cluster_ring_version",
		"Monotonic ring rebuild counter; a bump means ownership moved.",
		"node")
	clusterProbes = telemetry.Default.CounterVec(
		"qurator_cluster_probes_total",
		"Heartbeat probes by result (ok or fail).",
		"node", "result")
	clusterTransitions = telemetry.Default.CounterVec(
		"qurator_cluster_member_transitions_total",
		"Member liveness transitions, labelled by the status entered.",
		"node", "to")
	clusterForwards = telemetry.Default.CounterVec(
		"qurator_cluster_forwards_total",
		"Enactment-request routing decisions by outcome.",
		"node", "outcome")
	clusterReplays = telemetry.Default.CounterVec(
		"qurator_cluster_window_replays_total",
		"Windows answered from the emission journal instead of re-enacted.",
		"node")
	clusterJournalEntries = telemetry.Default.CounterVec(
		"qurator_cluster_journal_entries_total",
		"Window emissions journaled, by origin (local enactment or peer replication).",
		"node", "origin")
)

// NodeInfo identifies one fleet member.
type NodeInfo struct {
	// ID is the member's stable identity (unique across the fleet).
	ID string `json:"id"`
	// Addr is the member's base URL, e.g. "http://10.0.0.7:9090".
	Addr string `json:"addr"`
}

// MemberStatus is the probe-derived liveness of a peer.
type MemberStatus int

const (
	// Alive: the last probe succeeded (or the member was just learned).
	Alive MemberStatus = iota
	// Suspect: SuspectAfter consecutive probes failed; the member keeps
	// its ring ownership — transient blips must not reshuffle the fleet.
	Suspect
	// Dead: DeadAfter consecutive probes failed; the member is removed
	// and the ring rebuilt. A dead node that heals rejoins explicitly.
	Dead
)

// String implements fmt.Stringer.
func (s MemberStatus) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("MemberStatus(%d)", int(s))
	}
}

// State is the node's own lifecycle position, reported by /readyz: the
// ring and the probes must agree on who can take work.
type State int32

const (
	// StateJoining: the node is contacting seeds; not ready for work.
	StateJoining State = iota
	// StateReady: membership established, taking work.
	StateReady
	// StateDraining: deregistered from the ring, finishing in-flight
	// requests; peers stop routing new work here.
	StateDraining
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateJoining:
		return "joining"
	case StateReady:
		return "ready"
	case StateDraining:
		return "draining"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Member is one peer as this node sees it.
type Member struct {
	Info     NodeInfo     `json:"info"`
	Status   MemberStatus `json:"-"`
	StatusS  string       `json:"status"`
	Strikes  int          `json:"strikes,omitempty"`
	LastSeen time.Time    `json:"lastSeen,omitempty"`
	Breaker  string       `json:"breaker,omitempty"`
}

// Config parameterises a fleet node.
type Config struct {
	// Self is this node's identity and advertised address (required).
	Self NodeInfo
	// Seeds are peer base URLs to join through. Empty starts (or
	// continues) a single-node fleet that others join.
	Seeds []string
	// HeartbeatInterval is the probe period (default 500ms); each tick
	// is jittered ±25% so a fleet started together does not probe in
	// lockstep.
	HeartbeatInterval time.Duration
	// SuspectAfter is the consecutive probe failures before a peer turns
	// suspect (default 2).
	SuspectAfter int
	// DeadAfter is the consecutive probe failures before a peer is
	// declared dead and the ring rebuilt (default 4).
	DeadAfter int
	// VirtualNodes per member on the ring (default DefaultVirtualNodes).
	VirtualNodes int
	// Client performs probes, joins and journal replication (default: a
	// plain client with ProbeTimeout per request). Tests inject a chaos
	// transport here to cut links.
	Client *http.Client
	// ForwardClient proxies mis-routed enactment requests to their ring
	// owner. Kept separate from Client because streams are long-lived: a
	// per-request timeout that is right for a probe would sever a
	// healthy stream mid-window. Default: no timeout.
	ForwardClient *http.Client
	// ProbeTimeout bounds one heartbeat probe (default 2s).
	ProbeTimeout time.Duration
	// Seed seeds the probe-jitter RNG (0 = fixed default).
	Seed int64
	// Discover, when set, is called once for every peer learned (the
	// internal/services scavenger hook: quratord wires this to
	// Framework.Scavenge so a joining node imports the fleet's deployed
	// services). Errors are logged, not fatal.
	Discover func(ctx context.Context, baseURL string) error
	// Logf receives membership events (default: discard).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 500 * time.Millisecond
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 2
	}
	if c.DeadAfter <= c.SuspectAfter {
		c.DeadAfter = c.SuspectAfter + 2
	}
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = DefaultVirtualNodes
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: c.ProbeTimeout}
	}
	if c.ForwardClient == nil {
		c.ForwardClient = &http.Client{}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Node is one fleet member: membership table, ring, journal, and the
// HTTP surface peers talk to.
type Node struct {
	cfg  Config
	self NodeInfo

	journal *Journal

	mu          sync.Mutex
	members     map[string]*memberState // peers only; self is implicit
	ring        *Ring
	ringVersion uint64
	breakers    map[string]*resilience.Breaker
	rng         *rand.Rand

	state   atomic.Int32
	stopCh  chan struct{}
	done    sync.WaitGroup
	started atomic.Bool

	// hbCtx/hbSpan are the node's long-lived heartbeat trace: every probe
	// this node sends carries the same traceparent, so heartbeat traffic
	// is traceable fleet-wide without minting a trace per probe (2/s per
	// peer would churn the recorder's trace ring into uselessness).
	hbCtx  context.Context
	hbSpan *telemetry.Span
}

type memberState struct {
	info     NodeInfo
	status   MemberStatus
	strikes  int
	lastSeen time.Time
}

// NewNode builds a node; call Start to join the fleet and begin probing.
// The journal defaults to a memory-backed one — AttachJournal before
// Start to make emissions durable.
func NewNode(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Self.ID == "" || cfg.Self.Addr == "" {
		return nil, fmt.Errorf("cluster: Config.Self needs both ID and Addr")
	}
	n := &Node{
		cfg:      cfg,
		self:     cfg.Self,
		members:  make(map[string]*memberState),
		breakers: make(map[string]*resilience.Breaker),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		stopCh:   make(chan struct{}),
	}
	n.journal = NewJournal(nil)
	n.journal.node = n
	n.state.Store(int32(StateJoining))
	n.rebuildRingLocked()
	return n, nil
}

// AttachJournal backs the emission journal with a provenance log (pass
// the framework's — durable when persistence is enabled). Must precede
// Start.
func (n *Node) AttachJournal(j *Journal) {
	j.node = n
	n.journal = j
}

// Journal returns the node's emission journal.
func (n *Node) Journal() *Journal { return n.journal }

// Self returns this node's identity.
func (n *Node) Self() NodeInfo { return n.self }

// State returns the node's lifecycle state.
func (n *Node) State() State { return State(n.state.Load()) }

// ReadinessCheck is the /readyz hook: an error while the node is not
// ready to take work (joining or draining), nil when ready.
func (n *Node) ReadinessCheck() error {
	if s := n.State(); s != StateReady {
		return fmt.Errorf("cluster: node %s is %s", n.self.ID, s)
	}
	return nil
}

// Start joins the fleet through the seeds and launches the probe loop.
// Joining is best-effort per seed: one reachable seed suffices; none
// reachable leaves a single-node fleet (peers may still join us).
func (n *Node) Start(ctx context.Context) error {
	if !n.started.CompareAndSwap(false, true) {
		return fmt.Errorf("cluster: node already started")
	}
	for _, seed := range n.cfg.Seeds {
		seed = strings.TrimSuffix(seed, "/")
		if seed == "" || seed == n.self.Addr {
			continue
		}
		if err := n.join(ctx, seed); err != nil {
			n.cfg.Logf("cluster: join via %s: %v", seed, err)
			continue
		}
	}
	n.state.Store(int32(StateReady))
	n.hbCtx, n.hbSpan = telemetry.StartSpan(context.Background(), "cluster:heartbeats")
	n.hbSpan.SetAttr("node", n.self.ID)
	n.updateMemberMetrics()
	n.done.Add(1)
	go n.probeLoop()
	n.cfg.Logf("cluster: node %s ready with %d peer(s)", n.self.ID, len(n.Peers()))
	return nil
}

// Stop halts the probe loop without deregistering (a crash, not a
// drain). Use Leave for graceful departure.
func (n *Node) Stop() {
	select {
	case <-n.stopCh:
	default:
		close(n.stopCh)
	}
	n.done.Wait()
	if n.hbSpan != nil {
		n.hbSpan.End()
		n.hbSpan = nil
	}
}

// Leave deregisters from every live peer — BEFORE the caller drains its
// HTTP server, so peers stop routing new work to a dying node — then
// stops the probe loop. The node answers /readyz non-200 from the first
// moment of Leave.
func (n *Node) Leave(ctx context.Context) {
	n.state.Store(int32(StateDraining))
	for _, p := range n.Peers() {
		body, _ := json.Marshal(n.self)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			p.Info.Addr+"/cluster/leave", bytes.NewReader(body))
		if err != nil {
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		if resp, err := n.cfg.Client.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	n.Stop()
	n.cfg.Logf("cluster: node %s left the fleet", n.self.ID)
}

// join announces this node to one seed and merges the member list the
// seed returns.
func (n *Node) join(ctx context.Context, seedURL string) error {
	body, _ := json.Marshal(n.self)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		seedURL+"/cluster/join", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("cluster: join %s: %s: %s", seedURL, resp.Status, bytes.TrimSpace(data))
	}
	var peers []NodeInfo
	if err := json.NewDecoder(resp.Body).Decode(&peers); err != nil {
		return fmt.Errorf("cluster: join %s: decoding member list: %w", seedURL, err)
	}
	for _, p := range peers {
		n.learn(p)
	}
	return nil
}

// learn adds (or revives) a peer as alive. Newly-learned peers trigger
// the Discover hook — how a joining node imports the fleet's deployed
// services through the scavenger.
func (n *Node) learn(info NodeInfo) {
	if info.ID == "" || info.ID == n.self.ID || info.Addr == "" {
		return
	}
	n.mu.Lock()
	m, known := n.members[info.ID]
	if known && m.status != Dead {
		m.info = info // address updates win
		n.mu.Unlock()
		return
	}
	n.members[info.ID] = &memberState{info: info, status: Alive, lastSeen: time.Now()}
	n.rebuildRingLocked()
	n.mu.Unlock()
	clusterTransitions.With(n.self.ID, "alive").Inc()
	n.updateMemberMetrics()
	n.cfg.Logf("cluster: node %s learned member %s (%s)", n.self.ID, info.ID, info.Addr)
	if n.cfg.Discover != nil {
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := n.cfg.Discover(ctx, info.Addr); err != nil {
				n.cfg.Logf("cluster: discover %s: %v", info.Addr, err)
			}
		}()
	}
}

// forget removes a peer (graceful leave or death) and rebuilds the ring.
func (n *Node) forget(id string, why string) {
	n.mu.Lock()
	if _, ok := n.members[id]; !ok {
		n.mu.Unlock()
		return
	}
	delete(n.members, id)
	n.rebuildRingLocked()
	n.mu.Unlock()
	clusterTransitions.With(n.self.ID, "dead").Inc()
	n.updateMemberMetrics()
	n.cfg.Logf("cluster: node %s removed member %s (%s)", n.self.ID, id, why)
}

// rebuildRingLocked recomputes the ring from self + non-dead members.
// Caller holds n.mu.
func (n *Node) rebuildRingLocked() {
	ids := make([]string, 0, len(n.members)+1)
	ids = append(ids, n.self.ID)
	for id, m := range n.members {
		if m.status != Dead {
			ids = append(ids, id)
		}
	}
	n.ring = NewRing(ids, n.cfg.VirtualNodes)
	n.ringVersion++
	clusterRingVersion.With(n.self.ID).Set(float64(n.ringVersion))
}

// Ring returns the current ring (immutable snapshot).
func (n *Node) Ring() *Ring {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ring
}

// Peers snapshots the known peers (not self), sorted by ID.
func (n *Node) Peers() []Member {
	n.mu.Lock()
	out := make([]Member, 0, len(n.members))
	for id, m := range n.members {
		out = append(out, Member{
			Info:     m.info,
			Status:   m.status,
			StatusS:  m.status.String(),
			Strikes:  m.strikes,
			LastSeen: m.lastSeen,
			Breaker:  n.breakerStateLocked(id),
		})
	}
	n.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Info.ID < out[j].Info.ID })
	return out
}

// Owner resolves a partition key to its owning member. ok is false only
// for an empty ring (cannot happen: self is always a member).
func (n *Node) Owner(key string) (NodeInfo, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	id := n.ring.Owner(key)
	if id == "" {
		return NodeInfo{}, false
	}
	if id == n.self.ID {
		return n.self, true
	}
	m, ok := n.members[id]
	if !ok {
		return NodeInfo{}, false
	}
	return m.info, true
}

// breakerFor returns (creating if needed) the peer's health breaker:
// probe outcomes feed it, forwarding consults it. Caller must NOT hold
// n.mu.
func (n *Node) breakerFor(id string) *resilience.Breaker {
	n.mu.Lock()
	defer n.mu.Unlock()
	b, ok := n.breakers[id]
	if !ok {
		b = resilience.NewBreaker(resilience.BreakerConfig{
			FailureThreshold: n.cfg.SuspectAfter,
			Cooldown:         2 * n.cfg.HeartbeatInterval,
		}, nil)
		n.breakers[id] = b
	}
	return b
}

func (n *Node) breakerStateLocked(id string) string {
	if b, ok := n.breakers[id]; ok {
		return b.State().String()
	}
	return ""
}

// probeLoop heartbeats every peer each (jittered) interval until Stop.
func (n *Node) probeLoop() {
	defer n.done.Done()
	for {
		d := n.cfg.HeartbeatInterval
		n.mu.Lock()
		jitter := time.Duration(n.rng.Int63n(int64(d)/2+1)) - d/4 // ±25%
		n.mu.Unlock()
		select {
		case <-n.stopCh:
			return
		case <-time.After(d + jitter):
		}
		if n.State() == StateDraining {
			return
		}
		n.probeAll()
	}
}

// probeAll heartbeats every known peer concurrently.
func (n *Node) probeAll() {
	var wg sync.WaitGroup
	for _, p := range n.Peers() {
		if p.Status == Dead {
			continue
		}
		wg.Add(1)
		go func(p Member) {
			defer wg.Done()
			n.probe(p.Info)
		}(p)
	}
	wg.Wait()
}

// probe heartbeats one peer and walks its liveness state machine.
func (n *Node) probe(info NodeInfo) {
	base := n.hbCtx
	if base == nil {
		base = context.Background()
	}
	ctx, cancel := context.WithTimeout(base, n.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		info.Addr+"/cluster/heartbeat?from="+n.self.ID, nil)
	if err != nil {
		return
	}
	req.Header.Set(heartbeatAddrHeader, n.self.Addr)
	telemetry.Inject(ctx, req.Header)
	br := n.breakerFor(info.ID)
	resp, err := n.cfg.Client.Do(req)
	var peers []NodeInfo
	ok := err == nil && resp.StatusCode == http.StatusOK
	if resp != nil {
		if ok {
			// Heartbeat responses piggyback the peer's member list —
			// lightweight anti-entropy, so a fleet converges on full
			// membership from any connected seed graph.
			_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&peers)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if ok {
		br.RecordSuccess()
		clusterProbes.With(n.self.ID, "ok").Inc()
		n.mu.Lock()
		if m, known := n.members[info.ID]; known {
			if m.status != Alive {
				clusterTransitions.With(n.self.ID, "alive").Inc()
			}
			m.status = Alive
			m.strikes = 0
			m.lastSeen = time.Now()
		}
		n.mu.Unlock()
		n.updateMemberMetrics()
		for _, p := range peers {
			n.learn(p)
		}
		return
	}
	br.RecordFailure()
	clusterProbes.With(n.self.ID, "fail").Inc()
	n.mu.Lock()
	m, known := n.members[info.ID]
	if !known {
		n.mu.Unlock()
		return
	}
	m.strikes++
	strikes := m.strikes
	if strikes >= n.cfg.SuspectAfter && m.status == Alive {
		m.status = Suspect
		n.mu.Unlock()
		clusterTransitions.With(n.self.ID, "suspect").Inc()
		n.updateMemberMetrics()
		n.cfg.Logf("cluster: node %s suspects %s (%d failed probes)", n.self.ID, info.ID, strikes)
		return
	}
	n.mu.Unlock()
	if strikes >= n.cfg.DeadAfter {
		n.forget(info.ID, fmt.Sprintf("%d failed probes", strikes))
	}
}

// updateMemberMetrics refreshes the per-status member gauges.
func (n *Node) updateMemberMetrics() {
	counts := map[MemberStatus]int{Alive: 1} // self
	n.mu.Lock()
	for _, m := range n.members {
		counts[m.status]++
	}
	n.mu.Unlock()
	for _, s := range []MemberStatus{Alive, Suspect, Dead} {
		clusterMembers.With(n.self.ID, s.String()).Set(float64(counts[s]))
	}
}
