package cluster

import (
	"io"
	"net/http"

	"qurator/internal/telemetry"
)

// PartitionKey extracts the routing key of an enactment request: the
// explicit ?partition= override when present, else the view set
// (?views=a,b,c — a merged stream is one unit of work and must land on
// one node whole), else the single view name. The key is
// request-granular on purpose — a window IS the collection for
// collection-scoped QAs (§5.1), so the items of one stream must be
// windowed and enacted on one node; splitting a stream's items across
// owners would change its decisions, not just its placement.
func PartitionKey(r *http.Request) string {
	q := r.URL.Query()
	if p := q.Get("partition"); p != "" {
		return p
	}
	if vs := q.Get("views"); vs != "" {
		return vs
	}
	return q.Get("view")
}

// EnactHandler routes enactment requests across the fleet: requests
// whose partition key this node owns are served by inner; the rest are
// proxied — full-duplex, flushed window-by-window — to the ring owner.
//
// Routing outcomes (the qurator_cluster_forwards_total label):
//
//	local          this node owns the key
//	loop-local     already forwarded once; served here whatever the ring
//	               says (two ring views mid-rebalance must not ping-pong)
//	shed-local     owner's breaker is open; served here rather than fed
//	               to a node the probes say is failing
//	remote         proxied to the owner
//	remote-failed  proxy failed before any response byte; the client
//	               gets 502 + Retry-After and replays elsewhere
func (n *Node) EnactHandler(inner http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := PartitionKey(r)
		if key == "" {
			inner.ServeHTTP(w, r) // let inner produce its own 400
			return
		}
		if r.Header.Get(forwardedHeader) != "" {
			clusterForwards.With(n.self.ID, "loop-local").Inc()
			inner.ServeHTTP(w, r)
			return
		}
		owner, ok := n.Owner(key)
		if !ok || owner.ID == n.self.ID {
			clusterForwards.With(n.self.ID, "local").Inc()
			inner.ServeHTTP(w, r)
			return
		}
		br := n.breakerFor(owner.ID)
		if !br.Allow() {
			// The probes think the owner is down. Serving locally keeps
			// the stream alive; the emission journal keeps the detour
			// exactly-once even if the owner was actually fine.
			clusterForwards.With(n.self.ID, "shed-local").Inc()
			inner.ServeHTTP(w, r)
			return
		}
		n.forward(w, r, owner, br)
	})
}

// forward proxies one enactment request to its ring owner, streaming the
// NDJSON response through as it arrives.
func (n *Node) forward(w http.ResponseWriter, r *http.Request, owner NodeInfo, br interface {
	RecordSuccess()
	RecordFailure()
}) {
	// The proxy writes response bytes while the upstream POST is still
	// consuming r.Body. Without full duplex, HTTP/1.x servers discard
	// the unread request body on the first response write — which would
	// silently drop in-flight items from a live stream.
	rc := http.NewResponseController(w)
	if err := rc.EnableFullDuplex(); err != nil {
		http.Error(w, "cluster: forward: connection does not support full-duplex streaming",
			http.StatusInternalServerError)
		return
	}
	// The forwarding hop is where a fleet trace is rooted: join the
	// client's trace if it sent a traceparent, mint one otherwise, and
	// pass the hop's span to the owner so its enactment spans hang off
	// this one — one trace ID across both nodes.
	ctx, _ := telemetry.Extract(r.Context(), r.Header)
	ctx, span := telemetry.StartSpan(ctx, "cluster:forward")
	span.SetAttr("owner", owner.ID)
	var fwdErr error
	defer func() { span.EndErr(fwdErr) }()
	req, err := http.NewRequestWithContext(ctx, r.Method,
		owner.Addr+r.URL.RequestURI(), r.Body)
	if err != nil {
		fwdErr = err
		http.Error(w, "cluster: forward: "+err.Error(), http.StatusInternalServerError)
		return
	}
	req.Header = r.Header.Clone()
	req.Header.Set(forwardedHeader, n.self.ID)
	telemetry.Inject(ctx, req.Header)
	resp, err := n.cfg.ForwardClient.Do(req)
	if err != nil {
		// Nothing was written yet, so the client sees a clean, retryable
		// failure and its replay logic picks another node.
		fwdErr = err
		br.RecordFailure()
		clusterForwards.With(n.self.ID, "remote-failed").Inc()
		w.Header().Set("Retry-After", "1")
		http.Error(w, "cluster: owner "+owner.ID+" unreachable: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	br.RecordSuccess()
	clusterForwards.With(n.self.ID, "remote").Inc()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	buf := make([]byte, 32*1024)
	for {
		nr, rerr := resp.Body.Read(buf)
		if nr > 0 {
			if _, werr := w.Write(buf[:nr]); werr != nil {
				return
			}
			// Per-chunk flush: the owner flushes per window, and this
			// hop must not re-buffer those windows or the client loses
			// the "first decisions before last item" property.
			_ = rc.Flush()
		}
		if rerr == io.EOF {
			return
		}
		if rerr != nil {
			// Mid-stream owner death: the response status is already
			// committed, so the truncation must be made VISIBLE — ending
			// the handler normally would send a clean chunked terminator
			// and the client would mistake a half-delivered stream for a
			// complete one. Aborting tears the connection down so the
			// client's resume logic takes over. The deferred EndErr still
			// runs, so the truncated hop is recorded before the abort.
			fwdErr = rerr
			br.RecordFailure()
			panic(http.ErrAbortHandler)
		}
	}
}
