package cluster

import (
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"
)

// echoInner mounts an inner "enactment" handler that reports which node
// served the request — enough to observe routing without real streams.
func echoInner(id string) func(*Node, *http.ServeMux) {
	return func(n *Node, mux *http.ServeMux) {
		mux.Handle("/stream/enact", n.EnactHandler(http.HandlerFunc(
			func(w http.ResponseWriter, r *http.Request) {
				fmt.Fprintf(w, "served-by:%s", id)
			})))
	}
}

// keyOwnedBy hunts for a partition key the given member owns — the ring
// is deterministic, so the test just probes candidates.
func keyOwnedBy(t *testing.T, r *Ring, owner string) string {
	t.Helper()
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("view-%d", i)
		if r.Owner(key) == owner {
			return key
		}
	}
	t.Fatalf("no key owned by %s in 1000 candidates", owner)
	return ""
}

func serveBody(t *testing.T, url string, hdr map[string]string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func TestForwardRoutesToOwner(t *testing.T) {
	n1 := startMember(t, "n1", nil, echoInner("n1"))
	n2 := startMember(t, "n2", []string{n1.srv.URL}, echoInner("n2"))
	waitFor(t, 3*time.Second, "fleet of 2", func() bool {
		return n1.node.Ring().Len() == 2 && n2.node.Ring().Len() == 2
	})

	ownedByN2 := keyOwnedBy(t, n1.node.Ring(), "n2")
	ownedByN1 := keyOwnedBy(t, n1.node.Ring(), "n1")

	// Mis-routed request: n1 proxies to the owner n2.
	if code, body := serveBody(t, n1.srv.URL+"/stream/enact?partition="+ownedByN2, nil); code != 200 || body != "served-by:n2" {
		t.Fatalf("forwarded request: %d %q; want n2 to serve it", code, body)
	}
	// Correctly-routed request: served locally.
	if code, body := serveBody(t, n1.srv.URL+"/stream/enact?partition="+ownedByN1, nil); code != 200 || body != "served-by:n1" {
		t.Fatalf("local request: %d %q; want n1 to serve it", code, body)
	}
	// The ?view= parameter is the default partition key.
	if code, body := serveBody(t, n1.srv.URL+"/stream/enact?view="+ownedByN2, nil); code != 200 || body != "served-by:n2" {
		t.Fatalf("view-keyed request: %d %q; want n2 to serve it", code, body)
	}
}

func TestForwardLoopProtection(t *testing.T) {
	n1 := startMember(t, "n1", nil, echoInner("n1"))
	n2 := startMember(t, "n2", []string{n1.srv.URL}, echoInner("n2"))
	waitFor(t, 3*time.Second, "fleet of 2", func() bool {
		return n1.node.Ring().Len() == 2 && n2.node.Ring().Len() == 2
	})
	ownedByN2 := keyOwnedBy(t, n1.node.Ring(), "n2")

	// A request already forwarded once is served where it lands, even if
	// this node's ring says someone else owns it — the hop budget is 1.
	code, body := serveBody(t, n1.srv.URL+"/stream/enact?partition="+ownedByN2,
		map[string]string{forwardedHeader: "n2"})
	if code != 200 || body != "served-by:n1" {
		t.Fatalf("forwarded-marked request: %d %q; want n1 to serve it locally", code, body)
	}
}

func TestForwardFallsBackWhenOwnerBreakerOpen(t *testing.T) {
	n1 := startMember(t, "n1", nil, echoInner("n1"))
	n2 := startMember(t, "n2", []string{n1.srv.URL}, echoInner("n2"))
	waitFor(t, 3*time.Second, "fleet of 2", func() bool {
		return n1.node.Ring().Len() == 2 && n2.node.Ring().Len() == 2
	})
	ownedByN2 := keyOwnedBy(t, n1.node.Ring(), "n2")

	// Trip n1's breaker for n2 (as failed probes would).
	br := n1.node.breakerFor("n2")
	for i := 0; i < 10; i++ {
		br.RecordFailure()
	}
	if br.Allow() {
		t.Fatalf("breaker should be open after consecutive failures")
	}
	code, body := serveBody(t, n1.srv.URL+"/stream/enact?partition="+ownedByN2, nil)
	if code != 200 || body != "served-by:n1" {
		t.Fatalf("with owner breaker open: %d %q; want local fallback on n1", code, body)
	}
}

func TestForwardUnreachableOwnerAnswers502WithRetryAfter(t *testing.T) {
	n1 := startMember(t, "n1", nil, echoInner("n1"))
	n2 := startMember(t, "n2", []string{n1.srv.URL}, echoInner("n2"))
	waitFor(t, 3*time.Second, "fleet of 2", func() bool {
		return n1.node.Ring().Len() == 2 && n2.node.Ring().Len() == 2
	})
	ownedByN2 := keyOwnedBy(t, n1.node.Ring(), "n2")

	// Cut only the forwarding link (probes share the same chaos
	// transport, but one failed forward comes first).
	n1.ch.Partition(n2.host())
	defer n1.ch.Heal()

	req, _ := http.NewRequest(http.MethodPost, n1.srv.URL+"/stream/enact?partition="+ownedByN2, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("unreachable owner: %d; want 502", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("502 from a dead forward should carry Retry-After so clients replay elsewhere")
	}
}
