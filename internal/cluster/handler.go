package cluster

import (
	"encoding/json"
	"net/http"
	"strings"

	"qurator/internal/telemetry"
)

// heartbeatAddrHeader carries the prober's advertised address on a
// heartbeat, so being probed is itself a way to learn a peer — the
// membership graph converges from any connected seeding.
const heartbeatAddrHeader = "X-Qurator-Node-Addr"

// forwardedHeader marks a request already routed once by a fleet node.
// A forwarded request is always served where it lands: if two nodes'
// rings disagree mid-rebalance, the second hop wins rather than looping.
const forwardedHeader = "X-Qurator-Forwarded"

// Status is the GET /cluster response: one node's view of the fleet.
type Status struct {
	Self        NodeInfo `json:"self"`
	State       string   `json:"state"`
	RingVersion uint64   `json:"ringVersion"`
	RingMembers []string `json:"ringMembers"`
	Members     []Member `json:"members"`
	Journal     int      `json:"journalEntries"`
	// Owner resolves the ?key= query parameter, when one was given.
	Owner *OwnerInfo `json:"owner,omitempty"`
}

// OwnerInfo is the ring resolution of one partition key.
type OwnerInfo struct {
	Key  string `json:"key"`
	Node string `json:"node"`
	Addr string `json:"addr"`
	Self bool   `json:"self"`
}

// Handler serves the fleet-coordination endpoints under /cluster:
//
//	GET  /cluster                 status: members, ring, journal depth
//	GET  /cluster?key=K           ...plus which member owns partition K
//	GET  /cluster/heartbeat?from= liveness probe; piggybacks member list
//	POST /cluster/join            NodeInfo body → member list
//	POST /cluster/leave           NodeInfo body → removed from ring
//	POST /cluster/journal         JournalEntry body → absorbed
func (n *Node) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch strings.TrimSuffix(r.URL.Path, "/") {
		case "/cluster":
			n.handleStatus(w, r)
		case "/cluster/heartbeat":
			n.handleHeartbeat(w, r)
		case "/cluster/join":
			n.handleJoin(w, r)
		case "/cluster/leave":
			n.handleLeave(w, r)
		case "/cluster/journal":
			n.handleJournal(w, r)
		default:
			http.NotFound(w, r)
		}
	})
}

func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "cluster: GET only", http.StatusMethodNotAllowed)
		return
	}
	n.mu.Lock()
	version := n.ringVersion
	ringMembers := n.ring.Members()
	n.mu.Unlock()
	st := Status{
		Self:        n.self,
		State:       n.State().String(),
		RingVersion: version,
		RingMembers: ringMembers,
		Members:     n.Peers(),
		Journal:     n.journal.Len(),
	}
	if key := r.URL.Query().Get("key"); key != "" {
		if owner, ok := n.Owner(key); ok {
			st.Owner = &OwnerInfo{Key: key, Node: owner.ID, Addr: owner.Addr, Self: owner.ID == n.self.ID}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(st)
}

// handleHeartbeat answers liveness probes. Draining nodes answer 503 so
// peers mark them down and the ring sheds them without waiting for the
// process to exit. The 200 body is this node's member list — the
// anti-entropy piggyback that spreads membership fleet-wide.
func (n *Node) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if n.State() == StateDraining {
		http.Error(w, "cluster: draining", http.StatusServiceUnavailable)
		return
	}
	// Probes carry the sender's long-lived heartbeat trace; ack under it
	// only when a traceparent actually arrived — an un-traced probe must
	// not mint a fresh trace per heartbeat.
	if ctx, traced := telemetry.Extract(r.Context(), r.Header); traced {
		_, span := telemetry.StartSpan(ctx, "cluster:heartbeat-ack")
		span.SetAttr("node", n.self.ID)
		defer span.End()
	}
	// Being probed teaches us the prober.
	if from := r.URL.Query().Get("from"); from != "" {
		if addr := r.Header.Get(heartbeatAddrHeader); addr != "" {
			n.learn(NodeInfo{ID: from, Addr: addr})
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(n.memberList())
}

func (n *Node) handleJoin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "cluster: POST a NodeInfo", http.StatusMethodNotAllowed)
		return
	}
	var info NodeInfo
	if err := json.NewDecoder(r.Body).Decode(&info); err != nil || info.ID == "" || info.Addr == "" {
		http.Error(w, "cluster: join body must be {\"id\":..., \"addr\":...}", http.StatusBadRequest)
		return
	}
	if info.ID == n.self.ID && info.Addr != n.self.Addr {
		// Two distinct processes claiming one identity would split the
		// ring's ownership map; refuse the latecomer loudly.
		http.Error(w, "cluster: node ID "+info.ID+" is already taken", http.StatusConflict)
		return
	}
	n.learn(info)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(n.memberList())
}

func (n *Node) handleLeave(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "cluster: POST a NodeInfo", http.StatusMethodNotAllowed)
		return
	}
	var info NodeInfo
	if err := json.NewDecoder(r.Body).Decode(&info); err != nil || info.ID == "" {
		http.Error(w, "cluster: leave body must be {\"id\":...}", http.StatusBadRequest)
		return
	}
	n.forget(info.ID, "graceful leave")
	w.WriteHeader(http.StatusOK)
}

func (n *Node) handleJournal(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "cluster: POST a JournalEntry", http.StatusMethodNotAllowed)
		return
	}
	var e JournalEntry
	if err := json.NewDecoder(r.Body).Decode(&e); err != nil {
		http.Error(w, "cluster: bad journal entry: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := n.journal.Absorb(e); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusOK)
}

// memberList is the fleet as this node will vouch for it: itself plus
// every peer it currently sees as Alive. Suspect peers are deliberately
// NOT vouched for — if they were, two survivors of a node death would
// keep resurrecting the corpse in each other's member tables (one
// removes it at DeadAfter strikes while the other, still at suspect,
// re-teaches it via the piggyback), and the ring would never shed the
// dead node.
func (n *Node) memberList() []NodeInfo {
	out := []NodeInfo{n.self}
	for _, p := range n.Peers() {
		if p.Status == Alive {
			out = append(out, p.Info)
		}
	}
	return out
}
