package cluster

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"qurator/internal/annotstore"
	"qurator/internal/binding"
	"qurator/internal/compiler"
	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/ops"
	"qurator/internal/qa"
	"qurator/internal/qvlang"
	"qurator/internal/rdf"
	"qurator/internal/services"
	"qurator/internal/stream"
)

func hit(i int) evidence.Item {
	return rdf.IRI(fmt.Sprintf("urn:lsid:test.org:hit:%d", i))
}

func hitIndex(it evidence.Item) int {
	s := it.Value()
	n, err := strconv.Atoi(s[strings.LastIndex(s, ":")+1:])
	if err != nil {
		panic(err)
	}
	return n
}

// hitLines renders n NDJSON item lines for the streaming client.
func hitLines(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf(`{"item":%q}`, hit(i).Value())
	}
	return out
}

// annotGate lets a test freeze one node's enactment at a chosen item —
// the deterministic stand-in for "the node was mid-window when it died".
// When armed, the first window containing the trigger item signals
// Reached and then blocks until Release is closed.
type annotGate struct {
	trigger int
	armed   atomic.Bool
	Reached chan struct{}
	Release chan struct{}
}

func newAnnotGate(trigger int) *annotGate {
	g := &annotGate{
		trigger: trigger,
		Reached: make(chan struct{}),
		Release: make(chan struct{}),
	}
	g.armed.Store(true)
	return g
}

// identityAnnotator derives evidence from item identity alone — the same
// item gets the same evidence on every node and every re-enactment, the
// determinism the replay comparisons rest on. Even hits strong, odd weak.
// A non-nil gate makes the annotator freeze per annotGate.
func identityAnnotator(gate *annotGate) ops.Annotator {
	return ops.AnnotatorFunc{
		ClassIRI: ontology.ImprintOutputAnnotation,
		Types: []rdf.Term{
			ontology.HitRatio, ontology.Coverage, ontology.Masses, ontology.PeptidesCount,
		},
		Fn: func(items []evidence.Item, repo annotstore.Store) error {
			if gate != nil {
				for _, it := range items {
					if hitIndex(it) == gate.trigger && gate.armed.CompareAndSwap(true, false) {
						close(gate.Reached)
						<-gate.Release
					}
				}
			}
			for _, it := range items {
				i := hitIndex(it)
				hr, mc := 0.9, 0.8
				if i%2 == 1 {
					hr, mc = 0.15, 0.1
				}
				puts := []annotstore.Annotation{
					{Item: it, Type: ontology.HitRatio, Value: evidence.Float(hr)},
					{Item: it, Type: ontology.Coverage, Value: evidence.Float(mc)},
					{Item: it, Type: ontology.Masses, Value: evidence.Int(int64(10 + i%7))},
					{Item: it, Type: ontology.PeptidesCount, Value: evidence.Int(8)},
				}
				for _, a := range puts {
					a.Source = ontology.ImprintOutputAnnotation
					if err := repo.Put(a); err != nil {
						return err
					}
				}
			}
			return nil
		},
	}
}

// paperCompiler builds a per-request CompileFunc over this node's own
// framework plumbing — mirroring what quratord does per node, without
// importing the root package.
func paperCompiler(gate *annotGate) stream.CompileFunc {
	return func(view string) (*compiler.Compiled, error) {
		model := ontology.NewIQModel()
		repos := annotstore.NewRegistry()
		local := services.NewRegistry()
		local.Add(&services.AnnotatorService{
			ServiceName:  "ImprintOutputAnnotator",
			Annotator:    identityAnnotator(gate),
			Repositories: repos,
		})
		local.Add(&services.AssertionService{
			ServiceName: "HR_MC_score",
			QA:          qa.NewUniversalPIScore(qvlang.TagKeyFor("HR_MC")),
		})
		local.Add(&services.AssertionService{
			ServiceName: "HR_score",
			QA:          qa.NewHRScore(qvlang.TagKeyFor("HR")),
		})
		local.Add(&services.AssertionService{
			ServiceName: "PIScoreClassifier",
			QA:          qa.NewPIScoreClassifier(),
		})
		bindings := binding.NewRegistry(model)
		bindings.MustBind(binding.Binding{Concept: ontology.ImprintOutputAnnotation, Kind: binding.ServiceResource, Locator: "local:ImprintOutputAnnotator"})
		bindings.MustBind(binding.Binding{Concept: ontology.UniversalPIScore2, Kind: binding.ServiceResource, Locator: "local:HR_MC_score"})
		bindings.MustBind(binding.Binding{Concept: ontology.HRScoreAssertion, Kind: binding.ServiceResource, Locator: "local:HR_score"})
		bindings.MustBind(binding.Binding{Concept: ontology.PIScoreClassifier, Kind: binding.ServiceResource, Locator: "local:PIScoreClassifier"})
		c := &compiler.Compiler{
			Bindings:     bindings,
			Resolver:     &binding.Resolver{Local: local},
			Repositories: repos,
		}
		v, err := qvlang.Parse([]byte(qvlang.PaperViewXML))
		if err != nil {
			return nil, err
		}
		r, err := qvlang.Resolve(v, model)
		if err != nil {
			return nil, err
		}
		return c.Compile(r)
	}
}

// streamInner mounts a real journaled streaming endpoint behind the
// node's fleet router — the full production wiring, in-process.
func streamInner(gate *annotGate) func(*Node, *http.ServeMux) {
	return func(n *Node, mux *http.ServeMux) {
		inner := stream.Handler(paperCompiler(gate), stream.WithJournal(n.Journal()))
		mux.Handle("/stream/enact", n.EnactHandler(inner))
	}
}

// assertExactlyOnce fails unless the decisions cover items 0..n-1 each
// exactly once, in order.
func assertExactlyOnce(t *testing.T, decisions []stream.Decision, n int) {
	t.Helper()
	if len(decisions) != n {
		t.Fatalf("delivered %d decisions for %d items", len(decisions), n)
	}
	counts := make(map[string]int, n)
	for _, d := range decisions {
		counts[d.Item]++
	}
	for i := 0; i < n; i++ {
		if c := counts[hit(i).Value()]; c != 1 {
			order := make([]int, len(decisions))
			for j, d := range decisions {
				order[j] = hitIndex(rdf.IRI(d.Item))
			}
			t.Fatalf("item %d decided %d times; want exactly once (delivery order: %v)", i, c, order)
		}
	}
	for i, d := range decisions {
		if d.Item != hit(i).Value() {
			t.Fatalf("decision %d is for %s; want %s (in-order delivery)", i, d.Item, hit(i).Value())
		}
	}
}
