package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"qurator/internal/provenance"
	"qurator/internal/stream"
)

// JournalEntry is one replicated window emission on the wire.
type JournalEntry struct {
	Key    string              `json:"key"`
	Result stream.WindowResult `json:"result"`
}

// Journal is the fleet's emission record: it implements
// stream.WindowJournal so the streaming enactor consults it before
// enacting and commits into it before emitting. Backed by the durable
// provenance log when one is attached (entries survive restarts via the
// metadata WAL) and replicated to live peers on commit, so a window
// decided on a node that dies a millisecond later is still recognised —
// and its original decisions replayed — when the client resumes on the
// new owner. That commit-replicate-then-emit ordering is the at-most-once
// half of the fleet's exactly-once argument (the replaying client is the
// at-least-once half).
type Journal struct {
	node *Node           // set by AttachJournal; nil when standalone
	log  *provenance.Log // durable backing; nil = memory only

	mu  sync.Mutex
	mem map[string]stream.WindowResult
}

// NewJournal builds a journal over the given provenance log. A nil log
// keeps emissions in memory only — fine for tests, not for failover
// across process restarts.
func NewJournal(log *provenance.Log) *Journal {
	return &Journal{log: log, mem: make(map[string]stream.WindowResult)}
}

func (j *Journal) nodeID() string {
	if j.node != nil {
		return j.node.self.ID
	}
	return "standalone"
}

// Len returns the number of journaled emissions.
func (j *Journal) Len() int {
	j.mu.Lock()
	n := len(j.mem)
	j.mu.Unlock()
	if j.log != nil {
		// The log may hold entries recovered from the WAL that were never
		// looked up (and so never cached) this run.
		if ln := j.log.Emissions(); ln > n {
			n = ln
		}
	}
	return n
}

// Lookup implements stream.WindowJournal: the journaled result for key,
// whether committed locally, absorbed from a peer, or recovered from the
// provenance WAL after a restart.
func (j *Journal) Lookup(key string) (stream.WindowResult, bool) {
	j.mu.Lock()
	res, ok := j.mem[key]
	j.mu.Unlock()
	if !ok && j.log != nil {
		payload, found := j.log.Emission(key)
		if !found {
			return stream.WindowResult{}, false
		}
		if err := json.Unmarshal([]byte(payload), &res); err != nil {
			return stream.WindowResult{}, false
		}
		j.mu.Lock()
		j.mem[key] = res
		j.mu.Unlock()
		ok = true
	}
	if ok {
		clusterReplays.With(j.nodeID()).Inc()
	}
	return res, ok
}

// Commit implements stream.WindowJournal: record the emission durably,
// then replicate it to every live peer. The local write failing is fatal
// to the window (the enactor refuses to emit an unjournaled window); a
// replication failure is fatal only when NO live peer accepted the entry
// while peers exist — with zero replicas, this node's death would lose
// the at-most-once guarantee for a window whose decisions already
// escaped.
func (j *Journal) Commit(key string, res stream.WindowResult) error {
	if err := j.record(key, res, "local"); err != nil {
		return err
	}
	if j.node == nil {
		return nil
	}
	peers := j.node.Peers()
	live := peers[:0]
	for _, p := range peers {
		if p.Status == Alive {
			live = append(live, p)
		}
	}
	if len(live) == 0 {
		return nil
	}
	body, err := json.Marshal(JournalEntry{Key: key, Result: res})
	if err != nil {
		return fmt.Errorf("cluster: journal entry %s: %w", key, err)
	}
	var (
		wg sync.WaitGroup
		ok int32
		mu sync.Mutex
	)
	for _, p := range live {
		wg.Add(1)
		go func(p Member) {
			defer wg.Done()
			if j.replicate(p, body) == nil {
				mu.Lock()
				ok++
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()
	if ok == 0 {
		return fmt.Errorf("cluster: journal entry %s replicated to 0 of %d live peer(s)", key, len(live))
	}
	return nil
}

func (j *Journal) replicate(p Member, body []byte) error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		p.Info.Addr+"/cluster/journal", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := j.node.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: replicate to %s: %s", p.Info.ID, resp.Status)
	}
	return nil
}

// Absorb stores an entry replicated from a peer. Set-semantic: absorbing
// the same key twice (two peers racing, or a retried replication) is a
// no-op, so replication can be freely retried.
func (j *Journal) Absorb(e JournalEntry) error {
	if e.Key == "" {
		return fmt.Errorf("cluster: journal entry without key")
	}
	j.mu.Lock()
	_, dup := j.mem[e.Key]
	j.mu.Unlock()
	if dup {
		return nil
	}
	return j.record(e.Key, e.Result, "peer")
}

// record writes one entry through to the provenance log (when attached)
// and the memory index.
func (j *Journal) record(key string, res stream.WindowResult, origin string) error {
	if j.log != nil {
		payload, err := json.Marshal(res)
		if err != nil {
			return fmt.Errorf("cluster: journal entry %s: %w", key, err)
		}
		if err := j.log.RecordEmission(key, res.View, string(payload)); err != nil {
			return fmt.Errorf("cluster: journal entry %s: %w", key, err)
		}
		// A late re-emission revises an earlier window's decisions: link
		// the two emissions with q:Supersedes so the provenance graph
		// keeps the full decision lineage across failovers.
		if res.Supersedes != "" {
			if err := j.log.RecordSupersession(key, res.Supersedes); err != nil {
				return fmt.Errorf("cluster: journal entry %s: %w", key, err)
			}
		}
	}
	j.mu.Lock()
	_, dup := j.mem[key]
	j.mem[key] = res
	j.mu.Unlock()
	if !dup {
		clusterJournalEntries.With(j.nodeID(), origin).Inc()
	}
	return nil
}
