package cluster

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"qurator/internal/mstore"
	"qurator/internal/provenance"
	"qurator/internal/stream"
)

func TestJournalAbsorbIsSetSemantic(t *testing.T) {
	j := NewJournal(nil)
	e := JournalEntry{Key: "k1", Result: stream.WindowResult{Seq: 0, Size: 4, View: "v"}}
	if err := j.Absorb(e); err != nil {
		t.Fatal(err)
	}
	if err := j.Absorb(e); err != nil {
		t.Fatalf("duplicate absorb must be a no-op, got %v", err)
	}
	if j.Len() != 1 {
		t.Fatalf("Len = %d after duplicate absorb; want 1", j.Len())
	}
	if _, ok := j.Lookup("k1"); !ok {
		t.Fatalf("absorbed entry not found")
	}
	if _, ok := j.Lookup("missing"); ok {
		t.Fatalf("phantom journal entry")
	}
}

func TestJournalSurvivesRestartThroughProvenance(t *testing.T) {
	dir := t.TempDir()
	log := provenance.NewLog()
	if err := log.Persist(filepath.Join(dir, "prov"), mstore.Options{}); err != nil {
		t.Fatal(err)
	}
	j := NewJournal(log)
	res := stream.WindowResult{Seq: 2, Size: 4, View: "paper",
		Decisions: []stream.Decision{{Item: hit(0).Value(), Window: 2, Outputs: []string{"accept:out"}}}}
	if err := j.Commit("key-abc", res); err != nil {
		t.Fatal(err)
	}
	if err := log.CloseStore(); err != nil {
		t.Fatal(err)
	}

	// A new process over the same directory sees the emission.
	log2 := provenance.NewLog()
	if err := log2.Persist(filepath.Join(dir, "prov"), mstore.Options{}); err != nil {
		t.Fatal(err)
	}
	defer log2.CloseStore()
	j2 := NewJournal(log2)
	got, ok := j2.Lookup("key-abc")
	if !ok {
		t.Fatalf("journal entry lost across restart")
	}
	if got.View != "paper" || len(got.Decisions) != 1 || got.Decisions[0].Item != hit(0).Value() {
		t.Fatalf("recovered entry mangled: %+v", got)
	}
}

// TestCommitReplicatesAndPeerReplays is the failover story in miniature:
// a window committed on one node is replicated fleet-wide before its
// decisions escape, so when the SAME stream later arrives at a peer
// (because the committer died), the peer replays the journaled decisions
// instead of re-enacting — at-most-once enactment across the fleet.
func TestCommitReplicatesAndPeerReplays(t *testing.T) {
	n1 := startMember(t, "n1", nil, streamInner(nil))
	n2 := startMember(t, "n2", []string{n1.srv.URL}, streamInner(nil))
	waitFor(t, 3*time.Second, "fleet of 2", func() bool {
		return n1.node.Ring().Len() == 2 && n2.node.Ring().Len() == 2
	})

	lines := hitLines(8)
	c := &StreamClient{
		Nodes:  []string{n1.srv.URL},
		View:   "paper",
		Window: 4,
	}
	res1, err := c.Enact(context.Background(), lines)
	if err != nil {
		t.Fatalf("first stream: %v", err)
	}
	assertExactlyOnce(t, res1.Decisions, 8)
	if res1.Replayed != 0 {
		t.Fatalf("first run replayed %d windows; nothing was journaled yet", res1.Replayed)
	}

	// Both nodes hold both windows now — the enacting owner committed
	// locally and replicated to its peer before emitting.
	waitFor(t, 2*time.Second, "journal replication", func() bool {
		return n1.node.Journal().Len() == 2 && n2.node.Journal().Len() == 2
	})

	// The same stream again, entering through the OTHER node: every
	// window must answer from the journal, with identical decisions.
	c2 := &StreamClient{
		Nodes:  []string{n2.srv.URL},
		View:   "paper",
		Window: 4,
	}
	res2, err := c2.Enact(context.Background(), lines)
	if err != nil {
		t.Fatalf("second stream: %v", err)
	}
	assertExactlyOnce(t, res2.Decisions, 8)
	if res2.Replayed != res2.Windows || res2.Windows != 2 {
		t.Fatalf("second run replayed %d of %d windows; want all 2", res2.Replayed, res2.Windows)
	}
	for i := range res1.Decisions {
		if res1.Decisions[i].Item != res2.Decisions[i].Item ||
			len(res1.Decisions[i].Outputs) != len(res2.Decisions[i].Outputs) {
			t.Fatalf("replayed decision %d differs:\n  first:  %+v\n  second: %+v",
				i, res1.Decisions[i], res2.Decisions[i])
		}
	}
	// Replaying enacted nothing, so no new journal entries appeared.
	if n1.node.Journal().Len() != 2 || n2.node.Journal().Len() != 2 {
		t.Fatalf("replay grew the journal: n1=%d n2=%d; want 2 each",
			n1.node.Journal().Len(), n2.node.Journal().Len())
	}
}
