package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"qurator/internal/resilience/chaos"
)

// testMember is one in-process fleet node: a real Node behind a real
// HTTP server, probing its peers over loopback.
type testMember struct {
	node *Node
	srv  *httptest.Server
	ch   *chaos.Transport
}

func (m *testMember) host() string { return strings.TrimPrefix(m.srv.URL, "http://") }

// startMember boots one node whose outbound traffic runs through a chaos
// transport (so tests can partition links without killing processes).
// extraMux, when set, lets callers mount application endpoints alongside
// the /cluster surface.
func startMember(t *testing.T, id string, seeds []string, extraMux func(*Node, *http.ServeMux)) *testMember {
	t.Helper()
	mux := http.NewServeMux()
	srv := httptest.NewServer(mux)
	ch := chaos.New(nil, chaos.Config{})
	node, err := NewNode(Config{
		Self:              NodeInfo{ID: id, Addr: srv.URL},
		Seeds:             seeds,
		HeartbeatInterval: 25 * time.Millisecond,
		SuspectAfter:      2,
		DeadAfter:         4,
		ProbeTimeout:      500 * time.Millisecond,
		Client:            &http.Client{Transport: ch, Timeout: 500 * time.Millisecond},
		ForwardClient:     &http.Client{Transport: ch},
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := node.Handler()
	mux.Handle("/cluster", h)
	mux.Handle("/cluster/", h)
	if extraMux != nil {
		extraMux(node, mux)
	}
	if err := node.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		node.Stop()
		srv.Close()
	})
	return &testMember{node: node, srv: srv, ch: ch}
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestMembershipConvergesFromOneSeed(t *testing.T) {
	n1 := startMember(t, "n1", nil, nil)
	n2 := startMember(t, "n2", []string{n1.srv.URL}, nil)
	// n3 only seeds through n1; it must still learn n2 from the
	// heartbeat piggyback.
	n3 := startMember(t, "n3", []string{n1.srv.URL}, nil)

	for _, m := range []*testMember{n1, n2, n3} {
		m := m
		waitFor(t, 3*time.Second, m.node.Self().ID+" seeing 3 ring members", func() bool {
			return m.node.Ring().Len() == 3
		})
	}
	// Every node agrees who owns any given key.
	owner := n1.node.Ring().Owner("some-view")
	for _, m := range []*testMember{n2, n3} {
		if got := m.node.Ring().Owner("some-view"); got != owner {
			t.Fatalf("%s resolves owner %q, n1 resolves %q", m.node.Self().ID, got, owner)
		}
	}
}

func TestPartitionedPeerTurnsSuspectThenDead(t *testing.T) {
	n1 := startMember(t, "n1", nil, nil)
	n2 := startMember(t, "n2", []string{n1.srv.URL}, nil)
	waitFor(t, 3*time.Second, "fleet of 2", func() bool {
		return n1.node.Ring().Len() == 2 && n2.node.Ring().Len() == 2
	})

	// Cut n1 → n2 (and n2 → n1, so n2 doesn't keep vouching for n1's
	// view of the world): the chaos transport injects connection-refused
	// on those links without touching the servers.
	n1.ch.Partition(n2.host())
	n2.ch.Partition(n1.host())

	sawSuspect := false
	waitFor(t, 5*time.Second, "n1 dropping n2 from the ring", func() bool {
		for _, p := range n1.node.Peers() {
			if p.Info.ID == "n2" && p.Status == Suspect {
				sawSuspect = true
			}
		}
		return n1.node.Ring().Len() == 1
	})
	if !sawSuspect {
		t.Errorf("n2 went straight to dead without passing through suspect")
	}
	if owner := n1.node.Ring().Owner("anything"); owner != "n1" {
		t.Fatalf("after the partition n1 should own everything, got %q", owner)
	}

	// Heal and rejoin: a dead node is not resurrected by rumour alone —
	// explicit join brings it back.
	n1.ch.Heal()
	n2.ch.Heal()
	if err := n2.node.join(context.Background(), n1.srv.URL); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	waitFor(t, 3*time.Second, "fleet healing back to 2", func() bool {
		return n1.node.Ring().Len() == 2 && n2.node.Ring().Len() == 2
	})
}

func TestLeaveDeregistersImmediately(t *testing.T) {
	n1 := startMember(t, "n1", nil, nil)
	n2 := startMember(t, "n2", []string{n1.srv.URL}, nil)
	waitFor(t, 3*time.Second, "fleet of 2", func() bool {
		return n1.node.Ring().Len() == 2
	})

	n2.node.Leave(context.Background())

	// Leave is synchronous: by the time it returns, n1 must already have
	// dropped n2 — no waiting for probes to notice.
	if got := n1.node.Ring().Len(); got != 1 {
		t.Fatalf("n1 ring has %d members right after n2.Leave; want 1", got)
	}
	if n2.node.State() != StateDraining {
		t.Fatalf("n2 state = %s; want draining", n2.node.State())
	}
	if err := n2.node.ReadinessCheck(); err == nil {
		t.Fatalf("a draining node must fail its readiness check")
	}
	// And its heartbeat endpoint refuses, so stragglers mark it down too.
	resp, err := http.Get(n2.srv.URL + "/cluster/heartbeat?from=n1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining heartbeat = %d; want 503", resp.StatusCode)
	}
}

func TestJoinRejectsStolenIdentity(t *testing.T) {
	n1 := startMember(t, "n1", nil, nil)
	body, _ := json.Marshal(NodeInfo{ID: "n1", Addr: "http://10.0.0.99:1"})
	resp, err := http.Post(n1.srv.URL+"/cluster/join", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("joining with the seed's own ID = %d; want 409", resp.StatusCode)
	}
}

func TestClusterStatusEndpoint(t *testing.T) {
	n1 := startMember(t, "n1", nil, nil)
	n2 := startMember(t, "n2", []string{n1.srv.URL}, nil)
	waitFor(t, 3*time.Second, "fleet of 2", func() bool {
		return n1.node.Ring().Len() == 2 && n2.node.Ring().Len() == 2
	})
	resp, err := http.Get(n1.srv.URL + "/cluster?key=some-view")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Self.ID != "n1" || st.State != "ready" {
		t.Fatalf("status self/state = %q/%q", st.Self.ID, st.State)
	}
	if len(st.RingMembers) != 2 || len(st.Members) != 1 {
		t.Fatalf("status ring=%v members=%v; want 2 ring members, 1 peer", st.RingMembers, st.Members)
	}
	if st.Owner == nil || st.Owner.Node != n1.node.Ring().Owner("some-view") {
		t.Fatalf("status owner resolution = %+v", st.Owner)
	}
}
