package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"qurator/internal/resilience"
	"qurator/internal/telemetry"
)

// IncompleteHeader lists the fleet members a federated response could
// not include (down, breaker-open, scrape failed) — a partial answer
// says so in-band instead of quietly shrinking the fleet.
const IncompleteHeader = "X-Qurator-Federation-Incomplete"

// scrapeTargets snapshots the peers worth pulling observability data
// from: not dead, and not behind an open breaker. Peers skipped for an
// open breaker are returned as unreachable — a federated answer that
// omits them must say so. The breaker is only consulted (State, not
// Allow) — debug and metrics pulls must not consume half-open probe
// slots or flip routing health.
func (n *Node) scrapeTargets() (targets []NodeInfo, unreachable []string) {
	for _, p := range n.Peers() {
		if p.Status == Dead {
			continue
		}
		if b := n.breakerFor(p.Info.ID); b.State() == resilience.Open {
			unreachable = append(unreachable, p.Info.ID)
			continue
		}
		targets = append(targets, p.Info)
	}
	return targets, unreachable
}

// get issues one bounded observability pull against a peer.
func (n *Node) get(ctx context.Context, url string) (*http.Response, error) {
	ctx, cancel := context.WithTimeout(ctx, n.cfg.ProbeTimeout)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		cancel()
		return nil, err
	}
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	// The caller closes the body; tie the timeout to that close.
	resp.Body = &cancelOnClose{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (c *cancelOnClose) Close() error {
	err := c.ReadCloser.Close()
	c.cancel()
	return err
}

// MetricsHandler serves GET /cluster/metrics: the fleet's metrics as one
// exposition. It scrapes every reachable member's /metrics, sums
// counters and histogram buckets across nodes, and re-exports gauges
// once per node under a node label (see Federate). Members that could
// not be scraped are listed in the X-Qurator-Federation-Incomplete
// header and a leading comment — the numbers are still valid, just not
// fleet-complete. reg is this node's own registry (scraped in-process).
func (n *Node) MetricsHandler(reg *telemetry.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "cluster: GET only", http.StatusMethodNotAllowed)
			return
		}
		var buf bytes.Buffer
		if err := reg.WriteProm(&buf); err != nil {
			http.Error(w, "cluster: rendering local metrics: "+err.Error(), http.StatusInternalServerError)
			return
		}
		self, err := telemetry.ParseExposition(&buf)
		if err != nil {
			http.Error(w, "cluster: local metrics do not parse: "+err.Error(), http.StatusInternalServerError)
			return
		}
		exps := []telemetry.NodeExposition{{Node: n.self.ID, Exp: self}}
		targets, incomplete := n.scrapeTargets()
		for _, p := range targets {
			exp, err := n.scrapeMetrics(r.Context(), p)
			if err != nil {
				incomplete = append(incomplete, p.ID)
				continue
			}
			exps = append(exps, telemetry.NodeExposition{Node: p.ID, Exp: exp})
		}
		sort.Strings(incomplete)
		merged, err := telemetry.Federate(exps)
		if err != nil {
			http.Error(w, "cluster: "+err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if len(incomplete) > 0 {
			w.Header().Set(IncompleteHeader, strings.Join(incomplete, ","))
		}
		fmt.Fprintf(w, "# federated from %d of %d fleet member(s)\n", len(exps), len(exps)+len(incomplete))
		for _, id := range incomplete {
			fmt.Fprintf(w, "# missing %s\n", id)
		}
		_ = merged.Write(w)
	})
}

// scrapeMetrics pulls and parses one peer's /metrics.
func (n *Node) scrapeMetrics(ctx context.Context, p NodeInfo) (*telemetry.Exposition, error) {
	resp, err := n.get(ctx, p.Addr+"/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: %s /metrics: %s", p.ID, resp.Status)
	}
	return telemetry.ParseExposition(io.LimitReader(resp.Body, 16<<20))
}

// FleetTrace assembles one distributed trace across the fleet: the
// local recorder's fragment plus GET /debug/traces/<id> from every
// reachable member. A peer that answers 404 simply has no spans for the
// trace (not an error); a peer that cannot be reached at all lands in
// IncompleteNodes.
func (n *Node) FleetTrace(ctx context.Context, rec *telemetry.Recorder, id string) telemetry.FleetTrace {
	var frags []telemetry.TraceFragment
	if f, ok := rec.Fragment(id); ok {
		f.Node = n.self.ID
		frags = append(frags, f)
	}
	targets, incomplete := n.scrapeTargets()
	for _, p := range targets {
		frag, found, err := n.pullFragment(ctx, p, id)
		if err != nil {
			incomplete = append(incomplete, p.ID)
			continue
		}
		if found {
			frags = append(frags, frag)
		}
	}
	sort.Strings(incomplete)
	return telemetry.AssembleTrace(id, frags, incomplete)
}

// pullFragment fetches one peer's fragment of a trace. found is false
// when the peer holds no spans for it.
func (n *Node) pullFragment(ctx context.Context, p NodeInfo, id string) (telemetry.TraceFragment, bool, error) {
	resp, err := n.get(ctx, p.Addr+"/debug/traces/"+id)
	if err != nil {
		return telemetry.TraceFragment{}, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotFound:
		return telemetry.TraceFragment{}, false, nil
	case http.StatusOK:
	default:
		return telemetry.TraceFragment{}, false, fmt.Errorf("cluster: %s: %s", p.ID, resp.Status)
	}
	var frag telemetry.TraceFragment
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&frag); err != nil {
		return telemetry.TraceFragment{}, false, err
	}
	if frag.Node == "" {
		frag.Node = p.ID
	}
	return frag, true, nil
}

// fleetTraceIDs unions the trace listings of the local recorder and
// every reachable peer, newest-first per node, deduplicated.
func (n *Node) fleetTraceIDs(ctx context.Context, rec *telemetry.Recorder) (ids []string, incomplete []string) {
	seen := make(map[string]bool)
	add := func(list []string) {
		for _, id := range list {
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
	}
	add(rec.TraceIDs())
	targets, unreachable := n.scrapeTargets()
	incomplete = unreachable
	for _, p := range targets {
		resp, err := n.get(ctx, p.Addr+"/debug/traces/")
		if err != nil {
			incomplete = append(incomplete, p.ID)
			continue
		}
		var listing struct {
			Traces []string `json:"traces"`
		}
		err = json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&listing)
		resp.Body.Close()
		if err != nil {
			incomplete = append(incomplete, p.ID)
			continue
		}
		add(listing.Traces)
	}
	sort.Strings(incomplete)
	return ids, incomplete
}

// FleetDebugHandler serves GET /debug/enactments with an optional
// fleet view:
//
//	GET /debug/enactments                   → this node's traces (DebugHandler)
//	GET /debug/enactments?trace=<id>        → this node's tree for one trace
//	GET /debug/enactments?fleet=1           → cross-node traces, assembled
//	GET /debug/enactments?fleet=1&trace=<id>→ one assembled FleetTrace
//	GET /debug/enactments?fleet=1&n=3       → at most 3 assembled traces
//
// The fleet view pulls span fragments from every reachable ring member
// and merges them into per-trace trees; members that could not be
// pulled are named in each trace's incompleteNodes. n may be nil (not
// running in cluster mode), in which case fleet=1 degrades to the
// single-node view.
func FleetDebugHandler(n *Node, rec *telemetry.Recorder, node string) http.Handler {
	local := telemetry.DebugHandler(rec)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "telemetry: GET only", http.StatusMethodNotAllowed)
			return
		}
		if n == nil || r.URL.Query().Get("fleet") == "" {
			local.ServeHTTP(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if id := r.URL.Query().Get("trace"); id != "" {
			t := n.FleetTrace(r.Context(), rec, id)
			if len(t.Nodes) == 0 && !t.Complete {
				http.Error(w, fmt.Sprintf("telemetry: unknown trace %q", id), http.StatusNotFound)
				return
			}
			_ = enc.Encode(t)
			return
		}
		// Assembling a trace costs one round per peer; default to fewer
		// than the single-node listing.
		limit := 5
		if s := r.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				limit = v
			}
		}
		ids, incomplete := n.fleetTraceIDs(r.Context(), rec)
		if len(ids) > limit {
			ids = ids[:limit]
		}
		traces := make([]telemetry.FleetTrace, 0, len(ids))
		for _, id := range ids {
			traces = append(traces, n.FleetTrace(r.Context(), rec, id))
		}
		_ = enc.Encode(struct {
			Node            string                 `json:"node"`
			IncompleteNodes []string               `json:"incompleteNodes,omitempty"`
			Traces          []telemetry.FleetTrace `json:"traces"`
		}{node, incomplete, traces})
	})
}
