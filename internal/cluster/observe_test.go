package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"qurator/internal/resilience/chaos"
	"qurator/internal/stream"
	"qurator/internal/telemetry"
)

// obsMember is one in-process fleet node with its OWN span recorder and
// metric registry — in-process fleets sharing telemetry.Default would
// make cross-node assertions vacuous.
type obsMember struct {
	node *Node
	srv  *httptest.Server
	ch   *chaos.Transport
	rec  *telemetry.Recorder
	reg  *telemetry.Registry
}

func (m *obsMember) host() string { return strings.TrimPrefix(m.srv.URL, "http://") }

// startObservedMember boots a node with the full quratord observability
// surface mounted: per-node /metrics, /debug/traces/, /debug/enactments,
// /cluster/metrics, and a real journaled stream endpoint behind the
// fleet router. Every request is served under the member's own recorder.
func startObservedMember(t *testing.T, id string, seeds []string) *obsMember {
	t.Helper()
	rec := telemetry.NewRecorder(16)
	reg := telemetry.NewRegistry()
	mux := http.NewServeMux()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mux.ServeHTTP(w, r.WithContext(telemetry.WithRecorder(r.Context(), rec)))
	}))
	ch := chaos.New(nil, chaos.Config{})
	node, err := NewNode(Config{
		Self:              NodeInfo{ID: id, Addr: srv.URL},
		Seeds:             seeds,
		HeartbeatInterval: 25 * time.Millisecond,
		SuspectAfter:      2,
		DeadAfter:         4,
		ProbeTimeout:      500 * time.Millisecond,
		Client:            &http.Client{Transport: ch, Timeout: 500 * time.Millisecond},
		ForwardClient:     &http.Client{Transport: ch},
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := node.Handler()
	mux.Handle("/cluster", h)
	mux.Handle("/cluster/", h)
	mux.Handle("GET /cluster/metrics", node.MetricsHandler(reg))
	mux.Handle("/stream/enact", node.EnactHandler(
		stream.Handler(paperCompiler(nil), stream.WithJournal(node.Journal()))))
	mux.Handle("GET /metrics", reg.Handler())
	mux.Handle("GET /debug/traces/", telemetry.FragmentsHandler(rec, id))
	mux.Handle("GET /debug/enactments", FleetDebugHandler(node, rec, id))
	if err := node.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		node.Stop()
		srv.Close()
	})
	return &obsMember{node: node, srv: srv, ch: ch, rec: rec, reg: reg}
}

// TestForwardedStreamIsOneFleetTrace is the tentpole acceptance test: a
// stream enacted through ring forwarding produces exactly one trace ID
// whose assembled tree contains spans from two distinct nodes.
func TestForwardedStreamIsOneFleetTrace(t *testing.T) {
	m1 := startObservedMember(t, "n1", nil)
	m2 := startObservedMember(t, "n2", []string{m1.srv.URL})
	waitFor(t, 3*time.Second, "fleet of 2", func() bool {
		return m1.node.Ring().Len() == 2 && m2.node.Ring().Len() == 2
	})

	// A view name n2 owns, enacted at n1: the request must cross nodes.
	// paperCompiler compiles the paper view whatever the name says.
	view := keyOwnedBy(t, m1.node.Ring(), "n2")
	client := &StreamClient{Nodes: []string{m1.srv.URL}, View: view, Window: 4}
	res, err := client.Enact(context.Background(), hitLines(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID == "" {
		t.Fatal("EnactResult carries no trace ID")
	}
	assertExactlyOnce(t, res.Decisions, 8)

	// The forward hop span lands on n1, the enactment span on n2 — the
	// handlers End() their spans after the last response byte, so poll.
	var ft telemetry.FleetTrace
	waitFor(t, 3*time.Second, "spans from both nodes under one trace", func() bool {
		ft = m1.node.FleetTrace(context.Background(), m1.rec, res.TraceID)
		return len(ft.Nodes) >= 2
	})
	if strings.Join(ft.Nodes, ",") != "n1,n2" {
		t.Fatalf("contributors = %v; want [n1 n2]", ft.Nodes)
	}
	if ft.TraceID != res.TraceID {
		t.Fatalf("assembled trace %s; want %s", ft.TraceID, res.TraceID)
	}
	if len(ft.IncompleteNodes) != 0 {
		t.Fatalf("assembly incomplete: %v", ft.IncompleteNodes)
	}
	// The hop structure survives assembly: n2's server span is a child
	// of n1's forward span (the client's root span lives in this test
	// process, not on either node, so the forward span is an orphan).
	var hop *telemetry.FleetSpan
	for _, o := range ft.Orphans {
		if o.Name == "cluster:forward" {
			hop = o
		}
	}
	if hop == nil || hop.Node != "n1" {
		t.Fatalf("no n1 cluster:forward span among orphans: %+v", ft.Orphans)
	}
	foundServer := false
	for _, c := range hop.Children {
		if c.Name == "http:/stream/enact" && c.Node == "n2" {
			foundServer = true
		}
	}
	if !foundServer {
		t.Fatalf("forward span's children lack n2's enactment span: %+v", hop.Children)
	}

	// The same assembly over HTTP, from the node that did NOT forward.
	resp, err := http.Get(m2.srv.URL + "/debug/enactments?fleet=1&trace=" + res.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet debug endpoint: %s", resp.Status)
	}
	var viaHTTP telemetry.FleetTrace
	if err := json.NewDecoder(resp.Body).Decode(&viaHTTP); err != nil {
		t.Fatal(err)
	}
	if strings.Join(viaHTTP.Nodes, ",") != "n1,n2" {
		t.Fatalf("fleet view from n2 saw contributors %v; want [n1 n2]", viaHTTP.Nodes)
	}
}

// TestClusterMetricsFederation: GET /cluster/metrics on any member is a
// valid exposition whose counters equal the sum of the per-node values.
func TestClusterMetricsFederation(t *testing.T) {
	m1 := startObservedMember(t, "n1", nil)
	m2 := startObservedMember(t, "n2", []string{m1.srv.URL})
	m3 := startObservedMember(t, "n3", []string{m1.srv.URL})
	members := []*obsMember{m1, m2, m3}
	waitFor(t, 3*time.Second, "fleet of 3", func() bool {
		return m1.node.Ring().Len() == 3 && m2.node.Ring().Len() == 3 && m3.node.Ring().Len() == 3
	})

	for i, m := range members {
		m.reg.Counter("obs_test_ops_total", "Test ops.").Add(uint64(10 * (i + 1)))
		m.reg.Gauge("obs_test_depth", "Test depth.").Set(float64(i + 1))
		h := m.reg.Histogram("obs_test_latency_seconds", "Test latency.", []float64{1, 10})
		h.Observe(0.5)
		h.Observe(float64(5 * i))
	}

	resp, err := http.Get(m2.srv.URL + "/cluster/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/cluster/metrics: %s", resp.Status)
	}
	if inc := resp.Header.Get(IncompleteHeader); inc != "" {
		t.Fatalf("federation incomplete: %s", inc)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateExposition(bytes.NewReader(body)); err != nil {
		t.Fatalf("federated exposition invalid: %v\n%s", err, body)
	}
	exp, err := telemetry.ParseExposition(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}

	cf := exp.Family("obs_test_ops_total")
	if cf == nil || len(cf.Samples) != 1 {
		t.Fatalf("obs_test_ops_total = %+v; want one summed sample", cf)
	}
	if cf.Samples[0].Value != 60 { // 10 + 20 + 30
		t.Fatalf("federated counter = %v; want 60", cf.Samples[0].Value)
	}

	gf := exp.Family("obs_test_depth")
	if gf == nil || len(gf.Samples) != 3 {
		t.Fatalf("obs_test_depth = %+v; want 3 per-node samples", gf)
	}
	var gaugeSum float64
	for _, s := range gf.Samples {
		if _, ok := s.Label("node"); !ok {
			t.Fatalf("gauge sample lacks node label: %+v", s)
		}
		gaugeSum += s.Value
	}
	if gaugeSum != 6 { // 1 + 2 + 3
		t.Fatalf("per-node gauge values sum to %v; want 6", gaugeSum)
	}

	hf := exp.Family("obs_test_latency_seconds")
	if hf == nil {
		t.Fatal("histogram missing from federation")
	}
	for _, s := range hf.Samples {
		switch {
		case s.Name == "obs_test_latency_seconds_count" && s.Value != 6:
			t.Fatalf("_count = %v; want 6", s.Value)
		case s.Name == "obs_test_latency_seconds_bucket":
			if le, _ := s.Label("le"); le == "+Inf" && s.Value != 6 {
				t.Fatalf("le=+Inf bucket = %v; want 6", s.Value)
			}
		}
	}
}

// TestClusterMetricsPartialFederation: an unreachable peer shrinks the
// federation and says so, instead of failing the whole scrape.
func TestClusterMetricsPartialFederation(t *testing.T) {
	m1 := startObservedMember(t, "n1", nil)
	m2 := startObservedMember(t, "n2", []string{m1.srv.URL})
	waitFor(t, 3*time.Second, "fleet of 2", func() bool {
		return m1.node.Ring().Len() == 2 && m2.node.Ring().Len() == 2
	})
	m1.reg.Counter("obs_part_total", "Partial.").Add(7)
	m2.reg.Counter("obs_part_total", "Partial.").Add(5)

	// Cut n1's link to n2 — but not so long that n2 turns dead.
	m1.ch.Partition(m2.host())
	defer m1.ch.Heal()

	resp, err := http.Get(m1.srv.URL + "/cluster/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateExposition(bytes.NewReader(body)); err != nil {
		t.Fatalf("partial federation invalid: %v\n%s", err, body)
	}
	if inc := resp.Header.Get(IncompleteHeader); inc != "n2" {
		t.Fatalf("incomplete header = %q; want n2 (body:\n%s)", inc, body)
	}
	exp, err := telemetry.ParseExposition(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	cf := exp.Family("obs_part_total")
	if cf == nil || len(cf.Samples) != 1 || cf.Samples[0].Value != 7 {
		t.Fatalf("partial counter = %+v; want n1's 7 alone", cf)
	}
}
