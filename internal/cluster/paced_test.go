package cluster

import (
	"context"
	"testing"
	"time"
)

// TestPacedStreamDirect streams slowly into the node that owns the
// partition — no forwarding, no faults. Every item must come back
// exactly once.
func TestPacedStreamDirect(t *testing.T) {
	n1 := startMember(t, "n1", nil, streamInner(nil))
	c := &StreamClient{
		Nodes:  []string{n1.srv.URL},
		View:   "paper",
		Window: 4,
		Pace:   time.Millisecond,
	}
	res, err := c.Enact(context.Background(), hitLines(40))
	if err != nil {
		t.Fatal(err)
	}
	assertExactlyOnce(t, res.Decisions, 40)
	if res.Resumes != 0 {
		t.Fatalf("resumed %d times on a healthy single node", res.Resumes)
	}
}

// TestPacedStreamForwarded streams slowly into a node that must forward
// to the owner — the proxy hop must not reorder, drop, or buffer items.
func TestPacedStreamForwarded(t *testing.T) {
	n1 := startMember(t, "n1", nil, streamInner(nil))
	n2 := startMember(t, "n2", []string{n1.srv.URL}, streamInner(nil))
	waitFor(t, 3*time.Second, "fleet of 2", func() bool {
		return n1.node.Ring().Len() == 2 && n2.node.Ring().Len() == 2
	})
	ownerID := n1.node.Ring().Owner("paper")
	entry := map[string]*testMember{"n1": n2, "n2": n1}[ownerID] // the NON-owner
	t.Logf("owner=%s entry=%s", ownerID, entry.node.Self().ID)

	c := &StreamClient{
		Nodes:  []string{entry.srv.URL},
		View:   "paper",
		Window: 4,
		Pace:   time.Millisecond,
		Logf:   t.Logf,
	}
	res, err := c.Enact(context.Background(), hitLines(40))
	if err != nil {
		t.Fatal(err)
	}
	assertExactlyOnce(t, res.Decisions, 40)
	if res.Resumes != 0 {
		t.Fatalf("resumed %d times on a healthy fleet", res.Resumes)
	}
}
