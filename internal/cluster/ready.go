package cluster

import (
	"encoding/json"
	"net/http"
	"sync"
)

// Readiness aggregates named checks into a GET /readyz endpoint. Where
// /healthz answers "is the process alive" (always 200 while serving),
// /readyz answers "should a load balancer send work here": it fails
// while the node is joining its fleet, once it starts draining, when
// metadata persistence is broken, and for whatever else the host
// registers. The body itemises every check so an operator sees WHICH
// gate is closed, not just that one is.
type Readiness struct {
	mu     sync.Mutex
	names  []string
	checks map[string]func() error
}

// NewReadiness builds an empty readiness gate (which reports ready).
func NewReadiness() *Readiness {
	return &Readiness{checks: make(map[string]func() error)}
}

// Add registers a named check; nil errors mean ready. Re-adding a name
// replaces its check.
func (r *Readiness) Add(name string, check func() error) *Readiness {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.checks[name]; !dup {
		r.names = append(r.names, name)
	}
	r.checks[name] = check
	return r
}

// Ready runs every check, returning overall readiness and the per-check
// outcomes ("ok" or the error text) in registration order.
func (r *Readiness) Ready() (bool, map[string]string) {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	checks := make(map[string]func() error, len(r.checks))
	for k, v := range r.checks {
		checks[k] = v
	}
	r.mu.Unlock()
	ready := true
	out := make(map[string]string, len(names))
	for _, name := range names {
		if err := checks[name](); err != nil {
			ready = false
			out[name] = err.Error()
		} else {
			out[name] = "ok"
		}
	}
	return ready, out
}

// Handler serves GET /readyz: 200 with {"ready":true,...} when every
// check passes, 503 otherwise.
func (r *Readiness) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		ready, results := r.Ready()
		w.Header().Set("Content-Type", "application/json")
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Ready  bool              `json:"ready"`
			Checks map[string]string `json:"checks"`
		}{ready, results})
	})
}
