package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring over the live member set: each member
// contributes vnodes virtual points, keys own the first point at or
// clockwise after their hash. The ring is a pure function of (members,
// vnodes) — two nodes with the same view of the membership compute the
// same owner for every key, with no coordination. Losing one member
// moves only that member's keys (scattered across the survivors by the
// virtual points); everyone else's work stays put.
//
// A Ring is immutable; membership changes build a new one.
type Ring struct {
	points  []ringPoint
	members []string
	vnodes  int
}

type ringPoint struct {
	hash uint64
	node string
}

// DefaultVirtualNodes balances placement evenness (±a few percent across
// members) against ring-build cost.
const DefaultVirtualNodes = 64

// NewRing builds the ring for the given member IDs. Duplicate members
// collapse; order does not matter (the ring is deterministic from the
// set). An empty member set yields a ring that owns nothing.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	set := make(map[string]bool, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" || set[m] {
			continue
		}
		set[m] = true
		uniq = append(uniq, m)
	}
	sort.Strings(uniq)
	points := make([]ringPoint, 0, len(uniq)*vnodes)
	for _, m := range uniq {
		for i := 0; i < vnodes; i++ {
			points = append(points, ringPoint{hash: hash64(m + "#" + strconv.Itoa(i)), node: m})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		return points[i].node < points[j].node // deterministic under collisions
	})
	return &Ring{points: points, members: uniq, vnodes: vnodes}
}

// hash64 is the ring's placement hash: the first 8 bytes of SHA-256, so
// placement cannot be skewed by pathological key shapes the way small
// multiplicative hashes can.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Members returns the ring's member IDs, sorted.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Len returns the number of members on the ring.
func (r *Ring) Len() int { return len(r.members) }

// Owner returns the member owning key, or "" for an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(key)].node
}

// Successors returns up to n distinct members starting at key's owner
// and walking clockwise — the owner first, then the members that would
// inherit the key as owners die. Replication targets, in takeover order.
func (r *Ring) Successors(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := r.search(key); len(out) < n; i = (i + 1) % len(r.points) {
		if node := r.points[i].node; !seen[node] {
			seen[node] = true
			out = append(out, node)
		}
	}
	return out
}

// search returns the index of the first point at or clockwise after the
// key's hash.
func (r *Ring) search(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the ring is a circle
	}
	return i
}
