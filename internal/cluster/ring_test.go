package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAcrossInputOrder(t *testing.T) {
	a := NewRing([]string{"n1", "n2", "n3"}, 64)
	b := NewRing([]string{"n3", "n1", "n2", "n1"}, 64) // shuffled + duplicate
	if a.Len() != 3 || b.Len() != 3 {
		t.Fatalf("Len = %d, %d; want 3, 3", a.Len(), b.Len())
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("view-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %q: owners diverge (%q vs %q) for the same member set",
				key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestRingRebalanceMovesOnlyTheLostMembersKeys(t *testing.T) {
	members := make([]string, 10)
	for i := range members {
		members[i] = fmt.Sprintf("node-%d", i)
	}
	before := NewRing(members, 64)
	after := NewRing(members[1:], 64) // node-0 dies

	moved := 0
	const keys = 2000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("partition-%d", i)
		was, is := before.Owner(key), after.Owner(key)
		if was != is {
			moved++
			if was != "node-0" {
				t.Fatalf("key %q moved from %q to %q although %q survived", key, was, is, was)
			}
		}
	}
	// Consistent hashing moves ~1/10 of the keyspace; triple that bound
	// still catches accidental full-reshuffle (mod-N) behaviour.
	if moved == 0 || moved > keys*3/10 {
		t.Fatalf("%d of %d keys moved; want ~%d (1/10th)", moved, keys, keys/10)
	}
}

func TestRingOwnerIsEvenlySpread(t *testing.T) {
	r := NewRing([]string{"a", "b", "c", "d"}, DefaultVirtualNodes)
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for node, c := range counts {
		if c < keys/8 || c > keys/2 {
			t.Fatalf("node %q owns %d of %d keys; placement badly skewed: %v", node, c, keys, counts)
		}
	}
}

func TestRingSuccessorsDistinctAndOwnerFirst(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"}, 16)
	succ := r.Successors("some-key", 3)
	if len(succ) != 3 {
		t.Fatalf("Successors = %v; want all 3 members", succ)
	}
	if succ[0] != r.Owner("some-key") {
		t.Fatalf("Successors[0] = %q; want the owner %q", succ[0], r.Owner("some-key"))
	}
	seen := map[string]bool{}
	for _, s := range succ {
		if seen[s] {
			t.Fatalf("Successors = %v contains %q twice", succ, s)
		}
		seen[s] = true
	}
	if got := r.Successors("some-key", 99); len(got) != 3 {
		t.Fatalf("Successors(n>members) = %v; want exactly the member set", got)
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 8)
	if r.Owner("x") != "" || r.Successors("x", 2) != nil || r.Len() != 0 {
		t.Fatalf("empty ring should own nothing")
	}
}
