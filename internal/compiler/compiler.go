package compiler

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"qurator/internal/annotstore"
	"qurator/internal/binding"
	"qurator/internal/condition"
	"qurator/internal/evidence"
	"qurator/internal/provenance"
	"qurator/internal/qcache"
	"qurator/internal/qvlang"
	"qurator/internal/rdf"
	"qurator/internal/services"
	"qurator/internal/telemetry"
	"qurator/internal/workflow"
)

// Compiler compiles resolved quality views into quality workflows.
type Compiler struct {
	// Bindings maps operator classes to service locators (§6: "a set of
	// bindings of abstract operator types to implemented services").
	Bindings *binding.Registry
	// Resolver materialises services behind bindings.
	Resolver *binding.Resolver
	// Repositories backs the core Data Enrichment service.
	Repositories *annotstore.Registry

	// RetryAttempts, when > 1, wraps every quality-service processor
	// (annotators, enrichment, QAs — not the local actions) in
	// workflow.Retry: application-level re-invocation on top of the
	// transport's own retries. Annotation writes are safe to re-invoke
	// here because repository puts are set-semantic.
	RetryAttempts int
	// RetryBackoff is the initial sleep between retry attempts.
	RetryBackoff time.Duration
	// ProcessorTimeout, when > 0, bounds each quality-service invocation
	// via workflow.Timeout.
	ProcessorTimeout time.Duration
	// Degraded selects what happens when a quality service fails for
	// good (see DegradedMode); DegradeOff aborts the enactment.
	Degraded DegradedMode

	// ShardSize, when > 0, splits every item-scoped service invocation
	// into shards of at most this many items, invoked concurrently and
	// merged in order (see dataplane.go). 0 keeps the serial whole-map
	// invocation.
	ShardSize int
	// MaxInflight bounds concurrent shard invocations per processor
	// (GOMAXPROCS when 0).
	MaxInflight int
	// Cache, when non-nil, memoises pure-response service invocations
	// (QA assertions, filter/split actions) content-addressed by
	// (service, operation, config, shard payload).
	Cache *qcache.Cache
}

// dataplane copies the Compiler's data-plane settings onto a processor.
func (c *Compiler) dataplane(p *serviceProcessor) *serviceProcessor {
	p.shardSize = c.ShardSize
	p.maxInflight = c.MaxInflight
	p.cache = c.Cache
	return p
}

// Compiled is a quality workflow produced from a view, with handles for
// run-time condition editing (the paper's explore loop: "action
// conditions can be modified on-the-fly, from one process execution to
// the next").
type Compiled struct {
	// Workflow is the executable quality workflow; its single input is
	// PortDataSet and its outputs are one per action port.
	Workflow *workflow.Workflow
	// Resolved is the view the workflow was compiled from.
	Resolved *qvlang.Resolved
	// Outputs lists the workflow output names in declaration order.
	Outputs []string
	// Provenance, when set, records every Run (view name, conditions in
	// force, input/output sizes, timing) as queryable RDF.
	Provenance *provenance.Log

	actions map[string]*serviceProcessor
	// Quality-service processor handles in declaration order — the
	// fingerprinting substrate for MergeViews (mqo.go).
	annotators []*serviceProcessor
	enrichment *serviceProcessor
	qas        []*serviceProcessor
	degraded   atomic.Int32 // holds a DegradedMode
}

// DegradedMode returns the degraded-enactment policy in force.
func (c *Compiled) DegradedMode() DegradedMode { return DegradedMode(c.degraded.Load()) }

// SetDegradedMode changes the degraded-enactment policy for subsequent
// runs (the compiled processors always carry the degrade wrapper; the
// mode only decides whether Execute opts a run into it). Safe to call
// while enactments are in flight: each run reads the mode once on entry
// and applies it consistently throughout.
func (c *Compiled) SetDegradedMode(m DegradedMode) { c.degraded.Store(int32(m)) }

// Conditions returns the condition text currently in force per action —
// filter conditions under the action name, splitter branches under
// "action/branch".
func (c *Compiled) Conditions() map[string]string {
	out := map[string]string{}
	for name, p := range c.actions {
		cfg := p.snapshotConfig()
		if cond, ok := cfg.Get("condition"); ok {
			out[name] = cond
		}
		for _, param := range cfg.Params {
			if branch, ok := strings.CutPrefix(param.Name, "group:"); ok {
				out[name+"/"+branch] = param.Value
			}
		}
	}
	return out
}

// ProcessorNames used by the §6.1 compilation.
const (
	ProcEnrichment  = "DataEnrichment"
	ProcConsolidate = "ConsolidateAssertions"
)

// Compile applies the §6.1 rules:
//
//  1. annotators are added first; their input ports are bound to the
//     workflow's data set input, their outputs are empty;
//  2. a single Data Enrichment processor is added, configured with the
//     evidence-type → repository association derived from the annotator
//     and QA declarations, with a control link from each annotator;
//  3. the enrichment output feeds every QA processor (the common service
//     interface makes the fan-out uniform);
//  4. a ConsolidateAssertions task merges the QA outputs;
//  5. action processors are added last, each fed by the consolidation,
//     and their output ports become the workflow outputs.
func (c *Compiler) Compile(r *qvlang.Resolved) (*Compiled, error) {
	if c.Repositories == nil {
		return nil, fmt.Errorf("compiler: no repositories configured")
	}
	if err := checkNameCollisions(r); err != nil {
		return nil, err
	}
	wf := workflow.New(r.View.Name)
	compiled := &Compiled{
		Workflow: wf, Resolved: r,
		actions: map[string]*serviceProcessor{},
	}
	compiled.degraded.Store(int32(c.Degraded))

	// Rule 1: annotators first.
	var annotatorNames []string
	for _, ann := range r.Annotators {
		svc, err := c.serviceFor(ann.Type)
		if err != nil {
			return nil, fmt.Errorf("compiler: annotator %q: %w", ann.Decl.ServiceName, err)
		}
		name := procName("Annotator", ann.Decl.ServiceName)
		p := &serviceProcessor{
			name:   name,
			svc:    svc,
			mode:   modeAnnotator,
			inPort: PortDataSet,
		}
		p.config.Set("repositoryRef", ann.Provides[0].Repository)
		if err := wf.AddProcessor(c.guard(c.dataplane(p))); err != nil {
			return nil, err
		}
		if err := wf.BindInput(PortDataSet, name, PortDataSet); err != nil {
			return nil, err
		}
		annotatorNames = append(annotatorNames, name)
		compiled.annotators = append(compiled.annotators, p)
	}

	// Rule 2: one Data Enrichment operator configured from the derived
	// evidence → repository association.
	de := &serviceProcessor{
		name:   ProcEnrichment,
		svc:    &services.EnrichmentService{ServiceName: ProcEnrichment, Repositories: c.Repositories},
		mode:   modeEnrichment,
		inPort: PortDataSet,
		outs:   []string{PortAnnotations},
	}
	for _, ev := range sortedEvidence(r.EvidenceRepo) {
		de.config.Set(services.SourceParam(ev), r.EvidenceRepo[ev])
	}
	if err := wf.AddProcessor(c.guard(c.dataplane(de))); err != nil {
		return nil, err
	}
	compiled.enrichment = de
	if err := wf.BindInput(PortDataSet, ProcEnrichment, PortDataSet); err != nil {
		return nil, err
	}
	for _, ann := range annotatorNames {
		if err := wf.AddControlLink(workflow.ControlLink{From: ann, To: ProcEnrichment}); err != nil {
			return nil, err
		}
	}

	// Rule 3: the enrichment output feeds every QA processor.
	var qaNames []string
	for _, as := range r.Assertions {
		svc, err := c.serviceFor(as.Type)
		if err != nil {
			return nil, fmt.Errorf("compiler: assertion %q: %w", as.Decl.ServiceName, err)
		}
		name := procName("QA", as.Decl.ServiceName)
		p := &serviceProcessor{
			name:   name,
			svc:    svc,
			mode:   modeAssertion,
			inPort: PortAnnotations,
			outs:   []string{PortAnnotations},
		}
		if err := wf.AddProcessor(c.guard(c.dataplane(p))); err != nil {
			return nil, err
		}
		if err := wf.AddLink(workflow.Link{
			From: ProcEnrichment, FromPort: PortAnnotations,
			To: name, ToPort: PortAnnotations,
		}); err != nil {
			return nil, err
		}
		qaNames = append(qaNames, name)
		compiled.qas = append(compiled.qas, p)
	}

	// Rule 4: consolidate the assertion fan-out. With no QAs, the
	// enrichment output is consolidated directly.
	cons := &consolidateProcessor{name: ProcConsolidate}
	if len(qaNames) == 0 {
		cons.inputs = []string{"in0"}
	} else {
		for i := range qaNames {
			cons.inputs = append(cons.inputs, fmt.Sprintf("in%d", i))
		}
	}
	if err := wf.AddProcessor(cons); err != nil {
		return nil, err
	}
	if len(qaNames) == 0 {
		if err := wf.AddLink(workflow.Link{
			From: ProcEnrichment, FromPort: PortAnnotations, To: ProcConsolidate, ToPort: "in0",
		}); err != nil {
			return nil, err
		}
	}
	for i, qaName := range qaNames {
		if err := wf.AddLink(workflow.Link{
			From: qaName, FromPort: PortAnnotations,
			To: ProcConsolidate, ToPort: fmt.Sprintf("in%d", i),
		}); err != nil {
			return nil, err
		}
	}
	// The consolidated map is also a workflow output: enactors that need
	// the full per-item assertion state — classes and scores for rejected
	// items included, e.g. the streaming enactor's decision records — read
	// it without re-running the QAs. Compiled.Outputs still lists only the
	// action outputs.
	if err := wf.BindOutput(OutputAnnotations, ProcConsolidate, PortAnnotations); err != nil {
		return nil, err
	}

	// Rule 5: action processors last; their ports become workflow outputs.
	for _, act := range r.Actions {
		name := procName("Action", act.Name)
		p := &serviceProcessor{
			name:   name,
			svc:    &services.ActionService{ServiceName: name},
			mode:   modeFilter,
			inPort: PortAnnotations,
		}
		for ident, key := range r.Vars {
			p.config.Set(services.VarParam(ident), key.Value())
		}
		var outputs []string
		switch {
		case act.Filter != nil:
			p.op = "filter"
			p.outs = []string{PortAccepted}
			p.config.Set("condition", act.Filter.String())
			outputs = []string{PortAccepted}
		default:
			p.op = "split"
			p.mode = modeSplit
			for _, b := range act.Branches {
				p.outs = append(p.outs, b.Name)
				p.config.Set("group:"+b.Name, b.Cond.String())
			}
			p.outs = append(p.outs, PortDefault)
			outputs = p.outs
		}
		if err := wf.AddProcessor(c.dataplane(p)); err != nil {
			return nil, err
		}
		if err := wf.AddLink(workflow.Link{
			From: ProcConsolidate, FromPort: PortAnnotations,
			To: name, ToPort: PortAnnotations,
		}); err != nil {
			return nil, err
		}
		for _, port := range outputs {
			outName := outputName(act.Name, port)
			if err := wf.BindOutput(outName, name, port); err != nil {
				return nil, err
			}
			compiled.Outputs = append(compiled.Outputs, outName)
		}
		compiled.actions[act.Name] = p
	}

	if err := wf.Validate(); err != nil {
		return nil, err
	}
	return compiled, nil
}

// guard stacks the fault-tolerance decorators around a quality-service
// processor: degrade(Retry(Timeout(p))). Timeout bounds one invocation,
// Retry re-invokes through transient failures, and the degrade wrapper —
// outermost, so it only sees terminal failures — turns what is left into
// unknown evidence when the run carries a FailureLog. Actions and
// consolidation stay bare: they are local, pure computations whose
// failure is a programming error, not a fabric fault.
func (c *Compiler) guard(p *serviceProcessor) workflow.Processor {
	var w workflow.Processor = p
	if c.ProcessorTimeout > 0 {
		w = workflow.WithTimeout(w, c.ProcessorTimeout)
	}
	if c.RetryAttempts > 1 {
		w = workflow.WithRetry(w, c.RetryAttempts, c.RetryBackoff)
	}
	return &degradeProcessor{inner: w, pmode: p.mode, inPort: p.inPort}
}

// serviceFor resolves an operator class to a deployed service through the
// binding registry.
func (c *Compiler) serviceFor(class rdf.Term) (services.QualityService, error) {
	if c.Bindings == nil || c.Resolver == nil {
		return nil, fmt.Errorf("compiler: no binding registry/resolver configured")
	}
	b, err := c.Bindings.ResolveService(class)
	if err != nil {
		return nil, err
	}
	return c.Resolver.Service(b)
}

// checkNameCollisions rejects declarations whose names normalise to the
// same processor/output name via condition.NormaliseName — left unchecked
// the collision surfaces later as a confusing duplicate-processor /
// duplicate-output error, or worse, as a silent overwrite in the actions
// map. Categories never collide with each other (processor names carry
// an "Annotator:"/"QA:"/"Action:" prefix), so each is checked on its own.
func checkNameCollisions(r *qvlang.Resolved) error {
	check := func(kind string, names []string) error {
		seen := map[string]string{}
		for _, name := range names {
			norm := condition.NormaliseName(name)
			if prev, ok := seen[norm]; ok {
				return fmt.Errorf("compiler: %s declarations %q and %q collide: both normalise to %q",
					kind, prev, name, norm)
			}
			seen[norm] = name
		}
		return nil
	}
	var anns, qas, acts []string
	for _, a := range r.Annotators {
		anns = append(anns, a.Decl.ServiceName)
	}
	for _, a := range r.Assertions {
		qas = append(qas, a.Decl.ServiceName)
	}
	for _, a := range r.Actions {
		acts = append(acts, a.Name)
	}
	if err := check("annotator", anns); err != nil {
		return err
	}
	if err := check("assertion", qas); err != nil {
		return err
	}
	return check("action", acts)
}

// outputName builds a workflow output name from an action and port.
func outputName(action, port string) string {
	return condition.NormaliseName(action) + ":" + port
}

func procName(prefix, name string) string {
	return prefix + ":" + condition.NormaliseName(name)
}

func sortedEvidence(m map[rdf.Term]string) []rdf.Term {
	out := make([]rdf.Term, 0, len(m))
	for ev := range m {
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool { return rdf.CompareTerms(out[i], out[j]) < 0 })
	return out
}

// SetFilterCondition replaces a filter action's condition for subsequent
// runs — the paper's rapid-exploration loop. The condition is validated
// against the view's declared variables.
func (c *Compiled) SetFilterCondition(action, cond string) error {
	p, ok := c.actions[action]
	if !ok {
		return fmt.Errorf("compiler: unknown action %q", action)
	}
	if p.op != "filter" {
		return fmt.Errorf("compiler: action %q is not a filter", action)
	}
	expr, err := condition.Parse(cond)
	if err != nil {
		return err
	}
	p.setParam("condition", expr.String())
	return nil
}

// SetBranchCondition replaces one splitter branch's condition.
func (c *Compiled) SetBranchCondition(action, branch, cond string) error {
	p, ok := c.actions[action]
	if !ok {
		return fmt.Errorf("compiler: unknown action %q", action)
	}
	if p.op != "split" {
		return fmt.Errorf("compiler: action %q is not a splitter", action)
	}
	found := false
	for _, out := range p.outs {
		if out == branch {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("compiler: action %q has no branch %q", action, branch)
	}
	expr, err := condition.Parse(cond)
	if err != nil {
		return err
	}
	p.setParam("group:"+branch, expr.String())
	return nil
}

// Run executes the quality workflow over a data set and returns the
// output maps keyed by workflow output name ("<action>:<port>"). When a
// provenance log is attached, the run is recorded.
func (c *Compiled) Run(ctx context.Context, items []evidence.Item) (map[string]*evidence.Map, error) {
	in := workflow.Ports{PortDataSet: evidence.NewMap(items...)}
	out, err := c.Execute(ctx, in) // records provenance when attached
	if err != nil {
		return nil, err
	}
	result := make(map[string]*evidence.Map, len(out))
	for name, v := range out {
		m, ok := v.(*evidence.Map)
		if !ok {
			return nil, fmt.Errorf("compiler: output %q is %T, not *evidence.Map", name, v)
		}
		result[name] = m
	}
	return result, nil
}

// Compiled implements workflow.Processor by delegating to its workflow,
// so the quality view embeds into a host as a single node while keeping
// provenance recording: every enactment — direct or embedded — is logged.
var _ workflow.Processor = (*Compiled)(nil)

// Name implements workflow.Processor.
func (c *Compiled) Name() string { return c.Workflow.Name() }

// InputPorts implements workflow.Processor.
func (c *Compiled) InputPorts() []string { return c.Workflow.InputPorts() }

// OutputPorts implements workflow.Processor.
func (c *Compiled) OutputPorts() []string { return c.Workflow.OutputPorts() }

// Execute implements workflow.Processor. With a degraded mode set, a
// FailureLog is attached to the run (unless the caller brought one) so
// quality-service failures degrade to unknown evidence instead of
// aborting, and undecided items are routed per the policy afterwards.
func (c *Compiled) Execute(ctx context.Context, in workflow.Ports) (workflow.Ports, error) {
	started := time.Now()
	// The enactment span is the trace root for standalone runs and a
	// child when the view is embedded (host workflow, streaming window);
	// either way its trace ID lands in the provenance record below.
	ctx, span := telemetry.StartSpan(ctx, "enact:"+c.Workflow.Name())
	log, hasLog := FailureLogFrom(ctx)
	degraded := c.DegradedMode() // read once so a concurrent flip can't split the run
	if degraded != DegradeOff && !hasLog {
		log = NewFailureLog()
		ctx = WithFailureLog(ctx, log)
	}
	out, err := c.Workflow.Execute(ctx, in)
	if err != nil {
		span.EndErr(err)
		return nil, err
	}
	if degraded != DegradeOff {
		c.applyDegradedRouting(out, log, degraded)
	}
	span.End()
	if c.Provenance != nil {
		rec := provenance.Record{
			View:       c.Workflow.Name(),
			Started:    started,
			Duration:   time.Since(started),
			Outputs:    map[string]int{},
			Conditions: c.Conditions(),
			TraceID:    span.TraceID,
		}
		if m, ok := in[PortDataSet].(*evidence.Map); ok {
			rec.InputSize = m.Len()
		}
		for name, v := range out {
			if m, ok := v.(*evidence.Map); ok {
				rec.Outputs[name] = m.Len()
			}
		}
		c.Provenance.Record(rec)
	}
	return out, nil
}

// FilterOutput returns the canonical output name of a filter action.
func FilterOutput(action string) string { return outputName(action, PortAccepted) }

// SplitOutput returns the canonical output name of a splitter branch.
func SplitOutput(action, branch string) string { return outputName(action, branch) }

// Describe renders the compiled workflow structure (processors + links)
// for inspection — what cmd/qvc prints.
func (c *Compiled) Describe() string {
	var b strings.Builder
	wf := c.Workflow
	fmt.Fprintf(&b, "workflow %s\n", wf.Name())
	fmt.Fprintf(&b, "  inputs:  %s\n", strings.Join(wf.InputPorts(), ", "))
	fmt.Fprintf(&b, "  outputs: %s\n", strings.Join(wf.OutputPorts(), ", "))
	b.WriteString("  processors:\n")
	for _, name := range wf.Processors() {
		p, _ := wf.Processor(name)
		fmt.Fprintf(&b, "    %-40s in=%v out=%v\n", name, p.InputPorts(), p.OutputPorts())
	}
	b.WriteString("  data links:\n")
	for _, l := range wf.DataLinks() {
		fmt.Fprintf(&b, "    %s\n", l)
	}
	if cls := wf.ControlLinks(); len(cls) > 0 {
		b.WriteString("  control links:\n")
		for _, cl := range cls {
			fmt.Fprintf(&b, "    %s ==> %s\n", cl.From, cl.To)
		}
	}
	return b.String()
}
