package compiler

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"qurator/internal/annotstore"
	"qurator/internal/binding"
	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/ops"
	"qurator/internal/provenance"
	"qurator/internal/qa"
	"qurator/internal/qvlang"
	"qurator/internal/rdf"
	"qurator/internal/services"
	"qurator/internal/workflow"
)

func item(i int) evidence.Item {
	return rdf.IRI(fmt.Sprintf("urn:lsid:test.org:hit:%d", i))
}

// testAnnotator writes synthetic HR/Coverage/Masses/PeptidesCount
// evidence: items with even index get strong evidence, odd weak.
func testAnnotator() ops.Annotator {
	return ops.AnnotatorFunc{
		ClassIRI: ontology.ImprintOutputAnnotation,
		Types: []rdf.Term{
			ontology.HitRatio, ontology.Coverage, ontology.Masses, ontology.PeptidesCount,
		},
		Fn: func(items []evidence.Item, repo annotstore.Store) error {
			for i, it := range items {
				hr, mc := 0.9, 0.8
				if i%2 == 1 {
					hr, mc = 0.15, 0.1
				}
				puts := []annotstore.Annotation{
					{Item: it, Type: ontology.HitRatio, Value: evidence.Float(hr)},
					{Item: it, Type: ontology.Coverage, Value: evidence.Float(mc)},
					{Item: it, Type: ontology.Masses, Value: evidence.Int(int64(10 + i))},
					{Item: it, Type: ontology.PeptidesCount, Value: evidence.Int(8)},
				}
				for _, a := range puts {
					if err := repo.Put(a); err != nil {
						return err
					}
				}
			}
			return nil
		},
	}
}

// testCompiler assembles the full stack for the paper view: deployed
// services, bindings, repositories.
func testCompiler(t *testing.T) *Compiler {
	t.Helper()
	model := ontology.NewIQModel()
	repos := annotstore.NewRegistry()
	local := services.NewRegistry()
	local.Add(&services.AnnotatorService{
		ServiceName:  "ImprintOutputAnnotator",
		Annotator:    testAnnotator(),
		Repositories: repos,
	})
	local.Add(&services.AssertionService{
		ServiceName: "HR_MC_score",
		QA:          qa.NewUniversalPIScore(qvlang.TagKeyFor("HR_MC")),
	})
	local.Add(&services.AssertionService{
		ServiceName: "HR_score",
		QA:          qa.NewHRScore(qvlang.TagKeyFor("HR")),
	})
	local.Add(&services.AssertionService{
		ServiceName: "PIScoreClassifier",
		QA:          qa.NewPIScoreClassifier(),
	})
	bindings := binding.NewRegistry(model)
	bindings.MustBind(binding.Binding{Concept: ontology.ImprintOutputAnnotation, Kind: binding.ServiceResource, Locator: "local:ImprintOutputAnnotator"})
	bindings.MustBind(binding.Binding{Concept: ontology.UniversalPIScore2, Kind: binding.ServiceResource, Locator: "local:HR_MC_score"})
	bindings.MustBind(binding.Binding{Concept: ontology.HRScoreAssertion, Kind: binding.ServiceResource, Locator: "local:HR_score"})
	bindings.MustBind(binding.Binding{Concept: ontology.PIScoreClassifier, Kind: binding.ServiceResource, Locator: "local:PIScoreClassifier"})
	return &Compiler{
		Bindings:     bindings,
		Resolver:     &binding.Resolver{Local: local},
		Repositories: repos,
	}
}

func compilePaperView(t *testing.T) *Compiled {
	t.Helper()
	v, err := qvlang.Parse([]byte(qvlang.PaperViewXML))
	if err != nil {
		t.Fatal(err)
	}
	r, err := qvlang.Resolve(v, ontology.NewIQModel())
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := testCompiler(t).Compile(r)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return compiled
}

func TestCompileStructureFollowsSection61Rules(t *testing.T) {
	c := compilePaperView(t)
	wf := c.Workflow

	procs := wf.Processors()
	// Annotators first, then DE, QAs, consolidation, actions.
	if procs[0] != "Annotator:ImprintOutputAnnotator" {
		t.Errorf("first processor = %q", procs[0])
	}
	if procs[1] != ProcEnrichment {
		t.Errorf("second processor = %q", procs[1])
	}
	deCount, consCount := 0, 0
	for _, p := range procs {
		if p == ProcEnrichment {
			deCount++
		}
		if p == ProcConsolidate {
			consCount++
		}
	}
	if deCount != 1 {
		t.Errorf("compiler must add exactly one Data Enrichment operator, got %d", deCount)
	}
	if consCount != 1 {
		t.Errorf("exactly one ConsolidateAssertions, got %d", consCount)
	}

	// Control link from each annotator to the DE.
	ctrl := wf.ControlLinks()
	if len(ctrl) != 1 || ctrl[0].From != "Annotator:ImprintOutputAnnotator" || ctrl[0].To != ProcEnrichment {
		t.Errorf("control links = %v", ctrl)
	}

	// DE output fans out to all three QAs; QAs feed consolidation;
	// consolidation feeds the action.
	fanOut := 0
	for _, l := range wf.DataLinks() {
		if l.From == ProcEnrichment && strings.HasPrefix(l.To, "QA:") {
			fanOut++
		}
	}
	if fanOut != 3 {
		t.Errorf("DE fans out to %d QAs, want 3", fanOut)
	}
	intoCons := 0
	for _, l := range wf.DataLinks() {
		if l.To == ProcConsolidate {
			intoCons++
		}
	}
	if intoCons != 3 {
		t.Errorf("%d links into consolidation, want 3", intoCons)
	}
	actionFed := false
	for _, l := range wf.DataLinks() {
		if l.From == ProcConsolidate && strings.HasPrefix(l.To, "Action:") {
			actionFed = true
		}
	}
	if !actionFed {
		t.Error("action not fed by consolidation")
	}
	if err := wf.Validate(); err != nil {
		t.Errorf("compiled workflow invalid: %v", err)
	}
	if len(c.Outputs) != 1 || c.Outputs[0] != FilterOutput("filter top k score") {
		t.Errorf("outputs = %v", c.Outputs)
	}
	// Describe renders something useful.
	if d := c.Describe(); !strings.Contains(d, ProcEnrichment) || !strings.Contains(d, "Annotator:") {
		t.Errorf("Describe output incomplete:\n%s", d)
	}
}

func TestCompiledRunEndToEnd(t *testing.T) {
	c := compilePaperView(t)
	items := make([]evidence.Item, 10)
	for i := range items {
		items[i] = item(i)
	}
	out, err := c.Run(context.Background(), items)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	accepted := out[FilterOutput("filter top k score")]
	if accepted == nil {
		t.Fatalf("no accepted output; outputs = %v", keysOf(out))
	}
	// Even-indexed items have strong evidence: HR=0.9, MC=0.8 →
	// score ≈ 61 > 20 and class high/mid; odd items are weak.
	if accepted.Len() != 5 {
		t.Errorf("accepted %d items, want 5: %v", accepted.Len(), accepted.Items())
	}
	for _, it := range accepted.Items() {
		cls := accepted.Class(it, ontology.PIScoreClassification)
		if cls != ontology.ClassHigh && cls != ontology.ClassMid {
			t.Errorf("surviving item %v has class %v", it, cls)
		}
		if !accepted.Has(it, qvlang.TagKeyFor("HR_MC")) {
			t.Errorf("surviving item %v lacks the HR_MC score", it)
		}
		if !accepted.Has(it, qvlang.TagKeyFor("HR")) {
			t.Errorf("surviving item %v lacks the HR score (consolidation)", it)
		}
	}
}

func TestConditionEditingBetweenRuns(t *testing.T) {
	c := compilePaperView(t)
	items := make([]evidence.Item, 10)
	for i := range items {
		items[i] = item(i)
	}
	first, err := c.Run(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	// Loosen the condition: keep everything with any class.
	if err := c.SetFilterCondition("filter top k score", "HR_MC > 0"); err != nil {
		t.Fatalf("SetFilterCondition: %v", err)
	}
	second, err := c.Run(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	a, b := first[FilterOutput("filter top k score")], second[FilterOutput("filter top k score")]
	if !(b.Len() > a.Len()) {
		t.Errorf("loosened condition kept %d ≤ %d", b.Len(), a.Len())
	}
	// Unknown action / non-filter errors.
	if err := c.SetFilterCondition("ghost", "x > 1"); err == nil {
		t.Error("unknown action should fail")
	}
	if err := c.SetFilterCondition("filter top k score", ">>>"); err == nil {
		t.Error("bad condition should fail")
	}
}

const splitterViewXML = `<QualityView name="route-by-class">
  <Annotator servicename="ImprintOutputAnnotator" servicetype="q:ImprintOutputAnnotation">
    <variables repositoryRef="cache" persistent="false">
      <var evidence="q:HitRatio"/>
      <var evidence="q:Coverage"/>
    </variables>
  </Annotator>
  <QualityAssertion servicename="PIScoreClassifier" servicetype="q:PIScoreClassifier"
                    tagsemtype="q:PIScoreClassification" tagname="ScoreClass" tagsyntype="q:class">
    <variables repositoryRef="cache">
      <var variablename="hr" evidence="q:HitRatio"/>
      <var variablename="mc" evidence="q:Coverage"/>
    </variables>
  </QualityAssertion>
  <action name="route">
    <splitter>
      <branch name="keep"><condition>ScoreClass in q:high, q:mid</condition></branch>
      <branch name="review"><condition>hr &gt; 0.5</condition></branch>
    </splitter>
  </action>
</QualityView>`

func TestCompileSplitterView(t *testing.T) {
	v, err := qvlang.Parse([]byte(splitterViewXML))
	if err != nil {
		t.Fatal(err)
	}
	r, err := qvlang.Resolve(v, ontology.NewIQModel())
	if err != nil {
		t.Fatal(err)
	}
	c, err := testCompiler(t).Compile(r)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	items := make([]evidence.Item, 8)
	for i := range items {
		items[i] = item(i)
	}
	out, err := c.Run(context.Background(), items)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	keep := out[SplitOutput("route", "keep")]
	review := out[SplitOutput("route", "review")]
	def := out[SplitOutput("route", PortDefault)]
	if keep == nil || review == nil || def == nil {
		t.Fatalf("missing split outputs: %v", keysOf(out))
	}
	total := map[evidence.Item]bool{}
	for _, g := range []*evidence.Map{keep, review, def} {
		for _, it := range g.Items() {
			total[it] = true
		}
	}
	if len(total) != 8 {
		t.Errorf("split covers %d items, want 8", len(total))
	}
	// Branch conditions are editable too.
	if err := c.SetBranchCondition("route", "keep", "ScoreClass in q:high"); err != nil {
		t.Fatalf("SetBranchCondition: %v", err)
	}
	if err := c.SetBranchCondition("route", "ghost", "hr > 0"); err == nil {
		t.Error("unknown branch should fail")
	}
	if err := c.SetFilterCondition("route", "hr > 0"); err == nil {
		t.Error("SetFilterCondition on splitter should fail")
	}
}

func TestRunRecordsProvenance(t *testing.T) {
	c := compilePaperView(t)
	c.Provenance = provenance.NewLog()
	items := make([]evidence.Item, 6)
	for i := range items {
		items[i] = item(i)
	}
	if _, err := c.Run(context.Background(), items); err != nil {
		t.Fatal(err)
	}
	if err := c.SetFilterCondition("filter top k score", "ScoreClass in q:high"); err != nil {
		t.Fatal(err)
	}
	out, err := c.Run(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	if c.Provenance.Len() != 2 {
		t.Fatalf("recorded %d runs, want 2", c.Provenance.Len())
	}
	last, ok := c.Provenance.LastRun()
	if !ok {
		t.Fatal("no last run")
	}
	if last.View != "protein-id-quality" || last.InputSize != 6 {
		t.Errorf("last run = %+v", last)
	}
	if got := last.Outputs[FilterOutput("filter top k score")]; got != out[FilterOutput("filter top k score")].Len() {
		t.Errorf("recorded output size %d != actual %d", got, out[FilterOutput("filter top k score")].Len())
	}
	// The edited condition is what the record carries.
	if cond := last.Conditions["filter top k score"]; !strings.Contains(cond, "q:high") ||
		strings.Contains(cond, "q:mid") {
		t.Errorf("recorded condition = %q", cond)
	}
	// Conditions() exposes the same snapshot directly.
	if cond := c.Conditions()["filter top k score"]; !strings.Contains(cond, "q:high") {
		t.Errorf("Conditions() = %v", c.Conditions())
	}
}

func TestCompileMissingBinding(t *testing.T) {
	v, _ := qvlang.Parse([]byte(qvlang.PaperViewXML))
	r, err := qvlang.Resolve(v, ontology.NewIQModel())
	if err != nil {
		t.Fatal(err)
	}
	c := testCompiler(t)
	c.Bindings = binding.NewRegistry(nil) // empty
	if _, err := c.Compile(r); err == nil {
		t.Error("compilation without bindings should fail")
	}
	c2 := testCompiler(t)
	c2.Repositories = nil
	if _, err := c2.Compile(r); err == nil {
		t.Error("compilation without repositories should fail")
	}
}

func TestEmbedIntoHostWorkflow(t *testing.T) {
	// A miniature of Figure 6: host = producer → [quality view] → consumer,
	// with an adapter converting the producer's output format.
	qv := compilePaperView(t)

	host := workflow.New("host")
	host.MustAddProcessor(&workflow.Func{
		PName:   "ProteinIdentification",
		Outputs: []string{"hits"},
		Fn: func(context.Context, workflow.Ports) (workflow.Ports, error) {
			// The producer emits raw accession strings, not a map — the
			// adapter converts.
			return workflow.Ports{"hits": []string{"P0", "P1", "P2", "P3"}}, nil
		},
	})
	var consumed *evidence.Map
	host.MustAddProcessor(&workflow.Func{
		PName:  "GOARetrieval",
		Inputs: []string{"proteins"},
		Fn: func(_ context.Context, in workflow.Ports) (workflow.Ports, error) {
			consumed = in["proteins"].(*evidence.Map)
			return workflow.Ports{}, nil
		},
	})

	adapter := &workflow.Func{
		PName:   "AccessionListAdapter",
		Inputs:  []string{AdapterIn},
		Outputs: []string{AdapterOut},
		Fn: func(_ context.Context, in workflow.Ports) (workflow.Ports, error) {
			accs := in[AdapterIn].([]string)
			m := evidence.NewMap()
			for _, a := range accs {
				m.AddItem(rdf.IRI("urn:lsid:test.org:hit:" + a))
			}
			return workflow.Ports{AdapterOut: m}, nil
		},
	}

	desc := &DeploymentDescriptor{
		Target:   qv.Workflow.Name(),
		Adapters: []AdapterDecl{{Name: "AccessionListAdapter"}},
		Connectors: []ConnectorDecl{
			{From: "ProteinIdentification", FromPort: "hits", To: qv.Workflow.Name(), ToPort: PortDataSet, Via: "AccessionListAdapter"},
			{From: qv.Workflow.Name(), FromPort: FilterOutput("filter top k score"), To: "GOARetrieval", ToPort: "proteins"},
		},
	}
	err := Embed(host, qv, desc, map[string]workflow.Processor{"AccessionListAdapter": adapter})
	if err != nil {
		t.Fatalf("Embed: %v", err)
	}
	if _, err := host.Run(context.Background(), nil); err != nil {
		t.Fatalf("host Run: %v", err)
	}
	if consumed == nil {
		t.Fatal("consumer never ran")
	}
	if consumed.Len() != 2 { // indices 0 and 2 are strong
		t.Errorf("consumer received %d items, want 2: %v", consumed.Len(), consumed.Items())
	}
}

func TestEmbedErrors(t *testing.T) {
	qv := compilePaperView(t)
	host := workflow.New("host")
	// Descriptor references an unregistered adapter.
	desc := &DeploymentDescriptor{Adapters: []AdapterDecl{{Name: "ghost"}}}
	if err := Embed(host, qv, desc, nil); err == nil {
		t.Error("unregistered adapter should fail")
	}
	// Connector via an undeclared adapter.
	qv2 := compilePaperView(t)
	host2 := workflow.New("host2")
	desc2 := &DeploymentDescriptor{Connectors: []ConnectorDecl{
		{From: "x", FromPort: "y", To: "z", ToPort: "w", Via: "undeclared"},
	}}
	if err := Embed(host2, qv2, desc2, nil); err == nil {
		t.Error("undeclared adapter in connector should fail")
	}
}

func TestDeploymentDescriptorRoundTrip(t *testing.T) {
	desc := &DeploymentDescriptor{
		Target:   "protein-id-quality",
		Adapters: []AdapterDecl{{Name: "A"}},
		Connectors: []ConnectorDecl{
			{From: "p", FromPort: "o", To: "q", ToPort: "i", Via: "A"},
			{From: "q", FromPort: "o2", To: "r", ToPort: "i2"},
		},
	}
	data, err := desc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseDeployment(data)
	if err != nil {
		t.Fatalf("ParseDeployment: %v", err)
	}
	if back.Target != desc.Target || len(back.Adapters) != 1 || len(back.Connectors) != 2 {
		t.Errorf("round trip = %+v", back)
	}
	if back.Connectors[0].Via != "A" || back.Connectors[1].Via != "" {
		t.Errorf("connectors = %+v", back.Connectors)
	}
	if _, err := ParseDeployment([]byte("not xml")); err == nil {
		t.Error("bad XML should fail")
	}
}

func keysOf(m map[string]*evidence.Map) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func BenchmarkCompilePaperView(b *testing.B) {
	v, _ := qvlang.Parse([]byte(qvlang.PaperViewXML))
	r, err := qvlang.Resolve(v, ontology.NewIQModel())
	if err != nil {
		b.Fatal(err)
	}
	t := &testing.T{}
	c := testCompiler(t)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compile(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunCompiledView(b *testing.B) {
	t := &testing.T{}
	c := func() *Compiled {
		v, _ := qvlang.Parse([]byte(qvlang.PaperViewXML))
		r, _ := qvlang.Resolve(v, ontology.NewIQModel())
		compiled, err := testCompiler(t).Compile(r)
		if err != nil {
			b.Fatal(err)
		}
		return compiled
	}()
	items := make([]evidence.Item, 50)
	for i := range items {
		items[i] = item(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Run(context.Background(), items); err != nil {
			b.Fatal(err)
		}
	}
}
