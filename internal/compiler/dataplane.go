package compiler

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"qurator/internal/evidence"
	"qurator/internal/qcache"
	"qurator/internal/services"
	"qurator/internal/telemetry"
	"qurator/internal/workflow"
)

// Data-plane metrics: how wide invocations fan out, and where split-mode
// responses carry groups the compiled workflow has no port for.
var (
	shardFanout = telemetry.Default.HistogramVec(
		"qurator_dataplane_shards",
		"Shards per service invocation (1 = serial fast path).",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256},
		"processor")
	strayGroups = telemetry.Default.CounterVec(
		"qurator_dataplane_stray_groups_total",
		"Split-mode service responses carrying a group with no matching output port; their items are routed to the default port instead of being dropped.",
		"processor")
)

// invokeErr wraps a data-plane failure with the processor, service and
// operation it belongs to, so degraded-mode FailureLog entries name their
// culprit (plain svc.Invoke errors used to surface bare).
func (p *serviceProcessor) invokeErr(err error, shard, total int) error {
	op := p.op
	if op == "" {
		op = "invoke"
	}
	if total > 1 {
		return fmt.Errorf("compiler: processor %q: service %q op %q (shard %d/%d): %w",
			p.name, p.svc.Describe().Name, op, shard+1, total, err)
	}
	return fmt.Errorf("compiler: processor %q: service %q op %q: %w",
		p.name, p.svc.Describe().Name, op, err)
}

// cacheable reports whether this processor's responses may be memoised:
// only modes whose response is a pure function of the request envelope.
// Enrichment reads mutable repositories (a cached response would go stale
// when annotators write) and annotators ARE the writes (caching would
// silently skip them), so both always invoke.
func (p *serviceProcessor) cacheable() bool {
	switch p.mode {
	case modeAssertion, modeFilter, modeSplit:
		return p.cache != nil
	default:
		return false
	}
}

// cacheKey digests the full invocation identity: service, operation, the
// config snapshot in declared order (splitter group order is significant
// — it fixes response group order), and the shard payload's canonical
// encoding. Anything that can change the response changes the key.
func (p *serviceProcessor) cacheKey(cfg services.Config, shard *evidence.Map) string {
	k := qcache.NewKey().Str("qv1").Str(p.svc.Describe().Name).Str(p.op)
	for _, prm := range cfg.Params {
		k.Str(prm.Name).Str(prm.Value)
	}
	return k.Map(shard).Sum()
}

// invokeShard performs one service invocation, through the cache when the
// mode allows. Cached values are response envelopes — immutable once
// stored; every consumer decodes its own fresh maps from them.
func (p *serviceProcessor) invokeShard(ctx context.Context, shard *evidence.Map, cfg services.Config) (*services.Envelope, error) {
	invoke := func() (*services.Envelope, error) {
		req := services.NewEnvelope(shard)
		req.Config = cfg
		req.Operation = p.op
		return p.svc.Invoke(ctx, req)
	}
	if !p.cacheable() {
		return invoke()
	}
	v, _, err := p.cache.GetOrCompute(ctx, p.cacheKey(cfg, shard), func() (any, error) {
		return invoke()
	})
	if err != nil {
		return nil, err
	}
	return v.(*services.Envelope), nil
}

// shardInput splits the processor's input for fan-out. Sharding engages
// only when a shard size is configured, the input is larger than one
// shard, and the service declares item scope — collection-scoped services
// (the §5.1 statistical classifier) must see the whole map or their
// output changes.
func (p *serviceProcessor) shardInput(m *evidence.Map) []*evidence.Map {
	if p.shardSize <= 0 || m.Len() <= p.shardSize {
		return []*evidence.Map{m}
	}
	if p.svc.Describe().Scope != services.ScopeItem {
		return []*evidence.Map{m}
	}
	return m.Shard(p.shardSize)
}

// invokeShards fans the shards through a bounded worker pool and returns
// the responses in shard order. A single shard stays on the calling
// goroutine — the serial path allocates nothing extra. The first failure
// cancels the remaining work and is returned with shard context.
func (p *serviceProcessor) invokeShards(ctx context.Context, shards []*evidence.Map, cfg services.Config) ([]*services.Envelope, error) {
	shardFanout.With(p.name).Observe(float64(len(shards)))
	resps := make([]*services.Envelope, len(shards))
	if len(shards) == 1 {
		resp, err := p.invokeShard(ctx, shards[0], cfg)
		if err != nil {
			return nil, p.invokeErr(err, 0, 1)
		}
		resps[0] = resp
		return resps, nil
	}
	inflight := p.maxInflight
	if inflight <= 0 {
		inflight = runtime.GOMAXPROCS(0)
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sem := make(chan struct{}, inflight)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for i, shard := range shards {
		if cctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(i int, shard *evidence.Map) {
			defer wg.Done()
			// Acquire under cancellation: once a shard fails and cancel()
			// fires, queued workers must not block for a slot just to
			// notice the run is over.
			select {
			case sem <- struct{}{}:
			case <-cctx.Done():
				return
			}
			defer func() { <-sem }()
			if cctx.Err() != nil {
				return
			}
			resp, err := p.invokeShard(cctx, shard, cfg)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = p.invokeErr(err, i, len(shards))
					cancel()
				}
				mu.Unlock()
				return
			}
			resps[i] = resp
		}(i, shard)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return resps, nil
}

// mergeMapResponses decodes each shard response's map and concatenates
// them in shard order — for item-scoped services this reconstructs
// exactly the map a single whole-input invocation would have returned.
func (p *serviceProcessor) mergeMapResponses(resps []*services.Envelope) (*evidence.Map, error) {
	outs := make([]*evidence.Map, len(resps))
	for i, resp := range resps {
		m, err := resp.Map()
		if err != nil {
			return nil, p.invokeErr(err, i, len(resps))
		}
		outs[i] = m
	}
	return evidence.MergeShards(outs), nil
}

// mergeSplitResponses merges per-shard split groups port-wise, preserving
// shard order within every port. Groups the service returned that have no
// matching output port are routed — deterministically, sorted by group
// name after the true default group — into PortDefault and counted, so a
// service/view mismatch degrades items to "unclassified" instead of
// silently vanishing from the data set.
func (p *serviceProcessor) mergeSplitResponses(resps []*services.Envelope) (workflow.Ports, error) {
	known := make(map[string]bool, len(p.outs))
	for _, out := range p.outs {
		known[out] = true
	}
	perPort := make(map[string][]*evidence.Map, len(p.outs))
	for i, resp := range resps {
		groups, err := resp.GroupMaps()
		if err != nil {
			return nil, p.invokeErr(err, i, len(resps))
		}
		for _, out := range p.outs {
			if g, ok := groups[out]; ok {
				perPort[out] = append(perPort[out], g)
			}
		}
		var strays []string
		for name := range groups {
			if !known[name] {
				strays = append(strays, name)
			}
		}
		sort.Strings(strays)
		for _, name := range strays {
			strayGroups.With(p.name).Inc()
			perPort[PortDefault] = append(perPort[PortDefault], groups[name])
		}
	}
	ports := workflow.Ports{}
	for _, out := range p.outs {
		shards := perPort[out]
		if len(shards) == 0 {
			ports[out] = evidence.NewMap()
			continue
		}
		ports[out] = evidence.MergeShards(shards)
	}
	return ports, nil
}
