package compiler

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/qcache"
	"qurator/internal/qvlang"
	"qurator/internal/rdf"
	"qurator/internal/services"
	"qurator/internal/workflow"
)

// compilePaperViewDP compiles the §5.1 view with data-plane settings.
func compilePaperViewDP(t *testing.T, shardSize, maxInflight int, cache *qcache.Cache) *Compiled {
	t.Helper()
	v, err := qvlang.Parse([]byte(qvlang.PaperViewXML))
	if err != nil {
		t.Fatal(err)
	}
	r, err := qvlang.Resolve(v, ontology.NewIQModel())
	if err != nil {
		t.Fatal(err)
	}
	c := testCompiler(t)
	c.ShardSize = shardSize
	c.MaxInflight = maxInflight
	c.Cache = cache
	compiled, err := c.Compile(r)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return compiled
}

func canonical(t *testing.T, m *evidence.Map) string {
	t.Helper()
	var b bytes.Buffer
	if err := m.WriteCanonical(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// runCanonical runs the compiled view and flattens every output to its
// canonical encoding, keyed by output name.
func runCanonical(t *testing.T, c *Compiled, items []evidence.Item) map[string]string {
	t.Helper()
	out, err := c.Run(context.Background(), items)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	enc := make(map[string]string, len(out))
	for name, m := range out {
		enc[name] = canonical(t, m)
	}
	return enc
}

// TestShardedEnactmentEquivalence pins the tentpole guarantee: for the
// §5.1 view — which mixes item-scoped QAs, a collection-scoped
// classifier, enrichment, an annotator and a filter — sharded and cached
// enactment is bit-identical to serial enactment, for any shard size and
// data-set size (empty and single-item included).
func TestShardedEnactmentEquivalence(t *testing.T) {
	for _, n := range []int{0, 1, 5, 16} {
		items := make([]evidence.Item, n)
		for i := range items {
			items[i] = item(i)
		}
		want := runCanonical(t, compilePaperViewDP(t, 0, 0, nil), items)
		for _, shardSize := range []int{1, 2, 3, 7, 100} {
			for _, cached := range []bool{false, true} {
				var cache *qcache.Cache
				if cached {
					cache = qcache.New(qcache.Options{Name: fmt.Sprintf("t-eq-%d-%d", n, shardSize)})
				}
				got := runCanonical(t, compilePaperViewDP(t, shardSize, 3, cache), items)
				if len(got) != len(want) {
					t.Fatalf("n=%d shard=%d cache=%v: %d outputs, want %d", n, shardSize, cached, len(got), len(want))
				}
				for name, enc := range want {
					if got[name] != enc {
						t.Errorf("n=%d shard=%d cache=%v: output %q diverged from serial enactment", n, shardSize, cached, name)
					}
				}
			}
		}
	}
}

// TestRepeatedRunsHitCache re-enacts an identical data set and checks the
// pure invocations (QAs, filter) answer from the cache while the
// repository-touching stages (annotator, enrichment) never enter it.
func TestRepeatedRunsHitCache(t *testing.T) {
	cache := qcache.New(qcache.Options{Name: "t-repeat"})
	c := compilePaperViewDP(t, 4, 2, cache)
	items := make([]evidence.Item, 12)
	for i := range items {
		items[i] = item(i)
	}
	first := runCanonical(t, c, items)
	afterFirst := cache.Stats()
	if afterFirst.Misses == 0 {
		t.Fatal("first run should populate the cache")
	}
	if afterFirst.Hits != 0 {
		t.Fatalf("first run hit the cache %d times over distinct payloads", afterFirst.Hits)
	}
	second := runCanonical(t, c, items)
	afterSecond := cache.Stats()
	if afterSecond.Hits == 0 {
		t.Fatal("second identical run should hit the cache")
	}
	if afterSecond.Misses != afterFirst.Misses {
		t.Fatalf("second identical run missed: %d → %d misses", afterFirst.Misses, afterSecond.Misses)
	}
	for name, enc := range first {
		if second[name] != enc {
			t.Errorf("output %q changed between identical runs", name)
		}
	}
}

// echoService is a controllable QualityService for processor-level tests:
// it stamps a marker key on every item (assertion/enrichment shape) or
// splits items into configured groups, counting invocations.
type echoService struct {
	name    string
	scope   services.Scope
	invokes atomic.Int64
	fail    error
	// splitInto, when set, routes items round-robin into these groups.
	splitInto []string
}

func (s *echoService) Describe() services.Info {
	return services.Info{Name: s.name, Kind: services.KindAssertion, Scope: s.scope}
}

func (s *echoService) Invoke(_ context.Context, req *services.Envelope) (*services.Envelope, error) {
	s.invokes.Add(1)
	if s.fail != nil {
		return nil, s.fail
	}
	m, err := req.Map()
	if err != nil {
		return nil, err
	}
	if len(s.splitInto) > 0 {
		groups := make(map[string]*evidence.Map, len(s.splitInto))
		for _, g := range s.splitInto {
			groups[g] = evidence.NewMap()
		}
		for i, it := range m.Items() {
			g := groups[s.splitInto[i%len(s.splitInto)]]
			g.AddItem(it)
		}
		resp := &services.Envelope{Service: s.name, Operation: "split"}
		resp.SetGroups(groups, s.splitInto)
		return resp, nil
	}
	for _, it := range m.Items() {
		m.Set(it, rdf.IRI("urn:echo:mark"), evidence.Bool(true))
	}
	resp := services.NewEnvelope(m)
	resp.Service = s.name
	return resp, nil
}

func echoItems(n int) *evidence.Map {
	m := evidence.NewMap()
	for i := 0; i < n; i++ {
		m.AddItem(rdf.IRI(fmt.Sprintf("urn:echo:%02d", i)))
	}
	return m
}

// TestSplitStrayGroupsRouteToDefault pins the satellite bugfix: groups a
// split service returns that have no output port used to be silently
// dropped — their items vanished from the data set. They now merge into
// PortDefault (deterministically) and are counted on telemetry.
func TestSplitStrayGroupsRouteToDefault(t *testing.T) {
	svc := &echoService{name: "stray-split", scope: services.ScopeItem,
		splitInto: []string{"known", "mystery", "enigma"}}
	p := &serviceProcessor{
		name: "Action:stray-test", svc: svc, mode: modeSplit,
		inPort: PortAnnotations, outs: []string{"known", PortDefault}, op: "split",
	}
	before := strayGroups.With(p.name).Value()
	in := echoItems(9)
	ports, err := p.Execute(context.Background(), workflow.Ports{PortAnnotations: in})
	if err != nil {
		t.Fatal(err)
	}
	known := ports["known"].(*evidence.Map)
	def := ports[PortDefault].(*evidence.Map)
	if known.Len()+def.Len() != in.Len() {
		t.Fatalf("items vanished: known=%d default=%d in=%d", known.Len(), def.Len(), in.Len())
	}
	if def.Len() != 6 {
		t.Fatalf("default carries %d items, want the 6 stray-group items", def.Len())
	}
	if got := strayGroups.With(p.name).Value() - before; got != 2 {
		t.Fatalf("stray-group counter advanced by %d, want 2 (mystery + enigma)", got)
	}

	// Deterministic: stray routing must not depend on map iteration order.
	again, err := p.Execute(context.Background(), workflow.Ports{PortAnnotations: echoItems(9)})
	if err != nil {
		t.Fatal(err)
	}
	if canonical(t, def) != canonical(t, again[PortDefault].(*evidence.Map)) {
		t.Fatal("stray routing is not deterministic")
	}
}

// TestInvokeErrorsCarryProcessorContext pins the satellite bugfix: service
// errors used to surface bare, leaving FailureLog entries ambiguous.
func TestInvokeErrorsCarryProcessorContext(t *testing.T) {
	svc := &echoService{name: "broken-svc", scope: services.ScopeItem,
		fail: fmt.Errorf("connection refused")}
	p := &serviceProcessor{
		name: "QA:broken", svc: svc, mode: modeAssertion,
		inPort: PortAnnotations, outs: []string{PortAnnotations},
	}
	_, err := p.Execute(context.Background(), workflow.Ports{PortAnnotations: echoItems(3)})
	if err == nil {
		t.Fatal("want error")
	}
	for _, want := range []string{`processor "QA:broken"`, `service "broken-svc"`, "connection refused"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q lacks %q", err, want)
		}
	}

	// Sharded failures additionally name the failing shard.
	p.shardSize = 1
	_, err = p.Execute(context.Background(), workflow.Ports{PortAnnotations: echoItems(3)})
	if err == nil {
		t.Fatal("want sharded error")
	}
	if !strings.Contains(err.Error(), "shard ") {
		t.Errorf("sharded error %q lacks shard context", err)
	}
}

// TestProcessorCacheGates pins which modes may be served from cache:
// assertion/filter/split are pure responses; enrichment and annotator
// touch mutable repositories and must invoke every time.
func TestProcessorCacheGates(t *testing.T) {
	for _, tc := range []struct {
		mode        mode
		wantInvokes int64
	}{
		{modeAssertion, 1},
		{modeFilter, 1},
		{modeEnrichment, 2},
		{modeAnnotator, 2},
	} {
		svc := &echoService{name: fmt.Sprintf("gate-%d", tc.mode), scope: services.ScopeItem}
		p := &serviceProcessor{
			name: fmt.Sprintf("P:gate-%d", tc.mode), svc: svc, mode: tc.mode,
			inPort: PortAnnotations, outs: []string{PortAnnotations},
			cache: qcache.New(qcache.Options{Name: fmt.Sprintf("t-gate-%d", tc.mode)}),
		}
		for run := 0; run < 2; run++ {
			if _, err := p.Execute(context.Background(), workflow.Ports{PortAnnotations: echoItems(4)}); err != nil {
				t.Fatalf("mode %d run %d: %v", tc.mode, run, err)
			}
		}
		if got := svc.invokes.Load(); got != tc.wantInvokes {
			t.Errorf("mode %d: %d invocations over two identical runs, want %d", tc.mode, got, tc.wantInvokes)
		}
	}
}

// TestCollectionScopedServiceNeverShards: a service that does not declare
// item scope receives the whole map regardless of shard size.
func TestCollectionScopedServiceNeverShards(t *testing.T) {
	svc := &echoService{name: "whole-map", scope: services.ScopeCollection}
	p := &serviceProcessor{
		name: "QA:whole", svc: svc, mode: modeAssertion,
		inPort: PortAnnotations, outs: []string{PortAnnotations},
		shardSize: 2, maxInflight: 4,
	}
	if _, err := p.Execute(context.Background(), workflow.Ports{PortAnnotations: echoItems(10)}); err != nil {
		t.Fatal(err)
	}
	if got := svc.invokes.Load(); got != 1 {
		t.Fatalf("collection-scoped service invoked %d times, want 1", got)
	}
}

// TestItemScopedServiceShards: shard fan-out happens, responses merge in
// order, and the item-wise result matches the serial one.
func TestItemScopedServiceShards(t *testing.T) {
	svc := &echoService{name: "sharded", scope: services.ScopeItem}
	p := &serviceProcessor{
		name: "QA:sharded", svc: svc, mode: modeAssertion,
		inPort: PortAnnotations, outs: []string{PortAnnotations},
		shardSize: 3, maxInflight: 2,
	}
	in := echoItems(10)
	ports, err := p.Execute(context.Background(), workflow.Ports{PortAnnotations: in})
	if err != nil {
		t.Fatal(err)
	}
	if got := svc.invokes.Load(); got != 4 { // ceil(10/3)
		t.Fatalf("invoked %d times, want 4 shards", got)
	}
	out := ports[PortAnnotations].(*evidence.Map)
	if out.Len() != in.Len() {
		t.Fatalf("merged %d items, want %d", out.Len(), in.Len())
	}
	for i, it := range in.Items() {
		if out.ItemAt(i) != it {
			t.Fatalf("item %d out of order after merge", i)
		}
		if !out.Has(it, rdf.IRI("urn:echo:mark")) {
			t.Fatalf("item %d lost its evidence", i)
		}
	}
}

// TestConsolidateLastWriterWins pins the order dependence of the
// ConsolidateAssertions merge: on a conflicting (item, key) the
// later input port wins, items keep first-seen order, and disjoint
// evidence unions.
func TestConsolidateLastWriterWins(t *testing.T) {
	it1, it2, it3 := item(1), item(2), item(3)
	key := ontology.HitRatio
	other := ontology.Coverage

	mkMap := func(fill func(m *evidence.Map)) *evidence.Map {
		m := evidence.NewMap()
		fill(m)
		return m
	}
	for _, tc := range []struct {
		name      string
		in0, in1  *evidence.Map
		wantVal   evidence.Value
		wantOrder []evidence.Item
	}{
		{
			name:      "conflicting value: in1 wins",
			in0:       mkMap(func(m *evidence.Map) { m.Set(it1, key, evidence.Float(0.1)) }),
			in1:       mkMap(func(m *evidence.Map) { m.Set(it1, key, evidence.Float(0.9)) }),
			wantVal:   evidence.Float(0.9),
			wantOrder: []evidence.Item{it1},
		},
		{
			name:      "reversed inputs: the other writer wins",
			in0:       mkMap(func(m *evidence.Map) { m.Set(it1, key, evidence.Float(0.9)) }),
			in1:       mkMap(func(m *evidence.Map) { m.Set(it1, key, evidence.Float(0.1)) }),
			wantVal:   evidence.Float(0.1),
			wantOrder: []evidence.Item{it1},
		},
		{
			name: "disjoint keys union; items keep first-seen order",
			in0: mkMap(func(m *evidence.Map) {
				m.Set(it2, key, evidence.Float(0.5))
				m.Set(it1, other, evidence.String_("a"))
			}),
			in1: mkMap(func(m *evidence.Map) {
				m.Set(it3, key, evidence.Float(0.7))
				m.Set(it1, key, evidence.Float(0.2))
			}),
			wantVal:   evidence.Float(0.2),
			wantOrder: []evidence.Item{it2, it1, it3},
		},
		{
			name:      "later null does not erase: absent keys are not written",
			in0:       mkMap(func(m *evidence.Map) { m.Set(it1, key, evidence.Float(0.4)) }),
			in1:       mkMap(func(m *evidence.Map) { m.AddItem(it1) }),
			wantVal:   evidence.Float(0.4),
			wantOrder: []evidence.Item{it1},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := &consolidateProcessor{name: ProcConsolidate, inputs: []string{"in0", "in1"}}
			ports, err := p.Execute(context.Background(), workflow.Ports{"in0": tc.in0, "in1": tc.in1})
			if err != nil {
				t.Fatal(err)
			}
			merged := ports[PortAnnotations].(*evidence.Map)
			if got := merged.Get(it1, key); got != tc.wantVal {
				t.Errorf("merged value = %v, want %v", got, tc.wantVal)
			}
			items := merged.Items()
			if len(items) != len(tc.wantOrder) {
				t.Fatalf("merged %d items, want %d", len(items), len(tc.wantOrder))
			}
			for i, want := range tc.wantOrder {
				if items[i] != want {
					t.Errorf("item %d = %v, want %v", i, items[i], want)
				}
			}
		})
	}
}

// TestShardEquivalenceAcrossShardSizes drives one item-scoped processor
// through every shard size and pins the canonical output against the
// serial run — the processor-level counterpart of the whole-view test.
func TestShardEquivalenceAcrossShardSizes(t *testing.T) {
	run := func(shardSize, n int) string {
		svc := &echoService{name: "eq", scope: services.ScopeItem}
		p := &serviceProcessor{
			name: "QA:eq", svc: svc, mode: modeAssertion,
			inPort: PortAnnotations, outs: []string{PortAnnotations},
			shardSize: shardSize, maxInflight: 4,
		}
		ports, err := p.Execute(context.Background(), workflow.Ports{PortAnnotations: echoItems(n)})
		if err != nil {
			t.Fatal(err)
		}
		return canonical(t, ports[PortAnnotations].(*evidence.Map))
	}
	var sizes []int
	for _, n := range []int{0, 1, 2, 9} {
		want := run(0, n)
		sizes = []int{1, 2, 3, 8, 50}
		for _, s := range sizes {
			if got := run(s, n); got != want {
				t.Errorf("n=%d shard=%d: output diverged", n, s)
			}
		}
	}
	sort.Ints(sizes) // keep the slice used; documents the coverage set
}

// gateService blocks every invocation on a release channel while
// deliberately ignoring the context — it models a slow remote host, and
// lets a test hold all semaphore slots while inspecting queued workers.
type gateService struct {
	name    string
	started chan struct{}
	release chan struct{}
	invokes atomic.Int64
}

func (s *gateService) Describe() services.Info {
	return services.Info{Name: s.name, Kind: services.KindAssertion, Scope: services.ScopeItem}
}

func (s *gateService) Invoke(_ context.Context, req *services.Envelope) (*services.Envelope, error) {
	s.invokes.Add(1)
	s.started <- struct{}{}
	<-s.release
	m, err := req.Map()
	if err != nil {
		return nil, err
	}
	resp := services.NewEnvelope(m)
	resp.Service = s.name
	return resp, nil
}

// TestInvokeShardsCancelReleasesQueuedWorkers pins the satellite bugfix:
// workers used to acquire the semaphore with an unconditional send, so
// after cancellation the whole queue still trickled through slot
// acquisition behind the in-flight invocations. Acquisition now selects
// on the cancelled context: with both slots held by a blocked service,
// cancelling must release every queued worker promptly.
func TestInvokeShardsCancelReleasesQueuedWorkers(t *testing.T) {
	const shards = 40
	svc := &gateService{
		name:    "gate-svc",
		started: make(chan struct{}, shards),
		release: make(chan struct{}),
	}
	p := &serviceProcessor{
		name: "QA:gate", svc: svc, mode: modeAssertion,
		inPort: PortAnnotations, outs: []string{PortAnnotations},
		shardSize: 1, maxInflight: 2,
	}
	in := echoItems(shards)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = p.invokeShards(ctx, p.shardInput(in), p.snapshotConfig())
	}()
	// Both slots held inside the gated service; 38 workers are queued.
	<-svc.started
	<-svc.started
	cancel()
	// The queued workers must exit without waiting for a slot. Poll the
	// goroutine count down: only the two in-flight workers, the fan-out
	// goroutine, and this test's helpers may remain.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+8 {
		if time.Now().After(deadline) {
			t.Fatalf("queued workers still blocked on the semaphore after cancel: %d goroutines (baseline %d)",
				runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Release the two in-flight invocations and let the fan-out finish.
	close(svc.release)
	<-done
	if got := svc.invokes.Load(); got > 4 {
		t.Errorf("%d shards invoked after cancellation, want ≤ 4", got)
	}
}
