package compiler

import (
	"context"
	"fmt"
	"sync"

	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/rdf"
	"qurator/internal/telemetry"
	"qurator/internal/workflow"
)

// degradedFailures counts quality-service failures survived in degraded
// mode, labelled by the failing processor.
var degradedFailures = telemetry.Default.CounterVec(
	"qurator_degraded_failures_total",
	"Quality-service failures absorbed by degraded-mode enactment.",
	"processor")

// Degraded-mode enactment: when a quality service fails for good — the
// resilient transport exhausted its retries, the circuit is open, the
// per-processor retry/timeout wrappers gave up — the paper's batch
// semantics would abort the whole enactment. For a long-running fabric
// that is the wrong trade: one flaky QA host should not destroy an
// entire window of work. Instead, a failed annotator, enrichment, or QA
// invocation marks the evidence it would have produced as unknown and
// the view completes; items whose accept/reject decision depended on the
// missing evidence ("undecided" items) are then routed per policy.

// DegradedMode selects what happens to undecided items after a quality
// service failed mid-enactment.
type DegradedMode int

const (
	// DegradeOff aborts the enactment on service failure (the strict
	// pre-resilience behaviour; the default).
	DegradeOff DegradedMode = iota
	// DegradeFailClosed completes the enactment; undecided items are
	// rejected (appear in no filter output) — conservative: missing
	// evidence is treated as failing every condition.
	DegradeFailClosed
	// DegradeFailOpen completes the enactment; undecided items are added
	// to every filter's accepted output — optimistic: missing evidence
	// is treated as satisfying every condition.
	DegradeFailOpen
	// DegradeQuarantine completes the enactment; undecided items are
	// collected on a dedicated "quarantine" output (and removed from
	// splitter default ports) for later reprocessing.
	DegradeQuarantine
)

// String implements fmt.Stringer.
func (m DegradedMode) String() string {
	switch m {
	case DegradeOff:
		return "off"
	case DegradeFailClosed:
		return "fail-closed"
	case DegradeFailOpen:
		return "fail-open"
	case DegradeQuarantine:
		return "quarantine"
	default:
		return fmt.Sprintf("DegradedMode(%d)", int(m))
	}
}

// ParseDegradedMode parses the command-line spelling of a mode.
func ParseDegradedMode(s string) (DegradedMode, error) {
	switch s {
	case "", "off":
		return DegradeOff, nil
	case "fail-closed", "failclosed":
		return DegradeFailClosed, nil
	case "fail-open", "failopen":
		return DegradeFailOpen, nil
	case "quarantine":
		return DegradeQuarantine, nil
	default:
		return DegradeOff, fmt.Errorf("compiler: unknown degraded mode %q (want off, fail-closed, fail-open, or quarantine)", s)
	}
}

// QuarantineOutput is the extra Run output holding undecided items under
// DegradeQuarantine (always present in that mode, empty when the run was
// clean).
const QuarantineOutput = "quarantine"

// DegradedEvidence marks an item whose evidence is unknown because a
// quality service failed: the consolidated annotation output carries
// (item, DegradedEvidence) → the failed processor's name for every item
// the failure touched.
var DegradedEvidence = rdf.IRI(ontology.QuratorNS + "DegradedEvidence")

// Failure records one quality-service failure survived in degraded mode.
type Failure struct {
	// Processor is the workflow processor that failed.
	Processor string
	// Err is the final error after retry/timeout policy was exhausted.
	Err error
	// Items is the data set the processor was invoked over — the items
	// whose evidence is now (partially) unknown.
	Items []evidence.Item
	// TraceID is the telemetry trace of the enactment that survived the
	// failure, linking the log entry to its span tree.
	TraceID string
}

// FailureLog collects the failures survived during one enactment. It is
// carried in the context so that the compiled processors — which are
// shared across concurrent runs (the streaming enactor runs windows in
// parallel) — never hold per-run state.
type FailureLog struct {
	mu       sync.Mutex
	failures []Failure
}

// NewFailureLog returns an empty log.
func NewFailureLog() *FailureLog { return &FailureLog{} }

// add records one failure.
func (l *FailureLog) add(f Failure) {
	l.mu.Lock()
	l.failures = append(l.failures, f)
	l.mu.Unlock()
}

// Failures returns the recorded failures in occurrence order.
func (l *FailureLog) Failures() []Failure {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Failure(nil), l.failures...)
}

type failureLogKey struct{}

// WithFailureLog attaches a failure log to the context, opting the
// enactment into degraded-mode failure collection: compiled quality
// processors swallow terminal failures into the log instead of aborting.
// Compiled.Execute attaches one automatically when a degraded mode is
// set; callers attach their own to observe the failures of a run.
func WithFailureLog(ctx context.Context, l *FailureLog) context.Context {
	return context.WithValue(ctx, failureLogKey{}, l)
}

// FailureLogFrom returns the failure log attached to the context, if any.
func FailureLogFrom(ctx context.Context) (*FailureLog, bool) {
	l, ok := ctx.Value(failureLogKey{}).(*FailureLog)
	return l, ok
}

// degradeProcessor wraps a quality-service processor (outside its
// retry/timeout decorators) so terminal failures degrade instead of
// aborting: the failure is recorded in the run's FailureLog and the
// processor's inputs pass through untouched — downstream sees the items
// with whatever evidence they already had, i.e. the failed service's
// contribution is unknown. With no FailureLog in the context (degraded
// mode off) the wrapper is transparent and failures abort as before.
type degradeProcessor struct {
	inner  workflow.Processor
	pmode  mode
	inPort string
}

func (d *degradeProcessor) Name() string          { return d.inner.Name() }
func (d *degradeProcessor) InputPorts() []string  { return d.inner.InputPorts() }
func (d *degradeProcessor) OutputPorts() []string { return d.inner.OutputPorts() }

func (d *degradeProcessor) Execute(ctx context.Context, in workflow.Ports) (workflow.Ports, error) {
	out, err := d.inner.Execute(ctx, in)
	if err == nil {
		return out, nil
	}
	// A cancelled enactment is not a service failure — propagate. (A
	// per-processor deadline from the Timeout decorator expires the
	// child context, not this one, so it still degrades.)
	if ctx.Err() != nil {
		return nil, err
	}
	log, ok := FailureLogFrom(ctx)
	if !ok {
		return nil, err
	}
	f := Failure{Processor: d.inner.Name(), Err: err, TraceID: telemetry.TraceIDFrom(ctx)}
	m, _ := in[d.inPort].(*evidence.Map)
	if m != nil {
		f.Items = append([]evidence.Item(nil), m.Items()...)
	}
	log.add(f)
	degradedFailures.With(d.inner.Name()).Inc()
	switch d.pmode {
	case modeAnnotator:
		// Annotators have no data output; the evidence simply never
		// reaches the repository.
		return workflow.Ports{}, nil
	case modeEnrichment, modeAssertion:
		// Pass the input map through unchanged: items keep the evidence
		// they already carry; this service's contribution is unknown.
		// Downstream only reads the map, so no clone is needed.
		if m == nil {
			m = evidence.NewMap()
		}
		return workflow.Ports{d.inner.OutputPorts()[0]: m}, nil
	default:
		return nil, err
	}
}

// applyDegradedRouting post-processes an enactment's outputs after
// failures were survived: it marks affected items' evidence unknown on
// the consolidated annotation output and routes undecided items per the
// compiled policy. An item is undecided when a failure touched it and no
// action claimed it — it appears in no filter output and in no splitter
// branch other than the default port (the splitter's k+1-th "none of the
// above" group, where condition-evaluation errors land). The mode is
// passed in — read once by the caller — so a concurrent SetDegradedMode
// cannot split one run across two policies.
func (c *Compiled) applyDegradedRouting(out workflow.Ports, log *FailureLog, mode DegradedMode) {
	if mode == DegradeQuarantine {
		if _, ok := out[QuarantineOutput]; !ok {
			out[QuarantineOutput] = evidence.NewMap()
		}
	}
	failures := log.Failures()
	if len(failures) == 0 {
		return
	}

	ann, _ := out[OutputAnnotations].(*evidence.Map)
	if ann == nil {
		ann = evidence.NewMap()
	}
	affected := map[evidence.Item]bool{}
	for _, f := range failures {
		for _, it := range f.Items {
			affected[it] = true
			ann.Set(it, DegradedEvidence, evidence.String_(f.Processor))
		}
	}

	decided := func(it evidence.Item) bool {
		for action, p := range c.actions {
			for _, port := range p.outs {
				if p.op == "split" && port == PortDefault {
					continue
				}
				if m, ok := out[outputName(action, port)].(*evidence.Map); ok && m.HasItem(it) {
					return true
				}
			}
		}
		return false
	}
	var undecided []evidence.Item
	undecidedSet := map[evidence.Item]bool{}
	for _, it := range ann.Items() { // annotation-map order keeps routing deterministic
		if affected[it] && !decided(it) {
			undecided = append(undecided, it)
			undecidedSet[it] = true
		}
	}
	if len(undecided) == 0 {
		return
	}

	switch mode {
	case DegradeFailOpen:
		for action, p := range c.actions {
			if p.op != "filter" {
				continue
			}
			m, ok := out[outputName(action, PortAccepted)].(*evidence.Map)
			if !ok {
				continue
			}
			for _, it := range undecided {
				m.AddItem(it)
				for k, v := range ann.Row(it) {
					m.Set(it, k, v)
				}
			}
		}
	case DegradeQuarantine:
		q := out[QuarantineOutput].(*evidence.Map)
		for _, it := range undecided {
			q.AddItem(it)
			for k, v := range ann.Row(it) {
				q.Set(it, k, v)
			}
		}
		// Quarantined items leave the splitter default ports — they are
		// parked for reprocessing, not classified "none of the above".
		for action, p := range c.actions {
			if p.op != "split" {
				continue
			}
			if m, ok := out[outputName(action, PortDefault)].(*evidence.Map); ok {
				out[outputName(action, PortDefault)] = m.Filter(func(it evidence.Item) bool {
					return !undecidedSet[it]
				})
			}
		}
	}
	// DegradeFailClosed: undecided items stay rejected; the marker on the
	// annotation output is the only trace.
}
