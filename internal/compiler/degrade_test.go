package compiler

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"qurator/internal/annotstore"
	"qurator/internal/binding"
	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/qa"
	"qurator/internal/qvlang"
	"qurator/internal/services"
)

// flakyService wraps a quality service so the first `failures`
// invocations fail (or, with hang set, every invocation blocks until the
// context expires). It stands in for a remote host whose resilient
// transport has already given up.
type flakyService struct {
	inner    services.QualityService
	failures int
	hang     bool

	mu    sync.Mutex
	calls int
}

func (f *flakyService) Describe() services.Info { return f.inner.Describe() }

func (f *flakyService) Invoke(ctx context.Context, req *services.Envelope) (*services.Envelope, error) {
	f.mu.Lock()
	f.calls++
	n := f.calls
	f.mu.Unlock()
	if f.hang {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	if n <= f.failures {
		return nil, fmt.Errorf("flaky: injected failure %d", n)
	}
	return f.inner.Invoke(ctx, req)
}

func (f *flakyService) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// degradeCompiler is testCompiler with hooks: wrap lets a test substitute
// any deployed service (keyed by service name) before binding.
func degradeCompiler(t *testing.T, wrap map[string]func(services.QualityService) services.QualityService) *Compiler {
	t.Helper()
	model := ontology.NewIQModel()
	repos := annotstore.NewRegistry()
	local := services.NewRegistry()
	add := func(name string, svc services.QualityService) {
		if w, ok := wrap[name]; ok {
			svc = w(svc)
		}
		local.Add(svc)
	}
	add("ImprintOutputAnnotator", &services.AnnotatorService{
		ServiceName:  "ImprintOutputAnnotator",
		Annotator:    testAnnotator(),
		Repositories: repos,
	})
	add("HR_MC_score", &services.AssertionService{
		ServiceName: "HR_MC_score",
		QA:          qa.NewUniversalPIScore(qvlang.TagKeyFor("HR_MC")),
	})
	add("HR_score", &services.AssertionService{
		ServiceName: "HR_score",
		QA:          qa.NewHRScore(qvlang.TagKeyFor("HR")),
	})
	add("PIScoreClassifier", &services.AssertionService{
		ServiceName: "PIScoreClassifier",
		QA:          qa.NewPIScoreClassifier(),
	})
	bindings := binding.NewRegistry(model)
	bindings.MustBind(binding.Binding{Concept: ontology.ImprintOutputAnnotation, Kind: binding.ServiceResource, Locator: "local:ImprintOutputAnnotator"})
	bindings.MustBind(binding.Binding{Concept: ontology.UniversalPIScore2, Kind: binding.ServiceResource, Locator: "local:HR_MC_score"})
	bindings.MustBind(binding.Binding{Concept: ontology.HRScoreAssertion, Kind: binding.ServiceResource, Locator: "local:HR_score"})
	bindings.MustBind(binding.Binding{Concept: ontology.PIScoreClassifier, Kind: binding.ServiceResource, Locator: "local:PIScoreClassifier"})
	return &Compiler{
		Bindings:     bindings,
		Resolver:     &binding.Resolver{Local: local},
		Repositories: repos,
	}
}

func compileWith(t *testing.T, c *Compiler, viewXML string) *Compiled {
	t.Helper()
	v, err := qvlang.Parse([]byte(viewXML))
	if err != nil {
		t.Fatal(err)
	}
	r, err := qvlang.Resolve(v, ontology.NewIQModel())
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := c.Compile(r)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return compiled
}

func alwaysFail(svc services.QualityService) services.QualityService {
	return &flakyService{inner: svc, failures: 1 << 30}
}

func TestDegradeOffAbortsOnServiceFailure(t *testing.T) {
	c := degradeCompiler(t, map[string]func(services.QualityService) services.QualityService{
		"HR_MC_score": alwaysFail,
	})
	compiled := compileWith(t, c, qvlang.PaperViewXML)
	if _, err := compiled.Run(context.Background(), []evidence.Item{item(0), item(1)}); err == nil {
		t.Fatal("DegradeOff must abort the enactment when a QA fails")
	}
}

func TestDegradeFailClosedRejectsAndMarks(t *testing.T) {
	c := degradeCompiler(t, map[string]func(services.QualityService) services.QualityService{
		"HR_MC_score": alwaysFail,
	})
	c.Degraded = DegradeFailClosed
	compiled := compileWith(t, c, qvlang.PaperViewXML)

	items := make([]evidence.Item, 10)
	for i := range items {
		items[i] = item(i)
	}
	log := NewFailureLog()
	ctx := WithFailureLog(context.Background(), log)
	out, err := compiled.Run(ctx, items)
	if err != nil {
		t.Fatalf("fail-closed run must complete: %v", err)
	}
	// The filter condition needs HR_MC, which never arrived: every item
	// is rejected.
	if got := out[FilterOutput("filter top k score")].Len(); got != 0 {
		t.Errorf("fail-closed accepted %d items, want 0", got)
	}
	// Every item is marked degraded on the consolidated output.
	ann := out[OutputAnnotations]
	for _, it := range items {
		v := ann.Get(it, DegradedEvidence)
		if v.IsNull() {
			t.Fatalf("item %v not marked degraded", it)
		}
		if v.AsString() != "QA:HR_MC_score" {
			t.Errorf("degraded marker = %q, want the failed processor name", v.AsString())
		}
	}
	// The caller's log saw the failure with the full affected data set.
	fails := log.Failures()
	if len(fails) != 1 {
		t.Fatalf("failures = %d, want 1 (%v)", len(fails), fails)
	}
	if fails[0].Processor != "QA:HR_MC_score" || len(fails[0].Items) != 10 || fails[0].Err == nil {
		t.Errorf("failure = %+v", fails[0])
	}
}

func TestDegradeFailOpenAcceptsUndecided(t *testing.T) {
	c := degradeCompiler(t, map[string]func(services.QualityService) services.QualityService{
		"HR_MC_score": alwaysFail,
	})
	c.Degraded = DegradeFailOpen
	compiled := compileWith(t, c, qvlang.PaperViewXML)

	items := make([]evidence.Item, 10)
	for i := range items {
		items[i] = item(i)
	}
	out, err := compiled.Run(context.Background(), items)
	if err != nil {
		t.Fatalf("fail-open run must complete: %v", err)
	}
	accepted := out[FilterOutput("filter top k score")]
	if accepted.Len() != 10 {
		t.Fatalf("fail-open accepted %d items, want all 10", accepted.Len())
	}
	// Waved-through items carry their marker, so downstream can tell an
	// earned accept from a degraded one.
	if !accepted.Has(item(1), DegradedEvidence) {
		t.Error("fail-open item should carry the degraded marker")
	}
	// Evidence that did arrive (the HR score from the healthy QA) rides
	// along into the output.
	if !accepted.Has(item(0), qvlang.TagKeyFor("HR")) {
		t.Error("fail-open item should keep the evidence that did arrive")
	}
}

func TestDegradeQuarantineRoutesSplitterUndecided(t *testing.T) {
	c := degradeCompiler(t, map[string]func(services.QualityService) services.QualityService{
		"PIScoreClassifier": alwaysFail,
	})
	c.Degraded = DegradeQuarantine
	compiled := compileWith(t, c, splitterViewXML)

	items := make([]evidence.Item, 8)
	for i := range items {
		items[i] = item(i)
	}
	out, err := compiled.Run(context.Background(), items)
	if err != nil {
		t.Fatalf("quarantine run must complete: %v", err)
	}
	// The classifier never ran, so the "keep" branch (ScoreClass ...)
	// decides nobody; "review" (hr > 0.5) still works on the enrichment
	// evidence and claims the strong (even-index) items.
	review := out[SplitOutput("route", "review")]
	if review.Len() != 4 {
		t.Errorf("review branch has %d items, want 4", review.Len())
	}
	q := out[QuarantineOutput]
	if q == nil {
		t.Fatal("quarantine output missing")
	}
	if q.Len() != 4 {
		t.Errorf("quarantine has %d items, want the 4 weak ones", q.Len())
	}
	for _, it := range q.Items() {
		if !q.Has(it, DegradedEvidence) {
			t.Errorf("quarantined item %v lacks the degraded marker", it)
		}
	}
	// Quarantined items are parked, not classified "none of the above".
	if def := out[SplitOutput("route", PortDefault)]; def.Len() != 0 {
		t.Errorf("default port has %d items, want 0 (all moved to quarantine)", def.Len())
	}
}

func TestDegradeQuarantineOutputAlwaysPresent(t *testing.T) {
	c := degradeCompiler(t, nil)
	c.Degraded = DegradeQuarantine
	compiled := compileWith(t, c, qvlang.PaperViewXML)
	out, err := compiled.Run(context.Background(), []evidence.Item{item(0), item(1)})
	if err != nil {
		t.Fatal(err)
	}
	q, ok := out[QuarantineOutput]
	if !ok || q.Len() != 0 {
		t.Errorf("clean quarantine run should expose an empty quarantine output, got %v", q)
	}
}

func TestCompilerRetryRecoversTransientFailure(t *testing.T) {
	// The QA fails twice then works; with three application-level
	// attempts the run completes with full (non-degraded) results —
	// workflow.Retry is live in the compiled processors.
	flaky := &flakyService{failures: 2}
	c := degradeCompiler(t, map[string]func(services.QualityService) services.QualityService{
		"HR_MC_score": func(svc services.QualityService) services.QualityService {
			flaky.inner = svc
			return flaky
		},
	})
	c.RetryAttempts = 3
	compiled := compileWith(t, c, qvlang.PaperViewXML)

	items := make([]evidence.Item, 10)
	for i := range items {
		items[i] = item(i)
	}
	out, err := compiled.Run(context.Background(), items)
	if err != nil {
		t.Fatalf("retry should recover: %v", err)
	}
	if got := out[FilterOutput("filter top k score")].Len(); got != 5 {
		t.Errorf("accepted %d items, want the usual 5", got)
	}
	if flaky.callCount() != 3 {
		t.Errorf("QA invoked %d times, want 3 (2 failures + 1 success)", flaky.callCount())
	}
	if out[OutputAnnotations].Has(item(0), DegradedEvidence) {
		t.Error("recovered run must not be marked degraded")
	}
}

func TestCompilerTimeoutBoundsHangingService(t *testing.T) {
	// A hung QA host blocks until its context dies; the per-processor
	// timeout expires it and degraded mode turns it into unknown
	// evidence instead of a wedged enactment.
	c := degradeCompiler(t, map[string]func(services.QualityService) services.QualityService{
		"HR_MC_score": func(svc services.QualityService) services.QualityService {
			return &flakyService{inner: svc, hang: true}
		},
	})
	c.ProcessorTimeout = 20 * time.Millisecond
	c.Degraded = DegradeFailClosed
	compiled := compileWith(t, c, qvlang.PaperViewXML)

	log := NewFailureLog()
	ctx := WithFailureLog(context.Background(), log)
	done := make(chan struct{})
	var out map[string]*evidence.Map
	var err error
	go func() {
		out, err = compiled.Run(ctx, []evidence.Item{item(0), item(1)})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("enactment wedged on a hanging service despite the timeout")
	}
	if err != nil {
		t.Fatalf("degraded run must complete: %v", err)
	}
	if got := out[FilterOutput("filter top k score")].Len(); got != 0 {
		t.Errorf("accepted %d, want 0", got)
	}
	if fails := log.Failures(); len(fails) != 1 || fails[0].Processor != "QA:HR_MC_score" {
		t.Errorf("failures = %+v", fails)
	}
}

func TestAnnotatorFailureDegrades(t *testing.T) {
	c := degradeCompiler(t, map[string]func(services.QualityService) services.QualityService{
		"ImprintOutputAnnotator": alwaysFail,
	})
	c.Degraded = DegradeFailClosed
	compiled := compileWith(t, c, qvlang.PaperViewXML)

	log := NewFailureLog()
	ctx := WithFailureLog(context.Background(), log)
	out, err := compiled.Run(ctx, []evidence.Item{item(0), item(1), item(2)})
	if err != nil {
		t.Fatalf("annotator failure must degrade, not abort: %v", err)
	}
	if got := out[FilterOutput("filter top k score")].Len(); got != 0 {
		t.Errorf("no evidence was ever written; accepted %d, want 0", got)
	}
	found := false
	for _, f := range log.Failures() {
		if f.Processor == "Annotator:ImprintOutputAnnotator" && len(f.Items) == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("annotator failure not recorded: %+v", log.Failures())
	}
}

func TestParseDegradedMode(t *testing.T) {
	cases := map[string]DegradedMode{
		"":            DegradeOff,
		"off":         DegradeOff,
		"fail-closed": DegradeFailClosed,
		"failopen":    DegradeFailOpen,
		"quarantine":  DegradeQuarantine,
	}
	for in, want := range cases {
		got, err := ParseDegradedMode(in)
		if err != nil || got != want {
			t.Errorf("ParseDegradedMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseDegradedMode("yolo"); err == nil {
		t.Error("unknown mode should fail")
	}
	if DegradeQuarantine.String() != "quarantine" || DegradeOff.String() != "off" {
		t.Error("String() spelling drifted from ParseDegradedMode")
	}
}
