package compiler

import (
	"encoding/xml"
	"fmt"

	"qurator/internal/workflow"
)

// DeploymentDescriptor is the Taverna-targeted embedding declaration of
// paper §6.2: a succinct XML document declaring (i) the adapters that
// surround the embedded quality flow and (ii) the connections among host
// and embedded processors, which may pass through the adapters.
type DeploymentDescriptor struct {
	XMLName xml.Name `xml:"Deployment"`
	// Target names the quality workflow being embedded (informational).
	Target     string          `xml:"target,attr,omitempty"`
	Adapters   []AdapterDecl   `xml:"adapter"`
	Connectors []ConnectorDecl `xml:"connector"`
}

// AdapterDecl registers an adapter processor by name. Adapters typically
// account for differences in data formats between host and quality
// processors; they are processors themselves, registered out of band and
// referenced here.
type AdapterDecl struct {
	// Name is the registered adapter processor's name.
	Name string `xml:"name,attr"`
}

// ConnectorDecl wires a source processor/port to a target processor/port,
// optionally through a declared adapter.
type ConnectorDecl struct {
	From     string `xml:"from,attr"`
	FromPort string `xml:"fromPort,attr"`
	To       string `xml:"to,attr"`
	ToPort   string `xml:"toPort,attr"`
	// Via names an adapter the data passes through (optional).
	Via string `xml:"via,attr,omitempty"`
}

// ParseDeployment parses a deployment descriptor document.
func ParseDeployment(data []byte) (*DeploymentDescriptor, error) {
	var d DeploymentDescriptor
	if err := xml.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("compiler: bad deployment descriptor: %w", err)
	}
	return &d, nil
}

// Marshal renders the descriptor as XML.
func (d *DeploymentDescriptor) Marshal() ([]byte, error) {
	return xml.MarshalIndent(d, "", "  ")
}

// AdapterPorts are the conventional single in/out ports of an adapter.
const (
	AdapterIn  = "in"
	AdapterOut = "out"
)

// Embed inserts the compiled quality workflow into the host workflow
// following the descriptor: the quality workflow joins the host as a
// single processor (the homogeneity of the quality and data process
// models makes this "a conceptually simple operation", §6.2), declared
// adapters are added, and connectors are wired — with adapter hops
// expanded into two links.
//
// Adapters referenced by the descriptor must be supplied in the adapters
// map; each must expose the AdapterIn/AdapterOut ports.
func Embed(host *workflow.Workflow, qv *Compiled, desc *DeploymentDescriptor,
	adapters map[string]workflow.Processor) error {
	// The Compiled itself is the embedded processor (not its bare
	// workflow), so provenance recording survives embedding.
	if err := host.AddProcessor(qv); err != nil {
		return err
	}
	declared := map[string]bool{}
	for _, a := range desc.Adapters {
		p, ok := adapters[a.Name]
		if !ok {
			return fmt.Errorf("compiler: descriptor references unregistered adapter %q", a.Name)
		}
		if !hasPort(p.InputPorts(), AdapterIn) || !hasPort(p.OutputPorts(), AdapterOut) {
			return fmt.Errorf("compiler: adapter %q must expose ports %q/%q", a.Name, AdapterIn, AdapterOut)
		}
		if err := host.AddProcessor(p); err != nil {
			return err
		}
		declared[a.Name] = true
	}
	for _, c := range desc.Connectors {
		if c.Via == "" {
			if err := host.AddLink(workflow.Link{
				From: c.From, FromPort: c.FromPort, To: c.To, ToPort: c.ToPort,
			}); err != nil {
				return err
			}
			continue
		}
		if !declared[c.Via] {
			return fmt.Errorf("compiler: connector uses undeclared adapter %q", c.Via)
		}
		if err := host.AddLink(workflow.Link{
			From: c.From, FromPort: c.FromPort, To: c.Via, ToPort: AdapterIn,
		}); err != nil {
			return err
		}
		if err := host.AddLink(workflow.Link{
			From: c.Via, FromPort: AdapterOut, To: c.To, ToPort: c.ToPort,
		}); err != nil {
			return err
		}
	}
	return host.Validate()
}

func hasPort(ports []string, want string) bool {
	for _, p := range ports {
		if p == want {
			return true
		}
	}
	return false
}
