package compiler

// Multi-query optimization (ROADMAP item 3): thousands of registered
// views share annotators, QA services, and enrichment structure — the
// paper's §7 point that views are reusable quality knowledge. MergeViews
// performs common-subexpression elimination at the workflow level: it
// fingerprints each compiled view's processor subgraphs (the same
// identity the data-plane cacheKey hashes: service, operation, config),
// builds ONE workflow in which identical prefixes appear once, and fans
// per-view action processors out from the shared consolidation. Enacting
// the merged plan returns per-view output maps bit-identical to enacting
// every view independently.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"qurator/internal/evidence"
	"qurator/internal/provenance"
	"qurator/internal/qcache"
	"qurator/internal/rdf"
	"qurator/internal/telemetry"
	"qurator/internal/workflow"
)

// MQO metrics: how much structure a merged plan deduplicates.
var (
	mqoSharedPrefixes = telemetry.Default.GaugeVec(
		"qurator_mqo_shared_prefixes",
		"Quality-service processors shared by at least two views in a merged plan.",
		"plan")
	mqoSavedInvocations = telemetry.Default.CounterVec(
		"qurator_mqo_invocations_saved_total",
		"Quality-service invocations avoided by merged enactment versus enacting every member view independently.",
		"plan")
)

// identity digests one processor's own invocation identity — the same
// fields the data-plane cacheKey hashes (service name, operation, config
// in declared order) plus the compile-time mode and sharding scope. Two
// processors share an identity exactly when they would answer every
// request identically, which is also when they share qcache entries.
func (p *serviceProcessor) identity() *qcache.Key {
	info := p.svc.Describe()
	k := qcache.NewKey().Str("mqo1").Str(info.Name).Str(string(info.Scope)).
		Str(p.op).Str(fmt.Sprintf("%d", int(p.mode)))
	for _, prm := range p.snapshotConfig().Params {
		k.Str(prm.Name).Str(prm.Value)
	}
	return k
}

// viewPrints holds one view's subgraph fingerprints. A processor's
// fingerprint covers its own identity AND its whole upstream prefix, so
// equal fingerprints mean the subgraphs compute the same value:
//
//	annotator   = identity (annotators are roots)
//	enrichment  = identity + sorted annotator fingerprints
//	QA          = identity + enrichment fingerprint
//	consolidate = enrichment fingerprint + ORDERED QA fingerprints
//	              (consolidation order decides evidence.Map merge conflicts)
type viewPrints struct {
	anns   []string // declaration order, aligned with Compiled.annotators
	enrich string
	qas    []string // declaration order, aligned with Compiled.qas
	cons   string
}

func (c *Compiled) fingerprints() viewPrints {
	var fp viewPrints
	for _, p := range c.annotators {
		fp.anns = append(fp.anns, p.identity().Sum())
	}
	sorted := append([]string(nil), fp.anns...)
	sort.Strings(sorted)
	ek := c.enrichment.identity()
	for _, a := range sorted {
		ek.Str(a)
	}
	fp.enrich = ek.Sum()
	ck := qcache.NewKey().Str("cons").Str(fp.enrich)
	for _, p := range c.qas {
		s := p.identity().Str(fp.enrich).Sum()
		fp.qas = append(fp.qas, s)
		ck.Str(s)
	}
	fp.cons = ck.Sum()
	return fp
}

// renamedProcessor presents an existing processor instance under a new
// name so the same instance can join a merged workflow next to siblings
// that share its original name. Everything but the name — including
// runtime condition edits on the underlying processor — passes through.
type renamedProcessor struct {
	inner workflow.Processor
	name  string
}

func (r *renamedProcessor) Name() string          { return r.name }
func (r *renamedProcessor) InputPorts() []string  { return r.inner.InputPorts() }
func (r *renamedProcessor) OutputPorts() []string { return r.inner.OutputPorts() }
func (r *renamedProcessor) Execute(ctx context.Context, in workflow.Ports) (workflow.Ports, error) {
	return r.inner.Execute(ctx, in)
}

// renameGuarded renames a compiled quality-service processor for the
// merged graph. The rename sits INSIDE the degrade wrapper: the wrapper
// records failures under its inner processor's name, and per-view failure
// attribution needs the merged name there (EnactMap translates it back to
// each member view's own processor name afterwards).
func renameGuarded(p workflow.Processor, name string) workflow.Processor {
	if d, ok := p.(*degradeProcessor); ok {
		return &degradeProcessor{
			inner:  &renamedProcessor{inner: d.inner, name: name},
			pmode:  d.pmode,
			inPort: d.inPort,
		}
	}
	return &renamedProcessor{inner: p, name: name}
}

// mergedProcName namespaces a processor by its subgraph fingerprint so
// same-named processors from different prefixes coexist in one workflow.
func mergedProcName(orig, fp string) string { return orig + "@" + fp[:10] }

// memberView is one view's slice of the merged plan.
type memberView struct {
	view   *Compiled
	prefix string            // output namespace: "<view name>/"
	procs  map[string]string // merged quality-proc name → this view's own name
}

// MultiView is N compiled views merged into one enactable plan: shared
// annotator/enrichment/QA prefixes appear once, per-view actions fan out
// from the shared consolidations. Member views keep their run-time
// handles — SetFilterCondition and SetDegradedMode on a member apply to
// subsequent merged enactments too, because the merged plan reuses the
// member's processor instances (and therefore also its data-plane
// settings and qcache).
type MultiView struct {
	name    string
	wf      *workflow.Workflow
	members []*memberView

	sharedPrefixes int // quality-service processors used by ≥ 2 views
	mergedQuality  int // distinct quality-service processors in the plan
	totalQuality   int // Σ per-view quality-service processors
}

// mergeBuilder accumulates the first graph-construction error so the
// merge loop reads as structure, not error plumbing.
type mergeBuilder struct {
	wf  *workflow.Workflow
	err error
}

func (b *mergeBuilder) add(p workflow.Processor) {
	if b.err == nil {
		b.err = b.wf.AddProcessor(p)
	}
}
func (b *mergeBuilder) bindInput(name, proc, port string) {
	if b.err == nil {
		b.err = b.wf.BindInput(name, proc, port)
	}
}
func (b *mergeBuilder) bindOutput(name, proc, port string) {
	if b.err == nil {
		b.err = b.wf.BindOutput(name, proc, port)
	}
}
func (b *mergeBuilder) link(l workflow.Link) {
	if b.err == nil {
		b.err = b.wf.AddLink(l)
	}
}
func (b *mergeBuilder) control(c workflow.ControlLink) {
	if b.err == nil {
		b.err = b.wf.AddControlLink(c)
	}
}

// MergeViews builds a MultiView over the given compiled views. View names
// must be unique — they namespace the merged outputs ("<view>/<output>").
//
// Merged enactment runs every annotator once regardless of how many views
// declare it; that is equivalent to independent enactment because
// repository puts are set-semantic. What is NOT equivalent is an
// annotator write racing another view's enrichment read of the same
// (repository, evidence) cell, so MergeViews refuses view sets where
// different annotators provide the same cell, or where a view reads a
// cell that only another view's annotator writes.
func MergeViews(views ...*Compiled) (*MultiView, error) {
	if len(views) == 0 {
		return nil, fmt.Errorf("compiler: MergeViews needs at least one view")
	}
	nameSeen := map[string]bool{}
	nameKey := qcache.NewKey().Str("mqo-plan")
	for _, v := range views {
		n := v.Workflow.Name()
		if nameSeen[n] {
			return nil, fmt.Errorf("compiler: duplicate view name %q in view set", n)
		}
		nameSeen[n] = true
		nameKey.Str(n)
	}
	prints := make([]viewPrints, len(views))
	for i, v := range views {
		prints[i] = v.fingerprints()
	}
	if err := checkAnnotatorConflicts(views, prints); err != nil {
		return nil, err
	}

	mv := &MultiView{
		name: fmt.Sprintf("mqo:%d@%s", len(views), nameKey.Sum()[:10]),
	}
	b := &mergeBuilder{wf: workflow.New(mv.name)}
	shared := map[string]string{} // subgraph fingerprint → merged proc name
	usedBy := map[string]int{}    // merged quality-proc name → #views
	for i, v := range views {
		fp := prints[i]
		member := &memberView{
			view:   v,
			prefix: v.Workflow.Name() + "/",
			procs:  map[string]string{},
		}
		mv.totalQuality += len(v.annotators) + 1 + len(v.qas)

		for j, p := range v.annotators {
			merged, ok := shared[fp.anns[j]]
			if !ok {
				merged = mergedProcName(p.name, fp.anns[j])
				guarded, _ := v.Workflow.Processor(p.name)
				b.add(renameGuarded(guarded, merged))
				b.bindInput(PortDataSet, merged, PortDataSet)
				shared[fp.anns[j]] = merged
			}
			if _, mine := member.procs[merged]; !mine {
				usedBy[merged]++
			}
			member.procs[merged] = p.name
		}

		em, ok := shared[fp.enrich]
		if !ok {
			em = mergedProcName(ProcEnrichment, fp.enrich)
			guarded, _ := v.Workflow.Processor(ProcEnrichment)
			b.add(renameGuarded(guarded, em))
			b.bindInput(PortDataSet, em, PortDataSet)
			for j := range v.annotators {
				b.control(workflow.ControlLink{From: shared[fp.anns[j]], To: em})
			}
			shared[fp.enrich] = em
		}
		usedBy[em]++
		member.procs[em] = ProcEnrichment

		for j, p := range v.qas {
			merged, ok := shared[fp.qas[j]]
			if !ok {
				merged = mergedProcName(p.name, fp.qas[j])
				guarded, _ := v.Workflow.Processor(p.name)
				b.add(renameGuarded(guarded, merged))
				b.link(workflow.Link{
					From: em, FromPort: PortAnnotations,
					To: merged, ToPort: PortAnnotations,
				})
				shared[fp.qas[j]] = merged
			}
			if _, mine := member.procs[merged]; !mine {
				usedBy[merged]++
			}
			member.procs[merged] = p.name
		}

		cm, ok := shared[fp.cons]
		if !ok {
			cm = mergedProcName(ProcConsolidate, fp.cons)
			cons := &consolidateProcessor{name: cm}
			if len(v.qas) == 0 {
				cons.inputs = []string{"in0"}
				b.add(cons)
				b.link(workflow.Link{From: em, FromPort: PortAnnotations, To: cm, ToPort: "in0"})
			} else {
				for j := range v.qas {
					cons.inputs = append(cons.inputs, fmt.Sprintf("in%d", j))
				}
				b.add(cons)
				for j := range v.qas {
					b.link(workflow.Link{
						From: shared[fp.qas[j]], FromPort: PortAnnotations,
						To: cm, ToPort: fmt.Sprintf("in%d", j),
					})
				}
			}
			shared[fp.cons] = cm
		}
		b.bindOutput(member.prefix+OutputAnnotations, cm, PortAnnotations)

		// Actions are never shared: their conditions are per-view and
		// runtime-mutable. Reuse each view's own instances so condition
		// edits propagate, renamed into the view's namespace.
		for _, act := range v.Resolved.Actions {
			p := v.actions[act.Name]
			merged := member.prefix + p.name
			b.add(&renamedProcessor{inner: p, name: merged})
			b.link(workflow.Link{
				From: cm, FromPort: PortAnnotations,
				To: merged, ToPort: PortAnnotations,
			})
			for _, port := range p.outs {
				b.bindOutput(member.prefix+outputName(act.Name, port), merged, port)
			}
		}

		mv.members = append(mv.members, member)
	}
	if b.err != nil {
		return nil, fmt.Errorf("compiler: merging views: %w", b.err)
	}
	if err := b.wf.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: merged plan invalid: %w", err)
	}
	mv.wf = b.wf
	for _, n := range usedBy {
		mv.mergedQuality++
		if n >= 2 {
			mv.sharedPrefixes++
		}
	}
	mqoSharedPrefixes.With(mv.name).Set(float64(mv.sharedPrefixes))
	return mv, nil
}

// checkAnnotatorConflicts refuses merges whose annotator writes would
// race sibling views' enrichment reads (see MergeViews doc).
func checkAnnotatorConflicts(views []*Compiled, prints []viewPrints) error {
	type provider struct {
		view, svc, fp string
	}
	cell := func(repo string, ev rdf.Term) string {
		return repo + "|" + ev.String()
	}
	providers := map[string]provider{}
	for i, v := range views {
		for j, ann := range v.Resolved.Annotators {
			fp := prints[i].anns[j]
			for _, pv := range ann.Provides {
				c := cell(pv.Repository, pv.Evidence)
				if prev, ok := providers[c]; ok && prev.fp != fp {
					return fmt.Errorf(
						"compiler: cannot merge: annotators %q (view %q) and %q (view %q) both provide evidence %v in repository %q",
						prev.svc, prev.view, ann.Decl.ServiceName, v.Workflow.Name(), pv.Evidence, pv.Repository)
				}
				providers[c] = provider{view: v.Workflow.Name(), svc: ann.Decl.ServiceName, fp: fp}
			}
		}
	}
	for _, v := range views {
		own := map[string]bool{}
		for _, ann := range v.Resolved.Annotators {
			for _, pv := range ann.Provides {
				own[cell(pv.Repository, pv.Evidence)] = true
			}
		}
		for ev, repo := range v.Resolved.EvidenceRepo {
			c := cell(repo, ev)
			if p, ok := providers[c]; ok && !own[c] {
				return fmt.Errorf(
					"compiler: cannot merge: view %q reads evidence %v from repository %q, which annotator %q (view %q) writes — merged ordering would differ from independent enactment",
					v.Workflow.Name(), ev, repo, p.svc, p.view)
			}
		}
	}
	return nil
}

// Name returns the merged plan's name ("mqo:<n>@<digest>").
func (mv *MultiView) Name() string { return mv.name }

// Views returns the member views in merge order.
func (mv *MultiView) Views() []*Compiled {
	out := make([]*Compiled, len(mv.members))
	for i, m := range mv.members {
		out[i] = m.view
	}
	return out
}

// Workflow exposes the merged workflow for inspection.
func (mv *MultiView) Workflow() *workflow.Workflow { return mv.wf }

// SharedPrefixes reports how many quality-service processors in the
// merged plan serve two or more views.
func (mv *MultiView) SharedPrefixes() int { return mv.sharedPrefixes }

// SavedPerEnactment reports how many quality-service invocations one
// merged enactment avoids versus enacting every member independently
// (ignoring data-plane sharding, which multiplies both sides equally).
func (mv *MultiView) SavedPerEnactment() int { return mv.totalQuality - mv.mergedQuality }

// ViewResult is one member view's slice of a merged enactment.
type ViewResult struct {
	// Outputs is keyed by the view's own output names — "<action>:<port>",
	// OutputAnnotations, and QuarantineOutput under DegradeQuarantine —
	// exactly what independent enactment of the view would return.
	Outputs map[string]*evidence.Map
	// Err is set when a quality service in this view's subgraph failed
	// for good and the view's degraded mode is off: independent enactment
	// would have aborted this view. Sibling views are unaffected.
	Err error
}

// Enact runs the merged plan over a data set and returns every member
// view's results keyed by view name.
func (mv *MultiView) Enact(ctx context.Context, items []evidence.Item) (map[string]ViewResult, error) {
	return mv.EnactMap(ctx, evidence.NewMap(items...))
}

// EnactMap is Enact over a prepared evidence map (items may already carry
// inline evidence, as in streaming windows). The shared prefixes execute
// once; per-view failures are then attributed through each view's own
// degraded-mode policy, so one view's failed QA aborts (or degrades) that
// view alone. The returned error is reserved for whole-plan failures.
func (mv *MultiView) EnactMap(ctx context.Context, in *evidence.Map) (map[string]ViewResult, error) {
	started := time.Now()
	ctx, span := telemetry.StartSpan(ctx, "enact:"+mv.name)
	outer, hasOuter := FailureLogFrom(ctx)
	// The merged run always carries its own log: a terminal failure in a
	// shared prefix must degrade (per view) instead of aborting siblings.
	log := NewFailureLog()
	ctx = WithFailureLog(ctx, log)
	out, err := mv.wf.Execute(ctx, workflow.Ports{PortDataSet: in})
	if err != nil {
		span.EndErr(err)
		return nil, err
	}
	span.End()
	mqoSavedInvocations.With(mv.name).Add(uint64(mv.SavedPerEnactment()))

	failures := log.Failures()
	results := make(map[string]ViewResult, len(mv.members))
	for _, member := range mv.members {
		v := member.view
		vname := v.Workflow.Name()
		mode := v.DegradedMode() // read once, like Compiled.Execute

		// This view's failures, translated back to its own processor
		// names so degraded-evidence markers match independent enactment.
		var vfail []Failure
		for _, f := range failures {
			if orig, ok := member.procs[f.Processor]; ok {
				g := f
				g.Processor = orig
				vfail = append(vfail, g)
				if hasOuter {
					outer.add(g)
				}
			}
		}
		if mode == DegradeOff && len(vfail) > 0 {
			results[vname] = ViewResult{Err: fmt.Errorf("compiler: view %q: %w", vname, vfail[0].Err)}
			continue
		}

		vout := workflow.Ports{}
		for _, name := range v.Outputs {
			vout[name] = out[member.prefix+name]
		}
		// Each view gets its own copy of the (possibly shared)
		// consolidated map: degraded routing writes markers into it.
		if ann, ok := out[member.prefix+OutputAnnotations].(*evidence.Map); ok {
			vout[OutputAnnotations] = ann.Clone()
		}
		if mode != DegradeOff {
			vlog := NewFailureLog()
			for _, f := range vfail {
				vlog.add(f)
			}
			v.applyDegradedRouting(vout, vlog, mode)
		}

		res := ViewResult{Outputs: make(map[string]*evidence.Map, len(vout))}
		for name, val := range vout {
			m, ok := val.(*evidence.Map)
			if !ok {
				return nil, fmt.Errorf("compiler: merged output %q is %T, not *evidence.Map", member.prefix+name, val)
			}
			res.Outputs[name] = m
		}
		results[vname] = res

		if v.Provenance != nil {
			rec := provenance.Record{
				View:       vname,
				Started:    started,
				Duration:   time.Since(started),
				InputSize:  in.Len(),
				Outputs:    map[string]int{},
				Conditions: v.Conditions(),
				TraceID:    span.TraceID,
			}
			for name, m := range res.Outputs {
				rec.Outputs[name] = m.Len()
			}
			v.Provenance.Record(rec)
		}
	}
	return results, nil
}

// Describe renders the merged plan structure with per-view membership —
// the MQO counterpart of Compiled.Describe.
func (mv *MultiView) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "merged plan %s (%d views, %d shared prefixes, %d invocations saved per enactment)\n",
		mv.name, len(mv.members), mv.sharedPrefixes, mv.SavedPerEnactment())
	for _, name := range mv.wf.Processors() {
		var views []string
		for _, m := range mv.members {
			if _, ok := m.procs[name]; ok {
				views = append(views, m.view.Workflow.Name())
			}
		}
		if strings.Contains(name, "/") || len(views) == 0 {
			fmt.Fprintf(&b, "  %-60s\n", name)
			continue
		}
		fmt.Fprintf(&b, "  %-60s views=%s\n", name, strings.Join(views, ","))
	}
	return b.String()
}
