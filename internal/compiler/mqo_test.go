package compiler

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/qcache"
	"qurator/internal/qvlang"
	"qurator/internal/services"
)

// thresholdViewXML is the §5.1 paper view with a parameterised name and
// filter threshold — structurally identical views that differ only in
// their (never-shared) action, the common case MQO targets.
func thresholdViewXML(name string, threshold int) string {
	return fmt.Sprintf(`<QualityView name="%s">
  <Annotator servicename="ImprintOutputAnnotator" servicetype="q:ImprintOutputAnnotation">
    <variables repositoryRef="cache" persistent="false">
      <var evidence="q:HitRatio"/>
      <var evidence="q:Coverage"/>
      <var evidence="q:Masses"/>
      <var evidence="q:PeptidesCount"/>
    </variables>
  </Annotator>
  <QualityAssertion servicename="HR MC score" servicetype="q:UniversalPIScore2" tagname="HR MC" tagsyntype="q:score">
    <variables repositoryRef="cache">
      <var variablename="coverage" evidence="q:Coverage"/>
      <var variablename="masses" evidence="q:Masses"/>
      <var variablename="peptidesCount" evidence="q:PeptidesCount"/>
      <var variablename="hitRatio" evidence="q:HitRatio"/>
    </variables>
  </QualityAssertion>
  <QualityAssertion servicename="HR score" servicetype="q:HRScoreAssertion" tagname="HR" tagsyntype="q:score">
    <variables repositoryRef="cache">
      <var variablename="hr" evidence="q:HitRatio"/>
    </variables>
  </QualityAssertion>
  <QualityAssertion servicename="PIScoreClassifier" servicetype="q:PIScoreClassifier"
                    tagsemtype="q:PIScoreClassification" tagname="ScoreClass" tagsyntype="q:class">
    <variables repositoryRef="cache">
      <var variablename="coverage2" evidence="q:Coverage"/>
      <var variablename="hitRatio2" evidence="q:HitRatio"/>
    </variables>
  </QualityAssertion>
  <action name="filter top k score">
    <filter><condition>ScoreClass in q:high, q:mid and HR_MC &gt; %d</condition></filter>
  </action>
</QualityView>`, name, threshold)
}

// reducedViewXML shares the annotator but runs only one of the paper
// view's QAs — a partially overlapping prefix.
func reducedViewXML(name string) string {
	return fmt.Sprintf(`<QualityView name="%s">
  <Annotator servicename="ImprintOutputAnnotator" servicetype="q:ImprintOutputAnnotation">
    <variables repositoryRef="cache" persistent="false">
      <var evidence="q:HitRatio"/>
      <var evidence="q:Coverage"/>
      <var evidence="q:Masses"/>
      <var evidence="q:PeptidesCount"/>
    </variables>
  </Annotator>
  <QualityAssertion servicename="HR MC score" servicetype="q:UniversalPIScore2" tagname="HR MC" tagsyntype="q:score">
    <variables repositoryRef="cache">
      <var variablename="coverage" evidence="q:Coverage"/>
      <var variablename="masses" evidence="q:Masses"/>
      <var variablename="peptidesCount" evidence="q:PeptidesCount"/>
      <var variablename="hitRatio" evidence="q:HitRatio"/>
    </variables>
  </QualityAssertion>
  <action name="keep scored"><filter><condition>HR_MC &gt; 10</condition></filter></action>
</QualityView>`, name)
}

// splitterVariantXML shares the annotator prefix and routes through a
// splitter — covers the split action shape and the PortDefault group.
func splitterVariantXML(name string) string {
	return fmt.Sprintf(`<QualityView name="%s">
  <Annotator servicename="ImprintOutputAnnotator" servicetype="q:ImprintOutputAnnotation">
    <variables repositoryRef="cache" persistent="false">
      <var evidence="q:HitRatio"/>
      <var evidence="q:Coverage"/>
      <var evidence="q:Masses"/>
      <var evidence="q:PeptidesCount"/>
    </variables>
  </Annotator>
  <QualityAssertion servicename="PIScoreClassifier" servicetype="q:PIScoreClassifier"
                    tagsemtype="q:PIScoreClassification" tagname="ScoreClass" tagsyntype="q:class">
    <variables repositoryRef="cache">
      <var variablename="hr" evidence="q:HitRatio"/>
      <var variablename="mc" evidence="q:Coverage"/>
    </variables>
  </QualityAssertion>
  <action name="route">
    <splitter>
      <branch name="good"><condition>ScoreClass in q:high</condition></branch>
      <branch name="maybe"><condition>ScoreClass in q:mid</condition></branch>
    </splitter>
  </action>
</QualityView>`, name)
}

// enactIndependent runs each view on its own and flattens every output to
// canonical bytes: view name → output name → encoding.
func enactIndependent(t *testing.T, views []*Compiled, items []evidence.Item) map[string]map[string]string {
	t.Helper()
	out := map[string]map[string]string{}
	for _, v := range views {
		out[v.Workflow.Name()] = runCanonical(t, v, items)
	}
	return out
}

// enactMerged merges the views, enacts once, and flattens identically.
func enactMerged(t *testing.T, views []*Compiled, items []evidence.Item) map[string]map[string]string {
	t.Helper()
	mv, err := MergeViews(views...)
	if err != nil {
		t.Fatalf("MergeViews: %v", err)
	}
	res, err := mv.Enact(context.Background(), items)
	if err != nil {
		t.Fatalf("Enact: %v", err)
	}
	out := map[string]map[string]string{}
	for name, vr := range res {
		if vr.Err != nil {
			t.Fatalf("view %q: %v", name, vr.Err)
		}
		enc := map[string]string{}
		for oname, m := range vr.Outputs {
			enc[oname] = canonical(t, m)
		}
		out[name] = enc
	}
	return out
}

func diffEnactments(t *testing.T, label string, want, got map[string]map[string]string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d views, want %d", label, len(got), len(want))
	}
	for vname, outputs := range want {
		gotOutputs, ok := got[vname]
		if !ok {
			t.Fatalf("%s: view %q missing from merged results", label, vname)
		}
		if len(gotOutputs) != len(outputs) {
			t.Fatalf("%s: view %q has outputs %d, want %d", label, vname, len(gotOutputs), len(outputs))
		}
		for oname, enc := range outputs {
			if gotOutputs[oname] != enc {
				t.Errorf("%s: view %q output %q diverged from independent enactment", label, vname, oname)
			}
		}
	}
}

// TestMergeViewsSharesPrefixes pins the plan structure: three views that
// differ only in their filter threshold collapse to one annotator, one
// enrichment, three QAs, one consolidation and three per-view actions —
// and the shared QA really is invoked once per merged enactment.
func TestMergeViewsSharesPrefixes(t *testing.T) {
	var hrCalls *flakyService
	c := degradeCompiler(t, map[string]func(services.QualityService) services.QualityService{
		"HR_score": func(svc services.QualityService) services.QualityService {
			hrCalls = &flakyService{inner: svc}
			return hrCalls
		},
	})
	views := []*Compiled{
		compileWith(t, c, thresholdViewXML("tenants-a", 20)),
		compileWith(t, c, thresholdViewXML("tenants-b", 10)),
		compileWith(t, c, thresholdViewXML("tenants-c", 30)),
	}
	mv, err := MergeViews(views...)
	if err != nil {
		t.Fatalf("MergeViews: %v", err)
	}
	// 1 annotator + 1 enrichment + 3 QAs + 1 consolidation + 3 actions.
	if got := len(mv.Workflow().Processors()); got != 9 {
		t.Fatalf("merged plan has %d processors, want 9:\n%s", got, mv.Describe())
	}
	if got := mv.SharedPrefixes(); got != 5 {
		t.Errorf("SharedPrefixes = %d, want 5 (annotator, enrichment, 3 QAs)", got)
	}
	if got := mv.SavedPerEnactment(); got != 10 {
		t.Errorf("SavedPerEnactment = %d, want 10 (3×5 quality processors − 5 merged)", got)
	}

	items := []evidence.Item{item(0), item(1), item(2), item(3)}
	if _, err := mv.Enact(context.Background(), items); err != nil {
		t.Fatal(err)
	}
	if got := hrCalls.callCount(); got != 1 {
		t.Errorf("shared HR_score invoked %d times in one merged enactment, want 1", got)
	}
	for _, v := range views {
		if _, err := v.Run(context.Background(), items); err != nil {
			t.Fatal(err)
		}
	}
	if got := hrCalls.callCount(); got != 4 {
		t.Errorf("HR_score at %d calls after 3 independent runs, want 4 (1 merged + 3)", got)
	}
}

// TestMergedEnactmentBitIdentical is the property at the heart of the
// tentpole: for heterogeneous view sets (identical structure, partial
// prefix overlap, filter and splitter actions) and every data-plane
// configuration (serial, sharded, sharded+cached), merged enactment's
// per-view outputs are bit-identical to independent enactment.
func TestMergedEnactmentBitIdentical(t *testing.T) {
	sets := []struct {
		label string
		xmls  []string
	}{
		{"threshold-fanout", []string{
			thresholdViewXML("mqo-a", 20), thresholdViewXML("mqo-b", 5), thresholdViewXML("mqo-c", 35)}},
		{"partial-overlap", []string{
			thresholdViewXML("mqo-full", 20), reducedViewXML("mqo-reduced"), splitterVariantXML("mqo-split")}},
		{"single-view", []string{thresholdViewXML("mqo-solo", 20)}},
	}
	plans := []struct {
		label     string
		shardSize int
		cached    bool
	}{
		{"serial", 0, false},
		{"sharded", 3, false},
		{"sharded-cached", 3, true},
	}
	for _, set := range sets {
		for _, plan := range plans {
			for _, n := range []int{0, 1, 7} {
				c := testCompiler(t)
				c.ShardSize = plan.shardSize
				c.MaxInflight = 2
				if plan.cached {
					c.Cache = qcache.New(qcache.Options{Name: fmt.Sprintf("t-mqo-%s-%s-%d", set.label, plan.label, n)})
				}
				var views []*Compiled
				for _, xml := range set.xmls {
					views = append(views, compileWith(t, c, xml))
				}
				items := make([]evidence.Item, n)
				for i := range items {
					items[i] = item(i)
				}
				want := enactIndependent(t, views, items)
				got := enactMerged(t, views, items)
				diffEnactments(t, fmt.Sprintf("%s/%s/n=%d", set.label, plan.label, n), want, got)
			}
		}
	}
}

// TestMergedDegradedEquivalence extends the bit-identity property to
// degraded enactment: with a terminally failing QA, every degraded mode —
// including two members running different modes — produces per-view
// outputs (markers, quarantine, fail-open routing included) identical to
// independent enactment.
func TestMergedDegradedEquivalence(t *testing.T) {
	for _, m := range []DegradedMode{DegradeFailClosed, DegradeFailOpen, DegradeQuarantine} {
		c := degradeCompiler(t, map[string]func(services.QualityService) services.QualityService{
			"HR_score": alwaysFail,
		})
		c.Degraded = m
		views := []*Compiled{
			compileWith(t, c, thresholdViewXML("deg-a", 20)),
			compileWith(t, c, thresholdViewXML("deg-b", 5)),
		}
		items := []evidence.Item{item(0), item(1), item(2), item(3), item(4)}
		want := enactIndependent(t, views, items)
		got := enactMerged(t, views, items)
		diffEnactments(t, m.String(), want, got)
	}

	// Mixed per-view modes: the failure is shared, the policy is not.
	c := degradeCompiler(t, map[string]func(services.QualityService) services.QualityService{
		"HR_score": alwaysFail,
	})
	c.Degraded = DegradeFailOpen
	a := compileWith(t, c, thresholdViewXML("mix-a", 20))
	b := compileWith(t, c, thresholdViewXML("mix-b", 5))
	b.SetDegradedMode(DegradeQuarantine)
	items := []evidence.Item{item(0), item(1), item(2)}
	want := enactIndependent(t, []*Compiled{a, b}, items)
	got := enactMerged(t, []*Compiled{a, b}, items)
	diffEnactments(t, "mixed-modes", want, got)
}

// TestMergedViewFailsAlone pins fault isolation: when a QA unique to one
// DegradeOff view fails terminally, that view's result carries the error
// — independent enactment would have aborted it — while the sibling view
// sharing only the annotator prefix still returns bit-identical outputs.
func TestMergedViewFailsAlone(t *testing.T) {
	c := degradeCompiler(t, map[string]func(services.QualityService) services.QualityService{
		"HR_score": alwaysFail,
	})
	failing := compileWith(t, c, thresholdViewXML("iso-failing", 20)) // has HR_score
	healthy := compileWith(t, c, reducedViewXML("iso-healthy"))       // HR MC only
	items := []evidence.Item{item(0), item(1), item(2), item(3)}

	wantHealthy := runCanonical(t, healthy, items)
	if _, err := failing.Run(context.Background(), items); err == nil {
		t.Fatal("independent enactment of the failing view should abort")
	}

	mv, err := MergeViews(failing, healthy)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mv.Enact(context.Background(), items)
	if err != nil {
		t.Fatalf("merged enactment should survive a single view's failure: %v", err)
	}
	if res["iso-failing"].Err == nil {
		t.Error("failing view should carry its abort error")
	} else if !strings.Contains(res["iso-failing"].Err.Error(), "HR_score") {
		t.Errorf("error %v does not name the failed service", res["iso-failing"].Err)
	}
	vr := res["iso-healthy"]
	if vr.Err != nil {
		t.Fatalf("healthy view failed: %v", vr.Err)
	}
	for oname, enc := range wantHealthy {
		if canonical(t, vr.Outputs[oname]) != enc {
			t.Errorf("healthy view output %q diverged", oname)
		}
	}
}

// TestTwoViewsShareOneCacheEntry is the satellite cache-sharing proof:
// two views invoking the same QA over the same shard resolve to the same
// qcache key, so the second view's QA invocations are all hits and the
// entry count does not grow for the shared prefix.
func TestTwoViewsShareOneCacheEntry(t *testing.T) {
	cache := qcache.New(qcache.Options{Name: "t-mqo-share"})
	c := testCompiler(t)
	c.ShardSize = 8
	c.Cache = cache
	a := compileWith(t, c, thresholdViewXML("cache-a", 20))
	b := compileWith(t, c, thresholdViewXML("cache-b", 5))
	items := []evidence.Item{item(0), item(1), item(2), item(3)}

	if _, err := a.Run(context.Background(), items); err != nil {
		t.Fatal(err)
	}
	after := cache.Stats()
	// One shard through 3 QAs + 1 filter = 4 distinct entries.
	if after.Misses != 4 || after.Hits != 0 {
		t.Fatalf("first view: misses=%d hits=%d, want 4/0", after.Misses, after.Hits)
	}
	if _, err := b.Run(context.Background(), items); err != nil {
		t.Fatal(err)
	}
	after = cache.Stats()
	// Second view: the 3 QA invocations hit the first view's entries; only
	// its own filter (different condition) misses.
	if after.Hits != 3 {
		t.Errorf("second view hit %d cached entries, want 3 (the shared QAs)", after.Hits)
	}
	if after.Misses != 5 {
		t.Errorf("misses=%d, want 5 (4 + second view's filter)", after.Misses)
	}
	if after.Entries != 5 {
		t.Errorf("entries=%d, want 5 — shared QA invocations must share one entry", after.Entries)
	}

	// A merged enactment of both views over the same items is pure hits.
	mv, err := MergeViews(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mv.Enact(context.Background(), items); err != nil {
		t.Fatal(err)
	}
	final := cache.Stats()
	if final.Misses != after.Misses {
		t.Errorf("merged enactment missed (%d → %d): shared fingerprints must reuse cache entries",
			after.Misses, final.Misses)
	}
}

// TestMergedConditionEditsPropagate: the merged plan reuses member action
// instances, so the paper's explore loop (edit a condition, re-run) works
// without re-merging.
func TestMergedConditionEditsPropagate(t *testing.T) {
	c := testCompiler(t)
	a := compileWith(t, c, thresholdViewXML("edit-a", 20))
	b := compileWith(t, c, thresholdViewXML("edit-b", 20))
	mv, err := MergeViews(a, b)
	if err != nil {
		t.Fatal(err)
	}
	items := make([]evidence.Item, 8)
	for i := range items {
		items[i] = item(i)
	}
	first, err := mv.Enact(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SetFilterCondition("filter top k score", "HR_MC > -1000"); err != nil {
		t.Fatal(err)
	}
	second, err := mv.Enact(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	out := FilterOutput("filter top k score")
	if got, was := second["edit-b"].Outputs[out].Len(), first["edit-b"].Outputs[out].Len(); got <= was {
		t.Errorf("loosened condition kept %d ≤ %d items", got, was)
	}
	if got, was := second["edit-a"].Outputs[out].Len(), first["edit-a"].Outputs[out].Len(); got != was {
		t.Errorf("sibling view's output changed (%d → %d) after editing edit-b", was, got)
	}
}

// TestMergeViewsRefusals pins the safety checks: duplicate view names,
// and view sets whose merged annotator ordering could differ from
// independent enactment.
func TestMergeViewsRefusals(t *testing.T) {
	c := testCompiler(t)
	a := compileWith(t, c, thresholdViewXML("same-name", 20))
	b := compileWith(t, c, thresholdViewXML("same-name", 5))
	if _, err := MergeViews(a, b); err == nil || !strings.Contains(err.Error(), "duplicate view name") {
		t.Errorf("duplicate names: err = %v", err)
	}

	if _, err := MergeViews(); err == nil {
		t.Error("empty view set should be refused")
	}

	// A view that reads evidence another view's annotator writes — without
	// running that annotator itself — is order-sensitive under merging.
	noAnnXML := `<QualityView name="reader-only">
  <QualityAssertion servicename="HR score" servicetype="q:HRScoreAssertion" tagname="HR" tagsyntype="q:score">
    <variables repositoryRef="cache">
      <var variablename="hr" evidence="q:HitRatio"/>
    </variables>
  </QualityAssertion>
  <action name="keep"><filter><condition>HR &gt; 0.5</condition></filter></action>
</QualityView>`
	reader := compileWith(t, c, noAnnXML)
	writer := compileWith(t, c, thresholdViewXML("writer", 20))
	if _, err := MergeViews(writer, reader); err == nil || !strings.Contains(err.Error(), "cannot merge") {
		t.Errorf("order-sensitive set: err = %v", err)
	}
	// Alone (or with views that don't write its cells) it merges fine.
	if _, err := MergeViews(reader); err != nil {
		t.Errorf("reader-only view should merge alone: %v", err)
	}
}

// TestCompileRejectsNormalisedNameCollisions pins the satellite bugfix:
// two declarations whose names normalise to the same processor name are
// rejected up front, naming both colliding declarations.
func TestCompileRejectsNormalisedNameCollisions(t *testing.T) {
	actionCollision := `<QualityView name="collide-actions">
  <Annotator servicename="ImprintOutputAnnotator" servicetype="q:ImprintOutputAnnotation">
    <variables repositoryRef="cache"><var evidence="q:HitRatio"/></variables>
  </Annotator>
  <QualityAssertion servicename="HR score" servicetype="q:HRScoreAssertion" tagname="HR" tagsyntype="q:score">
    <variables repositoryRef="cache"><var variablename="hr" evidence="q:HitRatio"/></variables>
  </QualityAssertion>
  <action name="top k"><filter><condition>HR &gt; 0.5</condition></filter></action>
  <action name="top_k"><filter><condition>HR &gt; 0.9</condition></filter></action>
</QualityView>`
	v, err := qvlang.Parse([]byte(actionCollision))
	if err != nil {
		t.Fatal(err)
	}
	r, err := qvlang.Resolve(v, ontology.NewIQModel())
	if err != nil {
		t.Fatal(err)
	}
	_, err = testCompiler(t).Compile(r)
	if err == nil {
		t.Fatal("colliding action names should fail to compile")
	}
	for _, want := range []string{`"top k"`, `"top_k"`, "collide", "normalise"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q lacks %q", err, want)
		}
	}

	qaCollision := `<QualityView name="collide-qas">
  <Annotator servicename="ImprintOutputAnnotator" servicetype="q:ImprintOutputAnnotation">
    <variables repositoryRef="cache"><var evidence="q:HitRatio"/></variables>
  </Annotator>
  <QualityAssertion servicename="HR score" servicetype="q:HRScoreAssertion" tagname="HR" tagsyntype="q:score">
    <variables repositoryRef="cache"><var variablename="hr" evidence="q:HitRatio"/></variables>
  </QualityAssertion>
  <QualityAssertion servicename="HR_score" servicetype="q:HRScoreAssertion" tagname="HR2" tagsyntype="q:score">
    <variables repositoryRef="cache"><var variablename="hr2" evidence="q:HitRatio"/></variables>
  </QualityAssertion>
  <action name="keep"><filter><condition>HR &gt; 0.5</condition></filter></action>
</QualityView>`
	v, err = qvlang.Parse([]byte(qaCollision))
	if err != nil {
		t.Fatal(err)
	}
	r, err = qvlang.Resolve(v, ontology.NewIQModel())
	if err != nil {
		t.Fatal(err)
	}
	if _, err = testCompiler(t).Compile(r); err == nil || !strings.Contains(err.Error(), "assertion") {
		t.Errorf("colliding QA names: err = %v", err)
	}
}

// TestSetDegradedModeConcurrentWithEnactment pins the satellite bugfix:
// flipping the degraded policy while enactments are in flight is
// race-free (run under -race) and each run applies one policy coherently.
func TestSetDegradedModeConcurrentWithEnactment(t *testing.T) {
	compiled := compilePaperView(t)
	items := []evidence.Item{item(0), item(1), item(2)}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		modes := []DegradedMode{DegradeOff, DegradeFailOpen, DegradeQuarantine, DegradeFailClosed}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				compiled.SetDegradedMode(modes[i%len(modes)])
			}
		}
	}()
	for i := 0; i < 25; i++ {
		if _, err := compiled.Run(context.Background(), items); err != nil {
			t.Errorf("run %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}
