package compiler

import (
	"sort"

	"qurator/internal/rdf"
)

// Plan is the abstract, enactment-independent description of a compiled
// quality view — the structure the §6.1 compilation rules produced,
// projected for alternative enactors. The streaming enactor
// (internal/stream) reads it to route inline evidence to the right
// repositories, to know which annotation-map keys the QAs write (the
// score tags it tracks window statistics for), and to name the decision
// outputs, all without reaching into the workflow graph.
type Plan struct {
	// View is the quality view name.
	View string
	// Annotators are the annotator processor names, in declaration order.
	Annotators []string
	// QAs are the quality-assertion processor names, in declaration order.
	QAs []string
	// EvidenceRepo maps each evidence type to the repository holding it —
	// the association the compiler derived for the Data Enrichment
	// operator. A streaming ingester uses it to store inline evidence
	// where enrichment will find it.
	EvidenceRepo map[rdf.Term]string
	// Tags are the annotation-map keys the QAs write (score-tag IRIs and
	// classification-model IRIs), sorted.
	Tags []rdf.Term
	// Vars maps condition identifiers to annotation-map keys.
	Vars map[string]rdf.Term
	// Actions describe the view's condition/action pairs.
	Actions []ActionPlan
	// Outputs are the decision output names ("<action>:<port>"), in
	// declaration order — the same list as Compiled.Outputs.
	Outputs []string
}

// ActionPlan describes one action of the plan.
type ActionPlan struct {
	// Name is the action name as declared in the view.
	Name string
	// Op is "filter" or "split".
	Op string
	// Outputs are this action's output names ("<action>:<port>").
	Outputs []string
}

// Plan derives the abstract plan from the compiled view.
func (c *Compiled) Plan() Plan {
	r := c.Resolved
	p := Plan{
		View:         c.Workflow.Name(),
		EvidenceRepo: make(map[rdf.Term]string, len(r.EvidenceRepo)),
		Vars:         make(map[string]rdf.Term, len(r.Vars)),
		Outputs:      append([]string(nil), c.Outputs...),
	}
	for ev, repo := range r.EvidenceRepo {
		p.EvidenceRepo[ev] = repo
	}
	for ident, key := range r.Vars {
		p.Vars[ident] = key
	}
	for _, ann := range r.Annotators {
		p.Annotators = append(p.Annotators, procName("Annotator", ann.Decl.ServiceName))
	}
	for _, as := range r.Assertions {
		p.QAs = append(p.QAs, procName("QA", as.Decl.ServiceName))
		if !as.TagKey.IsZero() {
			p.Tags = append(p.Tags, as.TagKey)
		}
	}
	sort.Slice(p.Tags, func(i, j int) bool { return rdf.CompareTerms(p.Tags[i], p.Tags[j]) < 0 })
	for _, act := range r.Actions {
		ap := ActionPlan{Name: act.Name, Op: "filter"}
		if act.Filter == nil {
			ap.Op = "split"
			for _, b := range act.Branches {
				ap.Outputs = append(ap.Outputs, outputName(act.Name, b.Name))
			}
			ap.Outputs = append(ap.Outputs, outputName(act.Name, PortDefault))
		} else {
			ap.Outputs = []string{outputName(act.Name, PortAccepted)}
		}
		p.Actions = append(p.Actions, ap)
	}
	return p
}
