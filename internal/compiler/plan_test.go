package compiler

import (
	"context"
	"testing"

	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/qvlang"
	"qurator/internal/rdf"
)

// TestPlan checks the abstract plan derived from the compiled §5.1 view:
// annotators/QAs in declaration order, the evidence → repository routing,
// the QA tag keys and the action outputs.
func TestPlan(t *testing.T) {
	c := compilePaperView(t)
	p := c.Plan()

	if p.View == "" {
		t.Error("plan has no view name")
	}
	if len(p.Annotators) != 1 || p.Annotators[0] != "Annotator:ImprintOutputAnnotator" {
		t.Errorf("annotators = %v", p.Annotators)
	}
	if len(p.QAs) != 3 {
		t.Fatalf("QAs = %v", p.QAs)
	}
	if len(p.EvidenceRepo) == 0 {
		t.Fatal("plan lost the evidence → repository association")
	}
	for ev, repo := range p.EvidenceRepo {
		if repo == "" {
			t.Errorf("evidence %v routed to empty repository", ev)
		}
	}
	// The §5.1 view's three QAs write two score tags and one
	// classification model.
	if len(p.Tags) != 3 {
		t.Errorf("tags = %v", p.Tags)
	}
	hasModel := false
	for _, tag := range p.Tags {
		if tag == ontology.PIScoreClassification {
			hasModel = true
		}
	}
	if !hasModel {
		t.Errorf("tags %v missing the classification model", p.Tags)
	}
	if len(p.Actions) != 1 || p.Actions[0].Op != "filter" {
		t.Fatalf("actions = %+v", p.Actions)
	}
	if len(p.Outputs) != 1 || p.Outputs[0] != p.Actions[0].Outputs[0] {
		t.Errorf("outputs = %v, actions = %+v", p.Outputs, p.Actions)
	}
	if len(p.Vars) == 0 {
		t.Error("plan lost the condition variable bindings")
	}
	// The plan is a copy: mutating it must not corrupt the compiled view.
	for ev := range p.EvidenceRepo {
		p.EvidenceRepo[ev] = "poisoned"
	}
	if c.Plan().EvidenceRepo[firstKey(p.EvidenceRepo)] == "poisoned" {
		t.Error("Plan aliases the resolved view state")
	}
}

func firstKey(m map[rdf.Term]string) rdf.Term {
	for k := range m {
		return k
	}
	return rdf.Term{}
}

// TestConsolidatedOutput checks that every compiled view exposes the
// consolidated annotation map as the "annotations" workflow output, and
// that it carries the full data set — including items the filter rejects.
func TestConsolidatedOutput(t *testing.T) {
	c := compilePaperView(t)
	items := make([]evidence.Item, 10)
	for i := range items {
		items[i] = item(i)
	}
	out, err := c.Run(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	cons, ok := out[OutputAnnotations]
	if !ok {
		t.Fatalf("Run outputs %v lack %q", keysOf(out), OutputAnnotations)
	}
	if cons.Len() != len(items) {
		t.Errorf("consolidated map has %d items, want %d", cons.Len(), len(items))
	}
	accepted := out[c.Outputs[0]]
	if accepted.Len() >= cons.Len() {
		t.Skip("filter rejected nothing; rejected-item check not applicable")
	}
	// A rejected item still has its class assignment in the consolidated
	// map.
	for _, it := range cons.Items() {
		if accepted.HasItem(it) {
			continue
		}
		if cons.Class(it, ontology.PIScoreClassification).IsZero() {
			t.Errorf("rejected item %v lost its class in the consolidated map", it)
		}
		break
	}
}

var _ = qvlang.PaperViewXML // the view the helpers above compile
