// Package compiler turns abstract quality views into executable quality
// workflows (paper §6): it binds each declared operator class to a
// service through the semantic binding registry, emits a workflow
// following the §6.1 compilation rules, and embeds the result into a host
// workflow using a deployment descriptor (§6.2).
package compiler

import (
	"context"
	"fmt"
	"sync"

	"qurator/internal/evidence"
	"qurator/internal/qcache"
	"qurator/internal/services"
	"qurator/internal/workflow"
)

// Standard port names used by compiled quality workflows.
const (
	// PortDataSet is the input port carrying the data set (an
	// *evidence.Map whose items are the data set; evidence may be empty).
	PortDataSet = "dataset"
	// PortAnnotations carries an enriched/asserted annotation map.
	PortAnnotations = "annotations"
	// PortAccepted is a filter action's surviving data.
	PortAccepted = "accepted"
	// PortDefault is a splitter's k+1-th group.
	PortDefault = "default"
	// OutputAnnotations is the workflow output carrying the consolidated
	// annotation map (every item with its full assertion state, before
	// actions apply). It appears in Run results alongside the
	// "<action>:<port>" outputs.
	OutputAnnotations = PortAnnotations
)

// mode selects how a serviceProcessor translates ports to envelopes.
type mode int

const (
	modeAnnotator mode = iota + 1
	modeEnrichment
	modeAssertion
	modeFilter
	modeSplit
)

// serviceProcessor adapts a services.QualityService to a workflow
// Processor. Its configuration is mutable under a lock so that action
// conditions can be edited between runs without recompiling (paper §4).
type serviceProcessor struct {
	name   string
	svc    services.QualityService
	mode   mode
	inPort string
	outs   []string
	mu     sync.RWMutex
	config services.Config
	op     string

	// Data plane (see dataplane.go). shardSize > 0 splits item-scoped
	// inputs into shards of at most that many items, fanned out over at
	// most maxInflight workers (GOMAXPROCS when 0). cache, when non-nil,
	// memoises pure-response invocations content-addressed.
	shardSize   int
	maxInflight int
	cache       *qcache.Cache
}

func (p *serviceProcessor) Name() string         { return p.name }
func (p *serviceProcessor) InputPorts() []string { return []string{p.inPort} }
func (p *serviceProcessor) OutputPorts() []string {
	return append([]string(nil), p.outs...)
}

// setParam updates one configuration parameter.
func (p *serviceProcessor) setParam(name, value string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.config.Set(name, value)
}

func (p *serviceProcessor) snapshotConfig() services.Config {
	p.mu.RLock()
	defer p.mu.RUnlock()
	cfg := services.Config{Params: append([]services.Param(nil), p.config.Params...)}
	return cfg
}

func (p *serviceProcessor) Execute(ctx context.Context, in workflow.Ports) (workflow.Ports, error) {
	m, ok := in[p.inPort].(*evidence.Map)
	if !ok {
		return nil, fmt.Errorf("compiler: processor %q expects *evidence.Map on %q, got %T",
			p.name, p.inPort, in[p.inPort])
	}
	resps, err := p.invokeShards(ctx, p.shardInput(m), p.snapshotConfig())
	if err != nil {
		return nil, err
	}
	switch p.mode {
	case modeAnnotator:
		// Annotators only write to a repository; no data output.
		return workflow.Ports{}, nil
	case modeEnrichment, modeAssertion, modeFilter:
		out, err := p.mergeMapResponses(resps)
		if err != nil {
			return nil, err
		}
		return workflow.Ports{p.outs[0]: out}, nil
	case modeSplit:
		return p.mergeSplitResponses(resps)
	default:
		return nil, fmt.Errorf("compiler: processor %q has unknown mode", p.name)
	}
}

// consolidateProcessor merges the annotation maps produced by the QA
// fan-out into one consistent view — the ConsolidateAssertions task added
// by the compiler (paper §6.1).
type consolidateProcessor struct {
	name   string
	inputs []string
}

func (p *consolidateProcessor) Name() string          { return p.name }
func (p *consolidateProcessor) InputPorts() []string  { return append([]string(nil), p.inputs...) }
func (p *consolidateProcessor) OutputPorts() []string { return []string{PortAnnotations} }

func (p *consolidateProcessor) Execute(_ context.Context, in workflow.Ports) (workflow.Ports, error) {
	merged := evidence.NewMap()
	for _, port := range p.inputs {
		m, ok := in[port].(*evidence.Map)
		if !ok {
			return nil, fmt.Errorf("compiler: consolidate expects *evidence.Map on %q, got %T", port, in[port])
		}
		merged.Merge(m)
	}
	return workflow.Ports{PortAnnotations: merged}, nil
}
