// Package condition implements the conditional expression language that
// Qurator action operators evaluate over quality evidence and QA outputs
// (paper §4, §5.1). Conditions are predicates on the values of quality
// assertions and evidence, e.g.
//
//	ScoreClass in q:high, q:mid and HR_MC > 20
//	score < 3.2
//	not (HitRatio < 0.4 or MassCoverage < 0.1)
//
// Identifiers refer to variables declared in the quality-view
// specification; a Bindings map resolves them to annotation-map keys
// (evidence types, score tags, or classification models). Tag names
// containing spaces in view XML (the paper's "HR MC") are normalised to
// underscores by the view layer before reaching this package.
//
// Conditions are parsed once and evaluated repeatedly — the paper's usage
// pattern is editing action conditions between process executions while
// the (expensive) QAs stay fixed.
package condition

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/rdf"
)

// Bindings resolves condition identifiers to annotation-map keys.
type Bindings map[string]rdf.Term

// Context supplies everything needed to evaluate a condition for one item.
type Context struct {
	// Amap is the annotation map carrying evidence and QA outputs.
	Amap *evidence.Map
	// Item is the data item under test.
	Item evidence.Item
	// Vars resolves identifiers to map keys. Identifiers absent from Vars
	// are resolved as q-names against the Qurator namespace, so conditions
	// may reference evidence types directly (e.g. "HitRatio > 0.5").
	Vars Bindings
}

func (c *Context) resolve(name string) rdf.Term {
	if c.Vars != nil {
		if key, ok := c.Vars[name]; ok {
			return key
		}
	}
	return ontology.ExpandQName(name)
}

// Expr is a parsed condition.
type Expr interface {
	// Eval evaluates the condition for one item. Evaluation errors (e.g.
	// comparing a missing value) are returned so that actions can decide
	// whether errors mean "reject" (the default) or abort.
	Eval(ctx *Context) (bool, error)
	String() string
}

// Parse parses a condition expression.
func Parse(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != tEOF {
		return nil, fmt.Errorf("condition: unexpected trailing %q at offset %d", t.text, t.pos)
	}
	return e, nil
}

// MustParse is Parse that panics on error; for statically-known conditions.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

// ---------------------------------------------------------------------------
// Lexer

type tKind int

const (
	tEOF tKind = iota
	tIdent
	tQName // q:high
	tNumber
	tString
	tBool
	tOp    // < <= > >= = == != <>
	tPunct // ( ) ,
	tAnd
	tOr
	tNot
	tIn
	tIRI // <http://...>
)

// looksLikeIRI reports whether the '<' opening s begins an angle-bracketed
// IRI (a '>' before any whitespace) rather than a comparison operator.
func looksLikeIRI(s string) bool {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '>':
			return i > 1
		case ' ', '\t', '\n', '\r', '<', '=':
			return false
		}
	}
	return false
}

type tok struct {
	kind tKind
	text string
	pos  int
}

func lex(src string) ([]tok, error) {
	var toks []tok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(' || c == ')' || c == ',':
			toks = append(toks, tok{tPunct, string(c), i})
			i++
		case strings.HasPrefix(src[i:], "<=") || strings.HasPrefix(src[i:], ">=") ||
			strings.HasPrefix(src[i:], "!=") || strings.HasPrefix(src[i:], "==") ||
			strings.HasPrefix(src[i:], "<>"):
			toks = append(toks, tok{tOp, src[i : i+2], i})
			i += 2
		case c == '<' && looksLikeIRI(src[i:]):
			end := strings.IndexByte(src[i:], '>')
			toks = append(toks, tok{tIRI, src[i+1 : i+end], i})
			i += end + 1
		case c == '<' || c == '>' || c == '=':
			toks = append(toks, tok{tOp, string(c), i})
			i++
		case c == '"' || c == '\'':
			quote := c
			j := i + 1
			var b strings.Builder
			for j < len(src) && src[j] != quote {
				if src[j] == '\\' && j+1 < len(src) {
					j++
				}
				b.WriteByte(src[j])
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("condition: unterminated string at offset %d", i)
			}
			toks = append(toks, tok{tString, b.String(), i})
			i = j + 1
		case c >= '0' && c <= '9' || c == '-' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9':
			j := i
			if src[j] == '-' {
				j++
			}
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				j++
			}
			toks = append(toks, tok{tNumber, src[i:j], i})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < len(src) && isIdentPart(rune(src[j])) {
				j++
			}
			word := src[i:j]
			// QName: ident ':' local.
			if j < len(src) && src[j] == ':' {
				k := j + 1
				for k < len(src) && (isIdentPart(rune(src[k])) || src[k] == '-') {
					k++
				}
				toks = append(toks, tok{tQName, word + ":" + src[j+1:k], i})
				i = k
				break
			}
			switch strings.ToLower(word) {
			case "and":
				toks = append(toks, tok{tAnd, word, i})
			case "or":
				toks = append(toks, tok{tOr, word, i})
			case "not":
				toks = append(toks, tok{tNot, word, i})
			case "in":
				toks = append(toks, tok{tIn, word, i})
			case "true", "false":
				toks = append(toks, tok{tBool, strings.ToLower(word), i})
			default:
				toks = append(toks, tok{tIdent, word, i})
			}
			i = j
		default:
			return nil, fmt.Errorf("condition: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, tok{tEOF, "", i})
	return toks, nil
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentPart(r rune) bool  { return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' }

// ---------------------------------------------------------------------------
// Parser

type parser struct {
	toks []tok
	pos  int
}

func (p *parser) peek() tok { return p.toks[p.pos] }

func (p *parser) next() tok {
	t := p.toks[p.pos]
	if t.kind != tEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(kind tKind) bool {
	if p.peek().kind == kind {
		p.pos++
		return true
	}
	return false
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tOr) {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: "or", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tAnd) {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: "and", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(tNot) {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &notExpr{inner: inner}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	switch t.kind {
	case tOp:
		p.pos++
		r, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		return &cmpExpr{op: normaliseOp(t.text), l: l, r: r}, nil
	case tIn:
		p.pos++
		return p.parseInList(l, false)
	case tNot:
		// "x not in (...)"
		save := p.pos
		p.pos++
		if p.accept(tIn) {
			return p.parseInList(l, true)
		}
		p.pos = save
	}
	// A bare operand must be boolean-valued at evaluation time.
	return &truthExpr{operand: l}, nil
}

func normaliseOp(op string) string {
	switch op {
	case "==":
		return "="
	case "<>":
		return "!="
	default:
		return op
	}
}

// parseInList parses the membership list, with or without parentheses —
// the paper writes both "IN { 'high', 'mid' }" styles and the bare
// "in q:high, q:mid" of the §5.1 filter.
func (p *parser) parseInList(target operand, negated bool) (Expr, error) {
	paren := false
	if t := p.peek(); t.kind == tPunct && t.text == "(" {
		p.pos++
		paren = true
	}
	var items []operand
	for {
		item, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		items = append(items, item)
		if t := p.peek(); t.kind == tPunct && t.text == "," {
			p.pos++
			continue
		}
		break
	}
	if paren {
		if t := p.next(); t.kind != tPunct || t.text != ")" {
			return nil, fmt.Errorf("condition: expected ')' to close IN list, got %q", t.text)
		}
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("condition: empty IN list")
	}
	return &inExpr{target: target, items: items, negated: negated}, nil
}

func (p *parser) parseOperand() (operand, error) {
	t := p.next()
	switch t.kind {
	case tIdent:
		return varOperand{name: t.text}, nil
	case tQName:
		return constOperand{v: evidence.TermValue(ontology.ExpandQName(t.text))}, nil
	case tIRI:
		return constOperand{v: evidence.TermValue(rdf.IRI(t.text))}, nil
	case tNumber:
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("condition: bad number %q: %v", t.text, err)
		}
		return constOperand{v: evidence.Float(f)}, nil
	case tString:
		return constOperand{v: evidence.String_(t.text)}, nil
	case tBool:
		return constOperand{v: evidence.Bool(t.text == "true")}, nil
	case tPunct:
		if t.text == "(" {
			e, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if c := p.next(); c.kind != tPunct || c.text != ")" {
				return nil, fmt.Errorf("condition: expected ')', got %q", c.text)
			}
			return exprOperand{e: e}, nil
		}
	}
	return nil, fmt.Errorf("condition: unexpected token %q at offset %d", t.text, t.pos)
}

// ---------------------------------------------------------------------------
// AST / evaluation

// operand evaluates to a Value under a context.
type operand interface {
	value(ctx *Context) (evidence.Value, error)
	String() string
}

type varOperand struct{ name string }

func (o varOperand) value(ctx *Context) (evidence.Value, error) {
	key := ctx.resolve(o.name)
	v := ctx.Amap.Get(ctx.Item, key)
	if v.IsNull() {
		return evidence.Null, fmt.Errorf("condition: no value for %q (key %v) on item %v", o.name, key, ctx.Item)
	}
	return v, nil
}

func (o varOperand) String() string { return o.name }

type constOperand struct{ v evidence.Value }

func (o constOperand) value(*Context) (evidence.Value, error) { return o.v, nil }

func (o constOperand) String() string {
	switch o.v.Kind() {
	case evidence.KindString:
		return strconv.Quote(o.v.AsString())
	case evidence.KindTerm:
		if t, ok := o.v.AsTerm(); ok {
			if rest, found := strings.CutPrefix(t.Value(), ontology.QuratorNS); found {
				return "q:" + rest
			}
			return t.String() // <iri> form, re-parseable by the lexer
		}
	}
	return o.v.String()
}

// exprOperand wraps a parenthesised sub-expression as a boolean operand.
type exprOperand struct{ e Expr }

func (o exprOperand) value(ctx *Context) (evidence.Value, error) {
	b, err := o.e.Eval(ctx)
	if err != nil {
		return evidence.Null, err
	}
	return evidence.Bool(b), nil
}

func (o exprOperand) String() string { return "(" + o.e.String() + ")" }

type binExpr struct {
	op   string // "and" / "or"
	l, r Expr
}

func (e *binExpr) Eval(ctx *Context) (bool, error) {
	lv, err := e.l.Eval(ctx)
	if err != nil {
		return false, err
	}
	if e.op == "and" && !lv {
		return false, nil
	}
	if e.op == "or" && lv {
		return true, nil
	}
	return e.r.Eval(ctx)
}

func (e *binExpr) String() string {
	return e.l.String() + " " + e.op + " " + e.r.String()
}

type notExpr struct{ inner Expr }

func (e *notExpr) Eval(ctx *Context) (bool, error) {
	v, err := e.inner.Eval(ctx)
	if err != nil {
		return false, err
	}
	return !v, nil
}

func (e *notExpr) String() string { return "not (" + e.inner.String() + ")" }

type truthExpr struct{ operand operand }

func (e *truthExpr) Eval(ctx *Context) (bool, error) {
	v, err := e.operand.value(ctx)
	if err != nil {
		return false, err
	}
	if b, ok := v.AsBool(); ok {
		return b, nil
	}
	return false, fmt.Errorf("condition: operand %s is not boolean", e.operand)
}

func (e *truthExpr) String() string { return e.operand.String() }

type cmpExpr struct {
	op   string
	l, r operand
}

func (e *cmpExpr) Eval(ctx *Context) (bool, error) {
	lv, err := e.l.value(ctx)
	if err != nil {
		return false, err
	}
	rv, err := e.r.value(ctx)
	if err != nil {
		return false, err
	}
	return compareValues(e.op, lv, rv)
}

func (e *cmpExpr) String() string {
	return e.l.String() + " " + e.op + " " + e.r.String()
}

func compareValues(op string, l, r evidence.Value) (bool, error) {
	if lf, ok := l.AsFloat(); ok {
		if rf, ok := r.AsFloat(); ok {
			switch op {
			case "=":
				return lf == rf, nil
			case "!=":
				return lf != rf, nil
			case "<":
				return lf < rf, nil
			case "<=":
				return lf <= rf, nil
			case ">":
				return lf > rf, nil
			case ">=":
				return lf >= rf, nil
			}
		}
	}
	switch op {
	case "=":
		return looseEqual(l, r), nil
	case "!=":
		return !looseEqual(l, r), nil
	}
	ls, rs := l.AsString(), r.AsString()
	switch op {
	case "<":
		return ls < rs, nil
	case "<=":
		return ls <= rs, nil
	case ">":
		return ls > rs, nil
	case ">=":
		return ls >= rs, nil
	}
	return false, fmt.Errorf("condition: unsupported comparison %q", op)
}

// looseEqual compares values, additionally matching classification labels
// (term values) against strings by local name — so "high" matches q:high,
// letting users write either form in action conditions.
func looseEqual(l, r evidence.Value) bool {
	if l.Equal(r) {
		return true
	}
	lt, lok := l.AsTerm()
	rt, rok := r.AsTerm()
	switch {
	case lok && !rok:
		return ontology.LocalName(lt) == r.AsString()
	case rok && !lok:
		return ontology.LocalName(rt) == l.AsString()
	default:
		return l.AsString() == r.AsString() && l.Kind() == r.Kind()
	}
}

type inExpr struct {
	target  operand
	items   []operand
	negated bool
}

func (e *inExpr) Eval(ctx *Context) (bool, error) {
	tv, err := e.target.value(ctx)
	if err != nil {
		return false, err
	}
	for _, item := range e.items {
		iv, err := item.value(ctx)
		if err != nil {
			return false, err
		}
		if looseEqual(tv, iv) {
			return !e.negated, nil
		}
	}
	return e.negated, nil
}

func (e *inExpr) String() string {
	parts := make([]string, len(e.items))
	for i, it := range e.items {
		parts[i] = it.String()
	}
	op := " in "
	if e.negated {
		op = " not in "
	}
	return e.target.String() + op + strings.Join(parts, ", ")
}

// NormaliseName converts a view tag name to a condition identifier by
// replacing spaces with underscores — the paper's view declares
// tagname="HR MC" and references it as "HR MC" in conditions; in this
// implementation both the declaration and the reference are normalised.
func NormaliseName(name string) string {
	return strings.ReplaceAll(strings.TrimSpace(name), " ", "_")
}
