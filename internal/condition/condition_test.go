package condition

import (
	"strings"
	"testing"

	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/rdf"
)

// hitContext builds a context resembling one Imprint hit with the §5.1
// variable bindings: HR_MC → score tag, ScoreClass → classification model.
func hitContext(hrmc float64, class rdf.Term) *Context {
	it := rdf.IRI("urn:lsid:uniprot.org:uniprot:P30089")
	m := evidence.NewMap(it)
	scoreTag := ontology.Q("tag/HR_MC")
	m.Set(it, scoreTag, evidence.Float(hrmc))
	m.Set(it, ontology.HitRatio, evidence.Float(0.8))
	m.Set(it, ontology.MassCoverage, evidence.Float(0.35))
	if !class.IsZero() {
		m.SetClass(it, ontology.PIScoreClassification, class)
	}
	return &Context{
		Amap: m,
		Item: it,
		Vars: Bindings{
			"HR_MC":      scoreTag,
			"ScoreClass": ontology.PIScoreClassification,
		},
	}
}

func evalOK(t *testing.T, src string, ctx *Context) bool {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	got, err := e.Eval(ctx)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return got
}

func TestPaperFilterCondition(t *testing.T) {
	// The §5.1 action: "ScoreClass in q:high, q:mid and HR MC > 20".
	src := "ScoreClass in q:high, q:mid and HR_MC > 20"
	if !evalOK(t, src, hitContext(25, ontology.ClassHigh)) {
		t.Error("high + 25 should pass")
	}
	if !evalOK(t, src, hitContext(21, ontology.ClassMid)) {
		t.Error("mid + 21 should pass")
	}
	if evalOK(t, src, hitContext(25, ontology.ClassLow)) {
		t.Error("low class should fail")
	}
	if evalOK(t, src, hitContext(19, ontology.ClassHigh)) {
		t.Error("score 19 should fail")
	}
}

func TestComparisonOperators(t *testing.T) {
	ctx := hitContext(20, ontology.ClassHigh)
	cases := []struct {
		src  string
		want bool
	}{
		{"HR_MC = 20", true},
		{"HR_MC == 20", true},
		{"HR_MC != 20", false},
		{"HR_MC <> 20", false},
		{"HR_MC < 20", false},
		{"HR_MC <= 20", true},
		{"HR_MC > 19.5", true},
		{"HR_MC >= 20.5", false},
		{"HitRatio > 0.5", true}, // un-declared identifier resolves as q-name
		{"MassCoverage < 0.4", true},
	}
	for _, c := range cases {
		if got := evalOK(t, c.src, ctx); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestBooleanConnectivesAndPrecedence(t *testing.T) {
	ctx := hitContext(25, ontology.ClassHigh)
	cases := []struct {
		src  string
		want bool
	}{
		{"HR_MC > 20 and HitRatio > 0.5", true},
		{"HR_MC > 30 or HitRatio > 0.5", true},
		{"HR_MC > 30 and HitRatio > 0.5 or HR_MC > 20", true}, // or binds loosest
		{"not HR_MC > 30", true},
		{"not (HR_MC > 20 and HitRatio > 0.5)", false},
		{"not not HR_MC > 20", true},
		{"(HR_MC > 30 or HitRatio > 0.5) and MassCoverage < 0.4", true},
	}
	for _, c := range cases {
		if got := evalOK(t, c.src, ctx); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestInListVariants(t *testing.T) {
	ctx := hitContext(25, ontology.ClassMid)
	cases := []struct {
		src  string
		want bool
	}{
		{"ScoreClass in q:high, q:mid", true},
		{"ScoreClass in (q:high, q:mid)", true},
		{"ScoreClass in ('high', 'mid')", true}, // string matches label local name
		{`ScoreClass in "low"`, false},
		{"ScoreClass not in q:low", true},
		{"ScoreClass not in (q:mid)", false},
		{"HR_MC in 24, 25, 26", true},
		{"HR_MC not in (1, 2)", true},
	}
	for _, c := range cases {
		if got := evalOK(t, c.src, ctx); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestStringAndTermEquality(t *testing.T) {
	it := rdf.IRI("urn:item")
	m := evidence.NewMap(it)
	m.Set(it, ontology.EvidenceCode, evidence.String_("IEA"))
	ctx := &Context{Amap: m, Item: it, Vars: Bindings{"code": ontology.EvidenceCode}}
	if !evalOK(t, `code = "IEA"`, ctx) {
		t.Error("string equality failed")
	}
	if !evalOK(t, `code != "TAS"`, ctx) {
		t.Error("string inequality failed")
	}
	if !evalOK(t, `code in "IEA", "ISS"`, ctx) {
		t.Error("string IN failed")
	}
	// Lexicographic comparison for strings.
	if !evalOK(t, `code < "ZZZ"`, ctx) {
		t.Error("string < failed")
	}
}

func TestMissingValueIsError(t *testing.T) {
	ctx := hitContext(25, rdf.Term{}) // no class assigned
	e := MustParse("ScoreClass in q:high")
	if _, err := e.Eval(ctx); err == nil {
		t.Error("missing class value should be an evaluation error")
	}
	e = MustParse("NoSuchEvidence > 1")
	if _, err := e.Eval(ctx); err == nil {
		t.Error("missing evidence should be an evaluation error")
	}
	// Short-circuit: 'or' with a passing left side never touches the
	// missing value.
	e = MustParse("HR_MC > 20 or NoSuchEvidence > 1")
	got, err := e.Eval(ctx)
	if err != nil || !got {
		t.Errorf("short-circuit or = %v, %v", got, err)
	}
}

func TestBooleanOperandAndErrors(t *testing.T) {
	it := rdf.IRI("urn:item")
	m := evidence.NewMap(it)
	m.Set(it, ontology.Q("flagged"), evidence.Bool(true))
	ctx := &Context{Amap: m, Item: it, Vars: Bindings{"flagged": ontology.Q("flagged")}}
	if !evalOK(t, "flagged", ctx) {
		t.Error("bare boolean operand failed")
	}
	if evalOK(t, "not flagged", ctx) {
		t.Error("negated boolean operand failed")
	}
	// Non-boolean bare operand errors.
	m.Set(it, ontology.Q("num"), evidence.Float(1))
	e := MustParse("num")
	ctx.Vars["num"] = ontology.Q("num")
	if _, err := e.Eval(ctx); err == nil {
		t.Error("bare numeric operand should error")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"x >",
		"x > > 1",
		"x in",
		"x in ()",
		"x in (1, 2",
		"(x > 1",
		"x > 1) extra",
		"x ~ 1",
		`"unterminated`,
		"and x",
		"x in (1,)",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestStringRendering(t *testing.T) {
	srcs := []string{
		"ScoreClass in q:high, q:mid and HR_MC > 20",
		"not (a > 1 or b < 2)",
		`code = "IEA"`,
	}
	for _, src := range srcs {
		e := MustParse(src)
		// Re-parsing the rendering must produce an equivalent expression.
		if _, err := Parse(e.String()); err != nil {
			t.Errorf("rendering of %q does not re-parse: %q: %v", src, e.String(), err)
		}
	}
}

func TestReEvaluationWithDifferentThresholds(t *testing.T) {
	// The paper's exploration loop: same parsed QAs, different conditions
	// between runs. Here: same condition AST, different contexts.
	e := MustParse("HR_MC > 20")
	for _, c := range []struct {
		score float64
		want  bool
	}{{10, false}, {20, false}, {20.01, true}, {100, true}} {
		ctx := hitContext(c.score, ontology.ClassHigh)
		got, err := e.Eval(ctx)
		if err != nil || got != c.want {
			t.Errorf("score %v: got %v (%v), want %v", c.score, got, err, c.want)
		}
	}
}

func TestNormaliseName(t *testing.T) {
	cases := map[string]string{
		"HR MC":   "HR_MC",
		" HR MC ": "HR_MC",
		"simple":  "simple",
		"a b c":   "a_b_c",
	}
	for in, want := range cases {
		if got := NormaliseName(in); got != want {
			t.Errorf("NormaliseName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNegativeNumbers(t *testing.T) {
	it := rdf.IRI("urn:item")
	m := evidence.NewMap(it)
	m.Set(it, ontology.Q("delta"), evidence.Float(-3.5))
	ctx := &Context{Amap: m, Item: it, Vars: Bindings{"delta": ontology.Q("delta")}}
	if !evalOK(t, "delta < -1", ctx) {
		t.Error("negative comparison failed")
	}
	if !evalOK(t, "delta = -3.5", ctx) {
		t.Error("negative equality failed")
	}
}

func BenchmarkEval(b *testing.B) {
	e := MustParse("ScoreClass in q:high, q:mid and HR_MC > 20")
	ctx := hitContext(25, ontology.ClassHigh)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Eval(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	src := "ScoreClass in q:high, q:mid and HR_MC > 20 and not (HitRatio < 0.1)"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func FuzzParseNeverPanics(f *testing.F) {
	for _, seed := range []string{
		"ScoreClass in q:high, q:mid and HR_MC > 20",
		"a > 1", "not x", "(a or b) and c", `s = "str"`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return
		}
		if !strings.Contains(e.String(), "") {
			t.Fatal("impossible")
		}
	})
}
