package condition

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/rdf"
)

// Property: "x > t" over a single-item map agrees with Go's > on the raw
// floats, for arbitrary values and thresholds.
func TestThresholdAgreesWithGoProperty(t *testing.T) {
	it := rdf.IRI("urn:item")
	key := ontology.Q("x")
	vars := Bindings{"x": key}
	f := func(val, threshold float64) bool {
		if math.IsNaN(val) || math.IsInf(val, 0) || math.IsNaN(threshold) || math.IsInf(threshold, 0) {
			return true
		}
		src := fmt.Sprintf("x > %v", threshold)
		expr, err := Parse(src)
		if err != nil {
			// Exponential float renderings like 1e-300 may exceed the
			// lexer's simple number grammar; skip those.
			return true
		}
		m := evidence.NewMap(it)
		m.Set(it, key, evidence.Float(val))
		got, err := expr.Eval(&Context{Amap: m, Item: it, Vars: vars})
		return err == nil && got == (val > threshold)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: De Morgan — not (a and b) ≡ (not a) or (not b) under the
// evaluator, for arbitrary boolean evidence.
func TestDeMorganProperty(t *testing.T) {
	it := rdf.IRI("urn:item")
	aKey, bKey := ontology.Q("a"), ontology.Q("b")
	vars := Bindings{"a": aKey, "b": bKey}
	lhs := MustParse("not (a and b)")
	rhs := MustParse("not a or not b")
	f := func(a, b bool) bool {
		m := evidence.NewMap(it)
		m.Set(it, aKey, evidence.Bool(a))
		m.Set(it, bKey, evidence.Bool(b))
		ctx := &Context{Amap: m, Item: it, Vars: vars}
		l, err1 := lhs.Eval(ctx)
		r, err2 := rhs.Eval(ctx)
		return err1 == nil && err2 == nil && l == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the rendering of a parsed condition re-parses to an
// expression with identical evaluation on a probe context.
func TestRenderEvalStabilityProperty(t *testing.T) {
	it := rdf.IRI("urn:item")
	key := ontology.Q("x")
	vars := Bindings{"x": key}
	f := func(val float64, lo, hi uint8) bool {
		if math.IsNaN(val) || math.IsInf(val, 0) {
			return true
		}
		src := fmt.Sprintf("x > %d and x < %d or x = %d", lo, int(lo)+int(hi), lo)
		e1, err := Parse(src)
		if err != nil {
			return false
		}
		e2, err := Parse(e1.String())
		if err != nil {
			return false
		}
		m := evidence.NewMap(it)
		m.Set(it, key, evidence.Float(val))
		ctx := &Context{Amap: m, Item: it, Vars: vars}
		r1, err1 := e1.Eval(ctx)
		r2, err2 := e2.Eval(ctx)
		return err1 == nil && err2 == nil && r1 == r2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: IN over a random list agrees with linear membership search.
func TestInMembershipProperty(t *testing.T) {
	it := rdf.IRI("urn:item")
	key := ontology.Q("x")
	vars := Bindings{"x": key}
	f := func(val uint8, listRaw []uint8) bool {
		if len(listRaw) == 0 {
			return true
		}
		if len(listRaw) > 12 {
			listRaw = listRaw[:12]
		}
		src := "x in "
		member := false
		for i, v := range listRaw {
			if i > 0 {
				src += ", "
			}
			src += fmt.Sprintf("%d", v)
			if v == val {
				member = true
			}
		}
		expr, err := Parse(src)
		if err != nil {
			return false
		}
		m := evidence.NewMap(it)
		m.Set(it, key, evidence.Float(float64(val)))
		got, err := expr.Eval(&Context{Amap: m, Item: it, Vars: vars})
		return err == nil && got == member
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
