package evidence

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"qurator/internal/rdf"
)

func item(i int) Item { return rdf.IRI(fmt.Sprintf("urn:lsid:test.org:item:%d", i)) }

var (
	hrKey = rdf.IRI("http://qurator.org/iq#HitRatio")
	mcKey = rdf.IRI("http://qurator.org/iq#MassCoverage")
	model = rdf.IRI("http://qurator.org/iq#PIScoreClassification")
	high  = rdf.IRI("http://qurator.org/iq#high")
	low   = rdf.IRI("http://qurator.org/iq#low")
)

func TestValueKindsAndConversions(t *testing.T) {
	cases := []struct {
		v    Value
		kind ValueKind
		str  string
	}{
		{Null, KindNull, ""},
		{Float(0.75), KindFloat, "0.75"},
		{Int(42), KindInt, "42"},
		{String_("IEA"), KindString, "IEA"},
		{Bool(true), KindBool, "true"},
		{TermValue(high), KindTerm, high.Value()},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.AsString() != c.str {
			t.Errorf("%v: AsString = %q, want %q", c.v, c.v.AsString(), c.str)
		}
	}
	if f, ok := Int(7).AsFloat(); !ok || f != 7 {
		t.Error("Int should convert to float")
	}
	if n, ok := Float(3).AsInt(); !ok || n != 3 {
		t.Error("whole Float should convert to int")
	}
	if _, ok := Float(3.5).AsInt(); ok {
		t.Error("fractional Float should not convert to int")
	}
	if f, ok := String_("2.5").AsFloat(); !ok || f != 2.5 {
		t.Error("numeric string should convert to float")
	}
	if _, ok := String_("abc").AsFloat(); ok {
		t.Error("non-numeric string should not convert to float")
	}
	if b, ok := Bool(true).AsBool(); !ok || !b {
		t.Error("AsBool failed")
	}
	if tm, ok := TermValue(high).AsTerm(); !ok || tm != high {
		t.Error("AsTerm failed")
	}
}

func TestValueEqualCrossKind(t *testing.T) {
	if !Float(3).Equal(Int(3)) {
		t.Error("Float(3) should equal Int(3)")
	}
	if Float(3.5).Equal(Int(3)) {
		t.Error("Float(3.5) should not equal Int(3)")
	}
	if !String_("x").Equal(String_("x")) {
		t.Error("equal strings should be Equal")
	}
	if String_("x").Equal(TermValue(rdf.Literal("x"))) {
		t.Error("string and term values should not be Equal")
	}
}

func TestValueTermRoundTrip(t *testing.T) {
	vals := []Value{
		Float(0.123), Int(-5), String_("evidence code IEA"), Bool(false), TermValue(high),
	}
	for _, v := range vals {
		back := FromTerm(v.ToTerm())
		if !back.Equal(v) || back.Kind() != v.Kind() {
			t.Errorf("round trip %v -> %v -> %v", v, v.ToTerm(), back)
		}
	}
	if !FromTerm(rdf.Term{}).IsNull() {
		t.Error("zero Term should decode to Null")
	}
	if Null.ToTerm() != (rdf.Term{}) {
		t.Error("Null should encode to zero Term")
	}
}

// Property: ToTerm/FromTerm is the identity on all value kinds for random
// payloads.
func TestValueTermRoundTripProperty(t *testing.T) {
	f := func(f64 float64, i64 int64, s string, b bool) bool {
		if math.IsNaN(f64) || math.IsInf(f64, 0) {
			return true
		}
		for _, v := range []Value{Float(f64), Int(i64), String_(s), Bool(b)} {
			if !FromTerm(v.ToTerm()).Equal(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMapItemOrderAndDedup(t *testing.T) {
	m := NewMap(item(3), item(1), item(2), item(1))
	want := []Item{item(3), item(1), item(2)}
	if !reflect.DeepEqual(m.Items(), want) {
		t.Fatalf("Items = %v, want %v", m.Items(), want)
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d", m.Len())
	}
	if m.AddItem(item(1)) {
		t.Error("duplicate AddItem should report false")
	}
	if !m.AddItem(item(9)) {
		t.Error("new AddItem should report true")
	}
	if !m.HasItem(item(9)) || m.HasItem(item(100)) {
		t.Error("HasItem wrong")
	}
}

func TestMapSetGet(t *testing.T) {
	m := NewMap(item(1))
	m.Set(item(1), hrKey, Float(0.8))
	m.Set(item(2), hrKey, Float(0.3)) // implicit item add
	if v := m.Get(item(1), hrKey); !v.Equal(Float(0.8)) {
		t.Errorf("Get = %v", v)
	}
	if !m.Has(item(1), hrKey) || m.Has(item(1), mcKey) {
		t.Error("Has wrong")
	}
	if m.Len() != 2 {
		t.Errorf("implicit add: Len = %d", m.Len())
	}
	// Setting Null removes.
	m.Set(item(1), hrKey, Null)
	if m.Has(item(1), hrKey) {
		t.Error("Set Null should remove entry")
	}
	if !m.Get(item(100), hrKey).IsNull() {
		t.Error("absent item should read Null")
	}
}

func TestMapKeysSorted(t *testing.T) {
	m := NewMap(item(1))
	m.Set(item(1), mcKey, Float(1))
	m.Set(item(1), hrKey, Float(2))
	keys := m.Keys()
	if len(keys) != 2 || rdf.CompareTerms(keys[0], keys[1]) >= 0 {
		t.Errorf("Keys = %v, want sorted pair", keys)
	}
}

func TestMapClassAssignment(t *testing.T) {
	m := NewMap(item(1), item(2))
	m.SetClass(item(1), model, high)
	m.SetClass(item(2), model, low)
	if m.Class(item(1), model) != high || m.Class(item(2), model) != low {
		t.Error("class assignment lost")
	}
	if !m.Class(item(3), model).IsZero() {
		t.Error("unassigned class should be zero Term")
	}
}

func TestMapCloneIsDeep(t *testing.T) {
	m := NewMap(item(1))
	m.Set(item(1), hrKey, Float(0.5))
	c := m.Clone()
	c.Set(item(1), hrKey, Float(0.9))
	c.AddItem(item(2))
	if v := m.Get(item(1), hrKey); !v.Equal(Float(0.5)) {
		t.Error("clone mutation leaked into original")
	}
	if m.Len() != 1 {
		t.Error("clone AddItem leaked into original")
	}
}

func TestMapProjectAndFilter(t *testing.T) {
	m := NewMap(item(1), item(2), item(3))
	for i := 1; i <= 3; i++ {
		m.Set(item(i), hrKey, Float(float64(i)/10))
	}
	p := m.Project([]Item{item(3), item(1)})
	if !reflect.DeepEqual(p.Items(), []Item{item(3), item(1)}) {
		t.Errorf("Project items = %v", p.Items())
	}
	if !p.Get(item(3), hrKey).Equal(Float(0.3)) {
		t.Error("Project lost evidence")
	}
	f := m.Filter(func(it Item) bool {
		v, _ := m.Get(it, hrKey).AsFloat()
		return v >= 0.2
	})
	if !reflect.DeepEqual(f.Items(), []Item{item(2), item(3)}) {
		t.Errorf("Filter items = %v", f.Items())
	}
}

func TestMapMergeConflictResolution(t *testing.T) {
	a := NewMap(item(1))
	a.Set(item(1), hrKey, Float(0.1))
	b := NewMap(item(1), item(2))
	b.Set(item(1), hrKey, Float(0.9)) // conflicting
	b.Set(item(2), mcKey, Float(0.4))
	a.Merge(b)
	if !a.Get(item(1), hrKey).Equal(Float(0.9)) {
		t.Error("Merge should let other win on conflicts")
	}
	if !reflect.DeepEqual(a.Items(), []Item{item(1), item(2)}) {
		t.Errorf("Merge items = %v", a.Items())
	}
}

func TestFloatColumnSkipsNonNumeric(t *testing.T) {
	m := NewMap(item(1), item(2), item(3))
	m.Set(item(1), hrKey, Float(0.5))
	m.Set(item(2), hrKey, String_("not numeric at all x"))
	m.Set(item(3), hrKey, Int(1))
	items, vals := m.FloatColumn(hrKey)
	if len(items) != 2 || vals[0] != 0.5 || vals[1] != 1 {
		t.Errorf("FloatColumn = %v, %v", items, vals)
	}
}

func TestComputeStats(t *testing.T) {
	s := ComputeStats([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Errorf("mean = %v, n = %d", s.Mean, s.N)
	}
	if math.Abs(s.StdDev-2) > 1e-12 {
		t.Errorf("stddev = %v, want 2", s.StdDev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	empty := ComputeStats(nil)
	if empty.N != 0 || empty.Mean != 0 || empty.StdDev != 0 {
		t.Errorf("empty stats = %+v", empty)
	}
}

func TestColumnStats(t *testing.T) {
	m := NewMap()
	for i := 1; i <= 4; i++ {
		m.Set(item(i), hrKey, Float(float64(i)))
	}
	s := m.ColumnStats(hrKey)
	if s.N != 4 || s.Mean != 2.5 {
		t.Errorf("ColumnStats = %+v", s)
	}
}

// Property: Project(Items()) is an identity (same items, same evidence).
func TestProjectIdentityProperty(t *testing.T) {
	f := func(seed uint8) bool {
		m := NewMap()
		n := int(seed%20) + 1
		for i := 0; i < n; i++ {
			m.Set(item(i), hrKey, Float(float64(i)))
			if i%2 == 0 {
				m.SetClass(item(i), model, high)
			}
		}
		p := m.Project(m.Items())
		if !reflect.DeepEqual(p.Items(), m.Items()) {
			return false
		}
		for _, it := range m.Items() {
			if !reflect.DeepEqual(p.Row(it), m.Row(it)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMapString(t *testing.T) {
	m := NewMap(item(1))
	m.Set(item(1), hrKey, Float(0.5))
	s := m.String()
	if s == "" || !reflect.DeepEqual(m.Items(), []Item{item(1)}) {
		t.Error("String should render non-empty table")
	}
}
