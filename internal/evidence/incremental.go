package evidence

import "math"

// This file holds the incremental primitives the streaming enactor
// (internal/stream) builds on: in-place item removal and row append on a
// live Amap (so sliding windows evolve without rebuilding the map), and a
// Welford mean/variance accumulator (so avg±stddev classifier thresholds
// update in O(1) per item instead of a full O(n) recompute).

// RemoveItem deletes an item and its evidence row from the map in place,
// preserving the order of the remaining items. It reports whether the
// item was present. Removal is O(n) in the number of trailing items (the
// index is re-based); evicting from the front of a window is therefore
// linear in the window size, not in the stream length.
func (m *Map) RemoveItem(it Item) bool {
	pos, ok := m.index[it]
	if !ok {
		return false
	}
	m.order = append(m.order[:pos], m.order[pos+1:]...)
	delete(m.index, it)
	delete(m.values, it)
	for i := pos; i < len(m.order); i++ {
		m.index[m.order[i]] = i
	}
	return true
}

// RemoveFirst removes the n oldest items (the order prefix) and their
// evidence rows in one pass, returning the removed items in order. It is
// the ordered-eviction API for sliding windows: one call is O(map size)
// total, where evicting the prefix via n RemoveItem calls would re-base
// the index n times (O(n · map size)).
func (m *Map) RemoveFirst(n int) []Item {
	if n <= 0 {
		return nil
	}
	if n > len(m.order) {
		n = len(m.order)
	}
	removed := append([]Item(nil), m.order[:n]...)
	for _, it := range removed {
		delete(m.index, it)
		delete(m.values, it)
	}
	m.order = append(m.order[:0], m.order[n:]...)
	for i, it := range m.order {
		m.index[it] = i
	}
	return removed
}

// SetRow appends an item together with its evidence row in one call — the
// streaming append: a live window Amap grows one arriving item at a time
// without rebuilding. Null values are skipped.
func (m *Map) SetRow(it Item, row map[Key]Value) {
	m.AddItem(it)
	for k, v := range row {
		if v.IsNull() {
			continue
		}
		m.Set(it, k, v)
	}
}

// Accumulator maintains the running mean and (population) variance of a
// numeric evidence column using Welford's algorithm, extended with the
// standard downdate so that values can also be removed — both in O(1).
// It is the incremental counterpart of ComputeStats: a window's
// avg±stddev classifier thresholds stay current as items enter and leave
// without rescanning the window.
//
// The zero value is an empty accumulator ready for use. Accumulator is
// not safe for concurrent use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	// tainted records that a Remove drove m2 negative — the tell-tale of
	// accumulated floating-point drift after many add/remove cycles. A
	// tainted accumulator still answers (its m2 was clamped to 0), but the
	// owner should rebuild it from ground truth at the next opportunity;
	// the streaming windower does exactly that at its next fire.
	tainted bool
}

// Add folds one value into the accumulator.
func (a *Accumulator) Add(v float64) {
	a.n++
	d := v - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (v - a.mean)
}

// Remove undoes one previous Add of v (sliding-window eviction). Removing
// a value that was never added yields undefined statistics, as with any
// mean/variance downdate.
func (a *Accumulator) Remove(v float64) {
	switch {
	case a.n <= 0:
		return
	case a.n == 1:
		*a = Accumulator{}
		return
	}
	prevMean := (float64(a.n)*a.mean - v) / float64(a.n-1)
	a.m2 -= (v - a.mean) * (v - prevMean)
	if a.m2 < 0 {
		a.m2 = 0 // guard against floating-point drift
		a.tainted = true
	}
	a.mean = prevMean
	a.n--
}

// Tainted reports whether floating-point drift was detected (a Remove
// drove the running sum of squares negative). Statistics from a tainted
// accumulator are clamped best-effort values; rebuild from the underlying
// data to clear the flag.
func (a *Accumulator) Tainted() bool { return a.tainted }

// N returns the number of values currently accumulated.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean (0 when empty).
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.mean
}

// StdDev returns the running population standard deviation, matching
// ComputeStats (0 when empty).
func (a *Accumulator) StdDev() float64 {
	if a.n == 0 {
		return 0
	}
	return math.Sqrt(a.m2 / float64(a.n))
}

// Thresholds returns the paper's §5.1 classifier cut points over the
// accumulated distribution: (mean − stddev, mean + stddev).
func (a *Accumulator) Thresholds() (lo, hi float64) {
	sd := a.StdDev()
	return a.Mean() - sd, a.Mean() + sd
}

// Stats snapshots the accumulator as a Stats value. Min and Max are not
// tracked (they cannot be maintained under O(1) removal) and are reported
// as the mean for non-empty accumulators.
func (a *Accumulator) Stats() Stats {
	m := a.Mean()
	return Stats{N: a.n, Mean: m, StdDev: a.StdDev(), Min: m, Max: m}
}
