package evidence

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"qurator/internal/rdf"
)

func incItem(i int) Item { return rdf.IRI(fmt.Sprintf("urn:lsid:x.org:ns:%d", i)) }

func TestRemoveFirst(t *testing.T) {
	key := rdf.IRI("urn:k")
	m := NewMap(incItem(0), incItem(1), incItem(2), incItem(3), incItem(4))
	for i := 0; i < 5; i++ {
		m.Set(incItem(i), key, Float(float64(i)))
	}

	removed := m.RemoveFirst(2)
	if len(removed) != 2 || removed[0] != incItem(0) || removed[1] != incItem(1) {
		t.Fatalf("removed = %v, want the two oldest items", removed)
	}
	want := []Item{incItem(2), incItem(3), incItem(4)}
	got := m.Items()
	if len(got) != len(want) {
		t.Fatalf("items = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("items[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if m.HasItem(incItem(0)) || m.Has(incItem(1), key) {
		t.Error("evicted items still present")
	}
	// Index re-based: appends and positional lookups stay consistent.
	m.AddItem(incItem(9))
	if m.ItemAt(0) != incItem(2) || m.ItemAt(3) != incItem(9) {
		t.Errorf("order after RemoveFirst+AddItem = %v", m.Items())
	}

	if r := m.RemoveFirst(0); r != nil {
		t.Errorf("RemoveFirst(0) = %v, want nil", r)
	}
	if r := m.RemoveFirst(100); len(r) != 4 {
		t.Errorf("RemoveFirst(overlarge) removed %d, want 4", len(r))
	}
	if m.Len() != 0 {
		t.Errorf("Len after draining = %d", m.Len())
	}
}

func TestRemoveItem(t *testing.T) {
	key := rdf.IRI("urn:k")
	m := NewMap(incItem(0), incItem(1), incItem(2), incItem(3))
	for i := 0; i < 4; i++ {
		m.Set(incItem(i), key, Float(float64(i)))
	}
	if !m.RemoveItem(incItem(1)) {
		t.Fatal("RemoveItem(present) = false")
	}
	if m.RemoveItem(incItem(1)) {
		t.Fatal("RemoveItem(absent) = true")
	}
	want := []Item{incItem(0), incItem(2), incItem(3)}
	got := m.Items()
	if len(got) != len(want) {
		t.Fatalf("items = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("items[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Index stays consistent: lookups and later appends still work.
	if m.Has(incItem(1), key) {
		t.Error("removed item still has evidence")
	}
	if v := m.Get(incItem(3), key); !v.Equal(Float(3)) {
		t.Errorf("Get after removal = %v", v)
	}
	m.AddItem(incItem(4))
	if got := m.Items(); got[len(got)-1] != incItem(4) {
		t.Errorf("append after removal = %v", got)
	}
	// Re-adding a removed item appends it at the end with no stale row.
	m.AddItem(incItem(1))
	if m.Has(incItem(1), key) {
		t.Error("re-added item resurrected old evidence")
	}
}

func TestSetRow(t *testing.T) {
	k1, k2 := rdf.IRI("urn:k1"), rdf.IRI("urn:k2")
	m := NewMap()
	m.SetRow(incItem(0), map[Key]Value{k1: Float(1), k2: Null})
	if !m.HasItem(incItem(0)) || !m.Has(incItem(0), k1) {
		t.Fatal("SetRow did not append item/evidence")
	}
	if m.Has(incItem(0), k2) {
		t.Error("SetRow stored a Null value")
	}
}

// TestAccumulatorMatchesComputeStats is the incremental/batch agreement
// law: an Accumulator over any prefix-with-evictions sequence agrees with
// ComputeStats over the surviving values.
func TestAccumulatorMatchesComputeStats(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var acc Accumulator
		var live []float64
		n := 5 + rng.Intn(200)
		for i := 0; i < n; i++ {
			// Mix additions with front evictions, as a sliding window does.
			if len(live) > 0 && rng.Float64() < 0.3 {
				acc.Remove(live[0])
				live = live[1:]
			}
			v := rng.NormFloat64()*25 + 50
			acc.Add(v)
			live = append(live, v)

			want := ComputeStats(live)
			if acc.N() != want.N {
				t.Fatalf("trial %d: N = %d, want %d", trial, acc.N(), want.N)
			}
			if !approxEq(acc.Mean(), want.Mean) || !approxEq(acc.StdDev(), want.StdDev) {
				t.Fatalf("trial %d: acc = (%g, %g), want (%g, %g)",
					trial, acc.Mean(), acc.StdDev(), want.Mean, want.StdDev)
			}
			lo, hi := acc.Thresholds()
			if !approxEq(lo, want.Mean-want.StdDev) || !approxEq(hi, want.Mean+want.StdDev) {
				t.Fatalf("trial %d: thresholds (%g, %g) disagree with batch", trial, lo, hi)
			}
		}
	}
}

func TestAccumulatorEmptyAndSingle(t *testing.T) {
	var acc Accumulator
	if acc.N() != 0 || acc.Mean() != 0 || acc.StdDev() != 0 {
		t.Fatal("zero accumulator not empty")
	}
	acc.Add(7)
	if acc.N() != 1 || acc.Mean() != 7 || acc.StdDev() != 0 {
		t.Fatalf("single value: n=%d mean=%g sd=%g", acc.N(), acc.Mean(), acc.StdDev())
	}
	acc.Remove(7)
	if acc.N() != 0 || acc.Mean() != 0 || acc.StdDev() != 0 {
		t.Fatal("remove to empty did not reset")
	}
	acc.Remove(1) // removing from empty is a no-op
	if acc.N() != 0 {
		t.Fatal("remove on empty changed state")
	}
}

func approxEq(a, b float64) bool {
	const tol = 1e-9
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}
