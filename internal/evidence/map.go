package evidence

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"qurator/internal/rdf"
)

// Item identifies a data item; it is an RDF term, typically an
// LSID-wrapped URI.
type Item = rdf.Term

// Key identifies a column of the annotation map: an evidence-type IRI
// (e.g. q:HitRatio), a QA tag IRI (e.g. q:HR_MC with syntactic type
// score), or a classification-model IRI (e.g. q:PIScoreClassification).
type Key = rdf.Term

// Map is an annotation map: an ordered collection of data items, each
// carrying evidence values keyed by evidence type / tag. The item order
// is significant — data sets in the running example are ranked protein
// identification lists — and is preserved by all operations.
//
// Map is not safe for concurrent mutation; operators receive and return
// maps by value-semantics methods (Clone, Project, Merge).
type Map struct {
	order  []Item
	index  map[Item]int
	values map[Item]map[Key]Value
}

// NewMap returns an annotation map over the given items, in order.
// Duplicate items are kept once, at their first position.
func NewMap(items ...Item) *Map {
	m := &Map{
		index:  make(map[Item]int, len(items)),
		values: make(map[Item]map[Key]Value, len(items)),
	}
	for _, it := range items {
		m.AddItem(it)
	}
	return m
}

// AddItem appends an item (no-op if present). It reports whether the item
// was added.
func (m *Map) AddItem(it Item) bool {
	if _, ok := m.index[it]; ok {
		return false
	}
	m.index[it] = len(m.order)
	m.order = append(m.order, it)
	return true
}

// HasItem reports whether the item is in the map's data set.
func (m *Map) HasItem(it Item) bool {
	_, ok := m.index[it]
	return ok
}

// Items returns a copy of the data set in order. Callers may freely keep
// or mutate the returned slice; it never aliases the map's internal
// order, so concurrent readers of aliased views (the shard-parallel data
// plane shares maps across goroutines) cannot corrupt each other's
// iteration order.
func (m *Map) Items() []Item {
	if len(m.order) == 0 {
		return nil
	}
	return append([]Item(nil), m.order...)
}

// ItemAt returns the item at position i in the data set order.
func (m *Map) ItemAt(i int) Item { return m.order[i] }

// Len returns the number of data items.
func (m *Map) Len() int { return len(m.order) }

// Set associates an evidence value with (item, key), adding the item to
// the data set if absent. Setting Null removes the entry.
func (m *Map) Set(it Item, key Key, v Value) {
	m.AddItem(it)
	if v.IsNull() {
		if row, ok := m.values[it]; ok {
			delete(row, key)
			if len(row) == 0 {
				delete(m.values, it)
			}
		}
		return
	}
	row, ok := m.values[it]
	if !ok {
		row = make(map[Key]Value)
		m.values[it] = row
	}
	row[key] = v
}

// Get returns the evidence value for (item, key); Null when absent.
func (m *Map) Get(it Item, key Key) Value {
	if row, ok := m.values[it]; ok {
		if v, ok := row[key]; ok {
			return v
		}
	}
	return Null
}

// Has reports whether a non-null value exists for (item, key).
func (m *Map) Has(it Item, key Key) bool {
	return !m.Get(it, key).IsNull()
}

// Keys returns the sorted set of keys that have at least one non-null
// value anywhere in the map.
func (m *Map) Keys() []Key {
	seen := map[Key]struct{}{}
	for _, row := range m.values {
		for k := range row {
			seen[k] = struct{}{}
		}
	}
	out := make([]Key, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return rdf.CompareTerms(out[i], out[j]) < 0 })
	return out
}

// Row returns a copy of the item's (key, value) entries.
func (m *Map) Row(it Item) map[Key]Value {
	out := make(map[Key]Value, len(m.values[it]))
	for k, v := range m.values[it] {
		out[k] = v
	}
	return out
}

// SetClass records a class assignment {d → (model, label)} — the output
// form of a classifier QA (paper §4.1).
func (m *Map) SetClass(it Item, model rdf.Term, label rdf.Term) {
	m.Set(it, model, TermValue(label))
}

// Class returns the class label assigned to the item under the given
// classification model, or a zero Term if unassigned.
func (m *Map) Class(it Item, model rdf.Term) rdf.Term {
	if t, ok := m.Get(it, model).AsTerm(); ok {
		return t
	}
	return rdf.Term{}
}

// Clone returns a deep copy.
func (m *Map) Clone() *Map {
	out := NewMap(m.order...)
	for it, row := range m.values {
		for k, v := range row {
			out.Set(it, k, v)
		}
	}
	return out
}

// Project returns a new map restricted to the given items (in the given
// order), carrying over their evidence entries. Items absent from m are
// included with no evidence.
func (m *Map) Project(items []Item) *Map {
	out := NewMap(items...)
	for _, it := range items {
		for k, v := range m.values[it] {
			out.Set(it, k, v)
		}
	}
	return out
}

// Filter returns a new map containing only the items for which keep
// returns true, preserving order and evidence.
func (m *Map) Filter(keep func(Item) bool) *Map {
	var kept []Item
	for _, it := range m.order {
		if keep(it) {
			kept = append(kept, it)
		}
	}
	return m.Project(kept)
}

// Merge copies every item and evidence entry of other into m, appending
// unseen items after m's existing ones. On key conflicts, other wins —
// this implements the "consolidate assertions" step the quality-view
// compiler inserts after multiple QAs (paper §6.1).
func (m *Map) Merge(other *Map) {
	for _, it := range other.order {
		m.AddItem(it)
		for k, v := range other.values[it] {
			m.Set(it, k, v)
		}
	}
}

// Shard splits the map into order-preserving item shards of at most size
// items each, carrying the items' full evidence rows. Concatenating the
// shards in order (MergeShards) reconstructs the map exactly. A size ≤ 0,
// or one no smaller than the data set, yields a single shard aliasing m
// itself — the serial fast path costs nothing. Shards are independent
// copies, safe to hand to concurrent workers.
func (m *Map) Shard(size int) []*Map {
	if size <= 0 || len(m.order) <= size {
		return []*Map{m}
	}
	shards := make([]*Map, 0, (len(m.order)+size-1)/size)
	for start := 0; start < len(m.order); start += size {
		end := start + size
		if end > len(m.order) {
			end = len(m.order)
		}
		shards = append(shards, m.Project(m.order[start:end]))
	}
	return shards
}

// MergeShards concatenates item shards back into one map, preserving
// shard order and each shard's internal item order — the inverse of
// Shard for disjoint shards. Evidence conflicts (only possible when the
// shards overlap) resolve last-shard-wins, matching Merge.
func MergeShards(shards []*Map) *Map {
	if len(shards) == 1 {
		return shards[0]
	}
	out := NewMap()
	for _, s := range shards {
		if s != nil {
			out.Merge(s)
		}
	}
	return out
}

// WriteCanonical writes a deterministic, collision-free byte encoding of
// the map: the item list in order, then each item's evidence row with
// keys sorted, every field length-prefixed. Two maps produce the same
// encoding iff they carry the same items in the same order with the same
// evidence — the payload encoding behind content-addressed cache keys
// (internal/qcache).
func (m *Map) WriteCanonical(w io.Writer) error {
	var scratch [binary.MaxVarintLen64]byte
	writeBytes := func(s string) error {
		n := binary.PutUvarint(scratch[:], uint64(len(s)))
		if _, err := w.Write(scratch[:n]); err != nil {
			return err
		}
		_, err := io.WriteString(w, s)
		return err
	}
	writeInt := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := w.Write(scratch[:n])
		return err
	}
	if err := writeInt(uint64(len(m.order))); err != nil {
		return err
	}
	for _, it := range m.order {
		if err := writeBytes(it.String()); err != nil {
			return err
		}
	}
	for _, it := range m.order {
		row := m.values[it]
		keys := make([]Key, 0, len(row))
		for k := range row {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return rdf.CompareTerms(keys[i], keys[j]) < 0 })
		if err := writeInt(uint64(len(keys))); err != nil {
			return err
		}
		for _, k := range keys {
			v := row[k]
			if err := writeBytes(k.String()); err != nil {
				return err
			}
			if err := writeBytes(v.Kind().String()); err != nil {
				return err
			}
			if err := writeBytes(v.String()); err != nil {
				return err
			}
		}
	}
	return nil
}

// FloatColumn returns the values of key for every item that has a numeric
// value, in item order, together with the owning items.
func (m *Map) FloatColumn(key Key) (items []Item, vals []float64) {
	for _, it := range m.order {
		if f, ok := m.Get(it, key).AsFloat(); ok {
			items = append(items, it)
			vals = append(vals, f)
		}
	}
	return items, vals
}

// String renders a compact table for debugging.
func (m *Map) String() string {
	var b strings.Builder
	keys := m.Keys()
	fmt.Fprintf(&b, "Amap[%d items, %d keys]\n", len(m.order), len(keys))
	for _, it := range m.order {
		b.WriteString("  ")
		b.WriteString(it.String())
		for _, k := range keys {
			if v := m.Get(it, k); !v.IsNull() {
				fmt.Fprintf(&b, " %s=%s", shortKey(k), v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func shortKey(k Key) string {
	v := k.Value()
	for i := len(v) - 1; i >= 0; i-- {
		if v[i] == '#' || v[i] == '/' || v[i] == ':' {
			return v[i+1:]
		}
	}
	return v
}

// Stats holds summary statistics of a numeric evidence column.
type Stats struct {
	N            int
	Mean, StdDev float64
	Min, Max     float64
}

// ColumnStats computes mean and (population) standard deviation of the
// numeric values under key — the quantities the paper's three-way
// classifier thresholds on (§5.1: avg ± stddev).
func (m *Map) ColumnStats(key Key) Stats {
	_, vals := m.FloatColumn(key)
	return ComputeStats(vals)
}

// ComputeStats computes summary statistics over a sample.
func ComputeStats(vals []float64) Stats {
	s := Stats{N: len(vals)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = vals[0], vals[0]
	sum := 0.0
	for _, v := range vals {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.N)
	varSum := 0.0
	for _, v := range vals {
		d := v - s.Mean
		varSum += d * d
	}
	s.StdDev = math.Sqrt(varSum / float64(s.N))
	return s
}
