package evidence

import (
	"bytes"
	"fmt"
	"testing"

	"qurator/internal/rdf"
)

func buildMap(n int) *Map {
	m := NewMap()
	for i := 0; i < n; i++ {
		it := rdf.IRI(fmt.Sprintf("urn:item:%03d", i))
		m.AddItem(it)
		m.Set(it, rdf.IRI("urn:score"), Float(float64(i)/10))
		if i%3 == 0 {
			m.Set(it, rdf.IRI("urn:label"), String_(fmt.Sprintf("l%d", i)))
		}
	}
	return m
}

func mapsEqual(a, b *Map) bool {
	if a.Len() != b.Len() {
		return false
	}
	ai, bi := a.Items(), b.Items()
	for i := range ai {
		if ai[i] != bi[i] {
			return false
		}
	}
	var ab, bb bytes.Buffer
	if err := a.WriteCanonical(&ab); err != nil {
		return false
	}
	if err := b.WriteCanonical(&bb); err != nil {
		return false
	}
	return bytes.Equal(ab.Bytes(), bb.Bytes())
}

func TestItemsReturnsCopy(t *testing.T) {
	m := buildMap(4)
	items := m.Items()
	items[0], items[1] = items[1], items[0] // a hostile caller mutates
	fresh := m.Items()
	if fresh[0] != rdf.IRI("urn:item:000") || fresh[1] != rdf.IRI("urn:item:001") {
		t.Fatal("mutating the Items() result corrupted the map's internal order")
	}
	if m.ItemAt(0) != rdf.IRI("urn:item:000") {
		t.Fatal("ItemAt disagrees with insertion order")
	}
	if buildMap(0).Items() != nil {
		t.Fatal("empty map should return nil items")
	}
}

func TestShardMergeRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 10, 17} {
		for _, size := range []int{-1, 0, 1, 2, 3, 7, 16, 100} {
			m := buildMap(n)
			shards := m.Shard(size)
			if size <= 0 || n <= size {
				if len(shards) != 1 || shards[0] != m {
					t.Fatalf("n=%d size=%d: serial fast path must alias the input", n, size)
				}
			} else {
				want := (n + size - 1) / size
				if len(shards) != want {
					t.Fatalf("n=%d size=%d: %d shards, want %d", n, size, len(shards), want)
				}
				total := 0
				for i, s := range shards {
					if s.Len() == 0 {
						t.Fatalf("n=%d size=%d: shard %d is empty", n, size, i)
					}
					if s.Len() > size {
						t.Fatalf("n=%d size=%d: shard %d has %d items", n, size, i, s.Len())
					}
					total += s.Len()
				}
				if total != n {
					t.Fatalf("n=%d size=%d: shards cover %d items", n, size, total)
				}
			}
			merged := MergeShards(shards)
			if !mapsEqual(m, merged) {
				t.Fatalf("n=%d size=%d: shard→merge round trip changed the map", n, size)
			}
		}
	}
}

func TestShardsAreIndependentCopies(t *testing.T) {
	m := buildMap(6)
	shards := m.Shard(2)
	shards[0].Set(shards[0].ItemAt(0), rdf.IRI("urn:extra"), Int(1))
	if m.Has(m.ItemAt(0), rdf.IRI("urn:extra")) {
		t.Fatal("writing a shard leaked into the source map")
	}
}

func TestMergeShardsSkipsNil(t *testing.T) {
	m := buildMap(4)
	shards := m.Shard(2)
	merged := MergeShards([]*Map{shards[0], nil, shards[1]})
	if !mapsEqual(m, merged) {
		t.Fatal("nil shards must be skipped without disturbing order")
	}
}

func TestWriteCanonicalDiscriminates(t *testing.T) {
	enc := func(m *Map) string {
		var b bytes.Buffer
		if err := m.WriteCanonical(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	base := buildMap(5)
	if enc(base) != enc(buildMap(5)) {
		t.Fatal("equal maps must encode identically")
	}
	if enc(base) == enc(buildMap(6)) {
		t.Fatal("different item sets must encode differently")
	}
	mutated := buildMap(5)
	mutated.Set(mutated.ItemAt(2), rdf.IRI("urn:score"), Float(99))
	if enc(base) == enc(mutated) {
		t.Fatal("different evidence must encode differently")
	}
	// Same cells arriving in a different item order: distinct encodings
	// (order is significant — ranked lists).
	a, b := NewMap(), NewMap()
	x, y := rdf.IRI("urn:x"), rdf.IRI("urn:y")
	a.AddItem(x)
	a.AddItem(y)
	b.AddItem(y)
	b.AddItem(x)
	if enc(a) == enc(b) {
		t.Fatal("item order must be significant")
	}
	// Value kind is encoded: Int(1) vs Float(1) vs String "1".
	i1, f1, s1 := NewMap(x), NewMap(x), NewMap(x)
	i1.Set(x, y, Int(1))
	f1.Set(x, y, Float(1))
	s1.Set(x, y, String_("1"))
	if enc(i1) == enc(f1) || enc(i1) == enc(s1) || enc(f1) == enc(s1) {
		t.Fatal("value kinds must be distinguished")
	}
}
