// Package evidence implements annotation maps — the values that flow
// between Qurator's quality operators (paper §4.1).
//
// Given a data set D and a set E of evidence types, an annotation map
// associates an evidence value v (possibly null) for each evidence type
// e ∈ E to each data item d ∈ D:
//
//	Amap : d → {(e, v)}
//
// Quality assertions augment the map with class assignments of the form
// {d → (t, cl)} where t is a classification model and cl one of its
// members, and with named score tags. Items are identified by RDF terms
// (typically LSID-wrapped URIs, see internal/lsid).
package evidence

import (
	"fmt"
	"strconv"

	"qurator/internal/rdf"
)

// ValueKind discriminates evidence value types.
type ValueKind uint8

const (
	// KindNull is the absent value (the paper's "possibly null" v).
	KindNull ValueKind = iota
	// KindFloat is a floating-point evidence value (scores, ratios).
	KindFloat
	// KindInt is an integer evidence value (counts).
	KindInt
	// KindString is a string evidence value (codes, names).
	KindString
	// KindBool is a boolean evidence value.
	KindBool
	// KindTerm is an RDF term value — used for class labels, which are
	// individuals of a ClassificationModel in the IQ ontology.
	KindTerm
)

func (k ValueKind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindFloat:
		return "float"
	case KindInt:
		return "int"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	case KindTerm:
		return "term"
	default:
		return fmt.Sprintf("ValueKind(%d)", uint8(k))
	}
}

// Value is a typed evidence value. The zero Value is the null value.
type Value struct {
	kind ValueKind
	f    float64
	i    int64
	s    string
	b    bool
	t    rdf.Term
}

// Null is the absent evidence value.
var Null = Value{}

// Float returns a floating-point value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// String_ returns a string value. (Named with a trailing underscore to
// leave the String method free for fmt.Stringer.)
func String_(s string) Value { return Value{kind: KindString, s: s} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// TermValue returns an RDF-term value (e.g. a classification label IRI).
func TermValue(t rdf.Term) Value { return Value{kind: KindTerm, t: t} }

// Kind reports the value's kind.
func (v Value) Kind() ValueKind { return v.kind }

// IsNull reports whether the value is absent.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsFloat converts numeric values to float64.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindFloat:
		return v.f, true
	case KindInt:
		return float64(v.i), true
	case KindString:
		f, err := strconv.ParseFloat(v.s, 64)
		return f, err == nil
	default:
		return 0, false
	}
}

// AsInt converts integer-valued values to int64.
func (v Value) AsInt() (int64, bool) {
	switch v.kind {
	case KindInt:
		return v.i, true
	case KindFloat:
		if v.f == float64(int64(v.f)) {
			return int64(v.f), true
		}
		return 0, false
	default:
		return 0, false
	}
}

// AsString returns the lexical form of the value.
func (v Value) AsString() string {
	switch v.kind {
	case KindNull:
		return ""
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindString:
		return v.s
	case KindBool:
		return strconv.FormatBool(v.b)
	case KindTerm:
		return v.t.Value()
	default:
		return ""
	}
}

// AsBool returns the boolean value.
func (v Value) AsBool() (bool, bool) {
	if v.kind == KindBool {
		return v.b, true
	}
	return false, false
}

// AsTerm returns the RDF-term value.
func (v Value) AsTerm() (rdf.Term, bool) {
	if v.kind == KindTerm {
		return v.t, true
	}
	return rdf.Term{}, false
}

// String implements fmt.Stringer.
func (v Value) String() string {
	if v.kind == KindNull {
		return "<null>"
	}
	if v.kind == KindTerm {
		return v.t.String()
	}
	return v.AsString()
}

// Equal reports whether two values are equal, comparing numerics across
// int/float kinds.
func (v Value) Equal(o Value) bool {
	if v.kind == o.kind {
		return v == o
	}
	vf, vok := v.AsFloat()
	of, ook := o.AsFloat()
	if vok && ook {
		return vf == of
	}
	return false
}

// ToTerm encodes the value as an RDF term for storage in an annotation
// repository. Null values encode as a zero Term.
func (v Value) ToTerm() rdf.Term {
	switch v.kind {
	case KindNull:
		return rdf.Term{}
	case KindFloat:
		return rdf.Double(v.f)
	case KindInt:
		return rdf.Integer(v.i)
	case KindString:
		return rdf.Literal(v.s)
	case KindBool:
		return rdf.Boolean(v.b)
	case KindTerm:
		return v.t
	default:
		return rdf.Term{}
	}
}

// FromTerm decodes an RDF term into a Value, reversing ToTerm: typed
// numeric/boolean literals become their native kinds, other literals
// become strings, and IRIs/blank nodes become term values.
func FromTerm(t rdf.Term) Value {
	if t.IsZero() {
		return Null
	}
	if !t.IsLiteral() {
		return TermValue(t)
	}
	switch t.Datatype() {
	case rdf.XSDDouble:
		if f, ok := t.Float(); ok {
			return Float(f)
		}
	case rdf.XSDInteger:
		if i, ok := t.Int(); ok {
			return Int(i)
		}
	case rdf.XSDBoolean:
		if b, ok := t.Bool(); ok {
			return Bool(b)
		}
	}
	return String_(t.Value())
}
