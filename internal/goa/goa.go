// Package goa simulates the GOA database and the fragment of the Gene
// Ontology it annotates against (paper §1.1): GOA "links protein
// accession numbers with terms describing molecular function, expressed
// in a standard controlled vocabulary" — the final lookup of the ISPIDER
// workflow, and the output whose ranking the Figure 7 experiment
// measures. Annotations carry evidence codes, the reliability indicator
// of paper reference [16] used by the credibility quality view.
package goa

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Term is one Gene Ontology term.
type Term struct {
	// ID is the GO accession, e.g. "GO:0005515".
	ID string
	// Name is the human-readable label, e.g. "protein binding".
	Name string
	// Parents are the is-a parents' IDs.
	Parents []string
}

// Annotation links a protein to a GO term.
type Annotation struct {
	// ProteinAccession is the annotated protein.
	ProteinAccession string
	// TermID is the GO term.
	TermID string
	// EvidenceCode records how the annotation was established (TAS, IDA,
	// ..., IEA).
	EvidenceCode string
	// JournalImpactFactor is the impact factor of the citing journal
	// (0 when the annotation cites no publication).
	JournalImpactFactor float64
}

// DB is an in-memory GOA instance plus its GO term table. Safe for
// concurrent reads after loading.
type DB struct {
	mu          sync.RWMutex
	terms       map[string]Term
	annotations map[string][]Annotation // by protein accession
}

// New returns an empty database.
func New() *DB {
	return &DB{
		terms:       make(map[string]Term),
		annotations: make(map[string][]Annotation),
	}
}

// PutTerm stores a GO term.
func (db *DB) PutTerm(t Term) error {
	if t.ID == "" {
		return fmt.Errorf("goa: term without ID")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.terms[t.ID] = t
	return nil
}

// Term retrieves a GO term.
func (db *DB) Term(id string) (Term, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.terms[id]
	return t, ok
}

// TermCount returns the number of stored terms.
func (db *DB) TermCount() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.terms)
}

// Ancestors returns the transitive is-a ancestors of a term (excluding
// itself), sorted by ID.
func (db *DB) Ancestors(id string) []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	seen := map[string]bool{}
	stack := []string{id}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range db.terms[cur].Parents {
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Annotate stores an annotation; the term must exist.
func (db *DB) Annotate(a Annotation) error {
	if a.ProteinAccession == "" || a.TermID == "" {
		return fmt.Errorf("goa: incomplete annotation %+v", a)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.terms[a.TermID]; !ok {
		return fmt.Errorf("goa: annotation references unknown term %q", a.TermID)
	}
	db.annotations[a.ProteinAccession] = append(db.annotations[a.ProteinAccession], a)
	return nil
}

// AnnotationsFor returns a protein's GO annotations — the GOA query of
// the ISPIDER workflow's final step.
func (db *DB) AnnotationsFor(accession string) []Annotation {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]Annotation(nil), db.annotations[accession]...)
}

// TermsFor returns the distinct GO term IDs annotated to a protein,
// sorted.
func (db *DB) TermsFor(accession string) []string {
	seen := map[string]bool{}
	for _, a := range db.AnnotationsFor(accession) {
		seen[a.TermID] = true
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// TermFrequencies accumulates GO-term occurrence counts over a set of
// proteins — the raw material of the paper's pareto chart ("making a
// pareto chart of the functional annotations by frequency of
// occurrence") and of the Figure 7 ratios.
func (db *DB) TermFrequencies(accessions []string) map[string]int {
	out := map[string]int{}
	for _, acc := range accessions {
		for _, term := range db.TermsFor(acc) {
			out[term]++
		}
	}
	return out
}

// Standard GO evidence codes in decreasing experimental reliability (per
// paper reference [16]'s analysis).
var EvidenceCodes = []string{"TAS", "IDA", "IMP", "IGI", "IPI", "IEP", "ISS", "NAS", "IC", "ND", "IEA"}

// GenerateSynthetic populates the database with nTerms molecular-function
// terms (arranged in a shallow is-a forest) and annotates each of the
// given protein accessions with 1..maxPerProtein terms, with random
// evidence codes and impact factors. It is the synthetic stand-in for
// the public GOA release.
func GenerateSynthetic(db *DB, accessions []string, nTerms, maxPerProtein int, rng *rand.Rand) error {
	if nTerms < 1 || maxPerProtein < 1 {
		return fmt.Errorf("goa: nTerms and maxPerProtein must be positive")
	}
	ids := make([]string, nTerms)
	for i := 0; i < nTerms; i++ {
		ids[i] = fmt.Sprintf("GO:%07d", 1000+i)
		t := Term{ID: ids[i], Name: fmt.Sprintf("molecular function %d", i)}
		// A shallow forest: every non-root term points at an earlier one.
		if i > 0 && rng.Float64() < 0.7 {
			t.Parents = []string{ids[rng.Intn(i)]}
		}
		if err := db.PutTerm(t); err != nil {
			return err
		}
	}
	for _, acc := range accessions {
		n := 1 + rng.Intn(maxPerProtein)
		seen := map[int]bool{}
		for j := 0; j < n; j++ {
			ti := rng.Intn(nTerms)
			if seen[ti] {
				continue
			}
			seen[ti] = true
			a := Annotation{
				ProteinAccession: acc,
				TermID:           ids[ti],
				EvidenceCode:     EvidenceCodes[rng.Intn(len(EvidenceCodes))],
			}
			if rng.Float64() < 0.6 {
				a.JournalImpactFactor = 0.5 + 12*rng.Float64()
			}
			if err := db.Annotate(a); err != nil {
				return err
			}
		}
	}
	return nil
}
