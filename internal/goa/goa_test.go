package goa

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func smallGO(t *testing.T) *DB {
	t.Helper()
	db := New()
	terms := []Term{
		{ID: "GO:0003674", Name: "molecular_function"},
		{ID: "GO:0005488", Name: "binding", Parents: []string{"GO:0003674"}},
		{ID: "GO:0005515", Name: "protein binding", Parents: []string{"GO:0005488"}},
		{ID: "GO:0003824", Name: "catalytic activity", Parents: []string{"GO:0003674"}},
	}
	for _, term := range terms {
		if err := db.PutTerm(term); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestTermStorage(t *testing.T) {
	db := smallGO(t)
	if db.TermCount() != 4 {
		t.Errorf("TermCount = %d", db.TermCount())
	}
	term, ok := db.Term("GO:0005515")
	if !ok || term.Name != "protein binding" {
		t.Errorf("Term = %+v, %v", term, ok)
	}
	if _, ok := db.Term("GO:9999999"); ok {
		t.Error("missing term should not be found")
	}
	if err := db.PutTerm(Term{}); err == nil {
		t.Error("term without ID should fail")
	}
}

func TestAncestors(t *testing.T) {
	db := smallGO(t)
	got := db.Ancestors("GO:0005515")
	want := []string{"GO:0003674", "GO:0005488"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Ancestors = %v, want %v", got, want)
	}
	if len(db.Ancestors("GO:0003674")) != 0 {
		t.Error("root should have no ancestors")
	}
}

func TestAnnotateAndQuery(t *testing.T) {
	db := smallGO(t)
	anns := []Annotation{
		{ProteinAccession: "P1", TermID: "GO:0005515", EvidenceCode: "TAS", JournalImpactFactor: 8.5},
		{ProteinAccession: "P1", TermID: "GO:0003824", EvidenceCode: "IEA"},
		{ProteinAccession: "P2", TermID: "GO:0005515", EvidenceCode: "IDA"},
	}
	for _, a := range anns {
		if err := db.Annotate(a); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.AnnotationsFor("P1"); len(got) != 2 {
		t.Errorf("AnnotationsFor(P1) = %v", got)
	}
	if got := db.TermsFor("P1"); !reflect.DeepEqual(got, []string{"GO:0003824", "GO:0005515"}) {
		t.Errorf("TermsFor(P1) = %v", got)
	}
	if got := db.AnnotationsFor("ghost"); len(got) != 0 {
		t.Errorf("AnnotationsFor(ghost) = %v", got)
	}
	// Annotation referencing an unknown term fails.
	if err := db.Annotate(Annotation{ProteinAccession: "P3", TermID: "GO:404"}); err == nil {
		t.Error("unknown term should fail")
	}
	if err := db.Annotate(Annotation{}); err == nil {
		t.Error("incomplete annotation should fail")
	}
}

func TestTermFrequencies(t *testing.T) {
	db := smallGO(t)
	db.Annotate(Annotation{ProteinAccession: "P1", TermID: "GO:0005515", EvidenceCode: "TAS"})
	db.Annotate(Annotation{ProteinAccession: "P2", TermID: "GO:0005515", EvidenceCode: "IDA"})
	db.Annotate(Annotation{ProteinAccession: "P2", TermID: "GO:0003824", EvidenceCode: "IEA"})
	// Duplicate annotation of the same term counts once per protein.
	db.Annotate(Annotation{ProteinAccession: "P2", TermID: "GO:0003824", EvidenceCode: "TAS"})

	freqs := db.TermFrequencies([]string{"P1", "P2", "P3"})
	if freqs["GO:0005515"] != 2 || freqs["GO:0003824"] != 1 {
		t.Errorf("TermFrequencies = %v", freqs)
	}
}

func TestGenerateSynthetic(t *testing.T) {
	db := New()
	accs := make([]string, 30)
	for i := range accs {
		accs[i] = fmt.Sprintf("SYN%05d", i)
	}
	rng := rand.New(rand.NewSource(9))
	if err := GenerateSynthetic(db, accs, 50, 4, rng); err != nil {
		t.Fatal(err)
	}
	if db.TermCount() != 50 {
		t.Errorf("TermCount = %d", db.TermCount())
	}
	annotated := 0
	for _, acc := range accs {
		terms := db.TermsFor(acc)
		if len(terms) > 0 {
			annotated++
		}
		if len(terms) > 4 {
			t.Errorf("%s has %d terms, max 4", acc, len(terms))
		}
		for _, a := range db.AnnotationsFor(acc) {
			found := false
			for _, c := range EvidenceCodes {
				if a.EvidenceCode == c {
					found = true
				}
			}
			if !found {
				t.Errorf("unknown evidence code %q", a.EvidenceCode)
			}
		}
	}
	if annotated != len(accs) {
		t.Errorf("only %d/%d proteins annotated", annotated, len(accs))
	}
	// Determinism under a fixed seed.
	db2 := New()
	GenerateSynthetic(db2, accs, 50, 4, rand.New(rand.NewSource(9)))
	for _, acc := range accs {
		if !reflect.DeepEqual(db.TermsFor(acc), db2.TermsFor(acc)) {
			t.Fatal("synthetic GOA not deterministic under fixed seed")
		}
	}
	// Parameter validation.
	if err := GenerateSynthetic(New(), accs, 0, 4, rng); err == nil {
		t.Error("nTerms=0 should fail")
	}
	// The is-a forest is acyclic: Ancestors terminates and never contains
	// the term itself.
	for i := 0; i < 50; i++ {
		id := fmt.Sprintf("GO:%07d", 1000+i)
		for _, anc := range db.Ancestors(id) {
			if anc == id {
				t.Fatalf("term %s is its own ancestor", id)
			}
		}
	}
}
