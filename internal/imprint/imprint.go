// Package imprint implements the protein mass fingerprinting (PMF)
// identification tool of the running example — the paper's in-house
// "Imprint" (§1.1). Given a peak list and a reference protein database,
// it reports a ranked list of candidate identifications, each carrying
// the two quality indicators the quality view consumes:
//
//   - Hit Ratio (HR): the fraction of spectrum peaks matched by the
//     candidate's theoretical digest — "an indication of the signal to
//     noise ratio in a mass spectrum";
//   - Mass Coverage (MC): the fraction of the candidate's sequence
//     covered by matched peptides — "the amount of protein sequence
//     matched" (Stead, Preece & Brown [20]).
//
// Like MASCOT and other PMF engines, Imprint can and does return false
// positives: random peak/peptide coincidences score non-zero, and the
// correct identification is not always ranked first — precisely the
// uncertainty quality views are designed to expose.
package imprint

import (
	"fmt"
	"math"
	"sort"

	"qurator/internal/proteomics"
)

// Params configures a search.
type Params struct {
	// TolerancePPM is the peak-matching mass tolerance (ppm).
	TolerancePPM float64
	// MissedCleavages allowed in the theoretical digest.
	MissedCleavages int
	// MinPeptideLen for the theoretical digest.
	MinPeptideLen int
	// MaxHits caps the number of reported identifications (0 = all with
	// at least MinPeptides matches).
	MaxHits int
	// MinPeptides is the minimum number of matched peptides for a
	// candidate to be reported (default 2).
	MinPeptides int
}

// DefaultParams mirrors a typical PMF search configuration.
func DefaultParams() Params {
	return Params{
		TolerancePPM:    100,
		MissedCleavages: 1,
		MinPeptideLen:   6,
		MaxHits:         10,
		MinPeptides:     2,
	}
}

// Hit is one candidate identification.
type Hit struct {
	// Rank is the 1-based position in the result list.
	Rank int
	// Protein is the matched reference entry.
	Protein proteomics.Protein
	// Score is Imprint's native ranking score.
	Score float64
	// HitRatio is matched peaks / total peaks (HR).
	HitRatio float64
	// MassCoverage is covered residues / sequence length (MC).
	MassCoverage float64
	// MatchedPeptides is the number of distinct theoretical peptides
	// matched by at least one peak.
	MatchedPeptides int
	// MatchedPeaks is the number of spectrum peaks matched by at least
	// one theoretical peptide.
	MatchedPeaks int
}

// Result is the output of one search: the ranked identification list for
// one peak list.
type Result struct {
	SpotID string
	// PeakCount is the size of the searched spectrum.
	PeakCount int
	Hits      []Hit
}

// digestIndex caches a protein's theoretical peptide masses.
type digestIndex struct {
	protein  proteomics.Protein
	peptides []proteomics.Peptide
	mzs      []float64
}

// Engine is a PMF search engine over a fixed reference database. Engines
// are safe for concurrent searches once built.
type Engine struct {
	params  Params
	indexes []digestIndex
}

// NewEngine digests the reference database once and returns a reusable
// engine.
func NewEngine(db []proteomics.Protein, params Params) (*Engine, error) {
	if params.TolerancePPM <= 0 {
		return nil, fmt.Errorf("imprint: non-positive mass tolerance")
	}
	if params.MinPeptides <= 0 {
		params.MinPeptides = 2
	}
	e := &Engine{params: params, indexes: make([]digestIndex, 0, len(db))}
	for _, prot := range db {
		if err := prot.Validate(); err != nil {
			return nil, err
		}
		peps := proteomics.Digest(prot.Sequence, params.MissedCleavages, params.MinPeptideLen)
		idx := digestIndex{protein: prot, peptides: peps, mzs: make([]float64, len(peps))}
		for i, pep := range peps {
			idx.mzs[i] = pep.MZ()
		}
		e.indexes = append(e.indexes, idx)
	}
	return e, nil
}

// DatabaseSize returns the number of reference proteins.
func (e *Engine) DatabaseSize() int { return len(e.indexes) }

// Search matches a peak list against the reference database and returns
// ranked identifications.
func (e *Engine) Search(pl proteomics.PeakList) Result {
	res := Result{SpotID: pl.SpotID, PeakCount: len(pl.Peaks)}
	if len(pl.Peaks) == 0 {
		return res
	}
	mzs := pl.MZValues()
	sort.Float64s(mzs)

	for _, idx := range e.indexes {
		hit := e.match(idx, mzs)
		if hit.MatchedPeptides < e.params.MinPeptides {
			continue
		}
		res.Hits = append(res.Hits, hit)
	}
	// Rank by score descending; break ties by accession for determinism.
	sort.Slice(res.Hits, func(i, j int) bool {
		if res.Hits[i].Score != res.Hits[j].Score {
			return res.Hits[i].Score > res.Hits[j].Score
		}
		return res.Hits[i].Protein.Accession < res.Hits[j].Protein.Accession
	})
	if e.params.MaxHits > 0 && len(res.Hits) > e.params.MaxHits {
		res.Hits = res.Hits[:e.params.MaxHits]
	}
	for i := range res.Hits {
		res.Hits[i].Rank = i + 1
	}
	return res
}

// match computes the hit statistics of one candidate against a sorted
// peak m/z list.
func (e *Engine) match(idx digestIndex, sortedMZs []float64) Hit {
	matchedPeaks := map[int]bool{}
	covered := make([]bool, len(idx.protein.Sequence))
	matchedPeptides := 0
	for i, pepMZ := range idx.mzs {
		tol := pepMZ * e.params.TolerancePPM / 1e6
		lo := sort.SearchFloat64s(sortedMZs, pepMZ-tol)
		matched := false
		for j := lo; j < len(sortedMZs) && sortedMZs[j] <= pepMZ+tol; j++ {
			matchedPeaks[j] = true
			matched = true
		}
		if matched {
			matchedPeptides++
			pep := idx.peptides[i]
			for k := pep.Start; k < pep.Start+len(pep.Sequence) && k < len(covered); k++ {
				covered[k] = true
			}
		}
	}
	coveredCount := 0
	for _, c := range covered {
		if c {
			coveredCount++
		}
	}
	hit := Hit{
		Protein:         idx.protein,
		MatchedPeptides: matchedPeptides,
		MatchedPeaks:    len(matchedPeaks),
	}
	if len(sortedMZs) > 0 {
		hit.HitRatio = float64(len(matchedPeaks)) / float64(len(sortedMZs))
	}
	if len(covered) > 0 {
		hit.MassCoverage = float64(coveredCount) / float64(len(covered))
	}
	// Native score: a MOWSE-flavoured combination — matched peptides
	// weighted by coverage, normalised against database size so larger
	// databases don't inflate scores.
	hit.Score = float64(matchedPeptides) * (1 + hit.MassCoverage) *
		math.Log1p(float64(len(sortedMZs))) / math.Log1p(float64(len(e.indexes)))
	return hit
}
