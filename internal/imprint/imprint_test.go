package imprint

import (
	"math/rand"
	"testing"

	"qurator/internal/proteomics"
)

// world builds a reference database and a spectrum containing the first
// protein (plus optional noise), with a fixed seed for reproducibility.
func world(t testing.TB, dbSize, noisePeaks int) ([]proteomics.Protein, proteomics.PeakList) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	db := proteomics.RandomDatabase(dbSize, 200, 400, rng)
	params := proteomics.SpectrumParams{
		PeptideDetectionProb: 0.9,
		MassErrorPPM:         20,
		NoisePeaks:           noisePeaks,
		NoiseMZMin:           500,
		NoiseMZMax:           3500,
		MissedCleavages:      1,
		MinPeptideLen:        6,
	}
	pl := proteomics.SynthesizeSpectrum("spot1", []proteomics.Protein{db[0]}, params, rng)
	return db, pl
}

func TestSearchFindsTrueProtein(t *testing.T) {
	db, pl := world(t, 50, 10)
	eng, err := NewEngine(db, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Search(pl)
	if len(res.Hits) == 0 {
		t.Fatal("no hits at all")
	}
	if res.Hits[0].Protein.Accession != db[0].Accession {
		t.Errorf("top hit = %s, want %s (true protein)", res.Hits[0].Protein.Accession, db[0].Accession)
	}
	top := res.Hits[0]
	if top.Rank != 1 {
		t.Errorf("top rank = %d", top.Rank)
	}
	if top.HitRatio <= 0 || top.HitRatio > 1 {
		t.Errorf("HR = %v out of (0,1]", top.HitRatio)
	}
	if top.MassCoverage <= 0 || top.MassCoverage > 1 {
		t.Errorf("MC = %v out of (0,1]", top.MassCoverage)
	}
	if res.SpotID != "spot1" || res.PeakCount != len(pl.Peaks) {
		t.Errorf("result metadata: %+v", res)
	}
}

func TestSearchProducesFalsePositives(t *testing.T) {
	// With a sizeable database, random coincidences produce additional
	// (false) hits — the uncertainty the paper's quality views target.
	db, pl := world(t, 200, 25)
	eng, err := NewEngine(db, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Search(pl)
	if len(res.Hits) < 2 {
		t.Skip("this seed produced no false positives; acceptable but uninformative")
	}
	falseHits := 0
	for _, h := range res.Hits {
		if h.Protein.Accession != db[0].Accession {
			falseHits++
		}
	}
	if falseHits == 0 {
		t.Error("expected at least one false positive among the hits")
	}
	// True protein outranks the coincidences in HR.
	var trueHR, maxFalseHR float64
	for _, h := range res.Hits {
		if h.Protein.Accession == db[0].Accession {
			trueHR = h.HitRatio
		} else if h.HitRatio > maxFalseHR {
			maxFalseHR = h.HitRatio
		}
	}
	if trueHR <= maxFalseHR {
		t.Errorf("true protein HR %v should exceed false-positive HR %v", trueHR, maxFalseHR)
	}
}

func TestHitRatioReflectsNoise(t *testing.T) {
	// More noise peaks → lower HR for the true protein (HR is the
	// signal-to-noise indicator).
	dbClean, plClean := world(t, 30, 0)
	eng, err := NewEngine(dbClean, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cleanHR := eng.Search(plClean).Hits[0].HitRatio

	_, plNoisy := world(t, 30, 60)
	noisyRes := eng.Search(plNoisy)
	if len(noisyRes.Hits) == 0 {
		t.Fatal("no hits in noisy spectrum")
	}
	noisyHR := noisyRes.Hits[0].HitRatio
	if noisyHR >= cleanHR {
		t.Errorf("HR should drop with noise: clean %v, noisy %v", cleanHR, noisyHR)
	}
}

func TestRankingDeterministic(t *testing.T) {
	db, pl := world(t, 100, 20)
	eng, err := NewEngine(db, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	first := eng.Search(pl)
	for i := 0; i < 3; i++ {
		again := eng.Search(pl)
		if len(again.Hits) != len(first.Hits) {
			t.Fatal("hit count changed between runs")
		}
		for j := range first.Hits {
			if first.Hits[j].Protein.Accession != again.Hits[j].Protein.Accession {
				t.Fatal("ranking not deterministic")
			}
		}
	}
}

func TestMaxHitsAndMinPeptides(t *testing.T) {
	db, pl := world(t, 200, 40)
	params := DefaultParams()
	params.MaxHits = 3
	eng, err := NewEngine(db, params)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Search(pl)
	if len(res.Hits) > 3 {
		t.Errorf("MaxHits not honoured: %d hits", len(res.Hits))
	}
	for _, h := range res.Hits {
		if h.MatchedPeptides < params.MinPeptides {
			t.Errorf("hit %s with %d matched peptides below MinPeptides %d",
				h.Protein.Accession, h.MatchedPeptides, params.MinPeptides)
		}
	}
	// Ranks are 1..n.
	for i, h := range res.Hits {
		if h.Rank != i+1 {
			t.Errorf("rank %d at index %d", h.Rank, i)
		}
	}
}

func TestEmptySpectrum(t *testing.T) {
	db, _ := world(t, 10, 0)
	eng, err := NewEngine(db, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Search(proteomics.PeakList{SpotID: "empty"})
	if len(res.Hits) != 0 {
		t.Errorf("empty spectrum produced %d hits", len(res.Hits))
	}
}

func TestEngineValidation(t *testing.T) {
	if _, err := NewEngine(nil, Params{TolerancePPM: 0}); err == nil {
		t.Error("zero tolerance should be rejected")
	}
	bad := []proteomics.Protein{{Accession: "P1", Sequence: "ZZZ"}}
	if _, err := NewEngine(bad, DefaultParams()); err == nil {
		t.Error("invalid protein should be rejected")
	}
	eng, err := NewEngine(proteomics.RandomDatabase(5, 100, 200, rand.New(rand.NewSource(1))), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if eng.DatabaseSize() != 5 {
		t.Errorf("DatabaseSize = %d", eng.DatabaseSize())
	}
}

func TestToleranceWidensMatches(t *testing.T) {
	db, pl := world(t, 50, 10)
	tight, err := NewEngine(db, Params{TolerancePPM: 5, MissedCleavages: 1, MinPeptideLen: 6, MinPeptides: 1})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := NewEngine(db, Params{TolerancePPM: 500, MissedCleavages: 1, MinPeptideLen: 6, MinPeptides: 1})
	if err != nil {
		t.Fatal(err)
	}
	nTight := len(tight.Search(pl).Hits)
	nLoose := len(loose.Search(pl).Hits)
	if nLoose < nTight {
		t.Errorf("loose tolerance found fewer hits (%d) than tight (%d)", nLoose, nTight)
	}
}

func BenchmarkSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	db := proteomics.RandomDatabase(200, 200, 400, rng)
	pl := proteomics.SynthesizeSpectrum("s", []proteomics.Protein{db[0]},
		proteomics.DefaultSpectrumParams(), rng)
	eng, err := NewEngine(db, DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Search(pl)
	}
}
