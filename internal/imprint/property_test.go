package imprint

import (
	"math/rand"
	"testing"
	"testing/quick"

	"qurator/internal/proteomics"
)

// Property: for arbitrary random worlds, every reported hit satisfies the
// indicator invariants — HR, MC ∈ (0, 1], matched counts within bounds,
// ranks contiguous from 1, scores non-increasing down the ranking.
func TestHitInvariantsProperty(t *testing.T) {
	f := func(seed int64, noiseRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		db := proteomics.RandomDatabase(30, 150, 350, rng)
		params := proteomics.DefaultSpectrumParams()
		params.NoisePeaks = int(noiseRaw % 60)
		pl := proteomics.SynthesizeSpectrum("s", []proteomics.Protein{db[0], db[1]}, params, rng)
		eng, err := NewEngine(db, DefaultParams())
		if err != nil {
			return false
		}
		res := eng.Search(pl)
		prevScore := 1e18
		for i, h := range res.Hits {
			if h.Rank != i+1 {
				return false
			}
			if h.HitRatio <= 0 || h.HitRatio > 1 {
				return false
			}
			if h.MassCoverage <= 0 || h.MassCoverage > 1 {
				return false
			}
			if h.MatchedPeaks > res.PeakCount || h.MatchedPeaks <= 0 {
				return false
			}
			if h.MatchedPeptides < DefaultParams().MinPeptides {
				return false
			}
			if h.Score > prevScore {
				return false
			}
			prevScore = h.Score
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
