package ispider

import (
	"fmt"
	"sort"
	"strings"

	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/ops"
	"qurator/internal/qa"
	"qurator/internal/qvlang"
	"qurator/internal/rdf"
)

// PRStats are precision/recall of a filtered identification set against
// the synthetic ground truth — the measure the paper could not report
// (its data had no truth labels) that our synthetic substitution adds.
type PRStats struct {
	Name                string
	Kept                int
	TruePositives       int
	Precision, Recall   float64
	TotalTrue, TotalIDs int
}

// scorePR counts an accepted set against ground truth. A kept
// identification is a true positive when its accession is in its spot's
// truth set; recall is measured against the (spot, protein) pairs that
// appear anywhere in the baseline identification list.
func scorePR(world *World, name string, baseline, accepted *evidence.Map) (PRStats, error) {
	stats := PRStats{Name: name, Kept: accepted.Len(), TotalIDs: baseline.Len()}
	trueIdentified := map[string]bool{}
	for _, item := range baseline.Items() {
		spot, acc, _, err := ParseHitItem(item)
		if err != nil {
			return stats, err
		}
		if world.Truth(spot)[acc] {
			trueIdentified[spot+"/"+acc] = true
		}
	}
	stats.TotalTrue = len(trueIdentified)
	keptTrue := map[string]bool{}
	for _, item := range accepted.Items() {
		spot, acc, _, err := ParseHitItem(item)
		if err != nil {
			return stats, err
		}
		if world.Truth(spot)[acc] {
			stats.TruePositives++
			keptTrue[spot+"/"+acc] = true
		}
	}
	if stats.Kept > 0 {
		stats.Precision = float64(stats.TruePositives) / float64(stats.Kept)
	}
	if stats.TotalTrue > 0 {
		stats.Recall = float64(len(keptTrue)) / float64(stats.TotalTrue)
	}
	return stats, nil
}

// enrichedBaseline runs the baseline and computes the full evidence map
// (annotator + enrichment) without any QA/action, for ablations that
// apply QAs directly.
func enrichedBaseline(world *World) (*RunOutput, *evidence.Map, error) {
	baseline, err := RunBaseline(world)
	if err != nil {
		return nil, nil, err
	}
	m := evidence.NewMap(baseline.Accepted.Items()...)
	for _, e := range baseline.Entries {
		item := HitItem(e.SpotID, e.Hit.Protein.Accession, e.Hit.Rank)
		m.Set(item, ontology.HitRatio, evidence.Float(e.Hit.HitRatio))
		m.Set(item, ontology.Coverage, evidence.Float(e.Hit.MassCoverage))
		m.Set(item, ontology.Masses, evidence.Int(int64(e.Hit.MatchedPeaks)))
		m.Set(item, ontology.PeptidesCount, evidence.Int(int64(e.Hit.MatchedPeptides)))
	}
	return baseline, m, nil
}

// RunQAComparison is ablation A2: the same world filtered by three
// alternative QAs — HR-only score, HR+MC score, and the three-way
// classifier — comparing their precision/recall. It makes the paper's
// motivating claim measurable: different QAs over the same evidence
// capture different (and differently effective) quality perceptions.
func RunQAComparison(world *World) ([]PRStats, error) {
	baseline, m, err := enrichedBaseline(world)
	if err != nil {
		return nil, err
	}
	hrTag, hrmcTag := qvlang.TagKeyFor("HR"), qvlang.TagKeyFor("HR_MC")
	for _, assertion := range []ops.QualityAssertion{
		qa.NewHRScore(hrTag),
		qa.NewUniversalPIScore(hrmcTag),
		qa.NewPIScoreClassifier(),
	} {
		if err := assertion.Assert(m); err != nil {
			return nil, err
		}
	}
	var out []PRStats

	// Distribution-relative cuts (avg + stddev of each score column).
	cutAbove := func(tag rdf.Term) func(evidence.Item) bool {
		stats := m.ColumnStats(tag)
		cut := stats.Mean + stats.StdDev
		return func(it evidence.Item) bool {
			f, ok := m.Get(it, tag).AsFloat()
			return ok && f > cut
		}
	}
	variants := []struct {
		name string
		keep func(evidence.Item) bool
	}{
		{"HR-only score > avg+sd", cutAbove(hrTag)},
		{"HR+MC score > avg+sd", cutAbove(hrmcTag)},
		{"classifier class=high", func(it evidence.Item) bool {
			return m.Class(it, ontology.PIScoreClassification) == ontology.ClassHigh
		}},
		{"classifier class in high,mid", func(it evidence.Item) bool {
			cls := m.Class(it, ontology.PIScoreClassification)
			return cls == ontology.ClassHigh || cls == ontology.ClassMid
		}},
		{"native Imprint rank 1", func(it evidence.Item) bool {
			_, _, rank, err := ParseHitItem(it)
			return err == nil && rank == 1
		}},
	}
	for _, v := range variants {
		accepted := m.Filter(v.keep)
		stats, err := scorePR(world, v.name, baseline.Accepted, accepted)
		if err != nil {
			return nil, err
		}
		out = append(out, stats)
	}
	return out, nil
}

// ThresholdPoint is one point of ablation A3's sweep.
type ThresholdPoint struct {
	Label string
	PRStats
}

// RunThresholdSweep is ablation A3: the §4 exploration loop made
// systematic — the same QAs, a sweep of filter conditions (score cuts at
// avg, avg+σ, avg+2σ and top-k for k ∈ ks), reporting how false-positive
// survival trades against recall.
func RunThresholdSweep(world *World, ks []int) ([]ThresholdPoint, error) {
	baseline, m, err := enrichedBaseline(world)
	if err != nil {
		return nil, err
	}
	tag := qvlang.TagKeyFor("HR_MC")
	score := qa.NewUniversalPIScore(tag)
	if err := score.Assert(m); err != nil {
		return nil, err
	}
	stats := m.ColumnStats(tag)
	var out []ThresholdPoint

	for _, cut := range []struct {
		label string
		at    float64
	}{
		{"score > avg", stats.Mean},
		{"score > avg+1sd", stats.Mean + stats.StdDev},
		{"score > avg+2sd", stats.Mean + 2*stats.StdDev},
	} {
		accepted := m.Filter(func(it evidence.Item) bool {
			f, ok := m.Get(it, tag).AsFloat()
			return ok && f > cut.at
		})
		pr, err := scorePR(world, cut.label, baseline.Accepted, accepted)
		if err != nil {
			return nil, err
		}
		out = append(out, ThresholdPoint{Label: cut.label, PRStats: pr})
	}

	// Top-k per spot, using the TopK action over each spot's slice.
	for _, k := range ks {
		kept := evidence.NewMap()
		bySpot := map[string][]evidence.Item{}
		var spots []string
		for _, item := range m.Items() {
			spot, _, _, err := ParseHitItem(item)
			if err != nil {
				return nil, err
			}
			if _, ok := bySpot[spot]; !ok {
				spots = append(spots, spot)
			}
			bySpot[spot] = append(bySpot[spot], item)
		}
		for _, spot := range spots {
			sub := m.Project(bySpot[spot])
			top, err := (&ops.TopK{Key: tag, K: k}).Apply(sub)
			if err != nil {
				return nil, err
			}
			kept.Merge(top)
		}
		pr, err := scorePR(world, fmt.Sprintf("top-%d per spot", k), baseline.Accepted, kept)
		if err != nil {
			return nil, err
		}
		out = append(out, ThresholdPoint{Label: pr.Name, PRStats: pr})
	}
	return out, nil
}

// FormatPRTable renders precision/recall rows as a text table.
func FormatPRTable(title string, rows []PRStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-30s %6s %6s %10s %8s\n", "criterion", "kept", "TP", "precision", "recall")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-30s %6d %6d %10.3f %8.3f\n", r.Name, r.Kept, r.TruePositives, r.Precision, r.Recall)
	}
	return b.String()
}

// TermRanking returns GO terms sorted by descending count (the pareto
// view of §1.1), breaking ties by term ID.
func TermRanking(counts map[string]int) []string {
	terms := make([]string, 0, len(counts))
	for t := range counts {
		terms = append(terms, t)
	}
	sort.Slice(terms, func(i, j int) bool {
		if counts[terms[i]] != counts[terms[j]] {
			return counts[terms[i]] > counts[terms[j]]
		}
		return terms[i] < terms[j]
	})
	return terms
}
