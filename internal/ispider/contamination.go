package ispider

import (
	"fmt"
	"strings"

	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/qa"
)

// ContaminationPoint is one point of ablation A5: a world rebuilt with a
// given contamination level, comparing unfiltered and quality-filtered
// precision.
type ContaminationPoint struct {
	// Contaminants is the number of out-of-database proteins per spot.
	Contaminants int
	// NoisePeaks is the spectrum noise level.
	NoisePeaks int
	// BaselinePrecision is the unfiltered identification precision.
	BaselinePrecision float64
	// Filtered is the quality view's precision/recall at class=high.
	Filtered PRStats
}

// RunContaminationSweep is ablation A5: it rebuilds the world at
// increasing contamination/noise levels (the §1 error sources —
// "biological contamination, procedural errors in the lab, and technology
// limitations") and measures how the quality view's precision advantage
// over the raw pipeline evolves. The quality view's value proposition is
// precisely that it holds precision as the data degrade.
func RunContaminationSweep(base WorldParams, levels []int) ([]ContaminationPoint, error) {
	var out []ContaminationPoint
	for _, level := range levels {
		params := base
		params.ContaminantsPerSpot = level
		params.Spectrum.NoisePeaks = base.Spectrum.NoisePeaks + 10*level
		world, err := BuildWorld(params)
		if err != nil {
			return nil, err
		}
		baseline, m, err := enrichedBaseline(world)
		if err != nil {
			return nil, err
		}
		truePos := 0
		for _, e := range baseline.Entries {
			if world.Truth(e.SpotID)[e.Hit.Protein.Accession] {
				truePos++
			}
		}
		point := ContaminationPoint{
			Contaminants: level,
			NoisePeaks:   params.Spectrum.NoisePeaks,
		}
		if len(baseline.Entries) > 0 {
			point.BaselinePrecision = float64(truePos) / float64(len(baseline.Entries))
		}

		// Apply the hand-built classifier and keep class=high.
		classifier := qa.NewPIScoreClassifier()
		if err := classifier.Assert(m); err != nil {
			return nil, err
		}
		accepted := m.Filter(func(it evidence.Item) bool {
			return m.Class(it, ontology.PIScoreClassification) == ontology.ClassHigh
		})
		pr, err := scorePR(world, fmt.Sprintf("%d contaminants", level), baseline.Accepted, accepted)
		if err != nil {
			return nil, err
		}
		point.Filtered = pr
		out = append(out, point)
	}
	return out, nil
}

// FormatContamination renders the sweep as a text table.
func FormatContamination(points []ContaminationPoint) string {
	var b strings.Builder
	b.WriteString("Ablation A5 — quality-view advantage vs. contamination level\n")
	fmt.Fprintf(&b, "%12s %6s %14s %14s %8s %8s\n",
		"contaminants", "noise", "base-precision", "qv-precision", "kept", "recall")
	for _, p := range points {
		fmt.Fprintf(&b, "%12d %6d %14.3f %14.3f %8d %8.3f\n",
			p.Contaminants, p.NoisePeaks, p.BaselinePrecision,
			p.Filtered.Precision, p.Filtered.Kept, p.Filtered.Recall)
	}
	return b.String()
}
