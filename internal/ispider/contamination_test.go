package ispider

import (
	"strings"
	"testing"
)

func TestContaminationSweep(t *testing.T) {
	params := DefaultWorldParams()
	params.DBSize, params.SpotCount = 60, 6
	points, err := RunContaminationSweep(params, []int{0, 2, 4})
	if err != nil {
		t.Fatalf("RunContaminationSweep: %v", err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	for i, p := range points {
		// The quality view must beat the unfiltered baseline at every
		// contamination level.
		if p.Filtered.Kept > 0 && p.Filtered.Precision <= p.BaselinePrecision {
			t.Errorf("level %d: qv precision %.3f does not beat baseline %.3f",
				p.Contaminants, p.Filtered.Precision, p.BaselinePrecision)
		}
		if p.Filtered.Precision < 0 || p.Filtered.Precision > 1 {
			t.Errorf("level %d: precision out of range", p.Contaminants)
		}
		if i > 0 && p.NoisePeaks <= points[i-1].NoisePeaks {
			t.Error("noise should increase with contamination level")
		}
	}
	// Graceful degradation: heavy contamination may cost recall but not
	// collapse it.
	last := points[len(points)-1]
	if last.Filtered.Recall < 0.3 {
		t.Errorf("recall collapsed at heavy contamination: %.3f", last.Filtered.Recall)
	}
	if s := FormatContamination(points); !strings.Contains(s, "contaminants") {
		t.Error("FormatContamination incomplete")
	}
}
