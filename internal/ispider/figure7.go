package ispider

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Figure7Row is one GO term's entry in the paper's Figure 7: its
// occurrence counts with and without quality filtering, and the
// significance ratio the figure ranks by.
type Figure7Row struct {
	TermID string
	// Original is the term's occurrence count over the unfiltered
	// identifications.
	Original int
	// Filtered is the count after the quality view's filter.
	Filtered int
	// Ratio is Filtered/Original — "a high ratio indicates that the GO
	// term is relatively unaffected by the filtering, and thus it is
	// representative of high-quality proteins" (§6.3).
	Ratio float64
	// OriginalRank and RatioRank are the term's 1-based positions in the
	// frequency ranking and the ratio ranking.
	OriginalRank int
	RatioRank    int
}

// Figure7Result is the complete reproduction of the paper's Figure 7
// experiment.
type Figure7Result struct {
	Rows []Figure7Row
	// TotalOriginal and TotalFiltered are the summed occurrence counts
	// (the paper reports "about 500" original occurrences for 10 spots).
	TotalOriginal, TotalFiltered int
	// IdentificationsOriginal/Kept count protein IDs before/after filter.
	IdentificationsOriginal, IdentificationsKept int
	// RankDisplacement is the mean |OriginalRank − RatioRank| over terms
	// that survive filtering — how much the quality view "significantly
	// alters the original ranking".
	RankDisplacement float64
}

// Figure7Timings is the per-phase wall-clock breakdown of a Figure-7
// run, for the benchmark record cmd/experiment writes.
type Figure7Timings struct {
	// Baseline is the unfiltered Figure-1 analysis run.
	Baseline time.Duration
	// QualityEnactment covers compiling the view, embedding it into the
	// host pipeline and enacting the filtered run.
	QualityEnactment time.Duration
	// Ranking is the GO-term ranking computation over both runs.
	Ranking time.Duration
}

// RunFigure7 reproduces the §6.3 experiment: the 10-spot experiment is
// analysed once through the plain Figure 1 workflow and once with the
// embedded quality view whose filter keeps only top-quality protein IDs
// (score above avg + stddev, i.e. class q:high), then GO terms are ranked
// by the kept/original occurrence ratio.
func RunFigure7(world *World) (*Figure7Result, error) {
	res, _, err := RunFigure7Timed(world)
	return res, err
}

// RunFigure7Timed is RunFigure7 with a per-phase timing breakdown.
func RunFigure7Timed(world *World) (*Figure7Result, *Figure7Timings, error) {
	t := &Figure7Timings{}
	began := time.Now()
	baseline, err := RunBaseline(world)
	if err != nil {
		return nil, nil, err
	}
	t.Baseline = time.Since(began)

	began = time.Now()
	pipeline, err := BuildPipeline(world, "")
	if err != nil {
		return nil, nil, err
	}
	// §6.3: "a filter action set to save only the top quality protein
	// IDs, i.e., those with a score higher than the average + standard
	// deviation" — exactly class q:high of the three-way classifier.
	if err := pipeline.Compiled.SetFilterCondition("filter top k score", "ScoreClass in q:high"); err != nil {
		return nil, nil, err
	}
	filtered, err := pipeline.Run(context.Background())
	if err != nil {
		return nil, nil, err
	}
	t.QualityEnactment = time.Since(began)

	began = time.Now()
	res := BuildFigure7(baseline, filtered)
	t.Ranking = time.Since(began)
	return res, t, nil
}

// BuildFigure7 computes the figure from a baseline and a filtered run.
func BuildFigure7(baseline, filtered *RunOutput) *Figure7Result {
	res := &Figure7Result{
		IdentificationsOriginal: len(baseline.Accepted.Items()),
		IdentificationsKept:     len(filtered.Accepted.Items()),
	}
	terms := make([]string, 0, len(baseline.TermCounts))
	for term := range baseline.TermCounts {
		terms = append(terms, term)
	}
	sort.Strings(terms)
	for _, term := range terms {
		orig := baseline.TermCounts[term]
		kept := filtered.TermCounts[term]
		row := Figure7Row{TermID: term, Original: orig, Filtered: kept}
		if orig > 0 {
			row.Ratio = float64(kept) / float64(orig)
		}
		res.Rows = append(res.Rows, row)
		res.TotalOriginal += orig
		res.TotalFiltered += kept
	}
	// Frequency ranking (descending original count, stable by term ID).
	byFreq := make([]int, len(res.Rows))
	for i := range byFreq {
		byFreq[i] = i
	}
	sort.SliceStable(byFreq, func(a, b int) bool {
		return res.Rows[byFreq[a]].Original > res.Rows[byFreq[b]].Original
	})
	for rank, i := range byFreq {
		res.Rows[i].OriginalRank = rank + 1
	}
	// Ratio ranking (descending ratio; ties broken by filtered count then
	// term ID for determinism).
	byRatio := make([]int, len(res.Rows))
	for i := range byRatio {
		byRatio[i] = i
	}
	sort.SliceStable(byRatio, func(a, b int) bool {
		ra, rb := res.Rows[byRatio[a]], res.Rows[byRatio[b]]
		if ra.Ratio != rb.Ratio {
			return ra.Ratio > rb.Ratio
		}
		return ra.Filtered > rb.Filtered
	})
	for rank, i := range byRatio {
		res.Rows[i].RatioRank = rank + 1
	}
	// Present rows in ratio order, as the figure does.
	sort.SliceStable(res.Rows, func(a, b int) bool {
		return res.Rows[a].RatioRank < res.Rows[b].RatioRank
	})
	// Mean displacement over surviving terms.
	n, sum := 0, 0
	for _, row := range res.Rows {
		if row.Filtered == 0 {
			continue
		}
		d := row.OriginalRank - row.RatioRank
		if d < 0 {
			d = -d
		}
		sum += d
		n++
	}
	if n > 0 {
		res.RankDisplacement = float64(sum) / float64(n)
	}
	return res
}

// Format renders the figure as the text table cmd/experiment prints.
func (r *Figure7Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 — effect of the quality view on the GO-term ranking\n")
	fmt.Fprintf(&b, "identifications: %d -> %d after filtering\n",
		r.IdentificationsOriginal, r.IdentificationsKept)
	fmt.Fprintf(&b, "GO-term occurrences: %d -> %d\n", r.TotalOriginal, r.TotalFiltered)
	fmt.Fprintf(&b, "mean |rank shift| of surviving terms: %.2f\n\n", r.RankDisplacement)
	fmt.Fprintf(&b, "%-14s %9s %9s %7s %9s %9s\n",
		"GO term", "original", "filtered", "ratio", "freq-rank", "sig-rank")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s %9d %9d %7.3f %9d %9d\n",
			row.TermID, row.Original, row.Filtered, row.Ratio, row.OriginalRank, row.RatioRank)
	}
	return b.String()
}
