package ispider

import (
	"context"
	"testing"

	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/qvlang"
)

func smallWorld(t testing.TB) *World {
	t.Helper()
	params := DefaultWorldParams()
	params.DBSize = 60
	params.SpotCount = 6
	w, err := BuildWorld(params)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBuildWorldDeterministic(t *testing.T) {
	p := DefaultWorldParams()
	p.DBSize, p.SpotCount = 40, 4
	w1, err := BuildWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := BuildWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	pls1, _ := w1.Pedro.PeakLists(w1.ExperimentID)
	pls2, _ := w2.Pedro.PeakLists(w2.ExperimentID)
	if len(pls1) != 4 || len(pls2) != 4 {
		t.Fatalf("spot counts: %d, %d", len(pls1), len(pls2))
	}
	for i := range pls1 {
		if len(pls1[i].Peaks) != len(pls2[i].Peaks) {
			t.Fatal("worlds differ under the same seed")
		}
	}
	// Ground truth is recorded and references database proteins.
	truth := w1.Truth("spot01")
	if len(truth) != p.ProteinsPerSpot {
		t.Errorf("truth size = %d", len(truth))
	}
	if w1.Truth("ghost") != nil {
		t.Error("unknown spot should have nil truth")
	}
}

func TestBuildWorldValidation(t *testing.T) {
	p := DefaultWorldParams()
	p.DBSize, p.ProteinsPerSpot = 1, 5
	if _, err := BuildWorld(p); err == nil {
		t.Error("db smaller than sample should fail")
	}
	p = DefaultWorldParams()
	p.SpotCount = 0
	if _, err := BuildWorld(p); err == nil {
		t.Error("zero spots should fail")
	}
}

func TestHitItemRoundTrip(t *testing.T) {
	item := HitItem("spot03", "SYN00042", 7)
	spot, acc, rank, err := ParseHitItem(item)
	if err != nil {
		t.Fatal(err)
	}
	if spot != "spot03" || acc != "SYN00042" || rank != 7 {
		t.Errorf("round trip = %s, %s, %d", spot, acc, rank)
	}
	if _, _, _, err := ParseHitItem(evidence.Item{}); err == nil {
		t.Error("zero item should fail")
	}
}

func TestRunBaselineShape(t *testing.T) {
	w := smallWorld(t)
	out, err := RunBaseline(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Entries) == 0 {
		t.Fatal("baseline produced no identifications")
	}
	if out.Accepted.Len() != len(out.Entries) {
		t.Errorf("items %d != entries %d", out.Accepted.Len(), len(out.Entries))
	}
	if len(out.TermCounts) == 0 {
		t.Fatal("no GO terms")
	}
	// Every spot yields at least one hit (true proteins are findable).
	spots := map[string]bool{}
	for _, e := range out.Entries {
		spots[e.SpotID] = true
	}
	if len(spots) != w.Params.SpotCount {
		t.Errorf("hits from %d spots, want %d", len(spots), w.Params.SpotCount)
	}
	// The true proteins are found (high recall of the raw search).
	found := map[string]bool{}
	for _, e := range out.Entries {
		if w.Truth(e.SpotID)[e.Hit.Protein.Accession] {
			found[e.SpotID+"/"+e.Hit.Protein.Accession] = true
		}
	}
	totalTrue := w.Params.SpotCount * w.Params.ProteinsPerSpot
	if len(found) < totalTrue*3/4 {
		t.Errorf("raw search found only %d/%d true proteins", len(found), totalTrue)
	}
	// And false positives exist — the quality problem to solve.
	if len(out.Entries) <= totalTrue {
		t.Errorf("no false positives among %d identifications (want > %d)", len(out.Entries), totalTrue)
	}
}

func TestPipelineRunEndToEnd(t *testing.T) {
	w := smallWorld(t)
	p, err := BuildPipeline(w, "")
	if err != nil {
		t.Fatalf("BuildPipeline: %v", err)
	}
	// The §5.1 default condition includes an absolute score threshold
	// (HR_MC > 20) whose scale depends on the lab; for the small noisy
	// test world use the distribution-relative high class (as §6.3 does).
	if err := p.Compiled.SetFilterCondition("filter top k score", "ScoreClass in q:high"); err != nil {
		t.Fatal(err)
	}
	out, err := p.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	baseline, err := RunBaseline(w)
	if err != nil {
		t.Fatal(err)
	}
	if out.Accepted.Len() == 0 {
		t.Fatal("quality view filtered out everything")
	}
	if out.Accepted.Len() >= baseline.Accepted.Len() {
		t.Errorf("quality view kept %d of %d — should reduce the ID list",
			out.Accepted.Len(), baseline.Accepted.Len())
	}
	// Survivors carry their QA evidence (the lens's annotations).
	for _, item := range out.Accepted.Items() {
		if !out.Accepted.Has(item, qvlang.TagKeyFor("HR_MC")) {
			t.Errorf("survivor %v lacks HR_MC score", item)
		}
		cls := out.Accepted.Class(item, ontology.PIScoreClassification)
		if cls != ontology.ClassHigh && cls != ontology.ClassMid {
			t.Errorf("survivor %v has class %v", item, cls)
		}
	}
	// Filtered term counts are dominated by baseline counts.
	for term, n := range out.TermCounts {
		if n > baseline.TermCounts[term] {
			t.Errorf("term %s: filtered %d > original %d", term, n, baseline.TermCounts[term])
		}
	}
}

func TestPipelineRerunIsStable(t *testing.T) {
	w := smallWorld(t)
	p, err := BuildPipeline(w, "")
	if err != nil {
		t.Fatal(err)
	}
	first, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	second, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if first.Accepted.Len() != second.Accepted.Len() {
		t.Errorf("re-run changed results: %d vs %d", first.Accepted.Len(), second.Accepted.Len())
	}
}

func TestFigure7ShapeMatchesPaper(t *testing.T) {
	w := smallWorld(t)
	res, err := RunFigure7(w)
	if err != nil {
		t.Fatalf("RunFigure7: %v", err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no Figure 7 rows")
	}
	// The filter reduces the number of protein IDs (the paper's "overall
	// effect ... is to reduce the number of protein IDs").
	if !(res.IdentificationsKept < res.IdentificationsOriginal) {
		t.Errorf("IDs %d -> %d: no reduction", res.IdentificationsOriginal, res.IdentificationsKept)
	}
	if !(res.TotalFiltered < res.TotalOriginal) {
		t.Errorf("occurrences %d -> %d: no reduction", res.TotalOriginal, res.TotalFiltered)
	}
	// Rows are in ratio order and ratios are within [0, 1].
	for i, row := range res.Rows {
		if row.Ratio < 0 || row.Ratio > 1 {
			t.Errorf("row %d ratio %v out of range", i, row.Ratio)
		}
		if row.RatioRank != i+1 {
			t.Errorf("row %d has RatioRank %d", i, row.RatioRank)
		}
		if i > 0 && res.Rows[i].Ratio > res.Rows[i-1].Ratio {
			t.Error("rows not sorted by ratio")
		}
	}
	// The quality view significantly alters the ranking: some surviving
	// term moved between the frequency ranking and the ratio ranking
	// (paper: a 6-occurrence term ranked first, a 14-occurrence term
	// sank).
	if res.RankDisplacement == 0 {
		t.Error("ratio ranking identical to frequency ranking — no reordering")
	}
	moved := false
	for _, row := range res.Rows {
		if row.Filtered > 0 && row.OriginalRank != row.RatioRank {
			moved = true
			break
		}
	}
	if !moved {
		t.Error("no surviving term changed rank")
	}
	// Formatting smoke test.
	if s := res.Format(); len(s) == 0 {
		t.Error("empty Format output")
	}
}

func TestFigure7PaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale world in -short mode")
	}
	// The paper's scale: 10 spots → "about 500 related GO terms".
	w, err := BuildWorld(DefaultWorldParams())
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := RunBaseline(w)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range baseline.TermCounts {
		total += n
	}
	if total < 200 || total > 1200 {
		t.Errorf("GO-term occurrences = %d, want paper-order (~500)", total)
	}
}

func TestQAComparisonAblation(t *testing.T) {
	w := smallWorld(t)
	rows, err := RunQAComparison(w)
	if err != nil {
		t.Fatalf("RunQAComparison: %v", err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]PRStats{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.Precision < 0 || r.Precision > 1 || r.Recall < 0 || r.Recall > 1 {
			t.Errorf("%s: precision/recall out of range: %+v", r.Name, r)
		}
	}
	// Every quality criterion must beat the unfiltered baseline precision.
	baseline, err := RunBaseline(w)
	if err != nil {
		t.Fatal(err)
	}
	basePrecision := 0.0
	trueCnt := 0
	for _, e := range baseline.Entries {
		if w.Truth(e.SpotID)[e.Hit.Protein.Accession] {
			trueCnt++
		}
	}
	basePrecision = float64(trueCnt) / float64(len(baseline.Entries))
	for _, r := range rows {
		if r.Kept > 0 && r.Precision < basePrecision {
			t.Errorf("%s: precision %.3f below baseline %.3f", r.Name, r.Precision, basePrecision)
		}
	}
	// The selective criteria must strictly beat the baseline.
	for _, name := range []string{"classifier class=high", "HR+MC score > avg+sd"} {
		if r := byName[name]; r.Precision <= basePrecision {
			t.Errorf("%s: precision %.3f does not beat baseline %.3f", name, r.Precision, basePrecision)
		}
	}
	// The strict high-class filter is at least as precise as high+mid.
	high := byName["classifier class=high"]
	highMid := byName["classifier class in high,mid"]
	if high.Precision < highMid.Precision {
		t.Errorf("high (%.3f) should be ≥ high+mid (%.3f) precision", high.Precision, highMid.Precision)
	}
	if high.Recall > highMid.Recall {
		t.Errorf("high recall (%.3f) should be ≤ high+mid (%.3f)", high.Recall, highMid.Recall)
	}
	if s := FormatPRTable("A2", rows); len(s) == 0 {
		t.Error("empty table")
	}
}

func TestThresholdSweepAblation(t *testing.T) {
	w := smallWorld(t)
	points, err := RunThresholdSweep(w, []int{1, 3, 5})
	if err != nil {
		t.Fatalf("RunThresholdSweep: %v", err)
	}
	if len(points) != 6 {
		t.Fatalf("points = %d", len(points))
	}
	// Stricter cuts keep fewer items.
	if !(points[2].Kept <= points[1].Kept && points[1].Kept <= points[0].Kept) {
		t.Errorf("cut strictness not monotone: %d, %d, %d",
			points[0].Kept, points[1].Kept, points[2].Kept)
	}
	// Larger k keeps more items and never less recall.
	k1, k3, k5 := points[3], points[4], points[5]
	if !(k1.Kept <= k3.Kept && k3.Kept <= k5.Kept) {
		t.Errorf("top-k size not monotone: %d, %d, %d", k1.Kept, k3.Kept, k5.Kept)
	}
	if k1.Recall > k3.Recall || k3.Recall > k5.Recall {
		t.Errorf("top-k recall not monotone: %.3f, %.3f, %.3f", k1.Recall, k3.Recall, k5.Recall)
	}
}

func TestTermRanking(t *testing.T) {
	counts := map[string]int{"GO:2": 5, "GO:1": 5, "GO:3": 9, "GO:4": 1}
	got := TermRanking(counts)
	want := []string{"GO:3", "GO:1", "GO:2", "GO:4"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranking = %v, want %v", got, want)
		}
	}
}

func BenchmarkPipelineRun(b *testing.B) {
	params := DefaultWorldParams()
	params.DBSize, params.SpotCount = 60, 4
	w, err := BuildWorld(params)
	if err != nil {
		b.Fatal(err)
	}
	p, err := BuildPipeline(w, "")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}
