package ispider

import (
	"fmt"
	"strconv"
	"strings"

	"qurator/internal/annotstore"
	"qurator/internal/evidence"
	"qurator/internal/imprint"
	"qurator/internal/lsid"
	"qurator/internal/ontology"
	"qurator/internal/ops"
	"qurator/internal/rdf"
)

// HitEntry pairs one Imprint hit with the spot it identifies — the
// paper's q:ImprintHitEntry data entity.
type HitEntry struct {
	SpotID string
	Hit    imprint.Hit
}

// HitItem wraps a hit entry as an LSID-identified RDF resource. The LSID
// object encodes (spot, accession, rank) so entries are unique across an
// experiment; the same protein identified in two spots is two data items.
func HitItem(spotID, accession string, rank int) evidence.Item {
	object := fmt.Sprintf("%s;%s;%d", spotID, accession, rank)
	return rdf.IRI(lsid.MustWrap("qurator.org", "imprint-hit", object))
}

// ParseHitItem recovers (spot, accession, rank) from a hit item URI.
func ParseHitItem(item evidence.Item) (spotID, accession string, rank int, err error) {
	object, err := lsid.Unwrap(item.Value())
	if err != nil {
		return "", "", 0, err
	}
	parts := strings.Split(object, ";")
	if len(parts) != 3 {
		return "", "", 0, fmt.Errorf("ispider: malformed hit item %q", item.Value())
	}
	rank, err = strconv.Atoi(parts[2])
	if err != nil {
		return "", "", 0, fmt.Errorf("ispider: bad rank in %q: %v", item.Value(), err)
	}
	return parts[0], parts[1], rank, nil
}

// Identifications flattens per-spot search results into hit entries and
// their data items, preserving spot order then rank order — the ranked
// lists the quality view filters.
func Identifications(results []imprint.Result) ([]HitEntry, []evidence.Item) {
	var entries []HitEntry
	var items []evidence.Item
	for _, res := range results {
		for _, hit := range res.Hits {
			entries = append(entries, HitEntry{SpotID: res.SpotID, Hit: hit})
			items = append(items, HitItem(res.SpotID, hit.Protein.Accession, hit.Rank))
		}
	}
	return entries, items
}

// NewImprintAnnotator builds the q:ImprintOutputAnnotation operator for
// one identification run: it annotates every hit item with the evidence
// the §5.1 view declares — Hit Ratio, Coverage (mass coverage), Masses
// (matched peak count) and PeptidesCount (matched peptide count). The
// evidence "is available as part of the Imprint output, therefore the
// annotation function simply captures their values and stores them as
// annotations" (§3); its scope is this single process execution, which is
// why the view routes it to the non-persistent cache repository.
func NewImprintAnnotator(entries []HitEntry) ops.Annotator {
	byItem := make(map[evidence.Item]imprint.Hit, len(entries))
	for _, e := range entries {
		byItem[HitItem(e.SpotID, e.Hit.Protein.Accession, e.Hit.Rank)] = e.Hit
	}
	return ops.AnnotatorFunc{
		ClassIRI: ontology.ImprintOutputAnnotation,
		Types: []rdf.Term{
			ontology.HitRatio, ontology.Coverage, ontology.Masses, ontology.PeptidesCount,
		},
		Fn: func(items []evidence.Item, repo annotstore.Store) error {
			for _, item := range items {
				hit, ok := byItem[item]
				if !ok {
					return fmt.Errorf("ispider: no Imprint output for item %v", item)
				}
				annotations := []annotstore.Annotation{
					{Item: item, Type: ontology.HitRatio, Value: evidence.Float(hit.HitRatio)},
					{Item: item, Type: ontology.Coverage, Value: evidence.Float(hit.MassCoverage)},
					{Item: item, Type: ontology.Masses, Value: evidence.Int(int64(hit.MatchedPeaks))},
					{Item: item, Type: ontology.PeptidesCount, Value: evidence.Int(int64(hit.MatchedPeptides))},
				}
				for _, a := range annotations {
					a.Source = ontology.ImprintOutputAnnotation
					a.EntityClass = ontology.ImprintHitEntry
					if err := repo.Put(a); err != nil {
						return err
					}
				}
			}
			return nil
		},
	}
}
