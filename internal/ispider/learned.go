package ispider

import (
	"fmt"

	"qurator/internal/condition"
	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/qa"
)

// This file is ablation A4: the paper's future-work item (ii) exercised
// on the running example — a quality assertion *learned* from labelled
// examples instead of hand-built, compared against the hand-built
// classifier on held-out spots.

// LearnedQAResult compares the learned and hand-built QAs on a held-out
// test split.
type LearnedQAResult struct {
	TrainSpots, TestSpots int
	TrainAccuracy         float64
	// Learned and HandBuilt are test-split precision/recall.
	Learned   PRStats
	HandBuilt PRStats
}

// RunLearnedQA trains a decision-stump QA on the even-indexed spots'
// ground truth and evaluates it against the hand-built PIScoreClassifier
// on the odd-indexed spots.
func RunLearnedQA(world *World) (*LearnedQAResult, error) {
	baseline, m, err := enrichedBaseline(world)
	if err != nil {
		return nil, err
	}

	// Split items by spot parity.
	var trainItems, testItems []evidence.Item
	trainSpots, testSpots := map[string]bool{}, map[string]bool{}
	for _, item := range m.Items() {
		spot, _, _, err := ParseHitItem(item)
		if err != nil {
			return nil, err
		}
		// spotNN: parity of the numeric suffix.
		var n int
		if _, err := fmt.Sscanf(spot, "spot%d", &n); err != nil {
			return nil, fmt.Errorf("ispider: unexpected spot ID %q", spot)
		}
		if n%2 == 0 {
			trainItems = append(trainItems, item)
			trainSpots[spot] = true
		} else {
			testItems = append(testItems, item)
			testSpots[spot] = true
		}
	}
	if len(trainItems) == 0 || len(testItems) == 0 {
		return nil, fmt.Errorf("ispider: need at least two spots to split train/test")
	}

	vars := condition.Bindings{
		"hr":  ontology.HitRatio,
		"mc":  ontology.Coverage,
		"pep": ontology.PeptidesCount,
	}
	ts := &qa.TrainingSet{
		Amap:     m,
		Features: []evidence.Key{ontology.HitRatio, ontology.Coverage, ontology.PeptidesCount},
	}
	for _, item := range trainItems {
		spot, acc, _, err := ParseHitItem(item)
		if err != nil {
			return nil, err
		}
		ts.Examples = append(ts.Examples, qa.Example{Item: item, Good: world.Truth(spot)[acc]})
	}

	learnedModel := ontology.Q("LearnedPIClassification")
	tree, err := qa.LearnStumps(ts, ontology.Q("LearnedPIQuality"), learnedModel,
		ontology.ClassHigh, ontology.ClassLow, vars, qa.StumpParams{MaxDepth: 3, MinLeaf: 3})
	if err != nil {
		return nil, err
	}
	trainAcc, err := qa.EvaluateClassifier(tree, ts, ontology.ClassHigh)
	if err != nil {
		return nil, err
	}

	// Evaluate both QAs on the held-out test items.
	testMap := m.Project(testItems)
	if err := tree.Assert(testMap); err != nil {
		return nil, err
	}
	hand := qa.NewPIScoreClassifier()
	if err := hand.Assert(testMap); err != nil {
		return nil, err
	}

	testBaseline := baseline.Accepted.Project(testItems)
	learnedKept := testMap.Filter(func(it evidence.Item) bool {
		return testMap.Class(it, learnedModel) == ontology.ClassHigh
	})
	learnedPR, err := scorePR(world, "learned stump tree", testBaseline, learnedKept)
	if err != nil {
		return nil, err
	}
	handKept := testMap.Filter(func(it evidence.Item) bool {
		return testMap.Class(it, ontology.PIScoreClassification) == ontology.ClassHigh
	})
	handPR, err := scorePR(world, "hand-built classifier", testBaseline, handKept)
	if err != nil {
		return nil, err
	}

	return &LearnedQAResult{
		TrainSpots:    len(trainSpots),
		TestSpots:     len(testSpots),
		TrainAccuracy: trainAcc,
		Learned:       learnedPR,
		HandBuilt:     handPR,
	}, nil
}

// Format renders the comparison as a text table.
func (r *LearnedQAResult) Format() string {
	return fmt.Sprintf(
		"Ablation A4 — learned vs hand-built QA (train %d spots, test %d spots)\n"+
			"training accuracy: %.3f\n%s",
		r.TrainSpots, r.TestSpots, r.TrainAccuracy,
		FormatPRTable("held-out test split:", []PRStats{r.Learned, r.HandBuilt}))
}
