package ispider

import (
	"strings"
	"testing"
)

func TestRunLearnedQA(t *testing.T) {
	w := smallWorld(t)
	res, err := RunLearnedQA(w)
	if err != nil {
		t.Fatalf("RunLearnedQA: %v", err)
	}
	if res.TrainSpots == 0 || res.TestSpots == 0 {
		t.Fatalf("bad split: %d/%d", res.TrainSpots, res.TestSpots)
	}
	if res.TrainSpots+res.TestSpots != w.Params.SpotCount {
		t.Errorf("split covers %d spots, want %d", res.TrainSpots+res.TestSpots, w.Params.SpotCount)
	}
	// The ground-truth rule is learnable: training accuracy must be high.
	if res.TrainAccuracy < 0.9 {
		t.Errorf("training accuracy = %.3f", res.TrainAccuracy)
	}
	// The learned model must generalise: precision and recall on the
	// held-out split both clearly above the unfiltered base rate (the
	// fraction of true identifications, well under 0.5 in this world).
	if res.Learned.Precision < 0.7 {
		t.Errorf("learned precision = %.3f", res.Learned.Precision)
	}
	if res.Learned.Recall < 0.6 {
		t.Errorf("learned recall = %.3f", res.Learned.Recall)
	}
	// Both criteria keep something and not everything.
	for _, pr := range []PRStats{res.Learned, res.HandBuilt} {
		if pr.Kept == 0 || pr.Kept == pr.TotalIDs {
			t.Errorf("%s: degenerate filter kept %d of %d", pr.Name, pr.Kept, pr.TotalIDs)
		}
	}
	if s := res.Format(); !strings.Contains(s, "learned stump tree") {
		t.Error("Format incomplete")
	}
}

func TestRunLearnedQASingleSpotFails(t *testing.T) {
	params := DefaultWorldParams()
	params.SpotCount = 1
	params.DBSize = 40
	w, err := BuildWorld(params)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunLearnedQA(w); err == nil {
		t.Error("single-spot world cannot be split and should fail")
	}
}

func BenchmarkLearnedQA(b *testing.B) {
	params := DefaultWorldParams()
	params.DBSize, params.SpotCount = 60, 6
	w, err := BuildWorld(params)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunLearnedQA(w); err != nil {
			b.Fatal(err)
		}
	}
}
