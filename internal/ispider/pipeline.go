package ispider

import (
	"context"
	"fmt"
	"sync"

	"qurator/internal/annotstore"
	"qurator/internal/binding"
	"qurator/internal/compiler"
	"qurator/internal/evidence"
	"qurator/internal/imprint"
	"qurator/internal/ontology"
	"qurator/internal/proteomics"
	"qurator/internal/qa"
	"qurator/internal/qcache"
	"qurator/internal/qvlang"
	"qurator/internal/services"
	"qurator/internal/workflow"
)

// Processor names of the Figure 1 host workflow.
const (
	ProcPedro   = "PedroRetrieve"
	ProcImprint = "ProteinIdentification"
	ProcGOA     = "GOARetrieval"
	// AdapterHits converts Imprint results into a quality data set — the
	// adapter of the Figure 6 deployment descriptor.
	AdapterHits = "ImprintHitsAdapter"
)

// entriesHolder carries the current run's identification output from the
// host workflow into the quality view's annotator: the evidence "is
// produced as part of the same process that computes the data" (§4), so
// the annotator reads whatever the latest identification step emitted.
type entriesHolder struct {
	mu      sync.Mutex
	entries []HitEntry
}

func (h *entriesHolder) set(entries []HitEntry) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.entries = entries
}

func (h *entriesHolder) get() []HitEntry {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.entries
}

// Pipeline is the fully wired running example: the host workflow with the
// compiled §5.1 quality view embedded (Figure 6), plus the framework
// plumbing (service registry, bindings, repositories) behind it.
type Pipeline struct {
	World    *World
	Repos    *annotstore.Registry
	Services *services.Registry
	Bindings *binding.Registry
	Compiled *compiler.Compiled
	Host     *workflow.Workflow

	holder *entriesHolder
}

// RunOutput is one enactment's results.
type RunOutput struct {
	// Entries are all identifications produced by Imprint (pre-filter).
	Entries []HitEntry
	// Accepted is the annotation map surviving the quality view.
	Accepted *evidence.Map
	// TermCounts are the GO-term occurrence counts computed from the
	// accepted identifications.
	TermCounts map[string]int
}

// PipelineOptions parameterises BuildPipelineWith beyond the view source.
type PipelineOptions struct {
	// ViewXML is the quality view (default: the paper's §5.1 view).
	ViewXML string
	// ShardSize/MaxInflight/Cache configure the enactment data plane —
	// see compiler.Compiler. Zero values keep serial, uncached enactment.
	ShardSize   int
	MaxInflight int
	Cache       *qcache.Cache
}

// BuildPipeline compiles the quality view and embeds it into the Figure 1
// host workflow. viewXML defaults to the paper's §5.1 view.
func BuildPipeline(world *World, viewXML string) (*Pipeline, error) {
	return BuildPipelineWith(world, PipelineOptions{ViewXML: viewXML})
}

// BuildPipelineWith is BuildPipeline with data-plane options — the hook
// the Figure-7 data-plane benchmarks use to compare serial, sharded and
// cached enactment over one identical world.
func BuildPipelineWith(world *World, opts PipelineOptions) (*Pipeline, error) {
	viewXML := opts.ViewXML
	if viewXML == "" {
		viewXML = qvlang.PaperViewXML
	}
	model := ontology.NewIQModel()
	p := &Pipeline{
		World:  world,
		Repos:  annotstore.NewRegistry(),
		holder: &entriesHolder{},
	}

	// Deploy the services the view's operator classes bind to.
	p.Services = services.NewRegistry()
	p.Services.Add(&services.AnnotatorService{
		ServiceName:  "ImprintOutputAnnotator",
		Repositories: p.Repos,
		Annotator:    newHolderAnnotator(p.holder),
	})
	p.Services.Add(&services.AssertionService{
		ServiceName: "HR_MC_score",
		QA:          qa.NewUniversalPIScore(qvlang.TagKeyFor("HR_MC")),
	})
	p.Services.Add(&services.AssertionService{
		ServiceName: "HR_score",
		QA:          qa.NewHRScore(qvlang.TagKeyFor("HR")),
	})
	p.Services.Add(&services.AssertionService{
		ServiceName: "PIScoreClassifier",
		QA:          qa.NewPIScoreClassifier(),
	})

	p.Bindings = binding.NewRegistry(model)
	for concept, svc := range map[string]string{
		"ImprintOutputAnnotation": "ImprintOutputAnnotator",
		"UniversalPIScore2":       "HR_MC_score",
		"HRScoreAssertion":        "HR_score",
		"PIScoreClassifier":       "PIScoreClassifier",
	} {
		p.Bindings.MustBind(binding.Binding{
			Concept: ontology.Q(concept),
			Kind:    binding.ServiceResource,
			Locator: "local:" + svc,
		})
	}

	view, err := qvlang.Parse([]byte(viewXML))
	if err != nil {
		return nil, err
	}
	resolved, err := qvlang.Resolve(view, model)
	if err != nil {
		return nil, err
	}
	comp := &compiler.Compiler{
		Bindings:     p.Bindings,
		Resolver:     &binding.Resolver{Local: p.Services},
		Repositories: p.Repos,
		ShardSize:    opts.ShardSize,
		MaxInflight:  opts.MaxInflight,
		Cache:        opts.Cache,
	}
	p.Compiled, err = comp.Compile(resolved)
	if err != nil {
		return nil, err
	}

	host, err := buildHost(world)
	if err != nil {
		return nil, err
	}
	// Figure 6 embedding: producer → adapter → quality view → consumer.
	filterOut := p.Compiled.Outputs[0]
	desc := &compiler.DeploymentDescriptor{
		Target:   p.Compiled.Workflow.Name(),
		Adapters: []compiler.AdapterDecl{{Name: AdapterHits}},
		Connectors: []compiler.ConnectorDecl{
			{From: ProcImprint, FromPort: "results", To: p.Compiled.Workflow.Name(),
				ToPort: compiler.PortDataSet, Via: AdapterHits},
			{From: p.Compiled.Workflow.Name(), FromPort: filterOut, To: ProcGOA, ToPort: "proteins"},
		},
	}
	adapters := map[string]workflow.Processor{AdapterHits: newHitsAdapter(p.holder)}
	if err := compiler.Embed(host, p.Compiled, desc, adapters); err != nil {
		return nil, err
	}
	if err := host.BindOutput("accepted", p.Compiled.Workflow.Name(), filterOut); err != nil {
		return nil, err
	}
	p.Host = host
	return p, nil
}

// newHolderAnnotator wraps NewImprintAnnotator around the holder so that
// each run annotates against that run's identification output.
func newHolderAnnotator(holder *entriesHolder) annotatorFromHolder {
	return annotatorFromHolder{holder: holder}
}

type annotatorFromHolder struct {
	holder *entriesHolder
}

func (a annotatorFromHolder) Class() evidence.Key { return ontology.ImprintOutputAnnotation }

func (a annotatorFromHolder) Provides() []evidence.Key {
	return []evidence.Key{ontology.HitRatio, ontology.Coverage, ontology.Masses, ontology.PeptidesCount}
}

func (a annotatorFromHolder) Annotate(items []evidence.Item, repo annotstore.Store) error {
	return NewImprintAnnotator(a.holder.get()).Annotate(items, repo)
}

// buildHost constructs the Figure 1 workflow (without the quality view).
func buildHost(world *World) (*workflow.Workflow, error) {
	host := workflow.New("ispider-analysis")

	host.MustAddProcessor(&workflow.Func{
		PName:   ProcPedro,
		Outputs: []string{"peaklists"},
		Fn: func(context.Context, workflow.Ports) (workflow.Ports, error) {
			pls, err := world.Pedro.PeakLists(world.ExperimentID)
			if err != nil {
				return nil, err
			}
			return workflow.Ports{"peaklists": pls}, nil
		},
	})

	host.MustAddProcessor(&workflow.Func{
		PName:   ProcImprint,
		Inputs:  []string{"peaklists"},
		Outputs: []string{"results"},
		Fn: func(_ context.Context, in workflow.Ports) (workflow.Ports, error) {
			pls, ok := in["peaklists"].([]proteomics.PeakList)
			if !ok {
				return nil, fmt.Errorf("ispider: ProteinIdentification expects []proteomics.PeakList, got %T", in["peaklists"])
			}
			results := make([]imprint.Result, len(pls))
			for i, pl := range pls {
				results[i] = world.Engine.Search(pl)
			}
			return workflow.Ports{"results": results}, nil
		},
	})
	host.MustAddLink(workflow.Link{From: ProcPedro, FromPort: "peaklists", To: ProcImprint, ToPort: "peaklists"})

	host.MustAddProcessor(&workflow.Func{
		PName:   ProcGOA,
		Inputs:  []string{"proteins"},
		Outputs: []string{"terms"},
		Fn: func(_ context.Context, in workflow.Ports) (workflow.Ports, error) {
			m, ok := in["proteins"].(*evidence.Map)
			if !ok {
				return nil, fmt.Errorf("ispider: GOARetrieval expects *evidence.Map, got %T", in["proteins"])
			}
			counts, err := termCountsForItems(world, m.Items())
			if err != nil {
				return nil, err
			}
			return workflow.Ports{"terms": counts}, nil
		},
	})
	// GOARetrieval's "proteins" input is wired by the Figure 6 embedding
	// (the quality view's filter output feeds it).
	if err := host.BindOutput("terms", ProcGOA, "terms"); err != nil {
		return nil, err
	}
	return host, nil
}

// newHitsAdapter converts the Imprint results flowing on the host's data
// link into a quality data set, stashing the entries for the annotator.
func newHitsAdapter(holder *entriesHolder) workflow.Processor {
	return &workflow.Func{
		PName:   AdapterHits,
		Inputs:  []string{compiler.AdapterIn},
		Outputs: []string{compiler.AdapterOut},
		Fn: func(_ context.Context, in workflow.Ports) (workflow.Ports, error) {
			results, ok := in[compiler.AdapterIn].([]imprint.Result)
			if !ok {
				return nil, fmt.Errorf("ispider: adapter expects []imprint.Result, got %T", in[compiler.AdapterIn])
			}
			entries, items := Identifications(results)
			holder.set(entries)
			return workflow.Ports{compiler.AdapterOut: evidence.NewMap(items...)}, nil
		},
	}
}

// termCountsForItems accumulates GO-term occurrences over hit items: each
// identification contributes its protein's GO terms once, so a term's
// count is the number of identifications carrying it (accumulated "over
// the entire experimental sample", §6.3).
func termCountsForItems(world *World, items []evidence.Item) (map[string]int, error) {
	counts := map[string]int{}
	for _, item := range items {
		_, acc, _, err := ParseHitItem(item)
		if err != nil {
			return nil, err
		}
		for _, term := range world.GOA.TermsFor(acc) {
			counts[term]++
		}
	}
	return counts, nil
}

// Run enacts the embedded pipeline once: caches are cleared (cache
// annotations are valid for a single execution), the host workflow runs,
// and the accepted identifications plus the filtered GO-term counts are
// returned.
func (p *Pipeline) Run(ctx context.Context) (*RunOutput, error) {
	p.Repos.ClearCaches()
	out, err := p.Host.Run(ctx, nil)
	if err != nil {
		return nil, err
	}
	accepted, ok := out["accepted"].(*evidence.Map)
	if !ok {
		return nil, fmt.Errorf("ispider: host output 'accepted' is %T", out["accepted"])
	}
	counts, ok := out["terms"].(map[string]int)
	if !ok {
		return nil, fmt.Errorf("ispider: host output 'terms' is %T", out["terms"])
	}
	return &RunOutput{
		Entries:    p.holder.get(),
		Accepted:   accepted,
		TermCounts: counts,
	}, nil
}

// RunBaseline executes the original Figure 1 analysis without any quality
// processing: every ranked identification feeds the GOA lookup.
func RunBaseline(world *World) (*RunOutput, error) {
	pls, err := world.Pedro.PeakLists(world.ExperimentID)
	if err != nil {
		return nil, err
	}
	results := make([]imprint.Result, len(pls))
	for i, pl := range pls {
		results[i] = world.Engine.Search(pl)
	}
	entries, items := Identifications(results)
	counts, err := termCountsForItems(world, items)
	if err != nil {
		return nil, err
	}
	return &RunOutput{
		Entries:    entries,
		Accepted:   evidence.NewMap(items...),
		TermCounts: counts,
	}, nil
}
