// Package ispider implements the paper's running example end to end: the
// ISPIDER proteomics analysis workflow of Figure 1 (Pedro peak-list
// retrieval → Imprint protein identification → GOA functional
// annotation), the quality view of §5.1 embedded into it (Figure 6), and
// the Figure 7 experiment measuring the quality view's effect on the
// GO-term ranking.
//
// Because the original inputs (a PEDRo data file from the Aberdeen
// Molecular and Cell Biology group) are unavailable, the package builds a
// synthetic world with known ground truth: a reference protein database,
// per-spot samples of true proteins plus out-of-database contaminants,
// synthetic spectra with noise, and a synthetic GOA. Ground truth lets
// the ablation experiments report precision/recall, which the paper could
// not.
package ispider

import (
	"fmt"
	"math/rand"

	"qurator/internal/goa"
	"qurator/internal/imprint"
	"qurator/internal/pedro"
	"qurator/internal/proteomics"
)

// WorldParams sizes the synthetic world. The defaults mirror the paper's
// experiment scale: 10 protein spots producing roughly 500 GO-term
// occurrences through ranked identification lists.
type WorldParams struct {
	// Seed drives all randomness; fixed seeds give identical worlds.
	Seed int64
	// DBSize is the reference database size.
	DBSize int
	// SpotCount is the number of gel spots (the paper used 10).
	SpotCount int
	// ProteinsPerSpot is the number of true proteins per sample.
	ProteinsPerSpot int
	// ContaminantsPerSpot is the number of out-of-database contaminant
	// proteins whose peptides pollute each spectrum (biological
	// contamination, §1).
	ContaminantsPerSpot int
	// GOTermCount is the number of synthetic GO terms.
	GOTermCount int
	// MaxGOTermsPerProtein caps per-protein annotations.
	MaxGOTermsPerProtein int
	// Spectrum controls spectrum synthesis.
	Spectrum proteomics.SpectrumParams
	// Search configures the Imprint engine.
	Search imprint.Params
}

// DefaultWorldParams returns the paper-scale configuration.
func DefaultWorldParams() WorldParams {
	spectrum := proteomics.DefaultSpectrumParams()
	// Degrade the measurements relative to the ideal: the paper's premise
	// is that identifications are uncertain, false positives occur, and
	// "it is often the case that the correct identification is not ranked
	// as the top match" — so the default world is a noisy lab, not a
	// clean simulation.
	spectrum.PeptideDetectionProb = 0.5
	spectrum.NoisePeaks = 35
	spectrum.MassErrorPPM = 60
	search := imprint.DefaultParams()
	search.TolerancePPM = 250
	return WorldParams{
		Seed:                 2006,
		DBSize:               120,
		SpotCount:            10,
		ProteinsPerSpot:      2,
		ContaminantsPerSpot:  2,
		GOTermCount:          80,
		MaxGOTermsPerProtein: 8,
		Spectrum:             spectrum,
		Search:               search,
	}
}

// World is the assembled synthetic universe.
type World struct {
	Params       WorldParams
	ReferenceDB  []proteomics.Protein
	Pedro        *pedro.DB
	GOA          *goa.DB
	Engine       *imprint.Engine
	ExperimentID string
}

// BuildWorld constructs a world from parameters. Construction is
// deterministic in the seed.
func BuildWorld(params WorldParams) (*World, error) {
	if params.DBSize < params.ProteinsPerSpot {
		return nil, fmt.Errorf("ispider: database smaller than proteins per spot")
	}
	if params.SpotCount < 1 {
		return nil, fmt.Errorf("ispider: need at least one spot")
	}
	rng := rand.New(rand.NewSource(params.Seed))

	w := &World{Params: params, ExperimentID: "ISPIDER-EXP-1"}
	w.ReferenceDB = proteomics.RandomDatabase(params.DBSize, 200, 450, rng)

	accessions := make([]string, len(w.ReferenceDB))
	for i, p := range w.ReferenceDB {
		accessions[i] = p.Accession
	}
	w.GOA = goa.New()
	if err := goa.GenerateSynthetic(w.GOA, accessions, params.GOTermCount, params.MaxGOTermsPerProtein, rng); err != nil {
		return nil, err
	}

	exp := &pedro.Experiment{
		ID:          w.ExperimentID,
		Description: "synthetic qualitative-proteomics experiment (10-spot PMF)",
	}
	for s := 0; s < params.SpotCount; s++ {
		spotID := fmt.Sprintf("spot%02d", s+1)
		// True content: distinct reference proteins.
		perm := rng.Perm(params.DBSize)
		var sample []proteomics.Protein
		var truth []string
		for i := 0; i < params.ProteinsPerSpot; i++ {
			p := w.ReferenceDB[perm[i]]
			sample = append(sample, p)
			truth = append(truth, p.Accession)
		}
		// Contamination: proteins outside the reference database, so
		// their peptides are pure interference for the search.
		for i := 0; i < params.ContaminantsPerSpot; i++ {
			sample = append(sample, proteomics.RandomProtein(
				fmt.Sprintf("CONT-%s-%d", spotID, i), 250+rng.Intn(200), rng))
		}
		// Per-spot quality variability: experiments "performed at
		// different times, by labs with different skill levels and
		// experience ... are difficult to compare" (§1.1). Detection
		// efficiency and noise vary around the configured baseline, so
		// some spots are much harder than others.
		spectrum := params.Spectrum
		spectrum.PeptideDetectionProb *= 0.55 + 0.9*rng.Float64()
		if spectrum.PeptideDetectionProb > 1 {
			spectrum.PeptideDetectionProb = 1
		}
		spectrum.NoisePeaks = int(float64(spectrum.NoisePeaks) * (0.5 + rng.Float64()))
		pl := proteomics.SynthesizeSpectrum(spotID, sample, spectrum, rng)
		exp.Spots = append(exp.Spots, pedro.Spot{ID: spotID, PeakList: pl, TrueProteins: truth})
	}
	w.Pedro = pedro.New()
	if err := w.Pedro.PutExperiment(exp); err != nil {
		return nil, err
	}

	eng, err := imprint.NewEngine(w.ReferenceDB, params.Search)
	if err != nil {
		return nil, err
	}
	w.Engine = eng
	return w, nil
}

// Truth returns the ground-truth accession set of a spot.
func (w *World) Truth(spotID string) map[string]bool {
	spot, ok := w.Pedro.Spot(w.ExperimentID, spotID)
	if !ok {
		return nil
	}
	out := make(map[string]bool, len(spot.TrueProteins))
	for _, acc := range spot.TrueProteins {
		out[acc] = true
	}
	return out
}
