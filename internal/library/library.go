// Package library implements the paper's future-work item (iv): "reuse of
// quality components [and] views defined by peers within a scientific
// community". It is a registry of published quality views with authorship
// and quality-dimension metadata, searchable by the evidence a prospective
// user actually has — operationalising the paper's applicability rule
// ("a view is applicable to any data set for which evidence values are
// available for the required evidence types mentioned in the input", §5.1)
// — and serialisable to RDF so libraries can be exchanged like any other
// Qurator metadata.
package library

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"qurator/internal/ontology"
	"qurator/internal/qvlang"
	"qurator/internal/rdf"
)

// Entry is one published quality view.
type Entry struct {
	// Name is the library-unique identifier.
	Name string
	// Author identifies the publishing peer.
	Author string
	// Description is free text.
	Description string
	// Dimensions classify the view under IQ quality properties
	// (q:Accuracy, q:Credibility, ...) to foster reuse (paper §3).
	Dimensions []rdf.Term
	// ViewXML is the view source.
	ViewXML string
	// Published is the publication time (UTC).
	Published time.Time

	// Derived on publish:

	// RequiredEvidence are the evidence types a consumer must supply —
	// QA inputs not produced by the view's own annotators.
	RequiredEvidence []rdf.Term
	// ProducedEvidence are the evidence types the view's annotators
	// compute.
	ProducedEvidence []rdf.Term
	// OperatorClasses are the QA/annotator classes that must be bound at
	// the consumer's site.
	OperatorClasses []rdf.Term
}

// Library is a concurrent registry of published views, validated against
// one IQ model.
type Library struct {
	mu      sync.RWMutex
	model   *ontology.Ontology
	entries map[string]*Entry
}

// New returns an empty library over the given IQ model.
func New(model *ontology.Ontology) *Library {
	return &Library{model: model, entries: make(map[string]*Entry)}
}

// Publish validates the entry's view against the IQ model, derives its
// evidence requirements, and stores it. Publishing under an existing name
// replaces the previous version.
func (l *Library) Publish(e Entry) (*Entry, error) {
	if e.Name == "" {
		return nil, fmt.Errorf("library: entry without name")
	}
	if e.ViewXML == "" {
		return nil, fmt.Errorf("library: entry %q without view source", e.Name)
	}
	for _, d := range e.Dimensions {
		if !l.model.IsInstanceOf(d, ontology.QualityProperty) {
			return nil, fmt.Errorf("library: %v is not a quality dimension", d)
		}
	}
	view, err := qvlang.Parse([]byte(e.ViewXML))
	if err != nil {
		return nil, fmt.Errorf("library: entry %q: %w", e.Name, err)
	}
	resolved, err := qvlang.Resolve(view, l.model)
	if err != nil {
		return nil, fmt.Errorf("library: entry %q: %w", e.Name, err)
	}

	produced := map[rdf.Term]bool{}
	var classes []rdf.Term
	for _, ann := range resolved.Annotators {
		classes = append(classes, ann.Type)
		for _, p := range ann.Provides {
			produced[p.Evidence] = true
		}
	}
	required := map[rdf.Term]bool{}
	for _, as := range resolved.Assertions {
		classes = append(classes, as.Type)
		for _, in := range as.Inputs {
			if !produced[in.Evidence] {
				required[in.Evidence] = true
			}
		}
	}
	e.RequiredEvidence = sortedTerms(required)
	e.ProducedEvidence = sortedTerms(produced)
	e.OperatorClasses = dedupTerms(classes)
	if e.Published.IsZero() {
		e.Published = time.Now().UTC()
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	cp := e
	l.entries[e.Name] = &cp
	return &cp, nil
}

// Get retrieves a published entry by name.
func (l *Library) Get(name string) (*Entry, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	e, ok := l.entries[name]
	if !ok {
		return nil, false
	}
	cp := *e
	return &cp, true
}

// List returns all entries sorted by name.
func (l *Library) List() []*Entry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]*Entry, 0, len(l.entries))
	for _, e := range l.entries {
		cp := *e
		out = append(out, &cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Remove deletes an entry, reporting whether it existed.
func (l *Library) Remove(name string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.entries[name]
	delete(l.entries, name)
	return ok
}

// FindApplicable returns the views runnable given the evidence types the
// caller can supply: every required evidence type must be available
// (subsumption counts — offering a subclass of a required type
// satisfies it).
func (l *Library) FindApplicable(available []rdf.Term) []*Entry {
	avail := make(map[rdf.Term]bool, len(available))
	for _, a := range available {
		avail[a] = true
	}
	satisfied := func(req rdf.Term) bool {
		if avail[req] {
			return true
		}
		for a := range avail {
			if l.model.IsSubClassOf(a, req) {
				return true
			}
		}
		return false
	}
	var out []*Entry
	for _, e := range l.List() {
		ok := true
		for _, req := range e.RequiredEvidence {
			if !satisfied(req) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, e)
		}
	}
	return out
}

// FindByDimension returns the views classified under the given quality
// dimension.
func (l *Library) FindByDimension(dim rdf.Term) []*Entry {
	var out []*Entry
	for _, e := range l.List() {
		for _, d := range e.Dimensions {
			if d == dim {
				out = append(out, e)
				break
			}
		}
	}
	return out
}

// RDF vocabulary for library exchange.
var (
	sharedViewClass = ontology.Q("SharedQualityView")
	propAuthor      = ontology.Q("author")
	propDescription = ontology.Q("description")
	propViewSource  = ontology.Q("viewSource")
	propPublished   = ontology.Q("publishedAt")
	propDimension   = ontology.Q("addressesDimension")
)

// ToGraph serialises the library as RDF for exchange between peers.
func (l *Library) ToGraph() *rdf.Graph {
	g := rdf.NewGraph()
	typeIRI := rdf.IRI(rdf.RDFType)
	for _, e := range l.List() {
		node := ontology.Q("view/" + e.Name)
		g.MustAdd(rdf.T(node, typeIRI, sharedViewClass))
		g.MustAdd(rdf.T(node, rdf.IRI(rdf.RDFSLabel), rdf.Literal(e.Name)))
		g.MustAdd(rdf.T(node, propAuthor, rdf.Literal(e.Author)))
		if e.Description != "" {
			g.MustAdd(rdf.T(node, propDescription, rdf.Literal(e.Description)))
		}
		g.MustAdd(rdf.T(node, propViewSource, rdf.Literal(e.ViewXML)))
		g.MustAdd(rdf.T(node, propPublished, rdf.Literal(e.Published.Format(time.RFC3339))))
		for _, d := range e.Dimensions {
			g.MustAdd(rdf.T(node, propDimension, d))
		}
	}
	return g
}

// FromGraph loads a library exchanged as RDF, re-validating every view
// against the local IQ model (a peer's view may reference classes the
// local model lacks; those entries are rejected with an error naming the
// view).
func FromGraph(g *rdf.Graph, model *ontology.Ontology) (*Library, error) {
	l := New(model)
	typeIRI := rdf.IRI(rdf.RDFType)
	for _, t := range g.Match(rdf.Term{}, typeIRI, sharedViewClass) {
		node := t.Subject
		name := g.FirstObject(node, rdf.IRI(rdf.RDFSLabel)).Value()
		src := g.FirstObject(node, propViewSource).Value()
		e := Entry{
			Name:        name,
			Author:      g.FirstObject(node, propAuthor).Value(),
			Description: g.FirstObject(node, propDescription).Value(),
			ViewXML:     src,
		}
		if ts := g.FirstObject(node, propPublished).Value(); ts != "" {
			if parsed, err := time.Parse(time.RFC3339, ts); err == nil {
				e.Published = parsed
			}
		}
		e.Dimensions = g.Objects(node, propDimension)
		if _, err := l.Publish(e); err != nil {
			return nil, fmt.Errorf("library: importing %q: %w", name, err)
		}
	}
	return l, nil
}

func sortedTerms(set map[rdf.Term]bool) []rdf.Term {
	out := make([]rdf.Term, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return rdf.CompareTerms(out[i], out[j]) < 0 })
	return out
}

func dedupTerms(ts []rdf.Term) []rdf.Term {
	seen := map[rdf.Term]bool{}
	var out []rdf.Term
	for _, t := range ts {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return rdf.CompareTerms(out[i], out[j]) < 0 })
	return out
}
