package library

import (
	"strings"
	"testing"
	"time"

	"qurator/internal/ontology"
	"qurator/internal/qvlang"
	"qurator/internal/rdf"
)

const credibilityOnlyView = `<QualityView name="credibility-check">
  <QualityAssertion servicename="CurationCredibility" servicetype="q:CurationCredibility"
                    tagsemtype="q:CredibilityClassification" tagname="CredClass" tagsyntype="q:class">
    <variables repositoryRef="default">
      <var variablename="code" evidence="q:EvidenceCode"/>
    </variables>
  </QualityAssertion>
  <action name="keep"><filter><condition>CredClass in q:credible</condition></filter></action>
</QualityView>`

func newLib(t *testing.T) *Library {
	t.Helper()
	return New(ontology.NewIQModel())
}

func TestPublishDerivesRequirements(t *testing.T) {
	l := newLib(t)
	e, err := l.Publish(Entry{
		Name:       "protein-id-quality",
		Author:     "aberdeen-mcb",
		Dimensions: []rdf.Term{ontology.Accuracy},
		ViewXML:    qvlang.PaperViewXML,
	})
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	// The paper view's annotator produces all QA inputs, so nothing is
	// required from the consumer.
	if len(e.RequiredEvidence) != 0 {
		t.Errorf("RequiredEvidence = %v, want none (annotator covers all inputs)", e.RequiredEvidence)
	}
	if len(e.ProducedEvidence) != 4 {
		t.Errorf("ProducedEvidence = %v", e.ProducedEvidence)
	}
	if len(e.OperatorClasses) != 4 { // annotator + 3 QAs
		t.Errorf("OperatorClasses = %v", e.OperatorClasses)
	}
	if e.Published.IsZero() {
		t.Error("Published not stamped")
	}

	// A view with no annotator requires its QA inputs from the consumer.
	e2, err := l.Publish(Entry{
		Name:       "credibility-check",
		Author:     "manchester",
		Dimensions: []rdf.Term{ontology.Credibility},
		ViewXML:    credibilityOnlyView,
	})
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if len(e2.RequiredEvidence) != 1 || e2.RequiredEvidence[0] != ontology.EvidenceCode {
		t.Errorf("RequiredEvidence = %v, want [EvidenceCode]", e2.RequiredEvidence)
	}
}

func TestPublishValidation(t *testing.T) {
	l := newLib(t)
	cases := []Entry{
		{},
		{Name: "x"},
		{Name: "x", ViewXML: "not xml"},
		{Name: "x", ViewXML: `<QualityView><action name="a"/></QualityView>`},                // invalid view
		{Name: "x", ViewXML: qvlang.PaperViewXML, Dimensions: []rdf.Term{ontology.HitRatio}}, // not a dimension
	}
	for i, e := range cases {
		if _, err := l.Publish(e); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestGetListRemove(t *testing.T) {
	l := newLib(t)
	l.Publish(Entry{Name: "b", Author: "x", ViewXML: qvlang.PaperViewXML})
	l.Publish(Entry{Name: "a", Author: "y", ViewXML: credibilityOnlyView})
	if got := l.List(); len(got) != 2 || got[0].Name != "a" {
		t.Errorf("List = %v", got)
	}
	e, ok := l.Get("b")
	if !ok || e.Author != "x" {
		t.Errorf("Get = %+v, %v", e, ok)
	}
	// Returned entries are copies.
	e.Author = "hacked"
	again, _ := l.Get("b")
	if again.Author != "x" {
		t.Error("Get leaked internal state")
	}
	if !l.Remove("a") || l.Remove("a") {
		t.Error("Remove semantics wrong")
	}
	if _, ok := l.Get("a"); ok {
		t.Error("removed entry still present")
	}
}

func TestFindApplicable(t *testing.T) {
	l := newLib(t)
	l.Publish(Entry{Name: "self-contained", ViewXML: qvlang.PaperViewXML})
	l.Publish(Entry{Name: "needs-codes", ViewXML: credibilityOnlyView})

	// With no evidence at all, only the self-contained view applies.
	got := l.FindApplicable(nil)
	if len(got) != 1 || got[0].Name != "self-contained" {
		t.Errorf("FindApplicable(nil) = %v", names(got))
	}
	// Offering evidence codes unlocks the credibility view.
	got = l.FindApplicable([]rdf.Term{ontology.EvidenceCode})
	if len(got) != 2 {
		t.Errorf("FindApplicable(EvidenceCode) = %v", names(got))
	}
	// Subsumption: offering a subclass of the required evidence counts.
	model := ontology.NewIQModel()
	sub := ontology.Q("GOEvidenceCode")
	model.MustDefineClass(sub, ontology.EvidenceCode)
	l2 := New(model)
	l2.Publish(Entry{Name: "needs-codes", ViewXML: credibilityOnlyView})
	got = l2.FindApplicable([]rdf.Term{sub})
	if len(got) != 1 {
		t.Errorf("subclass evidence should satisfy the requirement: %v", names(got))
	}
}

func TestFindByDimension(t *testing.T) {
	l := newLib(t)
	l.Publish(Entry{Name: "acc", ViewXML: qvlang.PaperViewXML, Dimensions: []rdf.Term{ontology.Accuracy}})
	l.Publish(Entry{Name: "cred", ViewXML: credibilityOnlyView, Dimensions: []rdf.Term{ontology.Credibility}})
	if got := l.FindByDimension(ontology.Accuracy); len(got) != 1 || got[0].Name != "acc" {
		t.Errorf("FindByDimension(Accuracy) = %v", names(got))
	}
	if got := l.FindByDimension(ontology.Currency); len(got) != 0 {
		t.Errorf("FindByDimension(Currency) = %v", names(got))
	}
}

func TestGraphRoundTrip(t *testing.T) {
	l := newLib(t)
	published := time.Date(2006, 9, 12, 0, 0, 0, 0, time.UTC) // VLDB'06 opening day
	l.Publish(Entry{
		Name:        "protein-id-quality",
		Author:      "aberdeen-mcb",
		Description: "filters PMF identifications by HR/MC quality",
		Dimensions:  []rdf.Term{ontology.Accuracy},
		ViewXML:     qvlang.PaperViewXML,
		Published:   published,
	})
	g := l.ToGraph()
	back, err := FromGraph(g, ontology.NewIQModel())
	if err != nil {
		t.Fatalf("FromGraph: %v", err)
	}
	e, ok := back.Get("protein-id-quality")
	if !ok {
		t.Fatal("entry lost in round trip")
	}
	if e.Author != "aberdeen-mcb" || e.Description == "" {
		t.Errorf("metadata lost: %+v", e)
	}
	if !e.Published.Equal(published) {
		t.Errorf("published = %v, want %v", e.Published, published)
	}
	if len(e.Dimensions) != 1 || e.Dimensions[0] != ontology.Accuracy {
		t.Errorf("dimensions = %v", e.Dimensions)
	}
	// The re-imported view still resolves and derives the same
	// requirements.
	if len(e.ProducedEvidence) != 4 {
		t.Errorf("derived requirements lost: %+v", e)
	}
	if !strings.Contains(e.ViewXML, "QualityView") {
		t.Error("view source lost")
	}
}

func TestFromGraphRejectsUnresolvableViews(t *testing.T) {
	// A peer's view using classes the local model lacks must be rejected
	// with a named error, not silently dropped.
	foreign := `<QualityView name="alien">
	  <QualityAssertion servicename="s" servicetype="q:AlienQA" tagname="t">
	    <variables><var evidence="q:HitRatio"/></variables>
	  </QualityAssertion>
	  <action name="a"><filter><condition>t &gt; 1</condition></filter></action>
	</QualityView>`
	// Build the graph by hand with a model that knows AlienQA...
	richModel := ontology.NewIQModel()
	richModel.MustDefineClass(ontology.Q("AlienQA"), ontology.QualityAssertion)
	rich := New(richModel)
	if _, err := rich.Publish(Entry{Name: "alien", ViewXML: foreign}); err != nil {
		t.Fatalf("publish under rich model: %v", err)
	}
	// ...then import under the plain model.
	if _, err := FromGraph(rich.ToGraph(), ontology.NewIQModel()); err == nil {
		t.Error("import of unresolvable view should fail")
	} else if !strings.Contains(err.Error(), "alien") {
		t.Errorf("error should name the view: %v", err)
	}
}

func names(es []*Entry) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.Name
	}
	return out
}
