// Package lsid implements Life Science Identifiers (LSIDs), the OMG URN
// scheme (urn:lsid:authority:namespace:object[:revision]) that Qurator uses
// to wrap native data identifiers — e.g. Uniprot accession numbers — as
// URIs so they can appear as RDF resources in annotation graphs (paper §3).
package lsid

import (
	"fmt"
	"strings"
)

// Scheme is the URN prefix shared by all LSIDs.
const Scheme = "urn:lsid:"

// LSID is a parsed Life Science Identifier.
type LSID struct {
	// Authority is the DNS-style naming authority, e.g. "uniprot.org".
	Authority string
	// Namespace scopes the object within the authority, e.g. "uniprot".
	Namespace string
	// Object is the authority-assigned identifier, e.g. "P30089".
	Object string
	// Revision optionally versions the object; empty if absent.
	Revision string
}

// New constructs an LSID, validating each component.
func New(authority, namespace, object string) (LSID, error) {
	l := LSID{Authority: authority, Namespace: namespace, Object: object}
	if err := l.Validate(); err != nil {
		return LSID{}, err
	}
	return l, nil
}

// MustNew is New that panics on invalid input; for statically-known LSIDs.
func MustNew(authority, namespace, object string) LSID {
	l, err := New(authority, namespace, object)
	if err != nil {
		panic(err)
	}
	return l
}

// Parse parses an LSID URN string.
func Parse(s string) (LSID, error) {
	lower := strings.ToLower(s)
	if !strings.HasPrefix(lower, Scheme) {
		return LSID{}, fmt.Errorf("lsid: %q does not start with %q", s, Scheme)
	}
	rest := s[len(Scheme):]
	parts := strings.Split(rest, ":")
	if len(parts) < 3 || len(parts) > 4 {
		return LSID{}, fmt.Errorf("lsid: %q must have 3 or 4 colon-separated components after the scheme", s)
	}
	l := LSID{Authority: parts[0], Namespace: parts[1], Object: parts[2]}
	if len(parts) == 4 {
		l.Revision = parts[3]
	}
	if err := l.Validate(); err != nil {
		return LSID{}, err
	}
	return l, nil
}

// IsLSID reports whether s parses as a valid LSID.
func IsLSID(s string) bool {
	_, err := Parse(s)
	return err == nil
}

// Validate checks that all mandatory components are present and contain no
// reserved characters.
func (l LSID) Validate() error {
	check := func(name, v string, required bool) error {
		if v == "" {
			if required {
				return fmt.Errorf("lsid: empty %s", name)
			}
			return nil
		}
		if strings.ContainsAny(v, ": \t\n") {
			return fmt.Errorf("lsid: %s %q contains reserved characters", name, v)
		}
		return nil
	}
	if err := check("authority", l.Authority, true); err != nil {
		return err
	}
	if err := check("namespace", l.Namespace, true); err != nil {
		return err
	}
	if err := check("object", l.Object, true); err != nil {
		return err
	}
	return check("revision", l.Revision, false)
}

// String renders the LSID as a URN.
func (l LSID) String() string {
	s := Scheme + l.Authority + ":" + l.Namespace + ":" + l.Object
	if l.Revision != "" {
		s += ":" + l.Revision
	}
	return s
}

// WithRevision returns a copy of l carrying the given revision.
func (l LSID) WithRevision(rev string) LSID {
	l.Revision = rev
	return l
}

// Wrap converts a native identifier into an LSID URN under the given
// authority and namespace — the paper's "LSID-wrapper" for accession
// numbers (§3). It is the inverse of Unwrap for valid native IDs.
func Wrap(authority, namespace, nativeID string) (string, error) {
	l, err := New(authority, namespace, nativeID)
	if err != nil {
		return "", err
	}
	return l.String(), nil
}

// MustWrap is Wrap that panics on invalid input.
func MustWrap(authority, namespace, nativeID string) string {
	s, err := Wrap(authority, namespace, nativeID)
	if err != nil {
		panic(err)
	}
	return s
}

// Unwrap extracts the native identifier (the object component) from an
// LSID URN.
func Unwrap(urn string) (string, error) {
	l, err := Parse(urn)
	if err != nil {
		return "", err
	}
	return l.Object, nil
}
