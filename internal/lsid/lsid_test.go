package lsid

import (
	"testing"
	"testing/quick"
)

func TestParseValid(t *testing.T) {
	cases := []struct {
		in   string
		want LSID
	}{
		{"urn:lsid:uniprot.org:uniprot:P30089", LSID{"uniprot.org", "uniprot", "P30089", ""}},
		{"urn:lsid:ebi.ac.uk:goa:GO_0005515", LSID{"ebi.ac.uk", "goa", "GO_0005515", ""}},
		{"urn:lsid:pedro.man.ac.uk:peaklist:spot42:v2", LSID{"pedro.man.ac.uk", "peaklist", "spot42", "v2"}},
		{"URN:LSID:x.org:ns:obj", LSID{"x.org", "ns", "obj", ""}}, // case-insensitive scheme
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseInvalid(t *testing.T) {
	bad := []string{
		"",
		"urn:lsid:",
		"urn:lsid:auth",
		"urn:lsid:auth:ns",
		"urn:lsid:auth:ns:obj:rev:extra",
		"urn:lsid::ns:obj",
		"urn:lsid:auth::obj",
		"urn:lsid:auth:ns:",
		"http://example.org/P30089",
		"lsid:auth:ns:obj",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
		if IsLSID(s) {
			t.Errorf("IsLSID(%q) should be false", s)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	ids := []LSID{
		{"uniprot.org", "uniprot", "P30089", ""},
		{"a.b", "c", "d", "r1"},
	}
	for _, l := range ids {
		back, err := Parse(l.String())
		if err != nil {
			t.Errorf("Parse(%q): %v", l.String(), err)
			continue
		}
		if back != l {
			t.Errorf("round trip %v -> %v", l, back)
		}
	}
}

func TestWrapUnwrap(t *testing.T) {
	urn, err := Wrap("uniprot.org", "uniprot", "P30089")
	if err != nil {
		t.Fatal(err)
	}
	if urn != "urn:lsid:uniprot.org:uniprot:P30089" {
		t.Errorf("Wrap = %q", urn)
	}
	native, err := Unwrap(urn)
	if err != nil {
		t.Fatal(err)
	}
	if native != "P30089" {
		t.Errorf("Unwrap = %q", native)
	}
	if _, err := Wrap("", "ns", "x"); err == nil {
		t.Error("Wrap with empty authority should fail")
	}
	if _, err := Unwrap("not-an-lsid"); err == nil {
		t.Error("Unwrap of non-LSID should fail")
	}
}

func TestWithRevision(t *testing.T) {
	l := MustNew("a.org", "ns", "obj")
	r := l.WithRevision("v3")
	if r.Revision != "v3" || l.Revision != "" {
		t.Errorf("WithRevision mutated receiver or failed: %+v / %+v", l, r)
	}
	if r.String() != "urn:lsid:a.org:ns:obj:v3" {
		t.Errorf("String = %q", r.String())
	}
}

func TestValidateReservedCharacters(t *testing.T) {
	bad := []LSID{
		{"a b", "ns", "obj", ""},
		{"a.org", "n:s", "obj", ""},
		{"a.org", "ns", "ob\tj", ""},
		{"a.org", "ns", "obj", "r v"},
	}
	for _, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", l)
		}
	}
}

// Property: Wrap followed by Unwrap is the identity on identifiers free of
// reserved characters.
func TestWrapUnwrapProperty(t *testing.T) {
	f := func(raw string) bool {
		id := ""
		for _, r := range raw {
			if r > ' ' && r != ':' && r < 127 {
				id += string(r)
			}
		}
		if id == "" {
			return true
		}
		urn, err := Wrap("test.org", "ns", id)
		if err != nil {
			return false
		}
		back, err := Unwrap(urn)
		return err == nil && back == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
