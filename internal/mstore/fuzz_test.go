package mstore

import (
	"testing"

	"qurator/internal/rdf"
)

// FuzzWALDecode throws arbitrary bytes at the WAL replay path. The
// contract: truncated or corrupted input must surface as a torn tail or
// a decode error — never a panic — and any ops delivered must come from
// intact, committed batches.
func FuzzWALDecode(f *testing.F) {
	// Seed with a well-formed WAL image…
	var img []byte
	img = appendTripleOp(img, opAdd, rdf.Triple{
		Subject:   rdf.IRI("http://example.org/s"),
		Predicate: rdf.IRI("http://example.org/p"),
		Object:    rdf.Literal("v"),
	})
	img = appendClearOp(img)
	img = appendTripleOp(img, opDel, rdf.Triple{
		Subject:   rdf.IRI("http://example.org/s"),
		Predicate: rdf.IRI("http://example.org/p"),
		Object:    rdf.Integer(42),
	})
	img = appendCommitOp(img, 1, 3)
	f.Add(img)
	// …its truncations at interesting boundaries…
	for _, cut := range []int{0, 1, 7, 8, 9, len(img) - 1} {
		if cut <= len(img) {
			f.Add(img[:cut])
		}
	}
	// …and a few hand-rolled malformations.
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})                    // zero-length record
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4})        // absurd length
	f.Add(frameRecord(nil, []byte{0x7f}))                    // unknown op, valid CRC
	f.Add(frameRecord(nil, []byte{opCommit, 1, 2}))          // short commit
	f.Add(frameRecord(nil, []byte{opClear, 0xaa}))           // clear with trailing byte
	f.Add(frameRecord(nil, []byte(string(opAdd)+"not rdf"))) // unparsable triple
	f.Add(frameRecord(frameRecord(nil, []byte{opAdd, '<'}),  // bad triple then garbage
		[]byte{opCommit}))

	f.Fuzz(func(t *testing.T, data []byte) {
		applied, _, err := replayWAL(data, func(ops []walOp) {
			for _, op := range ops {
				switch op.op {
				case opAdd, opDel, opClear:
				default:
					t.Fatalf("replay delivered op 0x%02x", op.op)
				}
			}
		})
		if err != nil && applied != 0 {
			// Decode errors abort replay before delivering the batch
			// they belong to; prior committed batches may have applied.
			// Either way applied must count only delivered ops — the
			// callback above already validated them.
		}
	})
}

// FuzzParseRecordedTriple confirms the triple payload round-trips: any
// triple the store writes must decode back to an identical value.
func FuzzTripleRoundTrip(f *testing.F) {
	f.Add("http://example.org/s", "http://example.org/p", "plain value")
	f.Add("http://a/b#c", "http://a/p", "line\nbreak\tand \"quotes\"")
	f.Add("http://x", "http://y", "ünïcødé ≠ ascii")
	f.Fuzz(func(t *testing.T, s, p, o string) {
		tr := rdf.Triple{Subject: rdf.IRI(s), Predicate: rdf.IRI(p), Object: rdf.Literal(o)}
		if tr.Validate() != nil {
			t.Skip()
		}
		rec := appendTripleOp(nil, opAdd, tr)
		sc := recordScanner{data: rec}
		payload, err := sc.next()
		if err != nil || payload == nil {
			t.Fatalf("scan: %v", err)
		}
		op, err := decodeOp(payload)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if op.triple.String() != tr.String() {
			t.Fatalf("round trip changed triple:\n in  %s\n out %s", tr, op.triple)
		}
	})
}
