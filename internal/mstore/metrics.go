package mstore

import "qurator/internal/telemetry"

// Durability metrics, labelled by store name so quratord's annotation and
// provenance stores show up as distinct series on /metrics.
var (
	// fsync latencies start well under a millisecond on local disks, so
	// the buckets reach below the default 1ms floor.
	syncBuckets = []float64{
		0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025,
		0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1,
	}

	mWALAppend = telemetry.Default.HistogramVec(
		"qurator_mstore_wal_append_seconds",
		"Time to encode and append one committed batch to the WAL.",
		syncBuckets, "store")
	mFsync = telemetry.Default.HistogramVec(
		"qurator_mstore_fsync_seconds",
		"WAL fsync latency (per batch under -fsync always, per tick under interval).",
		syncBuckets, "store")
	mBatches = telemetry.Default.CounterVec(
		"qurator_mstore_wal_batches_total",
		"Batches committed to the WAL.", "store")
	mWALBytes = telemetry.Default.GaugeVec(
		"qurator_mstore_wal_bytes",
		"Bytes in the active WAL (resets to 0 on flush).", "store")
	mSegments = telemetry.Default.GaugeVec(
		"qurator_mstore_segments",
		"Live segment files.", "store")
	mSegmentBytes = telemetry.Default.GaugeVec(
		"qurator_mstore_segment_bytes",
		"Total bytes across live segment files.", "store")
	mFlushes = telemetry.Default.CounterVec(
		"qurator_mstore_flushes_total",
		"Memtable flushes that produced a segment.", "store")
	mCompactions = telemetry.Default.CounterVec(
		"qurator_mstore_compactions_total",
		"Completed segment compactions.", "store")
	mRecovery = telemetry.Default.GaugeVec(
		"qurator_mstore_recovery_seconds",
		"Wall-clock time Open spent rebuilding the graph from segments + WAL.", "store")
	mRecoveredOps = telemetry.Default.GaugeVec(
		"qurator_mstore_recovered_wal_ops",
		"Committed WAL ops replayed by the last Open.", "store")
)

// storeMetrics binds the per-store label once at Open.
type storeMetrics struct {
	walAppend   *telemetry.Histogram
	fsync       *telemetry.Histogram
	batches     *telemetry.Counter
	walBytes    *telemetry.Gauge
	segments    *telemetry.Gauge
	segBytes    *telemetry.Gauge
	flushes     *telemetry.Counter
	compactions *telemetry.Counter
	recovery    *telemetry.Gauge
	recovered   *telemetry.Gauge
}

func metricsFor(name string) storeMetrics {
	return storeMetrics{
		walAppend:   mWALAppend.With(name),
		fsync:       mFsync.With(name),
		batches:     mBatches.With(name),
		walBytes:    mWALBytes.With(name),
		segments:    mSegments.With(name),
		segBytes:    mSegmentBytes.With(name),
		flushes:     mFlushes.With(name),
		compactions: mCompactions.With(name),
		recovery:    mRecovery.With(name),
		recovered:   mRecoveredOps.With(name),
	}
}
