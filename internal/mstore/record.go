// Package mstore is the durable metadata plane: a write-ahead log feeding
// immutable sorted segment files, with the copy-on-write rdf.Graph as the
// lock-free in-memory read path. A Store survives process death — on Open
// it rebuilds the graph by applying segments oldest-first and replaying
// the WAL's committed batches — while reads keep the PR-5 snapshot
// semantics: Snapshot() is O(1) and never blocks writers.
//
// On-disk layout (one directory per store):
//
//	NNNNNNNN.seg   immutable sorted segment (flush or compaction output)
//	NNNNNNNN.wal   append-only write-ahead log (highest seq is active)
//	*.tmp          in-flight writes, discarded on open
//
// Sequence numbers order recovery: files apply in ascending seq, segment
// before WAL at equal seq. Replaying a WAL whose contents were already
// flushed to a same-seq segment is harmless — batches are sequences of
// set-membership writes, so re-applying them in order is idempotent.
//
// WAL record framing (little-endian):
//
//	u32 payloadLen | u32 crc32c(payload) | payload
//
// A payload is one op: opAdd/opDel carry an N-Triples statement, opClear
// is empty, and opCommit carries the batch sequence number plus the op
// count it commits. Ops buffer during replay and apply only when their
// commit marker arrives intact — a torn tail (short record, zero length,
// or CRC mismatch) ends replay cleanly at the last committed batch.
package mstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"qurator/internal/rdf"
)

// WAL op kinds.
const (
	opAdd    byte = 1
	opDel    byte = 2
	opCommit byte = 3
	opClear  byte = 4
)

// maxRecordLen bounds a single record's payload; anything larger in a
// length header is a torn or garbage tail, not a real record (triples are
// parsed from N-Triples lines capped far below this).
const maxRecordLen = 8 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameRecord appends one length-prefixed, CRC-checksummed record to dst.
func frameRecord(dst, payload []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// errTornTail marks the clean end of a WAL: the bytes after the last
// intact record are a partial write from a crash, not corruption.
var errTornTail = fmt.Errorf("mstore: torn record tail")

// recordScanner iterates framed records over an in-memory WAL image.
type recordScanner struct {
	data []byte
	off  int
}

// next returns the next record payload. It returns (nil, nil) at a clean
// end of input and errTornTail when the remaining bytes are a partial or
// checksum-failing record.
func (r *recordScanner) next() ([]byte, error) {
	if r.off == len(r.data) {
		return nil, nil
	}
	if len(r.data)-r.off < 8 {
		return nil, errTornTail
	}
	n := binary.LittleEndian.Uint32(r.data[r.off : r.off+4])
	sum := binary.LittleEndian.Uint32(r.data[r.off+4 : r.off+8])
	if n == 0 || n > maxRecordLen {
		return nil, errTornTail
	}
	if len(r.data)-r.off-8 < int(n) {
		return nil, errTornTail
	}
	payload := r.data[r.off+8 : r.off+8+int(n)]
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, errTornTail
	}
	r.off += 8 + int(n)
	return payload, nil
}

// walOp is one decoded WAL operation.
type walOp struct {
	op     byte
	triple rdf.Triple // opAdd, opDel
	batch  uint64     // opCommit
	count  uint32     // opCommit
}

// appendAddOp / appendDelOp / appendClearOp / appendCommitOp encode ops
// into framed records.
func appendTripleOp(dst []byte, op byte, t rdf.Triple) []byte {
	line := t.String()
	payload := make([]byte, 0, 1+len(line))
	payload = append(payload, op)
	payload = append(payload, line...)
	return frameRecord(dst, payload)
}

func appendClearOp(dst []byte) []byte {
	return frameRecord(dst, []byte{opClear})
}

func appendCommitOp(dst []byte, batch uint64, count uint32) []byte {
	var payload [13]byte
	payload[0] = opCommit
	binary.LittleEndian.PutUint64(payload[1:9], batch)
	binary.LittleEndian.PutUint32(payload[9:13], count)
	return frameRecord(dst, payload[:])
}

// decodeOp parses one CRC-verified record payload. Malformed payloads
// return an error (CRC-valid garbage means real corruption, not a torn
// write) and never panic.
func decodeOp(payload []byte) (walOp, error) {
	if len(payload) == 0 {
		return walOp{}, fmt.Errorf("mstore: empty record payload")
	}
	switch payload[0] {
	case opAdd, opDel:
		t, err := rdf.ParseTriple(string(payload[1:]))
		if err != nil {
			return walOp{}, fmt.Errorf("mstore: bad triple record: %w", err)
		}
		return walOp{op: payload[0], triple: t}, nil
	case opClear:
		if len(payload) != 1 {
			return walOp{}, fmt.Errorf("mstore: clear record has %d trailing bytes", len(payload)-1)
		}
		return walOp{op: opClear}, nil
	case opCommit:
		if len(payload) != 13 {
			return walOp{}, fmt.Errorf("mstore: commit record is %d bytes, want 13", len(payload))
		}
		return walOp{
			op:    opCommit,
			batch: binary.LittleEndian.Uint64(payload[1:9]),
			count: binary.LittleEndian.Uint32(payload[9:13]),
		}, nil
	default:
		return walOp{}, fmt.Errorf("mstore: unknown record op 0x%02x", payload[0])
	}
}

// replayWAL scans a WAL image and delivers each committed batch, in
// order, to apply. Ops after the last commit marker — or after the first
// torn record — are discarded, matching the write path's contract that a
// batch exists only once its commit record is durable. The returned
// count is the number of ops applied; torn reports whether the file
// ended in a partial record.
func replayWAL(data []byte, apply func(ops []walOp)) (applied int, torn bool, err error) {
	sc := recordScanner{data: data}
	var pending []walOp
	for {
		payload, err := sc.next()
		if err == errTornTail {
			return applied, true, nil
		}
		if payload == nil {
			return applied, false, nil
		}
		op, err := decodeOp(payload)
		if err != nil {
			return applied, false, err
		}
		if op.op != opCommit {
			pending = append(pending, op)
			continue
		}
		if int(op.count) != len(pending) {
			return applied, false, fmt.Errorf("mstore: commit %d covers %d ops, found %d",
				op.batch, op.count, len(pending))
		}
		apply(pending)
		applied += len(pending)
		pending = nil
	}
}
