package mstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"qurator/internal/rdf"
)

// Segment file format (little-endian):
//
//	"QSEG" | version u8 | flags u8 | delCount u32 | addCount u32
//	delCount × (u32 len | N-Triples statement)
//	addCount × (u32 len | N-Triples statement)
//	crc32c u32 over everything above
//
// Applying a segment means: if the base flag is set, reset the graph;
// then remove the deletes (tombstones for triples in older segments);
// then insert the adds. Flush segments are deltas (base unset); clear
// checkpoints and compaction outputs are base segments carrying the full
// graph content, which lets recovery drop everything older even when a
// crash left superseded files behind.

const (
	segMagic   = "QSEG"
	segVersion = 1
	segFlgBase = 1 << 0
)

// segmentMeta describes one on-disk segment.
type segmentMeta struct {
	seq   uint64
	path  string
	base  bool
	dels  int
	adds  int
	bytes int64
}

func segPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%08d.seg", seq))
}

// encodeSegment renders the full segment image.
func encodeSegment(base bool, dels, adds []rdf.Triple) []byte {
	var b bytes.Buffer
	b.WriteString(segMagic)
	b.WriteByte(segVersion)
	var flags byte
	if base {
		flags |= segFlgBase
	}
	b.WriteByte(flags)
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(dels)))
	b.Write(n[:])
	binary.LittleEndian.PutUint32(n[:], uint32(len(adds)))
	b.Write(n[:])
	writeTriple := func(t rdf.Triple) {
		line := t.String()
		binary.LittleEndian.PutUint32(n[:], uint32(len(line)))
		b.Write(n[:])
		b.WriteString(line)
	}
	for _, t := range dels {
		writeTriple(t)
	}
	for _, t := range adds {
		writeTriple(t)
	}
	binary.LittleEndian.PutUint32(n[:], crc32.Checksum(b.Bytes(), crcTable))
	b.Write(n[:])
	return b.Bytes()
}

// writeSegmentTmp writes a segment image to a temp file in dir and syncs
// it, returning the temp path. The caller renames it into place (under
// the store lock) once it is safe to publish.
func writeSegmentTmp(dir string, seq uint64, base bool, dels, adds []rdf.Triple) (string, segmentMeta, error) {
	sortTriples(dels)
	sortTriples(adds)
	img := encodeSegment(base, dels, adds)
	tmp := segPath(dir, seq) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return "", segmentMeta{}, fmt.Errorf("mstore: create segment: %w", err)
	}
	if _, err := f.Write(img); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", segmentMeta{}, fmt.Errorf("mstore: write segment: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", segmentMeta{}, fmt.Errorf("mstore: segment fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", segmentMeta{}, err
	}
	meta := segmentMeta{
		seq: seq, path: segPath(dir, seq), base: base,
		dels: len(dels), adds: len(adds), bytes: int64(len(img)),
	}
	return tmp, meta, nil
}

// publishSegment atomically renames a temp segment into place and syncs
// the directory.
func publishSegment(dir, tmp string, meta segmentMeta) error {
	if err := os.Rename(tmp, meta.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("mstore: publish segment: %w", err)
	}
	return syncDir(dir)
}

// writeSegment writes and publishes a segment in one step (the flush
// path, which already holds the store lock).
func writeSegment(dir string, seq uint64, base bool, dels, adds []rdf.Triple) (segmentMeta, error) {
	tmp, meta, err := writeSegmentTmp(dir, seq, base, dels, adds)
	if err != nil {
		return segmentMeta{}, err
	}
	if err := publishSegment(dir, tmp, meta); err != nil {
		return segmentMeta{}, err
	}
	return meta, nil
}

// readSegment loads and verifies a segment file. Any malformation —
// short file, bad magic, failed checksum, unparsable triple — is an
// error: segments are fsynced before the WAL that produced them is
// deleted, so a damaged one is corruption, not a crash artifact.
func readSegment(path string) (base bool, dels, adds []rdf.Triple, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, nil, nil, err
	}
	if len(data) < len(segMagic)+2+8+4 {
		return false, nil, nil, fmt.Errorf("mstore: segment %s: truncated header", path)
	}
	if string(data[:4]) != segMagic {
		return false, nil, nil, fmt.Errorf("mstore: segment %s: bad magic", path)
	}
	if data[4] != segVersion {
		return false, nil, nil, fmt.Errorf("mstore: segment %s: unsupported version %d", path, data[4])
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(tail) {
		return false, nil, nil, fmt.Errorf("mstore: segment %s: checksum mismatch", path)
	}
	base = data[5]&segFlgBase != 0
	nDels := binary.LittleEndian.Uint32(data[6:10])
	nAdds := binary.LittleEndian.Uint32(data[10:14])
	off := 14
	readTriples := func(n uint32) ([]rdf.Triple, error) {
		out := make([]rdf.Triple, 0, n)
		for i := uint32(0); i < n; i++ {
			if len(body)-off < 4 {
				return nil, fmt.Errorf("mstore: segment %s: truncated record", path)
			}
			l := int(binary.LittleEndian.Uint32(body[off : off+4]))
			off += 4
			if l > maxRecordLen || len(body)-off < l {
				return nil, fmt.Errorf("mstore: segment %s: truncated record", path)
			}
			t, err := rdf.ParseTriple(string(body[off : off+l]))
			if err != nil {
				return nil, fmt.Errorf("mstore: segment %s: %w", path, err)
			}
			out = append(out, t)
			off += l
		}
		return out, nil
	}
	if dels, err = readTriples(nDels); err != nil {
		return false, nil, nil, err
	}
	if adds, err = readTriples(nAdds); err != nil {
		return false, nil, nil, err
	}
	if off != len(body) {
		return false, nil, nil, fmt.Errorf("mstore: segment %s: %d trailing bytes", path, len(body)-off)
	}
	return base, dels, adds, nil
}

// sortTriples orders triples by subject, predicate, object so segment
// files are canonical for a given content.
func sortTriples(ts []rdf.Triple) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if c := rdf.CompareTerms(a.Subject, b.Subject); c != 0 {
			return c < 0
		}
		if c := rdf.CompareTerms(a.Predicate, b.Predicate); c != 0 {
			return c < 0
		}
		return rdf.CompareTerms(a.Object, b.Object) < 0
	})
}
