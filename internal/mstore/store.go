package mstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"qurator/internal/rdf"
)

// FsyncPolicy selects when the WAL reaches stable storage.
type FsyncPolicy int

const (
	// FsyncInterval (the default) syncs on a background tick: bounded
	// data loss (one interval) at near-zero per-batch cost.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways syncs after every committed batch: no committed batch
	// is ever lost, at one fsync per write.
	FsyncAlways
	// FsyncNever leaves syncing to the OS page cache: fastest, loses
	// up to the OS writeback window on power failure (a clean process
	// crash loses nothing — the file data survives the process).
	FsyncNever
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return "interval"
	}
}

// ParseFsyncPolicy parses "always", "interval" or "never".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval", "":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	default:
		return 0, fmt.Errorf("mstore: unknown fsync policy %q (want always, interval or never)", s)
	}
}

// Options tunes a Store. The zero value is usable.
type Options struct {
	// Name labels this store's telemetry series; defaults to the
	// directory's base name.
	Name string
	// Fsync is the WAL durability policy (default FsyncInterval).
	Fsync FsyncPolicy
	// FsyncInterval is the tick for FsyncInterval (default 100ms).
	FsyncInterval time.Duration
	// FlushBytes flushes the memtable to a segment once the active WAL
	// exceeds this size (default 4MiB).
	FlushBytes int64
	// CompactSegments triggers a background compaction when the live
	// segment count reaches this (default 4).
	CompactSegments int
	// NoBackground disables the fsync ticker and the compaction
	// goroutine; tests drive Flush/Compact explicitly.
	NoBackground bool
}

func (o Options) withDefaults(dir string) Options {
	if o.Name == "" {
		o.Name = filepath.Base(dir)
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 100 * time.Millisecond
	}
	if o.FlushBytes <= 0 {
		o.FlushBytes = 4 << 20
	}
	if o.CompactSegments <= 0 {
		o.CompactSegments = 4
	}
	return o
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = fmt.Errorf("mstore: store is closed")

// Store is a durable RDF triple store: every mutation is a WAL-committed
// batch applied to an in-memory copy-on-write graph, periodically
// checkpointed into immutable sorted segments. One process may own a
// directory at a time. All methods are safe for concurrent use; reads go
// through Graph()/Snapshot() and never block on store mutations.
type Store struct {
	dir  string
	opts Options
	met  storeMetrics

	mu           sync.Mutex
	g            *rdf.Graph
	mem          map[rdf.Triple]bool // net ops since last flush: true=add, false=delete
	clearPending bool                // a Clear happened since last flush → next segment is a base
	segs         []segmentMeta       // ascending seq
	wal          *wal
	oldWALs      []string // replayed-at-open WALs, deleted by the next flush
	batchSeq     uint64
	closed       bool

	compactMu sync.Mutex
	compactCh chan struct{}
	done      chan struct{}
	wg        sync.WaitGroup

	stats struct {
		recovered    int
		recoveryTime time.Duration
		tornWALs     int
	}
}

// Open opens (creating if needed) the store in dir and rebuilds the
// in-memory graph from its segments and WAL. Ops recovered from the WAL
// are immediately checkpointed into a segment, so repeated crash/reopen
// cycles never re-parse the same tail twice.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults(dir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("mstore: %w", err)
	}
	s := &Store{
		dir:       dir,
		opts:      opts,
		met:       metricsFor(opts.Name),
		g:         rdf.NewGraph(),
		mem:       make(map[rdf.Triple]bool),
		compactCh: make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	start := time.Now()
	maxSeq, err := s.recover()
	if err != nil {
		return nil, err
	}
	s.stats.recoveryTime = time.Since(start)
	s.met.recovery.Set(s.stats.recoveryTime.Seconds())
	s.met.recovered.Set(float64(s.stats.recovered))

	if s.wal, err = createWAL(dir, maxSeq+1); err != nil {
		return nil, err
	}
	if len(s.mem) > 0 || s.clearPending || len(s.oldWALs) > 0 {
		if err := s.flushLocked(); err != nil {
			s.wal.close()
			return nil, err
		}
	}
	s.publishGauges()

	if !opts.NoBackground {
		s.wg.Add(1)
		go s.compactLoop()
		if opts.Fsync == FsyncInterval {
			s.wg.Add(1)
			go s.fsyncLoop()
		}
	}
	return s, nil
}

// recover scans dir and applies segments and committed WAL batches in
// ascending sequence order (segment before WAL at equal seq — replay
// over an already-flushed segment is idempotent). Returns the highest
// sequence seen.
func (s *Store) recover() (uint64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("mstore: %w", err)
	}
	type file struct {
		seq   uint64
		isSeg bool
		path  string
	}
	var files []file
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(s.dir, name)) // in-flight write at crash time
			continue
		}
		var isSeg bool
		switch {
		case strings.HasSuffix(name, ".seg"):
			isSeg = true
		case strings.HasSuffix(name, ".wal"):
		default:
			continue
		}
		seq, err := strconv.ParseUint(name[:len(name)-4], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("mstore: unrecognised file %s in %s", name, s.dir)
		}
		files = append(files, file{seq: seq, isSeg: isSeg, path: filepath.Join(s.dir, name)})
	}
	sort.Slice(files, func(i, j int) bool {
		if files[i].seq != files[j].seq {
			return files[i].seq < files[j].seq
		}
		return files[i].isSeg && !files[j].isSeg
	})

	var maxSeq uint64
	for _, f := range files {
		maxSeq = f.seq
		if f.isSeg {
			base, dels, adds, err := readSegment(f.path)
			if err != nil {
				return 0, err
			}
			if base {
				s.g.Clear()
				// Older segments are superseded; drop them from the
				// live set (their files die at the next compaction's
				// input-prefix check or were already gone).
				for _, m := range s.segs {
					os.Remove(m.path)
				}
				s.segs = s.segs[:0]
			}
			for _, t := range dels {
				s.g.Remove(t)
			}
			if _, err := s.g.AddBatch(adds); err != nil {
				return 0, fmt.Errorf("mstore: segment %s: %w", f.path, err)
			}
			info, _ := os.Stat(f.path)
			var bytes int64
			if info != nil {
				bytes = info.Size()
			}
			s.segs = append(s.segs, segmentMeta{
				seq: f.seq, path: f.path, base: base,
				dels: len(dels), adds: len(adds), bytes: bytes,
			})
			continue
		}
		data, err := os.ReadFile(f.path)
		if err != nil {
			return 0, fmt.Errorf("mstore: %w", err)
		}
		applied, torn, err := replayWAL(data, s.applyRecoveredBatch)
		if err != nil {
			return 0, fmt.Errorf("mstore: wal %s: %w", f.path, err)
		}
		if torn {
			s.stats.tornWALs++
		}
		s.stats.recovered += applied
		s.oldWALs = append(s.oldWALs, f.path)
	}
	return maxSeq, nil
}

// applyRecoveredBatch applies one committed batch during recovery,
// mirroring the live write path: graph and memtable stay in lockstep.
func (s *Store) applyRecoveredBatch(ops []walOp) {
	for _, op := range ops {
		switch op.op {
		case opClear:
			s.g.Clear()
			s.mem = make(map[rdf.Triple]bool)
			s.clearPending = true
		case opDel:
			s.g.Remove(op.triple)
			s.mem[op.triple] = false
		case opAdd:
			// Recovered triples were validated on the original write
			// path; Add re-validates and skips malformed ones.
			if _, err := s.g.Add(op.triple); err == nil {
				s.mem[op.triple] = true
			}
		}
	}
}

// Graph returns the live in-memory graph — the lock-free COW read path.
// Callers read it directly (Match, ForEachMatch, Snapshot); all writes
// must go through the Store so they reach the WAL.
func (s *Store) Graph() *rdf.Graph { return s.g }

// Snapshot returns an immutable O(1) view of the current graph.
func (s *Store) Snapshot() *rdf.Snapshot { return s.g.Snapshot() }

// Len returns the number of triples.
func (s *Store) Len() int { return s.g.Len() }

// Apply durably commits one batch: dels are applied first, then adds
// (so a triple in both ends up present). The batch is in the WAL —
// synced per the fsync policy — before the in-memory graph mutates.
func (s *Store) Apply(adds, dels []rdf.Triple) error {
	_, err := s.apply(adds, dels)
	return err
}

// AddBatch durably inserts triples, returning how many were not already
// present.
func (s *Store) AddBatch(ts []rdf.Triple) (int, error) {
	return s.apply(ts, nil)
}

// Remove durably deletes a triple, reporting whether it was present.
func (s *Store) Remove(t rdf.Triple) (bool, error) {
	present := s.g.Has(t)
	if !present {
		return false, nil
	}
	_, err := s.apply(nil, []rdf.Triple{t})
	return present, err
}

func (s *Store) apply(adds, dels []rdf.Triple) (int, error) {
	if len(adds)+len(dels) == 0 {
		return 0, nil
	}
	for _, t := range adds {
		if err := t.Validate(); err != nil {
			return 0, err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	s.batchSeq++
	start := time.Now()
	if err := s.wal.appendBatch(false, dels, adds, s.batchSeq); err != nil {
		return 0, err
	}
	s.met.walAppend.Observe(time.Since(start).Seconds())
	s.met.batches.Inc()
	if s.opts.Fsync == FsyncAlways {
		fs := time.Now()
		if err := s.wal.sync(); err != nil {
			return 0, err
		}
		s.met.fsync.Observe(time.Since(fs).Seconds())
	}
	for _, t := range dels {
		s.g.Remove(t)
		s.mem[t] = false
	}
	added, err := s.g.AddBatch(adds)
	if err != nil {
		// Unreachable after the validation above; surface it anyway.
		return added, err
	}
	for _, t := range adds {
		s.mem[t] = true
	}
	s.met.walBytes.Set(float64(s.wal.bytes))
	if s.wal.bytes >= s.opts.FlushBytes {
		if err := s.flushLocked(); err != nil {
			return added, err
		}
	}
	return added, nil
}

// Clear durably removes every triple. The clear is one WAL record; the
// next flush writes a base segment, superseding all older files.
func (s *Store) Clear() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.batchSeq++
	if err := s.wal.appendBatch(true, nil, nil, s.batchSeq); err != nil {
		return err
	}
	s.met.batches.Inc()
	if s.opts.Fsync == FsyncAlways {
		if err := s.wal.sync(); err != nil {
			return err
		}
	}
	s.g.Clear()
	s.mem = make(map[rdf.Triple]bool)
	s.clearPending = true
	s.met.walBytes.Set(float64(s.wal.bytes))
	return nil
}

// Flush checkpoints the memtable into a segment and starts a fresh WAL.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.flushLocked()
}

func (s *Store) flushLocked() error {
	if len(s.mem) == 0 && !s.clearPending {
		// Nothing to checkpoint. Recovered WALs (if any) contained no
		// committed ops, so deleting them loses nothing.
		s.removeOldWALs()
		return nil
	}
	seq := s.wal.seq
	var (
		meta segmentMeta
		err  error
	)
	if s.clearPending {
		// The graph was rebuilt from logged ops since the clear, so its
		// full content is exactly the post-clear state.
		meta, err = writeSegment(s.dir, seq, true, nil, s.g.Triples())
	} else {
		var adds, dels []rdf.Triple
		for t, isAdd := range s.mem {
			if isAdd {
				adds = append(adds, t)
			} else {
				dels = append(dels, t)
			}
		}
		meta, err = writeSegment(s.dir, seq, false, dels, adds)
	}
	if err != nil {
		return err
	}
	// Rotate the WAL before deleting anything: if we crash between the
	// segment rename and the WAL delete, recovery replays the WAL over
	// its own segment — idempotent, not lossy.
	nw, werr := createWAL(s.dir, seq+1)
	if werr != nil {
		return werr
	}
	old := s.wal
	s.wal = nw
	old.close()
	if s.clearPending {
		for _, m := range s.segs {
			os.Remove(m.path)
		}
		s.segs = []segmentMeta{meta}
	} else {
		s.segs = append(s.segs, meta)
	}
	os.Remove(old.path)
	s.removeOldWALs()
	s.mem = make(map[rdf.Triple]bool)
	s.clearPending = false
	s.met.flushes.Inc()
	s.publishGauges()
	if len(s.segs) >= s.opts.CompactSegments && !s.opts.NoBackground {
		select {
		case s.compactCh <- struct{}{}:
		default:
		}
	}
	return nil
}

func (s *Store) removeOldWALs() {
	for _, p := range s.oldWALs {
		os.Remove(p)
	}
	s.oldWALs = nil
}

// Compact merges every live segment into one base segment, resolving
// tombstones and dropping superseded versions. Reads are unaffected; the
// store lock is held only to verify inputs and swap the segment list.
func (s *Store) Compact() error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if len(s.segs) < 2 {
		s.mu.Unlock()
		return nil
	}
	inputs := append([]segmentMeta(nil), s.segs...)
	s.mu.Unlock()

	// Segments are immutable and only this method deletes published
	// ones, so reading them without the lock is safe; a concurrent
	// Clear-flush can delete inputs, which surfaces as ENOENT → abort.
	present := make(map[rdf.Triple]struct{})
	for _, m := range inputs {
		base, dels, adds, err := readSegment(m.path)
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		if base {
			present = make(map[rdf.Triple]struct{})
		}
		for _, t := range dels {
			delete(present, t)
		}
		for _, t := range adds {
			present[t] = struct{}{}
		}
	}
	merged := make([]rdf.Triple, 0, len(present))
	for t := range present {
		merged = append(merged, t)
	}
	outSeq := inputs[len(inputs)-1].seq
	tmp, meta, err := writeSegmentTmp(s.dir, outSeq, true, nil, merged)
	if err != nil {
		return err
	}

	s.mu.Lock()
	if s.closed || len(s.segs) < len(inputs) {
		s.mu.Unlock()
		os.Remove(tmp)
		return nil
	}
	for i := range inputs {
		if s.segs[i].seq != inputs[i].seq {
			s.mu.Unlock()
			os.Remove(tmp)
			return nil
		}
	}
	// The rename replaces inputs[last] in place; older inputs become
	// unreferenced and are deleted below. A crash here is safe: recovery
	// applies the survivors in order and the base output wipes them.
	if err := publishSegment(s.dir, tmp, meta); err != nil {
		s.mu.Unlock()
		return err
	}
	olds := inputs[:len(inputs)-1]
	s.segs = append([]segmentMeta{meta}, s.segs[len(inputs):]...)
	s.met.compactions.Inc()
	s.publishGauges()
	s.mu.Unlock()

	for _, m := range olds {
		os.Remove(m.path)
	}
	return nil
}

func (s *Store) compactLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case <-s.compactCh:
			if err := s.Compact(); err != nil && err != ErrClosed {
				// Compaction is an optimisation; a failure leaves the
				// store correct, just less compact. Try again on the
				// next trigger.
				continue
			}
		}
	}
}

func (s *Store) fsyncLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			s.mu.Lock()
			if !s.closed && s.wal != nil && s.wal.bytes > 0 {
				start := time.Now()
				if err := s.wal.sync(); err == nil {
					s.met.fsync.Observe(time.Since(start).Seconds())
				}
			}
			s.mu.Unlock()
		}
	}
}

// Close flushes the memtable, syncs and closes the WAL, and stops the
// background goroutines. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	flushErr := s.flushLocked()
	s.closed = true
	var syncErr error
	if s.wal != nil {
		syncErr = s.wal.sync()
		if err := s.wal.close(); syncErr == nil {
			syncErr = err
		}
	}
	s.mu.Unlock()
	close(s.done)
	s.wg.Wait()
	if flushErr != nil {
		return flushErr
	}
	return syncErr
}

// Stats describes the store's on-disk and recovery state.
type Stats struct {
	// Segments is the live segment-file count.
	Segments int
	// SegmentBytes is the total size of live segments.
	SegmentBytes int64
	// WALBytes is the active WAL's size.
	WALBytes int64
	// Triples is the in-memory graph size.
	Triples int
	// PendingOps is the memtable's net op count (unflushed).
	PendingOps int
	// RecoveredOps is how many committed WAL ops the last Open replayed.
	RecoveredOps int
	// RecoveryTime is how long the last Open spent rebuilding.
	RecoveryTime time.Duration
	// TornWALs counts WAL files that ended in a partial record at Open.
	TornWALs int
}

// Stats returns a point-in-time view of the store's state.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Segments:     len(s.segs),
		WALBytes:     0,
		Triples:      s.g.Len(),
		PendingOps:   len(s.mem),
		RecoveredOps: s.stats.recovered,
		RecoveryTime: s.stats.recoveryTime,
		TornWALs:     s.stats.tornWALs,
	}
	if s.wal != nil {
		st.WALBytes = s.wal.bytes
	}
	for _, m := range s.segs {
		st.SegmentBytes += m.bytes
	}
	return st
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) publishGauges() {
	var segBytes int64
	for _, m := range s.segs {
		segBytes += m.bytes
	}
	s.met.segments.Set(float64(len(s.segs)))
	s.met.segBytes.Set(float64(segBytes))
	if s.wal != nil {
		s.met.walBytes.Set(float64(s.wal.bytes))
	}
}
