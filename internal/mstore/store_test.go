package mstore

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"qurator/internal/rdf"
)

// testOpts keeps unit tests deterministic: no background goroutines, no
// per-batch fsync cost.
func testOpts() Options {
	return Options{Fsync: FsyncNever, NoBackground: true, FlushBytes: 1 << 30}
}

func tripleN(i int) rdf.Triple {
	return rdf.Triple{
		Subject:   rdf.IRI(fmt.Sprintf("http://example.org/s/%d", i)),
		Predicate: rdf.IRI("http://example.org/p"),
		Object:    rdf.Integer(int64(i)),
	}
}

// tripleSet canonicalises a graph's content for comparison.
func tripleSet(ts []rdf.Triple) map[string]bool {
	out := make(map[string]bool, len(ts))
	for _, t := range ts {
		out[t.String()] = true
	}
	return out
}

func sameSet(t *testing.T, want, got map[string]bool) {
	t.Helper()
	for k := range want {
		if !got[k] {
			t.Fatalf("missing triple %s", k)
		}
	}
	for k := range got {
		if !want[k] {
			t.Fatalf("unexpected triple %s", k)
		}
	}
}

// copyDir clones a store directory so a second Store can open the copy
// while the original stays live — the moral equivalent of a crash image.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func TestParseFsyncPolicy(t *testing.T) {
	for s, want := range map[string]FsyncPolicy{
		"always": FsyncAlways, "interval": FsyncInterval, "never": FsyncNever, "": FsyncInterval,
	} {
		got, err := ParseFsyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("want error for unknown policy")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	var want []rdf.Triple
	for i := 0; i < 100; i++ {
		want = append(want, tripleN(i))
	}
	if n, err := s.AddBatch(want); err != nil || n != 100 {
		t.Fatalf("AddBatch = %d, %v", n, err)
	}
	if ok, err := s.Remove(tripleN(7)); err != nil || !ok {
		t.Fatalf("Remove = %v, %v", ok, err)
	}
	if ok, err := s.Remove(tripleN(7)); err != nil || ok {
		t.Fatalf("second Remove = %v, %v; want false", ok, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddBatch(want); err != ErrClosed {
		t.Fatalf("AddBatch after Close = %v, want ErrClosed", err)
	}

	s2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 99 {
		t.Fatalf("reopened Len = %d, want 99", s2.Len())
	}
	wantSet := tripleSet(want)
	delete(wantSet, tripleN(7).String())
	sameSet(t, wantSet, tripleSet(s2.Graph().Triples()))
}

func TestStoreClearAndReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := s.AddBatch([]rdf.Triple{tripleN(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Clear(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddBatch([]rdf.Triple{tripleN(1000)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 1 || !s2.Graph().Has(tripleN(1000)) {
		t.Fatalf("after Clear want only tripleN(1000), got %d triples", s2.Len())
	}
	// The clear checkpoint is a base segment: everything older is gone.
	if st := s2.Stats(); st.Segments != 1 {
		t.Fatalf("Segments = %d, want 1 base segment", st.Segments)
	}
}

func TestStoreFlushAndCompact(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for seg := 0; seg < 5; seg++ {
		for i := 0; i < 20; i++ {
			if _, err := s.AddBatch([]rdf.Triple{tripleN(seg*20 + i)}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.Remove(tripleN(seg * 20)); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Segments != 5 || st.PendingOps != 0 {
		t.Fatalf("Stats = %+v, want 5 segments, 0 pending", st)
	}
	before := tripleSet(s.Graph().Triples())
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Segments != 1 {
		t.Fatalf("post-compaction Segments = %d, want 1", st.Segments)
	}
	sameSet(t, before, tripleSet(s.Graph().Triples()))

	// Reopen from the compacted image.
	crash := copyDir(t, dir)
	s2, err := Open(crash, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	sameSet(t, before, tripleSet(s2.Graph().Triples()))
}

// TestCrashRecoveryTruncatedWAL is the crash-safety test from the issue:
// cut the WAL at randomized byte offsets mid-record, reopen, and require
// the recovered graph to be term-for-term identical to the state after
// the last batch whose commit record survived the cut.
func TestCrashRecoveryTruncatedWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rng := rand.New(rand.NewSource(42))
	// One flushed segment underneath, so recovery exercises seg + WAL.
	for i := 0; i < 30; i++ {
		if _, err := s.AddBatch([]rdf.Triple{tripleN(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	// Batches of mixed adds and deletes; record the WAL size and the
	// expected triple set after each commit.
	type point struct {
		walBytes int64
		state    map[string]bool
	}
	checkpoints := []point{{0, tripleSet(s.Graph().Triples())}}
	for b := 0; b < 40; b++ {
		var adds, dels []rdf.Triple
		for j := 0; j < 1+rng.Intn(5); j++ {
			adds = append(adds, tripleN(100+rng.Intn(200)))
		}
		if rng.Intn(2) == 0 {
			dels = append(dels, tripleN(rng.Intn(30)))
		}
		if err := s.Apply(adds, dels); err != nil {
			t.Fatal(err)
		}
		checkpoints = append(checkpoints, point{s.Stats().WALBytes, tripleSet(s.Graph().Triples())})
	}

	walFile := walPath(dir, 2) // seq 1 flushed above, active WAL is 2
	walData, err := os.ReadFile(walFile)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(walData)) != checkpoints[len(checkpoints)-1].walBytes {
		t.Fatalf("wal is %d bytes, expected %d", len(walData), checkpoints[len(checkpoints)-1].walBytes)
	}

	for trial := 0; trial < 60; trial++ {
		cut := rng.Intn(len(walData) + 1)
		// Expected state: the last checkpoint wholly inside the cut.
		want := checkpoints[0].state
		for _, cp := range checkpoints {
			if cp.walBytes <= int64(cut) {
				want = cp.state
			}
		}
		crash := copyDir(t, dir)
		if err := os.WriteFile(filepath.Join(crash, filepath.Base(walFile)), walData[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(crash, testOpts())
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		got := tripleSet(s2.Graph().Triples())
		s2.Close()
		for k := range want {
			if !got[k] {
				t.Fatalf("cut=%d: recovered graph missing %s", cut, k)
			}
		}
		for k := range got {
			if !want[k] {
				t.Fatalf("cut=%d: recovered graph has extra %s", cut, k)
			}
		}
	}
}

// TestCrashRecoveryCorruptWAL flips random bytes in the WAL body. A flip
// breaks that record's CRC, so recovery must stop at the last batch
// committed before it — some prefix of the full history — and never
// panic or invent triples.
func TestCrashRecoveryCorruptWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var states []map[string]bool
	states = append(states, tripleSet(nil))
	for b := 0; b < 20; b++ {
		if _, err := s.AddBatch([]rdf.Triple{tripleN(b), tripleN(100 + b)}); err != nil {
			t.Fatal(err)
		}
		states = append(states, tripleSet(s.Graph().Triples()))
	}
	walFile := walPath(dir, 1)
	walData, err := os.ReadFile(walFile)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		corrupt := append([]byte(nil), walData...)
		corrupt[rng.Intn(len(corrupt))] ^= 0x40
		crash := copyDir(t, dir)
		if err := os.WriteFile(filepath.Join(crash, filepath.Base(walFile)), corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(crash, testOpts())
		if err != nil {
			// A flip can also land in a decodable position that turns a
			// record into CRC-valid garbage only with probability
			// ~2^-32; a decode error here would be real corruption,
			// which Open is allowed to reject. Everything else must
			// recover a prefix.
			t.Fatalf("trial=%d: Open: %v", trial, err)
		}
		got := tripleSet(s2.Graph().Triples())
		s2.Close()
		prefix := false
		for _, st := range states {
			if len(st) != len(got) {
				continue
			}
			match := true
			for k := range st {
				if !got[k] {
					match = false
					break
				}
			}
			if match {
				prefix = true
				break
			}
		}
		if !prefix {
			t.Fatalf("trial=%d: recovered %d triples, not a committed prefix", trial, len(got))
		}
	}
}

// TestStoreProperty drives a randomized op sequence against a model map,
// with periodic flushes, compactions, clears and crash-copy reopens. Run
// under -race it also validates the locking.
func TestStoreProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	seed := rng.Int63()
	t.Logf("seed %d", seed)
	rng = rand.New(rand.NewSource(seed))

	dir := t.TempDir()
	s, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { s.Close() }()
	model := make(map[string]bool)

	for step := 0; step < 400; step++ {
		switch op := rng.Intn(100); {
		case op < 55: // batch of adds
			var ts []rdf.Triple
			for j := 0; j < 1+rng.Intn(8); j++ {
				ts = append(ts, tripleN(rng.Intn(300)))
			}
			if _, err := s.AddBatch(ts); err != nil {
				t.Fatal(err)
			}
			for _, tr := range ts {
				model[tr.String()] = true
			}
		case op < 80: // remove
			tr := tripleN(rng.Intn(300))
			ok, err := s.Remove(tr)
			if err != nil {
				t.Fatal(err)
			}
			if ok != model[tr.String()] {
				t.Fatalf("step %d: Remove(%s) = %v, model says %v", step, tr, ok, model[tr.String()])
			}
			delete(model, tr.String())
		case op < 88: // flush
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
		case op < 93: // compact
			if err := s.Compact(); err != nil {
				t.Fatal(err)
			}
		case op < 96: // clear
			if err := s.Clear(); err != nil {
				t.Fatal(err)
			}
			model = make(map[string]bool)
		default: // crash-copy reopen equivalence: replaying the on-disk
			// state into a second store must reproduce the live graph.
			crash := copyDir(t, dir)
			s2, err := Open(crash, testOpts())
			if err != nil {
				t.Fatalf("step %d: reopen: %v", step, err)
			}
			sameSet(t, model, tripleSet(s2.Graph().Triples()))
			s2.Close()
		}
		if s.Len() != len(model) {
			t.Fatalf("step %d: Len = %d, model has %d", step, s.Len(), len(model))
		}
	}
	sameSet(t, model, tripleSet(s.Graph().Triples()))

	// Full restart equivalence.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	sameSet(t, model, tripleSet(s2.Graph().Triples()))
}

// TestSnapshotIsolationUnderWrites captures snapshots while a writer
// mutates and checks each snapshot never changes after capture. Run with
// -race this exercises the COW read path against WAL-backed writes.
func TestSnapshotIsolationUnderWrites(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fsync: FsyncNever, FlushBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := s.Snapshot()
				n := snap.Len()
				for i := 0; i < 3; i++ {
					if got := snap.Len(); got != n {
						t.Errorf("snapshot changed after capture: %d -> %d", n, got)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 500; i++ {
		if _, err := s.AddBatch([]rdf.Triple{tripleN(i)}); err != nil {
			t.Fatal(err)
		}
		if i%10 == 0 {
			if _, err := s.Remove(tripleN(i / 2)); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestSegmentCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := s.AddBatch([]rdf.Triple{tripleN(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segFile := segPath(dir, 1)
	data, err := os.ReadFile(segFile)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segFile, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testOpts()); err == nil {
		t.Fatal("Open accepted a corrupted segment")
	}
}

func TestOpenCheckpointsRecoveredWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if _, err := s.AddBatch([]rdf.Triple{tripleN(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crash: copy the dir while the WAL is unflushed.
	crash := copyDir(t, dir)
	s.Close()

	s2, err := Open(crash, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	if st.RecoveredOps != 25 {
		t.Fatalf("RecoveredOps = %d, want 25", st.RecoveredOps)
	}
	// Recovery checkpoints straight away: the replayed WAL became a
	// segment and the new WAL is empty.
	if st.Segments != 1 || st.PendingOps != 0 || st.WALBytes != 0 {
		t.Fatalf("post-recovery Stats = %+v, want checkpointed state", st)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// And the checkpoint itself reopens clean.
	s3, err := Open(crash, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Len() != 25 || s3.Stats().RecoveredOps != 0 {
		t.Fatalf("third open: Len=%d RecoveredOps=%d", s3.Len(), s3.Stats().RecoveredOps)
	}
}

func TestFsyncAlwaysAndIntervalPolicies(t *testing.T) {
	for _, pol := range []FsyncPolicy{FsyncAlways, FsyncInterval} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir, Options{Fsync: pol, FsyncInterval: 5 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 20; i++ {
				if _, err := s.AddBatch([]rdf.Triple{tripleN(i)}); err != nil {
					t.Fatal(err)
				}
			}
			if pol == FsyncInterval {
				time.Sleep(20 * time.Millisecond) // let the ticker run
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			s2, err := Open(dir, testOpts())
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if s2.Len() != 20 {
				t.Fatalf("Len = %d, want 20", s2.Len())
			}
		})
	}
}

func TestAutoFlushOnWALSize(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fsync: FsyncNever, NoBackground: true, FlushBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 200; i++ {
		if _, err := s.AddBatch([]rdf.Triple{tripleN(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Segments == 0 {
		t.Fatalf("no auto-flush happened: %+v", st)
	}
	if s.Len() != 200 {
		t.Fatalf("Len = %d, want 200", s.Len())
	}
}
