package mstore

import (
	"fmt"
	"os"
	"path/filepath"

	"qurator/internal/rdf"
)

// wal is the active write-ahead log file. All methods are called with the
// store lock held.
type wal struct {
	f     *os.File
	path  string
	seq   uint64
	bytes int64
	buf   []byte // reused batch-encoding scratch
}

func walPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%08d.wal", seq))
}

// createWAL creates a fresh, empty WAL and syncs the directory so the
// file survives a crash.
func createWAL(dir string, seq uint64) (*wal, error) {
	path := walPath(dir, seq)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("mstore: create wal: %w", err)
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return &wal{f: f, path: path, seq: seq}, nil
}

// appendBatch encodes one batch — optional clear, deletes, adds, then the
// commit marker — and appends it with a single write, so a crash tears at
// most one batch and the commit marker is the last thing to land.
func (w *wal) appendBatch(clear bool, dels, adds []rdf.Triple, batch uint64) error {
	buf := w.buf[:0]
	n := uint32(0)
	if clear {
		buf = appendClearOp(buf)
		n++
	}
	for _, t := range dels {
		buf = appendTripleOp(buf, opDel, t)
		n++
	}
	for _, t := range adds {
		buf = appendTripleOp(buf, opAdd, t)
		n++
	}
	buf = appendCommitOp(buf, batch, n)
	w.buf = buf[:0]
	wrote, err := w.f.Write(buf)
	w.bytes += int64(wrote)
	if err != nil {
		return fmt.Errorf("mstore: wal append: %w", err)
	}
	return nil
}

// sync flushes the WAL to stable storage.
func (w *wal) sync() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("mstore: wal fsync: %w", err)
	}
	return nil
}

func (w *wal) close() error {
	return w.f.Close()
}

// syncDir fsyncs a directory so renames and creates within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("mstore: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("mstore: dir fsync: %w", err)
	}
	return nil
}
