package ontology

import (
	"strings"

	"qurator/internal/rdf"
)

// QuratorNS is the namespace of the IQ model — the "q:" prefix used in the
// paper's quality-view fragments (§5.1).
const QuratorNS = "http://qurator.org/iq#"

// Q returns the IRI of a name in the Qurator namespace, i.e. the expansion
// of "q:local".
func Q(local string) rdf.Term { return rdf.IRI(QuratorNS + local) }

// ExpandQName expands "q:Name" against the Qurator namespace, returning
// absolute IRIs unchanged. Names with no prefix are also resolved against
// the Qurator namespace, matching the paper's informal usage.
func ExpandQName(name string) rdf.Term {
	switch {
	case strings.HasPrefix(name, "q:"):
		return Q(name[2:])
	case strings.Contains(name, "://") || strings.HasPrefix(name, "urn:"):
		return rdf.IRI(name)
	default:
		return Q(name)
	}
}

// Root classes of the IQ model (paper §3, Figure 2).
var (
	// DataEntity represents any data item for which quality annotations
	// can be computed and quality assertions made.
	DataEntity = Q("DataEntity")
	// QualityEvidence is any measurable quantity usable as input to a QA.
	QualityEvidence = Q("QualityEvidence")
	// QualityAssertion is the class of QA decision models.
	QualityAssertion = Q("QualityAssertion")
	// AnnotationFunction is the class of evidence-computing functions.
	AnnotationFunction = Q("AnnotationFunction")
	// ClassificationModel is the class of classification schemes whose
	// members are the class labels QAs assign.
	ClassificationModel = Q("ClassificationModel")
	// QualityProperty is the class of generic IQ dimensions.
	QualityProperty = Q("QualityProperty")
	// ObservedAt is the generic event-time evidence class: a timestamp
	// (epoch milliseconds or RFC 3339) recording when the annotated
	// observation was made at its source. Streaming views that window on
	// event time declare an ObservedAt subclass (or ObservedAt itself) as
	// their event-time evidence.
	ObservedAt = Q("ObservedAt")
)

// Properties of the IQ model.
var (
	// ContainsEvidence links a DataEntity to a QualityEvidence value
	// (Figure 2's contains-evidence object property).
	ContainsEvidence = Q("containsEvidence")
	// EvidenceType links an evidence node to its QualityEvidence subclass.
	EvidenceType = Q("evidenceType")
	// EvidenceValue carries the literal value of an evidence node.
	EvidenceValue = Q("evidenceValue")
	// ComputedBy links evidence to the AnnotationFunction that produced it.
	ComputedBy = Q("computedBy")
	// AddressesProperty classifies a QA under an IQ dimension, fostering
	// reuse (paper §3).
	AddressesProperty = Q("addressesProperty")
	// MemberOfModel links a class label individual to its
	// ClassificationModel.
	MemberOfModel = Q("memberOfModel")
)

// Quality dimensions (the paper cites accuracy, completeness, currency
// after Wang & Strong / Redman).
var (
	Accuracy     = Q("Accuracy")
	Completeness = Q("Completeness")
	Currency     = Q("Currency")
	Credibility  = Q("Credibility")
)

// Proteomics-domain vocabulary from the running example.
var (
	// ImprintHitEntry is the DataEntity subclass for a single ranked
	// protein identification produced by Imprint (§3).
	ImprintHitEntry = Q("ImprintHitEntry")

	// Evidence types produced by the Imprint annotator (§5.1 declares
	// q:coverage, q:masses, q:peptidesCount alongside HitRatio).
	HitRatio      = Q("HitRatio")
	MassCoverage  = Q("MassCoverage")
	Coverage      = Q("Coverage")
	Masses        = Q("Masses")
	PeptidesCount = Q("PeptidesCount")

	// QA operator classes declared in the §5.1 view.
	UniversalPIScore  = Q("UniversalPIScore")
	UniversalPIScore2 = Q("UniversalPIScore2")
	HRScoreAssertion  = Q("HRScoreAssertion")
	PIScoreClassifier = Q("PIScoreClassifier")

	// PIScoreClassification is the three-way classification model; its
	// enumerated individuals are q:low / q:mid / q:high (§5.1).
	PIScoreClassification = Q("PIScoreClassification")
	ClassLow              = Q("low")
	ClassMid              = Q("mid")
	ClassHigh             = Q("high")

	// ImprintOutputAnnotation is the annotation-function class of the
	// §5.1 <Annotator> declaration.
	ImprintOutputAnnotation = Q("ImprintOutputAnnotation")
)

// Credibility-domain vocabulary (paper §3's journal-reputation example and
// the Uniprot evidence-code study [16]).
var (
	CuratedAnnotationEntry = Q("CuratedAnnotationEntry")
	EvidenceCode           = Q("EvidenceCode")
	JournalImpactFactor    = Q("JournalImpactFactor")
	CurationCredibility    = Q("CurationCredibility")
	CredibilityClass       = Q("CredibilityClassification")
	ImpactFactorAnnotation = Q("ImpactFactorAnnotation")
	EvidenceCodeAnnotation = Q("EvidenceCodeAnnotation")
)

// NewIQModel builds the IQ ontology: the generic root taxonomy plus the
// proteomics and credibility domain extensions used throughout the paper.
// User code extends the returned ontology with further subclasses — the
// model is explicitly "user-extensible" (paper contribution #1).
func NewIQModel() *Ontology {
	o := New()

	// Root taxonomy.
	for _, c := range []rdf.Term{
		DataEntity, QualityEvidence, QualityAssertion,
		AnnotationFunction, ClassificationModel, QualityProperty,
	} {
		o.MustDefineClass(c)
	}

	// Core properties.
	must(o.DefineObjectProperty(ContainsEvidence, DataEntity, QualityEvidence))
	must(o.DefineObjectProperty(EvidenceType, rdf.Term{}, QualityEvidence))
	must(o.DefineDatatypeProperty(EvidenceValue, rdf.Term{}, rdf.Term{}))
	must(o.DefineObjectProperty(ComputedBy, QualityEvidence, AnnotationFunction))
	must(o.DefineObjectProperty(AddressesProperty, QualityAssertion, QualityProperty))
	must(o.DefineObjectProperty(MemberOfModel, rdf.Term{}, ClassificationModel))

	// Generic event-time evidence for streaming views.
	o.MustDefineClass(ObservedAt, QualityEvidence)

	// Quality dimensions as individuals of QualityProperty.
	for _, dim := range []rdf.Term{Accuracy, Completeness, Currency, Credibility} {
		o.MustAddIndividual(dim, QualityProperty)
	}

	// Proteomics domain.
	o.MustDefineClass(ImprintHitEntry, DataEntity)
	for _, ev := range []rdf.Term{HitRatio, MassCoverage, Coverage, Masses, PeptidesCount} {
		o.MustDefineClass(ev, QualityEvidence)
	}
	o.MustDefineClass(UniversalPIScore, QualityAssertion)
	o.MustDefineClass(UniversalPIScore2, UniversalPIScore)
	o.MustDefineClass(HRScoreAssertion, QualityAssertion)
	o.MustDefineClass(PIScoreClassifier, QualityAssertion)
	o.MustDefineClass(PIScoreClassification, ClassificationModel)
	for _, cl := range []rdf.Term{ClassLow, ClassMid, ClassHigh} {
		o.MustAddIndividual(cl, PIScoreClassification)
	}
	o.MustDefineClass(ImprintOutputAnnotation, AnnotationFunction)

	// Credibility domain.
	o.MustDefineClass(CuratedAnnotationEntry, DataEntity)
	o.MustDefineClass(EvidenceCode, QualityEvidence)
	o.MustDefineClass(JournalImpactFactor, QualityEvidence)
	o.MustDefineClass(CurationCredibility, QualityAssertion)
	o.MustDefineClass(CredibilityClass, ClassificationModel)
	o.MustDefineClass(ImpactFactorAnnotation, AnnotationFunction)
	o.MustDefineClass(EvidenceCodeAnnotation, AnnotationFunction)

	// Labels for the vocabulary most often shown to users.
	o.SetLabel(HitRatio, "Hit Ratio")
	o.SetLabel(MassCoverage, "Mass Coverage")
	o.SetLabel(PIScoreClassification, "PI match classification")

	return o
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
