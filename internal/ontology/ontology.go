// Package ontology implements the class/property model underpinning the
// Qurator IQ (information quality) semantic model of paper §3: a taxonomy
// of OWL-style classes with subsumption reasoning, object and datatype
// properties with domain/range, and typed individuals, all serialisable to
// and from RDF.
//
// The paper defines the IQ model in OWL DL but exercises only its
// taxonomic fragment (subclass vocabulary, instance typing, and
// domain/range on the contains-evidence property); this package implements
// exactly that fragment plus consistency checking.
package ontology

import (
	"fmt"
	"sort"
	"sync"

	"qurator/internal/rdf"
)

// Ontology is a mutable class/property model. All methods are safe for
// concurrent use.
type Ontology struct {
	mu sync.RWMutex

	classes map[rdf.Term]struct{}
	// supers maps a class to its direct superclasses.
	supers map[rdf.Term]map[rdf.Term]struct{}
	// subs is the inverse of supers.
	subs map[rdf.Term]map[rdf.Term]struct{}

	objectProps   map[rdf.Term]*Property
	datatypeProps map[rdf.Term]*Property

	// types maps an individual to its asserted classes.
	types map[rdf.Term]map[rdf.Term]struct{}
	// members is the inverse of types.
	members map[rdf.Term]map[rdf.Term]struct{}

	labels map[rdf.Term]string
}

// Property describes an object or datatype property.
type Property struct {
	IRI    rdf.Term
	Domain rdf.Term // zero Term means unconstrained
	Range  rdf.Term // class IRI for object properties, datatype IRI for datatype properties
	Object bool     // true for object properties
}

// New returns an empty ontology.
func New() *Ontology {
	return &Ontology{
		classes:       make(map[rdf.Term]struct{}),
		supers:        make(map[rdf.Term]map[rdf.Term]struct{}),
		subs:          make(map[rdf.Term]map[rdf.Term]struct{}),
		objectProps:   make(map[rdf.Term]*Property),
		datatypeProps: make(map[rdf.Term]*Property),
		types:         make(map[rdf.Term]map[rdf.Term]struct{}),
		members:       make(map[rdf.Term]map[rdf.Term]struct{}),
		labels:        make(map[rdf.Term]string),
	}
}

// DefineClass declares a class, optionally under one or more superclasses.
// Superclasses are declared implicitly if unknown. It returns an error if
// the subclass edge would create a cycle.
func (o *Ontology) DefineClass(class rdf.Term, supers ...rdf.Term) error {
	if !class.IsIRI() {
		return fmt.Errorf("ontology: class must be an IRI, got %v", class)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.classes[class] = struct{}{}
	for _, sup := range supers {
		if !sup.IsIRI() {
			return fmt.Errorf("ontology: superclass must be an IRI, got %v", sup)
		}
		if sup == class || o.reachesLocked(sup, class) {
			return fmt.Errorf("ontology: subclass cycle: %v ⊑ %v", class, sup)
		}
		o.classes[sup] = struct{}{}
		addEdge(o.supers, class, sup)
		addEdge(o.subs, sup, class)
	}
	return nil
}

// MustDefineClass is DefineClass that panics on error, for static models.
func (o *Ontology) MustDefineClass(class rdf.Term, supers ...rdf.Term) {
	if err := o.DefineClass(class, supers...); err != nil {
		panic(err)
	}
}

// reachesLocked reports whether sup is reachable from class via subclass
// edges (i.e. class ⊑* sup). Caller holds the lock.
func (o *Ontology) reachesLocked(from, to rdf.Term) bool {
	if from == to {
		return true
	}
	seen := map[rdf.Term]struct{}{from: {}}
	stack := []rdf.Term{from}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for sup := range o.supers[cur] {
			if sup == to {
				return true
			}
			if _, ok := seen[sup]; !ok {
				seen[sup] = struct{}{}
				stack = append(stack, sup)
			}
		}
	}
	return false
}

// HasClass reports whether the class is declared.
func (o *Ontology) HasClass(class rdf.Term) bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	_, ok := o.classes[class]
	return ok
}

// Classes returns all declared classes in sorted order.
func (o *Ontology) Classes() []rdf.Term {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return sortedKeys(o.classes)
}

// IsSubClassOf reports whether sub ⊑* sup (reflexive, transitive).
func (o *Ontology) IsSubClassOf(sub, sup rdf.Term) bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.reachesLocked(sub, sup)
}

// Superclasses returns the transitive superclasses of class (excluding
// class itself), sorted.
func (o *Ontology) Superclasses(class rdf.Term) []rdf.Term {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.closureLocked(class, o.supers)
}

// DirectSuperclasses returns only the asserted (one-step) superclasses of
// class, sorted.
func (o *Ontology) DirectSuperclasses(class rdf.Term) []rdf.Term {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return sortedKeys(o.supers[class])
}

// Subclasses returns the transitive subclasses of class (excluding class
// itself), sorted.
func (o *Ontology) Subclasses(class rdf.Term) []rdf.Term {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.closureLocked(class, o.subs)
}

func (o *Ontology) closureLocked(start rdf.Term, edges map[rdf.Term]map[rdf.Term]struct{}) []rdf.Term {
	seen := map[rdf.Term]struct{}{}
	stack := []rdf.Term{start}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for next := range edges[cur] {
			if _, ok := seen[next]; !ok {
				seen[next] = struct{}{}
				stack = append(stack, next)
			}
		}
	}
	return sortedKeys(seen)
}

// DefineObjectProperty declares an object property with optional domain and
// range classes (zero Terms mean unconstrained).
func (o *Ontology) DefineObjectProperty(iri, domain, rang rdf.Term) error {
	return o.defineProp(iri, domain, rang, true)
}

// DefineDatatypeProperty declares a datatype property; rang, if set, is a
// datatype IRI such as xsd:double.
func (o *Ontology) DefineDatatypeProperty(iri, domain, rang rdf.Term) error {
	return o.defineProp(iri, domain, rang, false)
}

func (o *Ontology) defineProp(iri, domain, rang rdf.Term, object bool) error {
	if !iri.IsIRI() {
		return fmt.Errorf("ontology: property must be an IRI, got %v", iri)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	p := &Property{IRI: iri, Domain: domain, Range: rang, Object: object}
	if object {
		o.objectProps[iri] = p
	} else {
		o.datatypeProps[iri] = p
	}
	return nil
}

// Property looks up a declared property of either kind.
func (o *Ontology) Property(iri rdf.Term) (*Property, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if p, ok := o.objectProps[iri]; ok {
		return p, true
	}
	p, ok := o.datatypeProps[iri]
	return p, ok
}

// AddIndividual asserts that individual is an instance of class; the class
// must already be declared.
func (o *Ontology) AddIndividual(individual, class rdf.Term) error {
	if !individual.IsIRI() && !individual.IsBlank() {
		return fmt.Errorf("ontology: individual must be an IRI or blank node, got %v", individual)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, ok := o.classes[class]; !ok {
		return fmt.Errorf("ontology: undeclared class %v", class)
	}
	addEdge(o.types, individual, class)
	addEdge(o.members, class, individual)
	return nil
}

// MustAddIndividual is AddIndividual that panics on error.
func (o *Ontology) MustAddIndividual(individual, class rdf.Term) {
	if err := o.AddIndividual(individual, class); err != nil {
		panic(err)
	}
}

// TypesOf returns the asserted classes of an individual, sorted.
func (o *Ontology) TypesOf(individual rdf.Term) []rdf.Term {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return sortedKeys(o.types[individual])
}

// IsInstanceOf reports whether the individual is an instance of class,
// taking subsumption into account: an asserted type that is a subclass of
// class counts.
func (o *Ontology) IsInstanceOf(individual, class rdf.Term) bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	for t := range o.types[individual] {
		if o.reachesLocked(t, class) {
			return true
		}
	}
	return false
}

// InstancesOf returns all individuals whose asserted type is class or one
// of its subclasses, sorted.
func (o *Ontology) InstancesOf(class rdf.Term) []rdf.Term {
	o.mu.RLock()
	defer o.mu.RUnlock()
	out := map[rdf.Term]struct{}{}
	collect := func(c rdf.Term) {
		for ind := range o.members[c] {
			out[ind] = struct{}{}
		}
	}
	collect(class)
	for _, sub := range o.closureLocked(class, o.subs) {
		collect(sub)
	}
	return sortedKeys(out)
}

// SetLabel attaches an rdfs:label to a class, property or individual.
func (o *Ontology) SetLabel(term rdf.Term, label string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.labels[term] = label
}

// Label returns the rdfs:label of a term, or its local name when unset.
func (o *Ontology) Label(term rdf.Term) string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if l, ok := o.labels[term]; ok {
		return l
	}
	return LocalName(term)
}

// LocalName returns the fragment or final path segment of an IRI term.
func LocalName(term rdf.Term) string {
	v := term.Value()
	for i := len(v) - 1; i >= 0; i-- {
		switch v[i] {
		case '#', '/', ':':
			return v[i+1:]
		}
	}
	return v
}

// ToGraph serialises the ontology (classes, subclass edges, properties,
// individuals, labels) as RDF.
func (o *Ontology) ToGraph() *rdf.Graph {
	o.mu.RLock()
	defer o.mu.RUnlock()
	g := rdf.NewGraph()
	typeIRI := rdf.IRI(rdf.RDFType)
	for c := range o.classes {
		g.MustAdd(rdf.T(c, typeIRI, rdf.IRI(rdf.OWLClass)))
	}
	for sub, sups := range o.supers {
		for sup := range sups {
			g.MustAdd(rdf.T(sub, rdf.IRI(rdf.RDFSSubClassOf), sup))
		}
	}
	emitProp := func(p *Property, kind string) {
		g.MustAdd(rdf.T(p.IRI, typeIRI, rdf.IRI(kind)))
		if !p.Domain.IsZero() {
			g.MustAdd(rdf.T(p.IRI, rdf.IRI(rdf.RDFSDomain), p.Domain))
		}
		if !p.Range.IsZero() {
			g.MustAdd(rdf.T(p.IRI, rdf.IRI(rdf.RDFSRange), p.Range))
		}
	}
	for _, p := range o.objectProps {
		emitProp(p, rdf.OWLObjectProp)
	}
	for _, p := range o.datatypeProps {
		emitProp(p, rdf.OWLDatatypeProp)
	}
	for ind, classes := range o.types {
		for c := range classes {
			g.MustAdd(rdf.T(ind, typeIRI, c))
		}
	}
	for term, label := range o.labels {
		g.MustAdd(rdf.T(term, rdf.IRI(rdf.RDFSLabel), rdf.Literal(label)))
	}
	return g
}

// FromGraph reconstructs an ontology from RDF produced by ToGraph (or any
// graph using the rdfs/owl vocabulary subset).
func FromGraph(g *rdf.Graph) (*Ontology, error) {
	o := New()
	typeIRI := rdf.IRI(rdf.RDFType)
	for _, t := range g.Match(rdf.Term{}, typeIRI, rdf.IRI(rdf.OWLClass)) {
		if err := o.DefineClass(t.Subject); err != nil {
			return nil, err
		}
	}
	for _, t := range g.Match(rdf.Term{}, rdf.IRI(rdf.RDFSSubClassOf), rdf.Term{}) {
		if err := o.DefineClass(t.Subject, t.Object); err != nil {
			return nil, err
		}
	}
	loadProps := func(kind string, object bool) error {
		for _, t := range g.Match(rdf.Term{}, typeIRI, rdf.IRI(kind)) {
			domain := g.FirstObject(t.Subject, rdf.IRI(rdf.RDFSDomain))
			rang := g.FirstObject(t.Subject, rdf.IRI(rdf.RDFSRange))
			if err := o.defineProp(t.Subject, domain, rang, object); err != nil {
				return err
			}
		}
		return nil
	}
	if err := loadProps(rdf.OWLObjectProp, true); err != nil {
		return nil, err
	}
	if err := loadProps(rdf.OWLDatatypeProp, false); err != nil {
		return nil, err
	}
	for _, t := range g.Match(rdf.Term{}, typeIRI, rdf.Term{}) {
		obj := t.Object.Value()
		if obj == rdf.OWLClass || obj == rdf.OWLObjectProp || obj == rdf.OWLDatatypeProp {
			continue
		}
		if o.HasClass(t.Object) {
			if err := o.AddIndividual(t.Subject, t.Object); err != nil {
				return nil, err
			}
		}
	}
	for _, t := range g.Match(rdf.Term{}, rdf.IRI(rdf.RDFSLabel), rdf.Term{}) {
		o.SetLabel(t.Subject, t.Object.Value())
	}
	return o, nil
}

// CheckStatement validates an RDF statement against declared property
// domain/range constraints, using subsumption on object values. Statements
// with undeclared predicates pass (open world).
func (o *Ontology) CheckStatement(t rdf.Triple) error {
	p, ok := o.Property(t.Predicate)
	if !ok {
		return nil
	}
	if !p.Domain.IsZero() && !o.IsInstanceOf(t.Subject, p.Domain) {
		return fmt.Errorf("ontology: subject %v of %v is not an instance of domain %v",
			t.Subject, t.Predicate, p.Domain)
	}
	if p.Object {
		if !t.Object.IsIRI() && !t.Object.IsBlank() {
			return fmt.Errorf("ontology: object property %v has literal object %v", t.Predicate, t.Object)
		}
		if !p.Range.IsZero() && !o.IsInstanceOf(t.Object, p.Range) {
			return fmt.Errorf("ontology: object %v of %v is not an instance of range %v",
				t.Object, t.Predicate, p.Range)
		}
		return nil
	}
	if !t.Object.IsLiteral() {
		return fmt.Errorf("ontology: datatype property %v has non-literal object %v", t.Predicate, t.Object)
	}
	if !p.Range.IsZero() && t.Object.Datatype() != p.Range.Value() {
		return fmt.Errorf("ontology: literal %v of %v has datatype %q, want %q",
			t.Object, t.Predicate, t.Object.Datatype(), p.Range.Value())
	}
	return nil
}

func addEdge(m map[rdf.Term]map[rdf.Term]struct{}, from, to rdf.Term) {
	set, ok := m[from]
	if !ok {
		set = make(map[rdf.Term]struct{})
		m[from] = set
	}
	set[to] = struct{}{}
}

func sortedKeys(m map[rdf.Term]struct{}) []rdf.Term {
	out := make([]rdf.Term, 0, len(m))
	for t := range m {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return rdf.CompareTerms(out[i], out[j]) < 0 })
	return out
}
