package ontology

import (
	"reflect"
	"testing"

	"qurator/internal/rdf"
)

func TestDefineClassAndSubsumption(t *testing.T) {
	o := New()
	a, b, c := rdf.IRI("urn:A"), rdf.IRI("urn:B"), rdf.IRI("urn:C")
	o.MustDefineClass(a)
	o.MustDefineClass(b, a)
	o.MustDefineClass(c, b)

	if !o.HasClass(a) || !o.HasClass(b) || !o.HasClass(c) {
		t.Fatal("classes not declared")
	}
	if !o.IsSubClassOf(c, a) {
		t.Error("C should be a transitive subclass of A")
	}
	if !o.IsSubClassOf(a, a) {
		t.Error("subsumption should be reflexive")
	}
	if o.IsSubClassOf(a, c) {
		t.Error("A should not be a subclass of C")
	}
	if got := o.Superclasses(c); !reflect.DeepEqual(got, []rdf.Term{a, b}) {
		t.Errorf("Superclasses(C) = %v", got)
	}
	if got := o.Subclasses(a); !reflect.DeepEqual(got, []rdf.Term{b, c}) {
		t.Errorf("Subclasses(A) = %v", got)
	}
}

func TestDefineClassRejectsCycles(t *testing.T) {
	o := New()
	a, b, c := rdf.IRI("urn:A"), rdf.IRI("urn:B"), rdf.IRI("urn:C")
	o.MustDefineClass(b, a)
	o.MustDefineClass(c, b)
	if err := o.DefineClass(a, c); err == nil {
		t.Error("cycle A ⊑ C ⊑ B ⊑ A should be rejected")
	}
	if err := o.DefineClass(a, a); err == nil {
		t.Error("self-cycle should be rejected")
	}
}

func TestDefineClassRejectsNonIRI(t *testing.T) {
	o := New()
	if err := o.DefineClass(rdf.Literal("x")); err == nil {
		t.Error("literal class should be rejected")
	}
	if err := o.DefineClass(rdf.IRI("urn:A"), rdf.Literal("s")); err == nil {
		t.Error("literal superclass should be rejected")
	}
}

func TestIndividualsAndInstanceOf(t *testing.T) {
	o := New()
	animal, dog := rdf.IRI("urn:Animal"), rdf.IRI("urn:Dog")
	o.MustDefineClass(animal)
	o.MustDefineClass(dog, animal)
	rex := rdf.IRI("urn:rex")
	o.MustAddIndividual(rex, dog)

	if !o.IsInstanceOf(rex, dog) {
		t.Error("rex should be a Dog")
	}
	if !o.IsInstanceOf(rex, animal) {
		t.Error("rex should be an Animal by subsumption")
	}
	if o.IsInstanceOf(rex, rdf.IRI("urn:Cat")) {
		t.Error("rex should not be a Cat")
	}
	if got := o.InstancesOf(animal); !reflect.DeepEqual(got, []rdf.Term{rex}) {
		t.Errorf("InstancesOf(Animal) = %v", got)
	}
	if got := o.TypesOf(rex); !reflect.DeepEqual(got, []rdf.Term{dog}) {
		t.Errorf("TypesOf(rex) = %v", got)
	}
	if err := o.AddIndividual(rdf.IRI("urn:x"), rdf.IRI("urn:Undeclared")); err == nil {
		t.Error("AddIndividual with undeclared class should fail")
	}
	if err := o.AddIndividual(rdf.Literal("x"), animal); err == nil {
		t.Error("literal individual should be rejected")
	}
}

func TestLabelsAndLocalName(t *testing.T) {
	o := New()
	c := Q("HitRatio")
	o.MustDefineClass(c)
	if got := o.Label(c); got != "HitRatio" {
		t.Errorf("default label = %q", got)
	}
	o.SetLabel(c, "Hit Ratio")
	if got := o.Label(c); got != "Hit Ratio" {
		t.Errorf("label = %q", got)
	}
	cases := map[string]string{
		"http://qurator.org/iq#HitRatio":      "HitRatio",
		"http://example.org/path/Leaf":        "Leaf",
		"urn:lsid:uniprot.org:uniprot:P30089": "P30089",
		"noseparator":                         "noseparator",
	}
	for iri, want := range cases {
		if got := LocalName(rdf.IRI(iri)); got != want {
			t.Errorf("LocalName(%q) = %q, want %q", iri, got, want)
		}
	}
}

func TestGraphRoundTrip(t *testing.T) {
	o := NewIQModel()
	g := o.ToGraph()
	back, err := FromGraph(g)
	if err != nil {
		t.Fatalf("FromGraph: %v", err)
	}
	if !reflect.DeepEqual(o.Classes(), back.Classes()) {
		t.Error("classes differ after round trip")
	}
	if !back.IsSubClassOf(ImprintHitEntry, DataEntity) {
		t.Error("subclass edges lost in round trip")
	}
	if !back.IsInstanceOf(ClassHigh, PIScoreClassification) {
		t.Error("individuals lost in round trip")
	}
	p, ok := back.Property(ContainsEvidence)
	if !ok || p.Domain != DataEntity || p.Range != QualityEvidence || !p.Object {
		t.Errorf("containsEvidence property lost: %+v ok=%v", p, ok)
	}
	if back.Label(HitRatio) != "Hit Ratio" {
		t.Error("labels lost in round trip")
	}
}

func TestCheckStatement(t *testing.T) {
	o := NewIQModel()
	hit := rdf.IRI("urn:lsid:uniprot.org:uniprot:P30089")
	o.MustAddIndividual(hit, ImprintHitEntry)
	ev := rdf.IRI("urn:ev:1")
	o.MustAddIndividual(ev, HitRatio)

	good := rdf.T(hit, ContainsEvidence, ev)
	if err := o.CheckStatement(good); err != nil {
		t.Errorf("valid statement rejected: %v", err)
	}
	// Literal object on an object property.
	if err := o.CheckStatement(rdf.T(hit, ContainsEvidence, rdf.Literal("0.9"))); err == nil {
		t.Error("literal object of object property should be rejected")
	}
	// Subject outside the domain.
	stranger := rdf.IRI("urn:not-a-data-entity")
	if err := o.CheckStatement(rdf.T(stranger, ContainsEvidence, ev)); err == nil {
		t.Error("out-of-domain subject should be rejected")
	}
	// Object outside the range.
	if err := o.CheckStatement(rdf.T(hit, ContainsEvidence, stranger)); err == nil {
		t.Error("out-of-range object should be rejected")
	}
	// Undeclared predicates pass (open world).
	if err := o.CheckStatement(rdf.T(stranger, rdf.IRI("urn:whatever"), rdf.Literal("x"))); err != nil {
		t.Errorf("undeclared predicate should pass: %v", err)
	}
	// Datatype property with non-literal object.
	if err := o.CheckStatement(rdf.T(ev, EvidenceValue, hit)); err == nil {
		t.Error("non-literal object of datatype property should be rejected")
	}
}

func TestIQModelShape(t *testing.T) {
	o := NewIQModel()
	// The taxonomy the paper's Figure 2 and §5.1 fragments rely on.
	subsumptions := []struct{ sub, sup rdf.Term }{
		{ImprintHitEntry, DataEntity},
		{HitRatio, QualityEvidence},
		{MassCoverage, QualityEvidence},
		{Coverage, QualityEvidence},
		{Masses, QualityEvidence},
		{PeptidesCount, QualityEvidence},
		{UniversalPIScore2, QualityAssertion},
		{UniversalPIScore2, UniversalPIScore},
		{HRScoreAssertion, QualityAssertion},
		{PIScoreClassifier, QualityAssertion},
		{PIScoreClassification, ClassificationModel},
		{ImprintOutputAnnotation, AnnotationFunction},
		{EvidenceCode, QualityEvidence},
		{CurationCredibility, QualityAssertion},
	}
	for _, s := range subsumptions {
		if !o.IsSubClassOf(s.sub, s.sup) {
			t.Errorf("%v should be a subclass of %v", s.sub, s.sup)
		}
	}
	// Classification labels are enumerated individuals of the model class.
	for _, cl := range []rdf.Term{ClassLow, ClassMid, ClassHigh} {
		if !o.IsInstanceOf(cl, PIScoreClassification) {
			t.Errorf("%v should be an individual of PIScoreClassification", cl)
		}
	}
	// Dimensions are individuals of QualityProperty.
	for _, dim := range []rdf.Term{Accuracy, Completeness, Currency, Credibility} {
		if !o.IsInstanceOf(dim, QualityProperty) {
			t.Errorf("%v should be a QualityProperty individual", dim)
		}
	}
}

func TestExpandQName(t *testing.T) {
	cases := map[string]string{
		"q:HitRatio":                  QuratorNS + "HitRatio",
		"HitRatio":                    QuratorNS + "HitRatio",
		"http://example.org/x":        "http://example.org/x",
		"urn:lsid:a.org:ns:obj":       "urn:lsid:a.org:ns:obj",
		"q:imprint-output-annotation": QuratorNS + "imprint-output-annotation",
	}
	for in, want := range cases {
		if got := ExpandQName(in); got.Value() != want {
			t.Errorf("ExpandQName(%q) = %q, want %q", in, got.Value(), want)
		}
	}
}

func TestUserExtension(t *testing.T) {
	// The model is user-extensible: a domain expert adds a new evidence
	// type and QA without touching the core (paper contribution #1).
	o := NewIQModel()
	labReputation := Q("LabReputation")
	o.MustDefineClass(labReputation, QualityEvidence)
	myQA := Q("MyLabReputationScore")
	o.MustDefineClass(myQA, QualityAssertion)
	if !o.IsSubClassOf(labReputation, QualityEvidence) {
		t.Error("user evidence extension failed")
	}
	// The new QA is discoverable among all QA classes.
	found := false
	for _, sub := range o.Subclasses(QualityAssertion) {
		if sub == myQA {
			found = true
		}
	}
	if !found {
		t.Error("user QA extension not discoverable via Subclasses")
	}
}

func BenchmarkIsSubClassOfDeep(b *testing.B) {
	o := New()
	prev := rdf.IRI("urn:C0")
	o.MustDefineClass(prev)
	var leaf rdf.Term
	for i := 1; i <= 100; i++ {
		leaf = rdf.IRI("urn:C" + string(rune('0'+i%10)) + "x")
		cur := Q(string(rune('a' + i%26)))
		_ = leaf
		next := rdf.IRI(prev.Value() + "x")
		o.MustDefineClass(next, prev)
		prev = next
		_ = cur
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.IsSubClassOf(prev, rdf.IRI("urn:C0"))
	}
}
