package ontology

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"qurator/internal/rdf"
)

// Property: subsumption over a randomly built (acyclic) taxonomy is a
// partial order — reflexive, transitive, and antisymmetric — and agrees
// with Superclasses/Subclasses closures.
func TestSubsumptionPartialOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		o := New()
		n := rng.Intn(20) + 2
		classes := make([]rdf.Term, n)
		for i := range classes {
			classes[i] = rdf.IRI(fmt.Sprintf("urn:C%d", i))
			// Acyclic by construction: parents have smaller indices.
			var supers []rdf.Term
			if i > 0 {
				for k := 0; k < rng.Intn(3); k++ {
					supers = append(supers, classes[rng.Intn(i)])
				}
			}
			if err := o.DefineClass(classes[i], supers...); err != nil {
				return false
			}
		}
		for _, a := range classes {
			if !o.IsSubClassOf(a, a) { // reflexive
				return false
			}
			for _, sup := range o.Superclasses(a) {
				if !o.IsSubClassOf(a, sup) { // closure agrees
					return false
				}
				// Antisymmetry: a proper superclass is never a subclass.
				if sup != a && o.IsSubClassOf(sup, a) {
					return false
				}
				// Transitivity: superclasses of superclasses included.
				for _, supsup := range o.Superclasses(sup) {
					if !o.IsSubClassOf(a, supsup) {
						return false
					}
				}
			}
			// Subclasses is the inverse relation.
			for _, sub := range o.Subclasses(a) {
				if !o.IsSubClassOf(sub, a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: ToGraph/FromGraph is lossless for random taxonomies with
// individuals.
func TestOntologyGraphRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		o := New()
		n := rng.Intn(12) + 1
		classes := make([]rdf.Term, n)
		for i := range classes {
			classes[i] = rdf.IRI(fmt.Sprintf("urn:C%d", i))
			var supers []rdf.Term
			if i > 0 && rng.Intn(2) == 0 {
				supers = append(supers, classes[rng.Intn(i)])
			}
			if err := o.DefineClass(classes[i], supers...); err != nil {
				return false
			}
		}
		for i := 0; i < rng.Intn(10); i++ {
			ind := rdf.IRI(fmt.Sprintf("urn:ind%d", i))
			o.MustAddIndividual(ind, classes[rng.Intn(n)])
		}
		back, err := FromGraph(o.ToGraph())
		if err != nil {
			return false
		}
		if len(back.Classes()) != len(o.Classes()) {
			return false
		}
		for _, a := range classes {
			for _, b := range classes {
				if o.IsSubClassOf(a, b) != back.IsSubClassOf(a, b) {
					return false
				}
			}
			if len(o.InstancesOf(a)) != len(back.InstancesOf(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
