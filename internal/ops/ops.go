// Package ops implements Qurator's abstract quality operators (paper §4.1,
// Figure 4): Quality Assertion, Annotation, Data Enrichment, and the
// condition/action operators (data filtering and data splitting). These are
// the building blocks that quality views compose; the compiler
// (internal/compiler) maps each to a workflow processor backed by a
// service (internal/services).
//
// All operators exchange annotation maps (internal/evidence.Map): the data
// set D is the map's ordered item list, and evidence values, QA score tags
// and classifications are the map's columns.
package ops

import (
	"fmt"

	"qurator/internal/annotstore"
	"qurator/internal/condition"
	"qurator/internal/evidence"
	"qurator/internal/rdf"
)

// QualityAssertion is the QA operator type: a decision model that
// associates class values or scores with each data item based on a vector
// of evidence values. QAs are collection-scoped — they may consult the
// whole map (e.g. classification thresholds derived from the score
// distribution) — and, to the extent the decision depends only on
// evidence, they are reusable across data sets (paper §4.1).
type QualityAssertion interface {
	// Class returns the QA's class in the IQ ontology (a subclass of
	// q:QualityAssertion).
	Class() rdf.Term
	// Requires lists the evidence types the QA reads.
	Requires() []rdf.Term
	// Provides lists the map keys the QA writes (score tags and/or
	// classification models).
	Provides() []rdf.Term
	// Assert computes the QA over the whole collection, augmenting the
	// input map with new mappings {d → (tag, value)} / {d → (model, cl)}.
	Assert(m *evidence.Map) error
}

// ItemWise is an optional interface for QualityAssertion implementations
// that declare their decision for each item depends only on that item's
// evidence row — never on the rest of the collection. The enactment data
// plane may shard item-wise operators across workers without changing
// their output; collection-scoped operators (e.g. the §5.1 classifier,
// whose thresholds derive from the whole score distribution) must see the
// entire map at once. Operators that do not implement ItemWise are
// treated as collection-scoped — the conservative default.
type ItemWise interface {
	ItemWise() bool
}

// IsItemWise reports whether v declares itself item-wise via the ItemWise
// interface; absent a declaration it returns false (collection scope).
func IsItemWise(v any) bool {
	iw, ok := v.(ItemWise)
	return ok && iw.ItemWise()
}

// Annotator is the Annotation operator type: it computes a new association
// map of evidence values for its declared evidence types and stores it in
// a repository. Annotators are user-defined, domain- AND data-specific
// (paper §4.1: they offer few opportunities for reuse).
type Annotator interface {
	// Class returns the annotator's class in the IQ ontology (a subclass
	// of q:AnnotationFunction).
	Class() rdf.Term
	// Provides lists the evidence types the annotator computes.
	Provides() []rdf.Term
	// Annotate computes evidence for the items and writes it to repo.
	Annotate(items []evidence.Item, repo annotstore.Store) error
}

// AnnotatorFunc adapts a function to the Annotator interface.
type AnnotatorFunc struct {
	ClassIRI rdf.Term
	Types    []rdf.Term
	Fn       func(items []evidence.Item, repo annotstore.Store) error
}

// Class implements Annotator.
func (a AnnotatorFunc) Class() rdf.Term { return a.ClassIRI }

// Provides implements Annotator.
func (a AnnotatorFunc) Provides() []rdf.Term { return a.Types }

// Annotate implements Annotator. A nil Fn annotates nothing — the stub
// shape used when evidence is preloaded or arrives inline with the items
// (cmd/qvrun's CSV mode, the streaming enactor's NDJSON mode).
func (a AnnotatorFunc) Annotate(items []evidence.Item, repo annotstore.Store) error {
	if a.Fn == nil {
		return nil
	}
	return a.Fn(items, repo)
}

// EvidenceSource names the repository holding values of one evidence type.
type EvidenceSource struct {
	Type       rdf.Term
	Repository annotstore.Store
}

// DataEnrichment is the pre-defined, non-extensible operator that fetches
// pre-computed annotations from repositories, keyed by (d ∈ D, e ∈ E)
// (paper §4.1). The quality-view compiler configures a single enrichment
// operator with the evidence-type → repository association it derives from
// the annotator and QA declarations (paper §6.1).
type DataEnrichment struct {
	Sources []EvidenceSource
}

// Enrich fills the map with stored values for every configured evidence
// type, returning the number of values added.
func (d *DataEnrichment) Enrich(m *evidence.Map) (int, error) {
	n := 0
	for _, src := range d.Sources {
		if src.Repository == nil {
			return n, fmt.Errorf("ops: enrichment source for %v has no repository", src.Type)
		}
		n += src.Repository.Enrich(m, []rdf.Term{src.Type})
	}
	return n, nil
}

// Types returns the evidence types the enrichment fetches.
func (d *DataEnrichment) Types() []rdf.Term {
	out := make([]rdf.Term, len(d.Sources))
	for i, s := range d.Sources {
		out[i] = s.Type
	}
	return out
}

// Consolidate merges the annotation maps produced by multiple QAs over the
// same data set into one consistent view — the ConsolidateAssertions task
// the compiler inserts after the QA fan-out (paper §6.1). Later maps win
// on key conflicts.
func Consolidate(maps ...*evidence.Map) *evidence.Map {
	out := evidence.NewMap()
	for _, m := range maps {
		if m != nil {
			out.Merge(m)
		}
	}
	return out
}

// ErrorPolicy controls what a condition evaluation error (typically a
// missing evidence value) means during an action.
type ErrorPolicy int

const (
	// ErrorRejects treats an erroring condition as false for that item —
	// the item does not enter the group. This is the default: items
	// without the evidence a criterion needs are not acceptable under it.
	ErrorRejects ErrorPolicy = iota
	// ErrorFails aborts the action on the first evaluation error.
	ErrorFails
)

// Filter is the data-filtering action (§4.1): a single condition; items
// satisfying it are kept, the rest are discarded.
type Filter struct {
	Cond condition.Expr
	// Vars resolves condition identifiers to map keys.
	Vars condition.Bindings
	// OnError selects the error policy (default ErrorRejects).
	OnError ErrorPolicy
}

// Apply returns the filtered map (a new map; the input is unchanged).
func (f *Filter) Apply(m *evidence.Map) (*evidence.Map, error) {
	if f.Cond == nil {
		return nil, fmt.Errorf("ops: filter has no condition")
	}
	var kept []evidence.Item
	for _, item := range m.Items() {
		ok, err := f.Cond.Eval(&condition.Context{Amap: m, Item: item, Vars: f.Vars})
		if err != nil {
			if f.OnError == ErrorFails {
				return nil, fmt.Errorf("ops: filter condition on %v: %w", item, err)
			}
			continue
		}
		if ok {
			kept = append(kept, item)
		}
	}
	return m.Project(kept), nil
}

// SplitGroup is one named branch of a splitter.
type SplitGroup struct {
	Name string
	Cond condition.Expr
}

// Splitter is the data-splitting action (§4.1): it splits an input data
// set into groups D1..Dk (not necessarily disjoint — an item may satisfy
// several conditions) plus a default group holding the items that satisfy
// none.
type Splitter struct {
	Groups []SplitGroup
	// DefaultName names the k+1-th group (default "default").
	DefaultName string
	Vars        condition.Bindings
	OnError     ErrorPolicy
}

// SplitResult maps group names to their (Di, Amap_i) output pairs.
type SplitResult map[string]*evidence.Map

// Apply splits the map. Every output group carries the full evidence rows
// of its items.
func (s *Splitter) Apply(m *evidence.Map) (SplitResult, error) {
	if len(s.Groups) == 0 {
		return nil, fmt.Errorf("ops: splitter has no groups")
	}
	defaultName := s.DefaultName
	if defaultName == "" {
		defaultName = "default"
	}
	members := make(map[string][]evidence.Item, len(s.Groups)+1)
	for _, item := range m.Items() {
		matched := false
		for _, g := range s.Groups {
			ok, err := g.Cond.Eval(&condition.Context{Amap: m, Item: item, Vars: s.Vars})
			if err != nil {
				if s.OnError == ErrorFails {
					return nil, fmt.Errorf("ops: splitter condition %q on %v: %w", g.Name, item, err)
				}
				continue
			}
			if ok {
				members[g.Name] = append(members[g.Name], item)
				matched = true
			}
		}
		if !matched {
			members[defaultName] = append(members[defaultName], item)
		}
	}
	out := make(SplitResult, len(s.Groups)+1)
	for _, g := range s.Groups {
		out[g.Name] = m.Project(members[g.Name])
	}
	out[defaultName] = m.Project(members[defaultName])
	return out, nil
}

// TopK is the ranking-based retention action the paper mentions ("retain
// the top-k data items, relative to a custom ranking computed by a QA").
type TopK struct {
	// Key is the score tag to rank by (higher is better).
	Key rdf.Term
	K   int
}

// Apply returns a map with at most K items, ordered by descending score.
// Items lacking a numeric score rank below all scored items and are
// dropped first.
func (t *TopK) Apply(m *evidence.Map) (*evidence.Map, error) {
	if t.K < 0 {
		return nil, fmt.Errorf("ops: top-k with negative k")
	}
	items, scores := m.FloatColumn(t.Key)
	idx := make([]int, len(items))
	for i := range idx {
		idx[i] = i
	}
	// Stable selection: sort by score descending, preserving input order
	// on ties (the input is a ranked list already).
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && scores[idx[j]] > scores[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	k := t.K
	if k > len(idx) {
		k = len(idx)
	}
	kept := make([]evidence.Item, k)
	for i := 0; i < k; i++ {
		kept[i] = items[idx[i]]
	}
	return m.Project(kept), nil
}

// Process is a ready-to-run quality process following the general pattern
// of paper Figure 3: annotate → enrich → assert (fan-out) → consolidate →
// act. It is the in-memory counterpart of a compiled quality workflow and
// the reference semantics the compiler's output is tested against.
type Process struct {
	Annotators []Annotator
	AnnotateTo annotstore.Store
	Enrichment *DataEnrichment
	Assertions []QualityAssertion
	FilterStep *Filter
	SplitStep  *Splitter
}

// Run executes the process over a data set, returning the final annotation
// map (after filtering) and, if a splitter is configured, the split groups.
func (p *Process) Run(items []evidence.Item) (*evidence.Map, SplitResult, error) {
	// 1. Compute new metadata values using annotation functions.
	for _, a := range p.Annotators {
		if p.AnnotateTo == nil {
			return nil, nil, fmt.Errorf("ops: process has annotators but no target repository")
		}
		if err := a.Annotate(items, p.AnnotateTo); err != nil {
			return nil, nil, fmt.Errorf("ops: annotator %v: %w", a.Class(), err)
		}
	}
	// 2. Retrieve previously computed values from repositories.
	m := evidence.NewMap(items...)
	if p.Enrichment != nil {
		if _, err := p.Enrichment.Enrich(m); err != nil {
			return nil, nil, err
		}
	}
	// 3. Compute the QA functions; each QA sees the enriched map, and
	// their outputs are consolidated into one view.
	consolidated := m.Clone()
	for _, qa := range p.Assertions {
		branch := m.Clone()
		if err := qa.Assert(branch); err != nil {
			return nil, nil, fmt.Errorf("ops: QA %v: %w", qa.Class(), err)
		}
		consolidated = Consolidate(consolidated, branch)
	}
	// 4. Evaluate quality conditions and execute the actions.
	result := consolidated
	if p.FilterStep != nil {
		filtered, err := p.FilterStep.Apply(result)
		if err != nil {
			return nil, nil, err
		}
		result = filtered
	}
	var split SplitResult
	if p.SplitStep != nil {
		var err error
		split, err = p.SplitStep.Apply(result)
		if err != nil {
			return nil, nil, err
		}
	}
	return result, split, nil
}
