package ops

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"qurator/internal/annotstore"
	"qurator/internal/condition"
	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/rdf"
)

func item(i int) evidence.Item {
	return rdf.IRI(fmt.Sprintf("urn:lsid:test.org:item:%d", i))
}

// scoredMap builds a map of n items with HR evidence i/n and a score tag
// equal to i.
func scoredMap(n int) *evidence.Map {
	m := evidence.NewMap()
	for i := 0; i < n; i++ {
		m.Set(item(i), ontology.HitRatio, evidence.Float(float64(i)/float64(n)))
		m.Set(item(i), ontology.Q("tag/score"), evidence.Float(float64(i)))
	}
	return m
}

func TestFilterKeepsMatchingItems(t *testing.T) {
	m := scoredMap(10)
	f := &Filter{
		Cond: condition.MustParse("score >= 5"),
		Vars: condition.Bindings{"score": ontology.Q("tag/score")},
	}
	out, err := f.Apply(m)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if out.Len() != 5 {
		t.Fatalf("kept %d items, want 5", out.Len())
	}
	// Input unchanged; output preserves order and evidence.
	if m.Len() != 10 {
		t.Error("filter mutated its input")
	}
	if !out.Get(item(5), ontology.HitRatio).Equal(evidence.Float(0.5)) {
		t.Error("filter dropped evidence")
	}
	if !reflect.DeepEqual(out.Items()[0], item(5)) {
		t.Errorf("order not preserved: %v", out.Items())
	}
}

func TestFilterErrorPolicies(t *testing.T) {
	m := scoredMap(3)
	m.AddItem(item(99)) // no evidence at all
	cond := condition.MustParse("score >= 0")
	vars := condition.Bindings{"score": ontology.Q("tag/score")}

	rejects := &Filter{Cond: cond, Vars: vars, OnError: ErrorRejects}
	out, err := rejects.Apply(m)
	if err != nil {
		t.Fatalf("ErrorRejects should not fail: %v", err)
	}
	if out.Len() != 3 {
		t.Errorf("ErrorRejects kept %d, want 3 (item without evidence rejected)", out.Len())
	}

	fails := &Filter{Cond: cond, Vars: vars, OnError: ErrorFails}
	if _, err := fails.Apply(m); err == nil {
		t.Error("ErrorFails should surface the evaluation error")
	}

	if _, err := (&Filter{}).Apply(m); err == nil {
		t.Error("filter without condition should fail")
	}
}

func TestSplitterGroupsAndDefault(t *testing.T) {
	m := scoredMap(10)
	s := &Splitter{
		Groups: []SplitGroup{
			{Name: "high", Cond: condition.MustParse("score >= 7")},
			{Name: "even", Cond: condition.MustParse("score in 0, 2, 4, 6, 8")},
		},
		Vars: condition.Bindings{"score": ontology.Q("tag/score")},
	}
	out, err := s.Apply(m)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if len(out) != 3 {
		t.Fatalf("groups = %v, want high/even/default", keys(out))
	}
	if out["high"].Len() != 3 {
		t.Errorf("high has %d items, want 3 (7,8,9)", out["high"].Len())
	}
	if out["even"].Len() != 5 {
		t.Errorf("even has %d items, want 5", out["even"].Len())
	}
	// Groups are not necessarily disjoint: 8 is in both.
	if !out["high"].HasItem(item(8)) || !out["even"].HasItem(item(8)) {
		t.Error("item 8 should be in both groups")
	}
	// Default gets items matching nothing: odd numbers < 7 → 1, 3, 5.
	if out["default"].Len() != 3 {
		t.Errorf("default has %d items, want 3: %v", out["default"].Len(), out["default"].Items())
	}
	// Union of all groups covers all items.
	covered := map[evidence.Item]bool{}
	for _, g := range out {
		for _, it := range g.Items() {
			covered[it] = true
		}
	}
	if len(covered) != 10 {
		t.Errorf("union covers %d items, want 10", len(covered))
	}
}

func TestSplitterCustomDefaultNameAndErrors(t *testing.T) {
	m := scoredMap(2)
	s := &Splitter{
		Groups:      []SplitGroup{{Name: "none", Cond: condition.MustParse("score > 100")}},
		DefaultName: "rest",
		Vars:        condition.Bindings{"score": ontology.Q("tag/score")},
	}
	out, err := s.Apply(m)
	if err != nil {
		t.Fatal(err)
	}
	if out["rest"].Len() != 2 || out["none"].Len() != 0 {
		t.Errorf("groups: rest=%d none=%d", out["rest"].Len(), out["none"].Len())
	}
	if _, err := (&Splitter{}).Apply(m); err == nil {
		t.Error("splitter without groups should fail")
	}
}

func TestTopK(t *testing.T) {
	m := scoredMap(10)
	top, err := (&TopK{Key: ontology.Q("tag/score"), K: 3}).Apply(m)
	if err != nil {
		t.Fatal(err)
	}
	want := []evidence.Item{item(9), item(8), item(7)}
	if !reflect.DeepEqual(top.Items(), want) {
		t.Errorf("TopK items = %v, want %v", top.Items(), want)
	}
	// k larger than the collection keeps everything scored.
	all, err := (&TopK{Key: ontology.Q("tag/score"), K: 100}).Apply(m)
	if err != nil {
		t.Fatal(err)
	}
	if all.Len() != 10 {
		t.Errorf("TopK(100) kept %d", all.Len())
	}
	if _, err := (&TopK{Key: ontology.Q("tag/score"), K: -1}).Apply(m); err == nil {
		t.Error("negative k should fail")
	}
	// Unscored items are dropped.
	m.AddItem(item(99))
	top, err = (&TopK{Key: ontology.Q("tag/score"), K: 11}).Apply(m)
	if err != nil {
		t.Fatal(err)
	}
	if top.HasItem(item(99)) {
		t.Error("unscored item should not survive TopK")
	}
}

func TestTopKStableOnTies(t *testing.T) {
	m := evidence.NewMap()
	for i := 0; i < 5; i++ {
		m.Set(item(i), ontology.Q("tag/score"), evidence.Float(1))
	}
	top, err := (&TopK{Key: ontology.Q("tag/score"), K: 3}).Apply(m)
	if err != nil {
		t.Fatal(err)
	}
	want := []evidence.Item{item(0), item(1), item(2)}
	if !reflect.DeepEqual(top.Items(), want) {
		t.Errorf("ties should preserve input order: %v", top.Items())
	}
}

func TestDataEnrichment(t *testing.T) {
	cache := annotstore.New("cache", false)
	persistent := annotstore.New("default", true)
	for i := 0; i < 3; i++ {
		cache.Put(annotstore.Annotation{Item: item(i), Type: ontology.HitRatio, Value: evidence.Float(float64(i))})
		persistent.Put(annotstore.Annotation{Item: item(i), Type: ontology.EvidenceCode, Value: evidence.String_("TAS")})
	}
	de := &DataEnrichment{Sources: []EvidenceSource{
		{Type: ontology.HitRatio, Repository: cache},
		{Type: ontology.EvidenceCode, Repository: persistent},
	}}
	m := evidence.NewMap(item(0), item(1), item(2))
	n, err := de.Enrich(m)
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Errorf("Enrich added %d, want 6", n)
	}
	if got := de.Types(); len(got) != 2 {
		t.Errorf("Types = %v", got)
	}
	// Missing repository is an error.
	bad := &DataEnrichment{Sources: []EvidenceSource{{Type: ontology.HitRatio}}}
	if _, err := bad.Enrich(m); err == nil {
		t.Error("nil repository should fail")
	}
}

func TestConsolidate(t *testing.T) {
	a := evidence.NewMap(item(1))
	a.Set(item(1), ontology.Q("tag/s1"), evidence.Float(1))
	b := evidence.NewMap(item(1), item(2))
	b.Set(item(1), ontology.Q("tag/s2"), evidence.Float(2))
	b.SetClass(item(2), ontology.PIScoreClassification, ontology.ClassHigh)
	out := Consolidate(a, b, nil)
	if out.Len() != 2 {
		t.Fatalf("Len = %d", out.Len())
	}
	if !out.Has(item(1), ontology.Q("tag/s1")) || !out.Has(item(1), ontology.Q("tag/s2")) {
		t.Error("consolidation lost a QA column")
	}
	if out.Class(item(2), ontology.PIScoreClassification) != ontology.ClassHigh {
		t.Error("consolidation lost a class assignment")
	}
}

// fakeQA tags every item with a constant.
type fakeQA struct {
	tag rdf.Term
	val float64
	err error
}

func (f fakeQA) Class() rdf.Term      { return ontology.Q("FakeQA") }
func (f fakeQA) Requires() []rdf.Term { return []rdf.Term{ontology.HitRatio} }
func (f fakeQA) Provides() []rdf.Term { return []rdf.Term{f.tag} }
func (f fakeQA) Assert(m *evidence.Map) error {
	if f.err != nil {
		return f.err
	}
	for _, it := range m.Items() {
		m.Set(it, f.tag, evidence.Float(f.val))
	}
	return nil
}

func TestProcessRunEndToEnd(t *testing.T) {
	// The Figure 3 pattern: annotate → enrich → assert ×2 → filter → split.
	cache := annotstore.New("cache", false)
	annotator := AnnotatorFunc{
		ClassIRI: ontology.ImprintOutputAnnotation,
		Types:    []rdf.Term{ontology.HitRatio},
		Fn: func(items []evidence.Item, repo annotstore.Store) error {
			for i, it := range items {
				if err := repo.Put(annotstore.Annotation{
					Item: it, Type: ontology.HitRatio, Value: evidence.Float(float64(i) / 10),
				}); err != nil {
					return err
				}
			}
			return nil
		},
	}
	p := &Process{
		Annotators: []Annotator{annotator},
		AnnotateTo: cache,
		Enrichment: &DataEnrichment{Sources: []EvidenceSource{{Type: ontology.HitRatio, Repository: cache}}},
		Assertions: []QualityAssertion{
			fakeQA{tag: ontology.Q("tag/a"), val: 1},
			fakeQA{tag: ontology.Q("tag/b"), val: 2},
		},
		FilterStep: &Filter{
			Cond: condition.MustParse("HitRatio >= 0.5"),
			Vars: condition.Bindings{"HitRatio": ontology.HitRatio},
		},
		SplitStep: &Splitter{
			Groups: []SplitGroup{{Name: "top", Cond: condition.MustParse("HitRatio >= 0.8")}},
			Vars:   condition.Bindings{"HitRatio": ontology.HitRatio},
		},
	}
	items := make([]evidence.Item, 10)
	for i := range items {
		items[i] = item(i)
	}
	final, split, err := p.Run(items)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if final.Len() != 5 {
		t.Errorf("filter kept %d, want 5", final.Len())
	}
	// Both QA columns present on survivors.
	for _, it := range final.Items() {
		if !final.Has(it, ontology.Q("tag/a")) || !final.Has(it, ontology.Q("tag/b")) {
			t.Errorf("QA columns missing on %v", it)
		}
	}
	if split["top"].Len() != 2 { // 0.8 and 0.9
		t.Errorf("top split has %d items", split["top"].Len())
	}
	if split["default"].Len() != 3 {
		t.Errorf("default split has %d items", split["default"].Len())
	}
}

func TestProcessErrors(t *testing.T) {
	p := &Process{Annotators: []Annotator{AnnotatorFunc{Fn: func([]evidence.Item, annotstore.Store) error { return nil }}}}
	if _, _, err := p.Run([]evidence.Item{item(0)}); err == nil {
		t.Error("annotator without repository should fail")
	}
	boom := errors.New("boom")
	p = &Process{Assertions: []QualityAssertion{fakeQA{err: boom}}}
	if _, _, err := p.Run([]evidence.Item{item(0)}); !errors.Is(err, boom) {
		t.Errorf("QA error should propagate, got %v", err)
	}
}

// Property (Figure 4 operator law): filtering is idempotent and its output
// is always a subset of its input.
func TestFilterIdempotentProperty(t *testing.T) {
	f := func(seed uint8, cut uint8) bool {
		n := int(seed%30) + 1
		threshold := float64(cut % 30)
		m := evidence.NewMap()
		for i := 0; i < n; i++ {
			m.Set(item(i), ontology.Q("tag/score"), evidence.Float(float64(i)))
		}
		flt := &Filter{
			Cond: condition.MustParse(fmt.Sprintf("score >= %g", threshold)),
			Vars: condition.Bindings{"score": ontology.Q("tag/score")},
		}
		once, err := flt.Apply(m)
		if err != nil {
			return false
		}
		twice, err := flt.Apply(once)
		if err != nil {
			return false
		}
		if !reflect.DeepEqual(once.Items(), twice.Items()) {
			return false
		}
		for _, it := range once.Items() {
			if !m.HasItem(it) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the splitter's groups plus default always cover the input set.
func TestSplitterCoverageProperty(t *testing.T) {
	f := func(seed uint8, cut uint8) bool {
		n := int(seed%30) + 1
		m := evidence.NewMap()
		for i := 0; i < n; i++ {
			m.Set(item(i), ontology.Q("tag/score"), evidence.Float(float64(i)))
		}
		s := &Splitter{
			Groups: []SplitGroup{
				{Name: "a", Cond: condition.MustParse(fmt.Sprintf("score >= %d", cut%30))},
				{Name: "b", Cond: condition.MustParse("score < 5")},
			},
			Vars: condition.Bindings{"score": ontology.Q("tag/score")},
		}
		out, err := s.Apply(m)
		if err != nil {
			return false
		}
		covered := map[evidence.Item]bool{}
		for _, g := range out {
			for _, it := range g.Items() {
				if !m.HasItem(it) {
					return false
				}
				covered[it] = true
			}
		}
		return len(covered) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func keys(m SplitResult) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func BenchmarkFilter1000(b *testing.B) {
	m := scoredMap(1000)
	f := &Filter{
		Cond: condition.MustParse("score >= 500"),
		Vars: condition.Bindings{"score": ontology.Q("tag/score")},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := f.Apply(m); err != nil {
			b.Fatal(err)
		}
	}
}
