// Package pedro simulates the PEDRo proteomics database (paper reference
// [11]): a store of proteomics experiments, their samples (gel spots) and
// the peak lists produced for them. The running example's workflow begins
// by retrieving "a set of peak lists ... from the Pedro database"
// (paper §1.1); this package is that retrieval source.
package pedro

import (
	"fmt"
	"sort"
	"sync"

	"qurator/internal/proteomics"
)

// Spot is one 2-D gel spot: the unit a PMF experiment identifies.
type Spot struct {
	// ID is unique within the experiment.
	ID string
	// PeakList is the spot's mass spectrum.
	PeakList proteomics.PeakList
	// TrueProteins records the ground-truth accessions present in the
	// spot — available because our samples are synthetic; it is never
	// shown to the identification pipeline, only to the evaluation
	// harness.
	TrueProteins []string
}

// Experiment groups the spots of one wet-lab experiment.
type Experiment struct {
	// ID is the experiment accession.
	ID string
	// Description is free text (lab, organism, method).
	Description string
	Spots       []Spot
}

// DB is an in-memory PEDRo instance. Safe for concurrent use.
type DB struct {
	mu          sync.RWMutex
	experiments map[string]*Experiment
}

// New returns an empty database.
func New() *DB {
	return &DB{experiments: make(map[string]*Experiment)}
}

// PutExperiment stores (or replaces) an experiment.
func (db *DB) PutExperiment(e *Experiment) error {
	if e == nil || e.ID == "" {
		return fmt.Errorf("pedro: experiment without ID")
	}
	seen := map[string]bool{}
	for _, s := range e.Spots {
		if s.ID == "" {
			return fmt.Errorf("pedro: experiment %s has a spot without ID", e.ID)
		}
		if seen[s.ID] {
			return fmt.Errorf("pedro: experiment %s has duplicate spot %q", e.ID, s.ID)
		}
		seen[s.ID] = true
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	cp := *e
	cp.Spots = append([]Spot(nil), e.Spots...)
	db.experiments[e.ID] = &cp
	return nil
}

// Experiment retrieves an experiment by ID.
func (db *DB) Experiment(id string) (*Experiment, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	e, ok := db.experiments[id]
	if !ok {
		return nil, false
	}
	cp := *e
	cp.Spots = append([]Spot(nil), e.Spots...)
	return &cp, true
}

// Experiments lists the stored experiment IDs, sorted.
func (db *DB) Experiments() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.experiments))
	for id := range db.experiments {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// PeakLists returns the peak lists of an experiment in spot order — the
// first step of the ISPIDER workflow (Figure 1).
func (db *DB) PeakLists(experimentID string) ([]proteomics.PeakList, error) {
	e, ok := db.Experiment(experimentID)
	if !ok {
		return nil, fmt.Errorf("pedro: unknown experiment %q", experimentID)
	}
	out := make([]proteomics.PeakList, len(e.Spots))
	for i, s := range e.Spots {
		out[i] = s.PeakList
	}
	return out, nil
}

// Spot retrieves one spot of an experiment.
func (db *DB) Spot(experimentID, spotID string) (Spot, bool) {
	e, ok := db.Experiment(experimentID)
	if !ok {
		return Spot{}, false
	}
	for _, s := range e.Spots {
		if s.ID == spotID {
			return s, true
		}
	}
	return Spot{}, false
}
