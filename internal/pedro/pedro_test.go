package pedro

import (
	"reflect"
	"testing"

	"qurator/internal/proteomics"
)

func sampleExperiment() *Experiment {
	return &Experiment{
		ID:          "EXP001",
		Description: "synthetic PMF run",
		Spots: []Spot{
			{ID: "spot1", PeakList: proteomics.PeakList{SpotID: "spot1", Peaks: []proteomics.Peak{{MZ: 1000}}}},
			{ID: "spot2", PeakList: proteomics.PeakList{SpotID: "spot2", Peaks: []proteomics.Peak{{MZ: 2000}, {MZ: 2100}}}},
		},
	}
}

func TestPutGetExperiment(t *testing.T) {
	db := New()
	if err := db.PutExperiment(sampleExperiment()); err != nil {
		t.Fatal(err)
	}
	e, ok := db.Experiment("EXP001")
	if !ok {
		t.Fatal("experiment not found")
	}
	if e.Description != "synthetic PMF run" || len(e.Spots) != 2 {
		t.Errorf("experiment = %+v", e)
	}
	if _, ok := db.Experiment("ghost"); ok {
		t.Error("missing experiment should not be found")
	}
	if got := db.Experiments(); !reflect.DeepEqual(got, []string{"EXP001"}) {
		t.Errorf("Experiments = %v", got)
	}
}

func TestPutExperimentValidation(t *testing.T) {
	db := New()
	if err := db.PutExperiment(nil); err == nil {
		t.Error("nil experiment should fail")
	}
	if err := db.PutExperiment(&Experiment{}); err == nil {
		t.Error("empty ID should fail")
	}
	if err := db.PutExperiment(&Experiment{ID: "E", Spots: []Spot{{ID: ""}}}); err == nil {
		t.Error("spot without ID should fail")
	}
	if err := db.PutExperiment(&Experiment{ID: "E", Spots: []Spot{{ID: "a"}, {ID: "a"}}}); err == nil {
		t.Error("duplicate spot IDs should fail")
	}
}

func TestPeakListsInSpotOrder(t *testing.T) {
	db := New()
	db.PutExperiment(sampleExperiment())
	pls, err := db.PeakLists("EXP001")
	if err != nil {
		t.Fatal(err)
	}
	if len(pls) != 2 || pls[0].SpotID != "spot1" || pls[1].SpotID != "spot2" {
		t.Errorf("PeakLists = %v", pls)
	}
	if _, err := db.PeakLists("ghost"); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestSpotLookup(t *testing.T) {
	db := New()
	db.PutExperiment(sampleExperiment())
	s, ok := db.Spot("EXP001", "spot2")
	if !ok || len(s.PeakList.Peaks) != 2 {
		t.Errorf("Spot = %+v, %v", s, ok)
	}
	if _, ok := db.Spot("EXP001", "ghost"); ok {
		t.Error("missing spot should not be found")
	}
	if _, ok := db.Spot("ghost", "spot1"); ok {
		t.Error("missing experiment should not be found")
	}
}

func TestExperimentIsolation(t *testing.T) {
	// Mutating the retrieved copy must not change the store.
	db := New()
	db.PutExperiment(sampleExperiment())
	e, _ := db.Experiment("EXP001")
	e.Spots[0].ID = "hacked"
	again, _ := db.Experiment("EXP001")
	if again.Spots[0].ID != "spot1" {
		t.Error("store leaked internal state")
	}
	// Mutating the input after Put must not change the store either.
	src := sampleExperiment()
	src.ID = "EXP002"
	db.PutExperiment(src)
	src.Spots[0].ID = "hacked"
	stored, _ := db.Experiment("EXP002")
	if stored.Spots[0].ID != "spot1" {
		t.Error("store aliased caller's slice")
	}
}
