// Package proteomics implements the wet-lab substrate that the Qurator
// running example depends on (paper §1.1): proteins, in-silico tryptic
// digestion, peptide mass computation, and synthetic mass-spectrometry
// peak lists with the error sources the paper names — biological
// contamination, technological noise, and incomplete measurements — under
// experimenter control, so that the Figure 7 experiment has a known
// ground truth.
package proteomics

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// monoisotopicResidue maps amino-acid single-letter codes to their
// monoisotopic residue masses (Da).
var monoisotopicResidue = map[byte]float64{
	'G': 57.02146, 'A': 71.03711, 'S': 87.03203, 'P': 97.05276,
	'V': 99.06841, 'T': 101.04768, 'C': 103.00919, 'L': 113.08406,
	'I': 113.08406, 'N': 114.04293, 'D': 115.02694, 'Q': 128.05858,
	'K': 128.09496, 'E': 129.04259, 'M': 131.04049, 'H': 137.05891,
	'F': 147.06841, 'R': 156.10111, 'Y': 163.06333, 'W': 186.07931,
}

// Physical constants (Da).
const (
	WaterMass  = 18.010565
	ProtonMass = 1.007276
)

// Residues is the amino-acid alphabet in a fixed order.
const Residues = "ACDEFGHIKLMNPQRSTVWY"

// Protein is a reference-database entry.
type Protein struct {
	// Accession is the database accession number (e.g. "P30089").
	Accession string
	// Name is a human-readable description.
	Name string
	// Sequence is the amino-acid sequence (single-letter codes).
	Sequence string
}

// Validate checks the sequence alphabet.
func (p Protein) Validate() error {
	if p.Accession == "" {
		return fmt.Errorf("proteomics: protein without accession")
	}
	if len(p.Sequence) == 0 {
		return fmt.Errorf("proteomics: protein %s has empty sequence", p.Accession)
	}
	for i := 0; i < len(p.Sequence); i++ {
		if _, ok := monoisotopicResidue[p.Sequence[i]]; !ok {
			return fmt.Errorf("proteomics: protein %s has unknown residue %q at %d",
				p.Accession, p.Sequence[i], i)
		}
	}
	return nil
}

// Mass returns the protein's monoisotopic mass (Da).
func (p Protein) Mass() float64 {
	return SequenceMass(p.Sequence)
}

// SequenceMass computes the monoisotopic mass of a peptide/protein
// sequence (residues + one water).
func SequenceMass(seq string) float64 {
	m := WaterMass
	for i := 0; i < len(seq); i++ {
		m += monoisotopicResidue[seq[i]]
	}
	return m
}

// Peptide is one proteolytic fragment.
type Peptide struct {
	Sequence string
	// Start is the 0-based offset of the peptide in the parent sequence.
	Start int
	// MissedCleavages counts internal K/R sites not cleaved.
	MissedCleavages int
}

// Mass returns the peptide's monoisotopic mass.
func (p Peptide) Mass() float64 { return SequenceMass(p.Sequence) }

// MZ returns the singly-protonated m/z ([M+H]+).
func (p Peptide) MZ() float64 { return p.Mass() + ProtonMass }

// Digest performs an in-silico tryptic digestion: cleavage C-terminal to
// K or R, except when the next residue is P; up to missedCleavages
// missed sites are included (PMF search engines typically allow 0–2).
// Fragments shorter than minLen residues are discarded (they fall below
// the spectrometer's usable range).
func Digest(seq string, missedCleavages, minLen int) []Peptide {
	if minLen < 1 {
		minLen = 1
	}
	// Find cleavage boundaries.
	var cuts []int // index after which we cut
	for i := 0; i < len(seq)-1; i++ {
		if (seq[i] == 'K' || seq[i] == 'R') && seq[i+1] != 'P' {
			cuts = append(cuts, i)
		}
	}
	// Base fragments between consecutive cuts.
	starts := append([]int{0}, nil...)
	for _, c := range cuts {
		starts = append(starts, c+1)
	}
	ends := make([]int, 0, len(starts))
	for _, c := range cuts {
		ends = append(ends, c+1)
	}
	ends = append(ends, len(seq))

	var out []Peptide
	for i := range starts {
		for mc := 0; mc <= missedCleavages && i+mc < len(ends); mc++ {
			frag := seq[starts[i]:ends[i+mc]]
			if len(frag) < minLen {
				continue
			}
			out = append(out, Peptide{Sequence: frag, Start: starts[i], MissedCleavages: mc})
		}
	}
	return out
}

// Peak is one mass-spectrum peak.
type Peak struct {
	// MZ is the mass-to-charge ratio ([M+H]+ for singly-charged ions).
	MZ float64
	// Intensity is the relative ion count (arbitrary units).
	Intensity float64
}

// PeakList is a mass spectrum: the data-intensive representation of a
// protein spot (paper §1.1: "a representation of its protein components
// as a list of individual masses").
type PeakList struct {
	// SpotID identifies the gel spot / sample the spectrum came from.
	SpotID string
	Peaks  []Peak
}

// SortByMZ orders the peaks by ascending m/z.
func (pl *PeakList) SortByMZ() {
	sort.Slice(pl.Peaks, func(i, j int) bool { return pl.Peaks[i].MZ < pl.Peaks[j].MZ })
}

// MZValues returns the peak m/z values in current order.
func (pl *PeakList) MZValues() []float64 {
	out := make([]float64, len(pl.Peaks))
	for i, p := range pl.Peaks {
		out[i] = p.MZ
	}
	return out
}

// SpectrumParams controls synthetic spectrum generation — each knob is
// one of the quality problems §1 names.
type SpectrumParams struct {
	// PeptideDetectionProb is the probability that a true peptide ion is
	// observed at all (technology limitations / incomplete measurement).
	PeptideDetectionProb float64
	// MassErrorPPM is the 1σ measurement error in parts-per-million.
	MassErrorPPM float64
	// NoisePeaks is the number of random noise peaks added
	// (signal-to-noise degradation; Hit Ratio is designed to expose it).
	NoisePeaks int
	// NoiseMZMin/Max bound the noise peak m/z range.
	NoiseMZMin, NoiseMZMax float64
	// MissedCleavages passed to the digestion.
	MissedCleavages int
	// MinPeptideLen passed to the digestion.
	MinPeptideLen int
}

// DefaultSpectrumParams models a reasonably well-run PMF experiment.
func DefaultSpectrumParams() SpectrumParams {
	return SpectrumParams{
		PeptideDetectionProb: 0.75,
		MassErrorPPM:         40,
		NoisePeaks:           12,
		NoiseMZMin:           500,
		NoiseMZMax:           3500,
		MissedCleavages:      1,
		MinPeptideLen:        6,
	}
}

// SynthesizeSpectrum produces a peak list for a sample containing the
// given proteins (true content plus any contaminants the caller mixes
// in), applying detection loss, mass error and noise. The rng makes runs
// reproducible.
func SynthesizeSpectrum(spotID string, sample []Protein, params SpectrumParams, rng *rand.Rand) PeakList {
	pl := PeakList{SpotID: spotID}
	for _, prot := range sample {
		for _, pep := range Digest(prot.Sequence, params.MissedCleavages, params.MinPeptideLen) {
			if rng.Float64() > params.PeptideDetectionProb {
				continue
			}
			mz := pep.MZ()
			if params.MassErrorPPM > 0 {
				mz += mz * params.MassErrorPPM / 1e6 * rng.NormFloat64()
			}
			pl.Peaks = append(pl.Peaks, Peak{MZ: mz, Intensity: 50 + 50*rng.Float64()})
		}
	}
	for i := 0; i < params.NoisePeaks; i++ {
		mz := params.NoiseMZMin + (params.NoiseMZMax-params.NoiseMZMin)*rng.Float64()
		pl.Peaks = append(pl.Peaks, Peak{MZ: mz, Intensity: 5 + 20*rng.Float64()})
	}
	pl.SortByMZ()
	return pl
}

// RandomProtein generates a random protein of the given length with a
// uniform residue distribution — the synthetic reference-database entry.
func RandomProtein(accession string, length int, rng *rand.Rand) Protein {
	var b strings.Builder
	b.Grow(length)
	for i := 0; i < length; i++ {
		b.WriteByte(Residues[rng.Intn(len(Residues))])
	}
	return Protein{
		Accession: accession,
		Name:      "synthetic protein " + accession,
		Sequence:  b.String(),
	}
}

// RandomDatabase generates a reference database of n random proteins with
// lengths uniform in [minLen, maxLen].
func RandomDatabase(n, minLen, maxLen int, rng *rand.Rand) []Protein {
	out := make([]Protein, n)
	for i := range out {
		l := minLen
		if maxLen > minLen {
			l += rng.Intn(maxLen - minLen)
		}
		out[i] = RandomProtein(fmt.Sprintf("SYN%05d", i), l, rng)
	}
	return out
}
