package proteomics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSequenceMassKnownValues(t *testing.T) {
	// Glycine peptide "G": residue 57.02146 + water 18.010565.
	if m := SequenceMass("G"); math.Abs(m-75.03203) > 1e-4 {
		t.Errorf("mass(G) = %v", m)
	}
	// Angiotensin II (DRVYIHPF) monoisotopic mass ≈ 1045.53 Da.
	if m := SequenceMass("DRVYIHPF"); math.Abs(m-1045.53) > 0.02 {
		t.Errorf("mass(DRVYIHPF) = %v, want ≈1045.53", m)
	}
	// Empty sequence is just water.
	if m := SequenceMass(""); math.Abs(m-WaterMass) > 1e-9 {
		t.Errorf("mass(\"\") = %v", m)
	}
}

func TestPeptideMZ(t *testing.T) {
	p := Peptide{Sequence: "DRVYIHPF"}
	if mz := p.MZ(); math.Abs(mz-(p.Mass()+ProtonMass)) > 1e-12 {
		t.Errorf("MZ = %v", mz)
	}
}

func TestDigestBasicCleavage(t *testing.T) {
	// Cleave after K and R: "AAKBB" is invalid (B not residue) — use
	// proper residues. AAK | GGR | CC
	peps := Digest("AAKGGRCC", 0, 1)
	var seqs []string
	for _, p := range peps {
		seqs = append(seqs, p.Sequence)
	}
	want := []string{"AAK", "GGR", "CC"}
	if strings.Join(seqs, ",") != strings.Join(want, ",") {
		t.Errorf("fragments = %v, want %v", seqs, want)
	}
	// Start offsets.
	if peps[0].Start != 0 || peps[1].Start != 3 || peps[2].Start != 6 {
		t.Errorf("starts = %d, %d, %d", peps[0].Start, peps[1].Start, peps[2].Start)
	}
}

func TestDigestProlineRule(t *testing.T) {
	// K followed by P is not cleaved.
	peps := Digest("AAKPGGR", 0, 1)
	if len(peps) != 1 || peps[0].Sequence != "AAKPGGR" {
		t.Errorf("proline rule violated: %v", peps)
	}
}

func TestDigestMissedCleavages(t *testing.T) {
	peps := Digest("AAKGGRCC", 1, 1)
	seqs := map[string]bool{}
	for _, p := range peps {
		seqs[p.Sequence] = true
	}
	for _, want := range []string{"AAK", "GGR", "CC", "AAKGGR", "GGRCC"} {
		if !seqs[want] {
			t.Errorf("missing fragment %q in %v", want, seqs)
		}
	}
	if seqs["AAKGGRCC"] {
		t.Error("2-missed-cleavage fragment should not appear with limit 1")
	}
	// Missed-cleavage counters.
	for _, p := range peps {
		switch p.Sequence {
		case "AAKGGR", "GGRCC":
			if p.MissedCleavages != 1 {
				t.Errorf("%s: MissedCleavages = %d", p.Sequence, p.MissedCleavages)
			}
		default:
			if p.MissedCleavages != 0 {
				t.Errorf("%s: MissedCleavages = %d", p.Sequence, p.MissedCleavages)
			}
		}
	}
}

func TestDigestMinLength(t *testing.T) {
	peps := Digest("AAKGGRCC", 0, 3)
	for _, p := range peps {
		if len(p.Sequence) < 3 {
			t.Errorf("fragment %q below min length", p.Sequence)
		}
	}
}

func TestDigestNoCleavageSites(t *testing.T) {
	peps := Digest("AAAGGG", 0, 1)
	if len(peps) != 1 || peps[0].Sequence != "AAAGGG" {
		t.Errorf("fragments = %v", peps)
	}
}

// Property: digestion fragments (at 0 missed cleavages) partition the
// sequence — they concatenate back to it.
func TestDigestPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		n := 20 + int(seed%80+80)%80
		prot := RandomProtein("X", n, rng)
		peps := Digest(prot.Sequence, 0, 1)
		var b strings.Builder
		for _, p := range peps {
			b.WriteString(p.Sequence)
		}
		return b.String() == prot.Sequence
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestProteinValidate(t *testing.T) {
	good := Protein{Accession: "P1", Sequence: "ACDEFGHIKLMNPQRSTVWY"}
	if err := good.Validate(); err != nil {
		t.Errorf("valid protein rejected: %v", err)
	}
	bad := []Protein{
		{Accession: "", Sequence: "AAA"},
		{Accession: "P1", Sequence: ""},
		{Accession: "P1", Sequence: "AAZ"},
		{Accession: "P1", Sequence: "aaa"},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("invalid protein %+v accepted", p)
		}
	}
}

func TestRandomDatabaseDeterministicAndValid(t *testing.T) {
	db1 := RandomDatabase(20, 100, 300, rand.New(rand.NewSource(42)))
	db2 := RandomDatabase(20, 100, 300, rand.New(rand.NewSource(42)))
	for i := range db1 {
		if db1[i].Sequence != db2[i].Sequence {
			t.Fatal("RandomDatabase is not deterministic under a fixed seed")
		}
		if err := db1[i].Validate(); err != nil {
			t.Errorf("generated protein invalid: %v", err)
		}
		if len(db1[i].Sequence) < 100 || len(db1[i].Sequence) >= 300 {
			t.Errorf("length %d out of range", len(db1[i].Sequence))
		}
	}
	// Distinct accessions.
	seen := map[string]bool{}
	for _, p := range db1 {
		if seen[p.Accession] {
			t.Errorf("duplicate accession %s", p.Accession)
		}
		seen[p.Accession] = true
	}
}

func TestSynthesizeSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	prot := RandomProtein("P1", 300, rng)
	params := DefaultSpectrumParams()
	pl := SynthesizeSpectrum("spot1", []Protein{prot}, params, rng)
	if pl.SpotID != "spot1" {
		t.Errorf("SpotID = %q", pl.SpotID)
	}
	if len(pl.Peaks) == 0 {
		t.Fatal("no peaks generated")
	}
	// Sorted by m/z.
	for i := 1; i < len(pl.Peaks); i++ {
		if pl.Peaks[i].MZ < pl.Peaks[i-1].MZ {
			t.Fatal("peaks not sorted")
		}
	}
	// Noise-only spectrum.
	noise := SynthesizeSpectrum("noise", nil, params, rng)
	if len(noise.Peaks) != params.NoisePeaks {
		t.Errorf("noise peaks = %d, want %d", len(noise.Peaks), params.NoisePeaks)
	}
	for _, p := range noise.Peaks {
		if p.MZ < params.NoiseMZMin || p.MZ > params.NoiseMZMax {
			t.Errorf("noise m/z %v out of range", p.MZ)
		}
	}
}

func TestSpectrumDetectionProbability(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	prot := RandomProtein("P1", 400, rng)
	full := SpectrumParams{PeptideDetectionProb: 1, MassErrorPPM: 0, MissedCleavages: 0, MinPeptideLen: 6}
	none := full
	none.PeptideDetectionProb = 0
	plFull := SynthesizeSpectrum("s", []Protein{prot}, full, rand.New(rand.NewSource(1)))
	plNone := SynthesizeSpectrum("s", []Protein{prot}, none, rand.New(rand.NewSource(1)))
	nPeps := len(Digest(prot.Sequence, 0, 6))
	if len(plFull.Peaks) != nPeps {
		t.Errorf("full detection: %d peaks, want %d", len(plFull.Peaks), nPeps)
	}
	if len(plNone.Peaks) != 0 {
		t.Errorf("zero detection: %d peaks, want 0", len(plNone.Peaks))
	}
	// With zero mass error, peaks coincide exactly with theoretical m/z.
	mzSet := map[float64]bool{}
	for _, pep := range Digest(prot.Sequence, 0, 6) {
		mzSet[pep.MZ()] = true
	}
	for _, p := range plFull.Peaks {
		if !mzSet[p.MZ] {
			t.Errorf("peak %v does not match any theoretical m/z", p.MZ)
		}
	}
}

func TestMZValuesAndSort(t *testing.T) {
	pl := PeakList{Peaks: []Peak{{MZ: 3}, {MZ: 1}, {MZ: 2}}}
	pl.SortByMZ()
	got := pl.MZValues()
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("MZValues = %v", got)
	}
}

func BenchmarkDigest(b *testing.B) {
	prot := RandomProtein("P", 500, rand.New(rand.NewSource(1)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Digest(prot.Sequence, 1, 6)
	}
}

func BenchmarkSynthesizeSpectrum(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	sample := RandomDatabase(3, 200, 400, rng)
	params := DefaultSpectrumParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SynthesizeSpectrum("s", sample, params, rng)
	}
}
