package provenance

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"qurator/internal/ontology"
)

// TestConcurrentQueryAndRecord proves Record is never blocked by long
// queries: with Query evaluating over an O(1) snapshot (instead of the
// old deep Clone per query), writers and readers proceed independently.
// Run under -race this also exercises the copy-on-write forking paths.
func TestConcurrentQueryAndRecord(t *testing.T) {
	l := NewLog()
	for i := 0; i < 200; i++ {
		l.Record(Record{
			View:       fmt.Sprintf("view-%d", i%5),
			Started:    time.Now(),
			Duration:   time.Duration(i) * time.Millisecond,
			InputSize:  i,
			Outputs:    map[string]int{"accept": i},
			Conditions: map[string]string{"accept": "confidence > 0.5"},
		})
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var recorded int

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			l.Record(Record{View: "live", InputSize: i})
			recorded++
		}
	}()

	query := fmt.Sprintf(
		"SELECT ?run ?view WHERE { ?run <%s> <%s> . ?run <%s> ?view . }",
		"http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
		ontology.Q("QualityProcessRun").Value(),
		ontology.Q("usedView").Value())
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 30; j++ {
				res, err := l.Query(query)
				if err != nil {
					t.Error(err)
					return
				}
				if len(res.Bindings) < 200 {
					t.Errorf("query saw %d runs, want >= 200", len(res.Bindings))
					return
				}
			}
		}()
	}

	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	if recorded == 0 {
		t.Error("recorder made no progress while queries ran")
	}
	if l.Len() != 200+recorded {
		t.Errorf("Len = %d, want %d", l.Len(), 200+recorded)
	}
}
