package provenance

import (
	"strconv"
	"strings"

	"qurator/internal/mstore"
	"qurator/internal/ontology"
	"qurator/internal/rdf"
)

// Persist opens (or creates) a durable backend in dir: recorded runs
// survive process restarts, and the run numbering resumes after the
// highest recovered run so IRIs never collide across restarts.
func (l *Log) Persist(dir string, opts mstore.Options) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.store != nil {
		return errAlreadyPersistent
	}
	if opts.Name == "" {
		opts.Name = "provenance"
	}
	st, err := mstore.Open(dir, opts)
	if err != nil {
		return err
	}
	if l.graph.Len() > 0 {
		if _, err := st.AddBatch(l.graph.Triples()); err != nil {
			st.Close()
			return err
		}
	}
	l.store = st
	l.graph = st.Graph()
	if seq := maxRunSeq(l.graph); seq > l.seq {
		l.seq = seq
	}
	// Rebuild the window-emission index: recovered emissions must answer
	// Lookup immediately, or a restarted node would re-enact (and
	// re-emit) windows it already delivered.
	for _, t := range l.graph.Match(rdf.Term{}, rdf.IRI(rdf.RDFType), emissionClass) {
		key := l.graph.FirstObject(t.Subject, propEmitKey).Value()
		payload := l.graph.FirstObject(t.Subject, propEmitResult).Value()
		if key != "" {
			l.emissions[key] = payload
		}
	}
	return nil
}

var errAlreadyPersistent = &alreadyPersistentError{}

type alreadyPersistentError struct{}

func (*alreadyPersistentError) Error() string {
	return "provenance: log is already persistent"
}

// maxRunSeq recovers the run counter from the graph: run IRIs are
// sequential (<ns>run/N), so the counter is the highest recorded N.
func maxRunSeq(g *rdf.Graph) int {
	prefix := ontology.QuratorNS + "run/"
	max := 0
	for _, t := range g.Match(rdf.Term{}, rdf.IRI(rdf.RDFType), runClass) {
		n, err := strconv.Atoi(strings.TrimPrefix(t.Subject.Value(), prefix))
		if err == nil && n > max {
			max = n
		}
	}
	return max
}

// Durable reports whether a backend is attached.
func (l *Log) Durable() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.store != nil
}

// Flush checkpoints the durable backend (no-op without one).
func (l *Log) Flush() error {
	l.mu.Lock()
	st := l.store
	l.mu.Unlock()
	if st == nil {
		return nil
	}
	return st.Flush()
}

// CloseStore flushes and detaches the durable backend; the log keeps its
// in-memory contents and keeps working non-durably.
func (l *Log) CloseStore() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.store == nil {
		return nil
	}
	err := l.store.Close()
	l.store = nil
	return err
}

// StoreStats returns the backend's durability statistics (zero without
// one).
func (l *Log) StoreStats() mstore.Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.store == nil {
		return mstore.Stats{}
	}
	return l.store.Stats()
}

// Err returns the last store write failure (Record cannot return one —
// its signature predates persistence) and clears it.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.lastErr
	l.lastErr = nil
	return err
}
