package provenance

import (
	"strings"
	"testing"
	"time"

	"qurator/internal/mstore"
)

func persistOpts() mstore.Options {
	return mstore.Options{Fsync: mstore.FsyncNever, NoBackground: true}
}

func TestPersistRunsSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	l := NewLog()
	if err := l.Persist(dir, persistOpts()); err != nil {
		t.Fatal(err)
	}
	if !l.Durable() {
		t.Fatal("Durable() = false after Persist")
	}
	started := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 3; i++ {
		l.Record(Record{
			View:      "wf-quality",
			Started:   started.Add(time.Duration(i) * time.Minute),
			InputSize: 10 + i,
			Outputs:   map[string]int{"accept": i},
		})
	}
	if err := l.Err(); err != nil {
		t.Fatal(err)
	}
	if err := l.CloseStore(); err != nil {
		t.Fatal(err)
	}

	l2 := NewLog()
	if err := l2.Persist(dir, persistOpts()); err != nil {
		t.Fatal(err)
	}
	defer l2.CloseStore()
	if l2.Len() != 3 {
		t.Fatalf("Len = %d after reopen, want 3", l2.Len())
	}
	rec, ok := l2.LastRun()
	if !ok || rec.View != "wf-quality" || rec.InputSize != 12 {
		t.Fatalf("LastRun = %+v, %v", rec, ok)
	}
	// The run counter resumes past the recovered runs: no IRI collisions.
	run := l2.Record(Record{View: "wf-quality", Started: started.Add(time.Hour)})
	if !strings.HasSuffix(run.Value(), "run/4") {
		t.Fatalf("post-reopen run IRI = %s, want .../run/4", run)
	}
}

func TestPersistTwiceFails(t *testing.T) {
	dir := t.TempDir()
	l := NewLog()
	if err := l.Persist(dir, persistOpts()); err != nil {
		t.Fatal(err)
	}
	defer l.CloseStore()
	if err := l.Persist(dir, persistOpts()); err == nil {
		t.Fatal("second Persist must fail")
	}
}

func TestPersistFoldsExistingRuns(t *testing.T) {
	l := NewLog()
	l.Record(Record{View: "pre", Started: time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)})
	dir := t.TempDir()
	if err := l.Persist(dir, persistOpts()); err != nil {
		t.Fatal(err)
	}
	l.CloseStore()

	l2 := NewLog()
	if err := l2.Persist(dir, persistOpts()); err != nil {
		t.Fatal(err)
	}
	defer l2.CloseStore()
	if l2.Len() != 1 {
		t.Fatalf("Len = %d, want the folded pre-Persist run", l2.Len())
	}
	if rec, ok := l2.LastRun(); !ok || rec.View != "pre" {
		t.Fatalf("LastRun = %+v, %v", rec, ok)
	}
}

// TestEmissionsSurviveRestart proves the exactly-once foundation: a
// window emission journaled before a crash answers Emission (and refuses
// re-recording) after recovery from disk.
func TestEmissionsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	l := NewLog()
	if err := l.Persist(dir, mstore.Options{Fsync: mstore.FsyncNever}); err != nil {
		t.Fatal(err)
	}
	if err := l.RecordEmission("k1", "paper", `{"window":0}`); err != nil {
		t.Fatal(err)
	}
	// Set semantics: same key again is a no-op, not a duplicate.
	if err := l.RecordEmission("k1", "paper", `{"window":999}`); err != nil {
		t.Fatal(err)
	}
	if err := l.CloseStore(); err != nil {
		t.Fatal(err)
	}

	l2 := NewLog()
	if err := l2.Persist(dir, mstore.Options{Fsync: mstore.FsyncNever}); err != nil {
		t.Fatal(err)
	}
	defer l2.CloseStore()
	payload, ok := l2.Emission("k1")
	if !ok {
		t.Fatal("emission k1 lost across restart")
	}
	if payload != `{"window":0}` {
		t.Fatalf("payload = %q, want the first recording (set semantics)", payload)
	}
	if n := l2.Emissions(); n != 1 {
		t.Fatalf("emissions = %d, want 1", n)
	}
}
