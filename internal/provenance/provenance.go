// Package provenance records quality-process executions as RDF. The
// paper's exploration loop — run, inspect, edit the condition, run again —
// produces a sequence of runs whose configurations differ only in their
// action conditions; this log keeps that history queryable, so a user can
// ask "which condition produced the 18-item result?" the same way they
// query annotations (and myGrid, the project Qurator deploys into, treats
// provenance as first-class metadata).
//
// Each run is a q:QualityProcessRun resource:
//
//	<run>  rdf:type        q:QualityProcessRun
//	<run>  q:usedView      "view name"
//	<run>  q:startedAt     "RFC3339"
//	<run>  q:inputSize     n
//	<run>  q:outputSize    <output node> (name + size)
//	<run>  q:usedCondition <condition node> (action + expression)
//	<run>  q:traceID       "telemetry trace id" (when recorded)
package provenance

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"qurator/internal/mstore"
	"qurator/internal/ontology"
	"qurator/internal/rdf"
	"qurator/internal/sparql"
)

// Vocabulary.
var (
	runClass      = ontology.Q("QualityProcessRun")
	propView      = ontology.Q("usedView")
	propStarted   = ontology.Q("startedAt")
	propDuration  = ontology.Q("durationMillis")
	propInputSize = ontology.Q("inputSize")
	propOutput    = ontology.Q("producedOutput")
	propOutName   = ontology.Q("outputName")
	propOutSize   = ontology.Q("outputSize")
	propCondition = ontology.Q("usedCondition")
	propCondAct   = ontology.Q("conditionAction")
	propCondExpr  = ontology.Q("conditionExpression")
	propTrace     = ontology.Q("traceID")

	// Window-emission vocabulary: cluster enactment journals every emitted
	// stream window here under its content-addressed idempotency key, so
	// a failed-over node can prove "this window's decisions already left
	// the building" against durable state rather than memory.
	emissionClass  = ontology.Q("WindowEmission")
	propEmitKey    = ontology.Q("idempotencyKey")
	propEmitResult = ontology.Q("emittedResult")
	propEmitView   = ontology.Q("emittedView")
	// propSupersedes links a late-data re-emission to the window emission
	// it replaces: the decisions of the object emission are revised by the
	// subject's.
	propSupersedes = ontology.Q("Supersedes")
)

// Record describes one quality-process execution.
type Record struct {
	// View is the quality view's name.
	View string
	// Started is the enactment start time.
	Started time.Time
	// Duration is the wall-clock enactment time.
	Duration time.Duration
	// InputSize is the data-set size.
	InputSize int
	// Outputs maps workflow output names to their item counts.
	Outputs map[string]int
	// Conditions maps action names to the condition text in force.
	Conditions map[string]string
	// TraceID is the telemetry trace of the enactment: the bridge from
	// the provenance record (what the run decided) to the recorded span
	// tree (how it behaved). Empty when telemetry was not in play.
	TraceID string
}

// Log accumulates run records as RDF. Safe for concurrent use. Attaching
// a durable backend with Persist makes every record WAL-committed; on
// reopen the run history — and the run numbering — continues where it
// left off.
type Log struct {
	mu    sync.Mutex
	graph *rdf.Graph
	seq   int
	// store, when set, is the durable backend; graph aliases store.Graph().
	store *mstore.Store
	// lastErr records a store write failure — Record's signature (kept
	// stable for its compiler-side callers) cannot return one; see Err.
	lastErr error
	// emissions indexes WindowEmission records by idempotency key (the
	// graph holds the durable truth; this is its lookup structure,
	// rebuilt from the graph on Persist).
	emissions map[string]string
}

// NewLog returns an empty provenance log.
func NewLog() *Log {
	return &Log{graph: rdf.NewGraph(), emissions: make(map[string]string)}
}

// Record appends a run and returns its resource IRI.
func (l *Log) Record(rec Record) rdf.Term {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	run := rdf.IRI(fmt.Sprintf("%srun/%d", ontology.QuratorNS, l.seq))
	adds := []rdf.Triple{
		rdf.T(run, rdf.IRI(rdf.RDFType), runClass),
		rdf.T(run, propView, rdf.Literal(rec.View)),
		rdf.T(run, propStarted, rdf.Literal(rec.Started.UTC().Format(time.RFC3339Nano))),
		rdf.T(run, propDuration, rdf.Integer(rec.Duration.Milliseconds())),
		rdf.T(run, propInputSize, rdf.Integer(int64(rec.InputSize))),
	}
	if rec.TraceID != "" {
		adds = append(adds, rdf.T(run, propTrace, rdf.Literal(rec.TraceID)))
	}
	for name, size := range rec.Outputs {
		node := rdf.IRI(fmt.Sprintf("%s#output-%s", run.Value(), name))
		adds = append(adds,
			rdf.T(run, propOutput, node),
			rdf.T(node, propOutName, rdf.Literal(name)),
			rdf.T(node, propOutSize, rdf.Integer(int64(size))))
	}
	for action, expr := range rec.Conditions {
		node := rdf.IRI(fmt.Sprintf("%s#condition-%s", run.Value(), action))
		adds = append(adds,
			rdf.T(run, propCondition, node),
			rdf.T(node, propCondAct, rdf.Literal(action)),
			rdf.T(node, propCondExpr, rdf.Literal(expr)))
	}
	if l.store != nil {
		if _, err := l.store.AddBatch(adds); err != nil {
			l.lastErr = err
		}
	} else {
		for _, t := range adds {
			l.graph.MustAdd(t)
		}
	}
	return run
}

// RecordEmission journals one emitted stream window under its
// content-addressed idempotency key. Recording is set-semantic: a key
// already present is a no-op (re-recording the same emission cannot
// duplicate it), so replication and crash-replay may deliver the same
// entry any number of times. With a durable backend the entry is
// WAL-committed before RecordEmission returns.
func (l *Log) RecordEmission(key, view, payload string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.emissions[key]; ok {
		return nil
	}
	node := rdf.IRI(ontology.QuratorNS + "emission/" + key)
	adds := []rdf.Triple{
		rdf.T(node, rdf.IRI(rdf.RDFType), emissionClass),
		rdf.T(node, propEmitKey, rdf.Literal(key)),
		rdf.T(node, propEmitView, rdf.Literal(view)),
		rdf.T(node, propEmitResult, rdf.Literal(payload)),
	}
	if l.store != nil {
		if _, err := l.store.AddBatch(adds); err != nil {
			return err
		}
	} else {
		for _, t := range adds {
			l.graph.MustAdd(t)
		}
	}
	l.emissions[key] = payload
	return nil
}

// RecordSupersession links a late-data re-emission (newKey) to the
// emission whose decisions it revises (oldKey) with a q:Supersedes
// triple. Idempotent: re-recording an existing link is a no-op, so the
// cluster journal may write it through on every replayed commit.
func (l *Log) RecordSupersession(newKey, oldKey string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	subj := rdf.IRI(ontology.QuratorNS + "emission/" + newKey)
	obj := rdf.IRI(ontology.QuratorNS + "emission/" + oldKey)
	if len(l.graph.Match(subj, propSupersedes, obj)) > 0 {
		return nil
	}
	t := rdf.T(subj, propSupersedes, obj)
	if l.store != nil {
		if _, err := l.store.AddBatch([]rdf.Triple{t}); err != nil {
			return err
		}
	} else {
		l.graph.MustAdd(t)
	}
	return nil
}

// Superseded returns the idempotency key of the emission that newKey
// supersedes, if a q:Supersedes link was recorded. Graph-backed, so
// links recovered from the durable store after a restart are visible
// without any index rebuild.
func (l *Log) Superseded(newKey string) (string, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	o := l.graph.FirstObject(rdf.IRI(ontology.QuratorNS+"emission/"+newKey), propSupersedes)
	if o.Value() == "" {
		return "", false
	}
	return strings.TrimPrefix(o.Value(), ontology.QuratorNS+"emission/"), true
}

// Emission returns the journaled payload for an idempotency key.
func (l *Log) Emission(key string) (string, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	p, ok := l.emissions[key]
	return p, ok
}

// EmissionKeys returns every journaled idempotency key (unordered).
func (l *Log) EmissionKeys() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.emissions))
	for k := range l.emissions {
		out = append(out, k)
	}
	return out
}

// Emissions returns the number of journaled window emissions.
func (l *Log) Emissions() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.emissions)
}

// Runs returns the recorded run resources, oldest first.
func (l *Log) Runs() []rdf.Term {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]rdf.Term, 0, l.seq)
	for i := 1; i <= l.seq; i++ {
		out = append(out, rdf.IRI(fmt.Sprintf("%srun/%d", ontology.QuratorNS, i)))
	}
	return out
}

// Len returns the number of recorded runs.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Query runs a SPARQL query against an O(1) snapshot of the provenance
// graph: evaluation holds no lock, so a long query never blocks Record.
func (l *Log) Query(query string) (*sparql.Result, error) {
	return sparql.Exec(l.Snapshot(), query)
}

// Snapshot returns an immutable O(1) view of the provenance graph.
func (l *Log) Snapshot() *rdf.Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.graph.Snapshot()
}

// Graph returns an independent copy of the provenance graph (O(1),
// copy-on-write).
func (l *Log) Graph() *rdf.Graph {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.graph.Clone()
}

// LastRun returns the most recent run's record fields re-read from the
// graph (zero Record and false when empty).
func (l *Log) LastRun() (Record, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.seq == 0 {
		return Record{}, false
	}
	run := rdf.IRI(fmt.Sprintf("%srun/%d", ontology.QuratorNS, l.seq))
	rec := Record{
		View:       l.graph.FirstObject(run, propView).Value(),
		Outputs:    map[string]int{},
		Conditions: map[string]string{},
	}
	if ts := l.graph.FirstObject(run, propStarted).Value(); ts != "" {
		if t, err := time.Parse(time.RFC3339Nano, ts); err == nil {
			rec.Started = t
		}
	}
	if ms, ok := l.graph.FirstObject(run, propDuration).Int(); ok {
		rec.Duration = time.Duration(ms) * time.Millisecond
	}
	if n, ok := l.graph.FirstObject(run, propInputSize).Int(); ok {
		rec.InputSize = int(n)
	}
	rec.TraceID = l.graph.FirstObject(run, propTrace).Value()
	for _, node := range l.graph.Objects(run, propOutput) {
		name := l.graph.FirstObject(node, propOutName).Value()
		if size, ok := l.graph.FirstObject(node, propOutSize).Int(); ok {
			rec.Outputs[name] = int(size)
		}
	}
	for _, node := range l.graph.Objects(run, propCondition) {
		action := l.graph.FirstObject(node, propCondAct).Value()
		rec.Conditions[action] = l.graph.FirstObject(node, propCondExpr).Value()
	}
	return rec, true
}
