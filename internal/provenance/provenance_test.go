package provenance

import (
	"fmt"
	"testing"
	"time"

	"qurator/internal/ontology"
)

func sampleRecord(i int) Record {
	return Record{
		View:      "protein-id-quality",
		Started:   time.Date(2006, 9, 12, 10, 0, i, 0, time.UTC),
		Duration:  17 * time.Millisecond,
		InputSize: 100,
		Outputs:   map[string]int{"filter_top_k_score:accepted": 18 + i},
		Conditions: map[string]string{
			"filter top k score": fmt.Sprintf("ScoreClass in q:high and HR_MC > %d", i),
		},
	}
}

func TestRecordAndLastRun(t *testing.T) {
	l := NewLog()
	if _, ok := l.LastRun(); ok {
		t.Fatal("empty log should have no last run")
	}
	run := l.Record(sampleRecord(0))
	if run.IsZero() || l.Len() != 1 {
		t.Fatalf("Record = %v, Len = %d", run, l.Len())
	}
	got, ok := l.LastRun()
	if !ok {
		t.Fatal("LastRun missing")
	}
	want := sampleRecord(0)
	if got.View != want.View || got.InputSize != want.InputSize {
		t.Errorf("LastRun = %+v", got)
	}
	if !got.Started.Equal(want.Started) {
		t.Errorf("Started = %v, want %v", got.Started, want.Started)
	}
	if got.Duration != want.Duration {
		t.Errorf("Duration = %v", got.Duration)
	}
	if got.Outputs["filter_top_k_score:accepted"] != 18 {
		t.Errorf("Outputs = %v", got.Outputs)
	}
	if got.Conditions["filter top k score"] == "" {
		t.Errorf("Conditions = %v", got.Conditions)
	}
}

func TestRunsOrderAndSequence(t *testing.T) {
	l := NewLog()
	for i := 0; i < 3; i++ {
		l.Record(sampleRecord(i))
	}
	runs := l.Runs()
	if len(runs) != 3 {
		t.Fatalf("Runs = %v", runs)
	}
	// LastRun reflects the most recent record.
	got, _ := l.LastRun()
	if got.Outputs["filter_top_k_score:accepted"] != 20 {
		t.Errorf("LastRun outputs = %v", got.Outputs)
	}
}

func TestProvenanceIsQueryable(t *testing.T) {
	// The exploration history answers "which condition produced which
	// output size?" via SPARQL.
	l := NewLog()
	for i := 0; i < 3; i++ {
		l.Record(sampleRecord(i))
	}
	res, err := l.Query(fmt.Sprintf(`PREFIX q: <%s>
		SELECT ?run ?expr ?size WHERE {
			?run a q:QualityProcessRun .
			?run q:usedCondition ?c .
			?c q:conditionExpression ?expr .
			?run q:producedOutput ?o .
			?o q:outputSize ?size .
			FILTER (?size >= 19)
		}`, ontology.QuratorNS))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(res.Bindings) != 2 {
		t.Fatalf("rows = %d, want 2 (runs with ≥19 survivors)", len(res.Bindings))
	}
	for _, b := range res.Bindings {
		if b["expr"].Value() == "" {
			t.Error("condition expression missing in results")
		}
	}
}

func TestGraphSnapshotIsolated(t *testing.T) {
	l := NewLog()
	l.Record(sampleRecord(0))
	g := l.Graph()
	n := g.Len()
	l.Record(sampleRecord(1))
	if g.Len() != n {
		t.Error("Graph snapshot should not grow with later records")
	}
}
