package provenance

import (
	"testing"

	"qurator/internal/mstore"
)

// TestRecordSupersession pins the q:Supersedes provenance link between a
// late-data re-emission and the window emission it replaces.
func TestRecordSupersession(t *testing.T) {
	l := NewLog()
	if err := l.RecordEmission("old", "paper", `{"window":0}`); err != nil {
		t.Fatal(err)
	}
	if err := l.RecordEmission("new", "paper", `{"window":0,"late":true}`); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Superseded("new"); ok {
		t.Fatal("Superseded true before any link recorded")
	}
	if err := l.RecordSupersession("new", "old"); err != nil {
		t.Fatal(err)
	}
	// Idempotent: replaying the same link (cluster replication, journal
	// replay) must not duplicate the triple.
	if err := l.RecordSupersession("new", "old"); err != nil {
		t.Fatal(err)
	}
	old, ok := l.Superseded("new")
	if !ok || old != "old" {
		t.Fatalf("Superseded(new) = %q, %v, want \"old\", true", old, ok)
	}
	if _, ok := l.Superseded("old"); ok {
		t.Error("the superseded emission must not itself report a predecessor")
	}
	if _, ok := l.Superseded("unknown"); ok {
		t.Error("Superseded true for a never-recorded key")
	}
}

// TestSupersessionSurvivesRestart proves the link is part of the durable
// metadata plane: a q:Supersedes triple journaled before a crash is
// queryable after recovery from disk.
func TestSupersessionSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	l := NewLog()
	if err := l.Persist(dir, mstore.Options{Fsync: mstore.FsyncNever}); err != nil {
		t.Fatal(err)
	}
	if err := l.RecordEmission("old", "paper", `{"window":0}`); err != nil {
		t.Fatal(err)
	}
	if err := l.RecordEmission("new", "paper", `{"window":0,"late":true}`); err != nil {
		t.Fatal(err)
	}
	if err := l.RecordSupersession("new", "old"); err != nil {
		t.Fatal(err)
	}
	if err := l.CloseStore(); err != nil {
		t.Fatal(err)
	}

	l2 := NewLog()
	if err := l2.Persist(dir, mstore.Options{Fsync: mstore.FsyncNever}); err != nil {
		t.Fatal(err)
	}
	defer l2.CloseStore()
	old, ok := l2.Superseded("new")
	if !ok || old != "old" {
		t.Fatalf("after restart Superseded(new) = %q, %v, want \"old\", true", old, ok)
	}
}
