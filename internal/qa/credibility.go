package qa

import (
	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/rdf"
)

// EvidenceCodeReliability maps Gene Ontology evidence codes to reliability
// weights in [0, 1], following the experimental finding of Lord et al.
// (paper reference [16]) that evidence codes are a usable indicator of the
// reliability of a curator's functional annotation. Experimentally
// validated codes rank highest; the automatic IEA code ranks lowest.
var EvidenceCodeReliability = map[string]float64{
	"TAS": 1.00, // traceable author statement
	"IDA": 0.95, // inferred from direct assay
	"IMP": 0.90, // inferred from mutant phenotype
	"IGI": 0.85, // inferred from genetic interaction
	"IPI": 0.80, // inferred from physical interaction
	"IEP": 0.65, // inferred from expression pattern
	"ISS": 0.55, // inferred from sequence similarity
	"NAS": 0.40, // non-traceable author statement
	"IC":  0.35, // inferred by curator
	"ND":  0.10, // no biological data available
	"IEA": 0.05, // inferred from electronic annotation (uncurated)
}

// Credibility labels.
var (
	CredibilityHigh = ontology.Q("credible")
	CredibilityMid  = ontology.Q("plausible")
	CredibilityLow  = ontology.Q("doubtful")
)

// NewCredibilityQA returns the curation-credibility QA sketched in paper
// §3: it combines a curated annotation's evidence code with (optionally)
// the impact factor of the journal the annotation cites, producing a score
// under scoreTag and a three-way classification under the credibility
// model. Impact factor, when present, modulates the evidence-code weight:
//
//	score = 100 · reliability(code) · (0.5 + 0.5 · min(IF, 10)/10)
//
// Annotations with no impact-factor evidence use the midpoint modulation,
// so the QA degrades gracefully when only evidence codes are available.
func NewCredibilityQA(scoreTag rdf.Term) *StatClassifier {
	return &StatClassifier{
		ClassIRI: ontology.CurationCredibility,
		Model:    ontology.CredibilityClass,
		Low:      CredibilityLow,
		Mid:      CredibilityMid,
		High:     CredibilityHigh,
		Inputs:   []rdf.Term{ontology.EvidenceCode, ontology.JournalImpactFactor},
		ScoreTag: scoreTag,
		Fn:       CredibilityScoreFn,
	}
}

// CredibilityScoreFn is the scoring function behind NewCredibilityQA.
func CredibilityScoreFn(in map[rdf.Term]evidence.Value) (float64, error) {
	code := in[ontology.EvidenceCode].AsString()
	rel, ok := EvidenceCodeReliability[code]
	if !ok {
		// Unknown or missing codes are treated as uncurated.
		rel = EvidenceCodeReliability["IEA"]
	}
	mod := 0.5
	if impact, ok := in[ontology.JournalImpactFactor].AsFloat(); ok {
		if impact > 10 {
			impact = 10
		}
		if impact < 0 {
			impact = 0
		}
		mod = 0.5 + 0.5*impact/10
	} else {
		mod = 0.75 // midpoint when no journal evidence is available
	}
	return 100 * rel * mod, nil
}
