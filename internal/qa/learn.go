package qa

import (
	"fmt"
	"math"
	"sort"

	"qurator/internal/condition"
	"qurator/internal/evidence"
	"qurator/internal/rdf"
)

// This file implements the paper's stated future work (ii):
// "investigating the use of machine learning techniques to derive
// decision models and quality functions from example data sets".
//
// Two learners are provided, both producing standard QA operators so the
// learned models plug into quality views exactly like hand-built ones:
//
//   - LearnStumps induces a depth-limited decision tree of single-evidence
//     threshold tests (decision stumps split by information gain), emitted
//     as a DecisionTree QA;
//   - LearnLinearScore fits a least-squares linear scoring function over
//     the evidence vector, emitted as a Score QA.

// Example is one labelled training instance: a data item (whose evidence
// lives in the training map) with a boolean quality label.
type Example struct {
	Item evidence.Item
	// Good is the ground-truth acceptability label.
	Good bool
}

// TrainingSet pairs an annotation map with labels over its items.
type TrainingSet struct {
	Amap     *evidence.Map
	Examples []Example
	// Features are the evidence types to learn over.
	Features []rdf.Term
}

// Validate checks the training set is learnable.
func (ts *TrainingSet) Validate() error {
	if ts.Amap == nil || len(ts.Examples) == 0 {
		return fmt.Errorf("qa: empty training set")
	}
	if len(ts.Features) == 0 {
		return fmt.Errorf("qa: no features to learn over")
	}
	pos := 0
	for _, ex := range ts.Examples {
		if !ts.Amap.HasItem(ex.Item) {
			return fmt.Errorf("qa: example item %v not in the training map", ex.Item)
		}
		if ex.Good {
			pos++
		}
	}
	if pos == 0 || pos == len(ts.Examples) {
		return fmt.Errorf("qa: training set needs both positive and negative examples (have %d/%d positive)",
			pos, len(ts.Examples))
	}
	return nil
}

// featureMatrix extracts the numeric feature vectors; items missing any
// feature are dropped (with their labels).
func (ts *TrainingSet) featureMatrix() (rows [][]float64, labels []bool) {
	for _, ex := range ts.Examples {
		vec := make([]float64, len(ts.Features))
		ok := true
		for j, f := range ts.Features {
			v, has := ts.Amap.Get(ex.Item, f).AsFloat()
			if !has {
				ok = false
				break
			}
			vec[j] = v
		}
		if ok {
			rows = append(rows, vec)
			labels = append(labels, ex.Good)
		}
	}
	return rows, labels
}

// StumpParams configures tree induction.
type StumpParams struct {
	// MaxDepth bounds the tree (default 3).
	MaxDepth int
	// MinLeaf is the minimum number of examples per leaf (default 2).
	MinLeaf int
}

// LearnStumps induces a decision tree over the training set and returns
// it as a DecisionTree QA assigning goodLabel/badLabel under model.
// Feature variables are resolved through vars, which must bind one
// identifier per feature (the learned conditions reference them by name).
func LearnStumps(ts *TrainingSet, classIRI, model, goodLabel, badLabel rdf.Term,
	vars condition.Bindings, params StumpParams) (*DecisionTree, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	if params.MaxDepth <= 0 {
		params.MaxDepth = 3
	}
	if params.MinLeaf <= 0 {
		params.MinLeaf = 2
	}
	// Map each feature to its condition identifier.
	names := make([]string, len(ts.Features))
	for i, f := range ts.Features {
		name := ""
		for ident, key := range vars {
			if key == f {
				name = ident
				break
			}
		}
		if name == "" {
			return nil, fmt.Errorf("qa: no condition identifier bound to feature %v", f)
		}
		names[i] = name
	}
	rows, labels := ts.featureMatrix()
	if len(rows) < 2*params.MinLeaf {
		return nil, fmt.Errorf("qa: too few complete examples (%d)", len(rows))
	}
	root := induce(rows, labels, names, params, 0, goodLabel, badLabel)
	tree := &DecisionTree{
		ClassIRI:        classIRI,
		Model:           model,
		Root:            root,
		Inputs:          ts.Features,
		Vars:            vars,
		ErrorTakesFalse: true,
	}
	if err := tree.Validate(); err != nil {
		return nil, err
	}
	return tree, nil
}

func entropy(pos, n int) float64 {
	if n == 0 || pos == 0 || pos == n {
		return 0
	}
	p := float64(pos) / float64(n)
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

func majority(labels []bool) bool {
	pos := 0
	for _, l := range labels {
		if l {
			pos++
		}
	}
	return pos*2 >= len(labels)
}

// induce recursively builds the tree by best-gain threshold splits.
func induce(rows [][]float64, labels []bool, names []string, params StumpParams,
	depth int, goodLabel, badLabel rdf.Term) *TreeNode {
	leaf := func() *TreeNode {
		if majority(labels) {
			return Leaf(goodLabel)
		}
		return Leaf(badLabel)
	}
	pos := 0
	for _, l := range labels {
		if l {
			pos++
		}
	}
	if depth >= params.MaxDepth || pos == 0 || pos == len(labels) || len(rows) < 2*params.MinLeaf {
		return leaf()
	}

	baseH := entropy(pos, len(labels))
	bestGain, bestFeat, bestThresh := 0.0, -1, 0.0
	for j := range names {
		// Candidate thresholds: midpoints between consecutive distinct
		// sorted values.
		vals := make([]float64, len(rows))
		for i, r := range rows {
			vals[i] = r[j]
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		for k := 1; k < len(sorted); k++ {
			if sorted[k] == sorted[k-1] {
				continue
			}
			thresh := (sorted[k] + sorted[k-1]) / 2
			hiPos, hiN := 0, 0
			for i, v := range vals {
				if v > thresh {
					hiN++
					if labels[i] {
						hiPos++
					}
				}
			}
			loN := len(vals) - hiN
			loPos := pos - hiPos
			if hiN < params.MinLeaf || loN < params.MinLeaf {
				continue
			}
			gain := baseH -
				(float64(hiN)/float64(len(vals)))*entropy(hiPos, hiN) -
				(float64(loN)/float64(len(vals)))*entropy(loPos, loN)
			if gain > bestGain {
				bestGain, bestFeat, bestThresh = gain, j, thresh
			}
		}
	}
	if bestFeat < 0 || bestGain <= 1e-12 {
		return leaf()
	}

	var hiRows, loRows [][]float64
	var hiLabels, loLabels []bool
	for i, r := range rows {
		if r[bestFeat] > bestThresh {
			hiRows = append(hiRows, r)
			hiLabels = append(hiLabels, labels[i])
		} else {
			loRows = append(loRows, r)
			loLabels = append(loLabels, labels[i])
		}
	}
	cond := condition.MustParse(fmt.Sprintf("%s > %g", names[bestFeat], bestThresh))
	return Branch(cond,
		induce(hiRows, hiLabels, names, params, depth+1, goodLabel, badLabel),
		induce(loRows, loLabels, names, params, depth+1, goodLabel, badLabel))
}

// LearnLinearScore fits a linear scoring function w·x + b to the labels
// (least squares against 1/0 targets via gradient descent) and returns a
// Score QA producing values scaled to 0–100. Higher scores mean more
// acceptable.
func LearnLinearScore(ts *TrainingSet, classIRI, tag rdf.Term) (*Score, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	rows, labels := ts.featureMatrix()
	if len(rows) == 0 {
		return nil, fmt.Errorf("qa: no complete examples")
	}
	nf := len(ts.Features)
	// Standardise features for stable optimisation.
	mean := make([]float64, nf)
	std := make([]float64, nf)
	for j := 0; j < nf; j++ {
		for _, r := range rows {
			mean[j] += r[j]
		}
		mean[j] /= float64(len(rows))
		for _, r := range rows {
			d := r[j] - mean[j]
			std[j] += d * d
		}
		std[j] = math.Sqrt(std[j] / float64(len(rows)))
		if std[j] == 0 {
			std[j] = 1
		}
	}
	w := make([]float64, nf)
	b := 0.0
	lr := 0.1
	for epoch := 0; epoch < 500; epoch++ {
		gradW := make([]float64, nf)
		gradB := 0.0
		for i, r := range rows {
			pred := b
			for j := 0; j < nf; j++ {
				pred += w[j] * (r[j] - mean[j]) / std[j]
			}
			target := 0.0
			if labels[i] {
				target = 1
			}
			err := pred - target
			for j := 0; j < nf; j++ {
				gradW[j] += err * (r[j] - mean[j]) / std[j]
			}
			gradB += err
		}
		for j := 0; j < nf; j++ {
			w[j] -= lr * gradW[j] / float64(len(rows))
		}
		b -= lr * gradB / float64(len(rows))
	}

	features := append([]rdf.Term(nil), ts.Features...)
	weights := append([]float64(nil), w...)
	means := append([]float64(nil), mean...)
	stds := append([]float64(nil), std...)
	bias := b
	return &Score{
		ClassIRI:    classIRI,
		Tag:         tag,
		Inputs:      features,
		SkipMissing: true,
		Fn: func(in map[rdf.Term]evidence.Value) (float64, error) {
			s := bias
			for j, f := range features {
				v, ok := in[f].AsFloat()
				if !ok {
					return 0, fmt.Errorf("missing feature %v", f)
				}
				s += weights[j] * (v - means[j]) / stds[j]
			}
			// Clamp the raw acceptability estimate to [0, 1] and scale.
			if s < 0 {
				s = 0
			}
			if s > 1 {
				s = 1
			}
			return 100 * s, nil
		},
	}, nil
}

// EvaluateClassifier measures a classifier QA's accuracy over labelled
// items: the fraction whose assigned class equals goodLabel exactly when
// the example is Good. Items without an assignment count as badLabel.
func EvaluateClassifier(tree *DecisionTree, ts *TrainingSet, goodLabel rdf.Term) (float64, error) {
	m := ts.Amap.Clone()
	if err := tree.Assert(m); err != nil {
		return 0, err
	}
	correct := 0
	for _, ex := range ts.Examples {
		predicted := m.Class(ex.Item, tree.Model) == goodLabel
		if predicted == ex.Good {
			correct++
		}
	}
	return float64(correct) / float64(len(ts.Examples)), nil
}
