package qa

import (
	"fmt"
	"math/rand"
	"testing"

	"qurator/internal/condition"
	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/rdf"
)

// syntheticTraining builds a labelled set where good items have HR > 0.5
// and MC > 0.3 (with some noise when noisy is true).
func syntheticTraining(n int, noisy bool, seed int64) *TrainingSet {
	rng := rand.New(rand.NewSource(seed))
	m := evidence.NewMap()
	ts := &TrainingSet{
		Amap:     m,
		Features: []rdf.Term{ontology.HitRatio, ontology.Coverage},
	}
	for i := 0; i < n; i++ {
		it := rdf.IRI(fmt.Sprintf("urn:lsid:train.org:item:%d", i))
		hr, mc := rng.Float64(), rng.Float64()
		m.Set(it, ontology.HitRatio, evidence.Float(hr))
		m.Set(it, ontology.Coverage, evidence.Float(mc))
		good := hr > 0.5 && mc > 0.3
		if noisy && rng.Float64() < 0.05 {
			good = !good
		}
		ts.Examples = append(ts.Examples, Example{Item: it, Good: good})
	}
	return ts
}

var learnVars = condition.Bindings{
	"hr": ontology.HitRatio,
	"mc": ontology.Coverage,
}

func TestLearnStumpsRecoversRule(t *testing.T) {
	ts := syntheticTraining(200, false, 1)
	tree, err := LearnStumps(ts, ontology.Q("LearnedQA"), ontology.PIScoreClassification,
		ontology.ClassHigh, ontology.ClassLow, learnVars, StumpParams{MaxDepth: 3})
	if err != nil {
		t.Fatalf("LearnStumps: %v", err)
	}
	acc, err := EvaluateClassifier(tree, ts, ontology.ClassHigh)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Errorf("training accuracy = %.3f, want ≥ 0.95 on a clean separable rule", acc)
	}
	// Generalisation: a fresh sample from the same distribution.
	test := syntheticTraining(200, false, 2)
	acc, err = EvaluateClassifier(tree, test, ontology.ClassHigh)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("test accuracy = %.3f, want ≥ 0.9", acc)
	}
}

func TestLearnStumpsNoisyLabels(t *testing.T) {
	ts := syntheticTraining(300, true, 3)
	tree, err := LearnStumps(ts, ontology.Q("LearnedQA"), ontology.PIScoreClassification,
		ontology.ClassHigh, ontology.ClassLow, learnVars, StumpParams{MaxDepth: 2, MinLeaf: 10})
	if err != nil {
		t.Fatalf("LearnStumps: %v", err)
	}
	acc, err := EvaluateClassifier(tree, ts, ontology.ClassHigh)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Errorf("accuracy with 5%% label noise = %.3f, want ≥ 0.85", acc)
	}
}

func TestLearnedTreeIsAnOrdinaryQA(t *testing.T) {
	// The learned model must be usable exactly like a hand-built QA:
	// Assert over a fresh map and read classifications.
	ts := syntheticTraining(100, false, 4)
	tree, err := LearnStumps(ts, ontology.Q("LearnedQA"), ontology.PIScoreClassification,
		ontology.ClassHigh, ontology.ClassLow, learnVars, StumpParams{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Class() != ontology.Q("LearnedQA") {
		t.Error("wrong class IRI")
	}
	m := evidence.NewMap()
	good := rdf.IRI("urn:good")
	bad := rdf.IRI("urn:bad")
	m.Set(good, ontology.HitRatio, evidence.Float(0.9))
	m.Set(good, ontology.Coverage, evidence.Float(0.8))
	m.Set(bad, ontology.HitRatio, evidence.Float(0.1))
	m.Set(bad, ontology.Coverage, evidence.Float(0.05))
	if err := tree.Assert(m); err != nil {
		t.Fatal(err)
	}
	if m.Class(good, ontology.PIScoreClassification) != ontology.ClassHigh {
		t.Error("clear positive misclassified")
	}
	if m.Class(bad, ontology.PIScoreClassification) != ontology.ClassLow {
		t.Error("clear negative misclassified")
	}
}

func TestLearnValidation(t *testing.T) {
	// Empty, single-class and unbound-feature sets are rejected.
	empty := &TrainingSet{}
	if _, err := LearnStumps(empty, ontology.Q("X"), ontology.PIScoreClassification,
		ontology.ClassHigh, ontology.ClassLow, learnVars, StumpParams{}); err == nil {
		t.Error("empty set should fail")
	}
	oneClass := syntheticTraining(50, false, 5)
	for i := range oneClass.Examples {
		oneClass.Examples[i].Good = true
	}
	if _, err := LearnStumps(oneClass, ontology.Q("X"), ontology.PIScoreClassification,
		ontology.ClassHigh, ontology.ClassLow, learnVars, StumpParams{}); err == nil {
		t.Error("single-class set should fail")
	}
	unbound := syntheticTraining(50, false, 6)
	if _, err := LearnStumps(unbound, ontology.Q("X"), ontology.PIScoreClassification,
		ontology.ClassHigh, ontology.ClassLow, condition.Bindings{}, StumpParams{}); err == nil {
		t.Error("unbound features should fail")
	}
	foreign := syntheticTraining(10, false, 7)
	foreign.Examples = append(foreign.Examples, Example{Item: rdf.IRI("urn:stranger"), Good: true})
	if _, err := LearnStumps(foreign, ontology.Q("X"), ontology.PIScoreClassification,
		ontology.ClassHigh, ontology.ClassLow, learnVars, StumpParams{}); err == nil {
		t.Error("example outside the map should fail")
	}
	if _, err := LearnLinearScore(empty, ontology.Q("X"), ontology.Q("tag/x")); err == nil {
		t.Error("linear learner should validate too")
	}
}

func TestLearnLinearScoreSeparates(t *testing.T) {
	ts := syntheticTraining(300, false, 8)
	score, err := LearnLinearScore(ts, ontology.Q("LearnedScore"), ontology.Q("tag/learned"))
	if err != nil {
		t.Fatalf("LearnLinearScore: %v", err)
	}
	m := ts.Amap.Clone()
	if err := score.Assert(m); err != nil {
		t.Fatal(err)
	}
	// Mean score of positives must clearly exceed mean of negatives.
	var posSum, negSum float64
	var posN, negN int
	for _, ex := range ts.Examples {
		v, ok := m.Get(ex.Item, ontology.Q("tag/learned")).AsFloat()
		if !ok {
			t.Fatalf("no learned score on %v", ex.Item)
		}
		if v < 0 || v > 100 {
			t.Fatalf("score %v out of [0,100]", v)
		}
		if ex.Good {
			posSum += v
			posN++
		} else {
			negSum += v
			negN++
		}
	}
	posMean, negMean := posSum/float64(posN), negSum/float64(negN)
	if posMean < negMean+20 {
		t.Errorf("learned score barely separates: pos %.1f vs neg %.1f", posMean, negMean)
	}
}

func TestLearnedScoreWithClassifierThreshold(t *testing.T) {
	// Compose: learned score + distribution-relative classification — the
	// full "derive quality functions from examples" pipeline.
	ts := syntheticTraining(200, false, 9)
	score, err := LearnLinearScore(ts, ontology.Q("LearnedScore"), ontology.Q("tag/learned"))
	if err != nil {
		t.Fatal(err)
	}
	classifier := &StatClassifier{
		ClassIRI: ontology.Q("LearnedClassifier"),
		Model:    ontology.PIScoreClassification,
		Low:      ontology.ClassLow,
		Mid:      ontology.ClassMid,
		High:     ontology.ClassHigh,
		Inputs:   ts.Features,
		Fn:       score.Fn,
	}
	m := ts.Amap.Clone()
	if err := classifier.Assert(m); err != nil {
		t.Fatal(err)
	}
	// Every item classified; highs are predominantly true positives.
	high, highGood := 0, 0
	truth := map[evidence.Item]bool{}
	for _, ex := range ts.Examples {
		truth[ex.Item] = ex.Good
	}
	for _, it := range m.Items() {
		if m.Class(it, ontology.PIScoreClassification) == ontology.ClassHigh {
			high++
			if truth[it] {
				highGood++
			}
		}
	}
	if high == 0 {
		t.Fatal("no items classified high")
	}
	if frac := float64(highGood) / float64(high); frac < 0.8 {
		t.Errorf("high class purity = %.2f, want ≥ 0.8", frac)
	}
}

func BenchmarkLearnStumps(b *testing.B) {
	ts := syntheticTraining(300, true, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := LearnStumps(ts, ontology.Q("L"), ontology.PIScoreClassification,
			ontology.ClassHigh, ontology.ClassLow, learnVars, StumpParams{MaxDepth: 3}); err != nil {
			b.Fatal(err)
		}
	}
}
