// Package qa provides the reusable quality-assertion library of the
// running example (paper §1.1, §5.1): protein-identification scores over
// Hit Ratio and Mass Coverage, the three-way avg±stddev classifier, a
// generic decision-tree classifier for "arbitrary heavy-weight decision
// models" (§4), and the curation-credibility QA built on Uniprot-style
// evidence codes (§3, [16]).
//
// QAs are collection-scoped (classification thresholds derive from the
// whole run's score distribution) and depend only on evidence, never on
// the data itself, so each QA applies to any data set annotated with its
// required evidence types.
package qa

import (
	"fmt"
	"math"

	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/ops"
	"qurator/internal/rdf"
)

// ScoreFunc computes a score from the evidence values of one item. Inputs
// are keyed by evidence type; missing evidence arrives as Null values.
type ScoreFunc func(in map[rdf.Term]evidence.Value) (float64, error)

// Score is a generic scoring QA: it applies a ScoreFunc to each item and
// writes the result under a tag key.
type Score struct {
	ClassIRI rdf.Term
	// Tag is the map key the score is written under (the view's tagname).
	Tag rdf.Term
	// Inputs are the required evidence types.
	Inputs []rdf.Term
	Fn     ScoreFunc
	// SkipMissing, when set, silently skips items missing some input
	// evidence instead of failing the assertion.
	SkipMissing bool
}

// Class implements ops.QualityAssertion.
func (s *Score) Class() rdf.Term { return s.ClassIRI }

// Requires implements ops.QualityAssertion.
func (s *Score) Requires() []rdf.Term { return s.Inputs }

// Provides implements ops.QualityAssertion.
func (s *Score) Provides() []rdf.Term { return []rdf.Term{s.Tag} }

// ItemWise implements ops.ItemWise: each item's score is a function of
// its own evidence vector only, so scoring shards freely.
func (s *Score) ItemWise() bool { return true }

// Assert implements ops.QualityAssertion.
func (s *Score) Assert(m *evidence.Map) error {
	if s.Fn == nil {
		return fmt.Errorf("qa: score %v has no function", s.ClassIRI)
	}
	for _, item := range m.Items() {
		in := make(map[rdf.Term]evidence.Value, len(s.Inputs))
		for _, typ := range s.Inputs {
			in[typ] = m.Get(item, typ)
		}
		// Missing-input handling is delegated to the score function: some
		// inputs are alternatives (q:coverage vs q:MassCoverage) or
		// optional (q:peptidesCount), so only the function knows whether
		// the vector is sufficient.
		score, err := s.Fn(in)
		if err != nil {
			if s.SkipMissing {
				continue
			}
			return fmt.Errorf("qa: score %v on %v: %w", s.ClassIRI, item, err)
		}
		m.Set(item, s.Tag, evidence.Float(score))
	}
	return nil
}

func needFloat(in map[rdf.Term]evidence.Value, typ rdf.Term) (float64, error) {
	f, ok := in[typ].AsFloat()
	if !ok {
		return 0, fmt.Errorf("missing or non-numeric %v", typ)
	}
	return f, nil
}

// UniversalPIScoreFn scores a protein identification from Hit Ratio, Mass
// Coverage and matched-peptide count, after the universal PMF quality
// metrics of Stead, Preece & Brown [20]: HR measures the spectrum's
// signal-to-noise, MC the fraction of sequence matched, and the peptide
// count stabilises the estimate for short sequences. The exact functional
// form used by the authors' Imprint deployment is not published; this
// combination preserves its documented behaviour — monotone in HR and MC,
// sub-linear in peptide count, on a 0–100 scale.
func UniversalPIScoreFn(in map[rdf.Term]evidence.Value) (float64, error) {
	hr, err := needFloat(in, ontology.HitRatio)
	if err != nil {
		return 0, err
	}
	mc, err := needFloat(in, ontology.Coverage)
	if err != nil {
		// The §5.1 view declares the evidence as q:coverage; accept the
		// canonical MassCoverage type as an alias.
		mc, err = needFloat(in, ontology.MassCoverage)
		if err != nil {
			return 0, err
		}
	}
	pep := 1.0
	if p, ok := in[ontology.PeptidesCount].AsFloat(); ok && p > 0 {
		pep = p
	}
	return 100 * hr * math.Sqrt(mc) * (1 - 1/(1+math.Log1p(pep))), nil
}

// NewUniversalPIScore returns the HR+MC score QA of the §5.1 view
// (servicetype q:UniversalPIScore2, tagname "HR MC").
func NewUniversalPIScore(tag rdf.Term) *Score {
	return &Score{
		ClassIRI:    ontology.UniversalPIScore2,
		Tag:         tag,
		Inputs:      []rdf.Term{ontology.HitRatio, ontology.Coverage, ontology.MassCoverage, ontology.PeptidesCount},
		Fn:          UniversalPIScoreFn,
		SkipMissing: false,
	}
}

// NewHRScore returns the Hit-Ratio-only score QA — the second QA of the
// §5.1 view, kept deliberately simpler so users can compare the two
// criteria's effects.
func NewHRScore(tag rdf.Term) *Score {
	return &Score{
		ClassIRI: ontology.HRScoreAssertion,
		Tag:      tag,
		Inputs:   []rdf.Term{ontology.HitRatio},
		Fn: func(in map[rdf.Term]evidence.Value) (float64, error) {
			hr, err := needFloat(in, ontology.HitRatio)
			if err != nil {
				return 0, err
			}
			return 100 * hr, nil
		},
	}
}

// StatClassifier is the three-way classification QA of §5.1: it computes a
// score per item, derives thresholds from the score distribution of the
// whole collection — (avg − stddev) and (avg + stddev), per the paper's
// footnote 19 — and assigns each item a class label from its
// classification model.
type StatClassifier struct {
	ClassIRI rdf.Term
	// Model is the ClassificationModel the labels belong to.
	Model rdf.Term
	// Low, Mid, High are the label individuals.
	Low, Mid, High rdf.Term
	// Inputs and Fn define the underlying score.
	Inputs []rdf.Term
	Fn     ScoreFunc
	// ScoreTag, when non-zero, additionally records the raw score.
	ScoreTag rdf.Term
}

// NewPIScoreClassifier returns the §5.1 PIScoreClassifier: low/mid/high
// over the HR+MC score distribution.
func NewPIScoreClassifier() *StatClassifier {
	return &StatClassifier{
		ClassIRI: ontology.PIScoreClassifier,
		Model:    ontology.PIScoreClassification,
		Low:      ontology.ClassLow,
		Mid:      ontology.ClassMid,
		High:     ontology.ClassHigh,
		Inputs:   []rdf.Term{ontology.HitRatio, ontology.Coverage, ontology.MassCoverage, ontology.PeptidesCount},
		Fn:       UniversalPIScoreFn,
	}
}

// Class implements ops.QualityAssertion.
func (c *StatClassifier) Class() rdf.Term { return c.ClassIRI }

// Requires implements ops.QualityAssertion.
func (c *StatClassifier) Requires() []rdf.Term { return c.Inputs }

// Provides implements ops.QualityAssertion.
func (c *StatClassifier) Provides() []rdf.Term {
	out := []rdf.Term{c.Model}
	if !c.ScoreTag.IsZero() {
		out = append(out, c.ScoreTag)
	}
	return out
}

// ItemWise implements ops.ItemWise: the classifier is collection-scoped —
// its avg±stddev thresholds derive from the whole run's score
// distribution (§5.1), so sharding it would change every label.
func (c *StatClassifier) ItemWise() bool { return false }

// Assert implements ops.QualityAssertion. Items whose score cannot be
// computed receive no class assignment.
func (c *StatClassifier) Assert(m *evidence.Map) error {
	if c.Fn == nil {
		return fmt.Errorf("qa: classifier %v has no score function", c.ClassIRI)
	}
	type scored struct {
		item evidence.Item
		s    float64
	}
	var rows []scored
	for _, item := range m.Items() {
		in := make(map[rdf.Term]evidence.Value, len(c.Inputs))
		for _, typ := range c.Inputs {
			in[typ] = m.Get(item, typ)
		}
		s, err := c.Fn(in)
		if err != nil {
			continue
		}
		rows = append(rows, scored{item, s})
	}
	if len(rows) == 0 {
		return nil
	}
	vals := make([]float64, len(rows))
	for i, r := range rows {
		vals[i] = r.s
	}
	stats := evidence.ComputeStats(vals)
	lo, hi := stats.Mean-stats.StdDev, stats.Mean+stats.StdDev
	for _, r := range rows {
		var label rdf.Term
		switch {
		case r.s < lo:
			label = c.Low
		case r.s > hi:
			label = c.High
		default:
			label = c.Mid
		}
		m.SetClass(r.item, c.Model, label)
		if !c.ScoreTag.IsZero() {
			m.Set(r.item, c.ScoreTag, evidence.Float(r.s))
		}
	}
	return nil
}

// Thresholds exposes the classifier's cut points for a map — used by the
// threshold-exploration example and by actions that filter on
// "score > avg + stddev" (the Figure 7 experiment).
func (c *StatClassifier) Thresholds(m *evidence.Map) (lo, hi float64, err error) {
	var vals []float64
	for _, item := range m.Items() {
		in := make(map[rdf.Term]evidence.Value, len(c.Inputs))
		for _, typ := range c.Inputs {
			in[typ] = m.Get(item, typ)
		}
		s, err := c.Fn(in)
		if err != nil {
			continue
		}
		vals = append(vals, s)
	}
	if len(vals) == 0 {
		return 0, 0, fmt.Errorf("qa: no scorable items")
	}
	stats := evidence.ComputeStats(vals)
	return stats.Mean - stats.StdDev, stats.Mean + stats.StdDev, nil
}

var _ ops.QualityAssertion = (*Score)(nil)
var _ ops.QualityAssertion = (*StatClassifier)(nil)
