package qa

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"qurator/internal/condition"
	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/rdf"
)

func item(i int) evidence.Item {
	return rdf.IRI(fmt.Sprintf("urn:lsid:test.org:hit:%d", i))
}

// imprintMap builds a map with HR/MC/peptide evidence for n items; HR and
// MC increase with the index so higher items score higher.
func imprintMap(n int) *evidence.Map {
	m := evidence.NewMap()
	for i := 0; i < n; i++ {
		frac := float64(i+1) / float64(n)
		m.Set(item(i), ontology.HitRatio, evidence.Float(frac))
		m.Set(item(i), ontology.Coverage, evidence.Float(frac*0.8))
		m.Set(item(i), ontology.PeptidesCount, evidence.Int(int64(3+i)))
	}
	return m
}

func TestUniversalPIScoreMonotone(t *testing.T) {
	mk := func(hr, mc float64, pep int64) map[rdf.Term]evidence.Value {
		return map[rdf.Term]evidence.Value{
			ontology.HitRatio:      evidence.Float(hr),
			ontology.Coverage:      evidence.Float(mc),
			ontology.PeptidesCount: evidence.Int(pep),
		}
	}
	base, err := UniversalPIScoreFn(mk(0.5, 0.4, 5))
	if err != nil {
		t.Fatal(err)
	}
	higherHR, _ := UniversalPIScoreFn(mk(0.7, 0.4, 5))
	higherMC, _ := UniversalPIScoreFn(mk(0.5, 0.6, 5))
	higherPep, _ := UniversalPIScoreFn(mk(0.5, 0.4, 20))
	if higherHR <= base || higherMC <= base || higherPep <= base {
		t.Errorf("score must be monotone: base=%v hr=%v mc=%v pep=%v", base, higherHR, higherMC, higherPep)
	}
	if base <= 0 || base > 100 {
		t.Errorf("score out of range: %v", base)
	}
}

func TestUniversalPIScoreAliasesMassCoverage(t *testing.T) {
	// The §5.1 view declares q:coverage; the canonical type is
	// q:MassCoverage — both must work.
	in := map[rdf.Term]evidence.Value{
		ontology.HitRatio:     evidence.Float(0.5),
		ontology.MassCoverage: evidence.Float(0.4),
	}
	if _, err := UniversalPIScoreFn(in); err != nil {
		t.Errorf("MassCoverage alias rejected: %v", err)
	}
	delete(in, ontology.MassCoverage)
	if _, err := UniversalPIScoreFn(in); err == nil {
		t.Error("missing coverage should fail")
	}
}

func TestScoreAssertWritesTag(t *testing.T) {
	m := imprintMap(5)
	tag := ontology.Q("tag/HR_MC")
	s := NewUniversalPIScore(tag)
	// The §5.1 view requires peptidesCount too, but our Fn treats it as
	// optional; items missing required evidence fail unless SkipMissing.
	s.SkipMissing = true
	if err := s.Assert(m); err != nil {
		t.Fatalf("Assert: %v", err)
	}
	for _, it := range m.Items() {
		if !m.Has(it, tag) {
			t.Errorf("no score tag on %v", it)
		}
	}
	// Monotone in the index by construction.
	prev := -1.0
	for _, it := range m.Items() {
		v, _ := m.Get(it, tag).AsFloat()
		if v <= prev {
			t.Errorf("scores not increasing: %v after %v", v, prev)
		}
		prev = v
	}
	if s.Class() != ontology.UniversalPIScore2 {
		t.Error("wrong QA class")
	}
	if len(s.Requires()) == 0 || len(s.Provides()) != 1 {
		t.Error("Requires/Provides wrong")
	}
}

func TestScoreSkipMissingVsFail(t *testing.T) {
	m := evidence.NewMap(item(0))
	m.Set(item(0), ontology.HitRatio, evidence.Float(0.5))
	// No coverage evidence at all.
	tag := ontology.Q("tag/s")
	strict := NewUniversalPIScore(tag)
	if err := strict.Assert(m); err == nil {
		t.Error("strict score should fail on missing evidence")
	}
	lax := NewUniversalPIScore(tag)
	lax.SkipMissing = true
	if err := lax.Assert(m); err != nil {
		t.Errorf("SkipMissing should not fail: %v", err)
	}
	if m.Has(item(0), tag) {
		t.Error("skipped item should have no score")
	}
	empty := &Score{ClassIRI: ontology.Q("X"), Tag: tag}
	if err := empty.Assert(m); err == nil {
		t.Error("score without function should fail")
	}
}

func TestHRScore(t *testing.T) {
	m := evidence.NewMap(item(0))
	m.Set(item(0), ontology.HitRatio, evidence.Float(0.42))
	tag := ontology.Q("tag/HR")
	s := NewHRScore(tag)
	if err := s.Assert(m); err != nil {
		t.Fatal(err)
	}
	v, _ := m.Get(item(0), tag).AsFloat()
	if math.Abs(v-42) > 1e-9 {
		t.Errorf("HR score = %v, want 42", v)
	}
}

func TestPIScoreClassifierThreeWay(t *testing.T) {
	// A distribution with clear outliers: many mid values, one low, one
	// high.
	m := evidence.NewMap()
	hrs := []float64{0.02, 0.5, 0.5, 0.5, 0.52, 0.48, 0.5, 0.99}
	for i, hr := range hrs {
		m.Set(item(i), ontology.HitRatio, evidence.Float(hr))
		m.Set(item(i), ontology.Coverage, evidence.Float(hr))
		m.Set(item(i), ontology.PeptidesCount, evidence.Int(10))
	}
	c := NewPIScoreClassifier()
	if err := c.Assert(m); err != nil {
		t.Fatal(err)
	}
	if got := m.Class(item(0), ontology.PIScoreClassification); got != ontology.ClassLow {
		t.Errorf("item 0 class = %v, want low", got)
	}
	if got := m.Class(item(7), ontology.PIScoreClassification); got != ontology.ClassHigh {
		t.Errorf("item 7 class = %v, want high", got)
	}
	for i := 1; i <= 6; i++ {
		if got := m.Class(item(i), ontology.PIScoreClassification); got != ontology.ClassMid {
			t.Errorf("item %d class = %v, want mid", i, got)
		}
	}
}

func TestClassifierThresholdsAvgStdDev(t *testing.T) {
	m := imprintMap(20)
	c := NewPIScoreClassifier()
	lo, hi, err := c.Thresholds(m)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo < hi) {
		t.Fatalf("thresholds %v, %v", lo, hi)
	}
	// Recompute scores and verify lo/hi equal mean∓stddev.
	var scores []float64
	for _, it := range m.Items() {
		in := map[rdf.Term]evidence.Value{
			ontology.HitRatio:      m.Get(it, ontology.HitRatio),
			ontology.Coverage:      m.Get(it, ontology.Coverage),
			ontology.PeptidesCount: m.Get(it, ontology.PeptidesCount),
		}
		s, err := UniversalPIScoreFn(in)
		if err != nil {
			t.Fatal(err)
		}
		scores = append(scores, s)
	}
	st := evidence.ComputeStats(scores)
	if math.Abs(lo-(st.Mean-st.StdDev)) > 1e-9 || math.Abs(hi-(st.Mean+st.StdDev)) > 1e-9 {
		t.Errorf("thresholds (%v, %v) != mean∓stddev (%v, %v)", lo, hi, st.Mean-st.StdDev, st.Mean+st.StdDev)
	}
}

func TestClassifierCollectionScoped(t *testing.T) {
	// The same item classifies differently depending on the collection it
	// appears in — QAs are collection-scoped (paper §2).
	mkMap := func(others []float64) *evidence.Map {
		m := evidence.NewMap()
		m.Set(item(0), ontology.HitRatio, evidence.Float(0.5))
		m.Set(item(0), ontology.Coverage, evidence.Float(0.5))
		for i, hr := range others {
			m.Set(item(i+1), ontology.HitRatio, evidence.Float(hr))
			m.Set(item(i+1), ontology.Coverage, evidence.Float(hr))
		}
		return m
	}
	c := NewPIScoreClassifier()

	amongLow := mkMap([]float64{0.05, 0.06, 0.06, 0.05, 0.05, 0.06})
	if err := c.Assert(amongLow); err != nil {
		t.Fatal(err)
	}
	amongHigh := mkMap([]float64{0.95, 0.96, 0.96, 0.95, 0.95, 0.96})
	if err := c.Assert(amongHigh); err != nil {
		t.Fatal(err)
	}
	clsLow := amongLow.Class(item(0), ontology.PIScoreClassification)
	clsHigh := amongHigh.Class(item(0), ontology.PIScoreClassification)
	if clsLow != ontology.ClassHigh {
		t.Errorf("among weak hits, item 0 should be high, got %v", clsLow)
	}
	if clsHigh != ontology.ClassLow {
		t.Errorf("among strong hits, item 0 should be low, got %v", clsHigh)
	}
}

func TestClassifierSkipsUnscorable(t *testing.T) {
	m := imprintMap(5)
	m.AddItem(item(99)) // no evidence
	c := NewPIScoreClassifier()
	if err := c.Assert(m); err != nil {
		t.Fatal(err)
	}
	if !m.Class(item(99), ontology.PIScoreClassification).IsZero() {
		t.Error("unscorable item should have no class")
	}
	empty := evidence.NewMap(item(0))
	if err := c.Assert(empty); err != nil {
		t.Errorf("all-unscorable collection should not fail: %v", err)
	}
	if _, _, err := c.Thresholds(empty); err == nil {
		t.Error("Thresholds over unscorable collection should fail")
	}
}

// Property: every scorable item receives exactly one of the three labels,
// and label boundaries respect the score ordering (low scores never class
// above high scores).
func TestClassifierLabelOrderingProperty(t *testing.T) {
	rank := map[rdf.Term]int{ontology.ClassLow: 0, ontology.ClassMid: 1, ontology.ClassHigh: 2}
	f := func(seed int64) bool {
		n := int(seed%40) + 2
		if n < 0 {
			n = -n + 2
		}
		m := evidence.NewMap()
		for i := 0; i < n; i++ {
			hr := float64((seed>>(i%8))&0xff%100) / 100
			m.Set(item(i), ontology.HitRatio, evidence.Float(hr))
			m.Set(item(i), ontology.Coverage, evidence.Float(hr))
		}
		c := NewPIScoreClassifier()
		if err := c.Assert(m); err != nil {
			return false
		}
		type row struct {
			score float64
			label rdf.Term
		}
		var rows []row
		for _, it := range m.Items() {
			in := map[rdf.Term]evidence.Value{
				ontology.HitRatio: m.Get(it, ontology.HitRatio),
				ontology.Coverage: m.Get(it, ontology.Coverage),
			}
			s, err := UniversalPIScoreFn(in)
			if err != nil {
				return false
			}
			label := m.Class(it, ontology.PIScoreClassification)
			if _, ok := rank[label]; !ok {
				return false
			}
			rows = append(rows, row{s, label})
		}
		for _, a := range rows {
			for _, b := range rows {
				if a.score < b.score && rank[a.label] > rank[b.label] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDecisionTree(t *testing.T) {
	vars := condition.Bindings{
		"hr": ontology.HitRatio,
		"mc": ontology.Coverage,
	}
	tree := &DecisionTree{
		ClassIRI: ontology.Q("MyTreeQA"),
		Model:    ontology.PIScoreClassification,
		Vars:     vars,
		Root: Branch(condition.MustParse("hr > 0.5"),
			Branch(condition.MustParse("mc > 0.5"),
				Leaf(ontology.ClassHigh),
				Leaf(ontology.ClassMid)),
			Leaf(ontology.ClassLow)),
	}
	m := evidence.NewMap()
	set := func(i int, hr, mc float64) {
		m.Set(item(i), ontology.HitRatio, evidence.Float(hr))
		m.Set(item(i), ontology.Coverage, evidence.Float(mc))
	}
	set(0, 0.9, 0.9)
	set(1, 0.9, 0.2)
	set(2, 0.2, 0.9)
	if err := tree.Assert(m); err != nil {
		t.Fatal(err)
	}
	want := []rdf.Term{ontology.ClassHigh, ontology.ClassMid, ontology.ClassLow}
	for i, w := range want {
		if got := m.Class(item(i), ontology.PIScoreClassification); got != w {
			t.Errorf("item %d: class %v, want %v", i, got, w)
		}
	}
}

func TestDecisionTreeValidation(t *testing.T) {
	bad := []*DecisionTree{
		{ClassIRI: ontology.Q("T1")},                    // no root
		{ClassIRI: ontology.Q("T2"), Root: &TreeNode{}}, // leaf without label
		{ClassIRI: ontology.Q("T3"), Root: Branch(condition.MustParse("x > 1"), Leaf(ontology.ClassLow), nil)}, // missing branch
	}
	m := evidence.NewMap(item(0))
	for i, d := range bad {
		if err := d.Assert(m); err == nil {
			t.Errorf("tree %d should fail validation", i)
		}
	}
}

func TestDecisionTreeErrorPolicy(t *testing.T) {
	tree := &DecisionTree{
		ClassIRI: ontology.Q("T"),
		Model:    ontology.PIScoreClassification,
		Vars:     condition.Bindings{"hr": ontology.HitRatio},
		Root: Branch(condition.MustParse("hr > 0.5"),
			Leaf(ontology.ClassHigh), Leaf(ontology.ClassLow)),
	}
	m := evidence.NewMap(item(0)) // no evidence → condition errors
	if err := tree.Assert(m); err == nil {
		t.Error("default policy should propagate the error")
	}
	tree.ErrorTakesFalse = true
	if err := tree.Assert(m); err != nil {
		t.Fatalf("ErrorTakesFalse should not fail: %v", err)
	}
	if got := m.Class(item(0), ontology.PIScoreClassification); got != ontology.ClassLow {
		t.Errorf("error should take the false branch, got %v", got)
	}
}

func TestCredibilityQA(t *testing.T) {
	m := evidence.NewMap()
	set := func(i int, code string, impact float64) {
		m.Set(item(i), ontology.EvidenceCode, evidence.String_(code))
		if impact >= 0 {
			m.Set(item(i), ontology.JournalImpactFactor, evidence.Float(impact))
		}
	}
	set(0, "TAS", 9)  // top code, strong journal
	set(1, "IEA", -1) // uncurated, no journal
	set(2, "ISS", 2)
	set(3, "XXX", 5) // unknown code → treated as IEA
	tag := ontology.Q("tag/credibility")
	c := NewCredibilityQA(tag)
	if err := c.Assert(m); err != nil {
		t.Fatal(err)
	}
	s0, _ := m.Get(item(0), tag).AsFloat()
	s1, _ := m.Get(item(1), tag).AsFloat()
	s3, _ := m.Get(item(3), tag).AsFloat()
	if s0 <= s1 {
		t.Errorf("TAS (%v) must outscore IEA (%v)", s0, s1)
	}
	if s3 > s1+10 {
		t.Errorf("unknown code (%v) should score like IEA (%v)", s3, s1)
	}
	if m.Class(item(0), ontology.CredibilityClass).IsZero() {
		t.Error("credibility class missing")
	}
}

func TestCredibilityScoreImpactClamped(t *testing.T) {
	mk := func(impact float64) map[rdf.Term]evidence.Value {
		return map[rdf.Term]evidence.Value{
			ontology.EvidenceCode:        evidence.String_("TAS"),
			ontology.JournalImpactFactor: evidence.Float(impact),
		}
	}
	at10, _ := CredibilityScoreFn(mk(10))
	at50, _ := CredibilityScoreFn(mk(50))
	if at10 != at50 {
		t.Errorf("impact factor must clamp at 10: %v vs %v", at10, at50)
	}
	neg, _ := CredibilityScoreFn(mk(-5))
	zero, _ := CredibilityScoreFn(mk(0))
	if neg != zero {
		t.Errorf("negative impact must clamp at 0: %v vs %v", neg, zero)
	}
}

func BenchmarkUniversalPIScore(b *testing.B) {
	m := imprintMap(100)
	s := NewUniversalPIScore(ontology.Q("tag/s"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.Assert(m.Clone()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPIScoreClassifier(b *testing.B) {
	m := imprintMap(100)
	c := NewPIScoreClassifier()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := c.Assert(m.Clone()); err != nil {
			b.Fatal(err)
		}
	}
}
