package qa

import (
	"fmt"

	"qurator/internal/condition"
	"qurator/internal/evidence"
	"qurator/internal/rdf"
)

// TreeNode is one node of a decision-tree QA. Leaves carry a Label; inner
// nodes carry a condition and two branches. The paper positions QAs as
// hosts for "arbitrary heavy-weight decision models, for instance complex
// decision trees" (§4); this type realises that directly over the
// condition language.
type TreeNode struct {
	// Cond is the test at an inner node (nil for leaves).
	Cond condition.Expr
	// True and False are the branches taken on the condition outcome.
	True, False *TreeNode
	// Label is the classification assigned at a leaf.
	Label rdf.Term
}

// Leaf returns a leaf node assigning label.
func Leaf(label rdf.Term) *TreeNode { return &TreeNode{Label: label} }

// Branch returns an inner node testing cond.
func Branch(cond condition.Expr, ifTrue, ifFalse *TreeNode) *TreeNode {
	return &TreeNode{Cond: cond, True: ifTrue, False: ifFalse}
}

// DecisionTree is a classifier QA driven by a decision tree over evidence
// values.
type DecisionTree struct {
	ClassIRI rdf.Term
	Model    rdf.Term
	Root     *TreeNode
	Inputs   []rdf.Term
	Vars     condition.Bindings
	// OnError controls what an evaluation error at an inner node means:
	// true → take the False branch (default), false → fail the assertion.
	ErrorTakesFalse bool
}

// Class implements ops.QualityAssertion.
func (d *DecisionTree) Class() rdf.Term { return d.ClassIRI }

// Requires implements ops.QualityAssertion.
func (d *DecisionTree) Requires() []rdf.Term { return d.Inputs }

// Provides implements ops.QualityAssertion.
func (d *DecisionTree) Provides() []rdf.Term { return []rdf.Term{d.Model} }

// Validate checks the tree's structural invariants: every inner node has
// both branches, every leaf has a label, and the tree is finite (no
// sharing-induced cycles within a generous depth bound).
func (d *DecisionTree) Validate() error {
	if d.Root == nil {
		return fmt.Errorf("qa: decision tree %v has no root", d.ClassIRI)
	}
	return validateNode(d.Root, 0)
}

func validateNode(n *TreeNode, depth int) error {
	const maxDepth = 10000
	if depth > maxDepth {
		return fmt.Errorf("qa: decision tree exceeds depth %d (cycle?)", maxDepth)
	}
	if n.Cond == nil {
		if n.Label.IsZero() {
			return fmt.Errorf("qa: decision tree leaf without label")
		}
		return nil
	}
	if n.True == nil || n.False == nil {
		return fmt.Errorf("qa: decision tree inner node missing a branch")
	}
	if err := validateNode(n.True, depth+1); err != nil {
		return err
	}
	return validateNode(n.False, depth+1)
}

// ItemWise implements ops.ItemWise: each item walks the tree over its own
// evidence row, so classification shards freely.
func (d *DecisionTree) ItemWise() bool { return true }

// Assert implements ops.QualityAssertion.
func (d *DecisionTree) Assert(m *evidence.Map) error {
	if err := d.Validate(); err != nil {
		return err
	}
	for _, item := range m.Items() {
		node := d.Root
		for node.Cond != nil {
			ok, err := node.Cond.Eval(&condition.Context{Amap: m, Item: item, Vars: d.Vars})
			if err != nil {
				if !d.ErrorTakesFalse {
					return fmt.Errorf("qa: decision tree %v on %v: %w", d.ClassIRI, item, err)
				}
				ok = false
			}
			if ok {
				node = node.True
			} else {
				node = node.False
			}
		}
		m.SetClass(item, d.Model, node.Label)
	}
	return nil
}
