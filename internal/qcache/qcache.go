// Package qcache is a content-addressed evidence cache for the enactment
// data plane: service invocations whose response is a pure function of
// their request envelope (QA assertions, filter and split actions) are
// memoised under a digest of (service, operation, configuration, shard
// payload), so re-enacting a view over unchanged items — the repeated
// Figure-7 run, or the overlap region of consecutive sliding windows —
// answers from memory instead of re-invoking the service.
//
// The cache is bounded two ways: an LRU entry cap and an optional TTL.
// Concurrent identical lookups are coalesced singleflight-style — one
// caller computes, the rest wait for its result — so a fan-out of
// identical shards costs one upstream call, not N.
//
// Cached values are shared between callers and MUST be treated as
// immutable. The data plane stores response *services.Envelope values,
// which every consumer decodes into fresh evidence maps, so the shared
// value is never written after insertion. Invocations whose result
// depends on state outside the envelope (data enrichment reads
// repositories; annotators write them) must not be cached — see
// DESIGN.md "Enactment data plane".
package qcache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"sync"
	"sync/atomic"
	"time"

	"qurator/internal/evidence"
	"qurator/internal/telemetry"
)

// Cache-level metrics, labelled by cache name so several caches (one per
// framework, plus test instances) stay distinguishable on /metrics.
var (
	cacheHits = telemetry.Default.CounterVec(
		"qurator_qcache_hits_total",
		"Content-addressed cache lookups answered from memory.",
		"cache")
	cacheMisses = telemetry.Default.CounterVec(
		"qurator_qcache_misses_total",
		"Content-addressed cache lookups that invoked the upstream compute.",
		"cache")
	cacheCoalesced = telemetry.Default.CounterVec(
		"qurator_qcache_coalesced_total",
		"Lookups that waited on an identical in-flight compute instead of issuing their own.",
		"cache")
	cacheEvictions = telemetry.Default.CounterVec(
		"qurator_qcache_evictions_total",
		"Entries dropped by the LRU bound or found expired by TTL.",
		"cache")
	cacheEntries = telemetry.Default.GaugeVec(
		"qurator_qcache_entries",
		"Entries currently resident in the cache.",
		"cache")
)

// Options parameterises a Cache.
type Options struct {
	// Name labels the cache's telemetry series (default "default").
	Name string
	// MaxEntries bounds the number of resident entries; the least
	// recently used entry is evicted beyond it (default 4096).
	MaxEntries int
	// TTL expires entries this long after insertion; 0 disables expiry.
	TTL time.Duration
}

// Outcome classifies one GetOrCompute call.
type Outcome int

const (
	// Miss: this caller ran the compute and populated the cache.
	Miss Outcome = iota
	// Hit: the value was resident and unexpired.
	Hit
	// Coalesced: an identical compute was in flight; this caller waited
	// for its result.
	Coalesced
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Miss:
		return "miss"
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Stats is a point-in-time snapshot of a cache's counters.
type Stats struct {
	Hits, Misses, Coalesced, Evictions uint64
	Entries                            int
}

// entry is one cache slot. ready is closed when the compute finishes;
// until then val/err are unset and waiters block on it (singleflight).
type entry struct {
	ready   chan struct{}
	val     any
	err     error
	expires time.Time // zero = never
	elem    *list.Element
}

// Cache is a bounded content-addressed memo table with singleflight
// coalescing. Safe for concurrent use.
type Cache struct {
	name string
	max  int
	ttl  time.Duration

	mu      sync.Mutex
	entries map[string]*entry
	lru     *list.List // front = most recent; values are string keys

	hits, misses, coalesced, evictions atomic.Uint64
}

// New returns an empty cache.
func New(opts Options) *Cache {
	if opts.Name == "" {
		opts.Name = "default"
	}
	if opts.MaxEntries <= 0 {
		opts.MaxEntries = 4096
	}
	return &Cache{
		name:    opts.Name,
		max:     opts.MaxEntries,
		ttl:     opts.TTL,
		entries: make(map[string]*entry),
		lru:     list.New(),
	}
}

// Name returns the cache's telemetry label.
func (c *Cache) Name() string { return c.name }

// Len returns the number of resident (computed) entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	entries := c.lru.Len()
	c.mu.Unlock()
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
		Entries:   entries,
	}
}

// GetOrCompute returns the value cached under key, computing it with fn
// on a miss. Concurrent calls for the same key run fn at most once: the
// first caller computes, later callers wait (or abandon the wait when
// their ctx ends — the compute itself is not cancelled, its result still
// lands in the cache for the next lookup). Errors are returned to every
// coalesced waiter but never cached: the next lookup recomputes.
func (c *Cache) GetOrCompute(ctx context.Context, key string, fn func() (any, error)) (any, Outcome, error) {
	now := time.Now()
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		select {
		case <-e.ready:
			// Computed. Expired entries fall through to recompute.
			if e.expires.IsZero() || now.Before(e.expires) {
				c.lru.MoveToFront(e.elem)
				c.mu.Unlock()
				c.hits.Add(1)
				cacheHits.With(c.name).Inc()
				return e.val, Hit, e.err
			}
			c.removeLocked(key, e)
			c.evictions.Add(1)
			cacheEvictions.With(c.name).Inc()
		default:
			// In flight: wait outside the lock.
			c.mu.Unlock()
			c.coalesced.Add(1)
			cacheCoalesced.With(c.name).Inc()
			select {
			case <-e.ready:
				return e.val, Coalesced, e.err
			case <-ctx.Done():
				return nil, Coalesced, ctx.Err()
			}
		}
	}
	e := &entry{ready: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	c.misses.Add(1)
	cacheMisses.With(c.name).Inc()

	val, err := fn()

	c.mu.Lock()
	e.val, e.err = val, err
	if err != nil {
		// Errors are not cached; drop the slot so the next call retries.
		delete(c.entries, key)
	} else {
		if c.ttl > 0 {
			e.expires = time.Now().Add(c.ttl)
		}
		e.elem = c.lru.PushFront(key)
		for c.lru.Len() > c.max {
			oldest := c.lru.Back()
			k := oldest.Value.(string)
			c.removeLocked(k, c.entries[k])
			c.evictions.Add(1)
			cacheEvictions.With(c.name).Inc()
		}
	}
	cacheEntries.With(c.name).Set(float64(c.lru.Len()))
	c.mu.Unlock()
	close(e.ready)
	return val, Miss, err
}

// removeLocked drops an entry; the caller holds c.mu.
func (c *Cache) removeLocked(key string, e *entry) {
	delete(c.entries, key)
	if e != nil && e.elem != nil {
		c.lru.Remove(e.elem)
		e.elem = nil
	}
	cacheEntries.With(c.name).Set(float64(c.lru.Len()))
}

// Key builds a content-addressed cache key: a SHA-256 digest over
// length-prefixed fields, so "ab"+"c" and "a"+"bc" never collide.
type Key struct {
	h       hash.Hash
	scratch [16]byte
}

// NewKey starts a key digest.
func NewKey() *Key { return &Key{h: sha256.New()} }

// Str mixes a string field into the digest.
func (k *Key) Str(s string) *Key {
	n := copy(k.scratch[:], fmt.Sprintf("%d:", len(s)))
	k.h.Write(k.scratch[:n])
	k.h.Write([]byte(s))
	return k
}

// Map mixes an evidence map's canonical encoding into the digest.
func (k *Key) Map(m *evidence.Map) *Key {
	// Hash writers never fail; WriteCanonical's error is structural only.
	_ = m.WriteCanonical(k.h)
	return k
}

// Sum finalises the digest as a hex string. The Key must not be reused.
func (k *Key) Sum() string { return hex.EncodeToString(k.h.Sum(nil)) }
