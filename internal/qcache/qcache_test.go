package qcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"qurator/internal/evidence"
	"qurator/internal/rdf"
)

func TestQCacheHitMiss(t *testing.T) {
	c := New(Options{Name: "t-hitmiss"})
	ctx := context.Background()
	calls := 0
	compute := func() (any, error) { calls++; return "value", nil }

	v, out, err := c.GetOrCompute(ctx, "k", compute)
	if err != nil || v != "value" || out != Miss {
		t.Fatalf("first lookup: got (%v, %v, %v), want (value, Miss, nil)", v, out, err)
	}
	v, out, err = c.GetOrCompute(ctx, "k", compute)
	if err != nil || v != "value" || out != Hit {
		t.Fatalf("second lookup: got (%v, %v, %v), want (value, Hit, nil)", v, out, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", s)
	}
}

func TestQCacheErrorsNotCached(t *testing.T) {
	c := New(Options{Name: "t-errors"})
	ctx := context.Background()
	calls := 0
	boom := errors.New("boom")
	compute := func() (any, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return "recovered", nil
	}
	if _, _, err := c.GetOrCompute(ctx, "k", compute); !errors.Is(err, boom) {
		t.Fatalf("first lookup error = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatalf("error was cached: %d entries", c.Len())
	}
	v, out, err := c.GetOrCompute(ctx, "k", compute)
	if err != nil || v != "recovered" || out != Miss {
		t.Fatalf("retry: got (%v, %v, %v), want (recovered, Miss, nil)", v, out, err)
	}
}

func TestQCacheLRUEviction(t *testing.T) {
	c := New(Options{Name: "t-lru", MaxEntries: 2})
	ctx := context.Background()
	put := func(k string) {
		t.Helper()
		if _, _, err := c.GetOrCompute(ctx, k, func() (any, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	put("a")
	put("b")
	// Touch "a" so "b" is the LRU victim.
	if _, out, _ := c.GetOrCompute(ctx, "a", nil); out != Hit {
		t.Fatalf("touch a: outcome %v, want Hit", out)
	}
	put("c")
	if c.Len() != 2 {
		t.Fatalf("entries = %d, want 2", c.Len())
	}
	if _, out, _ := c.GetOrCompute(ctx, "a", func() (any, error) { return "a", nil }); out != Hit {
		t.Fatalf("a should have survived, outcome %v", out)
	}
	if _, out, _ := c.GetOrCompute(ctx, "b", func() (any, error) { return "b", nil }); out != Miss {
		t.Fatalf("b should have been evicted, outcome %v", out)
	}
	if s := c.Stats(); s.Evictions == 0 {
		t.Fatalf("stats = %+v, want evictions > 0", s)
	}
}

func TestQCacheTTLExpiry(t *testing.T) {
	c := New(Options{Name: "t-ttl", TTL: time.Nanosecond})
	ctx := context.Background()
	if _, out, _ := c.GetOrCompute(ctx, "k", func() (any, error) { return 1, nil }); out != Miss {
		t.Fatalf("first: %v, want Miss", out)
	}
	time.Sleep(time.Millisecond)
	if _, out, _ := c.GetOrCompute(ctx, "k", func() (any, error) { return 2, nil }); out != Miss {
		t.Fatalf("expired entry served: %v, want Miss", out)
	}
}

func TestQCacheSingleflight(t *testing.T) {
	c := New(Options{Name: "t-flight"})
	ctx := context.Background()
	const waiters = 8
	gate := make(chan struct{})
	callCount := 0
	var mu sync.Mutex

	var wg sync.WaitGroup
	results := make([]Outcome, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, out, err := c.GetOrCompute(ctx, "k", func() (any, error) {
				mu.Lock()
				callCount++
				mu.Unlock()
				<-gate
				return "shared", nil
			})
			if err != nil || v != "shared" {
				t.Errorf("waiter %d: (%v, %v)", i, v, err)
			}
			results[i] = out
		}(i)
	}
	// Let the goroutines pile up behind the in-flight compute, then open.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if callCount != 1 {
		t.Fatalf("compute ran %d times, want 1 (singleflight)", callCount)
	}
	misses := 0
	for _, out := range results {
		if out == Miss {
			misses++
		}
	}
	if misses != 1 {
		t.Fatalf("%d Miss outcomes, want exactly 1 (rest coalesced/hit)", misses)
	}
}

func TestQCacheCoalescedWaiterHonoursContext(t *testing.T) {
	c := New(Options{Name: "t-ctxwait"})
	gate := make(chan struct{})
	defer close(gate)
	go c.GetOrCompute(context.Background(), "k", func() (any, error) {
		<-gate
		return "late", nil
	})
	// Wait until the entry is in flight.
	deadline := time.Now().Add(time.Second)
	for c.Stats().Misses == 0 {
		if time.Now().After(deadline) {
			t.Fatal("compute never started")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.GetOrCompute(ctx, "k", nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v, want context.Canceled", err)
	}
}

func TestKeyLengthPrefixing(t *testing.T) {
	a := NewKey().Str("ab").Str("c").Sum()
	b := NewKey().Str("a").Str("bc").Sum()
	if a == b {
		t.Fatal("field boundaries must affect the digest")
	}
	if x, y := NewKey().Str("x").Sum(), NewKey().Str("x").Sum(); x != y {
		t.Fatal("identical inputs must digest identically")
	}
}

func TestKeyMapDigest(t *testing.T) {
	mk := func(items ...string) *evidence.Map {
		m := evidence.NewMap()
		for i, it := range items {
			item := rdf.IRI(it)
			m.AddItem(item)
			m.Set(item, rdf.IRI("urn:k"), evidence.Float(float64(i)))
		}
		return m
	}
	same1 := NewKey().Map(mk("urn:a", "urn:b")).Sum()
	same2 := NewKey().Map(mk("urn:a", "urn:b")).Sum()
	if same1 != same2 {
		t.Fatal("equal maps must digest identically")
	}
	reordered := NewKey().Map(mk("urn:b", "urn:a")).Sum()
	if same1 == reordered {
		t.Fatal("item order must affect the digest")
	}
	m := mk("urn:a", "urn:b")
	m.Set(rdf.IRI("urn:a"), rdf.IRI("urn:k2"), evidence.String_("v"))
	changed := NewKey().Map(m).Sum()
	if same1 == changed {
		t.Fatal("evidence content must affect the digest")
	}
}

func TestQCacheConcurrentMixedKeys(t *testing.T) {
	c := New(Options{Name: "t-race", MaxEntries: 8})
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%16)
				v, _, err := c.GetOrCompute(ctx, key, func() (any, error) { return key, nil })
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if v != key {
					t.Errorf("goroutine %d: got %v for %s", g, v, key)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Fatalf("LRU bound violated: %d entries", c.Len())
	}
}
