// Package qcube maintains a daQ-style quality cube: the multidimensional
// view of quality observations that the Dataset Quality Vocabulary
// (daQ, http://purl.org/eis/vocab/daq#) models as
// (metric, computedOn, timestamp, agent) → value facts.
//
// The paper's quality views consume annotations one data item at a time;
// operators and dashboards instead ask aggregate questions — "how did
// hit-ratio on UniProt trend this week?". Answering those from the raw
// annotation graph means a full SPARQL scan per question. The cube keeps
// pre-aggregated rollups — per metric, per source, per (metric, source),
// and time-bucketed series of each — maintained incrementally on every
// write, so a slice is a handful of map lookups instead of a graph scan
// (see cmd/experiment -cube for the measured gap).
//
// Only rollups are retained, never raw observations: memory is bounded by
// #metrics × #sources × #buckets, not by write volume.
package qcube

import (
	"encoding/json"
	"math"
	"sort"
	"sync"
	"time"
)

// DaQNS is the Dataset Quality Vocabulary namespace.
const DaQNS = "http://purl.org/eis/vocab/daq#"

// Observation is one quality measurement fact, the daq:Observation shape:
// an Agent computed Metric on ComputedOn at time At, yielding Value.
type Observation struct {
	// Metric is the quality metric IRI (a q:QualityEvidence subclass in
	// the IQ model, a daq:Metric instance in daQ terms).
	Metric string `json:"metric"`
	// ComputedOn is the IRI of the resource the metric was computed on.
	ComputedOn string `json:"computedOn"`
	// Agent names the annotation function or service that computed it.
	Agent string `json:"agent,omitempty"`
	// Value is the measured value.
	Value float64 `json:"value"`
	// At is when the measurement was taken.
	At time.Time `json:"at"`
}

// Agg is an incremental aggregate over a set of observation values.
type Agg struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// Mean returns the arithmetic mean, or NaN for an empty aggregate.
func (a Agg) Mean() float64 {
	if a.Count == 0 {
		return math.NaN()
	}
	return a.Sum / float64(a.Count)
}

func (a *Agg) observe(v float64) {
	if a.Count == 0 || v < a.Min {
		a.Min = v
	}
	if a.Count == 0 || v > a.Max {
		a.Max = v
	}
	a.Count++
	a.Sum += v
}

// MarshalJSON includes the derived mean so /cube consumers need no
// client-side arithmetic.
func (a Agg) MarshalJSON() ([]byte, error) {
	type plain Agg
	mean := 0.0
	if a.Count > 0 {
		mean = a.Mean()
	}
	return json.Marshal(struct {
		plain
		Mean float64 `json:"mean"`
	}{plain(a), mean})
}

// cellKey addresses the (metric, source) dimension pair; either side may
// be empty in rollup keys.
type cellKey struct{ metric, source string }

// series is a time-bucketed rollup: bucket start (unix nanos) → aggregate.
type series map[int64]*Agg

func (s series) observe(bucket int64, v float64) {
	a := s[bucket]
	if a == nil {
		a = &Agg{}
		s[bucket] = a
	}
	a.observe(v)
}

// Cube is the incremental quality cube. All methods are safe for
// concurrent use; Observe is O(1) (a fixed number of map updates).
type Cube struct {
	window time.Duration

	mu       sync.RWMutex
	total    Agg
	byMetric map[string]*Agg
	bySource map[string]*Agg
	byCell   map[cellKey]*Agg
	// Time-bucketed variants of each rollup above.
	totalSeries  series
	metricSeries map[string]series
	sourceSeries map[string]series
	cellSeries   map[cellKey]series
}

// DefaultWindow is the bucket width used when New is given zero.
const DefaultWindow = time.Minute

// New returns an empty cube whose time series bucket observations into
// windows of the given width.
func New(window time.Duration) *Cube {
	if window <= 0 {
		window = DefaultWindow
	}
	return &Cube{
		window:       window,
		byMetric:     make(map[string]*Agg),
		bySource:     make(map[string]*Agg),
		byCell:       make(map[cellKey]*Agg),
		totalSeries:  make(series),
		metricSeries: make(map[string]series),
		sourceSeries: make(map[string]series),
		cellSeries:   make(map[cellKey]series),
	}
}

// Window returns the cube's bucket width.
func (c *Cube) Window() time.Duration { return c.window }

func (c *Cube) bucketOf(t time.Time) int64 {
	return t.Truncate(c.window).UnixNano()
}

// Observe folds one observation into every rollup.
func (c *Cube) Observe(o Observation) {
	if o.Metric == "" || o.At.IsZero() {
		return
	}
	bucket := c.bucketOf(o.At)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.total.observe(o.Value)
	c.totalSeries.observe(bucket, o.Value)
	upsert := func(m map[string]*Agg, k string) {
		a := m[k]
		if a == nil {
			a = &Agg{}
			m[k] = a
		}
		a.observe(o.Value)
	}
	upsert(c.byMetric, o.Metric)
	seriesFor(c.metricSeries, o.Metric).observe(bucket, o.Value)
	if o.ComputedOn != "" {
		upsert(c.bySource, o.ComputedOn)
		seriesFor(c.sourceSeries, o.ComputedOn).observe(bucket, o.Value)
		key := cellKey{o.Metric, o.ComputedOn}
		a := c.byCell[key]
		if a == nil {
			a = &Agg{}
			c.byCell[key] = a
		}
		a.observe(o.Value)
		s := c.cellSeries[key]
		if s == nil {
			s = make(series)
			c.cellSeries[key] = s
		}
		s.observe(bucket, o.Value)
	}
}

func seriesFor(m map[string]series, k string) series {
	s := m[k]
	if s == nil {
		s = make(series)
		m[k] = s
	}
	return s
}

// SliceQuery addresses one cube slice. Empty Metric/Source mean "all";
// zero From/To leave that end of the time range open. The range is
// half-open [From, To) over bucket start times.
type SliceQuery struct {
	Metric string    `json:"metric,omitempty"`
	Source string    `json:"source,omitempty"`
	From   time.Time `json:"from,omitempty"`
	To     time.Time `json:"to,omitempty"`
}

// WindowAgg is one time bucket of a slice.
type WindowAgg struct {
	Start time.Time `json:"start"`
	Agg   Agg       `json:"agg"`
}

// SliceResult is the answer to a SliceQuery: the overall aggregate over
// the selected cells plus the per-window series, sorted by window start.
type SliceResult struct {
	Query   SliceQuery  `json:"query"`
	Agg     Agg         `json:"agg"`
	Windows []WindowAgg `json:"windows"`
}

// Slice answers an aggregate question from the pre-computed rollups: a
// map lookup to pick the right series, then a walk over its buckets —
// never a scan of the underlying observations.
func (c *Cube) Slice(q SliceQuery) SliceResult {
	c.mu.RLock()
	defer c.mu.RUnlock()

	var s series
	switch {
	case q.Metric != "" && q.Source != "":
		s = c.cellSeries[cellKey{q.Metric, q.Source}]
	case q.Metric != "":
		s = c.metricSeries[q.Metric]
	case q.Source != "":
		s = c.sourceSeries[q.Source]
	default:
		s = c.totalSeries
	}
	res := SliceResult{Query: q}
	if s == nil {
		return res
	}

	// Unbounded queries take the fully pre-aggregated answer.
	if q.From.IsZero() && q.To.IsZero() {
		switch {
		case q.Metric != "" && q.Source != "":
			if a := c.byCell[cellKey{q.Metric, q.Source}]; a != nil {
				res.Agg = *a
			}
		case q.Metric != "":
			if a := c.byMetric[q.Metric]; a != nil {
				res.Agg = *a
			}
		case q.Source != "":
			if a := c.bySource[q.Source]; a != nil {
				res.Agg = *a
			}
		default:
			res.Agg = c.total
		}
	}

	var from, to int64 = math.MinInt64, math.MaxInt64
	if !q.From.IsZero() {
		from = q.From.UnixNano()
	}
	if !q.To.IsZero() {
		to = q.To.UnixNano()
	}
	for bucket, a := range s {
		if bucket < from || bucket >= to {
			continue
		}
		res.Windows = append(res.Windows, WindowAgg{Start: time.Unix(0, bucket).UTC(), Agg: *a})
	}
	sort.Slice(res.Windows, func(i, j int) bool {
		return res.Windows[i].Start.Before(res.Windows[j].Start)
	})
	if !(q.From.IsZero() && q.To.IsZero()) {
		for _, w := range res.Windows {
			mergeAgg(&res.Agg, w.Agg)
		}
	}
	return res
}

func mergeAgg(dst *Agg, src Agg) {
	if src.Count == 0 {
		return
	}
	if dst.Count == 0 || src.Min < dst.Min {
		dst.Min = src.Min
	}
	if dst.Count == 0 || src.Max > dst.Max {
		dst.Max = src.Max
	}
	dst.Count += src.Count
	dst.Sum += src.Sum
}

// Summary is the cube's top-level shape, served on /cube with no query.
type Summary struct {
	Observations int64          `json:"observations"`
	Window       string         `json:"window"`
	Total        Agg            `json:"total"`
	Metrics      map[string]Agg `json:"metrics"`
	Sources      map[string]Agg `json:"sources"`
}

// Summary returns per-metric and per-source rollups plus totals.
func (c *Cube) Summary() Summary {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s := Summary{
		Observations: c.total.Count,
		Window:       c.window.String(),
		Total:        c.total,
		Metrics:      make(map[string]Agg, len(c.byMetric)),
		Sources:      make(map[string]Agg, len(c.bySource)),
	}
	for k, a := range c.byMetric {
		s.Metrics[k] = *a
	}
	for k, a := range c.bySource {
		s.Sources[k] = *a
	}
	return s
}

// Len returns the total observation count folded into the cube.
func (c *Cube) Len() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.total.Count
}
