package qcube

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"qurator/internal/sparql"
)

var t0 = time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)

// genObservations produces a deterministic observation stream over
// nMetrics × nSources spread across spread of wall-clock time.
func genObservations(n, nMetrics, nSources int, spread time.Duration, seed int64) []Observation {
	rng := rand.New(rand.NewSource(seed))
	obs := make([]Observation, n)
	for i := range obs {
		obs[i] = Observation{
			Metric:     fmt.Sprintf("http://qurator.org/iq#Metric%d", rng.Intn(nMetrics)),
			ComputedOn: fmt.Sprintf("http://example.org/source/%d", rng.Intn(nSources)),
			Agent:      "http://qurator.org/agent/test",
			Value:      rng.Float64(),
			At:         t0.Add(time.Duration(rng.Int63n(int64(spread)))),
		}
	}
	return obs
}

// bruteSlice recomputes a slice from raw observations — the oracle the
// incremental rollups must match.
func bruteSlice(obs []Observation, q SliceQuery) Agg {
	var a Agg
	for _, o := range obs {
		if q.Metric != "" && o.Metric != q.Metric {
			continue
		}
		if q.Source != "" && o.ComputedOn != q.Source {
			continue
		}
		// Match the cube's bucket-granular time semantics.
		bucket := o.At.Truncate(DefaultWindow)
		if !q.From.IsZero() && bucket.Before(q.From) {
			continue
		}
		if !q.To.IsZero() && !bucket.Before(q.To) {
			continue
		}
		a.observe(o.Value)
	}
	return a
}

func aggEqual(a, b Agg) bool {
	const eps = 1e-9
	if a.Count != b.Count {
		return false
	}
	if a.Count == 0 {
		return true
	}
	return math.Abs(a.Sum-b.Sum) < eps && a.Min == b.Min && a.Max == b.Max
}

func TestCubeMatchesBruteForce(t *testing.T) {
	obs := genObservations(5000, 4, 10, 2*time.Hour, 1)
	c := New(0)
	for _, o := range obs {
		c.Observe(o)
	}
	if c.Len() != 5000 {
		t.Fatalf("Len = %d", c.Len())
	}

	queries := []SliceQuery{
		{}, // everything
		{Metric: obs[0].Metric},
		{Source: obs[0].ComputedOn},
		{Metric: obs[0].Metric, Source: obs[0].ComputedOn},
		{From: t0.Add(20 * time.Minute), To: t0.Add(80 * time.Minute)},
		{Metric: obs[1].Metric, From: t0.Add(10 * time.Minute)},
		{Source: obs[2].ComputedOn, To: t0.Add(time.Hour)},
		{Metric: obs[3].Metric, Source: obs[3].ComputedOn,
			From: t0.Add(5 * time.Minute), To: t0.Add(95 * time.Minute)},
		{Metric: "http://qurator.org/iq#NoSuchMetric"},
	}
	for i, q := range queries {
		got := c.Slice(q)
		want := bruteSlice(obs, q)
		if !aggEqual(got.Agg, want) {
			t.Errorf("query %d (%+v): cube %+v, brute force %+v", i, q, got.Agg, want)
		}
		// Windows must sum back to the slice aggregate.
		var sum Agg
		for _, w := range got.Windows {
			mergeAgg(&sum, w.Agg)
		}
		if !aggEqual(sum, got.Agg) {
			t.Errorf("query %d: windows sum %+v != agg %+v", i, sum, got.Agg)
		}
		for j := 1; j < len(got.Windows); j++ {
			if !got.Windows[j-1].Start.Before(got.Windows[j].Start) {
				t.Errorf("query %d: windows out of order", i)
			}
		}
	}
}

func TestCubeSummaryAndJSON(t *testing.T) {
	c := New(time.Minute)
	c.Observe(Observation{Metric: "m1", ComputedOn: "s1", Value: 0.5, At: t0})
	c.Observe(Observation{Metric: "m1", ComputedOn: "s2", Value: 0.7, At: t0})
	c.Observe(Observation{Metric: "m2", ComputedOn: "s1", Value: 0.1, At: t0.Add(time.Minute)})
	// Invalid observations are dropped, not folded as zeros.
	c.Observe(Observation{Metric: "", Value: 9, At: t0})
	c.Observe(Observation{Metric: "m1", Value: 9}) // zero time

	s := c.Summary()
	if s.Observations != 3 || len(s.Metrics) != 2 || len(s.Sources) != 2 {
		t.Fatalf("Summary = %+v", s)
	}
	if m1 := s.Metrics["m1"]; m1.Count != 2 || m1.Min != 0.5 || m1.Max != 0.7 {
		t.Fatalf("m1 = %+v", m1)
	}

	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	total := decoded["total"].(map[string]any)
	if total["mean"].(float64) == 0 {
		t.Fatalf("marshalled Agg missing derived mean: %s", data)
	}
}

func TestObservationRDFRoundTrip(t *testing.T) {
	obs := genObservations(200, 3, 5, time.Hour, 2)
	g, err := ObservationsToGraph(obs)
	if err != nil {
		t.Fatal(err)
	}
	// Every observation carries type/metric/value/timestamp/computedOn/
	// agent — six triples.
	if g.Len() != 6*len(obs) {
		t.Fatalf("graph has %d triples, want %d", g.Len(), 6*len(obs))
	}
}

// TestCubeSPARQLEquivalence cross-checks a cube slice against the same
// aggregate computed by a SPARQL scan over the daQ graph — the
// equivalence tripwire behind the -cube benchmark's speedup claim.
func TestCubeSPARQLEquivalence(t *testing.T) {
	obs := genObservations(3000, 4, 8, 90*time.Minute, 3)
	c := New(0)
	for _, o := range obs {
		c.Observe(o)
	}
	g, err := ObservationsToGraph(obs)
	if err != nil {
		t.Fatal(err)
	}

	metric := obs[0].Metric
	source := obs[0].ComputedOn
	from := t0.Add(10 * time.Minute).Truncate(DefaultWindow)
	to := t0.Add(70 * time.Minute).Truncate(DefaultWindow)

	res, err := sparql.Exec(g, SliceSPARQL(SliceQuery{
		Metric: metric, Source: source, From: from, To: to,
	}))
	if err != nil {
		t.Fatal(err)
	}
	var scan Agg
	for _, b := range res.Bindings {
		o, err := FromTerms(metric, source, b["value"], b["ts"])
		if err != nil {
			t.Fatal(err)
		}
		// Bucket-granular range semantics, like the cube.
		bucket := o.At.Truncate(DefaultWindow)
		if bucket.Before(from) || !bucket.Before(to) {
			continue
		}
		scan.observe(o.Value)
	}

	cube := c.Slice(SliceQuery{Metric: metric, Source: source, From: from, To: to})
	if !aggEqual(cube.Agg, scan) {
		t.Fatalf("cube %+v != sparql scan %+v", cube.Agg, scan)
	}
	if cube.Agg.Count == 0 {
		t.Fatal("degenerate test: slice selected no observations")
	}
}

func BenchmarkCubeSlice(b *testing.B) {
	obs := genObservations(100_000, 4, 20, 24*time.Hour, 4)
	c := New(0)
	for _, o := range obs {
		c.Observe(o)
	}
	q := SliceQuery{
		Metric: obs[0].Metric, Source: obs[0].ComputedOn,
		From: t0.Add(2 * time.Hour), To: t0.Add(20 * time.Hour),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := c.Slice(q); r.Agg.Count == 0 {
			b.Fatal("empty slice")
		}
	}
}

func BenchmarkSPARQLScanSlice(b *testing.B) {
	obs := genObservations(100_000, 4, 20, 24*time.Hour, 4)
	g, err := ObservationsToGraph(obs)
	if err != nil {
		b.Fatal(err)
	}
	q := SliceQuery{
		Metric: obs[0].Metric, Source: obs[0].ComputedOn,
		From: t0.Add(2 * time.Hour), To: t0.Add(20 * time.Hour),
	}
	query := SliceSPARQL(q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sparql.Exec(g, query)
		if err != nil {
			b.Fatal(err)
		}
		var a Agg
		for _, bind := range res.Bindings {
			o, err := FromTerms(q.Metric, q.Source, bind["value"], bind["ts"])
			if err != nil {
				b.Fatal(err)
			}
			a.observe(o.Value)
		}
		if a.Count == 0 {
			b.Fatal("empty scan")
		}
	}
}
