package qcube

import (
	"fmt"
	"strings"
	"time"

	"qurator/internal/rdf"
)

// daQ vocabulary terms used for the RDF rendering of observations.
var (
	// DaQObservation is the daq:Observation class.
	DaQObservation = rdf.IRI(DaQNS + "Observation")
	// DaQMetric links an observation to its metric.
	DaQMetric = rdf.IRI(DaQNS + "metric")
	// DaQComputedOn links an observation to the assessed resource.
	DaQComputedOn = rdf.IRI(DaQNS + "computedOn")
	// DaQValue carries the measured value.
	DaQValue = rdf.IRI(DaQNS + "value")
	// ObservedAtMillis is a Qurator extension carrying the observation
	// time as integer epoch milliseconds. daQ proper uses dc:date with an
	// xsd:dateTime literal; the integer form keeps time-range FILTERs in
	// the numeric fragment our SPARQL evaluator optimises.
	ObservedAtMillis = rdf.IRI("http://qurator.org/iq#observedAtMillis")
	// AttributedTo names the computing agent (prov:wasAttributedTo).
	AttributedTo = rdf.IRI("http://www.w3.org/ns/prov#wasAttributedTo")
)

// IRI returns the observation's IRI for the given ordinal: observations
// are facts, so identity is positional, not content-derived.
func obsIRI(n int) rdf.Term {
	return rdf.IRI(fmt.Sprintf("http://qurator.org/obs/%d", n))
}

// Triples renders the observation as daQ RDF, using n as the
// observation's ordinal identity.
func (o Observation) Triples(n int) []rdf.Triple {
	obs := obsIRI(n)
	ts := []rdf.Triple{
		rdf.T(obs, rdf.IRI(rdf.RDFType), DaQObservation),
		rdf.T(obs, DaQMetric, rdf.IRI(o.Metric)),
		rdf.T(obs, DaQValue, rdf.Double(o.Value)),
		rdf.T(obs, ObservedAtMillis, rdf.Integer(o.At.UnixMilli())),
	}
	if o.ComputedOn != "" {
		ts = append(ts, rdf.T(obs, DaQComputedOn, rdf.IRI(o.ComputedOn)))
	}
	if o.Agent != "" {
		ts = append(ts, rdf.T(obs, AttributedTo, rdf.IRI(o.Agent)))
	}
	return ts
}

// ObservationsToGraph materialises observations into an RDF graph — the
// raw-facts representation the cube's rollups summarise, used by the
// cmd/experiment -cube benchmark as the SPARQL-scan baseline.
func ObservationsToGraph(obs []Observation) (*rdf.Graph, error) {
	g := rdf.NewGraph()
	batch := make([]rdf.Triple, 0, 6*len(obs))
	for i, o := range obs {
		batch = append(batch, o.Triples(i)...)
	}
	if _, err := g.AddBatch(batch); err != nil {
		return nil, err
	}
	return g, nil
}

// SliceSPARQL renders the SPARQL query equivalent to a cube slice over
// the daQ graph: bind every observation matching the metric/source
// constants, project its value and timestamp, range-filter on the
// timestamp. The evaluator has no aggregates, so callers fold the rows
// themselves — which is exactly the cost the cube's rollups avoid.
func SliceSPARQL(q SliceQuery) string {
	var b strings.Builder
	b.WriteString("PREFIX daq: <")
	b.WriteString(DaQNS)
	b.WriteString(">\nSELECT ?value ?ts WHERE {\n")
	if q.Metric != "" {
		fmt.Fprintf(&b, "  ?o daq:metric <%s> .\n", q.Metric)
	}
	if q.Source != "" {
		fmt.Fprintf(&b, "  ?o daq:computedOn <%s> .\n", q.Source)
	}
	b.WriteString("  ?o daq:value ?value .\n")
	fmt.Fprintf(&b, "  ?o <%s> ?ts .\n", ObservedAtMillis.Value())
	var conds []string
	if !q.From.IsZero() {
		conds = append(conds, fmt.Sprintf("?ts >= %d", q.From.UnixMilli()))
	}
	if !q.To.IsZero() {
		conds = append(conds, fmt.Sprintf("?ts < %d", q.To.UnixMilli()))
	}
	if len(conds) > 0 {
		fmt.Fprintf(&b, "  FILTER (%s)\n", strings.Join(conds, " && "))
	}
	b.WriteString("}")
	return b.String()
}

// FromGraphRow reconstructs an observation from SPARQL bindings of
// ?value and ?ts terms (the benchmark's scan side). Metric and source
// come from the query constants.
func FromTerms(metric, source string, value, ts rdf.Term) (Observation, error) {
	v, ok := value.Float()
	if !ok {
		return Observation{}, fmt.Errorf("qcube: non-numeric daq:value %s", value)
	}
	ms, ok := ts.Int()
	if !ok {
		return Observation{}, fmt.Errorf("qcube: non-numeric timestamp %s", ts)
	}
	return Observation{
		Metric:     metric,
		ComputedOn: source,
		Value:      v,
		At:         time.UnixMilli(ms).UTC(),
	}, nil
}
