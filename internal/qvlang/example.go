package qvlang

// PaperViewXML is the quality view of paper §5.1, assembled from the
// published fragments: one Imprint-output annotator writing per-run
// evidence to the cache repository, three quality assertions (the HR+MC
// score, the HR-only score, and the three-way avg±stddev classifier), and
// the "filter top k score" action
//
//	ScoreClass in q:high, q:mid and HR MC > 20
//
// with the tag name "HR MC" normalised to HR_MC for use in conditions.
const PaperViewXML = `<QualityView name="protein-id-quality">
  <Annotator servicename="ImprintOutputAnnotator"
             servicetype="q:ImprintOutputAnnotation">
    <variables repositoryRef="cache" persistent="false">
      <var evidence="q:HitRatio"/>
      <var evidence="q:Coverage"/>
      <var evidence="q:Masses"/>
      <var evidence="q:PeptidesCount"/>
    </variables>
  </Annotator>

  <QualityAssertion servicename="HR MC score"
                    servicetype="q:UniversalPIScore2"
                    tagname="HR MC"
                    tagsyntype="q:score">
    <variables repositoryRef="cache">
      <var variablename="coverage" evidence="q:Coverage"/>
      <var variablename="masses" evidence="q:Masses"/>
      <var variablename="peptidesCount" evidence="q:PeptidesCount"/>
      <var variablename="hitRatio" evidence="q:HitRatio"/>
    </variables>
  </QualityAssertion>

  <QualityAssertion servicename="HR score"
                    servicetype="q:HRScoreAssertion"
                    tagname="HR"
                    tagsyntype="q:score">
    <variables repositoryRef="cache">
      <var variablename="hr" evidence="q:HitRatio"/>
    </variables>
  </QualityAssertion>

  <QualityAssertion servicename="PIScoreClassifier"
                    servicetype="q:PIScoreClassifier"
                    tagsemtype="q:PIScoreClassification"
                    tagname="ScoreClass"
                    tagsyntype="q:class">
    <variables repositoryRef="cache">
      <var variablename="coverage2" evidence="q:Coverage"/>
      <var variablename="hitRatio2" evidence="q:HitRatio"/>
    </variables>
  </QualityAssertion>

  <action name="filter top k score">
    <filter>
      <condition>ScoreClass in q:high, q:mid and HR_MC &gt; 20</condition>
    </filter>
  </action>
</QualityView>`
