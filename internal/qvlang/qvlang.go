// Package qvlang implements the declarative XML language for quality
// views (paper §5.1). A quality view is a machine-processable
// specification of an instance of the general quality process pattern: it
// declares annotation operators, quality assertions and condition/action
// pairs purely in terms of the abstract model — no implementation
// references — so the same view can be targeted at different data
// management environments (the compiler performs that targeting).
//
// The concrete syntax follows the paper's fragments:
//
//	<QualityView name="protein-id-quality">
//	  <Annotator servicename="ImprintOutputAnnotator"
//	             servicetype="q:ImprintOutputAnnotation">
//	    <variables repositoryRef="cache" persistent="false">
//	      <var evidence="q:HitRatio"/>
//	      <var evidence="q:Coverage"/>
//	    </variables>
//	  </Annotator>
//	  <QualityAssertion servicename="HR MC score"
//	                    servicetype="q:UniversalPIScore2"
//	                    tagname="HR MC" tagsyntype="q:score">
//	    <variables repositoryRef="cache">
//	      <var variablename="coverage" evidence="q:Coverage"/>
//	    </variables>
//	  </QualityAssertion>
//	  <action name="filter top k score">
//	    <filter>
//	      <condition>ScoreClass in q:high, q:mid and HR_MC &gt; 20</condition>
//	    </filter>
//	  </action>
//	</QualityView>
//
// Views never reference input data sets: a view is applicable to any data
// set for which values of the required evidence types are available.
package qvlang

import (
	"encoding/xml"
	"fmt"
	"strings"
	"time"

	"qurator/internal/condition"
	"qurator/internal/ontology"
	"qurator/internal/rdf"
)

// View is a parsed quality-view specification.
type View struct {
	XMLName    xml.Name        `xml:"QualityView"`
	Name       string          `xml:"name,attr"`
	Annotators []AnnotatorDecl `xml:"Annotator"`
	Assertions []AssertionDecl `xml:"QualityAssertion"`
	Actions    []ActionDecl    `xml:"action"`
	Streaming  *StreamingDecl  `xml:"streaming"`
}

// StreamingDecl declares the view's default windowing for streaming
// enactment — either event-time (eventtime + window/session-gap) or
// count-based (count-window). Durations use Go syntax ("30s", "5m").
// Enactment requests may override any field; the declaration only
// supplies defaults, keeping batch enactment of the same view untouched.
type StreamingDecl struct {
	// EventTime names the QualityEvidence subclass carrying each item's
	// event timestamp (epoch millis or RFC 3339), e.g. "q:ObservedAt".
	EventTime string `xml:"eventtime,attr"`
	// Window / Slide size tumbling or sliding event-time windows.
	Window string `xml:"window,attr"`
	Slide  string `xml:"slide,attr"`
	// SessionGap sizes session windows (mutually exclusive with Window).
	SessionGap string `xml:"session-gap,attr"`
	// MaxOutOfOrder bounds the watermark lag; AllowedLateness bounds how
	// long fired windows accept late data (0 = drop all late data).
	MaxOutOfOrder   string `xml:"max-out-of-order,attr"`
	AllowedLateness string `xml:"allowed-lateness,attr"`
	// Late is the late-data policy: "supersede" (default) or "drop".
	Late string `xml:"late,attr"`
	// CountWindow / CountSlide default the count-based configuration when
	// no event-time evidence is declared.
	CountWindow int `xml:"count-window,attr"`
	CountSlide  int `xml:"count-slide,attr"`
}

// AnnotatorDecl declares an annotation operator.
type AnnotatorDecl struct {
	// ServiceName is the local variable name for the operator instance.
	ServiceName string `xml:"servicename,attr"`
	// ServiceType is the operator's class in the IQ ontology
	// (a q:AnnotationFunction subclass).
	ServiceType string `xml:"servicetype,attr"`
	// Variables declares the evidence types the annotator provides and
	// the repository their values go to.
	Variables VarBlock `xml:"variables"`
}

// AssertionDecl declares a quality-assertion operator.
type AssertionDecl struct {
	ServiceName string `xml:"servicename,attr"`
	// ServiceType is the QA's class (a q:QualityAssertion subclass).
	ServiceType string `xml:"servicetype,attr"`
	// TagName is the variable under which the QA's output is visible to
	// action conditions.
	TagName string `xml:"tagname,attr"`
	// TagSynType is the syntactic type of the output: "q:score" or
	// "q:class".
	TagSynType string `xml:"tagsyntype,attr"`
	// TagSemType, for classifications, names the ClassificationModel the
	// labels belong to.
	TagSemType string `xml:"tagsemtype,attr"`
	// Variables declares the input evidence and its repositories.
	Variables VarBlock `xml:"variables"`
}

// VarBlock groups variable declarations with their repository.
type VarBlock struct {
	// RepositoryRef names the annotation repository (default "cache").
	RepositoryRef string `xml:"repositoryRef,attr"`
	// Persistent marks whether annotations outlive the process execution
	// (default true; the §5.1 Imprint annotator sets false).
	Persistent *bool     `xml:"persistent,attr"`
	Vars       []VarDecl `xml:"var"`
}

// Repo returns the repository name, defaulting to "cache".
func (v VarBlock) Repo() string {
	if v.RepositoryRef == "" {
		return "cache"
	}
	return v.RepositoryRef
}

// IsPersistent reports the persistence flag (default true).
func (v VarBlock) IsPersistent() bool {
	return v.Persistent == nil || *v.Persistent
}

// VarDecl declares one evidence variable.
type VarDecl struct {
	// VariableName optionally names the evidence for use in conditions;
	// defaults to the evidence type's local name.
	VariableName string `xml:"variablename,attr"`
	// Evidence is the QualityEvidence subclass (q-name or IRI).
	Evidence string `xml:"evidence,attr"`
}

// ActionDecl declares one condition/action pair.
type ActionDecl struct {
	Name     string        `xml:"name,attr"`
	Filter   *FilterDecl   `xml:"filter"`
	Splitter *SplitterDecl `xml:"splitter"`
}

// FilterDecl is a data-filtering action.
type FilterDecl struct {
	Condition string `xml:"condition"`
}

// SplitterDecl is a data-splitting action.
type SplitterDecl struct {
	Branches []BranchDecl `xml:"branch"`
}

// BranchDecl is one named splitter branch.
type BranchDecl struct {
	Name      string `xml:"name,attr"`
	Condition string `xml:"condition"`
}

// Parse parses a quality-view XML document.
func Parse(data []byte) (*View, error) {
	var v View
	if err := xml.Unmarshal(data, &v); err != nil {
		return nil, fmt.Errorf("qvlang: %w", err)
	}
	if v.Name == "" {
		v.Name = "unnamed-view"
	}
	return &v, nil
}

// Marshal renders the view as XML.
func (v *View) Marshal() ([]byte, error) {
	return xml.MarshalIndent(v, "", "  ")
}

// Syntactic tag types.
var (
	SynScore = ontology.Q("score")
	SynClass = ontology.Q("class")
)

// ResolvedAssertion is a validated QA declaration with resolved terms.
type ResolvedAssertion struct {
	Decl *AssertionDecl
	// Type is the QA class IRI.
	Type rdf.Term
	// TagKey is the annotation-map key the QA writes: a score-tag IRI for
	// q:score outputs, or the classification-model IRI for q:class.
	TagKey rdf.Term
	// TagVar is the normalised condition identifier for the tag.
	TagVar string
	// Inputs are the resolved evidence types with their repository.
	Inputs []ResolvedVar
}

// ResolvedVar is a validated variable declaration.
type ResolvedVar struct {
	Name       string // normalised identifier
	Evidence   rdf.Term
	Repository string
	Persistent bool
}

// ResolvedAnnotator is a validated annotator declaration.
type ResolvedAnnotator struct {
	Decl *AnnotatorDecl
	// Type is the annotation-function class IRI.
	Type rdf.Term
	// Provides are the evidence types written, with repository.
	Provides []ResolvedVar
}

// ResolvedAction is a validated action with parsed conditions.
type ResolvedAction struct {
	Decl *ActionDecl
	Name string
	// Filter is non-nil for filter actions.
	Filter condition.Expr
	// Branches holds the parsed splitter branches (name, condition).
	Branches []ResolvedBranch
}

// ResolvedBranch is one parsed splitter branch.
type ResolvedBranch struct {
	Name string
	Cond condition.Expr
}

// Resolved is the semantic form of a view: every name resolved against
// the IQ model, every condition parsed, and the evidence-type →
// repository association derived (the input the compiler needs to
// configure the single Data Enrichment operator, §6.1).
type Resolved struct {
	View       *View
	Annotators []ResolvedAnnotator
	Assertions []ResolvedAssertion
	Actions    []ResolvedAction
	// Vars maps condition identifiers to annotation-map keys (evidence
	// types, score tags, classification models).
	Vars condition.Bindings
	// EvidenceRepo maps each evidence type to the repository holding it.
	EvidenceRepo map[rdf.Term]string
	// EvidencePersistent records each evidence type's persistence flag.
	EvidencePersistent map[rdf.Term]bool
	// Streaming carries the view's resolved <streaming> defaults, nil
	// when the view declares none.
	Streaming *ResolvedStreaming
}

// ResolvedStreaming is the validated form of a <streaming> declaration:
// durations parsed, the event-time evidence resolved against the model.
type ResolvedStreaming struct {
	// EventTime is the resolved event-time evidence type; the zero Term
	// when the declaration is count-based.
	EventTime rdf.Term
	Window    time.Duration
	Slide     time.Duration
	// SessionGap non-zero selects session windows.
	SessionGap      time.Duration
	MaxOutOfOrder   time.Duration
	AllowedLateness time.Duration
	// Late is "" (default policy), "supersede" or "drop".
	Late        string
	CountWindow int
	CountSlide  int
}

// TagKeyFor derives the annotation-map key of a score tag from its
// normalised name.
func TagKeyFor(tagVar string) rdf.Term { return ontology.Q("tag/" + tagVar) }

// Resolve validates the view against the IQ model and resolves all names.
// It checks (per the semantic model of §3):
//
//   - annotator service types are q:AnnotationFunction subclasses
//   - QA service types are q:QualityAssertion subclasses
//   - evidence types are q:QualityEvidence subclasses
//   - q:class outputs name a q:ClassificationModel subclass
//   - tag and variable names are unique after normalisation
//   - action conditions parse, and their identifiers are declared
func Resolve(v *View, model *ontology.Ontology) (*Resolved, error) {
	r := &Resolved{
		View:               v,
		Vars:               condition.Bindings{},
		EvidenceRepo:       map[rdf.Term]string{},
		EvidencePersistent: map[rdf.Term]bool{},
	}
	declareVar := func(name string, key rdf.Term) error {
		if prev, ok := r.Vars[name]; ok && prev != key {
			return fmt.Errorf("qvlang: variable %q declared twice with different keys (%v vs %v)", name, prev, key)
		}
		r.Vars[name] = key
		return nil
	}
	// definesPersistence is true for annotator blocks: they author the
	// evidence and own its persistence flag. QA blocks merely read
	// evidence, so they only set the flag when nothing authored it (the
	// enrichment-only case, e.g. long-lived credibility evidence).
	resolveVarBlock := func(block VarBlock, definesPersistence bool) ([]ResolvedVar, error) {
		out := make([]ResolvedVar, 0, len(block.Vars))
		for _, vd := range block.Vars {
			if vd.Evidence == "" {
				return nil, fmt.Errorf("qvlang: <var> without evidence attribute")
			}
			ev := ontology.ExpandQName(vd.Evidence)
			if !model.IsSubClassOf(ev, ontology.QualityEvidence) {
				return nil, fmt.Errorf("qvlang: %q is not a QualityEvidence subclass", vd.Evidence)
			}
			name := vd.VariableName
			if name == "" {
				name = ontology.LocalName(ev)
			}
			name = condition.NormaliseName(name)
			if err := declareVar(name, ev); err != nil {
				return nil, err
			}
			rv := ResolvedVar{
				Name:       name,
				Evidence:   ev,
				Repository: block.Repo(),
				Persistent: block.IsPersistent(),
			}
			if prev, ok := r.EvidenceRepo[ev]; ok && prev != rv.Repository {
				return nil, fmt.Errorf("qvlang: evidence %v declared in two repositories (%q, %q)", ev, prev, rv.Repository)
			}
			r.EvidenceRepo[ev] = rv.Repository
			if _, authored := r.EvidencePersistent[ev]; definesPersistence || !authored {
				r.EvidencePersistent[ev] = rv.Persistent
			}
			out = append(out, rv)
		}
		return out, nil
	}

	for i := range v.Annotators {
		decl := &v.Annotators[i]
		if decl.ServiceType == "" {
			return nil, fmt.Errorf("qvlang: annotator %q without servicetype", decl.ServiceName)
		}
		typ := ontology.ExpandQName(decl.ServiceType)
		if !model.IsSubClassOf(typ, ontology.AnnotationFunction) {
			return nil, fmt.Errorf("qvlang: annotator type %q is not an AnnotationFunction subclass", decl.ServiceType)
		}
		provides, err := resolveVarBlock(decl.Variables, true)
		if err != nil {
			return nil, fmt.Errorf("qvlang: annotator %q: %w", decl.ServiceName, err)
		}
		if len(provides) == 0 {
			return nil, fmt.Errorf("qvlang: annotator %q declares no evidence variables", decl.ServiceName)
		}
		r.Annotators = append(r.Annotators, ResolvedAnnotator{Decl: decl, Type: typ, Provides: provides})
	}

	for i := range v.Assertions {
		decl := &v.Assertions[i]
		if decl.ServiceType == "" {
			return nil, fmt.Errorf("qvlang: assertion %q without servicetype", decl.ServiceName)
		}
		typ := ontology.ExpandQName(decl.ServiceType)
		if !model.IsSubClassOf(typ, ontology.QualityAssertion) {
			return nil, fmt.Errorf("qvlang: assertion type %q is not a QualityAssertion subclass", decl.ServiceType)
		}
		inputs, err := resolveVarBlock(decl.Variables, false)
		if err != nil {
			return nil, fmt.Errorf("qvlang: assertion %q: %w", decl.ServiceName, err)
		}
		ra := ResolvedAssertion{Decl: decl, Type: typ, Inputs: inputs}

		tagVar := condition.NormaliseName(decl.TagName)
		if tagVar == "" {
			tagVar = condition.NormaliseName(decl.ServiceName)
		}
		if tagVar == "" {
			return nil, fmt.Errorf("qvlang: assertion with neither tagname nor servicename")
		}
		ra.TagVar = tagVar

		syn := decl.TagSynType
		switch {
		case syn == "" || ontology.ExpandQName(syn) == SynScore:
			ra.TagKey = TagKeyFor(tagVar)
		case ontology.ExpandQName(syn) == SynClass:
			if decl.TagSemType == "" {
				return nil, fmt.Errorf("qvlang: classification assertion %q needs tagsemtype", decl.ServiceName)
			}
			modelIRI := ontology.ExpandQName(decl.TagSemType)
			if !model.IsSubClassOf(modelIRI, ontology.ClassificationModel) {
				return nil, fmt.Errorf("qvlang: tagsemtype %q is not a ClassificationModel subclass", decl.TagSemType)
			}
			ra.TagKey = modelIRI
		default:
			return nil, fmt.Errorf("qvlang: unknown tagsyntype %q (want q:score or q:class)", syn)
		}
		if err := declareVar(tagVar, ra.TagKey); err != nil {
			return nil, err
		}
		r.Assertions = append(r.Assertions, ra)
	}

	for i := range v.Actions {
		decl := &v.Actions[i]
		name := decl.Name
		if name == "" {
			name = fmt.Sprintf("action-%d", i+1)
		}
		ra := ResolvedAction{Decl: decl, Name: name}
		switch {
		case decl.Filter != nil && decl.Splitter != nil:
			return nil, fmt.Errorf("qvlang: action %q has both filter and splitter", name)
		case decl.Filter != nil:
			expr, err := parseActionCondition(decl.Filter.Condition, r.Vars)
			if err != nil {
				return nil, fmt.Errorf("qvlang: action %q: %w", name, err)
			}
			ra.Filter = expr
		case decl.Splitter != nil:
			if len(decl.Splitter.Branches) == 0 {
				return nil, fmt.Errorf("qvlang: action %q splitter has no branches", name)
			}
			for _, b := range decl.Splitter.Branches {
				if b.Name == "" {
					return nil, fmt.Errorf("qvlang: action %q has an unnamed branch", name)
				}
				expr, err := parseActionCondition(b.Condition, r.Vars)
				if err != nil {
					return nil, fmt.Errorf("qvlang: action %q branch %q: %w", name, b.Name, err)
				}
				ra.Branches = append(ra.Branches, ResolvedBranch{Name: b.Name, Cond: expr})
			}
		default:
			return nil, fmt.Errorf("qvlang: action %q has neither filter nor splitter", name)
		}
		r.Actions = append(r.Actions, ra)
	}

	if v.Streaming != nil {
		rs, err := resolveStreaming(v.Streaming, model)
		if err != nil {
			return nil, err
		}
		r.Streaming = rs
	}
	return r, nil
}

// resolveStreaming validates a <streaming> declaration: the event-time
// evidence must be a QualityEvidence subclass, durations must parse and
// be coherent (window XOR session-gap for event time; slide within the
// window; non-negative lateness bounds).
func resolveStreaming(s *StreamingDecl, model *ontology.Ontology) (*ResolvedStreaming, error) {
	dur := func(attr, val string) (time.Duration, error) {
		if strings.TrimSpace(val) == "" {
			return 0, nil
		}
		d, err := time.ParseDuration(val)
		if err != nil {
			return 0, fmt.Errorf("qvlang: streaming %s: %w", attr, err)
		}
		if d < 0 {
			return 0, fmt.Errorf("qvlang: streaming %s must not be negative", attr)
		}
		return d, nil
	}
	rs := &ResolvedStreaming{
		Late:        strings.TrimSpace(s.Late),
		CountWindow: s.CountWindow,
		CountSlide:  s.CountSlide,
	}
	var err error
	if rs.Window, err = dur("window", s.Window); err != nil {
		return nil, err
	}
	if rs.Slide, err = dur("slide", s.Slide); err != nil {
		return nil, err
	}
	if rs.SessionGap, err = dur("session-gap", s.SessionGap); err != nil {
		return nil, err
	}
	if rs.MaxOutOfOrder, err = dur("max-out-of-order", s.MaxOutOfOrder); err != nil {
		return nil, err
	}
	if rs.AllowedLateness, err = dur("allowed-lateness", s.AllowedLateness); err != nil {
		return nil, err
	}
	switch rs.Late {
	case "", "supersede", "drop":
	default:
		return nil, fmt.Errorf("qvlang: streaming late=%q (want supersede or drop)", s.Late)
	}
	if s.EventTime != "" {
		ev := ontology.ExpandQName(s.EventTime)
		if !model.IsSubClassOf(ev, ontology.QualityEvidence) {
			return nil, fmt.Errorf("qvlang: streaming eventtime %q is not a QualityEvidence subclass", s.EventTime)
		}
		rs.EventTime = ev
		switch {
		case rs.Window > 0 && rs.SessionGap > 0:
			return nil, fmt.Errorf("qvlang: streaming declares both window and session-gap")
		case rs.Window == 0 && rs.SessionGap == 0:
			return nil, fmt.Errorf("qvlang: streaming eventtime needs window or session-gap")
		}
		if rs.Slide > 0 && rs.Window == 0 {
			return nil, fmt.Errorf("qvlang: streaming slide without window")
		}
		if rs.Slide > rs.Window {
			return nil, fmt.Errorf("qvlang: streaming slide exceeds window")
		}
	} else {
		if rs.Window > 0 || rs.SessionGap > 0 || rs.Slide > 0 {
			return nil, fmt.Errorf("qvlang: streaming durations need an eventtime evidence")
		}
		if rs.CountSlide > rs.CountWindow {
			return nil, fmt.Errorf("qvlang: streaming count-slide exceeds count-window")
		}
	}
	return rs, nil
}

// parseActionCondition parses a condition and checks that the bare
// identifiers it uses are declared view variables. (Q-names like q:high
// are literals, not identifiers, and need no declaration.)
func parseActionCondition(src string, vars condition.Bindings) (condition.Expr, error) {
	src = strings.TrimSpace(src)
	if src == "" {
		return nil, fmt.Errorf("empty condition")
	}
	expr, err := condition.Parse(src)
	if err != nil {
		return nil, err
	}
	for _, ident := range identifiersIn(src) {
		if _, ok := vars[ident]; !ok {
			return nil, fmt.Errorf("condition references undeclared variable %q", ident)
		}
	}
	return expr, nil
}

// identifiersIn extracts the bare identifiers of a condition source,
// skipping keywords, q-names and string literals.
func identifiersIn(src string) []string {
	var out []string
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '"' || c == '\'':
			j := i + 1
			for j < len(src) && src[j] != c {
				if src[j] == '\\' {
					j++
				}
				j++
			}
			i = j + 1
		case isIdentByte(c) && !isDigitByte(c):
			j := i
			for j < len(src) && isIdentByte(src[j]) {
				j++
			}
			word := src[i:j]
			// Skip q-names.
			if j < len(src) && src[j] == ':' {
				j++
				for j < len(src) && (isIdentByte(src[j]) || src[j] == '-') {
					j++
				}
				i = j
				continue
			}
			switch strings.ToLower(word) {
			case "and", "or", "not", "in", "true", "false":
			default:
				out = append(out, word)
			}
			i = j
		default:
			i++
		}
	}
	return out
}

func isIdentByte(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || isDigitByte(c)
}

func isDigitByte(c byte) bool { return c >= '0' && c <= '9' }
