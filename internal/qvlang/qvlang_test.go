package qvlang

import (
	"strings"
	"testing"

	"qurator/internal/condition"
	"qurator/internal/evidence"
	"qurator/internal/ontology"
	"qurator/internal/rdf"
)

func TestParsePaperView(t *testing.T) {
	v, err := Parse([]byte(PaperViewXML))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if v.Name != "protein-id-quality" {
		t.Errorf("Name = %q", v.Name)
	}
	if len(v.Annotators) != 1 || len(v.Assertions) != 3 || len(v.Actions) != 1 {
		t.Fatalf("structure: %d annotators, %d assertions, %d actions",
			len(v.Annotators), len(v.Assertions), len(v.Actions))
	}
	ann := v.Annotators[0]
	if ann.ServiceName != "ImprintOutputAnnotator" || ann.ServiceType != "q:ImprintOutputAnnotation" {
		t.Errorf("annotator = %+v", ann)
	}
	if ann.Variables.Repo() != "cache" || ann.Variables.IsPersistent() {
		t.Error("annotator variables must be cache + non-persistent")
	}
	if len(ann.Variables.Vars) != 4 {
		t.Errorf("annotator vars = %d", len(ann.Variables.Vars))
	}
	qa := v.Assertions[0]
	if qa.TagName != "HR MC" || qa.TagSynType != "q:score" {
		t.Errorf("first QA = %+v", qa)
	}
	cls := v.Assertions[2]
	if cls.TagSemType != "q:PIScoreClassification" || cls.TagSynType != "q:class" {
		t.Errorf("classifier QA = %+v", cls)
	}
	if v.Actions[0].Filter == nil {
		t.Fatal("action should be a filter")
	}
	if !strings.Contains(v.Actions[0].Filter.Condition, "ScoreClass in q:high, q:mid") {
		t.Errorf("condition = %q", v.Actions[0].Filter.Condition)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	v, err := Parse([]byte(PaperViewXML))
	if err != nil {
		t.Fatal(err)
	}
	data, err := v.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatalf("re-Parse: %v", err)
	}
	if len(back.Annotators) != len(v.Annotators) ||
		len(back.Assertions) != len(v.Assertions) ||
		len(back.Actions) != len(v.Actions) {
		t.Error("round trip changed structure")
	}
	if back.Assertions[0].TagName != "HR MC" {
		t.Errorf("tagname lost: %q", back.Assertions[0].TagName)
	}
}

func TestResolvePaperView(t *testing.T) {
	v, err := Parse([]byte(PaperViewXML))
	if err != nil {
		t.Fatal(err)
	}
	r, err := Resolve(v, ontology.NewIQModel())
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	// Annotator resolved to the IQ class.
	if r.Annotators[0].Type != ontology.ImprintOutputAnnotation {
		t.Errorf("annotator type = %v", r.Annotators[0].Type)
	}
	if len(r.Annotators[0].Provides) != 4 {
		t.Errorf("annotator provides %d types", len(r.Annotators[0].Provides))
	}
	// Tag variables: HR MC normalised; classifier keyed by its model.
	if key, ok := r.Vars["HR_MC"]; !ok || key != TagKeyFor("HR_MC") {
		t.Errorf("HR_MC var = %v, %v", key, ok)
	}
	if key, ok := r.Vars["ScoreClass"]; !ok || key != ontology.PIScoreClassification {
		t.Errorf("ScoreClass var = %v, %v", key, ok)
	}
	// Evidence → repository association (drives the DE configuration).
	for _, ev := range []rdf.Term{ontology.HitRatio, ontology.Coverage, ontology.Masses, ontology.PeptidesCount} {
		if repo := r.EvidenceRepo[ev]; repo != "cache" {
			t.Errorf("EvidenceRepo[%v] = %q", ev, repo)
		}
		if r.EvidencePersistent[ev] {
			t.Errorf("evidence %v should be non-persistent", ev)
		}
	}
	// The action condition evaluates against a suitable map.
	if len(r.Actions) != 1 || r.Actions[0].Filter == nil {
		t.Fatalf("actions = %+v", r.Actions)
	}
	it := rdf.IRI("urn:lsid:test.org:hit:1")
	m := evidence.NewMap(it)
	m.Set(it, TagKeyFor("HR_MC"), evidence.Float(25))
	m.SetClass(it, ontology.PIScoreClassification, ontology.ClassHigh)
	ok, err := r.Actions[0].Filter.Eval(&condition.Context{Amap: m, Item: it, Vars: r.Vars})
	if err != nil || !ok {
		t.Errorf("paper condition eval = %v, %v", ok, err)
	}
}

func TestResolveErrors(t *testing.T) {
	model := ontology.NewIQModel()
	cases := []struct {
		name string
		xml  string
	}{
		{"annotator without servicetype", `<QualityView><Annotator servicename="a"><variables><var evidence="q:HitRatio"/></variables></Annotator></QualityView>`},
		{"annotator bad type", `<QualityView><Annotator servicename="a" servicetype="q:HitRatio"><variables><var evidence="q:HitRatio"/></variables></Annotator></QualityView>`},
		{"annotator no vars", `<QualityView><Annotator servicename="a" servicetype="q:ImprintOutputAnnotation"><variables/></Annotator></QualityView>`},
		{"bad evidence type", `<QualityView><Annotator servicename="a" servicetype="q:ImprintOutputAnnotation"><variables><var evidence="q:NotEvidence"/></variables></Annotator></QualityView>`},
		{"var without evidence", `<QualityView><Annotator servicename="a" servicetype="q:ImprintOutputAnnotation"><variables><var variablename="x"/></variables></Annotator></QualityView>`},
		{"assertion bad type", `<QualityView><QualityAssertion servicename="s" servicetype="q:ImprintHitEntry" tagname="t"/></QualityView>`},
		{"class without semtype", `<QualityView><QualityAssertion servicename="s" servicetype="q:PIScoreClassifier" tagname="t" tagsyntype="q:class"/></QualityView>`},
		{"bad semtype", `<QualityView><QualityAssertion servicename="s" servicetype="q:PIScoreClassifier" tagname="t" tagsyntype="q:class" tagsemtype="q:HitRatio"/></QualityView>`},
		{"bad syntype", `<QualityView><QualityAssertion servicename="s" servicetype="q:PIScoreClassifier" tagname="t" tagsyntype="q:weird"/></QualityView>`},
		{"action empty", `<QualityView><action name="a"/></QualityView>`},
		{"action both", `<QualityView><action name="a"><filter><condition>x &gt; 1</condition></filter><splitter><branch name="b"><condition>x &gt; 1</condition></branch></splitter></action></QualityView>`},
		{"filter empty condition", `<QualityView><action name="a"><filter><condition></condition></filter></action></QualityView>`},
		{"filter bad condition", `<QualityView><action name="a"><filter><condition>&gt;&gt;&gt;</condition></filter></action></QualityView>`},
		{"undeclared variable", `<QualityView><action name="a"><filter><condition>Ghost &gt; 1</condition></filter></action></QualityView>`},
		{"splitter no branches", `<QualityView><action name="a"><splitter/></action></QualityView>`},
		{"unnamed branch", `<QualityView><action name="a"><splitter><branch><condition>true</condition></branch></splitter></action></QualityView>`},
		{"conflicting var", `<QualityView>
			<QualityAssertion servicename="s1" servicetype="q:HRScoreAssertion" tagname="T"><variables><var variablename="x" evidence="q:HitRatio"/></variables></QualityAssertion>
			<QualityAssertion servicename="s2" servicetype="q:HRScoreAssertion" tagname="T2"><variables><var variablename="x" evidence="q:Masses"/></variables></QualityAssertion>
			</QualityView>`},
		{"evidence in two repos", `<QualityView>
			<QualityAssertion servicename="s1" servicetype="q:HRScoreAssertion" tagname="T"><variables repositoryRef="cache"><var variablename="x" evidence="q:HitRatio"/></variables></QualityAssertion>
			<QualityAssertion servicename="s2" servicetype="q:HRScoreAssertion" tagname="T2"><variables repositoryRef="default"><var variablename="y" evidence="q:HitRatio"/></variables></QualityAssertion>
			</QualityView>`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			v, err := Parse([]byte(c.xml))
			if err != nil {
				return // parse failure is also acceptable rejection
			}
			if _, err := Resolve(v, model); err == nil {
				t.Errorf("Resolve should fail for %s", c.name)
			}
		})
	}
}

func TestResolveSplitterAction(t *testing.T) {
	xmlSrc := `<QualityView name="split-by-class">
	  <QualityAssertion servicename="PIScoreClassifier" servicetype="q:PIScoreClassifier"
	                    tagsemtype="q:PIScoreClassification" tagname="ScoreClass" tagsyntype="q:class">
	    <variables><var variablename="hr" evidence="q:HitRatio"/></variables>
	  </QualityAssertion>
	  <action name="route">
	    <splitter>
	      <branch name="keep"><condition>ScoreClass in q:high</condition></branch>
	      <branch name="review"><condition>ScoreClass in q:mid</condition></branch>
	    </splitter>
	  </action>
	</QualityView>`
	v, err := Parse([]byte(xmlSrc))
	if err != nil {
		t.Fatal(err)
	}
	r, err := Resolve(v, ontology.NewIQModel())
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if len(r.Actions) != 1 || len(r.Actions[0].Branches) != 2 {
		t.Fatalf("actions = %+v", r.Actions)
	}
	if r.Actions[0].Branches[0].Name != "keep" {
		t.Errorf("branch order: %+v", r.Actions[0].Branches)
	}
}

func TestResolveDefaultsAndQNameConditions(t *testing.T) {
	// No tagname → servicename used; no tagsyntype → score; unprefixed
	// evidence names resolve against the Qurator namespace.
	xmlSrc := `<QualityView>
	  <QualityAssertion servicename="My Score" servicetype="q:HRScoreAssertion">
	    <variables><var evidence="HitRatio"/></variables>
	  </QualityAssertion>
	  <action><filter><condition>My_Score &gt; 10 and HitRatio &gt; 0.2</condition></filter></action>
	</QualityView>`
	v, err := Parse([]byte(xmlSrc))
	if err != nil {
		t.Fatal(err)
	}
	r, err := Resolve(v, ontology.NewIQModel())
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if key, ok := r.Vars["My_Score"]; !ok || key != TagKeyFor("My_Score") {
		t.Errorf("tag var = %v, %v", key, ok)
	}
	if key, ok := r.Vars["HitRatio"]; !ok || key != ontology.HitRatio {
		t.Errorf("evidence var = %v, %v", key, ok)
	}
	if r.View.Name != "unnamed-view" {
		t.Errorf("default name = %q", r.View.Name)
	}
	if r.Actions[0].Name != "action-1" {
		t.Errorf("default action name = %q", r.Actions[0].Name)
	}
}

func TestViewIsDataIndependent(t *testing.T) {
	// "View specifications do not include any reference to input data
	// sets" — the schema has no place for one; the resolved form carries
	// only types and conditions.
	v, _ := Parse([]byte(PaperViewXML))
	data, _ := v.Marshal()
	for _, banned := range []string{"urn:lsid", "dataset", "DataSet", "input"} {
		if strings.Contains(string(data), banned) {
			t.Errorf("view serialisation mentions %q", banned)
		}
	}
}

func TestIdentifiersIn(t *testing.T) {
	got := identifiersIn(`ScoreClass in q:high, q:mid and HR_MC > 20 or name = "quoted ident" and not flag`)
	want := map[string]bool{"ScoreClass": true, "HR_MC": true, "name": true, "flag": true}
	if len(got) != len(want) {
		t.Fatalf("identifiers = %v", got)
	}
	for _, id := range got {
		if !want[id] {
			t.Errorf("unexpected identifier %q", id)
		}
	}
}
