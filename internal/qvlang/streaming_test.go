package qvlang

import (
	"testing"
	"time"

	"qurator/internal/ontology"
)

// TestResolveStreamingDeclaration pins the <streaming> element: a view
// can declare its own event-time windowing so every enactment of the
// view — HTTP, cluster, experiment — agrees on window semantics without
// repeating query parameters.
func TestResolveStreamingDeclaration(t *testing.T) {
	xmlSrc := `<QualityView name="timed">
	  <QualityAssertion servicename="s" servicetype="q:HRScoreAssertion" tagname="HR">
	    <variables><var variablename="hr" evidence="q:HitRatio"/></variables>
	  </QualityAssertion>
	  <streaming eventtime="q:ObservedAt" window="100ms" slide="50ms"
	             max-out-of-order="25ms" allowed-lateness="1s" late="supersede"/>
	</QualityView>`
	v, err := Parse([]byte(xmlSrc))
	if err != nil {
		t.Fatal(err)
	}
	r, err := Resolve(v, ontology.NewIQModel())
	if err != nil {
		t.Fatal(err)
	}
	s := r.Streaming
	if s == nil {
		t.Fatal("Resolved.Streaming is nil")
	}
	if s.EventTime != ontology.ObservedAt {
		t.Errorf("EventTime = %v, want q:ObservedAt", s.EventTime)
	}
	if s.Window != 100*time.Millisecond || s.Slide != 50*time.Millisecond {
		t.Errorf("window/slide = %v/%v", s.Window, s.Slide)
	}
	if s.MaxOutOfOrder != 25*time.Millisecond || s.AllowedLateness != time.Second {
		t.Errorf("max-out-of-order/allowed-lateness = %v/%v", s.MaxOutOfOrder, s.AllowedLateness)
	}
	if s.Late != "supersede" {
		t.Errorf("Late = %q", s.Late)
	}
}

func TestResolveStreamingSessionAndCount(t *testing.T) {
	xmlSrc := `<QualityView name="sessions">
	  <streaming eventtime="q:ObservedAt" session-gap="200ms"/>
	</QualityView>`
	v, err := Parse([]byte(xmlSrc))
	if err != nil {
		t.Fatal(err)
	}
	r, err := Resolve(v, ontology.NewIQModel())
	if err != nil {
		t.Fatal(err)
	}
	if r.Streaming.SessionGap != 200*time.Millisecond || r.Streaming.Window != 0 {
		t.Errorf("streaming = %+v, want a pure session declaration", r.Streaming)
	}

	// Count windows need no event-time field.
	xmlSrc = `<QualityView name="counted"><streaming count-window="32" count-slide="8"/></QualityView>`
	if v, err = Parse([]byte(xmlSrc)); err != nil {
		t.Fatal(err)
	}
	if r, err = Resolve(v, ontology.NewIQModel()); err != nil {
		t.Fatal(err)
	}
	if r.Streaming.CountWindow != 32 || r.Streaming.CountSlide != 8 {
		t.Errorf("count streaming = %+v", r.Streaming)
	}
	if r.Streaming.EventTime.Value() != "" {
		t.Errorf("count declaration acquired an event-time key: %v", r.Streaming.EventTime)
	}

	// A view without the element resolves to no streaming declaration.
	if v, err = Parse([]byte(PaperViewXML)); err != nil {
		t.Fatal(err)
	}
	if r, err = Resolve(v, ontology.NewIQModel()); err != nil {
		t.Fatal(err)
	}
	if r.Streaming != nil {
		t.Errorf("paper view resolved a streaming declaration: %+v", r.Streaming)
	}
}

func TestResolveStreamingErrors(t *testing.T) {
	model := ontology.NewIQModel()
	cases := []struct {
		name string
		xml  string
	}{
		{"bad late policy", `<QualityView><streaming eventtime="q:ObservedAt" window="100ms" late="sideways"/></QualityView>`},
		{"window and session-gap", `<QualityView><streaming eventtime="q:ObservedAt" window="100ms" session-gap="50ms"/></QualityView>`},
		{"eventtime without windows", `<QualityView><streaming eventtime="q:ObservedAt"/></QualityView>`},
		{"non-evidence eventtime", `<QualityView><streaming eventtime="q:PIScoreClassification" window="100ms"/></QualityView>`},
		{"durations without eventtime", `<QualityView><streaming window="100ms"/></QualityView>`},
		{"bad duration syntax", `<QualityView><streaming eventtime="q:ObservedAt" window="fast"/></QualityView>`},
		{"negative duration", `<QualityView><streaming eventtime="q:ObservedAt" window="-100ms"/></QualityView>`},
		{"slide without window", `<QualityView><streaming eventtime="q:ObservedAt" session-gap="100ms" slide="50ms"/></QualityView>`},
		{"slide wider than window", `<QualityView><streaming eventtime="q:ObservedAt" window="50ms" slide="100ms"/></QualityView>`},
		{"count slide wider than window", `<QualityView><streaming count-window="4" count-slide="8"/></QualityView>`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			v, err := Parse([]byte(c.xml))
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			if _, err := Resolve(v, model); err == nil {
				t.Errorf("Resolve should fail for %s", c.name)
			}
		})
	}
}
