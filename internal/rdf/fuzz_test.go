package rdf

import (
	"bytes"
	"testing"
)

// FuzzParseTriple: arbitrary lines must either be rejected or round-trip
// through the canonical rendering.
func FuzzParseTriple(f *testing.F) {
	seeds := []string{
		`<urn:a> <urn:b> <urn:c> .`,
		`<urn:a> <urn:b> "literal" .`,
		`<urn:a> <urn:b> "esc\"aped\n" .`,
		`_:b1 <urn:b> "x"@en .`,
		`<urn:a> <urn:b> "3.5"^^<http://www.w3.org/2001/XMLSchema#double> .`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		tr, err := ParseTriple(line)
		if err != nil {
			return
		}
		again, err := ParseTriple(tr.String())
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", tr.String(), err)
		}
		if again != tr {
			t.Fatalf("round trip changed triple: %v vs %v", tr, again)
		}
	})
}

// FuzzReadNTriples: arbitrary documents must never panic the reader, and
// accepted documents must re-serialise losslessly.
func FuzzReadNTriples(f *testing.F) {
	f.Add("<urn:a> <urn:b> \"c\" .\n# comment\n<urn:a> <urn:b> <urn:c> .\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, doc string) {
		g, err := ReadNTriples(bytes.NewReader([]byte(doc)))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteNTriples(&buf, g); err != nil {
			t.Fatal(err)
		}
		back, err := ReadNTriples(&buf)
		if err != nil {
			t.Fatalf("canonical document does not re-parse: %v", err)
		}
		if back.Len() != g.Len() {
			t.Fatalf("round trip changed size: %d vs %d", back.Len(), g.Len())
		}
	})
}
