package rdf

import (
	"fmt"
	"sort"
	"sync"
)

// Triple is an RDF statement. Subjects may be IRIs or blank nodes,
// predicates must be IRIs, objects may be any term.
type Triple struct {
	Subject   Term
	Predicate Term
	Object    Term
}

// T is a convenience constructor for a Triple.
func T(s, p, o Term) Triple { return Triple{Subject: s, Predicate: p, Object: o} }

// String renders the triple in N-Triples syntax (without trailing newline).
func (t Triple) String() string {
	return t.Subject.String() + " " + t.Predicate.String() + " " + t.Object.String() + " ."
}

// Validate reports whether the triple is well-formed RDF.
func (t Triple) Validate() error {
	switch {
	case t.Subject.IsZero() || t.Predicate.IsZero() || t.Object.IsZero():
		return fmt.Errorf("rdf: triple has zero term: %v", t)
	case t.Subject.IsLiteral():
		return fmt.Errorf("rdf: literal subject: %v", t)
	case !t.Predicate.IsIRI():
		return fmt.Errorf("rdf: non-IRI predicate: %v", t)
	}
	return nil
}

// Graph is an in-memory RDF graph with three-way indexing (SPO, POS, OSP)
// for efficient pattern matching, per-position cardinality statistics for
// query planning, and O(1) copy-on-write snapshots (Snapshot, Clone). All
// methods are safe for concurrent use.
//
// The zero value is not ready to use; call NewGraph.
type Graph struct {
	mu sync.RWMutex
	v  view
	// gen is the current write generation. Index nodes stamped with an
	// older generation are shared with at least one Snapshot or Clone and
	// are copied (never mutated in place) the first time a write touches
	// them.
	gen uint64
	// sealed records that the current generation's nodes are shared with
	// a Snapshot or Clone; the next write bumps gen and forks the roots.
	sealed bool
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{v: newView()}
}

// Len returns the number of triples in the graph.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v.n
}

// Snapshot returns an immutable point-in-time view of the graph in O(1).
// Snapshot reads take no locks, so an arbitrarily long read (e.g. a SPARQL
// evaluation) never blocks writers; subsequent writes to the graph copy
// the index nodes they touch instead of mutating shared state.
func (g *Graph) Snapshot() *Snapshot {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.sealed = true
	return newSnapshot(g.v)
}

// prepWrite makes the current view privately writable: if a Snapshot or
// Clone shares the current generation, the generation advances and the
// root maps are forked. Inner index nodes fork lazily as writes touch
// them. Callers must hold g.mu.
func (g *Graph) prepWrite() {
	if !g.sealed {
		return
	}
	g.gen++
	g.sealed = false
	g.v.spo = forkRoot(g.v.spo)
	g.v.pos = forkRoot(g.v.pos)
	g.v.osp = forkRoot(g.v.osp)
	g.v.subjN = forkCounts(g.v.subjN)
	g.v.predN = forkCounts(g.v.predN)
	g.v.objN = forkCounts(g.v.objN)
}

// Add inserts a triple. It returns true if the triple was not already
// present, and an error if the triple is malformed.
func (g *Graph) Add(t Triple) (bool, error) {
	if err := t.Validate(); err != nil {
		return false, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.prepWrite()
	return g.addLocked(t), nil
}

func (g *Graph) addLocked(t Triple) bool {
	if !addIdx(g.v.spo, g.gen, t.Subject, t.Predicate, t.Object) {
		return false
	}
	addIdx(g.v.pos, g.gen, t.Predicate, t.Object, t.Subject)
	addIdx(g.v.osp, g.gen, t.Object, t.Subject, t.Predicate)
	g.v.subjN[t.Subject]++
	g.v.predN[t.Predicate]++
	g.v.objN[t.Object]++
	g.v.n++
	return true
}

// MustAdd inserts a triple and panics on malformed input. It is intended
// for statically-known vocabulary construction (e.g. building the IQ model).
func (g *Graph) MustAdd(t Triple) {
	if _, err := g.Add(t); err != nil {
		panic(err)
	}
}

// AddAll inserts all triples, stopping at the first malformed one.
func (g *Graph) AddAll(ts []Triple) error {
	_, err := g.AddBatch(ts)
	return err
}

// AddBatch inserts all triples under a single lock acquisition — the bulk
// load path for large graphs (provenance logs, parsed files). It returns
// the number of triples actually added (duplicates are skipped); on a
// malformed triple it stops and returns the count added so far.
func (g *Graph) AddBatch(ts []Triple) (int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.prepWrite()
	added := 0
	for _, t := range ts {
		if err := t.Validate(); err != nil {
			return added, err
		}
		if g.addLocked(t) {
			added++
		}
	}
	return added, nil
}

// Remove deletes a triple, reporting whether it was present.
func (g *Graph) Remove(t Triple) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.prepWrite()
	if !delIdx(g.v.spo, g.gen, t.Subject, t.Predicate, t.Object) {
		return false
	}
	delIdx(g.v.pos, g.gen, t.Predicate, t.Object, t.Subject)
	delIdx(g.v.osp, g.gen, t.Object, t.Subject, t.Predicate)
	decCount(g.v.subjN, t.Subject)
	decCount(g.v.predN, t.Predicate)
	decCount(g.v.objN, t.Object)
	g.v.n--
	return true
}

// Has reports whether the triple is present.
func (g *Graph) Has(t Triple) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v.has(t)
}

// Match returns all triples matching the pattern; zero Terms act as
// wildcards. Results are returned in deterministic (sorted) order.
func (g *Graph) Match(s, p, o Term) []Triple {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v.match(s, p, o)
}

// Count returns the number of triples matching the pattern.
func (g *Graph) Count(s, p, o Term) int {
	n := 0
	g.ForEachMatch(s, p, o, func(Triple) bool { n++; return true })
	return n
}

// Cardinality returns the exact number of triples matching the pattern in
// O(1), from the index statistics — the planner-facing complement of
// Count, which walks the matches.
func (g *Graph) Cardinality(s, p, o Term) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v.cardinality(s, p, o)
}

// Stats returns the graph-level index statistics.
func (g *Graph) Stats() DatasetStats {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v.stats()
}

// ForEachMatch calls fn for every triple matching the pattern (zero Terms
// are wildcards) until fn returns false. Iteration order is unspecified;
// use Match for deterministic order. The graph must not be mutated from
// within fn; for reads that must coexist with writers, iterate a
// Snapshot instead.
func (g *Graph) ForEachMatch(s, p, o Term, fn func(Triple) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.v.forEachMatch(s, p, o, fn)
}

// Subjects returns the distinct subjects of triples matching (·, p, o),
// in sorted order.
func (g *Graph) Subjects(p, o Term) []Term {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v.subjects(p, o)
}

// Objects returns the distinct objects of triples matching (s, p, ·),
// in sorted order.
func (g *Graph) Objects(s, p Term) []Term {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v.objects(s, p)
}

// FirstObject returns the least object of (s, p, ·) in term order, or a
// zero Term if none exists. It is the idiom for functional properties,
// and runs as a single O(k) min-scan over the k objects.
func (g *Graph) FirstObject(s, p Term) Term {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v.firstObject(s, p)
}

// Triples returns a sorted snapshot of every triple in the graph.
func (g *Graph) Triples() []Triple {
	return g.Match(Term{}, Term{}, Term{})
}

// Clear removes every triple.
func (g *Graph) Clear() {
	g.mu.Lock()
	defer g.mu.Unlock()
	// Fresh maps, never shared: outstanding snapshots keep the old ones.
	g.v = newView()
	g.sealed = false
}

// Merge adds every triple of other into g.
func (g *Graph) Merge(other *Graph) {
	if other == g {
		return
	}
	snap := other.Snapshot()
	g.mu.Lock()
	defer g.mu.Unlock()
	g.prepWrite()
	snap.v.forEachMatch(Term{}, Term{}, Term{}, func(t Triple) bool {
		g.addLocked(t)
		return true
	})
}

// Clone returns an independent copy of the graph in O(1): the copy shares
// the current index nodes copy-on-write, so writes on either side fork
// the nodes they touch and neither graph observes the other's mutations.
func (g *Graph) Clone() *Graph {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.sealed = true
	return &Graph{v: g.v, gen: g.gen, sealed: true}
}

// ---- generation-tagged copy-on-write index nodes ----

// midMap is the middle level of one index rotation (e.g. predicate →
// object set under a subject). leafSet is the innermost term set. Both
// carry the write generation that owns them: a node whose gen differs
// from the graph's current gen is shared with a snapshot and is forked
// before mutation.
type midMap struct {
	gen uint64
	m   map[Term]*leafSet
}

type leafSet struct {
	gen uint64
	m   map[Term]struct{}
}

func (n *midMap) fork(gen uint64) *midMap {
	m := make(map[Term]*leafSet, len(n.m))
	for k, v := range n.m {
		m[k] = v
	}
	return &midMap{gen: gen, m: m}
}

func (n *leafSet) fork(gen uint64) *leafSet {
	m := make(map[Term]struct{}, len(n.m))
	for k := range n.m {
		m[k] = struct{}{}
	}
	return &leafSet{gen: gen, m: m}
}

func forkRoot(root map[Term]*midMap) map[Term]*midMap {
	out := make(map[Term]*midMap, len(root))
	for k, v := range root {
		out[k] = v
	}
	return out
}

func forkCounts(c map[Term]int) map[Term]int {
	out := make(map[Term]int, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

func addIdx(root map[Term]*midMap, gen uint64, a, b, c Term) bool {
	mid, ok := root[a]
	switch {
	case !ok:
		mid = &midMap{gen: gen, m: make(map[Term]*leafSet, 1)}
		root[a] = mid
	case mid.gen != gen:
		mid = mid.fork(gen)
		root[a] = mid
	}
	leaf, ok := mid.m[b]
	switch {
	case !ok:
		leaf = &leafSet{gen: gen, m: make(map[Term]struct{}, 1)}
		mid.m[b] = leaf
	case leaf.gen != gen:
		leaf = leaf.fork(gen)
		mid.m[b] = leaf
	}
	if _, ok := leaf.m[c]; ok {
		return false
	}
	leaf.m[c] = struct{}{}
	return true
}

func delIdx(root map[Term]*midMap, gen uint64, a, b, c Term) bool {
	mid, ok := root[a]
	if !ok {
		return false
	}
	leaf, ok := mid.m[b]
	if !ok {
		return false
	}
	if _, ok := leaf.m[c]; !ok {
		return false
	}
	if mid.gen != gen {
		mid = mid.fork(gen)
		root[a] = mid
	}
	if leaf = mid.m[b]; leaf.gen != gen {
		leaf = leaf.fork(gen)
		mid.m[b] = leaf
	}
	delete(leaf.m, c)
	if len(leaf.m) == 0 {
		delete(mid.m, b)
		if len(mid.m) == 0 {
			delete(root, a)
		}
	}
	return true
}

func decCount(c map[Term]int, t Term) {
	if c[t] <= 1 {
		delete(c, t)
	} else {
		c[t]--
	}
}

func termLess(a, b Term) bool {
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	if a.value != b.value {
		return a.value < b.value
	}
	if a.datatype != b.datatype {
		return a.datatype < b.datatype
	}
	return a.lang < b.lang
}

// CompareTerms orders terms by kind, then value, datatype and language tag.
// It returns -1, 0, or 1.
func CompareTerms(a, b Term) int {
	switch {
	case a == b:
		return 0
	case termLess(a, b):
		return -1
	default:
		return 1
	}
}

func sortTriples(ts []Triple) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.Subject != b.Subject {
			return termLess(a.Subject, b.Subject)
		}
		if a.Predicate != b.Predicate {
			return termLess(a.Predicate, b.Predicate)
		}
		return termLess(a.Object, b.Object)
	})
}

func sortedTerms(set map[Term]struct{}) []Term {
	out := make([]Term, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return termLess(out[i], out[j]) })
	return out
}
