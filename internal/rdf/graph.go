package rdf

import (
	"fmt"
	"sort"
	"sync"
)

// Triple is an RDF statement. Subjects may be IRIs or blank nodes,
// predicates must be IRIs, objects may be any term.
type Triple struct {
	Subject   Term
	Predicate Term
	Object    Term
}

// T is a convenience constructor for a Triple.
func T(s, p, o Term) Triple { return Triple{Subject: s, Predicate: p, Object: o} }

// String renders the triple in N-Triples syntax (without trailing newline).
func (t Triple) String() string {
	return t.Subject.String() + " " + t.Predicate.String() + " " + t.Object.String() + " ."
}

// Validate reports whether the triple is well-formed RDF.
func (t Triple) Validate() error {
	switch {
	case t.Subject.IsZero() || t.Predicate.IsZero() || t.Object.IsZero():
		return fmt.Errorf("rdf: triple has zero term: %v", t)
	case t.Subject.IsLiteral():
		return fmt.Errorf("rdf: literal subject: %v", t)
	case !t.Predicate.IsIRI():
		return fmt.Errorf("rdf: non-IRI predicate: %v", t)
	}
	return nil
}

// Graph is an in-memory RDF graph with three-way indexing (SPO, POS, OSP)
// for efficient pattern matching. All methods are safe for concurrent use.
//
// The zero value is not ready to use; call NewGraph.
type Graph struct {
	mu sync.RWMutex
	// spo indexes subject → predicate → object set; pos and osp are the
	// rotations used to answer patterns with unbound subjects.
	spo map[Term]map[Term]map[Term]struct{}
	pos map[Term]map[Term]map[Term]struct{}
	osp map[Term]map[Term]map[Term]struct{}
	n   int
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		spo: make(map[Term]map[Term]map[Term]struct{}),
		pos: make(map[Term]map[Term]map[Term]struct{}),
		osp: make(map[Term]map[Term]map[Term]struct{}),
	}
}

// Len returns the number of triples in the graph.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.n
}

// Add inserts a triple. It returns true if the triple was not already
// present, and an error if the triple is malformed.
func (g *Graph) Add(t Triple) (bool, error) {
	if err := t.Validate(); err != nil {
		return false, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if !index(g.spo, t.Subject, t.Predicate, t.Object) {
		return false, nil
	}
	index(g.pos, t.Predicate, t.Object, t.Subject)
	index(g.osp, t.Object, t.Subject, t.Predicate)
	g.n++
	return true, nil
}

// MustAdd inserts a triple and panics on malformed input. It is intended
// for statically-known vocabulary construction (e.g. building the IQ model).
func (g *Graph) MustAdd(t Triple) {
	if _, err := g.Add(t); err != nil {
		panic(err)
	}
}

// AddAll inserts all triples, stopping at the first malformed one.
func (g *Graph) AddAll(ts []Triple) error {
	for _, t := range ts {
		if _, err := g.Add(t); err != nil {
			return err
		}
	}
	return nil
}

// Remove deletes a triple, reporting whether it was present.
func (g *Graph) Remove(t Triple) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !unindex(g.spo, t.Subject, t.Predicate, t.Object) {
		return false
	}
	unindex(g.pos, t.Predicate, t.Object, t.Subject)
	unindex(g.osp, t.Object, t.Subject, t.Predicate)
	g.n--
	return true
}

// Has reports whether the triple is present.
func (g *Graph) Has(t Triple) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if m, ok := g.spo[t.Subject]; ok {
		if mm, ok := m[t.Predicate]; ok {
			_, ok := mm[t.Object]
			return ok
		}
	}
	return false
}

// Match returns all triples matching the pattern; zero Terms act as
// wildcards. Results are returned in deterministic (sorted) order.
func (g *Graph) Match(s, p, o Term) []Triple {
	var out []Triple
	g.ForEachMatch(s, p, o, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	sortTriples(out)
	return out
}

// Count returns the number of triples matching the pattern.
func (g *Graph) Count(s, p, o Term) int {
	n := 0
	g.ForEachMatch(s, p, o, func(Triple) bool { n++; return true })
	return n
}

// ForEachMatch calls fn for every triple matching the pattern (zero Terms
// are wildcards) until fn returns false. Iteration order is unspecified;
// use Match for deterministic order. The graph must not be mutated from
// within fn.
func (g *Graph) ForEachMatch(s, p, o Term, fn func(Triple) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()

	emit := func(t Triple) bool { return fn(t) }

	switch {
	case !s.IsZero() && !p.IsZero() && !o.IsZero():
		if m, ok := g.spo[s]; ok {
			if mm, ok := m[p]; ok {
				if _, ok := mm[o]; ok {
					emit(T(s, p, o))
				}
			}
		}
	case !s.IsZero() && !p.IsZero():
		if m, ok := g.spo[s]; ok {
			for obj := range m[p] {
				if !emit(T(s, p, obj)) {
					return
				}
			}
		}
	case !s.IsZero() && !o.IsZero():
		if m, ok := g.osp[o]; ok {
			for pred := range m[s] {
				if !emit(T(s, pred, o)) {
					return
				}
			}
		}
	case !p.IsZero() && !o.IsZero():
		if m, ok := g.pos[p]; ok {
			for subj := range m[o] {
				if !emit(T(subj, p, o)) {
					return
				}
			}
		}
	case !s.IsZero():
		if m, ok := g.spo[s]; ok {
			for pred, objs := range m {
				for obj := range objs {
					if !emit(T(s, pred, obj)) {
						return
					}
				}
			}
		}
	case !p.IsZero():
		if m, ok := g.pos[p]; ok {
			for obj, subjs := range m {
				for subj := range subjs {
					if !emit(T(subj, p, obj)) {
						return
					}
				}
			}
		}
	case !o.IsZero():
		if m, ok := g.osp[o]; ok {
			for subj, preds := range m {
				for pred := range preds {
					if !emit(T(subj, pred, o)) {
						return
					}
				}
			}
		}
	default:
		for subj, m := range g.spo {
			for pred, objs := range m {
				for obj := range objs {
					if !emit(T(subj, pred, obj)) {
						return
					}
				}
			}
		}
	}
}

// Subjects returns the distinct subjects of triples matching (·, p, o),
// in sorted order.
func (g *Graph) Subjects(p, o Term) []Term {
	seen := make(map[Term]struct{})
	g.ForEachMatch(Term{}, p, o, func(t Triple) bool {
		seen[t.Subject] = struct{}{}
		return true
	})
	return sortedTerms(seen)
}

// Objects returns the distinct objects of triples matching (s, p, ·),
// in sorted order.
func (g *Graph) Objects(s, p Term) []Term {
	seen := make(map[Term]struct{})
	g.ForEachMatch(s, p, Term{}, func(t Triple) bool {
		seen[t.Object] = struct{}{}
		return true
	})
	return sortedTerms(seen)
}

// FirstObject returns the first object of (s, p, ·) in sorted order, or a
// zero Term if none exists. It is the idiom for functional properties.
func (g *Graph) FirstObject(s, p Term) Term {
	objs := g.Objects(s, p)
	if len(objs) == 0 {
		return Term{}
	}
	return objs[0]
}

// Triples returns a sorted snapshot of every triple in the graph.
func (g *Graph) Triples() []Triple {
	return g.Match(Term{}, Term{}, Term{})
}

// Clear removes every triple.
func (g *Graph) Clear() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.spo = make(map[Term]map[Term]map[Term]struct{})
	g.pos = make(map[Term]map[Term]map[Term]struct{})
	g.osp = make(map[Term]map[Term]map[Term]struct{})
	g.n = 0
}

// Merge adds every triple of other into g.
func (g *Graph) Merge(other *Graph) {
	for _, t := range other.Triples() {
		g.MustAdd(t)
	}
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := NewGraph()
	out.Merge(g)
	return out
}

func index(idx map[Term]map[Term]map[Term]struct{}, a, b, c Term) bool {
	m, ok := idx[a]
	if !ok {
		m = make(map[Term]map[Term]struct{})
		idx[a] = m
	}
	mm, ok := m[b]
	if !ok {
		mm = make(map[Term]struct{})
		m[b] = mm
	}
	if _, ok := mm[c]; ok {
		return false
	}
	mm[c] = struct{}{}
	return true
}

func unindex(idx map[Term]map[Term]map[Term]struct{}, a, b, c Term) bool {
	m, ok := idx[a]
	if !ok {
		return false
	}
	mm, ok := m[b]
	if !ok {
		return false
	}
	if _, ok := mm[c]; !ok {
		return false
	}
	delete(mm, c)
	if len(mm) == 0 {
		delete(m, b)
		if len(m) == 0 {
			delete(idx, a)
		}
	}
	return true
}

func termLess(a, b Term) bool {
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	if a.value != b.value {
		return a.value < b.value
	}
	if a.datatype != b.datatype {
		return a.datatype < b.datatype
	}
	return a.lang < b.lang
}

// CompareTerms orders terms by kind, then value, datatype and language tag.
// It returns -1, 0, or 1.
func CompareTerms(a, b Term) int {
	switch {
	case a == b:
		return 0
	case termLess(a, b):
		return -1
	default:
		return 1
	}
}

func sortTriples(ts []Triple) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.Subject != b.Subject {
			return termLess(a.Subject, b.Subject)
		}
		if a.Predicate != b.Predicate {
			return termLess(a.Predicate, b.Predicate)
		}
		return termLess(a.Object, b.Object)
	})
}

func sortedTerms(set map[Term]struct{}) []Term {
	out := make([]Term, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return termLess(out[i], out[j]) })
	return out
}
