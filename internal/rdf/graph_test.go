package rdf

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func mustAdd(t *testing.T, g *Graph, tr Triple) {
	t.Helper()
	added, err := g.Add(tr)
	if err != nil {
		t.Fatalf("Add(%v): %v", tr, err)
	}
	if !added {
		t.Fatalf("Add(%v): expected insertion", tr)
	}
}

func TestGraphAddHasRemove(t *testing.T) {
	g := NewGraph()
	tr := T(IRI("urn:s"), IRI("urn:p"), Literal("o"))
	mustAdd(t, g, tr)
	if !g.Has(tr) {
		t.Fatal("Has should find inserted triple")
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
	// Duplicate insert is a no-op.
	added, err := g.Add(tr)
	if err != nil || added {
		t.Fatalf("duplicate Add = (%v, %v), want (false, nil)", added, err)
	}
	if g.Len() != 1 {
		t.Fatalf("Len after dup = %d, want 1", g.Len())
	}
	if !g.Remove(tr) {
		t.Fatal("Remove should report true for present triple")
	}
	if g.Has(tr) || g.Len() != 0 {
		t.Fatal("triple should be gone after Remove")
	}
	if g.Remove(tr) {
		t.Fatal("Remove of absent triple should report false")
	}
}

func TestGraphAddValidation(t *testing.T) {
	g := NewGraph()
	bad := []Triple{
		{},
		T(Literal("s"), IRI("urn:p"), Literal("o")),
		T(IRI("urn:s"), Literal("p"), Literal("o")),
		T(IRI("urn:s"), Blank("p"), Literal("o")),
	}
	for _, tr := range bad {
		if _, err := g.Add(tr); err == nil {
			t.Errorf("Add(%v) should fail validation", tr)
		}
	}
	// Blank subject is legal.
	if _, err := g.Add(T(Blank("b"), IRI("urn:p"), IRI("urn:o"))); err != nil {
		t.Errorf("blank subject should be legal: %v", err)
	}
}

func buildTestGraph(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	stmts := []Triple{
		T(IRI("urn:p1"), IRI(RDFType), IRI("urn:Protein")),
		T(IRI("urn:p2"), IRI(RDFType), IRI("urn:Protein")),
		T(IRI("urn:p1"), IRI("urn:hr"), Double(0.8)),
		T(IRI("urn:p2"), IRI("urn:hr"), Double(0.3)),
		T(IRI("urn:p1"), IRI("urn:mc"), Double(0.5)),
	}
	for _, s := range stmts {
		mustAdd(t, g, s)
	}
	return g
}

func TestGraphMatchPatterns(t *testing.T) {
	g := buildTestGraph(t)
	cases := []struct {
		name    string
		s, p, o Term
		want    int
	}{
		{"all wild", Term{}, Term{}, Term{}, 5},
		{"by subject", IRI("urn:p1"), Term{}, Term{}, 3},
		{"by predicate", Term{}, IRI("urn:hr"), Term{}, 2},
		{"by object", Term{}, Term{}, IRI("urn:Protein"), 2},
		{"s+p", IRI("urn:p1"), IRI("urn:hr"), Term{}, 1},
		{"p+o", Term{}, IRI(RDFType), IRI("urn:Protein"), 2},
		{"s+o", IRI("urn:p1"), Term{}, Double(0.5), 1},
		{"exact hit", IRI("urn:p1"), IRI("urn:mc"), Double(0.5), 1},
		{"exact miss", IRI("urn:p1"), IRI("urn:mc"), Double(0.9), 0},
		{"absent subject", IRI("urn:nope"), Term{}, Term{}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := g.Match(c.s, c.p, c.o)
			if len(got) != c.want {
				t.Errorf("Match returned %d triples, want %d: %v", len(got), c.want, got)
			}
			if n := g.Count(c.s, c.p, c.o); n != c.want {
				t.Errorf("Count = %d, want %d", n, c.want)
			}
		})
	}
}

func TestGraphMatchDeterministicOrder(t *testing.T) {
	g := buildTestGraph(t)
	first := g.Match(Term{}, Term{}, Term{})
	for i := 0; i < 5; i++ {
		if again := g.Match(Term{}, Term{}, Term{}); !reflect.DeepEqual(first, again) {
			t.Fatal("Match order is not deterministic")
		}
	}
}

func TestGraphSubjectsObjects(t *testing.T) {
	g := buildTestGraph(t)
	subs := g.Subjects(IRI(RDFType), IRI("urn:Protein"))
	if len(subs) != 2 || subs[0] != IRI("urn:p1") || subs[1] != IRI("urn:p2") {
		t.Errorf("Subjects = %v", subs)
	}
	objs := g.Objects(IRI("urn:p1"), IRI("urn:hr"))
	if len(objs) != 1 || objs[0] != Double(0.8) {
		t.Errorf("Objects = %v", objs)
	}
	if got := g.FirstObject(IRI("urn:p1"), IRI("urn:hr")); got != Double(0.8) {
		t.Errorf("FirstObject = %v", got)
	}
	if got := g.FirstObject(IRI("urn:p1"), IRI("urn:none")); !got.IsZero() {
		t.Errorf("FirstObject of absent property = %v, want zero", got)
	}
}

func TestGraphForEachMatchEarlyStop(t *testing.T) {
	g := buildTestGraph(t)
	n := 0
	g.ForEachMatch(Term{}, Term{}, Term{}, func(Triple) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Errorf("early stop visited %d, want 2", n)
	}
}

func TestGraphCloneMergeClear(t *testing.T) {
	g := buildTestGraph(t)
	c := g.Clone()
	if c.Len() != g.Len() {
		t.Fatalf("clone Len = %d, want %d", c.Len(), g.Len())
	}
	mustAdd(t, c, T(IRI("urn:extra"), IRI("urn:p"), Literal("x")))
	if g.Has(T(IRI("urn:extra"), IRI("urn:p"), Literal("x"))) {
		t.Fatal("mutating clone affected original")
	}
	g2 := NewGraph()
	g2.Merge(g)
	if g2.Len() != g.Len() {
		t.Fatalf("merge Len = %d, want %d", g2.Len(), g.Len())
	}
	g2.Clear()
	if g2.Len() != 0 || len(g2.Triples()) != 0 {
		t.Fatal("Clear should empty the graph")
	}
}

func TestGraphConcurrentAccess(t *testing.T) {
	g := NewGraph()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := IRI(fmt.Sprintf("urn:s%d", w))
				tr := T(s, IRI("urn:p"), Integer(int64(i)))
				if _, err := g.Add(tr); err != nil {
					t.Errorf("Add: %v", err)
					return
				}
				g.Count(s, Term{}, Term{})
				if i%3 == 0 {
					g.Remove(tr)
				}
			}
		}(w)
	}
	wg.Wait()
}

// Property: for any random set of triples, the graph behaves like a set —
// Len equals the number of distinct triples and every inserted triple is
// findable via every index rotation.
func TestGraphSetSemanticsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph()
		set := make(map[Triple]struct{})
		for i := 0; i < 100; i++ {
			tr := T(
				IRI(fmt.Sprintf("urn:s%d", rng.Intn(10))),
				IRI(fmt.Sprintf("urn:p%d", rng.Intn(5))),
				Integer(int64(rng.Intn(8))),
			)
			if rng.Intn(4) == 0 {
				g.Remove(tr)
				delete(set, tr)
				continue
			}
			if _, err := g.Add(tr); err != nil {
				return false
			}
			set[tr] = struct{}{}
		}
		if g.Len() != len(set) {
			return false
		}
		for tr := range set {
			if !g.Has(tr) {
				return false
			}
			if len(g.Match(tr.Subject, Term{}, Term{})) == 0 ||
				len(g.Match(Term{}, tr.Predicate, Term{})) == 0 ||
				len(g.Match(Term{}, Term{}, tr.Object)) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestNTriplesRoundTrip(t *testing.T) {
	g := buildTestGraph(t)
	mustAdd(t, g, T(Blank("b1"), IRI("urn:note"), LangLiteral("hóla", "es")))
	mustAdd(t, g, T(IRI("urn:p1"), IRI("urn:desc"), Literal("line\nwith \"quotes\"")))

	var buf bytes.Buffer
	if err := WriteNTriples(&buf, g); err != nil {
		t.Fatalf("WriteNTriples: %v", err)
	}
	back, err := ReadNTriples(&buf)
	if err != nil {
		t.Fatalf("ReadNTriples: %v", err)
	}
	if !reflect.DeepEqual(g.Triples(), back.Triples()) {
		t.Errorf("round trip mismatch:\n got %v\nwant %v", back.Triples(), g.Triples())
	}
}

func TestReadNTriplesSkipsCommentsAndBlanks(t *testing.T) {
	in := "# comment\n\n<urn:a> <urn:b> \"c\" .\n  # indented comment\n"
	g, err := ReadNTriples(bytes.NewReader([]byte(in)))
	if err != nil {
		t.Fatalf("ReadNTriples: %v", err)
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
}

func TestReadNTriplesErrors(t *testing.T) {
	bad := []string{
		"<urn:a> <urn:b> \"c\"",          // missing dot
		"<urn:a> <urn:b> .",              // missing object
		"\"lit\" <urn:b> <urn:c> .",      // literal subject
		"<urn:a> \"lit\" <urn:c> .",      // literal predicate
		"<urn:a> <urn:b> <urn:c> . junk", // trailing garbage
	}
	for _, s := range bad {
		if _, err := ReadNTriples(bytes.NewReader([]byte(s))); err == nil {
			t.Errorf("ReadNTriples(%q) should fail", s)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	g := buildTestGraph(t)
	path := filepath.Join(t.TempDir(), "g.nt")
	if err := SaveFile(path, g); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if !reflect.DeepEqual(g.Triples(), back.Triples()) {
		t.Error("file round trip mismatch")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.nt")); err == nil {
		t.Error("LoadFile of missing file should fail")
	}
}

func BenchmarkGraphAdd(b *testing.B) {
	g := NewGraph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Add(T(IRI(fmt.Sprintf("urn:s%d", i%1000)), IRI("urn:p"), Integer(int64(i))))
	}
}

func BenchmarkGraphMatchBySubject(b *testing.B) {
	g := NewGraph()
	for i := 0; i < 10000; i++ {
		g.Add(T(IRI(fmt.Sprintf("urn:s%d", i%100)), IRI(fmt.Sprintf("urn:p%d", i%7)), Integer(int64(i))))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Count(IRI(fmt.Sprintf("urn:s%d", i%100)), Term{}, Term{})
	}
}
