package rdf

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// WriteNTriples writes the graph to w in canonical (sorted) N-Triples form.
func WriteNTriples(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for _, t := range g.Triples() {
		if _, err := bw.WriteString(t.String()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadNTriples parses N-Triples from r into a new graph. Lines that are
// empty or start with '#' are skipped. Parsing is strict about term syntax
// but tolerant of surrounding whitespace.
func ReadNTriples(r io.Reader) (*Graph, error) {
	g := NewGraph()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := ParseTriple(line)
		if err != nil {
			return nil, fmt.Errorf("rdf: line %d: %w", lineNo, err)
		}
		if _, err := g.Add(t); err != nil {
			return nil, fmt.Errorf("rdf: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g, nil
}

// SaveFile writes the graph to path as N-Triples, atomically (write to a
// temp file, then rename).
func SaveFile(path string, g *Graph) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := WriteNTriples(f, g); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads an N-Triples file into a new graph.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadNTriples(f)
}

// ParseTriple parses a single N-Triples statement (terminated by '.').
func ParseTriple(line string) (Triple, error) {
	p := &ntParser{s: line}
	s, err := p.term()
	if err != nil {
		return Triple{}, fmt.Errorf("subject: %w", err)
	}
	pr, err := p.term()
	if err != nil {
		return Triple{}, fmt.Errorf("predicate: %w", err)
	}
	o, err := p.term()
	if err != nil {
		return Triple{}, fmt.Errorf("object: %w", err)
	}
	p.skipSpace()
	if !p.eat('.') {
		return Triple{}, fmt.Errorf("missing terminating '.' in %q", line)
	}
	p.skipSpace()
	if p.i != len(p.s) {
		return Triple{}, fmt.Errorf("trailing content after '.' in %q", line)
	}
	t := T(s, pr, o)
	if err := t.Validate(); err != nil {
		return Triple{}, err
	}
	return t, nil
}

// ParseTerm parses a single N-Triples term (IRI, literal or blank node).
func ParseTerm(s string) (Term, error) {
	p := &ntParser{s: s}
	t, err := p.term()
	if err != nil {
		return Term{}, err
	}
	p.skipSpace()
	if p.i != len(p.s) {
		return Term{}, fmt.Errorf("trailing content after term in %q", s)
	}
	return t, nil
}

type ntParser struct {
	s string
	i int
}

func (p *ntParser) skipSpace() {
	for p.i < len(p.s) && (p.s[p.i] == ' ' || p.s[p.i] == '\t') {
		p.i++
	}
}

func (p *ntParser) eat(c byte) bool {
	if p.i < len(p.s) && p.s[p.i] == c {
		p.i++
		return true
	}
	return false
}

func (p *ntParser) term() (Term, error) {
	p.skipSpace()
	if p.i >= len(p.s) {
		return Term{}, fmt.Errorf("unexpected end of input")
	}
	switch p.s[p.i] {
	case '<':
		return p.iri()
	case '"':
		return p.literal()
	case '_':
		return p.blank()
	default:
		return Term{}, fmt.Errorf("unexpected character %q at offset %d", p.s[p.i], p.i)
	}
}

func (p *ntParser) iri() (Term, error) {
	p.i++ // consume '<'
	end := strings.IndexByte(p.s[p.i:], '>')
	if end < 0 {
		return Term{}, fmt.Errorf("unterminated IRI")
	}
	iri := p.s[p.i : p.i+end]
	p.i += end + 1
	if iri == "" {
		return Term{}, fmt.Errorf("empty IRI")
	}
	return IRI(iri), nil
}

func (p *ntParser) blank() (Term, error) {
	if p.i+1 >= len(p.s) || p.s[p.i+1] != ':' {
		return Term{}, fmt.Errorf("malformed blank node label")
	}
	p.i += 2
	start := p.i
	for p.i < len(p.s) && !isNTSpace(p.s[p.i]) {
		p.i++
	}
	label := p.s[start:p.i]
	if label == "" {
		return Term{}, fmt.Errorf("empty blank node label")
	}
	return Blank(label), nil
}

func (p *ntParser) literal() (Term, error) {
	p.i++ // consume opening '"'
	var raw strings.Builder
	for {
		if p.i >= len(p.s) {
			return Term{}, fmt.Errorf("unterminated literal")
		}
		c := p.s[p.i]
		if c == '\\' {
			if p.i+1 >= len(p.s) {
				return Term{}, fmt.Errorf("dangling escape in literal")
			}
			raw.WriteByte(c)
			raw.WriteByte(p.s[p.i+1])
			p.i += 2
			continue
		}
		if c == '"' {
			p.i++
			break
		}
		raw.WriteByte(c)
		p.i++
	}
	lexical, err := unescapeLiteral(raw.String())
	if err != nil {
		return Term{}, err
	}
	// Optional language tag or datatype.
	if p.i < len(p.s) && p.s[p.i] == '@' {
		p.i++
		start := p.i
		for p.i < len(p.s) && !isNTSpace(p.s[p.i]) && p.s[p.i] != '.' {
			p.i++
		}
		lang := p.s[start:p.i]
		if lang == "" {
			return Term{}, fmt.Errorf("empty language tag")
		}
		return LangLiteral(lexical, lang), nil
	}
	if strings.HasPrefix(p.s[p.i:], "^^") {
		p.i += 2
		if p.i >= len(p.s) || p.s[p.i] != '<' {
			return Term{}, fmt.Errorf("expected datatype IRI after ^^")
		}
		dt, err := p.iri()
		if err != nil {
			return Term{}, err
		}
		return TypedLiteral(lexical, dt.Value()), nil
	}
	return Literal(lexical), nil
}

func isNTSpace(c byte) bool { return c == ' ' || c == '\t' }
