package rdf

import "time"

// Dataset is the read-only access contract shared by the live *Graph and
// the immutable *Snapshot: pattern iteration plus the index statistics
// the SPARQL planner uses to order joins. Reads through a *Graph
// synchronize with writers; reads through a *Snapshot are lock-free.
type Dataset interface {
	// ForEachMatch calls fn for every triple matching the pattern (zero
	// Terms are wildcards) until fn returns false.
	ForEachMatch(s, p, o Term, fn func(Triple) bool)
	// Cardinality returns the exact number of triples matching the
	// pattern in O(1) using the per-position index statistics.
	Cardinality(s, p, o Term) int
	// Stats returns dataset-level statistics.
	Stats() DatasetStats
	// Len returns the number of triples.
	Len() int
}

// DatasetStats summarizes a dataset's index statistics: the triple count
// and the number of distinct terms per triple position.
type DatasetStats struct {
	Triples    int
	Subjects   int
	Predicates int
	Objects    int
}

// view is one version of the graph's indexes and statistics. The Graph
// wraps its current view behind a lock; a Snapshot freezes one version,
// after which no writer ever mutates its nodes (copy-on-write).
type view struct {
	// spo indexes subject → predicate → object set; pos and osp are the
	// rotations used to answer patterns with unbound subjects.
	spo map[Term]*midMap
	pos map[Term]*midMap
	osp map[Term]*midMap
	// subjN/predN/objN count the triples carrying each term in the
	// corresponding position — the O(1) cardinality statistics.
	subjN map[Term]int
	predN map[Term]int
	objN  map[Term]int
	n     int
}

func newView() view {
	return view{
		spo:   make(map[Term]*midMap),
		pos:   make(map[Term]*midMap),
		osp:   make(map[Term]*midMap),
		subjN: make(map[Term]int),
		predN: make(map[Term]int),
		objN:  make(map[Term]int),
	}
}

// Snapshot is an immutable point-in-time view of a Graph, produced in
// O(1) by Graph.Snapshot or Graph.Clone's copy-on-write machinery. All
// read methods are lock-free and safe for concurrent use; a Snapshot
// never changes, no matter what happens to the originating Graph.
type Snapshot struct {
	v     view
	taken time.Time
}

func newSnapshot(v view) *Snapshot {
	return &Snapshot{v: v, taken: time.Now()}
}

// Taken returns the time the snapshot was captured.
func (s *Snapshot) Taken() time.Time { return s.taken }

// Age returns how long ago the snapshot was captured.
func (s *Snapshot) Age() time.Duration { return time.Since(s.taken) }

// Len returns the number of triples in the snapshot.
func (s *Snapshot) Len() int { return s.v.n }

// Has reports whether the triple is present.
func (s *Snapshot) Has(t Triple) bool { return s.v.has(t) }

// ForEachMatch calls fn for every triple matching the pattern (zero Terms
// are wildcards) until fn returns false. Iteration order is unspecified.
func (s *Snapshot) ForEachMatch(sub, p, o Term, fn func(Triple) bool) {
	s.v.forEachMatch(sub, p, o, fn)
}

// Match returns all triples matching the pattern in sorted order.
func (s *Snapshot) Match(sub, p, o Term) []Triple { return s.v.match(sub, p, o) }

// Count returns the number of triples matching the pattern.
func (s *Snapshot) Count(sub, p, o Term) int {
	n := 0
	s.v.forEachMatch(sub, p, o, func(Triple) bool { n++; return true })
	return n
}

// Cardinality returns the exact number of triples matching the pattern in
// O(1) using the index statistics.
func (s *Snapshot) Cardinality(sub, p, o Term) int { return s.v.cardinality(sub, p, o) }

// Stats returns the snapshot's index statistics.
func (s *Snapshot) Stats() DatasetStats { return s.v.stats() }

// Subjects returns the distinct subjects of triples matching (·, p, o),
// in sorted order.
func (s *Snapshot) Subjects(p, o Term) []Term { return s.v.subjects(p, o) }

// Objects returns the distinct objects of triples matching (s, p, ·),
// in sorted order.
func (s *Snapshot) Objects(sub, p Term) []Term { return s.v.objects(sub, p) }

// FirstObject returns the least object of (s, p, ·) in term order, or a
// zero Term if none exists.
func (s *Snapshot) FirstObject(sub, p Term) Term { return s.v.firstObject(sub, p) }

// Triples returns every triple in sorted order.
func (s *Snapshot) Triples() []Triple { return s.v.match(Term{}, Term{}, Term{}) }

// ---- shared read algorithms ----

func (v *view) has(t Triple) bool {
	if mid, ok := v.spo[t.Subject]; ok {
		if leaf, ok := mid.m[t.Predicate]; ok {
			_, ok := leaf.m[t.Object]
			return ok
		}
	}
	return false
}

func (v *view) forEachMatch(s, p, o Term, fn func(Triple) bool) {
	switch {
	case !s.IsZero() && !p.IsZero() && !o.IsZero():
		if v.has(T(s, p, o)) {
			fn(T(s, p, o))
		}
	case !s.IsZero() && !p.IsZero():
		if mid, ok := v.spo[s]; ok {
			if leaf, ok := mid.m[p]; ok {
				for obj := range leaf.m {
					if !fn(T(s, p, obj)) {
						return
					}
				}
			}
		}
	case !s.IsZero() && !o.IsZero():
		if mid, ok := v.osp[o]; ok {
			if leaf, ok := mid.m[s]; ok {
				for pred := range leaf.m {
					if !fn(T(s, pred, o)) {
						return
					}
				}
			}
		}
	case !p.IsZero() && !o.IsZero():
		if mid, ok := v.pos[p]; ok {
			if leaf, ok := mid.m[o]; ok {
				for subj := range leaf.m {
					if !fn(T(subj, p, o)) {
						return
					}
				}
			}
		}
	case !s.IsZero():
		if mid, ok := v.spo[s]; ok {
			for pred, leaf := range mid.m {
				for obj := range leaf.m {
					if !fn(T(s, pred, obj)) {
						return
					}
				}
			}
		}
	case !p.IsZero():
		if mid, ok := v.pos[p]; ok {
			for obj, leaf := range mid.m {
				for subj := range leaf.m {
					if !fn(T(subj, p, obj)) {
						return
					}
				}
			}
		}
	case !o.IsZero():
		if mid, ok := v.osp[o]; ok {
			for subj, leaf := range mid.m {
				for pred := range leaf.m {
					if !fn(T(subj, pred, o)) {
						return
					}
				}
			}
		}
	default:
		for subj, mid := range v.spo {
			for pred, leaf := range mid.m {
				for obj := range leaf.m {
					if !fn(T(subj, pred, obj)) {
						return
					}
				}
			}
		}
	}
}

func (v *view) match(s, p, o Term) []Triple {
	var out []Triple
	v.forEachMatch(s, p, o, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	sortTriples(out)
	return out
}

func (v *view) cardinality(s, p, o Term) int {
	switch {
	case !s.IsZero() && !p.IsZero() && !o.IsZero():
		if v.has(T(s, p, o)) {
			return 1
		}
		return 0
	case !s.IsZero() && !p.IsZero():
		if mid, ok := v.spo[s]; ok {
			if leaf, ok := mid.m[p]; ok {
				return len(leaf.m)
			}
		}
		return 0
	case !p.IsZero() && !o.IsZero():
		if mid, ok := v.pos[p]; ok {
			if leaf, ok := mid.m[o]; ok {
				return len(leaf.m)
			}
		}
		return 0
	case !s.IsZero() && !o.IsZero():
		if mid, ok := v.osp[o]; ok {
			if leaf, ok := mid.m[s]; ok {
				return len(leaf.m)
			}
		}
		return 0
	case !s.IsZero():
		return v.subjN[s]
	case !p.IsZero():
		return v.predN[p]
	case !o.IsZero():
		return v.objN[o]
	default:
		return v.n
	}
}

func (v *view) stats() DatasetStats {
	return DatasetStats{
		Triples:    v.n,
		Subjects:   len(v.subjN),
		Predicates: len(v.predN),
		Objects:    len(v.objN),
	}
}

func (v *view) subjects(p, o Term) []Term {
	seen := make(map[Term]struct{})
	v.forEachMatch(Term{}, p, o, func(t Triple) bool {
		seen[t.Subject] = struct{}{}
		return true
	})
	return sortedTerms(seen)
}

func (v *view) objects(s, p Term) []Term {
	seen := make(map[Term]struct{})
	v.forEachMatch(s, p, Term{}, func(t Triple) bool {
		seen[t.Object] = struct{}{}
		return true
	})
	return sortedTerms(seen)
}

func (v *view) firstObject(s, p Term) Term {
	var best Term
	found := false
	v.forEachMatch(s, p, Term{}, func(t Triple) bool {
		if !found || termLess(t.Object, best) {
			best, found = t.Object, true
		}
		return true
	})
	return best
}
